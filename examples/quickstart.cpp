// Quickstart: the paper's running example (§5, Figure 4). Build a small
// people(state, city, salary) table clustered on state, create a
// Correlation Map on city, and answer
//   SELECT AVG(salary) FROM people WHERE city='Boston' OR city='Springfield'
// through the CM: cm_lookup -> clustered-index ranges -> re-filter.
//
// Demonstrates: paper §5 (CM definition and lookup), §5.2 (predicate
// introduction on the clustered attribute).
// Build & run: cmake -B build -S . && cmake --build build -j &&
//   ./build/example_quickstart        (index: docs/EXAMPLES.md)
#include <array>
#include <iostream>

#include "core/correlation_map.h"
#include "core/rewriter.h"
#include "exec/access_path.h"
#include "index/clustered_index.h"
#include "storage/table.h"

using namespace corrmap;

int main() {
  // 1. Schema and data (Figure 4's ten rows).
  Schema schema({ColumnDef::String("state", 2), ColumnDef::String("city", 16),
                 ColumnDef::Double("salary")});
  Table people("people", std::move(schema));
  const std::array<std::tuple<const char*, const char*, double>, 10> rows = {{
      {"MA", "Boston", 25'000}, {"NH", "Manchester", 110'000},
      {"MA", "Boston", 45'000}, {"MA", "Boston", 50'000},
      {"MS", "Jackson", 80'000}, {"NH", "Boston", 40'000},
      {"MA", "Springfield", 90'000}, {"NH", "Manchester", 60'000},
      {"OH", "Springfield", 95'000}, {"OH", "Toledo", 70'000},
  }};
  for (const auto& [state, city, salary] : rows) {
    std::array<Value, 3> row = {Value(state), Value(city), Value(salary)};
    Status s = people.AppendRow(row);
    if (!s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
  }

  // 2. Cluster on state and build the clustered index.
  (void)people.ClusterBy(0);
  auto cidx = ClusteredIndex::Build(people, 0);
  if (!cidx.ok()) {
    std::cerr << cidx.status().ToString() << "\n";
    return 1;
  }

  // 3. Build the CM on city (identity bucketing: the domain is tiny).
  CmOptions opts;
  opts.u_cols = {1};
  opts.u_bucketers = {Bucketer::Identity()};
  opts.c_col = 0;
  auto cm = CorrelationMap::Create(&people, opts);
  if (!cm.ok()) {
    std::cerr << cm.status().ToString() << "\n";
    return 1;
  }
  (void)cm->BuildFromTable();
  std::cout << "CM on city holds " << cm->NumUKeys() << " cities mapping to "
            << cm->NumEntries() << " (city, state) pairs -- "
            << cm->SizeBytes() << " bytes vs " << people.TotalTuples() * 20
            << " for a dense secondary index\n\n";

  // 4. The query, rewritten through the CM (predicate introduction).
  Query q({Predicate::In(people, "city",
                         {Value("Boston"), Value("Springfield")})});
  auto rewritten = RewriteWithCm(people, *cm, *cidx, q);
  std::cout << "rewritten SQL:\n  " << rewritten->sql << "\n\n";

  // 5. Execute via the CM scan and compute the average.
  auto result = CmScan(people, *cm, *cidx, q);
  double sum = 0;
  for (RowId r : result.rows) sum += people.GetValue(r, 2).AsDouble();
  std::cout << "AVG(salary) = " << sum / double(result.rows.size()) << " over "
            << result.rows.size() << " matching rows (examined "
            << result.rows_examined << " rows in " << result.io.seeks
            << " seek(s))\n";

  // Cross-check against a full scan.
  auto scan = FullTableScan(people, q);
  std::cout << "full-scan cross-check: "
            << (scan.rows == result.rows ? "identical rows" : "MISMATCH")
            << "\n";
  return 0;
}
