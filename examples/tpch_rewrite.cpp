// Warehouse scenario: predicate introduction on a lineitem-like table. The
// shipdate -> receiptdate soft FD ("bumps" of 2/4/5 shipping days) lets a
// query on shipdate borrow the receiptdate clustered index. This example
// prints the rewritten SQL the paper's front-end would send to PostgreSQL
// (§7.1) and compares the access paths.
//
// Demonstrates: paper §3.3/Fig. 3 (TPC-H shipdate/receiptdate
// correlation), §7.1 (SQL predicate introduction front-end).
// Build & run: cmake -B build -S . && cmake --build build -j &&
//   ./build/example_tpch_rewrite      (index: docs/EXAMPLES.md)
#include <iostream>

#include "common/table_printer.h"
#include "core/correlation_map.h"
#include "core/rewriter.h"
#include "exec/access_path.h"
#include "index/clustered_index.h"
#include "workload/tpch_gen.h"

using namespace corrmap;

int main() {
  TpchGenConfig cfg;
  cfg.num_rows = 400'000;
  auto lineitem = GenerateLineitem(cfg);
  (void)lineitem->ClusterBy(kTpch.receiptdate);
  auto cidx = ClusteredIndex::Build(*lineitem, kTpch.receiptdate);

  CmOptions opts;
  opts.u_cols = {kTpch.shipdate};
  opts.u_bucketers = {Bucketer::Identity()};
  opts.c_col = kTpch.receiptdate;
  auto cm = CorrelationMap::Create(lineitem.get(), opts);
  (void)cm->BuildFromTable();
  std::cout << "CM(shipdate -> receiptdate): " << cm->NumUKeys()
            << " shipdates, " << cm->NumEntries() << " pairs, "
            << TablePrinter::FmtBytes(cm->SizeBytes()) << "\n\n";

  Query q({Predicate::Eq(*lineitem, "shipdate", Value(1234))});
  auto rewritten = RewriteWithCm(*lineitem, *cm, *cidx, q);
  std::cout << "original:  SELECT AVG(extendedprice * discount) FROM lineitem"
               " WHERE shipdate = 1234\n";
  std::cout << "rewritten: " << rewritten->sql << "\n\n";

  auto via_cm = CmScan(*lineitem, *cm, *cidx, q);
  auto scan = FullTableScan(*lineitem, q);
  double acc = 0;
  for (RowId r : via_cm.rows) {
    acc += lineitem->GetValue(r, kTpch.extendedprice).AsDouble() *
           lineitem->GetValue(r, kTpch.discount).AsDouble();
  }
  std::cout << "AVG(extendedprice * discount) = "
            << (via_cm.rows.empty() ? 0.0 : acc / double(via_cm.rows.size()))
            << " over " << via_cm.rows.size() << " rows\n";
  std::cout << "cm_scan: " << TablePrinter::Fmt(via_cm.ms, 1)
            << " ms   seq_scan: " << TablePrinter::Fmt(scan.ms, 1)
            << " ms   (speedup "
            << TablePrinter::Fmt(scan.ms / std::max(1e-9, via_cm.ms), 1)
            << "x)\n";
  return via_cm.rows == scan.rows ? 0 : 1;
}
