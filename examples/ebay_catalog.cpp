// Catalogue scenario (the paper's Experiment 1 in miniature): a product
// table clustered on category id, with prices strongly (but softly)
// determined by category. A bucketed CM on Price answers range queries at
// near-B+Tree speed with a structure thousands of times smaller.
//
// Demonstrates: paper §7.1.1 (catalogue dataset), §7.2 Experiment 1
// (CM vs B+Tree on the Price -> CATID correlation), §5.4 (bucketing).
// Build & run: cmake -B build -S . && cmake --build build -j &&
//   ./build/example_ebay_catalog      (index: docs/EXAMPLES.md)
#include <iostream>

#include "common/table_printer.h"
#include "core/correlation_map.h"
#include "exec/access_path.h"
#include "index/clustered_index.h"
#include "workload/ebay_gen.h"

using namespace corrmap;

int main() {
  EbayGenConfig cfg;
  cfg.num_categories = 800;
  auto items = GenerateEbayItems(cfg);
  (void)items->ClusterBy(kEbay.catid);
  auto cidx = ClusteredIndex::Build(*items, kEbay.catid);
  auto cbuckets = ClusteredBucketing::Build(*items, kEbay.catid,
                                            10 * items->TuplesPerPage());

  std::cout << "catalogue: " << items->TotalTuples() << " items in "
            << cfg.num_categories << " categories, "
            << TablePrinter::FmtBytes(items->HeapBytes()) << " heap\n";

  // CM on Price with 2^10 distinct values per bucket.
  CmOptions opts;
  opts.u_cols = {kEbay.price};
  opts.u_bucketers = {Bucketer::ValueOrdinalFromColumn(*items, kEbay.price, 10)};
  opts.c_col = kEbay.catid;
  opts.c_buckets = &*cbuckets;
  auto cm = CorrelationMap::Create(items.get(), opts);
  (void)cm->BuildFromTable();
  std::cout << "CM on Price: " << TablePrinter::FmtBytes(cm->SizeBytes())
            << " (" << cm->NumEntries() << " pairs); a dense index would be "
            << TablePrinter::FmtBytes(items->TotalTuples() * 20) << "\n\n";

  TablePrinter out({"query", "access path", "simulated ms", "matches"});
  for (double lo : {5'000.0, 250'000.0, 900'000.0}) {
    Query q({Predicate::Between(*items, "Price", Value(lo), Value(lo + 500))});
    auto cms = CmScan(*items, *cm, *cidx, q);
    auto scan = FullTableScan(*items, q);
    std::string label = "Price in [";
    label += std::to_string(int(lo));
    label += ", ";
    label += std::to_string(int(lo + 500));
    label += ']';
    out.AddRow({label, "cm_scan", TablePrinter::Fmt(cms.ms, 2),
                std::to_string(cms.rows.size())});
    out.AddRow({label, "seq_scan", TablePrinter::Fmt(scan.ms, 2),
                std::to_string(scan.rows.size())});
    if (cms.rows != scan.rows) {
      std::cerr << "result mismatch!\n";
      return 1;
    }
  }
  out.Print(std::cout);
  std::cout << "\nCM answers match the scan exactly; bucketing introduces "
               "only extra examined rows, never wrong answers.\n";
  return 0;
}
