// Physical-design scenario (the paper's §8 outlook): hand the designer a
// workload and a space budget; it scores every candidate clustering,
// chooses the one whose correlations help the most queries, and selects a
// set of CMs by benefit-per-byte within the budget.
//
// Demonstrates: paper §8 (conclusion/future work: correlation-aware
// physical design), building on the §6 Advisor's estimates.
// Build & run: cmake -B build -S . && cmake --build build -j &&
//   ./build/example_physical_design   (index: docs/EXAMPLES.md)
#include <iostream>

#include "common/table_printer.h"
#include "core/designer.h"
#include "workload/tpch_gen.h"

using namespace corrmap;

int main() {
  TpchGenConfig cfg;
  cfg.num_rows = 300'000;
  auto lineitem = GenerateLineitem(cfg);

  std::vector<Query> workload = {
      Query({Predicate::Eq(*lineitem, "shipdate", Value(500))}),
      Query({Predicate::In(*lineitem, "shipdate", {Value(90), Value(1200)})}),
      Query({Predicate::Eq(*lineitem, "commitdate", Value(777)),
             Predicate::Eq(*lineitem, "receiptdate", Value(781))}),
  };
  std::cout << "workload:\n";
  for (const auto& q : workload) {
    std::cout << "  SELECT ... WHERE " << q.ToString(*lineitem) << "\n";
  }

  DesignerConfig dcfg;
  dcfg.space_budget_bytes = 4 << 20;
  auto design = DesignPhysicalLayout(*lineitem, workload, dcfg);
  if (!design.ok()) {
    std::cerr << design.status().ToString() << "\n";
    return 1;
  }

  std::cout << "\nclustering candidates scored:\n";
  TablePrinter cands({"clustered attribute", "workload cost [ms]",
                      "queries helped"});
  for (const auto& c : design->considered) {
    cands.AddRow({lineitem->schema().column(c.clustered_col).name,
                  TablePrinter::Fmt(c.workload_cost_ms, 1),
                  std::to_string(c.queries_helped)});
  }
  cands.Print(std::cout);

  auto clustered = lineitem->Clone();
  (void)clustered->ClusterBy(design->clustering.clustered_col);
  std::cout << "\nchosen clustering: "
            << lineitem->schema().column(design->clustering.clustered_col).name
            << "\nrecommended CMs ("
            << TablePrinter::FmtBytes(design->total_cm_bytes) << " of "
            << TablePrinter::FmtBytes(dcfg.space_budget_bytes)
            << " budget):\n";
  TablePrinter cms({"CM design", "est size", "est c_per_u"});
  for (const auto& d : design->cms) {
    cms.AddRow({d.Label(*clustered),
                TablePrinter::FmtBytes(uint64_t(d.est_size_bytes)),
                TablePrinter::Fmt(d.est_c_per_u, 2)});
  }
  cms.Print(std::cout);
  return 0;
}
