// CM Advisor tour: feed a training query to the advisor, inspect the
// candidate bucketings (Table 4 style), the design space with estimates
// (Table 5 style), and the recommendation; then materialize the CM and run
// the query through the cost-based executor.
//
// Demonstrates: paper §6 (CM Advisor: bucketing enumeration §6.1.2,
// design enumeration §6.1.3, recommendation), Tables 4 and 5.
// Build & run: cmake -B build -S . && cmake --build build -j &&
//   ./build/example_advisor_tour      (index: docs/EXAMPLES.md)
#include <iostream>

#include "common/table_printer.h"
#include "core/advisor.h"
#include "exec/executor.h"
#include "workload/sdss_gen.h"

using namespace corrmap;

int main() {
  SdssGenConfig cfg;
  cfg.num_rows = 300'000;
  auto sky = GenerateSdssPhotoObj(cfg);
  (void)sky->ClusterBy(0);
  auto cidx = ClusteredIndex::Build(*sky, 0);
  auto cbuckets = ClusteredBucketing::Build(*sky, 0, 10 * sky->TuplesPerPage());

  // Training query: a field lookup restricted to primary observations.
  Query q({Predicate::In(*sky, "fieldID", {Value(42), Value(137)}),
           Predicate::Eq(*sky, "mode", Value(1))});
  std::cout << "training query: " << q.ToString(*sky) << "\n\n";

  CmAdvisor advisor(sky.get(), &*cidx, &*cbuckets);

  std::cout << "candidate bucketings (Table 4 style):\n";
  TablePrinter cands({"column", "cardinality", "widths"});
  for (const auto& c : advisor.CandidateBucketings(q)) {
    cands.AddRow({c.column_name, std::to_string(uint64_t(c.cardinality + 0.5)),
                  c.WidthsLabel()});
  }
  cands.Print(std::cout);

  auto designs = advisor.EnumerateDesigns(q);
  std::cout << "\n" << designs.size() << " candidate designs; cheapest five:\n";
  TablePrinter top({"design", "est cost [ms]", "est c_per_u", "est size"});
  for (size_t i = 0; i < designs.size() && i < 5; ++i) {
    top.AddRow({designs[i].Label(*sky),
                TablePrinter::Fmt(designs[i].est_cost_ms, 1),
                TablePrinter::Fmt(designs[i].est_c_per_u, 2),
                TablePrinter::FmtBytes(uint64_t(designs[i].est_size_bytes))});
  }
  top.Print(std::cout);

  auto rec = advisor.Recommend(q);
  if (!rec.ok()) {
    std::cout << "\nadvisor: " << rec.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nrecommended: " << rec->Label(*sky) << "\n";

  auto cm = advisor.BuildCm(*rec);
  if (!cm.ok()) {
    std::cerr << cm.status().ToString() << "\n";
    return 1;
  }

  Executor executor(sky.get(), &*cidx);
  executor.AttachCm(&*cm);
  auto run = executor.Execute(q);
  std::cout << "\nexecutor candidates:\n";
  TablePrinter plans({"plan", "est ms", "chosen"});
  for (const auto& c : run.candidates) {
    plans.AddRow({c.description, TablePrinter::Fmt(c.estimated_ms, 1),
                  c.chosen ? "  *" : ""});
  }
  plans.Print(std::cout);
  std::cout << "\nexecuted " << run.result.path << ": "
            << run.result.rows.size() << " rows in "
            << TablePrinter::Fmt(run.result.ms, 1) << " simulated ms\n";
  return 0;
}
