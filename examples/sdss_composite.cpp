// Sky-survey scenario (the paper's Experiment 5 in miniature): neither ra
// nor dec alone predicts an object's position in the objID-clustered table,
// but the (ra, dec) pair does. A composite CM exploits the pair correlation
// that a composite B+Tree cannot (it can only use its key prefix for a
// two-range predicate).
//
// Demonstrates: paper §7.2 Experiment 5 / Table 6 (composite CMs),
// §5 (composite unclustered attribute sets).
// Build & run: cmake -B build -S . && cmake --build build -j &&
//   ./build/example_sdss_composite    (index: docs/EXAMPLES.md)
#include <iostream>

#include "common/table_printer.h"
#include "core/correlation_map.h"
#include "exec/access_path.h"
#include "index/clustered_index.h"
#include "index/secondary_index.h"
#include "workload/sdss_gen.h"

using namespace corrmap;

int main() {
  SdssGenConfig cfg;
  cfg.num_rows = 400'000;
  auto sky = GenerateSdssPhotoObj(cfg);
  (void)sky->ClusterBy(0);  // objID
  auto cidx = ClusteredIndex::Build(*sky, 0);
  auto cbuckets = ClusteredBucketing::Build(*sky, 0, 10 * sky->TuplesPerPage());

  const size_t ra = *sky->ColumnIndex("ra");
  const size_t dec = *sky->ColumnIndex("dec");

  auto make_cm = [&](std::vector<size_t> cols, std::vector<Bucketer> bks) {
    CmOptions opts;
    opts.u_cols = std::move(cols);
    opts.u_bucketers = std::move(bks);
    opts.c_col = 0;
    opts.c_buckets = &*cbuckets;
    auto cm = CorrelationMap::Create(sky.get(), opts);
    (void)cm->BuildFromTable();
    return std::move(*cm);
  };
  auto cm_ra = make_cm({ra}, {Bucketer::NumericWidth(0.25)});
  auto cm_pair = make_cm({ra, dec}, {Bucketer::NumericWidth(0.25),
                                     Bucketer::NumericWidth(0.25)});
  SecondaryIndex btree(sky.get(), {ra, dec});
  (void)btree.BuildFromTable();

  // A small sky box.
  Query q({Predicate::Between(*sky, "ra", Value(170.0), Value(171.2)),
           Predicate::Between(*sky, "dec", Value(3.0), Value(4.1))});

  auto scan = FullTableScan(*sky, q);
  auto r_ra = CmScan(*sky, cm_ra, *cidx, q);
  auto r_pair = CmScan(*sky, cm_pair, *cidx, q);
  auto r_bt = SortedIndexScan(*sky, btree, q);

  TablePrinter out({"access path", "simulated ms", "size", "matches"});
  out.AddRow({"seq_scan", TablePrinter::Fmt(scan.ms, 1), "-",
              std::to_string(scan.rows.size())});
  out.AddRow({"cm_scan CM(ra)", TablePrinter::Fmt(r_ra.ms, 1),
              TablePrinter::FmtBytes(cm_ra.SizeBytes()),
              std::to_string(r_ra.rows.size())});
  out.AddRow({"cm_scan CM(ra,dec)", TablePrinter::Fmt(r_pair.ms, 1),
              TablePrinter::FmtBytes(cm_pair.SizeBytes()),
              std::to_string(r_pair.rows.size())});
  out.AddRow({"sorted_index_scan B+Tree(ra,dec)",
              TablePrinter::Fmt(r_bt.ms, 1),
              TablePrinter::FmtBytes(btree.SizeBytes()),
              std::to_string(r_bt.rows.size())});
  out.Print(std::cout);

  const bool agree =
      scan.rows == r_ra.rows && scan.rows == r_pair.rows && scan.rows == r_bt.rows;
  std::cout << "\nall paths return " << (agree ? "identical" : "DIFFERENT")
            << " rows; the composite CM sweeps only the sky cells where "
               "both ranges intersect.\n";
  return agree ? 0 : 1;
}
