// Tests for the maintenance driver: batched inserts keep the table, B+Trees
// and CMs mutually consistent; buffer-pool pressure grows with index count;
// CM maintenance stays cheap; WAL-based crash recovery restores CMs.
#include <gtest/gtest.h>

#include <array>

#include "common/rng.h"
#include "core/maintenance.h"
#include "exec/access_path.h"

namespace corrmap {
namespace {

/// Small correlated table clustered on c, used as the insert target.
struct Target {
  std::unique_ptr<Table> table;
  std::unique_ptr<ClusteredIndex> cidx;

  explicit Target(size_t rows = 20000) {
    Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u"),
                   ColumnDef::Int64("v")});
    table = std::make_unique<Table>("t", std::move(schema));
    Rng rng(83);
    for (size_t i = 0; i < rows; ++i) {
      const int64_t u = rng.UniformInt(0, 999);
      std::array<Value, 3> row = {Value(u / 10), Value(u),
                                  Value(rng.UniformInt(0, 999))};
      EXPECT_TRUE(table->AppendRow(row).ok());
    }
    EXPECT_TRUE(table->ClusterBy(0).ok());
    auto ci = ClusteredIndex::Build(*table, 0);
    EXPECT_TRUE(ci.ok());
    cidx = std::make_unique<ClusteredIndex>(std::move(*ci));
  }

  std::vector<std::vector<Key>> MakeBatch(size_t n, uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<Key>> rows;
    for (size_t i = 0; i < n; ++i) {
      const int64_t u = rng.UniformInt(0, 999);
      rows.push_back({Key(u / 10), Key(u), Key(rng.UniformInt(0, 999))});
    }
    return rows;
  }
};

TEST(MaintenanceTest, InsertBatchUpdatesAllStructures) {
  Target target;
  BufferPool pool(4096);
  WriteAheadLog wal;
  MaintenanceDriver driver(target.table.get(), &pool, &wal);

  BTreeOptions bopts;
  bopts.pool = &pool;
  bopts.file_id = pool.RegisterFile();
  SecondaryIndex idx(target.table.get(), {1}, bopts);
  ASSERT_TRUE(idx.BuildFromTable().ok());
  driver.AttachBTree(&idx);

  CmOptions copts;
  copts.u_cols = {1};
  copts.u_bucketers = {Bucketer::Identity()};
  copts.c_col = 0;
  auto cm = CorrelationMap::Create(target.table.get(), copts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());
  driver.AttachCm(&*cm);

  const size_t rows_before = target.table->NumRows();
  const size_t entries_before = idx.NumEntries();
  driver.InsertBatch(target.MakeBatch(500, 1));

  EXPECT_EQ(target.table->NumRows(), rows_before + 500);
  EXPECT_EQ(idx.NumEntries(), entries_before + 500);
  EXPECT_TRUE(cm->CheckInvariants().ok());
  EXPECT_EQ(driver.report().tuples_inserted, 500u);
  EXPECT_GT(driver.report().insert_ms, 0.0);
  EXPECT_GE(wal.num_flushes(), 2u);  // prepare + commit

  // Consistency: a CM scan and an index scan agree with a full scan after
  // the batch.
  Query q({Predicate::Eq(*target.table, "u", Value(250))});
  auto scan = FullTableScan(*target.table, q);
  auto cms = CmScan(*target.table, *cm, *target.cidx, q);
  EXPECT_EQ(cms.rows, scan.rows);
  std::vector<RowId> via_idx =
      idx.LookupEqual(CompositeKey(Key(int64_t{250})));
  std::sort(via_idx.begin(), via_idx.end());
  EXPECT_EQ(via_idx, scan.rows);
}

TEST(MaintenanceTest, MoreBTreesMoreDirtyPressure) {
  // The Fig. 8 mechanism in miniature: insert cost grows with the number of
  // attached B+Trees, while CM cost stays near the 0-index baseline.
  auto run_with = [&](size_t n_btrees, size_t n_cms) {
    Target target(30000);
    BufferPool pool(512);  // deliberately tight
    WriteAheadLog wal;
    MaintenanceDriver driver(target.table.get(), &pool, &wal);
    std::vector<std::unique_ptr<SecondaryIndex>> idxs;
    for (size_t i = 0; i < n_btrees; ++i) {
      BTreeOptions bopts;
      bopts.pool = &pool;
      bopts.file_id = pool.RegisterFile();
      idxs.push_back(std::make_unique<SecondaryIndex>(
          target.table.get(), std::vector<size_t>{1 + (i % 2)}, bopts));
      EXPECT_TRUE(idxs.back()->BuildFromTable().ok());
      driver.AttachBTree(idxs.back().get());
    }
    std::vector<std::unique_ptr<CorrelationMap>> cms;
    for (size_t i = 0; i < n_cms; ++i) {
      CmOptions copts;
      copts.u_cols = {1 + (i % 2)};
      copts.u_bucketers = {Bucketer::Identity()};
      copts.c_col = 0;
      auto cm = CorrelationMap::Create(target.table.get(), copts);
      EXPECT_TRUE(cm.ok());
      EXPECT_TRUE(cm->BuildFromTable().ok());
      cms.push_back(std::make_unique<CorrelationMap>(std::move(*cm)));
      driver.AttachCm(cms.back().get());
    }
    pool.DrainIo();  // discard build-time I/O
    for (int b = 0; b < 5; ++b) {
      driver.InsertBatch(target.MakeBatch(2000, uint64_t(b) + 10));
    }
    return driver.report().insert_ms;
  };

  const double none = run_with(0, 0);
  const double five_btrees = run_with(5, 0);
  const double five_cms = run_with(0, 5);
  EXPECT_GT(five_btrees, none * 1.5);
  EXPECT_LT(five_cms, none * 1.3);
  EXPECT_LT(five_cms * 2, five_btrees);
}

TEST(MaintenanceTest, BatchedCmInsertMatchesRowAtATime) {
  // The sort-and-merge batch path must leave the CM in exactly the state
  // the row-at-a-time path produces, for batches with heavy duplication.
  auto records_sorted = [](const CorrelationMap& cm) {
    auto recs = cm.ToRecords();
    std::sort(recs.begin(), recs.end(),
              [](const CorrelationMap::Record& a,
                 const CorrelationMap::Record& b) {
                if (a.u < b.u) return true;
                if (b.u < a.u) return false;
                return a.c_ordinal < b.c_ordinal;
              });
    return recs;
  };

  auto run = [&](bool sort_batches) {
    Target target;
    BufferPool pool(4096);
    WriteAheadLog wal;
    MaintenanceConfig config;
    config.sort_batches = sort_batches;
    MaintenanceDriver driver(target.table.get(), &pool, &wal, config);
    CmOptions copts;
    copts.u_cols = {1};
    copts.u_bucketers = {Bucketer::Identity()};
    copts.c_col = 0;
    auto cm = CorrelationMap::Create(target.table.get(), copts);
    EXPECT_TRUE(cm.ok());
    EXPECT_TRUE(cm->BuildFromTable().ok());
    driver.AttachCm(&*cm);
    for (int b = 0; b < 3; ++b) {
      driver.InsertBatch(target.MakeBatch(2000, uint64_t(b) + 7));
    }
    EXPECT_TRUE(cm->CheckInvariants().ok());
    return records_sorted(*cm);
  };

  const auto batched = run(/*sort_batches=*/true);
  const auto row_at_a_time = run(/*sort_batches=*/false);
  ASSERT_EQ(batched.size(), row_at_a_time.size());
  for (size_t i = 0; i < batched.size(); ++i) {
    EXPECT_TRUE(batched[i].u == row_at_a_time[i].u);
    EXPECT_EQ(batched[i].c_ordinal, row_at_a_time[i].c_ordinal);
    EXPECT_EQ(batched[i].count, row_at_a_time[i].count);
  }
}

TEST(MaintenanceTest, CrashRecoveryRebuildsCmFromWal) {
  Target target;
  BufferPool pool(4096);
  WriteAheadLog wal;
  MaintenanceDriver driver(target.table.get(), &pool, &wal);

  CmOptions copts;
  copts.u_cols = {1};
  copts.u_bucketers = {Bucketer::Identity()};
  copts.c_col = 0;
  auto cm = CorrelationMap::Create(target.table.get(), copts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());
  driver.AttachCm(&*cm);

  // Checkpoint the CM, then apply a committed batch and crash.
  auto checkpoint = cm->ToRecords();
  const size_t committed_rows = target.table->NumRows();
  driver.InsertBatch(target.MakeBatch(300, 2));
  wal.Crash();  // nothing pending: batch was committed via 2PC

  // Recovery: restore checkpoint, replay committed row inserts.
  auto recovered = CorrelationMap::Create(target.table.get(), copts);
  ASSERT_TRUE(recovered.ok());
  ASSERT_TRUE(recovered->LoadRecords(checkpoint).ok());
  for (RowId r = committed_rows; r < target.table->NumRows(); ++r) {
    recovered->InsertRow(r);
  }
  EXPECT_EQ(recovered->NumEntries(), cm->NumEntries());
  EXPECT_EQ(recovered->NumUKeys(), cm->NumUKeys());
}

TEST(MaintenanceTest, MixedSelectsChargePoolReads) {
  Target target;
  BufferPool pool(256);
  WriteAheadLog wal;
  MaintenanceDriver driver(target.table.get(), &pool, &wal);

  BTreeOptions bopts;
  bopts.pool = &pool;
  bopts.file_id = pool.RegisterFile();
  SecondaryIndex idx(target.table.get(), {1}, bopts);
  ASSERT_TRUE(idx.BuildFromTable().ok());
  driver.AttachBTree(&idx);
  pool.DrainIo();

  Query q({Predicate::Eq(*target.table, "u", Value(77))});
  auto r1 = driver.SelectViaBTree(idx, q);
  auto scan = FullTableScan(*target.table, q);
  EXPECT_EQ(r1.rows, scan.rows);
  EXPECT_GT(driver.report().select_ms, 0.0);
}

TEST(MaintenanceTest, SelectViaCmAgreesAndStaysCheapUnderInserts) {
  Target target;
  BufferPool pool(1024);
  WriteAheadLog wal;
  MaintenanceDriver driver(target.table.get(), &pool, &wal);

  CmOptions copts;
  copts.u_cols = {1};
  copts.u_bucketers = {Bucketer::Identity()};
  copts.c_col = 0;
  auto cm = CorrelationMap::Create(target.table.get(), copts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());
  driver.AttachCm(&*cm);

  driver.InsertBatch(target.MakeBatch(1000, 3));
  Query q({Predicate::Eq(*target.table, "u", Value(123))});
  auto via_cm = driver.SelectViaCm(*cm, *target.cidx, q);
  auto scan = FullTableScan(*target.table, q);
  EXPECT_EQ(via_cm.rows, scan.rows);
}

}  // namespace
}  // namespace corrmap
