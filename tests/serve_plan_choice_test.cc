// Plan-parity battery for the cost-based serving engine: for a matrix of
// predicates x CM configurations x tail sizes,
//   (a) probe==scan row-exactness holds for whichever plan wins,
//   (b) the engine's chosen plan equals the offline arbiter's choice on
//       the same epoch snapshot -- both the engine's own PlanSelect
//       deliberation and, at quiescence, a from-scratch offline Executor
//       over mirrored structures,
//   (c) attaching a strictly cheaper CM actually switches the winner
//       (first-match would have stayed with the incumbent),
// plus buffer-pool calibration behavior: residency warms with the
// workload, prices hot clustered ranges down monotonically, never touches
// the in-RAM CM probe term, and resets cold across a recluster swap.
#include <gtest/gtest.h>

#include <array>
#include <limits>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "exec/access_path.h"
#include "exec/executor.h"
#include "exec/plan_choice.h"
#include "index/clustered_index.h"
#include "obs/serving_metrics.h"
#include "serve/serving_engine.h"
#include "storage/table.h"

namespace corrmap {
namespace {

using serve::PlanCalibration;
using serve::SelectResult;
using serve::ServingEngine;
using serve::ServingOptions;

/// Correlated three-column world: c ~ u/4 (strong soft FD), v random
/// (uncorrelated with c -- a CM over v is a deliberately bad candidate).
struct PlanWorld {
  std::unique_ptr<Table> table;
  std::unique_ptr<ClusteredIndex> cidx;
  std::unique_ptr<ServingEngine> engine;

  explicit PlanWorld(ServingOptions opts = MakeOptions(), int rows = 120000) {
    Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u"),
                   ColumnDef::Int64("v")});
    table = std::make_unique<Table>("t", std::move(schema));
    Rng rng(91);
    for (int i = 0; i < rows; ++i) {
      const int64_t u = rng.UniformInt(0, 1999);
      std::array<Value, 3> row = {Value(u / 4 + rng.UniformInt(0, 1)),
                                  Value(u), Value(rng.UniformInt(0, 99))};
      EXPECT_TRUE(table->AppendRow(row).ok());
    }
    EXPECT_TRUE(table->ClusterBy(0).ok());
    auto ci = ClusteredIndex::Build(*table, 0);
    EXPECT_TRUE(ci.ok());
    cidx = std::make_unique<ClusteredIndex>(std::move(*ci));
    engine = std::make_unique<ServingEngine>(table.get(), cidx.get(), opts);
  }

  static ServingOptions MakeOptions() {
    ServingOptions opts;
    opts.num_workers = 1;
    opts.reserve_rows = 120000 + 80000;
    // Deterministic parity runs: never refresh calibration, so plan
    // costing stays at the cold snapshot an offline Executor also uses.
    opts.calibration_period = 0;
    return opts;
  }

  Status AttachIdentityCm(size_t col) {
    CmOptions copts;
    copts.u_cols = {col};
    copts.u_bucketers = {Bucketer::Identity()};
    copts.c_col = 0;
    return engine->AttachCm(copts);
  }

  Status AttachWidthCm(size_t col, double width) {
    CmOptions copts;
    copts.u_cols = {col};
    copts.u_bucketers = {Bucketer::NumericWidth(width)};
    copts.c_col = 0;
    return engine->AttachCm(copts);
  }

  std::vector<std::vector<Key>> MakeRows(int n, uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<Key>> rows;
    rows.reserve(size_t(n));
    for (int i = 0; i < n; ++i) {
      const int64_t u = rng.UniformInt(0, 1999);
      rows.push_back(
          {Key(u / 4), Key(u), Key(rng.UniformInt(0, 99))});
    }
    return rows;
  }

  std::vector<Query> QueryMatrix() const {
    const Table& t = *table;
    return {
        Query({Predicate::Eq(t, "u", Value(777))}),
        Query({Predicate::Between(t, "u", Value(100), Value(140))}),
        Query({Predicate::Between(t, "u", Value(0), Value(1900))}),
        Query({Predicate::Eq(t, "c", Value(100))}),
        Query({Predicate::Between(t, "c", Value(40), Value(80))}),
        Query({Predicate::Eq(t, "v", Value(55))}),
        Query({Predicate::Between(t, "v", Value(10), Value(20))}),
        Query({Predicate::Eq(t, "u", Value(400)),
               Predicate::Between(t, "c", Value(90), Value(120))}),
    };
  }
};

/// (a) + (b): whichever plan wins must count exactly what a scan counts,
/// and the engine's executed choice must equal the offline deliberation
/// on the same snapshot.
void ExpectExactAndParity(PlanWorld& w, const Query& q) {
  const PlanSet offline = w.engine->PlanSelect(q);
  const SelectResult probe = w.engine->ExecuteSelect(q);
  const ExecResult scan = FullTableScan(w.engine->table(), q);
  ASSERT_EQ(probe.num_matches, scan.NumMatches())
      << "plan " << probe.plan << " diverged from scan";
  EXPECT_EQ(probe.plan_kind, offline.chosen_plan().kind);
  EXPECT_EQ(probe.plan, offline.chosen_plan().description);
  EXPECT_DOUBLE_EQ(probe.plan_est_ms, offline.chosen_plan().est_ms);
  if (probe.plan_kind == PlanKind::kCmProbe) {
    EXPECT_EQ(probe.plan_cm_slot, offline.chosen_plan().slot);
  } else {
    EXPECT_EQ(probe.plan_cm_slot, SelectResult::kNoCmSlot);
  }
  EXPECT_GE(probe.plan_candidates, 1u);
}

TEST(ServePlanChoiceTest, MatrixProbeEqualsScanAndEngineMatchesOffline) {
  PlanWorld w;
  ASSERT_TRUE(w.AttachIdentityCm(1).ok());   // good CM over u
  ASSERT_TRUE(w.AttachWidthCm(1, 200).ok()); // coarse competitor over u
  ASSERT_TRUE(w.AttachIdentityCm(2).ok());   // uncorrelated CM over v

  const std::vector<Query> queries = w.QueryMatrix();

  for (const size_t tail : {size_t(0), size_t(3000), size_t(40000)}) {
    if (tail > 0) {
      const size_t grow = tail - (w.engine->table().NumRows() -
                                  size_t(w.engine->clustered_boundary()));
      ASSERT_TRUE(
          w.engine->ApplyAppend(w.MakeRows(int(grow), 0x77 + tail)).ok());
      ASSERT_EQ(w.engine->TailRows(), tail);
    }
    for (const Query& q : queries) ExpectExactAndParity(w, q);
  }

  // Recluster back to a clean epoch: parity and exactness must hold on
  // the successor too (fresh cidx, re-based CMs, cold calibration).
  auto stats = w.engine->Recluster();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(w.engine->TailRows(), 0u);
  for (const Query& q : queries) ExpectExactAndParity(w, q);
}

TEST(ServePlanChoiceTest, EngineMatchesFromScratchOfflineExecutorAtQuiescence) {
  // The strongest parity form: rebuild the deliberation from nothing but
  // the epoch snapshot -- a fresh Executor over the engine's table with
  // its own ClusteredIndex and plain (unsharded) CMs mirroring the
  // attached set -- and require the same winner kind and CM slot.
  PlanWorld w;
  ASSERT_TRUE(w.AttachIdentityCm(1).ok());
  ASSERT_TRUE(w.AttachIdentityCm(2).ok());
  ASSERT_TRUE(w.engine->ApplyAppend(w.MakeRows(8000, 0x99)).ok());
  ASSERT_TRUE(w.engine->Recluster().ok());
  ASSERT_EQ(w.engine->TailRows(), 0u);

  const Table& table = w.engine->table();
  auto cidx = ClusteredIndex::Build(table, 0);
  ASSERT_TRUE(cidx.ok());
  Executor ex(&table, &*cidx);

  std::vector<std::unique_ptr<CorrelationMap>> mirrors;
  for (const size_t col : {size_t(1), size_t(2)}) {
    CmOptions copts;
    copts.u_cols = {col};
    copts.u_bucketers = {Bucketer::Identity()};
    copts.c_col = 0;
    auto cm = CorrelationMap::Create(&table, copts);
    ASSERT_TRUE(cm.ok());
    ASSERT_TRUE(cm->BuildFromTable().ok());
    mirrors.push_back(std::make_unique<CorrelationMap>(std::move(*cm)));
    ex.AttachCm(mirrors.back().get());
  }

  const std::vector<Query> queries = w.QueryMatrix();
  for (const Query& q : queries) {
    const SelectResult probe = w.engine->ExecuteSelect(q);
    CmLookupCache lookups;
    const PlanSet offline = ex.Plan(q, &lookups);
    EXPECT_EQ(probe.plan_kind, offline.chosen_plan().kind)
        << "engine chose " << probe.plan << ", offline Executor chose "
        << offline.chosen_plan().description;
    if (probe.plan_kind == PlanKind::kCmProbe) {
      EXPECT_EQ(probe.plan_cm_slot, offline.chosen_plan().slot);
    }
    // And the Executor's executed answer agrees with the engine's count.
    const ExecutorResult run = ex.Execute(q);
    EXPECT_EQ(probe.num_matches, run.result.NumMatches());
  }
}

TEST(ServePlanChoiceTest, CheaperCmAttachedSwitchesTheWinner) {
  // (c): with only a coarse (width-200 bucketed) CM over u attached, the
  // CM probe sweeps ~50 clustered values per lookup; attaching an
  // identity CM over the same column must flip the winner to the new
  // slot. First-match, by construction, stays with slot 0 forever.
  PlanWorld w;
  ASSERT_TRUE(w.AttachWidthCm(1, 200).ok());
  const Query eq({Predicate::Eq(*w.table, "u", Value(777))});

  const SelectResult before = w.engine->ExecuteSelect(eq);
  ASSERT_EQ(before.plan_kind, PlanKind::kCmProbe);
  ASSERT_EQ(before.plan_cm_slot, 0u);

  ASSERT_TRUE(w.AttachIdentityCm(1).ok());
  const SelectResult after = w.engine->ExecuteSelect(eq);
  EXPECT_EQ(after.plan_kind, PlanKind::kCmProbe);
  EXPECT_EQ(after.plan_cm_slot, 1u);  // the cheaper newcomer wins
  EXPECT_LT(after.plan_est_ms, before.plan_est_ms);

  w.engine->set_plan_choice(ServingOptions::PlanChoice::kFirstMatch);
  const SelectResult first_match = w.engine->ExecuteSelect(eq);
  EXPECT_EQ(first_match.plan_cm_slot, 0u);  // the legacy policy does not
  w.engine->set_plan_choice(ServingOptions::PlanChoice::kCostBased);

  // All three answered exactly.
  const ExecResult scan = FullTableScan(w.engine->table(), eq);
  EXPECT_EQ(before.num_matches, scan.NumMatches());
  EXPECT_EQ(after.num_matches, scan.NumMatches());
  EXPECT_EQ(first_match.num_matches, scan.NumMatches());
}

TEST(ServePlanChoiceTest, ClusteredPredicateBeatsFirstMatchScan) {
  // A query on the clustered column has no applicable CM: first-match
  // full-scans, the cost-based engine descends the clustered index.
  PlanWorld w;
  ASSERT_TRUE(w.AttachIdentityCm(1).ok());
  const Query eq({Predicate::Eq(*w.table, "c", Value(123))});

  const SelectResult cost_based = w.engine->ExecuteSelect(eq);
  EXPECT_EQ(cost_based.plan_kind, PlanKind::kClusteredRange);
  EXPECT_FALSE(cost_based.used_cm);

  w.engine->set_plan_choice(ServingOptions::PlanChoice::kFirstMatch);
  const SelectResult first_match = w.engine->ExecuteSelect(eq);
  EXPECT_EQ(first_match.plan_kind, PlanKind::kSeqScan);
  w.engine->set_plan_choice(ServingOptions::PlanChoice::kCostBased);

  EXPECT_EQ(cost_based.num_matches, first_match.num_matches);
  EXPECT_LT(cost_based.simulated_ms, first_match.simulated_ms);
}

TEST(ServePlanChoiceTest, UnpredicatedQueriesStillScanExactly) {
  PlanWorld w;
  ASSERT_TRUE(w.AttachIdentityCm(1).ok());
  Query all;  // no predicates: nothing applies, scan must win
  const SelectResult probe = w.engine->ExecuteSelect(all);
  EXPECT_EQ(probe.plan_kind, PlanKind::kSeqScan);
  EXPECT_EQ(probe.num_matches, w.engine->table().NumLiveRows());
}

TEST(ServePlanChoiceTest, ResidencyWarmsAndPricesHotClusteredRangeDown) {
  ServingOptions opts = PlanWorld::MakeOptions();
  opts.calibration_period = 8;  // refresh quickly for the test
  PlanWorld w(opts);
  ASSERT_TRUE(w.AttachIdentityCm(1).ok());
  const Query hot({Predicate::Between(*w.table, "c", Value(100),
                                      Value(130))});

  const SelectResult cold = w.engine->ExecuteSelect(hot);
  ASSERT_EQ(cold.plan_kind, PlanKind::kClusteredRange);
  EXPECT_DOUBLE_EQ(cold.heap_residency, 0.0);

  // Hammer the same range: its pages become resident, the decayed hit
  // rate climbs, and the periodic refresh publishes it into the epoch's
  // calibration snapshot.
  SelectResult last;
  for (int i = 0; i < 64; ++i) last = w.engine->ExecuteSelect(hot);
  const PlanCalibration calib = w.engine->CurrentCalibration();
  EXPECT_GT(calib.heap_residency, 0.5);
  EXPECT_LE(calib.heap_residency, 1.0);
  EXPECT_GT(calib.cidx_residency, 0.5);

  // The warm run is cheaper in both the estimate and the charged cost,
  // and monotone in residency by the effective-cost blend.
  EXPECT_LT(last.plan_est_ms, cold.plan_est_ms);
  EXPECT_LT(last.simulated_ms, cold.simulated_ms * 0.5);
  EXPECT_EQ(last.num_matches, cold.num_matches);

  // A recluster retires the hot epoch: the successor starts cold.
  ASSERT_TRUE(w.engine->ApplyAppend(w.MakeRows(1000, 0xAB)).ok());
  ASSERT_TRUE(w.engine->Recluster().ok());
  const PlanCalibration fresh = w.engine->CurrentCalibration();
  EXPECT_DOUBLE_EQ(fresh.heap_residency, 0.0);
  EXPECT_DOUBLE_EQ(fresh.cidx_residency, 0.0);
  const SelectResult post = w.engine->ExecuteSelect(hot);
  EXPECT_EQ(post.num_matches,
            FullTableScan(w.engine->table(), hot).NumMatches());
}

TEST(ServePlanChoiceTest, PlannerCostsMonotoneInResidencyCmProbeTermFixed) {
  // Planner-level calibration regression: the clustered-range candidate's
  // estimate falls monotonically with the published hit rate, the full
  // scan never gets the discount (it reads around the pool), and the CM
  // candidate's in-RAM probe term is residency-invariant.
  PlanWorld w;
  ASSERT_TRUE(w.AttachIdentityCm(1).ok());
  const Table& table = w.engine->table();
  auto cidx = ClusteredIndex::Build(table, 0);
  ASSERT_TRUE(cidx.ok());
  const CostModel model;

  CmOptions copts;
  copts.u_cols = {1};
  copts.u_bucketers = {Bucketer::Identity()};
  copts.c_col = 0;
  auto cm = CorrelationMap::Create(&table, copts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());
  const std::array<CmColumnPredicate, 1> preds = {
      CmColumnPredicate::Points({Key(int64_t{777})})};
  const CmLookupResult lookup = cm->Lookup(preds);
  CmPlanView view;
  view.lookup = &lookup;
  view.num_ukeys = cm->NumUKeys();
  view.name = cm->Name();

  const Query hot({Predicate::Between(*w.table, "c", Value(100),
                                      Value(130))});
  const Predicate& cpred = hot.predicates().front();

  auto ctx_at = [&](double r) {
    PlanContext ctx;
    ctx.table = &table;
    ctx.cidx = &*cidx;
    ctx.clustered_boundary = RowId(table.NumRows());
    ctx.n_rows = table.NumRows();
    ctx.heap_residency = r;
    ctx.cidx_residency = r;
    ctx.cost_model = &model;
    return ctx;
  };

  double prev_clustered = std::numeric_limits<double>::infinity();
  const double probe_term = model.CmLookupProbeCost(
      double(view.num_ukeys), double(lookup.entries_probed));
  double prev_cm = std::numeric_limits<double>::infinity();
  for (double r = 0.0; r <= 1.0; r += 0.25) {
    const PlanContext ctx = ctx_at(r);
    const std::vector<RowRange> ranges = ClusteredRangesFor(
        table, *cidx, cpred, ctx.clustered_boundary);
    const double clustered = ClusteredRangeCostMs(ctx, ranges, 1);
    EXPECT_LT(clustered, prev_clustered);
    prev_clustered = clustered;
    // Scan is residency-blind.
    EXPECT_DOUBLE_EQ(SeqScanCostMs(ctx), SeqScanCostMs(ctx_at(0.0)));
    // The CM candidate keeps the exact in-RAM probe term at every
    // residency; only its heap/descent terms shrink.
    const double cm_cost = CmProbeCostMs(ctx, view);
    EXPECT_GE(cm_cost, probe_term);
    EXPECT_LE(cm_cost, prev_cm);
    prev_cm = cm_cost;
  }
  // Fully hot clustered range is priced near CPU: far below cold.
  const std::vector<RowRange> cold_ranges =
      ClusteredRangesFor(table, *cidx, cpred, RowId(table.NumRows()));
  EXPECT_LT(prev_clustered * 100,
            ClusteredRangeCostMs(ctx_at(0.0), cold_ranges, 1));
}

TEST(ServePlanChoiceTest, PlanChoiceNeverWorseThanFirstMatchOnTheMatrix) {
  // Per-query A/B on one engine state: the cost-based simulated cost must
  // never exceed first-match by more than the pool-warmth noise floor.
  PlanWorld w;
  ASSERT_TRUE(w.AttachIdentityCm(1).ok());
  ASSERT_TRUE(w.AttachIdentityCm(2).ok());
  const std::vector<Query> queries = w.QueryMatrix();
  for (const Query& q : queries) {
    w.engine->ResetBufferPool();
    w.engine->set_plan_choice(ServingOptions::PlanChoice::kFirstMatch);
    const SelectResult fm = w.engine->ExecuteSelect(q);
    w.engine->ResetBufferPool();
    w.engine->set_plan_choice(ServingOptions::PlanChoice::kCostBased);
    const SelectResult cb = w.engine->ExecuteSelect(q);
    EXPECT_EQ(cb.num_matches, fm.num_matches);
    EXPECT_LE(cb.simulated_ms, fm.simulated_ms * 1.01 + 0.1)
        << "cost-based " << cb.plan << " vs first-match " << fm.plan;
  }
}

TEST(ServePlanChoiceTest, SecondaryIndexEntersTheSameDeliberationAsCms) {
  // A secondary index over u competes in the exact same ChooseAccessPlan
  // call as the CM candidates: both kinds must appear, the chosen plan
  // must be the estimated minimum over ALL of them, and execution stays
  // row-exact whichever wins.
  PlanWorld w;
  ASSERT_TRUE(w.AttachIdentityCm(1).ok());
  ASSERT_TRUE(w.engine->AttachSecondaryIndex({1}).ok());
  EXPECT_EQ(w.engine->num_secondary_indexes(), 1u);

  const Query q({Predicate::Eq(*w.table, "u", Value(777))});
  const PlanSet offline = w.engine->PlanSelect(q);
  bool saw_sidx = false;
  bool saw_cm = false;
  for (const PlanCandidate& c : offline.candidates) {
    saw_sidx = saw_sidx || c.kind == PlanKind::kSortedIndex;
    saw_cm = saw_cm || c.kind == PlanKind::kCmProbe;
    EXPECT_GE(c.est_ms, offline.chosen_plan().est_ms)
        << c.description << " beat the chosen " <<
        offline.chosen_plan().description;
  }
  EXPECT_TRUE(saw_sidx) << "sorted-index candidate missing from PlanSelect";
  EXPECT_TRUE(saw_cm);
  ExpectExactAndParity(w, q);
}

TEST(ServePlanChoiceTest, SecondaryIndexWinsNarrowSelectionWithoutACm) {
  // No CM attached: the only exact alternatives for Eq(u) are a full scan
  // and the secondary index. u=777 matches ~60 of 120k rows and the soft
  // FD keeps them physically near-contiguous, so the index's few short
  // runs must price below the scan and win.
  PlanWorld w;
  ASSERT_TRUE(w.engine->AttachSecondaryIndex({1}).ok());
  const Query q({Predicate::Eq(*w.table, "u", Value(777))});
  const PlanSet offline = w.engine->PlanSelect(q);
  EXPECT_EQ(offline.chosen_plan().kind, PlanKind::kSortedIndex);
  ExpectExactAndParity(w, q);
}

TEST(ServePlanChoiceTest, SecondaryIndexStaysExactThroughCrudAndRecluster) {
  // The per-epoch index covers only the build-time clustered region:
  // appends are swept from the tail, deleted rids are re-filtered at
  // execution, and a recluster rebuilds the index over the successor.
  // probe==scan must hold at every step.
  PlanWorld w;
  ASSERT_TRUE(w.engine->AttachSecondaryIndex({2}).ok());
  const Query q({Predicate::Eq(*w.table, "v", Value(55))});
  const Query qr(
      {Predicate::Between(*w.table, "v", Value(10), Value(20))});
  ExpectExactAndParity(w, q);
  ExpectExactAndParity(w, qr);

  ASSERT_TRUE(w.engine->ApplyAppend(w.MakeRows(4000, 7)).ok());
  for (RowId r = 0; r < 500; ++r) {
    ASSERT_TRUE(w.engine->ApplyDelete(r * 7).ok());
  }
  ExpectExactAndParity(w, q);
  ExpectExactAndParity(w, qr);

  auto stats = w.engine->Recluster();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->performed());
  EXPECT_EQ(w.engine->num_secondary_indexes(), 1u);
  EXPECT_EQ(w.engine->TailRows(), 0u);
  ExpectExactAndParity(w, q);
  ExpectExactAndParity(w, qr);
}

TEST(ServePlanChoiceTest, DriftRatiosStayWithinFactorTwoOnKnownEstimates) {
  // Drift-tracker acceptance gate on a workload where the estimates are
  // exactly knowable: with the buffer pool off, deliberation and
  // execution price the identical page runs through the identical cold
  // DiskModel arithmetic, so every plan kind's actual/estimated ratio
  // must sit near 1 -- gated at a factor of 2 in either direction. A kind
  // escaping that band means the cost model prices something execution
  // does not pay (or vice versa), which is exactly the regression this
  // series exists to catch. (With the pool on, the ratio instead measures
  // calibration lag -- see ResidencyWarmsAndPricesHotClusteredRangeDown
  // for that axis.)
  obs::ServingMetrics metrics;
  ServingOptions opts = PlanWorld::MakeOptions();
  opts.buffer_pool_pages = 0;  // cold-priced: estimates are exact
  opts.metrics = &metrics;
  PlanWorld w(opts);
  ASSERT_TRUE(w.AttachIdentityCm(1).ok());

  const std::vector<Query> matrix = w.QueryMatrix();
  for (int round = 0; round < 10; ++round) {
    for (const Query& q : matrix) (void)w.engine->ExecuteSelect(q);
    // Keep a tail in play so the tail-sweep term is exercised too.
    ASSERT_TRUE(w.engine->ApplyAppend(w.MakeRows(200, 17 + round)).ok());
  }

  const obs::DriftTracker::Snapshot s = metrics.drift().snapshot();
  uint64_t sampled = 0;
  for (size_t k = 0; k < obs::DriftTracker::kNumKinds; ++k) {
    const obs::DriftTracker::KindDrift& d = s.lifetime[k];
    if (d.selects == 0 || d.est_ms <= 0) continue;
    sampled += d.selects;
    EXPECT_GE(d.Ratio(), 0.5) << "plan kind " << k << " underestimated "
                              << d.Ratio() << "x over " << d.selects
                              << " selects";
    EXPECT_LE(d.Ratio(), 2.0) << "plan kind " << k << " overestimated "
                              << d.Ratio() << "x over " << d.selects
                              << " selects";
  }
  // The matrix spans scans, clustered ranges, and CM probes; most of the
  // cost-based selects must have contributed estimate mass.
  EXPECT_GT(sampled, 40u);
}

}  // namespace
}  // namespace corrmap
