// End-to-end integration tests across modules: full pipelines on each of
// the three workloads (generate -> cluster -> advise -> build CM -> rewrite
// -> execute -> verify), plus cross-structure consistency under updates.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/advisor.h"
#include "core/maintenance.h"
#include "core/rewriter.h"
#include "exec/executor.h"
#include "workload/ebay_gen.h"
#include "workload/sdss_gen.h"
#include "workload/tpch_gen.h"

namespace corrmap {
namespace {

TEST(IntegrationTest, EbayPriceRangePipeline) {
  // Experiment 1 in miniature: cluster on CATID, CM on bucketed Price,
  // range query answered exactly and cheaply.
  EbayGenConfig cfg;
  cfg.num_categories = 400;
  auto table = GenerateEbayItems(cfg);
  ASSERT_TRUE(table->ClusterBy(kEbay.catid).ok());
  auto cidx = ClusteredIndex::Build(*table, kEbay.catid);
  ASSERT_TRUE(cidx.ok());
  auto cb = ClusteredBucketing::Build(*table, kEbay.catid,
                                      10 * table->TuplesPerPage());
  ASSERT_TRUE(cb.ok());

  CmOptions opts;
  opts.u_cols = {kEbay.price};
  opts.u_bucketers = {Bucketer::ValueOrdinalFromColumn(*table, kEbay.price, 8)};
  opts.c_col = kEbay.catid;
  opts.c_buckets = &*cb;
  auto cm = CorrelationMap::Create(table.get(), opts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());

  Query q({Predicate::Between(*table, "Price", Value(1000.0), Value(1100.0))});
  auto scan = FullTableScan(*table, q);
  auto cms = CmScan(*table, *cm, *cidx, q);
  EXPECT_EQ(cms.rows, scan.rows);
  EXPECT_LT(cms.ms * 2, scan.ms);
  // The CM is orders of magnitude smaller than a dense per-tuple index.
  EXPECT_LT(cm->SizeBytes() * 50, table->TotalTuples() * 20);
}

TEST(IntegrationTest, TpchShipdateRewritePipeline) {
  TpchGenConfig cfg;
  cfg.num_rows = 600000;  // large enough for lookups to beat the scan
  auto table = GenerateLineitem(cfg);
  ASSERT_TRUE(table->ClusterBy(kTpch.receiptdate).ok());
  auto cidx = ClusteredIndex::Build(*table, kTpch.receiptdate);
  ASSERT_TRUE(cidx.ok());
  CmOptions opts;
  opts.u_cols = {kTpch.shipdate};
  opts.u_bucketers = {Bucketer::Identity()};
  opts.c_col = kTpch.receiptdate;
  auto cm = CorrelationMap::Create(table.get(), opts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());

  Query q({Predicate::Eq(*table, "shipdate", Value(1000))});
  auto rw = RewriteWithCm(*table, *cm, *cidx, q);
  ASSERT_TRUE(rw.ok());
  // shipdate=1000 -> receiptdate in {1002..1014}: a small IN list.
  EXPECT_GE(rw->in_list.size(), 3u);
  EXPECT_LE(rw->in_list.size(), 13u);
  EXPECT_NE(rw->sql.find("receiptdate IN"), std::string::npos);

  auto scan = FullTableScan(*table, q);
  auto cms = CmScan(*table, *cm, *cidx, q);
  EXPECT_EQ(cms.rows, scan.rows);
  EXPECT_LT(cms.ms * 2, scan.ms);
}

TEST(IntegrationTest, SdssAdvisorToExecutionPipeline) {
  SdssGenConfig cfg;
  cfg.num_rows = 60000;
  auto table = GenerateSdssPhotoObj(cfg);
  ASSERT_TRUE(table->ClusterBy(0).ok());  // objID
  auto cidx = ClusteredIndex::Build(*table, 0);
  ASSERT_TRUE(cidx.ok());
  auto cb = ClusteredBucketing::Build(*table, 0, 10 * table->TuplesPerPage());
  ASSERT_TRUE(cb.ok());

  // SX6-flavoured training query.
  Query q({Predicate::In(*table, "fieldID", {Value(10), Value(40)}),
           Predicate::Eq(*table, "mode", Value(1))});
  CmAdvisor advisor(table.get(), &*cidx, &*cb);
  auto rec = advisor.Recommend(q);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  auto cm = advisor.BuildCm(*rec);
  ASSERT_TRUE(cm.ok());

  Executor ex(table.get(), &*cidx);
  ex.AttachCm(&*cm);
  auto r = ex.Execute(q);
  auto scan = FullTableScan(*table, q);
  EXPECT_EQ(r.result.rows, scan.rows);
  EXPECT_EQ(r.result.path, "cm_scan");
  EXPECT_LT(r.result.ms * 2, scan.ms);
}

TEST(IntegrationTest, CompositeCmBeatsSinglesOnSdss) {
  // Experiment 5's headline, as an invariant: the (ra, dec) CM sweeps
  // fewer pages than either single-attribute CM for a box query.
  SdssGenConfig cfg;
  cfg.num_rows = 80000;
  auto table = GenerateSdssPhotoObj(cfg);
  ASSERT_TRUE(table->ClusterBy(0).ok());
  auto cidx = ClusteredIndex::Build(*table, 0);
  ASSERT_TRUE(cidx.ok());
  auto cb = ClusteredBucketing::Build(*table, 0, 10 * table->TuplesPerPage());
  ASSERT_TRUE(cb.ok());

  auto make_cm = [&](std::vector<size_t> cols, std::vector<Bucketer> bks) {
    CmOptions opts;
    opts.u_cols = std::move(cols);
    opts.u_bucketers = std::move(bks);
    opts.c_col = 0;
    opts.c_buckets = &*cb;
    auto cm = CorrelationMap::Create(table.get(), opts);
    EXPECT_TRUE(cm.ok());
    EXPECT_TRUE(cm->BuildFromTable().ok());
    return std::move(*cm);
  };
  const size_t ra = *table->ColumnIndex("ra");
  const size_t dec = *table->ColumnIndex("dec");
  auto cm_ra = make_cm({ra}, {Bucketer::NumericWidth(0.25)});
  auto cm_dec = make_cm({dec}, {Bucketer::NumericWidth(0.25)});
  auto cm_pair = make_cm({ra, dec}, {Bucketer::NumericWidth(0.25),
                                     Bucketer::NumericWidth(0.25)});

  Query q({Predicate::Between(*table, "ra", Value(163.0), Value(164.4)),
           Predicate::Between(*table, "dec", Value(-1.0), Value(0.4))});
  auto scan = FullTableScan(*table, q);
  auto r_ra = CmScan(*table, cm_ra, *cidx, q);
  auto r_dec = CmScan(*table, cm_dec, *cidx, q);
  auto r_pair = CmScan(*table, cm_pair, *cidx, q);
  EXPECT_EQ(r_ra.rows, scan.rows);
  EXPECT_EQ(r_dec.rows, scan.rows);
  EXPECT_EQ(r_pair.rows, scan.rows);
  EXPECT_LT(r_pair.ms, r_ra.ms);
  EXPECT_LT(r_pair.ms, r_dec.ms);
}

TEST(IntegrationTest, StructuresStayConsistentThroughUpdateStream) {
  // Mixed insert/delete stream applied to table + B+Tree + CM; every 10
  // batches, all three access paths must agree.
  TpchGenConfig cfg;
  cfg.num_rows = 30000;
  auto table = GenerateLineitem(cfg);
  ASSERT_TRUE(table->ClusterBy(kTpch.receiptdate).ok());
  auto cidx = ClusteredIndex::Build(*table, kTpch.receiptdate);
  ASSERT_TRUE(cidx.ok());
  SecondaryIndex sidx(table.get(), {kTpch.shipdate});
  ASSERT_TRUE(sidx.BuildFromTable().ok());
  CmOptions opts;
  opts.u_cols = {kTpch.shipdate};
  opts.u_bucketers = {Bucketer::Identity()};
  opts.c_col = kTpch.receiptdate;
  auto cm = CorrelationMap::Create(table.get(), opts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());

  Rng rng(97);
  for (int round = 0; round < 5; ++round) {
    // Delete ~200 random live rows, maintaining every structure.
    for (int i = 0; i < 200; ++i) {
      const RowId r = RowId(rng.UniformInt(0, int64_t(table->NumRows()) - 1));
      if (table->IsDeleted(r)) continue;
      ASSERT_TRUE(cm->DeleteRow(r).ok());
      ASSERT_TRUE(sidx.DeleteRow(r).ok());
      ASSERT_TRUE(table->DeleteRow(r).ok());
    }
    ASSERT_TRUE(cm->CheckInvariants().ok());
    ASSERT_TRUE(sidx.tree().CheckInvariants().ok());

    Query q({Predicate::Eq(*table, "shipdate",
                           Value(rng.UniformInt(0, 2525)))});
    auto scan = FullTableScan(*table, q);
    auto sorted = SortedIndexScan(*table, sidx, q);
    auto cms = CmScan(*table, *cm, *cidx, q);
    EXPECT_EQ(sorted.rows, scan.rows) << "round " << round;
    EXPECT_EQ(cms.rows, scan.rows) << "round " << round;
  }
}

TEST(IntegrationTest, UpdateAsDeletePlusInsert) {
  // §5.1: updates are delete+insert on the CM. Simulate price updates.
  EbayGenConfig cfg;
  cfg.num_categories = 100;
  auto table = GenerateEbayItems(cfg);
  ASSERT_TRUE(table->ClusterBy(kEbay.catid).ok());
  CmOptions opts;
  opts.u_cols = {kEbay.price};
  opts.u_bucketers = {Bucketer::NumericWidth(1000.0)};
  opts.c_col = kEbay.catid;
  auto cm = CorrelationMap::Create(table.get(), opts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());

  // "Update" = retract old (u, c) pair, insert the new one.
  Rng rng(101);
  for (int i = 0; i < 500; ++i) {
    const RowId r = RowId(rng.UniformInt(0, int64_t(table->NumRows()) - 1));
    const Key old_price = table->GetKey(r, kEbay.price);
    const Key new_price = Key(old_price.Numeric() + 50.0);
    const int64_t c_ord = cm->ClusteredOrdinalOfRow(r);
    std::array<Key, 1> old_u = {old_price};
    std::array<Key, 1> new_u = {new_price};
    ASSERT_TRUE(cm->DeleteValues(old_u, c_ord).ok());
    cm->InsertValues(new_u, c_ord);
  }
  ASSERT_TRUE(cm->CheckInvariants().ok());
}

TEST(IntegrationTest, ColdCacheMixedWorkloadFavorsCm) {
  // Fig. 9's effect: under insert pressure, B+Tree selects re-read evicted
  // pages while CM selects stay cheap.
  EbayGenConfig cfg;
  cfg.num_categories = 300;
  auto table = GenerateEbayItems(cfg);
  ASSERT_TRUE(table->ClusterBy(kEbay.catid).ok());
  auto cidx = ClusteredIndex::Build(*table, kEbay.catid);
  ASSERT_TRUE(cidx.ok());

  BufferPool pool(512);
  WriteAheadLog wal;
  MaintenanceDriver driver(table.get(), &pool, &wal);
  BTreeOptions bopts;
  bopts.pool = &pool;
  bopts.file_id = pool.RegisterFile();
  SecondaryIndex sidx(table.get(), {kEbay.cat3}, bopts);
  ASSERT_TRUE(sidx.BuildFromTable().ok());
  driver.AttachBTree(&sidx);
  CmOptions copts;
  copts.u_cols = {kEbay.cat3};
  copts.u_bucketers = {Bucketer::Identity()};
  copts.c_col = kEbay.catid;
  auto cm = CorrelationMap::Create(table.get(), copts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());
  driver.AttachCm(&*cm);
  pool.DrainIo();

  // Interleave inserts and selects; accumulate select costs per structure.
  Rng rng(103);
  double btree_select_ms = 0, cm_select_ms = 0;
  for (int round = 0; round < 4; ++round) {
    std::vector<std::vector<Key>> batch;
    for (int i = 0; i < 2000; ++i) {
      const int64_t cat = rng.UniformInt(0, 299);
      std::vector<Key> row(table->schema().num_columns(), Key(int64_t(0)));
      row[kEbay.catid] = Key(cat);
      for (size_t k = kEbay.cat1; k <= kEbay.cat6; ++k) {
        row[k] = table->GetKey(RowId(cat) % table->NumRows(), k);
      }
      row[kEbay.item_id] = Key(int64_t(1'000'000 + round * 2000 + i));
      row[kEbay.price] = Key(rng.UniformDouble(0, 1e6));
      batch.push_back(std::move(row));
    }
    driver.InsertBatch(batch);
    const Key cat3 = table->GetKey(RowId(rng.UniformInt(
                                       0, int64_t(table->NumRows()) - 1)),
                                   kEbay.cat3);
    Query q({Predicate::Eq(*table, "CAT3",
                           Value(table->column(kEbay.cat3)
                                     .dictionary()
                                     ->Get(cat3.AsInt64())))});
    btree_select_ms += driver.SelectViaBTree(sidx, q).ms;
    cm_select_ms += driver.SelectViaCm(*cm, *cidx, q).ms;
  }
  EXPECT_LT(cm_select_ms, btree_select_ms);
}

}  // namespace
}  // namespace corrmap
