// Unit and property tests for the B+Tree: ordering, duplicates, deletes,
// structural invariants under random operation sequences, prefix scans,
// and buffer-pool integration.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "index/btree.h"

namespace corrmap {
namespace {

CompositeKey K(int64_t v) { return CompositeKey(Key(v)); }
CompositeKey K2(int64_t a, int64_t b) {
  return CompositeKey{Key(a), Key(b)};
}

TEST(BTreeTest, InsertAndLookup) {
  BTree tree;
  ASSERT_TRUE(tree.Insert(K(5), 100).ok());
  ASSERT_TRUE(tree.Insert(K(3), 200).ok());
  std::vector<RowId> out;
  tree.Lookup(K(5), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 100u);
  out.clear();
  tree.Lookup(K(99), &out);
  EXPECT_TRUE(out.empty());
}

TEST(BTreeTest, DuplicateKeysDifferentRids) {
  BTree tree;
  ASSERT_TRUE(tree.Insert(K(7), 1).ok());
  ASSERT_TRUE(tree.Insert(K(7), 2).ok());
  ASSERT_TRUE(tree.Insert(K(7), 3).ok());
  std::vector<RowId> out;
  tree.Lookup(K(7), &out);
  EXPECT_EQ(out, (std::vector<RowId>{1, 2, 3}));
}

TEST(BTreeTest, ExactDuplicateRejected) {
  BTree tree;
  ASSERT_TRUE(tree.Insert(K(7), 1).ok());
  Status s = tree.Insert(K(7), 1);
  EXPECT_EQ(s.code(), Status::Code::kAlreadyExists);
  EXPECT_EQ(tree.NumEntries(), 1u);
}

TEST(BTreeTest, DeleteRemovesOneEntry) {
  BTree tree;
  ASSERT_TRUE(tree.Insert(K(7), 1).ok());
  ASSERT_TRUE(tree.Insert(K(7), 2).ok());
  ASSERT_TRUE(tree.Delete(K(7), 1).ok());
  std::vector<RowId> out;
  tree.Lookup(K(7), &out);
  EXPECT_EQ(out, (std::vector<RowId>{2}));
  EXPECT_FALSE(tree.Delete(K(7), 1).ok());
}

TEST(BTreeTest, ScanRangeInclusive) {
  BTree tree;
  for (int64_t i = 0; i < 100; ++i) ASSERT_TRUE(tree.Insert(K(i), RowId(i)).ok());
  std::vector<int64_t> seen;
  tree.Scan(K(10), K(20), [&](const CompositeKey& k, RowId) {
    seen.push_back(k[0].AsInt64());
    return true;
  });
  ASSERT_EQ(seen.size(), 11u);
  EXPECT_EQ(seen.front(), 10);
  EXPECT_EQ(seen.back(), 20);
}

TEST(BTreeTest, ScanEarlyStop) {
  BTree tree;
  for (int64_t i = 0; i < 100; ++i) ASSERT_TRUE(tree.Insert(K(i), RowId(i)).ok());
  int count = 0;
  tree.Scan(K(0), K(99), [&](const CompositeKey&, RowId) {
    return ++count < 5;
  });
  EXPECT_EQ(count, 5);
}

TEST(BTreeTest, CompositePrefixScan) {
  BTree tree;
  for (int64_t a = 0; a < 10; ++a) {
    for (int64_t b = 0; b < 10; ++b) {
      ASSERT_TRUE(tree.Insert(K2(a, b), RowId(a * 10 + b)).ok());
    }
  }
  // Prefix bounds: all entries with first part == 4.
  std::vector<RowId> seen;
  tree.Scan(K(4), K(4), [&](const CompositeKey&, RowId r) {
    seen.push_back(r);
    return true;
  });
  ASSERT_EQ(seen.size(), 10u);
  EXPECT_EQ(seen.front(), 40u);
  EXPECT_EQ(seen.back(), 49u);
}

TEST(BTreeTest, HeightGrowsLogarithmically) {
  BTreeOptions opts;
  opts.leaf_capacity = 8;
  opts.internal_capacity = 8;
  BTree tree(opts);
  EXPECT_EQ(tree.Height(), 1u);
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree.Insert(K(i), RowId(i)).ok());
  }
  EXPECT_GE(tree.Height(), 3u);
  EXPECT_LE(tree.Height(), 6u);
  EXPECT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
}

TEST(BTreeTest, SizeBytesTracksNodes) {
  BTree tree;
  const uint64_t empty = tree.SizeBytes();
  for (int64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(tree.Insert(K(i), RowId(i)).ok());
  }
  EXPECT_GT(tree.SizeBytes(), empty);
  EXPECT_EQ(tree.SizeBytes(), tree.NumNodes() * kDefaultPageSizeBytes);
}

TEST(BTreeTest, ScanAllIsSorted) {
  BTree tree;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    tree.Insert(K(rng.UniformInt(0, 1000)), RowId(i));
  }
  CompositeKey prev;
  bool first = true;
  size_t n = 0;
  tree.ScanAll([&](const CompositeKey& k, RowId) {
    if (!first) {
      EXPECT_LE(prev, k);
    }
    prev = k;
    first = false;
    ++n;
    return true;
  });
  EXPECT_EQ(n, tree.NumEntries());
}

TEST(BTreeTest, PoolChargesTraversals) {
  BufferPool pool(1024);
  BTreeOptions opts;
  opts.pool = &pool;
  opts.file_id = pool.RegisterFile();
  opts.leaf_capacity = 16;
  opts.internal_capacity = 16;
  BTree tree(opts);
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree.Insert(K(i), RowId(i)).ok());
  }
  EXPECT_GT(pool.stats().misses, 0u);
  EXPECT_GT(pool.num_dirty(), 0u);
}

/// Property sweep: random interleaved inserts/deletes against a reference
/// multimap, then full invariant + content check.
class BTreeRandomOpsTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BTreeRandomOpsTest, MatchesReferenceModel) {
  const auto [seed, n_ops, key_space] = GetParam();
  BTreeOptions opts;
  opts.leaf_capacity = 16;
  opts.internal_capacity = 16;
  BTree tree(opts);
  std::set<std::pair<int64_t, RowId>> model;
  Rng rng{uint64_t(seed)};
  for (int i = 0; i < n_ops; ++i) {
    const int64_t key = rng.UniformInt(0, key_space - 1);
    const RowId rid = RowId(rng.UniformInt(0, 9));
    if (rng.Bernoulli(0.7)) {
      const bool fresh = model.emplace(key, rid).second;
      Status s = tree.Insert(K(key), rid);
      EXPECT_EQ(s.ok(), fresh) << "insert " << key << "/" << rid;
    } else {
      const bool present = model.erase({key, rid}) > 0;
      Status s = tree.Delete(K(key), rid);
      EXPECT_EQ(s.ok(), present) << "delete " << key << "/" << rid;
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  EXPECT_EQ(tree.NumEntries(), model.size());
  // Content equality via full scan.
  auto it = model.begin();
  tree.ScanAll([&](const CompositeKey& k, RowId r) {
    EXPECT_NE(it, model.end());
    EXPECT_EQ(k[0].AsInt64(), it->first);
    EXPECT_EQ(r, it->second);
    ++it;
    return true;
  });
  EXPECT_EQ(it, model.end());
  // Point lookups agree for every key in the space.
  for (int64_t key = 0; key < key_space; ++key) {
    std::vector<RowId> out;
    tree.Lookup(K(key), &out);
    std::vector<RowId> expect;
    for (auto [k, r] : model) {
      if (k == key) expect.push_back(r);
    }
    EXPECT_EQ(out, expect) << "lookup " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomOps, BTreeRandomOpsTest,
    ::testing::Values(std::tuple{1, 2000, 50}, std::tuple{2, 2000, 500},
                      std::tuple{3, 5000, 20}, std::tuple{4, 500, 5},
                      std::tuple{5, 8000, 2000}, std::tuple{6, 3000, 100}));

/// Property sweep: bulk ascending/descending/shuffled loads keep the tree
/// balanced and ordered.
class BTreeLoadOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(BTreeLoadOrderTest, InvariantsHoldForAllLoadOrders) {
  const int mode = GetParam();
  std::vector<int64_t> keys(3000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = int64_t(i);
  if (mode == 1) std::reverse(keys.begin(), keys.end());
  if (mode == 2) {
    Rng rng(9);
    for (size_t i = keys.size(); i > 1; --i) {
      std::swap(keys[i - 1], keys[size_t(rng.UniformInt(0, int64_t(i) - 1))]);
    }
  }
  BTreeOptions opts;
  opts.leaf_capacity = 8;
  opts.internal_capacity = 8;
  BTree tree(opts);
  for (int64_t k : keys) ASSERT_TRUE(tree.Insert(K(k), RowId(k)).ok());
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  EXPECT_EQ(tree.NumEntries(), keys.size());
}

INSTANTIATE_TEST_SUITE_P(LoadOrders, BTreeLoadOrderTest,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace corrmap
