// Unit tests for storage/: page layout, schema, columnar table, disk model,
// buffer pool, WAL.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_model.h"
#include "storage/page.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/tombstones.h"
#include "storage/wal.h"

namespace corrmap {
namespace {

Schema SmallSchema() {
  return Schema({ColumnDef::Int64("id"), ColumnDef::String("city", 16),
                 ColumnDef::Double("salary")});
}

TEST(PageLayoutTest, TuplesPerPage) {
  PageLayout layout;
  layout.tuple_bytes = 136;
  EXPECT_EQ(layout.TuplesPerPage(), 8192u / 136u);
  EXPECT_EQ(layout.PageOfRow(0), 0u);
  EXPECT_EQ(layout.PageOfRow(layout.TuplesPerPage()), 1u);
  EXPECT_EQ(layout.NumPages(0), 0u);
  EXPECT_EQ(layout.NumPages(1), 1u);
  EXPECT_EQ(layout.NumPages(layout.TuplesPerPage() + 1), 2u);
}

TEST(PageLayoutTest, OversizeTupleStillFitsOnePerPage) {
  PageLayout layout;
  layout.tuple_bytes = 10000;
  EXPECT_EQ(layout.TuplesPerPage(), 1u);
}

TEST(SchemaTest, ColumnIndexAndWidths) {
  Schema s = SmallSchema();
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(*s.ColumnIndex("city"), 1u);
  EXPECT_FALSE(s.ColumnIndex("nope").ok());
  EXPECT_EQ(s.TupleBytes(), Schema::kTupleHeaderBytes + 8 + 16 + 8);
}

TEST(TableTest, AppendAndRead) {
  Table t("people", SmallSchema());
  std::array<Value, 3> row = {Value(1), Value("boston"), Value(95.5)};
  ASSERT_TRUE(t.AppendRow(row).ok());
  EXPECT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.GetValue(0, 0), Value(1));
  EXPECT_EQ(t.GetValue(0, 1), Value("boston"));
  EXPECT_EQ(t.GetValue(0, 2), Value(95.5));
}

TEST(TableTest, TypeMismatchRejected) {
  Table t("people", SmallSchema());
  std::array<Value, 3> bad = {Value("x"), Value("boston"), Value(1.0)};
  EXPECT_FALSE(t.AppendRow(bad).ok());
}

TEST(TableTest, ArityMismatchRejected) {
  Table t("people", SmallSchema());
  std::array<Value, 2> bad = {Value(1), Value("boston")};
  EXPECT_FALSE(t.AppendRow(bad).ok());
}

TEST(TableTest, StringsAreDictionaryEncoded) {
  Table t("people", SmallSchema());
  std::array<Value, 3> r1 = {Value(1), Value("boston"), Value(1.0)};
  std::array<Value, 3> r2 = {Value(2), Value("boston"), Value(2.0)};
  std::array<Value, 3> r3 = {Value(3), Value("nyc"), Value(3.0)};
  ASSERT_TRUE(t.AppendRow(r1).ok());
  ASSERT_TRUE(t.AppendRow(r2).ok());
  ASSERT_TRUE(t.AppendRow(r3).ok());
  EXPECT_EQ(t.GetKey(0, 1), t.GetKey(1, 1));
  EXPECT_NE(t.GetKey(0, 1), t.GetKey(2, 1));
  // Encoding a known string finds its code; unknown maps to -1.
  EXPECT_EQ(t.column(1).EncodeKey(Value("nyc")), t.GetKey(2, 1));
  EXPECT_EQ(t.column(1).EncodeKey(Value("zzz")).AsInt64(), -1);
}

TEST(TableTest, ClusterBySortsAllColumns) {
  Table t("people", SmallSchema());
  const char* cities[] = {"c", "a", "b"};
  for (int i = 0; i < 3; ++i) {
    std::array<Value, 3> row = {Value(10 - i), Value(cities[i]),
                                Value(double(i))};
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  ASSERT_TRUE(t.ClusterBy(0).ok());
  EXPECT_EQ(t.clustered_column(), 0);
  EXPECT_EQ(t.GetValue(0, 0), Value(8));
  EXPECT_EQ(t.GetValue(2, 0), Value(10));
  // Row integrity: id 8 was the last appended row (city "b", salary 2).
  EXPECT_EQ(t.GetValue(0, 1), Value("b"));
  EXPECT_EQ(t.GetValue(0, 2), Value(2.0));
}

TEST(TableTest, DeleteTombstones) {
  Table t("people", SmallSchema());
  std::array<Value, 3> row = {Value(1), Value("x"), Value(1.0)};
  ASSERT_TRUE(t.AppendRow(row).ok());
  ASSERT_TRUE(t.AppendRow(row).ok());
  EXPECT_EQ(t.NumLiveRows(), 2u);
  ASSERT_TRUE(t.DeleteRow(0).ok());
  EXPECT_TRUE(t.IsDeleted(0));
  EXPECT_FALSE(t.IsDeleted(1));
  EXPECT_EQ(t.NumLiveRows(), 1u);
  EXPECT_FALSE(t.DeleteRow(0).ok());   // already deleted
  EXPECT_FALSE(t.DeleteRow(99).ok());  // out of range
}

TEST(TombstoneBitmapTest, CountSetInRangeHandlesWordBoundaries) {
  TombstoneBitmap bm;
  bm.EnsureCapacity(200);
  // Bits straddling word 0/1 and word 2, plus the very first and last.
  for (RowId r : {RowId(0), RowId(63), RowId(64), RowId(65), RowId(130),
                  RowId(199)}) {
    EXPECT_FALSE(bm.Set(r));
  }
  EXPECT_EQ(bm.CountSetInRange(0, 200), 6u);
  EXPECT_EQ(bm.CountSetInRange(0, 64), 2u);    // full first word
  EXPECT_EQ(bm.CountSetInRange(63, 65), 2u);   // straddles the boundary
  EXPECT_EQ(bm.CountSetInRange(64, 66), 2u);
  EXPECT_EQ(bm.CountSetInRange(65, 130), 1u);  // partial both ends
  EXPECT_EQ(bm.CountSetInRange(66, 130), 0u);
  EXPECT_EQ(bm.CountSetInRange(199, 200), 1u);
  EXPECT_EQ(bm.CountSetInRange(50, 50), 0u);   // empty range
  // Rows past the capacity were never deleted: the range clamps.
  EXPECT_EQ(bm.CountSetInRange(128, 10000), 2u);
  EXPECT_EQ(bm.CountSetInRange(5000, 10000), 0u);
}

TEST(DiskModelTest, CostConstants) {
  DiskModel m;
  DiskStats s;
  s.seeks = 2;
  s.seq_pages = 100;
  s.pages_written = 1;
  EXPECT_DOUBLE_EQ(m.CostMs(s), 2 * 5.5 + 100 * 0.078 + 1 * 5.5);
}

TEST(ExtractRunsTest, MergesContiguous) {
  auto runs = ExtractRuns({5, 1, 2, 3, 9, 10});
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], (PageRun{1, 3}));
  EXPECT_EQ(runs[1], (PageRun{5, 1}));
  EXPECT_EQ(runs[2], (PageRun{9, 2}));
}

TEST(ExtractRunsTest, DeduplicatesPages) {
  auto runs = ExtractRuns({4, 4, 4, 5});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (PageRun{4, 2}));
}

TEST(ExtractRunsTest, GapToleranceReadsThroughHoles) {
  auto runs = ExtractRuns({1, 3, 10}, /*gap_tolerance=*/1);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], (PageRun{1, 3}));  // hole at 2 read through
  EXPECT_EQ(runs[1], (PageRun{10, 1}));
}

TEST(ExtractRunsTest, EmptyInput) {
  EXPECT_TRUE(ExtractRuns({}).empty());
}

TEST(CostOfRunsTest, OneSeekPerRun) {
  std::vector<PageRun> runs = {{0, 10}, {100, 5}};
  DiskStats s = CostOfRuns(runs);
  EXPECT_EQ(s.seeks, 2u);
  EXPECT_EQ(s.seq_pages, 15u);
}

TEST(AccessTraceTest, RunsAndRender) {
  AccessTrace t;
  t.Touch(0);
  t.Touch(1);
  t.Touch(50);
  EXPECT_EQ(t.NumRuns(), 2u);
  EXPECT_EQ(t.NumDistinctPages(), 3u);
  const std::string strip = t.Render(100, 10);
  EXPECT_EQ(strip.size(), 10u);
  EXPECT_EQ(strip[0], '#');
  EXPECT_EQ(strip[5], '#');
  EXPECT_EQ(strip[9], '.');
}

TEST(BufferPoolTest, HitsAndMisses) {
  BufferPool pool(2);
  pool.Access({0, 1}, false);
  pool.Access({0, 1}, false);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(BufferPoolTest, LruEviction) {
  BufferPool pool(2);
  pool.Access({0, 1}, false);
  pool.Access({0, 2}, false);
  pool.Access({0, 1}, false);  // 1 becomes MRU
  pool.Access({0, 3}, false);  // evicts 2 (LRU)
  EXPECT_TRUE(pool.IsCached({0, 1}));
  EXPECT_FALSE(pool.IsCached({0, 2}));
  EXPECT_TRUE(pool.IsCached({0, 3}));
  EXPECT_EQ(pool.stats().evictions, 1u);
}

TEST(BufferPoolTest, DirtyEvictionChargesWrite) {
  BufferPool pool(1);
  pool.Access({0, 1}, /*mark_dirty=*/true);
  pool.Access({0, 2}, false);  // evicts dirty page 1
  DiskStats io = pool.DrainIo();
  EXPECT_EQ(io.pages_written, 1u);
  EXPECT_EQ(io.seeks, 2u);  // two read faults
  EXPECT_EQ(pool.stats().dirty_evictions, 1u);
}

TEST(BufferPoolTest, FlushAllWritesDirtyOnly) {
  BufferPool pool(4);
  pool.Access({0, 1}, true);
  pool.Access({0, 2}, false);
  pool.DrainIo();
  pool.FlushAll();
  DiskStats io = pool.DrainIo();
  EXPECT_EQ(io.pages_written, 1u);
  EXPECT_EQ(pool.num_dirty(), 0u);
}

TEST(BufferPoolTest, AccessIfCached) {
  BufferPool pool(2);
  EXPECT_FALSE(pool.AccessIfCached({0, 1}, false));
  pool.Access({0, 1}, false);
  EXPECT_TRUE(pool.AccessIfCached({0, 1}, false));
}

TEST(BufferPoolTest, FileIdsDistinguishPages) {
  BufferPool pool(4);
  const uint32_t f1 = pool.RegisterFile();
  const uint32_t f2 = pool.RegisterFile();
  EXPECT_NE(f1, f2);
  pool.Access({f1, 7}, false);
  EXPECT_FALSE(pool.IsCached({f2, 7}));
}

TEST(BufferPoolTest, TouchAdmitsWithoutSeekAndReportsHit) {
  BufferPool pool(4);
  const uint32_t f = pool.RegisterFile();
  EXPECT_FALSE(pool.Touch({f, 3}));  // cold miss, admitted
  EXPECT_TRUE(pool.Touch({f, 3}));   // now resident
  // A Touch miss never charges the random-read seek (the caller already
  // accounted the page as part of a sequential sweep).
  EXPECT_EQ(pool.DrainIo().seeks, 0u);
}

TEST(BufferPoolTest, ResidencyTracksDecayedHitRateAndResidentPages) {
  BufferPool pool(8);
  const uint32_t heap = pool.RegisterFile();
  const uint32_t idx = pool.RegisterFile();

  // Never-touched file: no signal.
  const FileResidency none = pool.ResidencyOf(heap, 100);
  EXPECT_DOUBLE_EQ(none.hit_rate, 0.0);
  EXPECT_EQ(none.resident_pages, 0u);

  // Four distinct pages: all misses.
  for (PageNo p = 0; p < 4; ++p) pool.Touch({heap, p});
  FileResidency r = pool.ResidencyOf(heap, 16);
  EXPECT_DOUBLE_EQ(r.hit_rate, 0.0);
  EXPECT_EQ(r.resident_pages, 4u);
  EXPECT_DOUBLE_EQ(r.resident_fraction, 4.0 / 16.0);

  // Re-touch the same pages repeatedly: the decayed hit rate climbs
  // toward 1 while the other file's counters stay untouched.
  for (int round = 0; round < 16; ++round) {
    for (PageNo p = 0; p < 4; ++p) pool.Touch({heap, p});
  }
  r = pool.ResidencyOf(heap, 16);
  EXPECT_GT(r.hit_rate, 0.8);
  EXPECT_LE(r.hit_rate, 1.0);
  EXPECT_DOUBLE_EQ(pool.ResidencyOf(idx, 16).hit_rate, 0.0);

  // Evictions decrement the victim file's resident count.
  for (PageNo p = 100; p < 108; ++p) pool.Touch({idx, p});
  EXPECT_EQ(pool.ResidencyOf(heap, 16).resident_pages, 0u);
  EXPECT_EQ(pool.ResidencyOf(idx, 16).resident_pages, 8u);

  // Clear resets residency history entirely (cold trial semantics).
  pool.Clear();
  const FileResidency cleared = pool.ResidencyOf(idx, 16);
  EXPECT_EQ(cleared.resident_pages, 0u);
  EXPECT_DOUBLE_EQ(cleared.hit_rate, 0.0);
  EXPECT_DOUBLE_EQ(cleared.observed_touches, 0.0);
}

TEST(BufferPoolTest, ClearResetsDecayedTouchHistoryNotJustFrames) {
  // Regression: Clear() used to drop the frames but keep the decayed
  // NoteTouch counters, so the first post-Clear residency read reported
  // the previous trial's hot hit rate. A cleared pool must look cold AND
  // its next touches must start a fresh history, not blend into the old.
  BufferPool pool(8);
  const uint32_t f = pool.RegisterFile();
  for (int round = 0; round < 32; ++round) {
    for (PageNo p = 0; p < 4; ++p) pool.Touch({f, p});
  }
  ASSERT_GT(pool.ResidencyOf(f, 4).hit_rate, 0.9);

  pool.Clear();
  EXPECT_EQ(pool.num_cached(), 0u);
  EXPECT_DOUBLE_EQ(pool.ResidencyOf(f, 4).hit_rate, 0.0);
  EXPECT_DOUBLE_EQ(pool.ResidencyOf(f, 4).observed_touches, 0.0);

  // One cold sweep after Clear: every touch is a miss. With the stale
  // history blended in this would still read > 0.9.
  for (PageNo p = 0; p < 4; ++p) pool.Touch({f, p});
  const FileResidency fresh = pool.ResidencyOf(f, 4);
  EXPECT_DOUBLE_EQ(fresh.hit_rate, 0.0);
  EXPECT_EQ(fresh.resident_pages, 4u);
  EXPECT_NEAR(fresh.observed_touches, 4.0, 0.1);
}

TEST(BufferPoolTest, StripedPoolKeepsHitMissAndEvictionAccounting) {
  // A multi-striped pool partitions capacity by page hash; correctness of
  // hit/miss/residency accounting must not depend on the stripe count.
  BufferPool pool(64, /*num_stripes=*/4);
  EXPECT_EQ(pool.num_stripes(), 4u);
  const uint32_t f = pool.RegisterFile();

  for (PageNo p = 0; p < 16; ++p) pool.Access({f, p}, false);
  for (PageNo p = 0; p < 16; ++p) pool.Access({f, p}, false);
  EXPECT_EQ(pool.stats().misses, 16u);
  EXPECT_EQ(pool.stats().hits, 16u);
  EXPECT_EQ(pool.num_cached(), 16u);
  for (PageNo p = 0; p < 16; ++p) EXPECT_TRUE(pool.IsCached({f, p}));

  // Overflow well past capacity: evictions happen per stripe, but the
  // total never exceeds the pool-wide capacity.
  for (PageNo p = 16; p < 512; ++p) pool.Access({f, p}, false);
  EXPECT_LE(pool.num_cached(), pool.capacity_pages());
  EXPECT_GT(pool.stats().evictions, 0u);
  EXPECT_EQ(pool.stats().hits + pool.stats().misses, 528u);
}

TEST(BufferPoolTest, StripeCountClampedSoEveryStripeHoldsAPage) {
  // More stripes than pages would starve some stripes entirely; the pool
  // clamps instead.
  BufferPool pool(2, /*num_stripes=*/16);
  EXPECT_LE(pool.num_stripes(), 2u);
  pool.Access({0, 1}, false);
  pool.Access({0, 2}, false);
  EXPECT_EQ(pool.num_cached(), 2u);
}

TEST(BufferPoolTest, ExtentResidencyIsTrackedIndependently) {
  // Pages land in fixed 64-page extents; a hot extent must not lift the
  // reported residency of a cold extent of the same file (this is what
  // lets the cost model price a hot clustered range near-CPU while the
  // cold remainder of the heap prices at device cost).
  BufferPool pool(256);
  const uint32_t f = pool.RegisterFile();
  ASSERT_EQ(BufferPool::kExtentPages, 64u);
  EXPECT_EQ(BufferPool::ExtentOfPage(0), 0u);
  EXPECT_EQ(BufferPool::ExtentOfPage(63), 0u);
  EXPECT_EQ(BufferPool::ExtentOfPage(64), 1u);
  EXPECT_EQ(BufferPool::NumExtents(0), 0u);
  EXPECT_EQ(BufferPool::NumExtents(1), 1u);
  EXPECT_EQ(BufferPool::NumExtents(64), 1u);
  EXPECT_EQ(BufferPool::NumExtents(65), 2u);

  // Hammer extent 0, touch extent 1 once (all misses).
  for (int round = 0; round < 16; ++round) {
    for (PageNo p = 0; p < 8; ++p) pool.Touch({f, p});
  }
  for (PageNo p = 64; p < 72; ++p) pool.Touch({f, p});

  const FileResidency hot = pool.ResidencyOfExtent(f, 0);
  const FileResidency cold = pool.ResidencyOfExtent(f, 1);
  EXPECT_GT(hot.hit_rate, 0.8);
  EXPECT_EQ(hot.resident_pages, 8u);
  EXPECT_DOUBLE_EQ(cold.hit_rate, 0.0);
  EXPECT_EQ(cold.resident_pages, 8u);
  // Untouched extent: no signal at all.
  EXPECT_DOUBLE_EQ(pool.ResidencyOfExtent(f, 2).observed_touches, 0.0);

  // The whole-file view aggregates both extents.
  const FileResidency whole = pool.ResidencyOf(f, 128);
  EXPECT_EQ(whole.resident_pages, 16u);
  EXPECT_GT(whole.hit_rate, cold.hit_rate);
  EXPECT_LT(whole.hit_rate, hot.hit_rate);

  // Clear resets the extent counters too.
  pool.Clear();
  EXPECT_EQ(pool.ResidencyOfExtent(f, 0).resident_pages, 0u);
  EXPECT_DOUBLE_EQ(pool.ResidencyOfExtent(f, 0).observed_touches, 0.0);
}

TEST(BufferPoolTest, StatsSnapshotStaysCoherentUnderConcurrentTraffic) {
  // The StatsSnapshot relaxed-consistency contract: each stripe is read
  // under a single lock hold, so within one snapshot
  // 0 <= num_dirty <= num_cached <= capacity_pages always holds and every
  // counter is monotone across successive snapshots -- unlike separate
  // stats()/num_cached()/num_dirty() calls, which can interleave with an
  // eviction and yield negative derived gauges.
  BufferPool pool(64, /*num_stripes=*/4);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (size_t t = 0; t < 4; ++t) {
    writers.emplace_back([&pool, &stop, t] {
      // Keyspace (1024 pages over 2 files) far exceeds capacity, so the
      // pool churns: evictions, dirty write-backs, hits and misses all
      // race the snapshot reader below.
      uint64_t x = 0x9E3779B97F4A7C15ull * (t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        pool.Access({uint32_t(t % 2), PageNo(x % 512)}, (x & 3) == 0);
      }
    });
  }
  BufferPoolSnapshot prev;
  for (int i = 0; i < 2000; ++i) {
    const BufferPoolSnapshot snap = pool.StatsSnapshot();
    ASSERT_LE(snap.num_dirty, snap.num_cached);
    ASSERT_LE(snap.num_cached, snap.capacity_pages);
    ASSERT_GE(snap.stats.hits, prev.stats.hits);
    ASSERT_GE(snap.stats.misses, prev.stats.misses);
    ASSERT_GE(snap.stats.evictions, prev.stats.evictions);
    ASSERT_GE(snap.stats.dirty_evictions, prev.stats.dirty_evictions);
    ASSERT_LE(snap.stats.dirty_evictions, snap.stats.evictions);
    prev = snap;
  }
  stop.store(true);
  for (auto& th : writers) th.join();
  // At quiescence the snapshot agrees exactly with the itemized accessors.
  const BufferPoolSnapshot snap = pool.StatsSnapshot();
  EXPECT_EQ(snap.num_cached, pool.num_cached());
  EXPECT_EQ(snap.num_dirty, pool.num_dirty());
  EXPECT_EQ(snap.capacity_pages, pool.capacity_pages());
  EXPECT_EQ(snap.stats.hits, pool.stats().hits);
  EXPECT_EQ(snap.stats.misses, pool.stats().misses);
  EXPECT_EQ(snap.stats.evictions, pool.stats().evictions);
  EXPECT_GT(snap.stats.evictions, 0u);
}

TEST(TableTest, ConcurrentTombstoneReadsDuringDeletes) {
  // The serving-visible tombstone view is an atomic bitmap: readers may
  // call IsDeleted while another thread tombstones rows (the vector<bool>
  // representation raced here). TSAN vets the memory model; this test
  // also checks the counts are exact.
  Schema schema({ColumnDef::Int64("x")});
  Table t("t", std::move(schema));
  constexpr int kRows = 20000;
  for (int i = 0; i < kRows; ++i) {
    std::array<Value, 1> row = {Value(int64_t(i))};
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  t.Reserve(kRows);  // pre-sizes the bitmap: no growth during the race

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> live_seen{0};
  std::thread reader([&] {
    uint64_t last = kRows;
    while (!stop.load(std::memory_order_acquire)) {
      uint64_t live = 0;
      for (RowId r = 0; r < kRows; ++r) {
        if (!t.IsDeleted(r)) ++live;
      }
      // Deletes only ever decrease the live count.
      EXPECT_LE(live, last);
      last = live;
      live_seen.store(live, std::memory_order_release);
    }
  });
  for (RowId r = 0; r < kRows; r += 2) {
    ASSERT_TRUE(t.DeleteRow(r).ok());
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(t.NumLiveRows(), size_t(kRows) / 2);
  for (RowId r = 0; r < kRows; ++r) {
    EXPECT_EQ(t.IsDeleted(r), r % 2 == 0);
  }
  EXPECT_FALSE(t.DeleteRow(0).ok());  // double delete still detected
}

TEST(WalTest, AppendBuffersUntilFlush) {
  WriteAheadLog wal;
  wal.Append({WalRecordType::kCmInsert, 1, "payload"});
  EXPECT_EQ(wal.pending_records(), 1u);
  EXPECT_EQ(wal.durable_records().size(), 0u);
  wal.Flush();
  EXPECT_EQ(wal.pending_records(), 0u);
  EXPECT_EQ(wal.durable_records().size(), 1u);
  EXPECT_EQ(wal.num_flushes(), 1u);
}

TEST(WalTest, FlushChargesSeekPlusSequentialPages) {
  WriteAheadLog wal(8192);
  // ~100 KB of records -> 13 pages.
  for (int i = 0; i < 1000; ++i) {
    wal.Append({WalRecordType::kCmInsert, 1, std::string(76, 'x')});
  }
  wal.Flush();
  DiskStats io = wal.DrainIo();
  EXPECT_EQ(io.seeks, 1u);
  EXPECT_EQ(io.seq_pages, (1000 * (76 + 24) + 8191) / 8192);
}

TEST(WalTest, CrashDropsPendingOnly) {
  WriteAheadLog wal;
  wal.Append({WalRecordType::kCmInsert, 1, "a"});
  wal.Flush();
  wal.Append({WalRecordType::kCmInsert, 2, "b"});
  wal.Crash();
  EXPECT_EQ(wal.durable_records().size(), 1u);
  EXPECT_EQ(wal.pending_records(), 0u);
}

TEST(WalTest, TwoPhaseCommitFlushesMarkers) {
  WriteAheadLog wal;
  wal.Prepare(42);
  wal.Commit(42);
  ASSERT_EQ(wal.durable_records().size(), 2u);
  EXPECT_EQ(wal.durable_records()[0].type, WalRecordType::kPrepare);
  EXPECT_EQ(wal.durable_records()[1].type, WalRecordType::kCommit);
  EXPECT_EQ(wal.num_flushes(), 2u);
}

}  // namespace
}  // namespace corrmap
