// Tests for the physical designer (§8 extension): clustering choice follows
// the workload's correlations, the CM set respects the space budget, and
// the produced design actually executes the workload faster than the
// default layout.
#include <gtest/gtest.h>

#include <array>

#include "common/rng.h"
#include "core/designer.h"
#include "exec/access_path.h"

namespace corrmap {
namespace {

/// Table where column `good` is strongly correlated with the queried
/// attributes and `bad` is independent noise.
std::unique_ptr<Table> DesignTable(size_t rows = 120000) {
  Schema schema({ColumnDef::Int64("good"), ColumnDef::Int64("u1"),
                 ColumnDef::Int64("u2"), ColumnDef::Int64("bad")});
  auto t = std::make_unique<Table>("t", std::move(schema));
  Rng rng(401);
  for (size_t i = 0; i < rows; ++i) {
    const int64_t g = rng.UniformInt(0, 999);
    std::array<Value, 4> row = {Value(g), Value(g * 3 + rng.UniformInt(0, 2)),
                                Value(g / 2 + rng.UniformInt(0, 1)),
                                Value(rng.UniformInt(0, 999999))};
    EXPECT_TRUE(t->AppendRow(row).ok());
  }
  return t;
}

std::vector<Query> Workload(const Table& t) {
  return {
      Query({Predicate::Eq(t, "u1", Value(900))}),
      Query({Predicate::Eq(t, "u2", Value(250))}),
      Query({Predicate::In(t, "u1", {Value(30), Value(1500)})}),
  };
}

TEST(DesignerTest, RejectsEmptyWorkload) {
  auto t = DesignTable(1000);
  EXPECT_FALSE(DesignPhysicalLayout(*t, {}).ok());
}

TEST(DesignerTest, PicksCorrelatedClustering) {
  auto t = DesignTable();
  auto design = DesignPhysicalLayout(*t, Workload(*t));
  ASSERT_TRUE(design.ok()) << design.status().ToString();
  // u1 and u2 are both determined by `good`; clustering on u1 or u2 (or
  // good, if it were predicated) beats clustering on `bad`.
  const std::string& chosen =
      t->schema().column(design->clustering.clustered_col).name;
  EXPECT_NE(chosen, "bad");
  EXPECT_GE(design->clustering.queries_helped, 2u);
  // Every candidate was scored.
  EXPECT_EQ(design->considered.size(), 2u);  // u1, u2 (bad not predicated)
}

TEST(DesignerTest, BudgetBoundsTotalCmBytes) {
  auto t = DesignTable();
  DesignerConfig cfg;
  cfg.space_budget_bytes = 1 << 10;  // 1 KB: essentially nothing fits
  auto tight = DesignPhysicalLayout(*t, Workload(*t), cfg);
  ASSERT_TRUE(tight.ok());
  EXPECT_LE(tight->total_cm_bytes, cfg.space_budget_bytes);

  cfg.space_budget_bytes = 64ull << 20;
  auto loose = DesignPhysicalLayout(*t, Workload(*t), cfg);
  ASSERT_TRUE(loose.ok());
  EXPECT_GE(loose->cms.size(), tight->cms.size());
  EXPECT_LE(loose->total_cm_bytes, cfg.space_budget_bytes);
}

TEST(DesignerTest, CmsAreDeduplicated) {
  auto t = DesignTable();
  // Two queries over the same attribute should not yield two identical CMs.
  std::vector<Query> workload = {
      Query({Predicate::Eq(*t, "u1", Value(90))}),
      Query({Predicate::Eq(*t, "u1", Value(1800))}),
  };
  auto design = DesignPhysicalLayout(*t, workload);
  ASSERT_TRUE(design.ok());
  std::set<std::string> labels;
  auto clustered = t->Clone();
  (void)clustered->ClusterBy(design->clustering.clustered_col);
  for (const auto& cm : design->cms) {
    EXPECT_TRUE(labels.insert(cm.Label(*clustered)).second);
  }
}

TEST(DesignerTest, DesignExecutesWorkloadFasterThanScans) {
  auto t = DesignTable();
  auto workload = Workload(*t);
  auto design = DesignPhysicalLayout(*t, workload);
  ASSERT_TRUE(design.ok());
  ASSERT_FALSE(design->cms.empty());

  // Materialize: cluster the table as chosen, build the first recommended
  // CM, and run its query both ways.
  ASSERT_TRUE(t->ClusterBy(design->clustering.clustered_col).ok());
  auto cidx = ClusteredIndex::Build(*t, design->clustering.clustered_col);
  ASSERT_TRUE(cidx.ok());
  auto cb = ClusteredBucketing::Build(*t, design->clustering.clustered_col,
                                      10 * t->TuplesPerPage());
  ASSERT_TRUE(cb.ok());
  CmOptions opts;
  opts.u_cols = design->cms[0].u_cols;
  opts.u_bucketers = design->cms[0].u_bucketers;
  opts.c_col = design->clustering.clustered_col;
  opts.c_buckets = &*cb;
  auto cm = CorrelationMap::Create(t.get(), opts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());

  // Find a workload query predicating exactly the CM's attributes.
  for (const Query& q : workload) {
    auto preds = CmPredicatesFor(*cm, q);
    if (!preds.ok()) continue;
    auto scan = FullTableScan(*t, q);
    auto cms = CmScan(*t, *cm, *cidx, q);
    EXPECT_EQ(cms.rows, scan.rows);
    EXPECT_LT(cms.ms, scan.ms);
    return;
  }
  FAIL() << "no workload query matches the recommended CM";
}

TEST(TableCloneTest, DeepCopyIsIndependent) {
  auto t = DesignTable(500);
  auto copy = t->Clone();
  ASSERT_EQ(copy->NumRows(), t->NumRows());
  ASSERT_TRUE(copy->ClusterBy(3).ok());
  // Original is untouched by the copy's re-clustering.
  EXPECT_EQ(t->clustered_column(), -1);
  EXPECT_EQ(copy->clustered_column(), 3);
  bool any_diff = false;
  for (RowId r = 0; r < t->NumRows() && !any_diff; ++r) {
    if (!(t->GetKey(r, 3) == copy->GetKey(r, 3))) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace corrmap
