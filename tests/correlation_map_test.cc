// Unit and property tests for the Correlation Map: Algorithm-1 builds,
// maintenance (insert/delete with co-occurrence counts), cm_lookup with
// point and range predicates, bucketed variants, serialization round-trip,
// and the central no-false-negative invariant under random data.
#include <gtest/gtest.h>

#include <array>
#include <set>
#include <unordered_set>

#include "common/rng.h"
#include "core/correlation_map.h"
#include "storage/table.h"

namespace corrmap {
namespace {

/// The paper's Figure 4 example: people(state, city, salary), clustered on
/// state, CM on city.
std::unique_ptr<Table> Fig4Table() {
  Schema schema({ColumnDef::String("state", 2), ColumnDef::String("city", 16),
                 ColumnDef::Double("salary")});
  auto t = std::make_unique<Table>("people", std::move(schema));
  const std::array<std::array<const char*, 2>, 10> rows = {{
      {"MA", "Boston"},      {"MA", "Boston"},  {"MA", "Boston"},
      {"MA", "Springfield"}, {"MN", "Manchester"}, {"MS", "Jackson"},
      {"NH", "Boston"},      {"NH", "Manchester"}, {"OH", "Springfield"},
      {"OH", "Toledo"},
  }};
  for (const auto& r : rows) {
    std::array<Value, 3> row = {Value(r[0]), Value(r[1]), Value(50.0)};
    EXPECT_TRUE(t->AppendRow(row).ok());
  }
  EXPECT_TRUE(t->ClusterBy(0).ok());
  return t;
}

CmOptions CityCmOptions(const Table& /*t*/) {
  CmOptions opts;
  opts.u_cols = {1};
  opts.u_bucketers = {Bucketer::Identity()};
  opts.c_col = 0;
  return opts;
}

TEST(CorrelationMapTest, CreateValidation) {
  auto t = Fig4Table();
  CmOptions bad = CityCmOptions(*t);
  bad.u_cols.clear();
  bad.u_bucketers.clear();
  EXPECT_FALSE(CorrelationMap::Create(t.get(), bad).ok());

  CmOptions wrong_cluster = CityCmOptions(*t);
  wrong_cluster.c_col = 2;  // table is clustered on 0
  EXPECT_FALSE(CorrelationMap::Create(t.get(), wrong_cluster).ok());

  CmOptions mismatched = CityCmOptions(*t);
  mismatched.u_bucketers.push_back(Bucketer::Identity());
  EXPECT_FALSE(CorrelationMap::Create(t.get(), mismatched).ok());
}

TEST(CorrelationMapTest, Fig4BostonMapsToMaNh) {
  auto t = Fig4Table();
  auto cm = CorrelationMap::Create(t.get(), CityCmOptions(*t));
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());
  ASSERT_TRUE(cm->CheckInvariants().ok());

  const Key boston = t->column(1).EncodeKey(Value("Boston"));
  std::array<CmColumnPredicate, 1> preds = {
      CmColumnPredicate::Points({boston})};
  auto ordinals = cm->CmLookup(preds);
  std::set<std::string> states;
  for (int64_t o : ordinals) {
    states.insert(t->column(0).dictionary()->Get(
        cm->DecodeClusteredOrdinal(o).AsInt64()));
  }
  EXPECT_EQ(states, (std::set<std::string>{"MA", "NH"}));
}

TEST(CorrelationMapTest, Fig4OrPredicateUnionsStates) {
  auto t = Fig4Table();
  auto cm = CorrelationMap::Create(t.get(), CityCmOptions(*t));
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());
  // city IN ('Boston','Springfield') -> {MA, NH, OH} (the paper's example).
  std::array<CmColumnPredicate, 1> preds = {CmColumnPredicate::Points(
      {t->column(1).EncodeKey(Value("Boston")),
       t->column(1).EncodeKey(Value("Springfield"))})};
  auto ordinals = cm->CmLookup(preds);
  std::set<std::string> states;
  for (int64_t o : ordinals) {
    states.insert(t->column(0).dictionary()->Get(
        cm->DecodeClusteredOrdinal(o).AsInt64()));
  }
  EXPECT_EQ(states, (std::set<std::string>{"MA", "NH", "OH"}));
}

TEST(CorrelationMapTest, EntriesAreUniquePairs) {
  auto t = Fig4Table();
  auto cm = CorrelationMap::Create(t.get(), CityCmOptions(*t));
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());
  // Distinct (city, state) pairs in Fig4: Boston{MA,NH}, Springfield{MA,OH},
  // Manchester{MN,NH}, Jackson{MS}, Toledo{OH} = 8 pairs, 5 cities.
  EXPECT_EQ(cm->NumEntries(), 8u);
  EXPECT_EQ(cm->NumUKeys(), 5u);
  EXPECT_EQ(cm->SizeBytes(), 8u * (8 + 8 + 4));
}

TEST(CorrelationMapTest, DeleteDecrementsAndErases) {
  auto t = Fig4Table();
  auto cm = CorrelationMap::Create(t.get(), CityCmOptions(*t));
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());

  // Find the NH/Boston row (exactly one).
  RowId nh_boston = 0;
  for (RowId r = 0; r < t->NumRows(); ++r) {
    if (t->GetValue(r, 0) == Value("NH") && t->GetValue(r, 1) == Value("Boston")) {
      nh_boston = r;
    }
  }
  ASSERT_TRUE(cm->DeleteRow(nh_boston).ok());
  ASSERT_TRUE(cm->CheckInvariants().ok());

  const Key boston = t->column(1).EncodeKey(Value("Boston"));
  std::array<CmColumnPredicate, 1> preds = {
      CmColumnPredicate::Points({boston})};
  auto ordinals = cm->CmLookup(preds);
  EXPECT_EQ(ordinals.size(), 1u);  // only MA remains

  // Deleting one of three MA/Boston rows keeps the MA mapping (count 3->2).
  RowId ma_boston = 0;
  for (RowId r = 0; r < t->NumRows(); ++r) {
    if (t->GetValue(r, 0) == Value("MA") && t->GetValue(r, 1) == Value("Boston")) {
      ma_boston = r;
    }
  }
  ASSERT_TRUE(cm->DeleteRow(ma_boston).ok());
  ordinals = cm->CmLookup(preds);
  EXPECT_EQ(ordinals.size(), 1u);
}

TEST(CorrelationMapTest, DeleteMissingFails) {
  auto t = Fig4Table();
  auto cm = CorrelationMap::Create(t.get(), CityCmOptions(*t));
  ASSERT_TRUE(cm.ok());
  // Nothing built yet.
  EXPECT_FALSE(cm->DeleteRow(0).ok());
}

TEST(CorrelationMapTest, InsertDeleteRoundTripEqualsFreshBuild) {
  auto t = Fig4Table();
  auto cm = CorrelationMap::Create(t.get(), CityCmOptions(*t));
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());
  const size_t entries = cm->NumEntries();
  // Delete then re-insert every row.
  for (RowId r = 0; r < t->NumRows(); ++r) ASSERT_TRUE(cm->DeleteRow(r).ok());
  EXPECT_EQ(cm->NumEntries(), 0u);
  EXPECT_EQ(cm->NumUKeys(), 0u);
  for (RowId r = 0; r < t->NumRows(); ++r) cm->InsertRow(r);
  EXPECT_EQ(cm->NumEntries(), entries);
  ASSERT_TRUE(cm->CheckInvariants().ok());
}

TEST(CorrelationMapTest, RecordsRoundTrip) {
  auto t = Fig4Table();
  auto cm = CorrelationMap::Create(t.get(), CityCmOptions(*t));
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());
  auto records = cm->ToRecords();
  auto cm2 = CorrelationMap::Create(t.get(), CityCmOptions(*t));
  ASSERT_TRUE(cm2.ok());
  ASSERT_TRUE(cm2->LoadRecords(records).ok());
  EXPECT_EQ(cm2->NumEntries(), cm->NumEntries());
  EXPECT_EQ(cm2->NumUKeys(), cm->NumUKeys());
  ASSERT_TRUE(cm2->CheckInvariants().ok());
}

TEST(CorrelationMapTest, LoadRejectsCorruptRecords) {
  auto t = Fig4Table();
  auto cm = CorrelationMap::Create(t.get(), CityCmOptions(*t));
  ASSERT_TRUE(cm.ok());
  CorrelationMap::Record bad;
  bad.u.n = 3;  // arity mismatch
  bad.c_ordinal = 0;
  bad.count = 1;
  std::array<CorrelationMap::Record, 1> recs = {bad};
  EXPECT_FALSE(cm->LoadRecords(recs).ok());
}

/// Numeric table with a soft FD: c = u / k + noise, clustered on c, with a
/// bucketed CM on u. Parameterized over (bucket level, clustered bucket
/// target) to sweep the design space.
class BucketedCmPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  void SetUp() override {
    Schema schema({ColumnDef::Int64("c"), ColumnDef::Double("u")});
    table_ = std::make_unique<Table>("t", std::move(schema));
    Rng rng(41);
    for (int i = 0; i < 20000; ++i) {
      const double u = rng.UniformDouble(0, 100000);
      const int64_t c = int64_t(u / 1000.0) + rng.UniformInt(0, 2);
      std::array<Value, 2> row = {Value(c), Value(u)};
      ASSERT_TRUE(table_->AppendRow(row).ok());
    }
    ASSERT_TRUE(table_->ClusterBy(0).ok());
  }
  std::unique_ptr<Table> table_;
};

TEST_P(BucketedCmPropertyTest, NoFalseNegativesOnRangeLookups) {
  const auto [level, c_target] = GetParam();
  auto cb = ClusteredBucketing::Build(*table_, 0, uint64_t(c_target));
  ASSERT_TRUE(cb.ok());
  CmOptions opts;
  opts.u_cols = {1};
  opts.u_bucketers = {Bucketer::ValueOrdinalFromColumn(*table_, 1, level)};
  opts.c_col = 0;
  opts.c_buckets = &*cb;
  auto cm = CorrelationMap::Create(table_.get(), opts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());
  ASSERT_TRUE(cm->CheckInvariants().ok());

  Rng rng(uint64_t(level) * 31 + uint64_t(c_target));
  for (int trial = 0; trial < 20; ++trial) {
    const double lo = rng.UniformDouble(0, 90000);
    const double hi = lo + rng.UniformDouble(0, 5000);
    std::array<CmColumnPredicate, 1> preds = {CmColumnPredicate::Range(lo, hi)};
    auto ordinals = cm->CmLookup(preds);
    std::unordered_set<int64_t> covered(ordinals.begin(), ordinals.end());
    // Every truly-matching row's clustered bucket must be in the lookup.
    for (RowId r = 0; r < table_->NumRows(); ++r) {
      const double u = table_->GetKey(r, 1).Numeric();
      if (u >= lo && u <= hi) {
        EXPECT_TRUE(covered.count(cb->BucketOfRow(r)))
            << "false negative at row " << r << " (u=" << u << ")";
      }
    }
  }
}

TEST_P(BucketedCmPropertyTest, MaintenanceMatchesRebuild) {
  const auto [level, c_target] = GetParam();
  auto cb = ClusteredBucketing::Build(*table_, 0, uint64_t(c_target));
  ASSERT_TRUE(cb.ok());
  CmOptions opts;
  opts.u_cols = {1};
  opts.u_bucketers = {Bucketer::ValueOrdinalFromColumn(*table_, 1, level)};
  opts.c_col = 0;
  opts.c_buckets = &*cb;
  auto incremental = CorrelationMap::Create(table_.get(), opts);
  ASSERT_TRUE(incremental.ok());
  // Insert all rows, delete every 7th, like an update stream.
  for (RowId r = 0; r < table_->NumRows(); ++r) incremental->InsertRow(r);
  for (RowId r = 0; r < table_->NumRows(); r += 7) {
    ASSERT_TRUE(incremental->DeleteRow(r).ok());
  }
  for (RowId r = 0; r < table_->NumRows(); r += 7) incremental->InsertRow(r);

  auto fresh = CorrelationMap::Create(table_.get(), opts);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(fresh->BuildFromTable().ok());
  EXPECT_EQ(incremental->NumEntries(), fresh->NumEntries());
  EXPECT_EQ(incremental->NumUKeys(), fresh->NumUKeys());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BucketedCmPropertyTest,
    ::testing::Combine(::testing::Values(0, 2, 5, 9),
                       ::testing::Values(64, 512, 4096)));

TEST(CompositeCmTest, PairLookupIntersectsBothColumns) {
  // z determined by (x, y) jointly, weak alone -- longitude/latitude
  // example (§6).
  Schema schema(
      {ColumnDef::Int64("z"), ColumnDef::Int64("x"), ColumnDef::Int64("y")});
  Table t("t", std::move(schema));
  Rng rng(43);
  for (int i = 0; i < 10000; ++i) {
    const int64_t x = rng.UniformInt(0, 29);
    const int64_t y = rng.UniformInt(0, 29);
    std::array<Value, 3> row = {Value(x * 30 + y), Value(x), Value(y)};
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  ASSERT_TRUE(t.ClusterBy(0).ok());

  CmOptions opts;
  opts.u_cols = {1, 2};
  opts.u_bucketers = {Bucketer::Identity(), Bucketer::Identity()};
  opts.c_col = 0;
  auto cm = CorrelationMap::Create(&t, opts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());

  std::array<CmColumnPredicate, 2> preds = {
      CmColumnPredicate::Points({Key(int64_t{7})}),
      CmColumnPredicate::Points({Key(int64_t{11})})};
  auto ordinals = cm->CmLookup(preds);
  ASSERT_EQ(ordinals.size(), 1u);
  EXPECT_EQ(cm->DecodeClusteredOrdinal(ordinals[0]).AsInt64(), 7 * 30 + 11);
}

TEST(CompositeCmTest, SizeBytesUsesKeyWidth) {
  Schema schema(
      {ColumnDef::Int64("z"), ColumnDef::Int64("x"), ColumnDef::Int64("y")});
  Table t("t", std::move(schema));
  std::array<Value, 3> row = {Value(1), Value(2), Value(3)};
  ASSERT_TRUE(t.AppendRow(row).ok());
  ASSERT_TRUE(t.ClusterBy(0).ok());
  CmOptions opts;
  opts.u_cols = {1, 2};
  opts.u_bucketers = {Bucketer::Identity(), Bucketer::Identity()};
  opts.c_col = 0;
  auto cm = CorrelationMap::Create(&t, opts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());
  EXPECT_EQ(cm->SizeBytes(), 1u * (16 + 8 + 4));
}

TEST(CorrelationMapTest, CompressionVsDenseIndex) {
  // §5.3: CM stores unique pairs, not tuples. With 100k rows over 200
  // (u, c) pairs the CM must be ~500x smaller than a per-tuple structure.
  Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u")});
  Table t("t", std::move(schema));
  Rng rng(47);
  for (int i = 0; i < 100000; ++i) {
    const int64_t u = rng.UniformInt(0, 99);
    std::array<Value, 2> row = {Value(u / 2 + rng.UniformInt(0, 1)), Value(u)};
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  ASSERT_TRUE(t.ClusterBy(0).ok());
  CmOptions opts;
  opts.u_cols = {1};
  opts.u_bucketers = {Bucketer::Identity()};
  opts.c_col = 0;
  auto cm = CorrelationMap::Create(&t, opts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());
  const uint64_t dense_index_bytes = 100000 * 20;
  EXPECT_LT(cm->SizeBytes() * 100, dense_index_bytes);
}

}  // namespace
}  // namespace corrmap
