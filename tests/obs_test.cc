// Tier-1 coverage for src/obs: counters/gauges/histograms must stay exact
// (count/sum/max) and within the documented quantile error bound under
// concurrent writers; the trace ring must evict oldest-first and the slow
// log keep-worst; the drift tracker must reproduce known est/actual ratios
// and roll windows at epoch advances; registry handles must be stable and
// its JSON/Prometheus exports well-formed; and a metrics-attached
// ServingEngine must count exactly the operations issued against it, with
// the WorkloadDriver's latency report agreeing with the registry snapshot
// sample-for-sample (they share one histogram stream).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "index/clustered_index.h"
#include "obs/drift.h"
#include "obs/metrics.h"
#include "obs/serving_metrics.h"
#include "obs/trace.h"
#include "serve/driver.h"
#include "serve/serving_engine.h"
#include "storage/table.h"

namespace corrmap {
namespace {

using obs::Counter;
using obs::DriftTracker;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::SelectTrace;
using obs::ServingMetrics;
using obs::SlowSelectLog;
using obs::TraceRing;
using serve::ServingEngine;
using serve::ServingOptions;

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

TEST(ObsCounterTest, ConcurrentAddsSumExactly) {
  Counter c;
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
  c.Add(42);
  EXPECT_EQ(c.Value(), kThreads * kPerThread + 42);
}

TEST(ObsGaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(3.5);
  g.Set(-7.25);
  EXPECT_EQ(g.Value(), -7.25);
}

// ---------------------------------------------------------------------------
// Histogram: golden quantiles vs exact sorted percentiles
// ---------------------------------------------------------------------------

double ExactPercentile(std::vector<double> sorted, double q) {
  // Nearest-rank on the sorted samples -- the definition the old
  // sort-based LatencySummary used, which the histogram must track.
  const size_t idx = std::min(
      sorted.size() - 1, size_t(std::ceil(q * double(sorted.size()))) -
                             (q > 0 ? 1 : 0));
  return sorted[idx];
}

void ExpectQuantilesWithinBound(const std::vector<double>& samples) {
  Histogram h;
  for (double v : samples) h.Record(v);
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  EXPECT_EQ(h.Count(), samples.size());
  double sum = 0;
  for (double v : sorted) sum += v;
  EXPECT_NEAR(h.Sum(), sum, std::abs(sum) * 1e-9 + 1e-9);
  EXPECT_EQ(h.Max(), sorted.back());

  // Documented bound: bucket midpoints are within half a sub-bucket width
  // of any sample in the bucket, i.e. 1/(2*kSubBuckets) = 6.25% relative.
  // Allow a whisker on top for the nearest-rank-vs-cumulative-count
  // difference at bucket edges.
  constexpr double kRelTol = 1.0 / (2.0 * Histogram::kSubBuckets) + 0.02;
  for (double q : {0.10, 0.50, 0.90, 0.99}) {
    const double exact = ExactPercentile(sorted, q);
    const double approx = h.Quantile(q);
    EXPECT_NEAR(approx, exact, std::abs(exact) * kRelTol)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

TEST(ObsHistogramTest, QuantilesTrackExactPercentilesUniform) {
  Rng rng(101);
  std::vector<double> samples;
  for (int i = 0; i < 20'000; ++i) {
    samples.push_back(rng.UniformDouble(5.0, 5000.0));
  }
  ExpectQuantilesWithinBound(samples);
}

TEST(ObsHistogramTest, QuantilesTrackExactPercentilesLogNormalish) {
  // Latency-shaped: heavy right tail spanning several octaves.
  Rng rng(102);
  std::vector<double> samples;
  for (int i = 0; i < 20'000; ++i) {
    samples.push_back(std::exp(rng.UniformDouble(0.0, 10.0)));
  }
  ExpectQuantilesWithinBound(samples);
}

TEST(ObsHistogramTest, QuantileClampsToMaxAndHandlesConstants) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(37.0);
  // All mass in one bucket: every quantile must report an observed value,
  // not the bucket midpoint drifting past it.
  EXPECT_EQ(h.Quantile(0.5), 37.0);
  EXPECT_EQ(h.Quantile(1.0), h.Max());
  EXPECT_EQ(h.Max(), 37.0);

  Histogram empty;
  EXPECT_EQ(empty.Count(), 0u);
  EXPECT_EQ(empty.Quantile(0.5), 0.0);
  EXPECT_EQ(empty.Max(), 0.0);
}

TEST(ObsHistogramTest, BucketMidWithinBucketBound) {
  Rng rng(103);
  for (int i = 0; i < 5'000; ++i) {
    const double v = std::exp(rng.UniformDouble(-10.0, 20.0));
    const size_t idx = Histogram::BucketIndex(v);
    ASSERT_GT(idx, 0u);
    ASSERT_LT(idx, Histogram::kNumBuckets - 1);
    const double mid = Histogram::BucketMid(idx);
    EXPECT_NEAR(mid, v, v / (2.0 * Histogram::kSubBuckets) * 1.0001)
        << "v=" << v << " idx=" << idx << " mid=" << mid;
  }
  // Non-positive and NaN samples land in the underflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-3.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0u);
  EXPECT_EQ(Histogram::BucketMid(0), 0.0);
}

TEST(ObsHistogramTest, ConcurrentRecordsKeepExactCountSumMax) {
  Histogram h;
  constexpr size_t kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(double(t * kPerThread + i + 1));
      }
    });
  }
  for (auto& th : threads) th.join();
  const uint64_t n = kThreads * kPerThread;
  EXPECT_EQ(h.Count(), n);
  EXPECT_EQ(h.Max(), double(n));
  // Sum of 1..n; the CAS-add is exact in this range (all doubles integral).
  EXPECT_EQ(h.Sum(), double(n) * double(n + 1) / 2.0);
}

// ---------------------------------------------------------------------------
// TraceRing / SlowSelectLog
// ---------------------------------------------------------------------------

SelectTrace TraceWithCost(double actual_ms) {
  SelectTrace t;
  t.actual_ms = actual_ms;
  t.fingerprint = uint64_t(actual_ms * 1000);
  return t;
}

TEST(ObsTraceRingTest, EvictsOldestFirstAndSnapshotsAscending) {
  TraceRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 20; ++i) ring.Push(TraceWithCost(double(i)));
  EXPECT_EQ(ring.TotalRecorded(), 20u);
  const std::vector<SelectTrace> snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 8u);
  // Pushes 0..19 got seqs 0..19; the ring keeps the last capacity() of
  // them, oldest surviving first.
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].seq, 12 + i);
  }
}

TEST(ObsTraceRingTest, ConcurrentPushesNeverTearOrLoseSeqs) {
  TraceRing ring(64);
  constexpr size_t kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring] {
      for (int i = 0; i < kPerThread; ++i) {
        ring.Push(TraceWithCost(1.0));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ring.TotalRecorded(), kThreads * kPerThread);
  const std::vector<SelectTrace> snap = ring.Snapshot();
  EXPECT_EQ(snap.size(), ring.capacity());
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].seq, snap[i].seq);
  }
}

TEST(ObsSlowLogTest, KeepsWorstByActualCost) {
  SlowSelectLog log(4);
  // Offer 1..10 in shuffled order; only {10, 9, 8, 7} survive.
  std::vector<double> costs = {3, 7, 1, 10, 5, 8, 2, 9, 4, 6};
  for (double c : costs) log.Offer(TraceWithCost(c));
  const std::vector<SelectTrace> worst = log.Worst();
  ASSERT_EQ(worst.size(), 4u);
  EXPECT_EQ(worst[0].actual_ms, 10.0);
  EXPECT_EQ(worst[1].actual_ms, 9.0);
  EXPECT_EQ(worst[2].actual_ms, 8.0);
  EXPECT_EQ(worst[3].actual_ms, 7.0);
  // A cheap offer after the floor is set must not displace anything.
  log.Offer(TraceWithCost(0.5));
  EXPECT_EQ(log.Worst().size(), 4u);
  EXPECT_EQ(log.Worst()[3].actual_ms, 7.0);
}

// ---------------------------------------------------------------------------
// DriftTracker
// ---------------------------------------------------------------------------

TEST(ObsDriftTest, RatiosMatchKnownWorkloadAndWindowsRoll) {
  DriftTracker d;
  // cm_probe: estimates half the actual (ratio 2); seq_scan: spot on.
  for (int i = 0; i < 100; ++i) {
    d.Record(PlanKind::kCmProbe, 1.0, 2.0);
    d.Record(PlanKind::kSeqScan, 4.0, 4.0);
  }
  DriftTracker::Snapshot s = d.snapshot();
  EXPECT_EQ(s.epoch, 0u);
  const size_t cm = size_t(PlanKind::kCmProbe);
  const size_t scan = size_t(PlanKind::kSeqScan);
  EXPECT_EQ(s.current[cm].selects, 100u);
  EXPECT_DOUBLE_EQ(s.current[cm].Ratio(), 2.0);
  EXPECT_DOUBLE_EQ(s.current[scan].Ratio(), 1.0);
  EXPECT_DOUBLE_EQ(s.lifetime[cm].Ratio(), 2.0);
  // Untouched kinds report 0 (no estimate mass), not NaN.
  EXPECT_EQ(s.current[size_t(PlanKind::kSortedIndex)].Ratio(), 0.0);

  d.AdvanceEpoch();
  s = d.snapshot();
  EXPECT_EQ(s.epoch, 1u);
  // The completed window moved to previous; current restarted.
  EXPECT_EQ(s.previous[cm].selects, 100u);
  EXPECT_DOUBLE_EQ(s.previous[cm].Ratio(), 2.0);
  EXPECT_EQ(s.current[cm].selects, 0u);
  EXPECT_EQ(s.lifetime[cm].selects, 100u);

  // Post-roll samples land in the fresh window; lifetime keeps summing.
  d.Record(PlanKind::kCmProbe, 1.0, 3.0);
  s = d.snapshot();
  EXPECT_DOUBLE_EQ(s.current[cm].Ratio(), 3.0);
  EXPECT_EQ(s.lifetime[cm].selects, 101u);
}

TEST(ObsDriftTest, ConcurrentRecordsSumExactly) {
  DriftTracker d;
  constexpr size_t kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&d] {
      for (int i = 0; i < kPerThread; ++i) {
        d.Record(PlanKind::kClusteredRange, 1.0, 1.5);
      }
    });
  }
  for (auto& th : threads) th.join();
  const DriftTracker::Snapshot s = d.snapshot();
  const size_t k = size_t(PlanKind::kClusteredRange);
  EXPECT_EQ(s.current[k].selects, kThreads * kPerThread);
  EXPECT_EQ(s.lifetime[k].selects, kThreads * kPerThread);
  EXPECT_NEAR(s.lifetime[k].Ratio(), 1.5, 1e-9);
}

// ---------------------------------------------------------------------------
// MetricsRegistry: stable handles, concurrent get-or-create, exports
// ---------------------------------------------------------------------------

TEST(ObsRegistryTest, HandlesAreStableAndSharedByName) {
  MetricsRegistry reg;
  Counter* a = reg.counter("x_total");
  Counter* b = reg.counter("x_total");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.counter("y_total"), a);
  Histogram* h1 = reg.histogram("lat_us");
  EXPECT_EQ(h1, reg.histogram("lat_us"));
  Gauge* g1 = reg.gauge("depth");
  EXPECT_EQ(g1, reg.gauge("depth"));
}

TEST(ObsRegistryTest, ConcurrentGetOrCreateAndIncrement) {
  MetricsRegistry reg;
  constexpr size_t kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Every thread resolves the same names itself -- get-or-create must
      // hand each the same underlying object.
      Counter* c = reg.counter("shared_total");
      Histogram* h = reg.histogram("shared_hist");
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Record(1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter("shared_total")->Value(), kThreads * kPerThread);
  EXPECT_EQ(reg.histogram("shared_hist")->Count(), kThreads * kPerThread);
}

TEST(ObsRegistryTest, CallbackGaugeLifecycle) {
  MetricsRegistry reg;
  double live = 12.5;
  reg.RegisterCallbackGauge("live_value", [&live] { return live; });
  EXPECT_NE(reg.ToJson().find("\"live_value\": 12.5"), std::string::npos);
  live = 13.0;
  EXPECT_NE(reg.ToJson().find("\"live_value\": 13"), std::string::npos);
  reg.RemoveCallbackGauge("live_value");
  EXPECT_EQ(reg.ToJson().find("live_value"), std::string::npos);
}

// Minimal recursive-descent JSON validator: enough grammar to reject any
// malformed snapshot the exports could emit (unbalanced structure, bad
// numbers, trailing garbage). Not a parser -- it only answers "valid?".
class JsonChecker {
 public:
  static bool Valid(const std::string& s) {
    JsonChecker c(s);
    c.SkipWs();
    if (!c.Value()) return false;
    c.SkipWs();
    return c.pos_ == s.size();
  }

 private:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') return ++pos_, true;
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') return ++pos_, true;
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(Peek())) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(Peek())) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(Peek())) ++pos_;
    }
    return pos_ > start && std::isdigit(s_[pos_ - 1]);
  }
  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(uint8_t(s_[pos_]))) ++pos_;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(ObsRegistryTest, JsonExportIsValidJson) {
  MetricsRegistry reg;
  reg.counter("ops_total")->Add(7);
  reg.gauge("depth")->Set(2.5);
  Histogram* h = reg.histogram("lat_us");
  for (int i = 1; i <= 100; ++i) h->Record(double(i));
  reg.RegisterCallbackGauge("cb", [] { return 1.0; });
  const std::string json = reg.ToJson();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find("\"ops_total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"lat_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(ObsRegistryTest, PrometheusExportParsesLineByLine) {
  MetricsRegistry reg;
  reg.counter("ops_total")->Add(7);
  reg.gauge("queue_depth")->Set(3);
  Histogram* h = reg.histogram("lat_us");
  for (int i = 1; i <= 100; ++i) h->Record(double(i));
  const std::string text = reg.ToPrometheus();
  ASSERT_FALSE(text.empty());
  size_t series = 0;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    // "<name>[{labels}] <value>": last space splits name from a number.
    const size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    size_t parsed = 0;
    const double v = std::stod(line.substr(sp + 1), &parsed);
    EXPECT_EQ(sp + 1 + parsed, line.size()) << line;
    EXPECT_TRUE(std::isfinite(v)) << line;
    // Metric names must be Prometheus-safe.
    const char c0 = line[0];
    EXPECT_TRUE(std::isalpha(uint8_t(c0)) || c0 == '_') << line;
    ++series;
  }
  EXPECT_GE(series, 3u);
  EXPECT_NE(text.find("ops_total 7"), std::string::npos);
}

TEST(ObsTraceTest, FingerprintIsOrderInsensitiveAndShapeSensitive) {
  Table t("t", Schema({ColumnDef::Int64("c"), ColumnDef::Int64("u")}));
  std::array<Value, 2> row = {Value(int64_t{1}), Value(int64_t{10})};
  ASSERT_TRUE(t.AppendRow(row).ok());
  const Predicate a = Predicate::Eq(t, "c", Value(int64_t{5}));
  const Predicate b = Predicate::Between(t, "u", Value(int64_t{10}),
                                         Value(int64_t{20}));
  const uint64_t ab = obs::FingerprintQuery(Query({a, b}));
  const uint64_t ba = obs::FingerprintQuery(Query({b, a}));
  EXPECT_EQ(ab, ba);
  const uint64_t just_a = obs::FingerprintQuery(Query({a}));
  const uint64_t other =
      obs::FingerprintQuery(Query({Predicate::Eq(t, "c", Value(int64_t{6}))}));
  EXPECT_NE(ab, just_a);
  EXPECT_NE(just_a, other);
}

// ---------------------------------------------------------------------------
// Engine integration: counters match issued operations, gauges follow the
// engine's lifetime, driver reports agree with the registry.
// ---------------------------------------------------------------------------

/// Correlated c~u/10 table behind a metrics-attached engine (the
/// serve_test fixture shape, plus the observability bundle).
struct ObservedEngineFixture {
  std::unique_ptr<Table> table;
  std::unique_ptr<ClusteredIndex> cidx;
  ServingMetrics metrics;
  std::unique_ptr<ServingEngine> engine;

  ObservedEngineFixture() {
    table = std::make_unique<Table>(
        "t", Schema({ColumnDef::Int64("c"), ColumnDef::Int64("u")}));
    Rng rng(71);
    for (int i = 0; i < 20000; ++i) {
      const int64_t u = rng.UniformInt(0, 999);
      std::array<Value, 2> row = {Value(u / 10 + rng.UniformInt(0, 1)),
                                  Value(u)};
      EXPECT_TRUE(table->AppendRow(row).ok());
    }
    EXPECT_TRUE(table->ClusterBy(0).ok());
    auto ci = ClusteredIndex::Build(*table, 0);
    EXPECT_TRUE(ci.ok());
    cidx = std::make_unique<ClusteredIndex>(std::move(*ci));
    ServingOptions opts;
    opts.num_workers = 2;
    opts.reserve_rows = table->NumRows() + 50000;
    opts.metrics = &metrics;
    engine = std::make_unique<ServingEngine>(table.get(), cidx.get(), opts);
    CmOptions copts;
    copts.u_cols = {1};
    copts.u_bucketers = {Bucketer::Identity()};
    copts.c_col = 0;
    EXPECT_TRUE(engine->AttachCm(copts).ok());
  }
};

TEST(ObsEngineTest, CountersMatchIssuedOperations) {
  ObservedEngineFixture f;
  const ServingMetrics& m = f.metrics;

  const Query eq({Predicate::Eq(*f.table, "u", Value(321))});
  const Query range(
      {Predicate::Between(*f.table, "u", Value(100), Value(140))});
  for (int i = 0; i < 10; ++i) (void)f.engine->ExecuteSelect(eq);
  for (int i = 0; i < 5; ++i) (void)f.engine->Submit(range).get();
  EXPECT_EQ(m.selects->Value(), 15u);
  EXPECT_EQ(m.select_actual_ms->Count(), 15u);
  uint64_t wins = 0;
  for (const Counter* w : m.plan_wins) wins += w->Value();
  EXPECT_EQ(wins, 15u);
  // Every select records exactly one of the cache hit/miss counters (the
  // hit bit is set only when the *chosen* plan was a cached CM probe, so
  // the split depends on plan choice; the sum does not).
  EXPECT_EQ(m.cache_hit_selects->Value() + m.cache_miss_selects->Value(),
            15u);
  // The deliberations themselves resolved repeated CM lookups through the
  // shared cache, whichever plan won.
  EXPECT_GE(f.engine->cache().stats().hits, 8u);
  // Submit routes through the worker pool, so queue waits were sampled.
  EXPECT_GE(m.queue_wait_us->Count(), 5u);
  // Every select pushed a trace; the worst live in the slow log.
  EXPECT_EQ(m.traces().TotalRecorded(), 15u);
  EXPECT_FALSE(m.slow_log().Worst().empty());

  std::vector<std::vector<Key>> rows(40, {Key(int64_t{50}), Key(int64_t{500})});
  ASSERT_TRUE(f.engine->ApplyAppend(rows).ok());
  EXPECT_EQ(m.appends->Value(), 1u);
  EXPECT_EQ(m.rows_appended->Value(), 40u);

  ASSERT_TRUE(f.engine->ApplyDelete(RowId(5)).ok());
  EXPECT_EQ(m.deletes->Value(), 1u);
  const std::array<Key, 2> upd = {Key(int64_t{40}), Key(int64_t{400})};
  ASSERT_TRUE(f.engine->ApplyUpdate(RowId(7), upd).ok());
  EXPECT_EQ(m.updates->Value(), 1u);

  auto stats = f.engine->Recluster();
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->performed());
  EXPECT_EQ(m.reclusters->Value(), 1u);
  EXPECT_EQ(m.recluster_build_ms->Count(), 1u);
  EXPECT_EQ(m.recluster_swap_ms->Count(), 1u);
  EXPECT_GE(m.recluster_tail_rows_merged->Value(), 40u);
  // The wall-clock phase timings surfaced by ReclusterStats are the same
  // samples the histograms got.
  EXPECT_NEAR(m.recluster_build_ms->Sum(), stats->build_seconds * 1e3,
              1e-6);
  EXPECT_NEAR(m.recluster_swap_ms->Sum(), stats->swap_seconds * 1e3, 1e-6);
  // The epoch swap rolled the drift window.
  EXPECT_EQ(m.drift().snapshot().epoch, 1u);

  auto cstats = f.engine->Compact();
  ASSERT_TRUE(cstats.ok());
  if (cstats->performed()) {
    EXPECT_EQ(m.compactions->Value(), 1u);
  }
}

TEST(ObsEngineTest, GaugesFollowEngineLifetime) {
  auto f = std::make_unique<ObservedEngineFixture>();
  // While the engine lives, its callback gauges are in every export.
  std::string json = f->metrics.registry().ToJson();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  // Exact-quoted keys: "serve_tail_rows" must match the gauge, not the
  // serve_tail_rows_swept_total counter.
  for (const char* name :
       {"serve_tail_rows", "serve_tombstones", "serve_live_rows",
        "serve_recluster_epoch", "serve_queue_depth", "pool_hits",
        "cache_size"}) {
    std::string key = "\"";
    key += name;
    key += "\":";
    EXPECT_NE(json.find(key), std::string::npos) << name;
  }

  // Destroying the engine must unregister them (the callbacks captured
  // engine state) while plain counters survive in the bundle's registry.
  (void)f->engine->ExecuteSelect(
      Query({Predicate::Eq(*f->table, "u", Value(321))}));
  ServingMetrics& m = f->metrics;
  f->engine.reset();
  json = m.registry().ToJson();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_EQ(json.find("\"serve_tail_rows\":"), std::string::npos);
  EXPECT_EQ(json.find("\"pool_hits\":"), std::string::npos);
  EXPECT_NE(json.find("\"serve_selects_total\": 1"), std::string::npos);
}

TEST(ObsEngineTest, FullSnapshotIsValidJson) {
  ObservedEngineFixture f;
  const Query eq({Predicate::Eq(*f.table, "u", Value(500))});
  for (int i = 0; i < 8; ++i) (void)f.engine->ExecuteSelect(eq);
  const std::string json = f.metrics.ToJson();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find("\"registry\""), std::string::npos);
  EXPECT_NE(json.find("\"drift\""), std::string::npos);
  EXPECT_NE(json.find("\"slow_selects\""), std::string::npos);
  EXPECT_NE(json.find("\"lifetime\""), std::string::npos);
}

TEST(ObsEngineTest, DriverReportAgreesWithRegistrySnapshot) {
  ObservedEngineFixture f;
  std::vector<Query> pool;
  for (int u = 0; u < 16; ++u) {
    pool.push_back(Query({Predicate::Eq(*f.table, "u", Value(u * 40))}));
  }
  serve::DriverOptions dopts;
  dopts.reader_threads = 1;  // sole writer of the latency series
  dopts.lookups_per_reader = 200;
  dopts.use_worker_pool = false;
  serve::WorkloadDriver driver(f.engine.get(), dopts);
  const serve::DriverReport report = driver.Run(pool, {});

  // The driver mirrored every wall-latency sample into the registry's
  // serve_select_latency_us series; with one reader the two histograms
  // saw the identical stream, so the summaries must agree exactly.
  const Histogram* h = f.metrics.select_latency_us;
  EXPECT_EQ(report.lookups, 200u);
  EXPECT_EQ(h->Count(), 200u);
  EXPECT_EQ(report.lookup_latency.p50_us, h->Quantile(0.50));
  EXPECT_EQ(report.lookup_latency.p99_us, h->Quantile(0.99));
  EXPECT_EQ(report.lookup_latency.max_us, h->Max());
  EXPECT_EQ(report.lookup_latency.mean_us, h->Mean());
  // And the engine-side select counter saw the same traffic.
  EXPECT_EQ(f.metrics.selects->Value(), 200u);
}

}  // namespace
}  // namespace corrmap
