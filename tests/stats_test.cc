// Unit tests for stats/: reservoir sampling, Distinct Sampling, the
// GEE/Chao/adaptive estimators, correlation statistics, and histograms.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <unordered_set>

#include "common/rng.h"
#include "stats/adaptive_estimator.h"
#include "stats/correlation_stats.h"
#include "stats/distinct_sampling.h"
#include "stats/histogram.h"
#include "stats/sampler.h"
#include "storage/table.h"

namespace corrmap {
namespace {

std::unique_ptr<Table> IntTable(size_t rows, int64_t distinct,
                                uint64_t seed = 1) {
  Schema schema({ColumnDef::Int64("a"), ColumnDef::Int64("b")});
  auto t = std::make_unique<Table>("t", std::move(schema));
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    const int64_t a = rng.UniformInt(0, distinct - 1);
    std::array<Value, 2> row = {Value(a), Value(a / 4)};  // b determined by a
    EXPECT_TRUE(t->AppendRow(row).ok());
  }
  return t;
}

TEST(RowSampleTest, SampleSizeIsBounded) {
  auto t = IntTable(10000, 100);
  RowSample s = RowSample::Collect(*t, 500);
  EXPECT_EQ(s.size(), 500u);
  EXPECT_EQ(s.population(), 10000u);
}

TEST(RowSampleTest, SmallTableFullySampled) {
  auto t = IntTable(50, 10);
  RowSample s = RowSample::Collect(*t, 500);
  EXPECT_EQ(s.size(), 50u);
}

TEST(RowSampleTest, SkipsDeletedRows) {
  auto t = IntTable(100, 10);
  for (RowId r = 0; r < 50; ++r) ASSERT_TRUE(t->DeleteRow(r).ok());
  RowSample s = RowSample::Collect(*t, 1000);
  EXPECT_EQ(s.size(), 50u);
  for (RowId r : s.rows()) EXPECT_GE(r, 50u);
}

TEST(RowSampleTest, RoughlyUniform) {
  auto t = IntTable(10000, 100);
  RowSample s = RowSample::Collect(*t, 2000, /*seed=*/7);
  // Mean sampled row id should be near the middle.
  double sum = 0;
  for (RowId r : s.rows()) sum += double(r);
  EXPECT_NEAR(sum / double(s.size()), 5000.0, 300.0);
}

TEST(DistinctSamplingTest, ExactWhenSampleFits) {
  DistinctSampler ds(1024);
  for (int64_t v = 0; v < 500; ++v) ds.Add(Key(v));
  EXPECT_DOUBLE_EQ(ds.Estimate(), 500.0);
  EXPECT_EQ(ds.level(), 0);
}

TEST(DistinctSamplingTest, DuplicatesDoNotInflate) {
  DistinctSampler ds(1024);
  for (int rep = 0; rep < 10; ++rep) {
    for (int64_t v = 0; v < 300; ++v) ds.Add(Key(v));
  }
  EXPECT_DOUBLE_EQ(ds.Estimate(), 300.0);
}

TEST(DistinctSamplingTest, AccurateUnderPromotion) {
  DistinctSampler ds(512);  // forces multiple level promotions
  const int64_t true_d = 100000;
  for (int64_t v = 0; v < true_d; ++v) ds.Add(Key(v));
  EXPECT_GT(ds.level(), 0);
  EXPECT_NEAR(ds.Estimate(), double(true_d), double(true_d) * 0.20);
}

TEST(DistinctSamplingTest, ColumnHelper) {
  auto t = IntTable(20000, 1000);
  const double est = DistinctSampler::EstimateColumn(*t, 0);
  EXPECT_NEAR(est, 1000.0, 50.0);
}

TEST(SampleFrequenciesTest, CountsSingletonsAndDoubletons) {
  std::vector<CompositeKey> keys;
  keys.push_back(CompositeKey(Key(int64_t{1})));
  keys.push_back(CompositeKey(Key(int64_t{2})));
  keys.push_back(CompositeKey(Key(int64_t{2})));
  keys.push_back(CompositeKey(Key(int64_t{3})));
  keys.push_back(CompositeKey(Key(int64_t{3})));
  keys.push_back(CompositeKey(Key(int64_t{3})));
  SampleFrequencies f = SampleFrequencies::FromKeys(keys);
  EXPECT_EQ(f.sample_size, 6u);
  EXPECT_EQ(f.distinct, 3u);
  EXPECT_EQ(f.f1, 1u);
  EXPECT_EQ(f.f2, 1u);
}

TEST(AdaptiveEstimatorTest, ExactWhenSampleIsPopulation) {
  std::vector<CompositeKey> keys;
  for (int64_t v = 0; v < 100; ++v) {
    keys.push_back(CompositeKey(Key(v % 25)));
  }
  EXPECT_DOUBLE_EQ(AdaptiveEstimator::Estimate(keys, 100), 25.0);
}

TEST(AdaptiveEstimatorTest, GEEScalesSingletons) {
  SampleFrequencies f;
  f.sample_size = 100;
  f.distinct = 100;
  f.f1 = 100;  // all singletons
  // GEE = sqrt(10000/100)*100 = 1000.
  EXPECT_DOUBLE_EQ(AdaptiveEstimator::GEE(f, 10000), 1000.0);
}

TEST(AdaptiveEstimatorTest, ClampedToPopulation) {
  SampleFrequencies f;
  f.sample_size = 10;
  f.distinct = 10;
  f.f1 = 10;
  EXPECT_LE(AdaptiveEstimator::Estimate(f, 20), 20.0);
  EXPECT_GE(AdaptiveEstimator::Estimate(f, 20), 10.0);
}

TEST(AdaptiveEstimatorTest, LowCardinalityColumnNearExact) {
  // 50 distinct values, sample of 2000 from 100k rows: every value seen
  // many times; estimate should be ~50, not scaled up.
  Rng rng(5);
  std::vector<CompositeKey> keys;
  for (int i = 0; i < 2000; ++i) {
    keys.push_back(CompositeKey(Key(rng.UniformInt(0, 49))));
  }
  const double est = AdaptiveEstimator::Estimate(keys, 100000);
  EXPECT_NEAR(est, 50.0, 5.0);
}

TEST(AdaptiveEstimatorTest, HighCardinalityScalesUp) {
  // Near-unique column: 2000 singleton samples from 1M rows must estimate
  // far above the observed 2000.
  std::vector<CompositeKey> keys;
  for (int64_t i = 0; i < 2000; ++i) {
    keys.push_back(CompositeKey(Key(i * 7919)));
  }
  const double est = AdaptiveEstimator::Estimate(keys, 1'000'000);
  EXPECT_GT(est, 20000.0);
}

TEST(AdaptiveEstimatorTest, OrderingPreservedAcrossBucketWidths) {
  // Coarser bucketing must never estimate MORE distinct values -- the
  // advisor relies on this relative ordering.
  Rng rng(17);
  std::vector<CompositeKey> fine, coarse;
  for (int i = 0; i < 3000; ++i) {
    const int64_t v = rng.UniformInt(0, 99999);
    fine.push_back(CompositeKey(Key(v)));
    coarse.push_back(CompositeKey(Key(v / 64)));
  }
  EXPECT_GE(AdaptiveEstimator::Estimate(fine, 500000),
            AdaptiveEstimator::Estimate(coarse, 500000));
}

TEST(CorrelationStatsTest, PerfectFunctionalDependency) {
  auto t = IntTable(5000, 400);  // b = a / 4 exactly
  CorrelationStats s = ComputeExactCorrelationStats(*t, {0}, 1);
  // Every `a` maps to exactly one `b`: c_per_u == 1.
  EXPECT_DOUBLE_EQ(s.c_per_u, 1.0);
  EXPECT_NEAR(s.d_u, 400.0, 1.0);
}

TEST(CorrelationStatsTest, IndependentAttributesHaveHighCPerU) {
  Schema schema({ColumnDef::Int64("a"), ColumnDef::Int64("b")});
  Table t("t", std::move(schema));
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    std::array<Value, 2> row = {Value(rng.UniformInt(0, 49)),
                                Value(rng.UniformInt(0, 49))};
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  CorrelationStats s = ComputeExactCorrelationStats(t, {0}, 1);
  EXPECT_GT(s.c_per_u, 40.0);  // nearly all 50 b-values per a-value
}

TEST(CorrelationStatsTest, CompositeStrongerThanParts) {
  // The paper's (city,state)->zip intuition: a determined by (x,y) jointly.
  Schema schema(
      {ColumnDef::Int64("x"), ColumnDef::Int64("y"), ColumnDef::Int64("z")});
  Table t("t", std::move(schema));
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const int64_t x = rng.UniformInt(0, 19);
    const int64_t y = rng.UniformInt(0, 19);
    std::array<Value, 3> row = {Value(x), Value(y), Value(x * 20 + y)};
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  CorrelationStats sx = ComputeExactCorrelationStats(t, {0}, 2);
  CorrelationStats sxy = ComputeExactCorrelationStats(t, {0, 1}, 2);
  EXPECT_DOUBLE_EQ(sxy.c_per_u, 1.0);
  EXPECT_GT(sx.c_per_u, 15.0);
}

TEST(CorrelationStatsTest, EstimateTracksExact) {
  auto t = IntTable(50000, 200, /*seed=*/11);
  RowSample sample = RowSample::Collect(*t, 5000);
  CorrelationStats exact = ComputeExactCorrelationStats(*t, {0}, 1);
  CorrelationStats est = EstimateCorrelationStats(*t, sample, {0}, 1);
  EXPECT_NEAR(est.c_per_u, exact.c_per_u, 0.25);
  EXPECT_NEAR(est.d_u, exact.d_u, exact.d_u * 0.2);
}

TEST(HistogramTest, BinCountsSumToTotal) {
  auto t = IntTable(10000, 500);
  EquiWidthHistogram h = EquiWidthHistogram::Build(*t, 0, 32);
  uint64_t sum = 0;
  for (size_t i = 0; i < h.num_bins(); ++i) sum += h.bin_count(i);
  EXPECT_EQ(sum, 10000u);
}

TEST(HistogramTest, RangeSelectivityUniform) {
  auto t = IntTable(50000, 1000, /*seed=*/23);
  EquiWidthHistogram h = EquiWidthHistogram::Build(*t, 0, 64);
  // Uniform over [0,999]: a [0,499] range is ~half the rows.
  EXPECT_NEAR(h.SelectivityRange(0, 499), 0.5, 0.05);
  EXPECT_NEAR(h.SelectivityRange(h.min(), h.max()), 1.0, 0.01);
  EXPECT_DOUBLE_EQ(h.SelectivityRange(2000, 3000), 0.0);
}

TEST(HistogramTest, SampleBuildMatchesFullBuild) {
  auto t = IntTable(50000, 1000, /*seed=*/29);
  RowSample sample = RowSample::Collect(*t, 5000);
  EquiWidthHistogram full = EquiWidthHistogram::Build(*t, 0, 32);
  EquiWidthHistogram sampled = EquiWidthHistogram::Build(*t, 0, 32, &sample);
  EXPECT_NEAR(sampled.SelectivityRange(100, 300),
              full.SelectivityRange(100, 300), 0.05);
}

TEST(HistogramTest, PointSelectivity) {
  auto t = IntTable(10000, 100, /*seed=*/31);
  EquiWidthHistogram h = EquiWidthHistogram::Build(*t, 0, 10);
  // 100 uniform values: each point is ~1% of rows.
  EXPECT_NEAR(h.SelectivityPoint(50), 0.01, 0.005);
}

}  // namespace
}  // namespace corrmap
