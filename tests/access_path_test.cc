// Tests for the five access paths: every path must return exactly the rows
// a full scan returns (no false positives/negatives in results), and their
// relative simulated costs must follow the paper's §3 analysis.
#include <gtest/gtest.h>

#include <array>

#include "common/rng.h"
#include "exec/access_path.h"
#include "workload/tpch_gen.h"

namespace corrmap {
namespace {

/// Correlated numeric workload: table clustered on c; u ~ soft FD of c.
struct Fixture {
  std::unique_ptr<Table> table;
  std::unique_ptr<ClusteredIndex> cidx;
  std::unique_ptr<SecondaryIndex> sidx;
  std::unique_ptr<CorrelationMap> cm;

  explicit Fixture(size_t rows = 30000, bool correlated = true) {
    Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u"),
                   ColumnDef::Double("payload")});
    table = std::make_unique<Table>("t", std::move(schema));
    Rng rng(59);
    for (size_t i = 0; i < rows; ++i) {
      const int64_t u = rng.UniformInt(0, 999);
      const int64_t c = correlated ? u / 10 + rng.UniformInt(0, 1)
                                   : rng.UniformInt(0, 99);
      std::array<Value, 3> row = {Value(c), Value(u),
                                  Value(rng.UniformDouble(0, 1))};
      EXPECT_TRUE(table->AppendRow(row).ok());
    }
    EXPECT_TRUE(table->ClusterBy(0).ok());
    auto ci = ClusteredIndex::Build(*table, 0);
    EXPECT_TRUE(ci.ok());
    cidx = std::make_unique<ClusteredIndex>(std::move(*ci));
    sidx = std::make_unique<SecondaryIndex>(table.get(),
                                            std::vector<size_t>{1});
    EXPECT_TRUE(sidx->BuildFromTable().ok());
    CmOptions opts;
    opts.u_cols = {1};
    opts.u_bucketers = {Bucketer::Identity()};
    opts.c_col = 0;
    auto m = CorrelationMap::Create(table.get(), opts);
    EXPECT_TRUE(m.ok());
    EXPECT_TRUE(m->BuildFromTable().ok());
    cm = std::make_unique<CorrelationMap>(std::move(*m));
  }
};

TEST(AccessPathTest, AllPathsAgreeOnEqualityResults) {
  Fixture f;
  Query q({Predicate::Eq(*f.table, "u", Value(137))});
  auto scan = FullTableScan(*f.table, q);
  auto pipelined = PipelinedIndexScan(*f.table, *f.sidx, q);
  auto sorted = SortedIndexScan(*f.table, *f.sidx, q);
  auto virt = VirtualSortedIndexScan(*f.table, q, 1);
  auto cms = CmScan(*f.table, *f.cm, *f.cidx, q);
  ASSERT_GT(scan.rows.size(), 0u);
  EXPECT_EQ(pipelined.rows, scan.rows);
  EXPECT_EQ(sorted.rows, scan.rows);
  EXPECT_EQ(virt.rows, scan.rows);
  EXPECT_EQ(cms.rows, scan.rows);
}

TEST(AccessPathTest, AllPathsAgreeOnInListResults) {
  Fixture f;
  Query q({Predicate::In(*f.table, "u", {Value(5), Value(500), Value(990)})});
  auto scan = FullTableScan(*f.table, q);
  auto sorted = SortedIndexScan(*f.table, *f.sidx, q);
  auto cms = CmScan(*f.table, *f.cm, *f.cidx, q);
  EXPECT_EQ(sorted.rows, scan.rows);
  EXPECT_EQ(cms.rows, scan.rows);
}

TEST(AccessPathTest, RangePredicateResultsAgree) {
  Fixture f;
  Query q({Predicate::Between(*f.table, "u", Value(100), Value(140))});
  auto scan = FullTableScan(*f.table, q);
  auto sorted = SortedIndexScan(*f.table, *f.sidx, q);
  auto cms = CmScan(*f.table, *f.cm, *f.cidx, q);
  ASSERT_GT(scan.rows.size(), 0u);
  EXPECT_EQ(sorted.rows, scan.rows);
  EXPECT_EQ(cms.rows, scan.rows);
}

TEST(AccessPathTest, ClusteredIndexScanMatchesScan) {
  // Large enough that the clustered descent's seeks beat a full sweep (on
  // tiny tables the 5.5 ms seek floor exceeds the scan, per the model).
  Fixture f(150000);
  Query q({Predicate::Between(*f.table, "c", Value(10), Value(20))});
  auto scan = FullTableScan(*f.table, q);
  auto clustered = ClusteredIndexScan(*f.table, *f.cidx, q);
  EXPECT_EQ(clustered.rows, scan.rows);
  EXPECT_LT(clustered.ms, scan.ms);
}

TEST(AccessPathTest, ScanCostIsPagesTimesSeqCost) {
  Fixture f;
  Query q({Predicate::Eq(*f.table, "u", Value(1))});
  auto scan = FullTableScan(*f.table, q);
  EXPECT_EQ(scan.io.seq_pages, f.table->NumPages());
  EXPECT_EQ(scan.io.seeks, 0u);
  EXPECT_DOUBLE_EQ(scan.ms, 0.078 * double(f.table->NumPages()));
}

TEST(AccessPathTest, CorrelationMakesSortedScanCheap) {
  Fixture corr(200000, /*correlated=*/true);
  Fixture uncorr(200000, /*correlated=*/false);
  Query qc({Predicate::Eq(*corr.table, "u", Value(321))});
  Query qu({Predicate::Eq(*uncorr.table, "u", Value(321))});
  auto sc = SortedIndexScan(*corr.table, *corr.sidx, qc);
  auto su = SortedIndexScan(*uncorr.table, *uncorr.sidx, qu);
  // Same matching rows scattered vs clustered: correlated must be much
  // cheaper (the Fig. 1 effect); the uncorrelated sweep degrades to ~scan.
  EXPECT_LT(sc.ms * 3, su.ms);
}

TEST(AccessPathTest, PipelinedWorseThanSortedWhenScattered) {
  Fixture f(30000, /*correlated=*/false);
  Query q(
      {Predicate::In(*f.table, "u", {Value(1), Value(2), Value(3), Value(4)})});
  auto pipelined = PipelinedIndexScan(*f.table, *f.sidx, q);
  auto sorted = SortedIndexScan(*f.table, *f.sidx, q);
  EXPECT_EQ(pipelined.rows, sorted.rows);
  EXPECT_GE(pipelined.ms, sorted.ms);
}

TEST(AccessPathTest, CmScanExaminesSuperset) {
  // Bucketed CM reads false-positive rows but filters them out.
  Schema schema({ColumnDef::Int64("c"), ColumnDef::Double("u")});
  Table t("t", std::move(schema));
  Rng rng(61);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.UniformDouble(0, 10000);
    std::array<Value, 2> row = {Value(int64_t(u / 100)), Value(u)};
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  ASSERT_TRUE(t.ClusterBy(0).ok());
  auto cidx = ClusteredIndex::Build(t, 0);
  ASSERT_TRUE(cidx.ok());
  auto cb = ClusteredBucketing::Build(t, 0, 256);
  ASSERT_TRUE(cb.ok());
  CmOptions opts;
  opts.u_cols = {1};
  opts.u_bucketers = {Bucketer::ValueOrdinalFromColumn(t, 1, 6)};
  opts.c_col = 0;
  opts.c_buckets = &*cb;
  auto cm = CorrelationMap::Create(&t, opts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());

  Query q({Predicate::Between(t, "u", Value(2000.0), Value(2200.0))});
  auto scan = FullTableScan(t, q);
  auto cms = CmScan(t, *cm, *cidx, q);
  EXPECT_EQ(cms.rows, scan.rows);           // exact answers
  EXPECT_GT(cms.rows_examined, cms.rows.size());  // but superset examined
  EXPECT_LT(cms.ms, scan.ms);               // and still cheaper than a scan
}

TEST(AccessPathTest, UncachedCmChargesItsPages) {
  Fixture f(200000);
  Query q({Predicate::Eq(*f.table, "u", Value(10))});
  ExecOptions cached;
  ExecOptions uncached;
  uncached.cm_cached = false;
  auto a = CmScan(*f.table, *f.cm, *f.cidx, q, cached);
  auto b = CmScan(*f.table, *f.cm, *f.cidx, q, uncached);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_GT(b.ms, a.ms);
}

TEST(AccessPathTest, TraceRecordsTouchedPages) {
  Fixture f;
  Query q({Predicate::Eq(*f.table, "u", Value(77))});
  ExecOptions opts;
  opts.keep_trace = true;
  auto sorted = SortedIndexScan(*f.table, *f.sidx, q, opts);
  EXPECT_GT(sorted.trace.NumDistinctPages(), 0u);
  EXPECT_LE(sorted.trace.NumDistinctPages(), f.table->NumPages());
}

TEST(AccessPathTest, CmPredicatesForRejectsUnpredicatedAttr) {
  Fixture f;
  Query q({Predicate::Eq(*f.table, "payload", Value(0.5))});
  auto preds = CmPredicatesFor(*f.cm, q);
  EXPECT_FALSE(preds.ok());
}

TEST(AccessPathTest, DeletedRowsExcludedEverywhere) {
  Fixture f;
  Query q({Predicate::Eq(*f.table, "u", Value(137))});
  auto before = FullTableScan(*f.table, q);
  ASSERT_GT(before.rows.size(), 0u);
  ASSERT_TRUE(f.table->DeleteRow(before.rows[0]).ok());
  auto scan = FullTableScan(*f.table, q);
  auto sorted = SortedIndexScan(*f.table, *f.sidx, q);
  auto cms = CmScan(*f.table, *f.cm, *f.cidx, q);
  EXPECT_EQ(scan.rows.size(), before.rows.size() - 1);
  EXPECT_EQ(sorted.rows, scan.rows);
  EXPECT_EQ(cms.rows, scan.rows);
}

/// Property sweep over TPC-H shipdate lookups: result-set agreement for
/// every path at several IN-list sizes.
class TpchPathAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchPathAgreementTest, ResultsAgree) {
  const int n_dates = GetParam();
  TpchGenConfig cfg;
  cfg.num_rows = 60000;
  auto table = GenerateLineitem(cfg);
  ASSERT_TRUE(table->ClusterBy(kTpch.receiptdate).ok());
  auto cidx = ClusteredIndex::Build(*table, kTpch.receiptdate);
  ASSERT_TRUE(cidx.ok());
  SecondaryIndex sidx(table.get(), {kTpch.shipdate});
  ASSERT_TRUE(sidx.BuildFromTable().ok());
  CmOptions opts;
  opts.u_cols = {kTpch.shipdate};
  opts.u_bucketers = {Bucketer::Identity()};
  opts.c_col = kTpch.receiptdate;
  auto cm = CorrelationMap::Create(table.get(), opts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());

  Rng rng{uint64_t(n_dates)};
  std::vector<Value> dates;
  dates.reserve(size_t(n_dates));
  for (int i = 0; i < n_dates; ++i) {
    dates.emplace_back(rng.UniformInt(0, 2525));
  }
  Query q({Predicate::In(*table, "shipdate", dates)});
  auto scan = FullTableScan(*table, q);
  auto sorted = SortedIndexScan(*table, sidx, q);
  auto cms = CmScan(*table, *cm, *cidx, q);
  EXPECT_EQ(sorted.rows, scan.rows);
  EXPECT_EQ(cms.rows, scan.rows);
}

INSTANTIATE_TEST_SUITE_P(InListSizes, TpchPathAgreementTest,
                         ::testing::Values(1, 4, 16, 64));

}  // namespace
}  // namespace corrmap
