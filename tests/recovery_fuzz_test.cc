// Kill-and-recover differential fuzz for the durable serving stack:
// seeded-RNG CRUD interleavings run against a ServingEngine with a
// group-commit Durability manager attached, then a simulated crash
// (dropping the open commit batch and tearing a seeded number of bytes
// off the last WAL flush) followed by ServingEngine::Recover.
//
// The oracle exploits the survivor-prefix property: log order equals
// apply order (both happen under the append mutex), every logical op is
// exactly one data record + commit marker, and a torn tail can only cut a
// suffix of the last flush -- so the set of ops that survive a crash is
// always a strict prefix of the applied history. The harness records
// every op's logical effect; after the crash it computes the surviving
// prefix length as (ops covered by the last checkpoint) + |CommittedTail|
// and replays that prefix into a shadow oracle keyed by the stable "id"
// column. The recovered engine must then agree three ways -- CM probe ==
// full scan == shadow oracle, exactly -- and keep agreeing while serving
// fresh CRUD traffic (capacity reservation re-established).
//
// Crash points covered per run of the default suites: 12 random
// mid-interleaving crashes (random torn bytes, so group-commit batches
// tear mid-frame), 4 crashes injected between a recluster's phase-1 build
// and its publish (the window where the successor exists but the
// checkpoint does not, so recovery must replay the predecessor checkpoint
// plus the full tail -- including writes that landed during the build),
// a deterministic mid-batch torn tail, and a per-shard ShardRouter
// recovery. The Long variant multiplies seeds; it is skipped unless
// CORRMAP_LONG_TESTS is set (nightly ctest label of the same name).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "exec/access_path.h"
#include "index/clustered_index.h"
#include "obs/serving_metrics.h"
#include "serve/durability.h"
#include "serve/recluster.h"
#include "serve/serving_engine.h"
#include "serve/shard_router.h"
#include "storage/table.h"

namespace corrmap {
namespace {

using serve::Durability;
using serve::DurabilityOptions;
using serve::RecoveryStats;
using serve::Reclusterer;
using serve::SelectResult;
using serve::ServingEngine;
using serve::ServingOptions;

using OracleMap = std::unordered_map<int64_t, std::array<int64_t, 3>>;

/// A sampled query plus the predicate in oracle-evaluable form.
struct QuerySpec {
  Query query;
  size_t col = 1;  // 0 = c, 1 = u, 2 = v
  int64_t lo = 0;
  int64_t hi = 0;
};

uint64_t OracleCount(const OracleMap& oracle, const QuerySpec& s) {
  uint64_t n = 0;
  for (const auto& [id, vals] : oracle) {
    const int64_t x = vals[s.col];
    if (x >= s.lo && x <= s.hi) ++n;
  }
  return n;
}

/// The three-way differential: engine probe == full scan of the engine's
/// current table == shadow oracle, exactly.
void ExpectThreeWayExact(ServingEngine& engine, const OracleMap& oracle,
                         const QuerySpec& s) {
  const SelectResult probe = engine.ExecuteSelect(s.query);
  const ExecResult scan = FullTableScan(engine.table(), s.query);
  ASSERT_EQ(probe.num_matches, scan.NumMatches())
      << "probe!=scan at epoch " << probe.recluster_epoch << " plan "
      << probe.plan;
  ASSERT_EQ(probe.num_matches, OracleCount(oracle, s))
      << "engine diverged from the shadow oracle at epoch "
      << probe.recluster_epoch << " plan " << probe.plan;
}

/// One applied op's logical effect, replayable into an OracleMap. The
/// surviving prefix of these is exactly what recovery must reconstruct.
struct OpEffect {
  enum Kind { kAppend, kDelete, kUpdate };
  Kind kind = kAppend;
  /// kAppend: the batch's (id, {c, u, v}) rows.
  std::vector<std::pair<int64_t, std::array<int64_t, 3>>> added;
  /// kDelete / kUpdate: the victim id (and the new values for kUpdate).
  int64_t id = 0;
  std::array<int64_t, 3> vals = {0, 0, 0};
};

void ApplyEffect(const OpEffect& e, OracleMap* oracle) {
  switch (e.kind) {
    case OpEffect::kAppend:
      for (const auto& [id, vals] : e.added) (*oracle)[id] = vals;
      break;
    case OpEffect::kDelete:
      oracle->erase(e.id);
      break;
    case OpEffect::kUpdate:
      (*oracle)[e.id] = e.vals;
      break;
  }
}

struct RecoveryFuzzHarness {
  obs::ServingMetrics metrics;
  std::unique_ptr<Table> table;
  std::unique_ptr<ClusteredIndex> cidx;
  std::unique_ptr<ClusteredBucketing> cb;
  std::unique_ptr<Durability> durability;
  std::unique_ptr<ServingEngine> engine;
  Rng rng;
  ServingOptions opts;                   // reused verbatim by Recover
  ServingEngine::RecoverSpec spec;       // replay-derived structures
  OracleMap oracle;                      // all applied ops
  OracleMap base_oracle;                 // state at construction
  std::vector<int64_t> live_ids;
  int64_t next_id = 0;
  std::vector<OpEffect> history;         // applied ops, in log order
  size_t last_checkpoint_ops = 0;        // |history| at last checkpoint
  uint64_t seen_checkpoints = 0;

  RecoveryFuzzHarness(uint64_t seed, int base_rows, size_t reserve_extra,
                      size_t group_commit_ops)
      : rng(seed) {
    Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u"),
                   ColumnDef::Int64("v"), ColumnDef::Int64("id")});
    table = std::make_unique<Table>("t", std::move(schema));
    for (int i = 0; i < base_rows; ++i) {
      const int64_t u = rng.UniformInt(0, 499);
      const int64_t v = rng.UniformInt(0, 49);
      const int64_t c = u / 10 + rng.UniformInt(0, 1);
      std::array<Value, 4> row = {Value(c), Value(u), Value(v),
                                  Value(next_id)};
      EXPECT_TRUE(table->AppendRow(row).ok());
      oracle[next_id] = {c, u, v};
      live_ids.push_back(next_id);
      ++next_id;
    }
    EXPECT_TRUE(table->ClusterBy(0).ok());
    auto ci = ClusteredIndex::Build(*table, 0);
    EXPECT_TRUE(ci.ok());
    cidx = std::make_unique<ClusteredIndex>(std::move(*ci));
    auto built = ClusteredBucketing::Build(*table, 0, 32);
    EXPECT_TRUE(built.ok());
    cb = std::make_unique<ClusteredBucketing>(std::move(*built));

    DurabilityOptions dopts;
    dopts.group_commit_ops = group_commit_ops;
    dopts.metrics = &metrics;
    durability = std::make_unique<Durability>(dopts);

    opts.num_workers = 1;
    opts.reserve_rows = table->NumRows() + reserve_extra;
    opts.calibration_period = 16;
    opts.durability = durability.get();
    opts.metrics = &metrics;
    engine = std::make_unique<ServingEngine>(table.get(), cidx.get(), opts);
    // The CM spread of the CRUD fuzz: an unbucketed identity CM over u
    // and a width-4 u-bucketed + positionally c-bucketed CM over v, plus
    // a secondary index over u -- every replay-derived structure Recover
    // must rebuild, mirrored into `spec`.
    CmOptions c0;
    c0.u_cols = {1};
    c0.u_bucketers = {Bucketer::Identity()};
    c0.c_col = 0;
    EXPECT_TRUE(engine->AttachCm(c0).ok());
    CmOptions c1;
    c1.u_cols = {2};
    c1.u_bucketers = {Bucketer::NumericWidth(4)};
    c1.c_col = 0;
    c1.c_buckets = cb.get();
    EXPECT_TRUE(engine->AttachCm(c1).ok());
    EXPECT_TRUE(engine->AttachSecondaryIndex({1}).ok());
    spec.cms.push_back({c0, 0});
    CmOptions c1r = c1;
    c1r.c_buckets = nullptr;  // Recover rebuilds the positional bucketing
    spec.cms.push_back({c1r, 32});
    spec.secondary_indexes = {{1}};

    base_oracle = oracle;
    // The engine's constructor took checkpoint 0 over the base table.
    seen_checkpoints = durability->checkpoints_taken();
    EXPECT_EQ(seen_checkpoints, 1u);
  }

  // --- CRUD ops: mutate engine + full oracle, and record the effect -----

  void AppendBatch(int max_rows) {
    const int n = int(rng.UniformInt(1, max_rows));
    std::vector<std::vector<Key>> rows;
    rows.reserve(size_t(n));
    OpEffect e;
    e.kind = OpEffect::kAppend;
    for (int i = 0; i < n; ++i) {
      const int64_t u = rng.UniformInt(0, 499);
      const int64_t v = rng.UniformInt(0, 49);
      rows.push_back({Key(u / 10), Key(u), Key(v), Key(next_id)});
      e.added.push_back({next_id, {u / 10, u, v}});
      oracle[next_id] = {u / 10, u, v};
      live_ids.push_back(next_id);
      ++next_id;
    }
    ASSERT_TRUE(engine->ApplyAppend(rows).ok());
    history.push_back(std::move(e));
  }

  RowId ResolveId(int64_t id) const {
    const Table& t = engine->table();
    for (RowId r = 0; r < t.NumRows(); ++r) {
      if (!t.IsDeleted(r) && t.GetKey(r, 3) == Key(id)) return r;
    }
    ADD_FAILURE() << "live id " << id << " not found in the heap";
    return 0;
  }

  int64_t PickLiveId() {
    const size_t i = size_t(rng.UniformInt(0, int64_t(live_ids.size()) - 1));
    return live_ids[i];
  }

  void ForgetId(int64_t id) {
    const auto it = std::find(live_ids.begin(), live_ids.end(), id);
    ASSERT_NE(it, live_ids.end());
    *it = live_ids.back();
    live_ids.pop_back();
    oracle.erase(id);
  }

  void DeleteOne() {
    const int64_t id = PickLiveId();
    const RowId rid = ResolveId(id);
    ASSERT_TRUE(engine->ApplyDelete(rid, engine->ReclusterEpoch()).ok());
    OpEffect e;
    e.kind = OpEffect::kDelete;
    e.id = id;
    history.push_back(std::move(e));
    ForgetId(id);
  }

  void UpdateOne() {
    const int64_t id = PickLiveId();
    const RowId rid = ResolveId(id);
    const int64_t u = rng.UniformInt(0, 499);
    const int64_t v = rng.UniformInt(0, 49);
    const std::array<Key, 4> fresh = {Key(u / 10), Key(u), Key(v), Key(id)};
    ASSERT_TRUE(
        engine->ApplyUpdate(rid, fresh, engine->ReclusterEpoch()).ok());
    OpEffect e;
    e.kind = OpEffect::kUpdate;
    e.id = id;
    e.vals = {u / 10, u, v};
    history.push_back(std::move(e));
    oracle[id] = {u / 10, u, v};
  }

  /// Folds any checkpoint the last recluster/compact published into the
  /// survivor accounting: everything in `history` is now durably covered.
  void NoteCheckpoints() {
    const uint64_t taken = durability->checkpoints_taken();
    if (taken != seen_checkpoints) {
      seen_checkpoints = taken;
      last_checkpoint_ops = history.size();
    }
  }

  void Recluster() {
    auto stats = engine->Recluster();
    ASSERT_TRUE(stats.ok());
    NoteCheckpoints();
  }

  void Compact() {
    auto stats = engine->Compact();
    ASSERT_TRUE(stats.ok());
    NoteCheckpoints();
  }

  QuerySpec RandomSpec() {
    switch (rng.UniformInt(0, 3)) {
      case 0: {
        const int64_t u = rng.UniformInt(0, 520);
        return {Query({Predicate::Eq(*table, "u", Value(u))}), 1, u, u};
      }
      case 1: {
        const int64_t lo = rng.UniformInt(0, 480);
        const int64_t hi = lo + rng.UniformInt(0, 60);
        return {Query({Predicate::Between(*table, "u", Value(lo),
                                          Value(hi))}),
                1, lo, hi};
      }
      case 2: {
        const int64_t v = rng.UniformInt(0, 55);
        return {Query({Predicate::Eq(*table, "v", Value(v))}), 2, v, v};
      }
      default: {
        const int64_t lo = rng.UniformInt(0, 45);
        const int64_t hi = lo + rng.UniformInt(0, 10);
        return {Query({Predicate::Between(*table, "v", Value(lo),
                                          Value(hi))}),
                2, lo, hi};
      }
    }
  }

  // --- Crash & recovery --------------------------------------------------

  /// Crashes the durability state (tearing `torn` bytes off the last WAL
  /// flush), recovers a fresh engine from it, and differentially checks
  /// the recovered engine against the oracle replayed to the surviving
  /// op prefix. Returns the recovered engine and writes the surviving
  /// oracle to `oracle_out`; the caller decides whether to adopt them.
  /// Does NOT touch this->engine, so it is safe to call from inside a
  /// recluster hook while a pass is mid-flight on the live engine.
  std::unique_ptr<ServingEngine> CrashAndRecover(size_t torn,
                                                 OracleMap* oracle_out) {
    durability->Crash(torn);
    const size_t tail_ops = durability->CommittedTail().size();
    const size_t survivors = last_checkpoint_ops + tail_ops;
    EXPECT_GE(survivors, last_checkpoint_ops);
    EXPECT_LE(survivors, history.size())
        << "WAL retained more committed ops than were ever applied";

    OracleMap recovered = base_oracle;
    for (size_t i = 0; i < survivors; ++i) {
      ApplyEffect(history[i], &recovered);
    }

    RecoveryStats rstats;
    auto rec = ServingEngine::Recover(0, opts, spec, &rstats);
    EXPECT_TRUE(rec.ok());
    if (!rec.ok()) return nullptr;
    std::unique_ptr<ServingEngine> e = std::move(*rec);
    EXPECT_EQ(rstats.records_scanned, tail_ops);
    EXPECT_EQ(e->table().NumLiveRows(), recovered.size())
        << "recovered live-row count diverged (checkpoint epoch "
        << rstats.checkpoint_epoch << ", " << tail_ops << " tail ops)";
    EXPECT_TRUE(e->CheckInvariants().ok());
    for (int i = 0; i < 8; ++i) {
      ExpectThreeWayExact(*e, recovered, RandomSpec());
    }
    *oracle_out = std::move(recovered);
    return e;
  }

  /// Adopts a recovered engine as the live one and resets the survivor
  /// accounting to the recovered state. The WAL's retained tail predates
  /// the adoption, so the accounting is only valid again after the next
  /// checkpoint -- callers recluster before crashing a second time.
  void Adopt(std::unique_ptr<ServingEngine> recovered, OracleMap oracle2) {
    engine = std::move(recovered);
    oracle = std::move(oracle2);
    base_oracle.clear();
    history.clear();
    last_checkpoint_ops = 0;
    live_ids.clear();
    for (const auto& [id, vals] : oracle) live_ids.push_back(id);
    // Re-sync the base: force a checkpoint so the WAL tail and the
    // (now-empty) history agree again.
    Recluster();
    if (durability->checkpoints_taken() == seen_checkpoints) {
      // Nothing to recluster (empty tail, no tombstones): checkpoint the
      // current state explicitly through a compacting pass.
      Compact();
    }
    base_oracle = oracle;
  }
};

void RunOps(RecoveryFuzzHarness& h, int ops) {
  for (int op = 0; op < ops; ++op) {
    switch (h.rng.UniformInt(0, 11)) {
      case 0:
      case 1:
        h.AppendBatch(150);
        break;
      case 2:
      case 3:
        h.DeleteOne();
        break;
      case 4:
      case 5:
        h.UpdateOne();
        break;
      case 6:
        h.Recluster();
        break;
      case 7:
        h.Compact();
        break;
      case 8:
        ASSERT_TRUE(h.engine->CheckInvariants().ok());
        break;
      default:
        ExpectThreeWayExact(*h.engine, h.oracle, h.RandomSpec());
        break;
    }
    ASSERT_EQ(h.engine->table().NumLiveRows(), h.oracle.size());
  }
}

/// One full kill-and-recover cycle: CRUD traffic, a crash at a seeded
/// point with seeded torn bytes, differential recovery, adoption, then
/// more CRUD traffic against the recovered engine (proving the capacity
/// reservation and background triggers came back with it).
void RunKillRecover(uint64_t seed, int ops_before, int ops_after,
                    int base_rows, size_t group_commit_ops) {
  RecoveryFuzzHarness h(seed, base_rows,
                        /*reserve_extra=*/size_t(ops_before + ops_after) *
                                250 + 4096,
                        group_commit_ops);
  RunOps(h, ops_before);

  // Crash: half the seeds tear into the last flush mid-frame (a group
  // commit batch is several frames, so a couple hundred bytes lands
  // inside one), the rest cut cleanly at the flush boundary.
  const size_t torn =
      (seed % 2 == 0) ? 0 : size_t(h.rng.UniformInt(1, 400));
  OracleMap recovered_oracle;
  std::unique_ptr<ServingEngine> rec = h.CrashAndRecover(torn,
                                                         &recovered_oracle);
  ASSERT_NE(rec, nullptr);
  h.Adopt(std::move(rec), std::move(recovered_oracle));

  RunOps(h, ops_after);
  h.Compact();
  ASSERT_TRUE(h.engine->CheckInvariants().ok());
  for (int i = 0; i < 8; ++i) {
    ExpectThreeWayExact(*h.engine, h.oracle, h.RandomSpec());
  }
}

TEST(RecoveryFuzzTest, KillAndRecoverMatchesShadowOracle) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    RunKillRecover(seed * 0x51ed, /*ops_before=*/45, /*ops_after=*/20,
                   /*base_rows=*/1500, /*group_commit_ops=*/4);
  }
}

TEST(RecoveryFuzzTest, CrashBetweenBuildAndPublishReplaysOldCheckpoint) {
  // The recluster window the checkpoint protocol must get right: after
  // phase 1 built the successor but before the publish that would
  // checkpoint it. Writes that land inside the window are logged against
  // the OLD id space; a crash there has no successor checkpoint, so
  // recovery replays the predecessor checkpoint plus the full tail --
  // including the in-window writes.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    RecoveryFuzzHarness h(seed * 0x9137, /*base_rows=*/1200,
                          /*reserve_extra=*/1 << 16,
                          /*group_commit_ops=*/4);
    RunOps(h, 25);
    h.AppendBatch(100);  // guarantee a tail so the pass actually runs

    bool hook_ran = false;
    Reclusterer pass(h.engine.get());
    pass.set_after_build_hook([&] {
      hook_ran = true;
      // Land writes inside the build->publish window, then crash there.
      h.AppendBatch(60);
      h.DeleteOne();
      h.UpdateOne();
      OracleMap recovered_oracle;
      std::unique_ptr<ServingEngine> rec = h.CrashAndRecover(
          size_t(h.rng.UniformInt(0, 200)), &recovered_oracle);
      EXPECT_NE(rec, nullptr);
      // The recovered engine was differentially verified inside
      // CrashAndRecover; discard it -- the live engine's pass is still
      // mid-flight and finishes below.
    });
    auto stats = pass.Run();
    ASSERT_TRUE(stats.ok());
    ASSERT_TRUE(hook_ran);
    ASSERT_TRUE(stats->performed());
    h.NoteCheckpoints();

    // The surviving engine published and checkpointed over the crashed
    // WAL (the checkpoint supersedes whatever the tear lost), so durable
    // state is consistent again: keep operating, then crash and recover
    // for real.
    RunOps(h, 15);
    OracleMap recovered_oracle;
    std::unique_ptr<ServingEngine> rec =
        h.CrashAndRecover(0, &recovered_oracle);
    ASSERT_NE(rec, nullptr);
    h.Adopt(std::move(rec), std::move(recovered_oracle));
    for (int i = 0; i < 6; ++i) {
      ExpectThreeWayExact(*h.engine, h.oracle, h.RandomSpec());
    }
  }
}

TEST(RecoveryFuzzTest, TornGroupCommitBatchDropsASuffixOfOps) {
  // Deterministic mid-batch tear: 8 single-row appends with
  // group_commit_ops=4 give two 4-op flush batches; tearing into the
  // last flush must drop a suffix of its ops (commit markers behind the
  // tear die with their data records) while the first batch survives
  // whole.
  RecoveryFuzzHarness h(0xBEEF, /*base_rows=*/600, /*reserve_extra=*/4096,
                        /*group_commit_ops=*/4);
  const uint64_t flushes_at_start = h.durability->wal_flushes();
  for (int i = 0; i < 8; ++i) h.AppendBatch(1);
  ASSERT_EQ(h.durability->wal_flushes(), flushes_at_start + 2);

  OracleMap recovered_oracle;
  std::unique_ptr<ServingEngine> rec =
      h.CrashAndRecover(/*torn=*/80, &recovered_oracle);
  ASSERT_NE(rec, nullptr);
  // 80 bytes tears at least the last op's frames; the first flushed
  // batch of 4 is beyond the tear's reach.
  const size_t survivors = recovered_oracle.size() - h.base_oracle.size();
  EXPECT_GE(survivors, 4u);
  EXPECT_LT(survivors, 8u);
}

TEST(RecoveryFuzzTest, RecoveryIsObservable) {
  RecoveryFuzzHarness h(0xFACE, /*base_rows=*/800, /*reserve_extra=*/1 << 14,
                        /*group_commit_ops=*/4);
  RunOps(h, 20);
  OracleMap recovered_oracle;
  std::unique_ptr<ServingEngine> rec =
      h.CrashAndRecover(0, &recovered_oracle);
  ASSERT_NE(rec, nullptr);
  // The shared bundle saw the WAL's flushes and records, at least the
  // constructor checkpoint, per-batch group-commit sizes, and the
  // recovery pass's wall time.
  EXPECT_GT(h.metrics.wal_flushes->Value(), 0u);
  EXPECT_GT(h.metrics.wal_records->Value(), 0u);
  EXPECT_GT(h.metrics.wal_bytes->Value(), 0u);
  EXPECT_GE(h.metrics.checkpoints->Value(), 1u);
  EXPECT_GT(h.metrics.wal_group_commit_ops->Count(), 0u);
  EXPECT_EQ(h.metrics.recovery_ms->Count(), 1u);
}

TEST(RecoveryFuzzTest, ShardRouterRecoversEveryShard) {
  // Router-mode recovery: three shards, each with its own Durability in
  // synchronous-commit mode (group_commit_ops=1, so the crash itself is
  // lossless and the full oracle applies; lossy recovery is pinned down
  // by the single-engine suites above). After mixed CRUD + per-shard
  // recluster traffic, every shard's manager crashes and
  // ShardRouter::Recover rebuilds the partition from the persisted split
  // keys + per-shard checkpoints/logs.
  Rng rng(0xC0FFEE);
  Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u"),
                 ColumnDef::Int64("v"), ColumnDef::Int64("id")});
  Table table("t", std::move(schema));
  OracleMap oracle;
  std::vector<int64_t> live_ids;
  int64_t next_id = 0;
  for (int i = 0; i < 2400; ++i) {
    const int64_t u = rng.UniformInt(0, 499);
    const int64_t v = rng.UniformInt(0, 49);
    const int64_t c = u / 10 + rng.UniformInt(0, 1);
    std::array<Value, 4> row = {Value(c), Value(u), Value(v), Value(next_id)};
    ASSERT_TRUE(table.AppendRow(row).ok());
    oracle[next_id] = {c, u, v};
    live_ids.push_back(next_id);
    ++next_id;
  }
  ASSERT_TRUE(table.ClusterBy(0).ok());

  std::vector<std::unique_ptr<Durability>> managers;
  serve::RouterOptions opts;
  opts.num_shards = 3;
  for (size_t s = 0; s < opts.num_shards; ++s) {
    DurabilityOptions dopts;
    dopts.group_commit_ops = 1;
    managers.push_back(std::make_unique<Durability>(dopts));
    opts.shard_durability.push_back(managers.back().get());
  }
  opts.engine.num_workers = 1;
  opts.engine.reserve_rows = table.NumRows() + (1 << 15);
  opts.engine.calibration_period = 16;
  auto created = serve::ShardRouter::Create(table, 0, opts);
  ASSERT_TRUE(created.ok());
  std::unique_ptr<serve::ShardRouter> router = std::move(*created);

  CmOptions c0;
  c0.u_cols = {1};
  c0.u_bucketers = {Bucketer::Identity()};
  c0.c_col = 0;
  ASSERT_TRUE(router->AttachCm(c0).ok());
  auto cb = ClusteredBucketing::Build(table, 0, 32);
  ASSERT_TRUE(cb.ok());
  CmOptions c1;
  c1.u_cols = {2};
  c1.u_bucketers = {Bucketer::NumericWidth(4)};
  c1.c_col = 0;
  c1.c_buckets = &*cb;
  ASSERT_TRUE(router->AttachCm(c1).ok());

  const auto resolve = [&](int64_t id) -> std::pair<size_t, RowId> {
    for (size_t s = 0; s < router->num_shards(); ++s) {
      const Table& t = router->shard(s).table();
      for (RowId r = 0; r < t.NumRows(); ++r) {
        if (!t.IsDeleted(r) && t.GetKey(r, 3) == Key(id)) return {s, r};
      }
    }
    ADD_FAILURE() << "live id " << id << " not found in any shard";
    return {0, 0};
  };
  const auto check = [&](serve::ShardRouter& r, const QuerySpec& s) {
    const serve::RoutedSelectResult res = r.ExecuteSelect(s.query);
    uint64_t scan = 0;
    for (size_t i = 0; i < r.num_shards(); ++i) {
      scan += FullTableScan(r.shard(i).table(), s.query).NumMatches();
    }
    ASSERT_EQ(res.merged.num_matches, scan);
    ASSERT_EQ(res.merged.num_matches, OracleCount(oracle, s));
  };
  const auto random_spec = [&]() -> QuerySpec {
    if (rng.UniformInt(0, 1) == 0) {
      const int64_t lo = rng.UniformInt(0, 480);
      const int64_t hi = lo + rng.UniformInt(0, 60);
      return {Query({Predicate::Between(table, "u", Value(lo), Value(hi))}),
              1, lo, hi};
    }
    const int64_t lo = rng.UniformInt(0, 45);
    const int64_t hi = lo + rng.UniformInt(0, 10);
    return {Query({Predicate::Between(table, "v", Value(lo), Value(hi))}),
            2, lo, hi};
  };

  for (int op = 0; op < 45; ++op) {
    switch (rng.UniformInt(0, 7)) {
      case 0:
      case 1: {  // append a batch through the router
        const int n = int(rng.UniformInt(1, 120));
        std::vector<std::vector<Key>> rows;
        for (int i = 0; i < n; ++i) {
          const int64_t u = rng.UniformInt(0, 499);
          const int64_t v = rng.UniformInt(0, 49);
          rows.push_back({Key(u / 10), Key(u), Key(v), Key(next_id)});
          oracle[next_id] = {u / 10, u, v};
          live_ids.push_back(next_id);
          ++next_id;
        }
        ASSERT_TRUE(router->ApplyAppend(rows).ok());
        break;
      }
      case 2: {  // delete
        const size_t i =
            size_t(rng.UniformInt(0, int64_t(live_ids.size()) - 1));
        const int64_t id = live_ids[i];
        const auto [shard, rid] = resolve(id);
        ASSERT_TRUE(
            router->ApplyDelete(shard, rid, router->ShardEpoch(shard)).ok());
        live_ids[i] = live_ids.back();
        live_ids.pop_back();
        oracle.erase(id);
        break;
      }
      case 3: {  // update (may move shards)
        const size_t i =
            size_t(rng.UniformInt(0, int64_t(live_ids.size()) - 1));
        const int64_t id = live_ids[i];
        const auto [shard, rid] = resolve(id);
        const int64_t u = rng.UniformInt(0, 499);
        const int64_t v = rng.UniformInt(0, 49);
        const std::array<Key, 4> fresh = {Key(u / 10), Key(u), Key(v),
                                          Key(id)};
        ASSERT_TRUE(router
                        ->ApplyUpdate(shard, rid, fresh,
                                      router->ShardEpoch(shard))
                        .ok());
        oracle[id] = {u / 10, u, v};
        break;
      }
      case 4: {  // recluster one shard (checkpoints that shard)
        const size_t s =
            size_t(rng.UniformInt(0, int64_t(router->num_shards()) - 1));
        ASSERT_TRUE(router->Recluster(s).ok());
        break;
      }
      default:
        check(*router, random_spec());
        break;
    }
  }

  // Crash every shard and recover the partition from split keys + the
  // per-shard durable state. Synchronous commit means nothing is lost.
  const std::vector<Key> splits = router->split_keys();
  const size_t n_shards = router->num_shards();
  router.reset();  // the pre-crash process is gone
  for (auto& m : managers) m->Crash();

  ServingEngine::RecoverSpec spec;
  spec.cms.push_back({c0, 0});
  CmOptions c1r = c1;
  c1r.c_buckets = nullptr;
  spec.cms.push_back({c1r, 32});
  std::vector<RecoveryStats> stats;
  auto recovered =
      serve::ShardRouter::Recover(0, splits, opts, spec, &stats);
  ASSERT_TRUE(recovered.ok());
  router = std::move(*recovered);
  ASSERT_EQ(router->num_shards(), n_shards);
  ASSERT_EQ(stats.size(), n_shards);

  size_t live = 0;
  for (size_t s = 0; s < router->num_shards(); ++s) {
    live += router->shard(s).table().NumLiveRows();
  }
  ASSERT_EQ(live, oracle.size());
  ASSERT_TRUE(router->CheckInvariants().ok());
  for (int i = 0; i < 10; ++i) check(*router, random_spec());

  // The recovered partition keeps serving durable CRUD traffic.
  for (int i = 0; i < 40; ++i) {
    const int64_t u = rng.UniformInt(0, 499);
    const int64_t v = rng.UniformInt(0, 49);
    std::vector<std::vector<Key>> rows = {
        {Key(u / 10), Key(u), Key(v), Key(next_id)}};
    ASSERT_TRUE(router->ApplyAppend(rows).ok());
    oracle[next_id] = {u / 10, u, v};
    live_ids.push_back(next_id);
    ++next_id;
  }
  ASSERT_TRUE(router->ReclusterAll().ok());
  ASSERT_TRUE(router->CheckInvariants().ok());
  for (int i = 0; i < 8; ++i) check(*router, random_spec());
}

TEST(RecoveryFuzzTest, LongKillRecoverInterleavings) {
  if (std::getenv("CORRMAP_LONG_TESTS") == nullptr) {
    GTEST_SKIP() << "set CORRMAP_LONG_TESTS=1 (nightly ctest label "
                    "CORRMAP_LONG_TESTS) to run the long recovery fuzz";
  }
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    RunKillRecover(seed * 0x6b43, /*ops_before=*/160, /*ops_after=*/60,
                   /*base_rows=*/4000,
                   /*group_commit_ops=*/1 + seed % 8);
  }
}

}  // namespace
}  // namespace corrmap
