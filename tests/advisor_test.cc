// Tests for the CM Advisor: selectivity pruning, candidate bucketing
// enumeration, design estimation ordering, recommendation under a
// performance target, and materialization of recommended CMs.
#include <gtest/gtest.h>

#include <array>

#include "common/rng.h"
#include "core/advisor.h"
#include "exec/access_path.h"

namespace corrmap {
namespace {

/// SDSS-flavoured miniature: clustered objid; fieldid strongly correlated;
/// a many-valued magnitude softly correlated; a few-valued type; an
/// independent noise column.
struct MiniSdss {
  std::unique_ptr<Table> table;
  std::unique_ptr<ClusteredIndex> cidx;
  std::unique_ptr<ClusteredBucketing> cbuckets;

  explicit MiniSdss(size_t rows = 300000) {
    Schema schema({ColumnDef::Int64("objid"), ColumnDef::Int64("fieldid"),
                   ColumnDef::Double("mag"), ColumnDef::Int64("type"),
                   ColumnDef::Int64("noise")});
    table = std::make_unique<Table>("photo", std::move(schema));
    Rng rng(71);
    for (size_t i = 0; i < rows; ++i) {
      const int64_t objid = int64_t(i);
      const int64_t fieldid = objid / 200;
      const double mag =
          14.0 + 12.0 * double(objid) / double(rows) + rng.Gaussian(0, 0.05);
      std::array<Value, 5> row = {Value(objid), Value(fieldid), Value(mag),
                                  Value(rng.UniformInt(0, 4)),
                                  Value(rng.UniformInt(0, 999999))};
      EXPECT_TRUE(table->AppendRow(row).ok());
    }
    EXPECT_TRUE(table->ClusterBy(0).ok());
    auto ci = ClusteredIndex::Build(*table, 0);
    EXPECT_TRUE(ci.ok());
    cidx = std::make_unique<ClusteredIndex>(std::move(*ci));
    auto cb = ClusteredBucketing::Build(
        *table, 0, uint64_t(10 * table->TuplesPerPage()));
    EXPECT_TRUE(cb.ok());
    cbuckets = std::make_unique<ClusteredBucketing>(std::move(*cb));
  }
};

TEST(AdvisorTest, CandidateBucketingsFollowCardinality) {
  MiniSdss m;
  Query q({Predicate::In(*m.table, "fieldid", {Value(3), Value(5)}),
           Predicate::Eq(*m.table, "type", Value(2)),
           Predicate::Between(*m.table, "mag", Value(15.0), Value(15.5))});
  CmAdvisor advisor(m.table.get(), m.cidx.get(), m.cbuckets.get());
  auto cands = advisor.CandidateBucketings(q);
  ASSERT_EQ(cands.size(), 3u);
  // Few-valued type must allow identity; many-valued mag must not.
  bool saw_type = false, saw_mag = false;
  for (const auto& c : cands) {
    if (c.column_name == "type") {
      EXPECT_TRUE(c.include_identity);
      saw_type = true;
    }
    if (c.column_name == "mag") {
      EXPECT_FALSE(c.include_identity);
      EXPECT_GE(c.max_level, c.min_level);
      saw_mag = true;
    }
  }
  EXPECT_TRUE(saw_type);
  EXPECT_TRUE(saw_mag);
}

TEST(AdvisorTest, NonSelectivePredicatesPruned) {
  MiniSdss m;
  // type IN (0..3) covers ~80% of rows: pruned by the 0.5 threshold.
  Query q({Predicate::In(*m.table, "type",
                         {Value(0), Value(1), Value(2), Value(3)}),
           Predicate::Eq(*m.table, "fieldid", Value(7))});
  CmAdvisor advisor(m.table.get(), m.cidx.get(), m.cbuckets.get());
  auto cands = advisor.CandidateBucketings(q);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].column_name, "fieldid");
}

TEST(AdvisorTest, DesignsSortedByEstimatedCost) {
  MiniSdss m;
  Query q({Predicate::Eq(*m.table, "fieldid", Value(11)),
           Predicate::Between(*m.table, "mag", Value(16.0), Value(16.2))});
  CmAdvisor advisor(m.table.get(), m.cidx.get(), m.cbuckets.get());
  auto designs = advisor.EnumerateDesigns(q);
  ASSERT_GT(designs.size(), 3u);
  for (size_t i = 1; i < designs.size(); ++i) {
    EXPECT_LE(designs[i - 1].est_cost_ms, designs[i].est_cost_ms);
  }
  // Every design must carry consistent estimates.
  for (const auto& d : designs) {
    EXPECT_GE(d.est_c_per_u, 1.0 - 1e-9);
    EXPECT_GT(d.est_size_bytes, 0.0);
    EXPECT_GE(d.est_n_lookups, 1.0);
  }
}

TEST(AdvisorTest, WiderBucketsShrinkEstimatedSize) {
  MiniSdss m;
  Query q({Predicate::Between(*m.table, "mag", Value(16.0), Value(16.3))});
  CmAdvisor advisor(m.table.get(), m.cidx.get(), m.cbuckets.get());
  auto designs = advisor.EnumerateDesigns(q);
  // Among single-attribute mag designs, a coarser level must not estimate
  // a larger CM.
  double prev_size = 1e300;
  int prev_level = -100;
  std::vector<std::pair<int, double>> by_level;
  for (const auto& d : designs) {
    if (d.u_cols.size() != 1) continue;
    if (d.u_bucketers[0].is_identity()) continue;
    // Parse level back from the label "2^k".
    const std::string s = d.u_bucketers[0].ToString();
    by_level.emplace_back(std::stoi(s.substr(2)), d.est_size_bytes);
  }
  std::sort(by_level.begin(), by_level.end());
  for (const auto& [level, size] : by_level) {
    if (prev_level != -100) {
      EXPECT_LE(size, prev_size * 1.05);
    }
    prev_level = level;
    prev_size = size;
  }
}

TEST(AdvisorTest, RecommendPicksSmallestWithinTarget) {
  MiniSdss m;
  Query q({Predicate::Eq(*m.table, "fieldid", Value(42))});
  AdvisorConfig cfg;
  cfg.perf_target = 0.10;
  CmAdvisor advisor(m.table.get(), m.cidx.get(), m.cbuckets.get(), cfg);
  auto rec = advisor.Recommend(q);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  auto designs = advisor.EnumerateDesigns(q);
  const double limit = designs.front().est_cost_ms * 1.10;
  // Nothing within the target can be smaller than the recommendation.
  for (const auto& d : designs) {
    if (d.est_cost_ms <= limit) {
      EXPECT_GE(d.est_size_bytes, rec->est_size_bytes - 1e-6);
    }
  }
}

TEST(AdvisorTest, LooserTargetNeverIncreasesSize) {
  MiniSdss m;
  Query q({Predicate::Between(*m.table, "mag", Value(17.0), Value(17.1))});
  AdvisorConfig tight;
  tight.perf_target = 0.01;
  AdvisorConfig loose;
  loose.perf_target = 0.50;
  CmAdvisor a_tight(m.table.get(), m.cidx.get(), m.cbuckets.get(), tight);
  CmAdvisor a_loose(m.table.get(), m.cidx.get(), m.cbuckets.get(), loose);
  auto r_tight = a_tight.Recommend(q);
  auto r_loose = a_loose.Recommend(q);
  ASSERT_TRUE(r_tight.ok());
  ASSERT_TRUE(r_loose.ok());
  EXPECT_LE(r_loose->est_size_bytes, r_tight->est_size_bytes + 1e-6);
}

TEST(AdvisorTest, RecommendationMaterializesAndAnswersCorrectly) {
  MiniSdss m;
  Query q({Predicate::Between(*m.table, "mag", Value(18.0), Value(18.1))});
  CmAdvisor advisor(m.table.get(), m.cidx.get(), m.cbuckets.get());
  auto rec = advisor.Recommend(q);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  auto cm = advisor.BuildCm(*rec);
  ASSERT_TRUE(cm.ok()) << cm.status().ToString();
  auto scan = FullTableScan(*m.table, q);
  auto cms = CmScan(*m.table, *cm, *m.cidx, q);
  EXPECT_EQ(cms.rows, scan.rows);
  EXPECT_LT(cms.ms, scan.ms);
}

TEST(AdvisorTest, NoUsefulAttributeMeansNotFound) {
  // Independent noise column as the only predicate over a near-unique
  // domain: huge c_per_u, CM cannot beat a scan.
  MiniSdss m;
  Query q({Predicate::Between(*m.table, "noise", Value(0), Value(499999))});
  CmAdvisor advisor(m.table.get(), m.cidx.get(), m.cbuckets.get());
  auto rec = advisor.Recommend(q);
  EXPECT_FALSE(rec.ok());
}

TEST(AdvisorTest, CompositeDesignConsidered) {
  MiniSdss m;
  Query q({Predicate::Eq(*m.table, "fieldid", Value(13)),
           Predicate::Eq(*m.table, "type", Value(1))});
  CmAdvisor advisor(m.table.get(), m.cidx.get(), m.cbuckets.get());
  auto designs = advisor.EnumerateDesigns(q);
  bool saw_composite = false;
  for (const auto& d : designs) {
    if (d.u_cols.size() == 2) saw_composite = true;
  }
  EXPECT_TRUE(saw_composite);
}

TEST(AdvisorTest, BaselineCostIsFiniteAndPositive) {
  MiniSdss m;
  Query q({Predicate::Eq(*m.table, "fieldid", Value(3))});
  CmAdvisor advisor(m.table.get(), m.cidx.get(), m.cbuckets.get());
  const double baseline = advisor.BTreeBaselineCostMs(q);
  EXPECT_GT(baseline, 0.0);
  EXPECT_LT(baseline, 1e9);
}

}  // namespace
}  // namespace corrmap
