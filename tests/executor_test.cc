// Tests for the cost-based executor: plan choice follows the cost model,
// chosen plans return exact answers, and CMs win when correlations are
// strong while scans win when they are not.
#include <gtest/gtest.h>

#include <array>

#include "common/rng.h"
#include "exec/executor.h"

namespace corrmap {
namespace {

struct World {
  std::unique_ptr<Table> table;
  std::unique_ptr<ClusteredIndex> cidx;
  std::unique_ptr<SecondaryIndex> sidx;
  std::unique_ptr<CorrelationMap> cm;

  explicit World(bool correlated, size_t rows = 40000) {
    Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u"),
                   ColumnDef::Int64("w")});
    table = std::make_unique<Table>("t", std::move(schema));
    Rng rng(91);
    for (size_t i = 0; i < rows; ++i) {
      const int64_t u = rng.UniformInt(0, 1999);
      const int64_t c =
          correlated ? u / 4 + rng.UniformInt(0, 1) : rng.UniformInt(0, 499);
      std::array<Value, 3> row = {Value(c), Value(u),
                                  Value(rng.UniformInt(0, 99))};
      EXPECT_TRUE(table->AppendRow(row).ok());
    }
    EXPECT_TRUE(table->ClusterBy(0).ok());
    auto ci = ClusteredIndex::Build(*table, 0);
    EXPECT_TRUE(ci.ok());
    cidx = std::make_unique<ClusteredIndex>(std::move(*ci));
    sidx = std::make_unique<SecondaryIndex>(table.get(),
                                            std::vector<size_t>{1});
    EXPECT_TRUE(sidx->BuildFromTable().ok());
    CmOptions opts;
    opts.u_cols = {1};
    opts.u_bucketers = {Bucketer::Identity()};
    opts.c_col = 0;
    auto m = CorrelationMap::Create(table.get(), opts);
    EXPECT_TRUE(m.ok());
    EXPECT_TRUE(m->BuildFromTable().ok());
    cm = std::make_unique<CorrelationMap>(std::move(*m));
  }
};

TEST(ExecutorTest, ChoosesCmForSelectiveCorrelatedLookup) {
  World w(/*correlated=*/true, /*rows=*/200000);
  Executor ex(w.table.get(), w.cidx.get());
  ex.AttachCm(w.cm.get());
  Query q({Predicate::Eq(*w.table, "u", Value(777))});
  auto r = ex.Execute(q);
  EXPECT_EQ(r.result.path, "cm_scan");
  auto scan = FullTableScan(*w.table, q);
  EXPECT_EQ(r.result.rows, scan.rows);
  EXPECT_LT(r.result.ms, scan.ms);
}

TEST(ExecutorTest, ChoosesScanWhenPredicateUnselective) {
  World w(/*correlated=*/true);
  Executor ex(w.table.get(), w.cidx.get());
  ex.AttachSecondaryIndex(w.sidx.get());
  ex.AttachCm(w.cm.get());
  Query q({Predicate::Between(*w.table, "u", Value(0), Value(1900))});
  auto r = ex.Execute(q);
  EXPECT_EQ(r.result.path, "seq_scan");
}

TEST(ExecutorTest, ChoosesClusteredIndexForClusteredPredicate) {
  World w(/*correlated=*/true);
  Executor ex(w.table.get(), w.cidx.get());
  Query q({Predicate::Eq(*w.table, "c", Value(100))});
  auto r = ex.Execute(q);
  EXPECT_EQ(r.result.path, "clustered_index_scan");
  auto scan = FullTableScan(*w.table, q);
  EXPECT_EQ(r.result.rows, scan.rows);
}

TEST(ExecutorTest, UncorrelatedLookupFallsBackSensibly) {
  World w(/*correlated=*/false);
  Executor ex(w.table.get(), w.cidx.get());
  ex.AttachCm(w.cm.get());
  // Uncorrelated: the CM maps one u to ~many clustered values; the
  // estimate should push the executor toward a scan for wide predicates.
  Query q({Predicate::Between(*w.table, "u", Value(0), Value(1000))});
  auto r = ex.Execute(q);
  EXPECT_EQ(r.result.path, "seq_scan");
  auto scan = FullTableScan(*w.table, q);
  EXPECT_EQ(r.result.rows, scan.rows);
}

TEST(ExecutorTest, CandidateListCoversAttachedStructures) {
  World w(/*correlated=*/true);
  Executor ex(w.table.get(), w.cidx.get());
  ex.AttachSecondaryIndex(w.sidx.get());
  ex.AttachCm(w.cm.get());
  Query q({Predicate::Eq(*w.table, "u", Value(10))});
  auto r = ex.Execute(q);
  ASSERT_EQ(r.candidates.size(), 3u);  // scan, index, cm (no clustered pred)
  size_t chosen = 0;
  for (const auto& c : r.candidates) chosen += c.chosen;
  EXPECT_EQ(chosen, 1u);
}

TEST(ExecutorTest, EstimatesTrackActualWithinFactor) {
  // The §7.2 claim that the model predicts runtime: chosen-plan estimate
  // within ~3x of simulated actual for selective correlated lookups.
  World w(/*correlated=*/true);
  Executor ex(w.table.get(), w.cidx.get());
  ex.AttachCm(w.cm.get());
  Query q({Predicate::Eq(*w.table, "u", Value(555))});
  auto r = ex.Execute(q);
  double est = 0;
  for (const auto& c : r.candidates) {
    if (c.chosen) est = c.estimated_ms;
  }
  ASSERT_GT(est, 0.0);
  EXPECT_LT(r.result.ms, est * 3 + 1);
  EXPECT_GT(r.result.ms * 3 + 1, est);
}

TEST(ExecutorTest, OneLookupPerCmPerQuery) {
  // Costing and execution must share a single cm_lookup per (CM, Query)
  // through the per-query cache (the ROADMAP's shared-lookup item).
  World w(/*correlated=*/true, /*rows=*/200000);
  Executor ex(w.table.get(), w.cidx.get());
  ex.AttachCm(w.cm.get());

  Query point({Predicate::Eq(*w.table, "u", Value(777))});
  uint64_t before = w.cm->LookupsComputed();
  auto r = ex.Execute(point);
  EXPECT_EQ(r.result.path, "cm_scan");  // costed AND executed, one lookup
  EXPECT_EQ(w.cm->LookupsComputed(), before + 1);

  Query range({Predicate::Between(*w.table, "u", Value(100), Value(120))});
  before = w.cm->LookupsComputed();
  (void)ex.Execute(range);
  EXPECT_EQ(w.cm->LookupsComputed(), before + 1);
}

TEST(ExecutorTest, InapplicableCmIsSkipped) {
  World w(/*correlated=*/true);
  Executor ex(w.table.get(), w.cidx.get());
  ex.AttachCm(w.cm.get());
  Query q({Predicate::Eq(*w.table, "w", Value(5))});  // CM attr not predicated
  auto r = ex.Execute(q);
  for (const auto& c : r.candidates) {
    EXPECT_EQ(c.description.find("cm_scan"), std::string::npos);
  }
  auto scan = FullTableScan(*w.table, q);
  EXPECT_EQ(r.result.rows, scan.rows);
}

}  // namespace
}  // namespace corrmap
