// Unit and property tests for bucketing: the three bucketer kinds, the
// clustered-attribute positional bucketing algorithm (paper §6.1.1), and
// the Advisor's candidate-width enumeration rule (§6.1.2 / Table 4).
#include <gtest/gtest.h>

#include <array>

#include "common/rng.h"
#include "core/bucketing.h"
#include "storage/table.h"

namespace corrmap {
namespace {

TEST(BucketerTest, IdentityOnInts) {
  Bucketer b = Bucketer::Identity();
  EXPECT_EQ(b.BucketOf(Key(int64_t{42})), 42);
  EXPECT_EQ(b.ToString(), "none");
  auto [lo, hi] = b.BucketsCovering(10, 20);
  EXPECT_EQ(lo, 10);
  EXPECT_EQ(hi, 20);
}

TEST(BucketerTest, NumericWidthTruncation) {
  // The paper's §5.4 temperature example: 1-degree buckets.
  Bucketer b = Bucketer::NumericWidth(1.0);
  EXPECT_EQ(b.BucketOf(Key(12.3)), 12);
  EXPECT_EQ(b.BucketOf(Key(12.7)), 12);
  EXPECT_EQ(b.BucketOf(Key(14.4)), 14);
  EXPECT_EQ(b.BucketOf(Key(-0.5)), -1);
  BucketRange r = b.RangeOf(12);
  EXPECT_DOUBLE_EQ(r.lo, 12.0);
  EXPECT_DOUBLE_EQ(r.hi, 13.0);
}

TEST(BucketerTest, NumericWidthCovering) {
  Bucketer b = Bucketer::NumericWidth(0.5, /*origin=*/10.0);
  auto [lo, hi] = b.BucketsCovering(10.0, 11.0);
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 2);
}

TEST(BucketerTest, ValueOrdinalGroupsDistinctValues) {
  std::vector<double> vals = {1, 2, 3, 5, 8, 13, 21, 34};
  Bucketer b = Bucketer::ValueOrdinalFromValues(vals, /*level=*/1);  // 2/bucket
  EXPECT_EQ(b.BucketOf(Key(1.0)), 0);
  EXPECT_EQ(b.BucketOf(Key(2.0)), 0);
  EXPECT_EQ(b.BucketOf(Key(3.0)), 1);
  EXPECT_EQ(b.BucketOf(Key(5.0)), 1);
  EXPECT_EQ(b.BucketOf(Key(34.0)), 3);
  // Unseen values land in the bucket of their predecessor boundary.
  EXPECT_EQ(b.BucketOf(Key(4.0)), 1);
  EXPECT_EQ(b.BucketOf(Key(0.5)), 0);  // below first boundary
  EXPECT_EQ(b.ToString(), "2^1");
}

TEST(BucketerTest, ValueOrdinalMonotone) {
  Rng rng(7);
  std::vector<double> vals;
  for (int i = 0; i < 1000; ++i) vals.push_back(rng.UniformDouble(0, 1e6));
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  Bucketer b = Bucketer::ValueOrdinalFromValues(vals, 4);
  for (size_t i = 1; i < vals.size(); ++i) {
    EXPECT_LE(b.BucketOf(Key(vals[i - 1])), b.BucketOf(Key(vals[i])));
  }
}

TEST(BucketerTest, ValueOrdinalRangeOfRoundTrips) {
  std::vector<double> vals = {10, 20, 30, 40, 50, 60};
  Bucketer b = Bucketer::ValueOrdinalFromValues(vals, 1);
  for (double v : vals) {
    const int64_t bucket = b.BucketOf(Key(v));
    BucketRange r = b.RangeOf(bucket);
    EXPECT_GE(v, r.lo);
    EXPECT_LE(v, r.hi);
  }
}

/// Property: wider value-ordinal levels never increase the bucket count and
/// never split values that a narrower level grouped together.
class BucketerLevelSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(BucketerLevelSweepTest, CoarseningIsMonotone) {
  const int level = GetParam();
  Rng rng(11);
  std::vector<double> vals;
  for (int i = 0; i < 4096; ++i) vals.push_back(double(i) * 1.5);
  Bucketer fine = Bucketer::ValueOrdinalFromValues(vals, level);
  Bucketer coarse = Bucketer::ValueOrdinalFromValues(vals, level + 1);
  for (int trial = 0; trial < 500; ++trial) {
    const double a = vals[size_t(rng.UniformInt(0, 4095))];
    const double b = vals[size_t(rng.UniformInt(0, 4095))];
    if (fine.BucketOf(Key(a)) == fine.BucketOf(Key(b))) {
      EXPECT_EQ(coarse.BucketOf(Key(a)), coarse.BucketOf(Key(b)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, BucketerLevelSweepTest,
                         ::testing::Values(0, 1, 2, 3, 5, 8));

std::unique_ptr<Table> ClusteredInts(size_t rows, int64_t distinct) {
  Schema schema({ColumnDef::Int64("c")});
  auto t = std::make_unique<Table>("t", std::move(schema));
  Rng rng(3);
  for (size_t i = 0; i < rows; ++i) {
    std::array<Value, 1> row = {Value(rng.UniformInt(0, distinct - 1))};
    EXPECT_TRUE(t->AppendRow(row).ok());
  }
  EXPECT_TRUE(t->ClusterBy(0).ok());
  return t;
}

TEST(ClusteredBucketingTest, RequiresClusteredColumn) {
  Schema schema({ColumnDef::Int64("c")});
  Table t("t", std::move(schema));
  EXPECT_FALSE(ClusteredBucketing::Build(t, 0, 100).ok());
}

TEST(ClusteredBucketingTest, BucketsPartitionAllRows) {
  auto t = ClusteredInts(10000, 500);
  auto cb = ClusteredBucketing::Build(*t, 0, 128);
  ASSERT_TRUE(cb.ok());
  uint64_t covered = 0;
  for (size_t b = 0; b < cb->NumBuckets(); ++b) {
    RowRange range = cb->RangeOfBucket(int64_t(b));
    covered += range.size();
    EXPECT_FALSE(range.empty());
  }
  EXPECT_EQ(covered, 10000u);
}

TEST(ClusteredBucketingTest, ValueNeverSpansBuckets) {
  // The §6.1.1 guarantee: all rows with one clustered value share a bucket.
  auto t = ClusteredInts(20000, 300);
  auto cb = ClusteredBucketing::Build(*t, 0, 64);
  ASSERT_TRUE(cb.ok());
  for (RowId r = 1; r < t->NumRows(); ++r) {
    if (t->GetKey(r, 0) == t->GetKey(r - 1, 0)) {
      EXPECT_EQ(cb->BucketOfRow(r), cb->BucketOfRow(r - 1))
          << "value split across buckets at row " << r;
    }
  }
}

TEST(ClusteredBucketingTest, BucketOfRowMatchesRanges) {
  auto t = ClusteredInts(5000, 100);
  auto cb = ClusteredBucketing::Build(*t, 0, 200);
  ASSERT_TRUE(cb.ok());
  for (RowId r = 0; r < t->NumRows(); r += 37) {
    const int64_t b = cb->BucketOfRow(r);
    RowRange range = cb->RangeOfBucket(b);
    EXPECT_GE(r, range.begin);
    EXPECT_LT(r, range.end);
  }
}

TEST(ClusteredBucketingTest, LargerTargetMeansFewerBuckets) {
  auto t = ClusteredInts(20000, 2000);
  auto small = ClusteredBucketing::Build(*t, 0, 64);
  auto large = ClusteredBucketing::Build(*t, 0, 1024);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(small->NumBuckets(), large->NumBuckets());
}

TEST(ClusteredBucketingTest, KeyRangeOfBucketIsOrdered) {
  auto t = ClusteredInts(5000, 500);
  auto cb = ClusteredBucketing::Build(*t, 0, 100);
  ASSERT_TRUE(cb.ok());
  for (size_t b = 0; b + 1 < cb->NumBuckets(); ++b) {
    auto [lo1, hi1] = cb->KeyRangeOfBucket(*t, 0, int64_t(b));
    auto [lo2, hi2] = cb->KeyRangeOfBucket(*t, 0, int64_t(b) + 1);
    EXPECT_LE(lo1, hi1);
    EXPECT_LT(hi1, lo2);  // §6.1.1: no value spans buckets
  }
}

// Table 4 enumeration rule (§6.1.2): reproduce the paper's exact rows.
TEST(EnumerateBucketingsTest, PaperTable4Mode) {
  // mode: cardinality 3 -> "none" only.
  BucketingCandidates c = EnumerateBucketings("mode", 3);
  EXPECT_TRUE(c.include_identity);
  EXPECT_LT(c.max_level, c.min_level);
  EXPECT_EQ(c.WidthsLabel(), "none");
}

TEST(EnumerateBucketingsTest, PaperTable4Type) {
  // type: cardinality 5 -> "none ~ 2^1".
  BucketingCandidates c = EnumerateBucketings("type", 5);
  EXPECT_TRUE(c.include_identity);
  EXPECT_EQ(c.min_level, 1);
  EXPECT_EQ(c.max_level, 1);
  EXPECT_EQ(c.WidthsLabel(), "none ~ 2^1");
}

TEST(EnumerateBucketingsTest, PaperTable4FieldID) {
  // fieldID: cardinality 251 -> "none ~ 2^6".
  BucketingCandidates c = EnumerateBucketings("fieldID", 251);
  EXPECT_TRUE(c.include_identity);
  EXPECT_EQ(c.max_level, 6);
  EXPECT_EQ(c.WidthsLabel(), "none ~ 2^6");
}

TEST(EnumerateBucketingsTest, PaperTable4PsfMag) {
  // psfMag_g: cardinality 196352 -> "2^2 ~ 2^16", identity excluded.
  BucketingCandidates c = EnumerateBucketings("psfMag_g", 196352);
  EXPECT_FALSE(c.include_identity);
  EXPECT_EQ(c.min_level, 2);
  EXPECT_EQ(c.max_level, 16);
  EXPECT_EQ(c.WidthsLabel(), "2^2 ~ 2^16");
}

TEST(EnumerateBucketingsTest, PaperExample100Values) {
  // §6.1.2's inline example: 100 values -> widths 2^1..2^5.
  BucketingCandidates c = EnumerateBucketings("col", 100);
  EXPECT_EQ(c.min_level, 1);
  EXPECT_EQ(c.max_level, 5);
}

TEST(EnumerateBucketingsTest, OptionCountMatchesPaperFormula) {
  // §6.1.3: Table 4's options give (2*3*16*8)-1 = 767 composite designs.
  const size_t n_mode = EnumerateBucketings("mode", 3).NumOptions() + 1;
  const size_t n_type = EnumerateBucketings("type", 5).NumOptions() + 1;
  const size_t n_psf = EnumerateBucketings("psfMag_g", 196352).NumOptions() + 1;
  const size_t n_field = EnumerateBucketings("fieldID", 251).NumOptions() + 1;
  EXPECT_EQ(n_mode, 2u);
  EXPECT_EQ(n_type, 3u);
  EXPECT_EQ(n_psf, 16u);
  EXPECT_EQ(n_field, 8u);
  EXPECT_EQ(n_mode * n_type * n_psf * n_field - 1, 767u);
}

}  // namespace
}  // namespace corrmap
