// Tier-1 coverage for the ordered lookup path: range cm_lookup on
// point-mapped CMs through the sorted bucket-ordinal directory must return
// exactly the ordinals the legacy full-map scan returns (empty ranges,
// all-covering ranges, ranges straddling bucket edges, range + point
// composites), the order-preserving double-ordinal encoding must sort and
// round-trip negatives and signed zeros, and CmKey::Append must clamp at
// capacity instead of writing past the array.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/correlation_map.h"
#include "exec/access_path.h"
#include "index/clustered_index.h"
#include "storage/table.h"

namespace corrmap {
namespace {

/// Asserts Lookup (directory probe) and LookupViaScan (legacy full scan)
/// agree ordinal-for-ordinal, and returns the probe result.
CmLookupResult ExpectProbeMatchesScan(const CorrelationMap& cm,
                                      std::span<const CmColumnPredicate> preds) {
  const CmLookupResult probe = cm.Lookup(preds);
  const CmLookupResult scan = cm.LookupViaScan(preds);
  EXPECT_EQ(probe.ToOrdinals(), scan.ToOrdinals());
  EXPECT_EQ(probe.num_ordinals, scan.num_ordinals);
  return probe;
}

/// Correlated int table clustered on c with an identity (point-mapped) CM
/// on u: u in [0, 999], c ~ u / 10.
struct PointMappedFixture {
  std::unique_ptr<Table> table;
  std::unique_ptr<CorrelationMap> cm;

  PointMappedFixture() {
    Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u")});
    table = std::make_unique<Table>("t", std::move(schema));
    Rng rng(17);
    for (int i = 0; i < 30000; ++i) {
      const int64_t u = rng.UniformInt(0, 999);
      std::array<Value, 2> row = {Value(u / 10 + rng.UniformInt(0, 1)),
                                  Value(u)};
      EXPECT_TRUE(table->AppendRow(row).ok());
    }
    EXPECT_TRUE(table->ClusterBy(0).ok());
    CmOptions opts;
    opts.u_cols = {1};
    opts.u_bucketers = {Bucketer::Identity()};
    opts.c_col = 0;
    auto m = CorrelationMap::Create(table.get(), opts);
    EXPECT_TRUE(m.ok());
    EXPECT_TRUE(m->BuildFromTable().ok());
    cm = std::make_unique<CorrelationMap>(std::move(*m));
  }
};

TEST(CmRangeLookupTest, EmptyRangeReturnsNothing) {
  PointMappedFixture f;
  std::array<CmColumnPredicate, 1> preds = {
      CmColumnPredicate::Range(5000, 6000)};  // beyond the u domain
  auto r = ExpectProbeMatchesScan(*f.cm, preds);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.num_ordinals, 0u);

  std::array<CmColumnPredicate, 1> inverted = {
      CmColumnPredicate::Range(600, 400)};  // lo > hi
  r = ExpectProbeMatchesScan(*f.cm, inverted);
  EXPECT_TRUE(r.empty());
}

TEST(CmRangeLookupTest, RangeCoveringAllBucketsReturnsEveryOrdinal) {
  PointMappedFixture f;
  std::array<CmColumnPredicate, 1> preds = {
      CmColumnPredicate::Range(-100, 10000)};
  auto r = ExpectProbeMatchesScan(*f.cm, preds);
  // Every u-key matched, so every (u-key, ordinal) pair was inspected and
  // every mapped clustered ordinal comes back.
  EXPECT_EQ(r.entries_probed, f.cm->NumEntries());
  std::vector<int64_t> all;
  for (int64_t c = 0; c <= 100; ++c) all.push_back(c);
  EXPECT_EQ(r.ToOrdinals(), all);
}

TEST(CmRangeLookupTest, SelectiveRangeProbesOnlyItsRun) {
  PointMappedFixture f;
  std::array<CmColumnPredicate, 1> preds = {CmColumnPredicate::Range(200, 240)};
  auto r = ExpectProbeMatchesScan(*f.cm, preds);
  EXPECT_TRUE(r.used_directory);
  // The probe inspects only the pairs of the 41 matching u-keys (each u
  // maps to ~2 clustered values here), not the whole map.
  EXPECT_GE(r.entries_probed, 41u);
  EXPECT_LE(r.entries_probed, 3u * 41u);
  EXPECT_LT(r.entries_probed, f.cm->NumEntries());
  // Dense correlated ordinals coalesce into few runs, far below one range
  // per ordinal.
  EXPECT_GT(r.num_ordinals, 0u);
  EXPECT_LT(r.ranges.size(), r.num_ordinals);
}

TEST(CmRangeLookupTest, FractionalBoundsRoundInward) {
  PointMappedFixture f;
  // Identity on an int domain: [99.5, 200.5] covers u in [100, 200].
  std::array<CmColumnPredicate, 1> frac = {
      CmColumnPredicate::Range(99.5, 200.5)};
  std::array<CmColumnPredicate, 1> whole = {CmColumnPredicate::Range(100, 200)};
  EXPECT_EQ(ExpectProbeMatchesScan(*f.cm, frac).ToOrdinals(),
            f.cm->Lookup(whole).ToOrdinals());
}

TEST(CmRangeLookupTest, RangeStraddlingBucketEdges) {
  // ValueOrdinal bucketing at level 3 (8 values per bucket): ranges whose
  // endpoints fall inside buckets must still cover the straddled buckets.
  Schema schema({ColumnDef::Int64("c"), ColumnDef::Double("u")});
  Table t("t", std::move(schema));
  Rng rng(19);
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.UniformDouble(0, 1000);
    std::array<Value, 2> row = {Value(int64_t(u / 10)), Value(u)};
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  ASSERT_TRUE(t.ClusterBy(0).ok());
  CmOptions opts;
  opts.u_cols = {1};
  opts.u_bucketers = {Bucketer::ValueOrdinalFromColumn(t, 1, 3)};
  opts.c_col = 0;
  auto cm = CorrelationMap::Create(&t, opts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());

  Rng trials(23);
  for (int i = 0; i < 25; ++i) {
    const double lo = trials.UniformDouble(0, 900);
    const double hi = lo + trials.UniformDouble(0, 120);
    std::array<CmColumnPredicate, 1> preds = {CmColumnPredicate::Range(lo, hi)};
    auto r = ExpectProbeMatchesScan(*cm, preds);
    // No false negatives: every truly matching row's ordinal is covered.
    std::vector<int64_t> ordinals = r.ToOrdinals();
    for (RowId row = 0; row < t.NumRows(); ++row) {
      const double u = t.GetKey(row, 1).Numeric();
      if (u < lo || u > hi) continue;
      ASSERT_TRUE(std::binary_search(ordinals.begin(), ordinals.end(),
                                     cm->ClusteredOrdinalOfRow(row)))
          << "false negative at u=" << u;
    }
  }
}

TEST(CmRangeLookupTest, CompositeRangePlusPointPredicates) {
  // 2-attribute CM: point predicate on x, range on y; the probe filters
  // the y-run on the x constraint.
  Schema schema(
      {ColumnDef::Int64("z"), ColumnDef::Int64("x"), ColumnDef::Int64("y")});
  Table t("t", std::move(schema));
  Rng rng(29);
  for (int i = 0; i < 20000; ++i) {
    const int64_t x = rng.UniformInt(0, 19);
    const int64_t y = rng.UniformInt(0, 499);
    std::array<Value, 3> row = {Value(x * 500 + y), Value(x), Value(y)};
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  ASSERT_TRUE(t.ClusterBy(0).ok());
  CmOptions opts;
  opts.u_cols = {1, 2};
  opts.u_bucketers = {Bucketer::Identity(), Bucketer::Identity()};
  opts.c_col = 0;
  auto cm = CorrelationMap::Create(&t, opts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());

  std::array<CmColumnPredicate, 2> preds = {
      CmColumnPredicate::Points({Key(int64_t{7}), Key(int64_t{11})}),
      CmColumnPredicate::Range(100, 130)};
  auto r = ExpectProbeMatchesScan(*cm, preds);
  EXPECT_TRUE(r.used_directory);
  // Expected ordinals from the table directly: z of every row with
  // x in {7, 11} and y in [100, 130].
  std::vector<int64_t> expect;
  for (RowId row = 0; row < t.NumRows(); ++row) {
    const int64_t x = t.GetKey(row, 1).AsInt64();
    const int64_t y = t.GetKey(row, 2).AsInt64();
    if ((x == 7 || x == 11) && y >= 100 && y <= 130) {
      expect.push_back(t.GetKey(row, 0).AsInt64());
    }
  }
  std::sort(expect.begin(), expect.end());
  expect.erase(std::unique(expect.begin(), expect.end()), expect.end());
  EXPECT_EQ(r.ToOrdinals(), expect);

  // Two ranges: the probe picks the narrower run and filters on the other.
  std::array<CmColumnPredicate, 2> two_ranges = {
      CmColumnPredicate::Range(3, 4), CmColumnPredicate::Range(0, 499)};
  ExpectProbeMatchesScan(*cm, two_ranges);
}

TEST(CmRangeLookupTest, BucketedClusteredSideAgreesWithScan) {
  Schema schema({ColumnDef::Int64("c"), ColumnDef::Double("u")});
  Table t("t", std::move(schema));
  Rng rng(31);
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.UniformDouble(0, 100000);
    std::array<Value, 2> row = {
        Value(int64_t(u / 1000.0) + rng.UniformInt(0, 2)), Value(u)};
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  ASSERT_TRUE(t.ClusterBy(0).ok());
  auto cb = ClusteredBucketing::Build(t, 0, 512);
  ASSERT_TRUE(cb.ok());
  CmOptions opts;
  opts.u_cols = {1};
  opts.u_bucketers = {Bucketer::ValueOrdinalFromColumn(t, 1, 5)};
  opts.c_col = 0;
  opts.c_buckets = &*cb;
  auto cm = CorrelationMap::Create(&t, opts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());
  Rng trials(37);
  for (int i = 0; i < 20; ++i) {
    const double lo = trials.UniformDouble(0, 90000);
    std::array<CmColumnPredicate, 1> preds = {
        CmColumnPredicate::Range(lo, lo + trials.UniformDouble(0, 8000))};
    ExpectProbeMatchesScan(*cm, preds);
  }
}

TEST(CmRangeLookupTest, DirectoryTracksMaintenance) {
  PointMappedFixture f;
  std::array<CmColumnPredicate, 1> preds = {
      CmColumnPredicate::Range(2000, 3000)};
  EXPECT_TRUE(f.cm->Lookup(preds).empty());

  // A new u-key inside the probed range must be visible to the next probe
  // (the directory is rebuilt from its dirty flag).
  const std::array<Key, 1> u = {Key(int64_t{2500})};
  f.cm->InsertValues(u, 777);
  auto r = ExpectProbeMatchesScan(*f.cm, preds);
  EXPECT_EQ(r.ToOrdinals(), std::vector<int64_t>{777});

  ASSERT_TRUE(f.cm->DeleteValues(u, 777).ok());
  EXPECT_TRUE(f.cm->Lookup(preds).empty());

  // LoadRecords replaces the whole map; the directory must follow.
  auto records = f.cm->ToRecords();
  CmOptions opts = f.cm->options();
  auto reloaded = CorrelationMap::Create(f.table.get(), opts);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_TRUE(reloaded->LoadRecords(records).ok());
  std::array<CmColumnPredicate, 1> wide = {CmColumnPredicate::Range(0, 999)};
  EXPECT_EQ(reloaded->Lookup(wide).ToOrdinals(),
            f.cm->Lookup(wide).ToOrdinals());
}

TEST(CmRangeLookupTest, SmallDeltaMergesIncrementally) {
  PointMappedFixture f;
  std::array<CmColumnPredicate, 1> wide = {CmColumnPredicate::Range(0, 9999)};
  ExpectProbeMatchesScan(*f.cm, wide);  // builds the directory
  const uint64_t rebuilds = f.cm->DirectoryFullRebuilds();
  EXPECT_EQ(f.cm->DirectoryIncrementalMerges(), 0u);
  EXPECT_TRUE(f.cm->DirectoryClean());

  // A handful of new u-keys is far below the rebuild threshold: the next
  // probe merges the sorted delta instead of rebuilding, and returns
  // exactly what the full-map scan returns.
  for (int64_t u = 2000; u < 2010; ++u) {
    const std::array<Key, 1> key = {Key(u)};
    f.cm->InsertValues(key, 700 + u);
  }
  EXPECT_FALSE(f.cm->DirectoryClean());
  ExpectProbeMatchesScan(*f.cm, wide);
  EXPECT_EQ(f.cm->DirectoryFullRebuilds(), rebuilds);
  EXPECT_EQ(f.cm->DirectoryIncrementalMerges(), 1u);
  EXPECT_TRUE(f.cm->DirectoryClean());

  // Erases merge incrementally too: the erased keys' slots are dropped by
  // key comparison (their map nodes are gone).
  for (int64_t u = 2000; u < 2005; ++u) {
    const std::array<Key, 1> key = {Key(u)};
    ASSERT_TRUE(f.cm->DeleteValues(key, 700 + u).ok());
  }
  auto r = ExpectProbeMatchesScan(*f.cm, wide);
  EXPECT_EQ(f.cm->DirectoryFullRebuilds(), rebuilds);
  EXPECT_EQ(f.cm->DirectoryIncrementalMerges(), 2u);
  // Erase-then-readd within one delta window resolves to the fresh node.
  const std::array<Key, 1> back = {Key(int64_t{2007})};
  ASSERT_TRUE(f.cm->DeleteValues(back, 2707).ok());
  f.cm->InsertValues(back, 2777);
  r = ExpectProbeMatchesScan(*f.cm, wide);
  std::vector<int64_t> ordinals = r.ToOrdinals();
  EXPECT_TRUE(std::binary_search(ordinals.begin(), ordinals.end(), 2777));
  EXPECT_FALSE(std::binary_search(ordinals.begin(), ordinals.end(), 2707));
}

TEST(CmRangeLookupTest, LargeDeltaFallsBackToFullRebuild) {
  PointMappedFixture f;
  std::array<CmColumnPredicate, 1> wide = {CmColumnPredicate::Range(0, 99999)};
  ExpectProbeMatchesScan(*f.cm, wide);
  const uint64_t rebuilds = f.cm->DirectoryFullRebuilds();
  const uint64_t merges = f.cm->DirectoryIncrementalMerges();
  // Adding more than map_size/8 fresh u-keys degrades the delta to a
  // wholesale rebuild (1000 existing keys; add 600).
  for (int64_t u = 10000; u < 10600; ++u) {
    const std::array<Key, 1> key = {Key(u)};
    f.cm->InsertValues(key, u);
  }
  ExpectProbeMatchesScan(*f.cm, wide);
  EXPECT_EQ(f.cm->DirectoryFullRebuilds(), rebuilds + 1);
  EXPECT_EQ(f.cm->DirectoryIncrementalMerges(), merges);
}

TEST(CmRangeLookupTest, EpochBumpsOnEveryMaintenanceEntryPoint) {
  PointMappedFixture f;
  uint64_t e = f.cm->Epoch();
  f.cm->InsertRow(0);
  EXPECT_GT(f.cm->Epoch(), e);
  e = f.cm->Epoch();
  ASSERT_TRUE(f.cm->DeleteRow(0).ok());
  EXPECT_GT(f.cm->Epoch(), e);
  e = f.cm->Epoch();
  const std::array<RowId, 2> rows = {1, 2};
  f.cm->InsertRowsBatched(rows);
  EXPECT_GT(f.cm->Epoch(), e);
  e = f.cm->Epoch();
  const std::array<Key, 1> u = {Key(int64_t{42})};
  f.cm->InsertValues(u, 4);
  EXPECT_GT(f.cm->Epoch(), e);
  e = f.cm->Epoch();
  ASSERT_TRUE(f.cm->DeleteValues(u, 4).ok());
  EXPECT_GT(f.cm->Epoch(), e);
}

TEST(CmRangeLookupTest, SharedCacheComputesOnce) {
  PointMappedFixture f;
  auto cidx = ClusteredIndex::Build(*f.table, 0);
  ASSERT_TRUE(cidx.ok());
  Query q({Predicate::Between(*f.table, "u", Value(100), Value(140))});
  auto plain = CmScan(*f.table, *f.cm, *cidx, q);

  CmLookupCache cache;
  const uint64_t before = f.cm->LookupsComputed();
  auto first = CmScan(*f.table, *f.cm, *cidx, q, ExecOptions{}, &cache);
  auto second = CmScan(*f.table, *f.cm, *cidx, q, ExecOptions{}, &cache);
  EXPECT_EQ(f.cm->LookupsComputed(), before + 1);  // second hit the cache
  EXPECT_EQ(first.rows, plain.rows);
  EXPECT_EQ(second.rows, plain.rows);
}

TEST(OrderedDoubleOrdinalTest, PreservesOrderAcrossSignsAndMagnitudes) {
  const std::vector<double> ascending = {
      -1e300, -3.5, -1.0, -1e-300, 0.0, 1e-300, 2.5, 3.14159, 1e300};
  for (size_t i = 1; i < ascending.size(); ++i) {
    EXPECT_LT(OrderedDoubleOrdinal(ascending[i - 1]),
              OrderedDoubleOrdinal(ascending[i]))
        << ascending[i - 1] << " vs " << ascending[i];
  }
  for (double v : ascending) {
    EXPECT_EQ(OrderedOrdinalToDouble(OrderedDoubleOrdinal(v)), v);
  }
}

TEST(OrderedDoubleOrdinalTest, SignedZerosEncodeIdentically) {
  EXPECT_EQ(OrderedDoubleOrdinal(-0.0), OrderedDoubleOrdinal(0.0));
  EXPECT_FALSE(std::signbit(OrderedOrdinalToDouble(OrderedDoubleOrdinal(-0.0))));
}

TEST(OrderedDoubleOrdinalTest, NegativeClusteredDoublesLookupCorrectly) {
  // Unbucketed CM over a double clustered column with negative values: the
  // regression the raw bit_cast encoding had (negatives sorted descending,
  // so ordinal runs and index range probes were wrong).
  Schema schema({ColumnDef::Double("c"), ColumnDef::Int64("u")});
  Table t("t", std::move(schema));
  Rng rng(41);
  for (int i = 0; i < 20000; ++i) {
    const int64_t u = rng.UniformInt(0, 999);
    const double c = double(u - 500) / 10.0 + 0.05 * double(rng.UniformInt(0, 1));
    std::array<Value, 2> row = {Value(c), Value(u)};
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  ASSERT_TRUE(t.ClusterBy(0).ok());
  auto cidx = ClusteredIndex::Build(t, 0);
  ASSERT_TRUE(cidx.ok());
  CmOptions opts;
  opts.u_cols = {1};
  opts.u_bucketers = {Bucketer::Identity()};
  opts.c_col = 0;
  auto cm = CorrelationMap::Create(&t, opts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());

  // Ordinals decode to ascending doubles (order-preserving encoding).
  std::array<CmColumnPredicate, 1> all = {CmColumnPredicate::Range(0, 999)};
  const std::vector<int64_t> ordinals = cm->CmLookup(all);
  for (size_t i = 1; i < ordinals.size(); ++i) {
    EXPECT_LT(cm->DecodeClusteredOrdinal(ordinals[i - 1]).AsDouble(),
              cm->DecodeClusteredOrdinal(ordinals[i]).AsDouble());
  }

  // CmScan over negative clustered values returns exactly the scan rows.
  for (const auto& q :
       {Query({Predicate::Eq(t, "u", Value(123))}),
        Query({Predicate::Between(t, "u", Value(0), Value(80))}),
        Query({Predicate::Between(t, "u", Value(450), Value(550))})}) {
    auto scan = FullTableScan(t, q);
    auto cms = CmScan(t, *cm, *cidx, q);
    ASSERT_GT(scan.rows.size(), 0u);
    EXPECT_EQ(cms.rows, scan.rows);
  }
}

TEST(OrderedDoubleOrdinalTest, SignedZeroClusteredValuesShareOneOrdinal) {
  Schema schema({ColumnDef::Double("c"), ColumnDef::Int64("u")});
  Table t("t", std::move(schema));
  std::array<Value, 2> r1 = {Value(-0.0), Value(int64_t{1})};
  std::array<Value, 2> r2 = {Value(0.0), Value(int64_t{1})};
  std::array<Value, 2> r3 = {Value(-1.5), Value(int64_t{2})};
  ASSERT_TRUE(t.AppendRow(r1).ok());
  ASSERT_TRUE(t.AppendRow(r2).ok());
  ASSERT_TRUE(t.AppendRow(r3).ok());
  ASSERT_TRUE(t.ClusterBy(0).ok());
  CmOptions opts;
  opts.u_cols = {1};
  opts.u_bucketers = {Bucketer::Identity()};
  opts.c_col = 0;
  auto cm = CorrelationMap::Create(&t, opts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());
  // -0.0 and 0.0 are the same clustered value: one (u=1, c=0.0) pair with
  // count 2, deletable from either representation.
  std::array<CmColumnPredicate, 1> preds = {
      CmColumnPredicate::Points({Key(int64_t{1})})};
  EXPECT_EQ(cm->CmLookup(preds).size(), 1u);
  RowId zero_row = 0;  // first u=1 row (c is one of the signed zeros)
  for (RowId r = 0; r < t.NumRows(); ++r) {
    if (t.GetKey(r, 1).AsInt64() == 1) {
      zero_row = r;
      break;
    }
  }
  ASSERT_TRUE(cm->DeleteRow(zero_row).ok());
  EXPECT_EQ(cm->CmLookup(preds).size(), 1u);  // count 2 -> 1, pair remains
}

TEST(CmKeyTest, AppendClampsAtCapacity) {
  CmKey k;
  for (size_t i = 0; i < kMaxCmAttributes; ++i) {
    k.Append(int64_t(i) + 10);
  }
  ASSERT_EQ(k.n, kMaxCmAttributes);
  // Over-appending asserts in debug builds and must be a clamping no-op in
  // release builds -- never a write past the array.
  EXPECT_DEBUG_DEATH(k.Append(99), "arity");
  EXPECT_EQ(k.n, kMaxCmAttributes);
  for (size_t i = 0; i < kMaxCmAttributes; ++i) {
    EXPECT_EQ(k.v[i], int64_t(i) + 10);
  }
}

TEST(CmLookupResultTest, RangesCoalesceConsecutiveOrdinals) {
  PointMappedFixture f;
  // u in [100, 109] maps to c in {10, 11} (plus noise +1): consecutive
  // ordinals collapse into a single run.
  std::array<CmColumnPredicate, 1> preds = {CmColumnPredicate::Range(100, 109)};
  auto r = f.cm->Lookup(preds);
  ASSERT_EQ(r.ranges.size(), 1u);
  EXPECT_EQ(r.ranges[0], (OrdinalRange{10, 11}));
  EXPECT_EQ(r.num_ordinals, 2u);
  EXPECT_EQ(r.ToOrdinals(), (std::vector<int64_t>{10, 11}));
}

}  // namespace
}  // namespace corrmap
