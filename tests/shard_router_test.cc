// ShardRouter coverage: routing correctness (clustered predicates visit
// exactly the owning shards, appends land where their key routes),
// CM-pruned scatter parity with a full scatter-gather, cross-shard merge
// determinism, per-shard recluster epochs (a swap in one shard aborts only
// that shard's stale writers), and cross-shard update moves.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "exec/access_path.h"
#include "index/clustered_index.h"
#include "obs/serving_metrics.h"
#include "serve/shard_router.h"
#include "storage/table.h"

namespace corrmap {
namespace {

using serve::RoutedSelectResult;
using serve::RouterOptions;
using serve::ServingEngine;
using serve::ServingOptions;
using serve::ShardRouter;

/// Correlated (c ~ u/10) three-column table clustered on c, partitioned
/// four ways, with an unbucketed CM over u -- so u-queries can prune
/// shards through the CM and c-queries route by key range.
struct RouterFixture {
  std::unique_ptr<Table> table;
  std::unique_ptr<ShardRouter> router;
  Rng rng;

  explicit RouterFixture(size_t num_shards = 4, int rows = 12000,
                         bool attach_cm = true,
                         obs::ServingMetrics* metrics = nullptr)
      : rng(0x5AD) {
    Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u"),
                   ColumnDef::Int64("v")});
    table = std::make_unique<Table>("t", std::move(schema));
    for (int i = 0; i < rows; ++i) {
      const int64_t u = rng.UniformInt(0, 999);
      std::array<Value, 3> row = {Value(u / 10 + rng.UniformInt(0, 1)),
                                  Value(u), Value(rng.UniformInt(0, 49))};
      EXPECT_TRUE(table->AppendRow(row).ok());
    }
    EXPECT_TRUE(table->ClusterBy(0).ok());
    RouterOptions opts;
    opts.num_shards = num_shards;
    opts.engine.num_workers = 1;
    opts.engine.reserve_rows = size_t(rows) + 65536;
    opts.engine.metrics = metrics;
    auto r = ShardRouter::Create(*table, 0, opts);
    EXPECT_TRUE(r.ok());
    router = std::move(*r);
    if (attach_cm) {
      CmOptions cm;
      cm.u_cols = {1};
      cm.u_bucketers = {Bucketer::Identity()};
      cm.c_col = 0;
      EXPECT_TRUE(router->AttachCm(cm).ok());
    }
  }

  /// Oracle: sum of full scans over every shard's current table.
  uint64_t ScanAllShards(const Query& q) const {
    uint64_t n = 0;
    for (size_t s = 0; s < router->num_shards(); ++s) {
      n += FullTableScan(router->shard(s).table(), q).NumMatches();
    }
    return n;
  }
};

/// Oracle over any router (RouterFixture::ScanAllShards for bespoke ones).
uint64_t ScanAll(const ShardRouter& r, const Query& q) {
  uint64_t n = 0;
  for (size_t s = 0; s < r.num_shards(); ++s) {
    n += FullTableScan(r.shard(s).table(), q).NumMatches();
  }
  return n;
}

/// The fixture's CM, attachable to bespoke routers.
CmOptions FixtureCm() {
  CmOptions cm;
  cm.u_cols = {1};
  cm.u_bucketers = {Bucketer::Identity()};
  cm.c_col = 0;
  return cm;
}

TEST(ShardRouterTest, PartitionCoversEveryRowExactlyOnce) {
  RouterFixture f;
  ASSERT_EQ(f.router->num_shards(), 4u);
  ASSERT_EQ(f.router->split_keys().size(), 3u);
  uint64_t rows = 0;
  for (size_t s = 0; s < f.router->num_shards(); ++s) {
    rows += f.router->shard(s).table().NumRows();
    EXPECT_GT(f.router->shard(s).table().NumRows(), 0u);
  }
  EXPECT_EQ(rows, f.table->NumRows());
  EXPECT_TRUE(f.router->CheckInvariants().ok());
  // Shards share one pool and one cache.
  ASSERT_NE(f.router->pool(), nullptr);
  for (size_t s = 0; s < f.router->num_shards(); ++s) {
    EXPECT_EQ(f.router->shard(s).pool(), f.router->pool());
    EXPECT_EQ(&f.router->shard(s).cache(), &f.router->cache());
  }
}

TEST(ShardRouterTest, ClusteredPredicatesRouteToOwningShardsOnly) {
  RouterFixture f;
  // A clustered point key lives in exactly one shard.
  const Query eq({Predicate::Eq(*f.table, "c", Value(42))});
  const RoutedSelectResult point = f.router->ExecuteSelect(eq);
  EXPECT_TRUE(point.clustered_routed);
  EXPECT_EQ(point.shards_visited, 1u);
  EXPECT_EQ(point.shards_pruned, 3u);
  EXPECT_EQ(point.merged.num_matches, f.ScanAllShards(eq));
  EXPECT_EQ(point.merged.num_matches,
            FullTableScan(*f.table, eq).NumMatches());

  // A clustered range spans a contiguous shard span.
  const Query wide({Predicate::Between(*f.table, "c", Value(0),
                                       Value(1000))});
  const RoutedSelectResult all = f.router->ExecuteSelect(wide);
  EXPECT_TRUE(all.clustered_routed);
  EXPECT_EQ(all.shards_visited, 4u);
  EXPECT_EQ(all.merged.num_matches, f.table->NumRows());

  const Query narrow({Predicate::Between(*f.table, "c", Value(10),
                                         Value(30))});
  const RoutedSelectResult span = f.router->ExecuteSelect(narrow);
  EXPECT_TRUE(span.clustered_routed);
  EXPECT_LT(span.shards_visited, 4u);
  EXPECT_EQ(span.merged.num_matches, f.ScanAllShards(narrow));
  EXPECT_EQ(f.router->ClusteredRoutedSelects(), 3u);
}

TEST(ShardRouterTest, CmPrunedScatterMatchesFullScatter) {
  RouterFixture f;
  // u is correlated with the clustered key (c ~ u/10), so a u-point query
  // touches one or two c values and the per-shard CM lookups empty out
  // every other shard. Parity: the pruned scatter must count exactly what
  // visiting every shard counts.
  uint64_t pruned_selects = 0;
  for (int64_t u = 5; u < 1000; u += 97) {
    const Query q({Predicate::Eq(*f.table, "u", Value(u))});
    const RoutedSelectResult res = f.router->ExecuteSelect(q);
    EXPECT_FALSE(res.clustered_routed);
    EXPECT_EQ(res.shards_visited + res.shards_pruned,
              f.router->num_shards());
    EXPECT_EQ(res.merged.num_matches, f.ScanAllShards(q));
    if (res.cm_pruned) {
      ++pruned_selects;
      EXPECT_LT(res.shards_visited, f.router->num_shards());
    }
  }
  // The correlation must actually prune: a u-point maps to <= 2 adjacent
  // c values, which intersect at most 2 of the 4 ranges.
  EXPECT_GT(pruned_selects, 0u);
  EXPECT_EQ(f.router->CmPrunedSelects(), pruned_selects);
  EXPECT_GT(f.router->ShardsPrunedTotal(), 0u);
}

TEST(ShardRouterTest, UnprunableQueriesFallBackToFullScatter) {
  RouterFixture f(/*num_shards=*/4, /*rows=*/12000, /*attach_cm=*/false);
  // No CM attached: an unclustered predicate cannot prune anything.
  const Query q({Predicate::Eq(*f.table, "u", Value(123))});
  const RoutedSelectResult res = f.router->ExecuteSelect(q);
  EXPECT_FALSE(res.clustered_routed);
  EXPECT_FALSE(res.cm_pruned);
  EXPECT_EQ(res.shards_visited, 4u);
  EXPECT_EQ(res.merged.num_matches, f.ScanAllShards(q));
}

TEST(ShardRouterTest, CrossShardMergeIsDeterministicAndSummed) {
  RouterFixture f;
  const Query q({Predicate::Between(*f.table, "u", Value(100),
                                    Value(900))});
  const RoutedSelectResult a = f.router->ExecuteSelect(q);
  const RoutedSelectResult b = f.router->ExecuteSelect(q);
  EXPECT_EQ(a.merged.num_matches, b.merged.num_matches);
  EXPECT_EQ(a.shards_visited, b.shards_visited);
  EXPECT_EQ(a.merged.num_matches, f.ScanAllShards(q));
  // Candidates were deliberated per visited shard and summed.
  EXPECT_GE(a.merged.plan_candidates, a.shards_visited);
}

TEST(ShardRouterTest, AppendsRouteByClusteredKey) {
  RouterFixture f;
  std::vector<std::vector<Key>> rows;
  for (int64_t c : {1, 30, 60, 95, 95, 1}) {
    rows.push_back({Key(c), Key(c * 10), Key(int64_t{7})});
  }
  ASSERT_TRUE(f.router->ApplyAppend(rows).ok());
  for (const auto& row : rows) {
    const size_t owner = f.router->RouteKey(row[0]);
    // The appended row must be a tail row of exactly its owning shard.
    EXPECT_GT(f.router->shard(owner).TailRows(), 0u);
  }
  const Query v7({Predicate::Eq(*f.table, "v", Value(7))});
  EXPECT_EQ(f.router->ExecuteSelect(v7).merged.num_matches,
            f.ScanAllShards(v7));
  EXPECT_TRUE(f.router->CheckInvariants().ok());

  // A tail row makes its shard unprunable even when the CM lookup is
  // empty: u=10*c values exist, but u=999999 does not -- shards with
  // tails must still be visited.
  const Query missing({Predicate::Eq(*f.table, "u", Value(999999))});
  const RoutedSelectResult res = f.router->ExecuteSelect(missing);
  EXPECT_EQ(res.merged.num_matches, 0u);
  for (size_t s = 0; s < f.router->num_shards(); ++s) {
    if (f.router->shard(s).TailRows() > 0) {
      // ... which bounds the pruning below a full skip.
      EXPECT_LT(res.shards_pruned, f.router->num_shards());
    }
  }
}

TEST(ShardRouterTest, PerShardEpochsAbortOnlyTheRecusteredShard) {
  RouterFixture f;
  // Give every shard a tail so any shard's recluster performs.
  std::vector<std::vector<Key>> rows;
  Rng rng(0xEE);
  for (int i = 0; i < 400; ++i) {
    const int64_t u = rng.UniformInt(0, 999);
    rows.push_back({Key(u / 10), Key(u), Key(rng.UniformInt(0, 49))});
  }
  ASSERT_TRUE(f.router->ApplyAppend(rows).ok());

  const uint64_t e0 = f.router->ShardEpoch(0);
  const uint64_t e1 = f.router->ShardEpoch(1);
  auto stats = f.router->Recluster(0);
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->performed());
  EXPECT_GT(f.router->ShardEpoch(0), e0);
  EXPECT_EQ(f.router->ShardEpoch(1), e1);  // untouched shard keeps its epoch

  // A writer pinned to shard 0's stale epoch is refused; the same epoch is
  // still valid for shard 1 (epochs are per shard).
  EXPECT_EQ(f.router->ApplyDelete(0, 0, e0).code(), Status::Code::kAborted);
  EXPECT_TRUE(f.router->ApplyDelete(1, 0, e1).ok());
  EXPECT_TRUE(f.router->ApplyDelete(0, 0, f.router->ShardEpoch(0)).ok());
  EXPECT_TRUE(f.router->CheckInvariants().ok());
}

TEST(ShardRouterTest, CrossShardUpdateMovesTheRow) {
  RouterFixture f;
  // Row 0 of shard 0 holds the partition's smallest clustered keys; move
  // it to the top shard by rewriting its clustered key.
  const ServingEngine& s0 = f.router->shard(0);
  const Query old_q({Predicate::Eq(*f.table, "u",
                                   s0.table().column(1).GetValue(0))});
  const uint64_t before = f.router->ExecuteSelect(old_q).merged.num_matches;
  ASSERT_GT(before, 0u);

  const std::vector<Key> fresh = {Key(int64_t{99}), Key(int64_t{990}),
                                  Key(int64_t{3})};
  const size_t target = f.router->RouteKey(fresh[0]);
  ASSERT_NE(target, 0u);
  ASSERT_TRUE(f.router->ApplyUpdate(0, 0, fresh,
                                    f.router->ShardEpoch(0)).ok());

  EXPECT_EQ(f.router->ExecuteSelect(old_q).merged.num_matches, before - 1);
  EXPECT_GT(f.router->shard(target).TailRows(), 0u);
  EXPECT_EQ(f.router->shard(0).table().NumDeleted(), 1u);
  const Query new_q({Predicate::Eq(*f.table, "u", Value(990))});
  EXPECT_EQ(f.router->ExecuteSelect(new_q).merged.num_matches,
            f.ScanAllShards(new_q));
  EXPECT_TRUE(f.router->CheckInvariants().ok());
}

TEST(ShardRouterTest, ReclusterAllSnapshotCopiesUnbucketedCms) {
  RouterFixture f;
  std::vector<std::vector<Key>> rows;
  Rng rng(0xAB);
  for (int i = 0; i < 600; ++i) {
    const int64_t u = rng.UniformInt(0, 999);
    rows.push_back({Key(u / 10), Key(u), Key(rng.UniformInt(0, 49))});
  }
  ASSERT_TRUE(f.router->ApplyAppend(rows).ok());
  ASSERT_TRUE(f.router->ReclusterAll().ok());
  for (size_t s = 0; s < f.router->num_shards(); ++s) {
    EXPECT_EQ(f.router->shard(s).TailRows(), 0u);
    // The unbucketed CM crossed the swap by snapshot copy, not re-hash.
    if (f.router->shard(s).ReclustersCompleted() > 0) {
      EXPECT_GT(f.router->shard(s).CmSnapshotCopies(), 0u);
    }
  }
  const Query q({Predicate::Eq(*f.table, "u", Value(250))});
  EXPECT_EQ(f.router->ExecuteSelect(q).merged.num_matches,
            f.ScanAllShards(q));
  EXPECT_TRUE(f.router->CheckInvariants().ok());
}

TEST(ShardRouterTest, SingleShardDegeneratesToOneEngine) {
  RouterFixture f(/*num_shards=*/1);
  ASSERT_EQ(f.router->num_shards(), 1u);
  EXPECT_TRUE(f.router->split_keys().empty());
  const Query q({Predicate::Eq(*f.table, "u", Value(321))});
  const RoutedSelectResult res = f.router->ExecuteSelect(q);
  EXPECT_EQ(res.shards_visited, 1u);
  EXPECT_EQ(res.shards_pruned, 0u);
  EXPECT_EQ(res.merged.num_matches, FullTableScan(*f.table, q).NumMatches());
}

TEST(ShardRouterTest, FewDistinctKeysCapTheShardCount) {
  Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u")});
  Table t("tiny", std::move(schema));
  for (int i = 0; i < 100; ++i) {
    std::array<Value, 2> row = {Value(i % 2), Value(int64_t{i})};
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  ASSERT_TRUE(t.ClusterBy(0).ok());
  RouterOptions opts;
  opts.num_shards = 8;
  opts.engine.num_workers = 1;
  auto r = ShardRouter::Create(t, 0, opts);
  ASSERT_TRUE(r.ok());
  // Two distinct keys can fill at most two shards.
  EXPECT_EQ((*r)->num_shards(), 2u);
  EXPECT_TRUE((*r)->CheckInvariants().ok());
  const Query q({Predicate::Eq(t, "c", Value(1))});
  EXPECT_EQ((*r)->ExecuteSelect(q).merged.num_matches, 50u);
}

TEST(ShardRouterTest, MetricsRecordRoutingAndPartitionGauges) {
  obs::ServingMetrics metrics;
  {
    RouterFixture f(4, 12000, /*attach_cm=*/true, &metrics);
    const Query cpoint({Predicate::Eq(*f.table, "c", Value(12))});
    const Query upoint({Predicate::Eq(*f.table, "u", Value(444))});
    uint64_t visited = 0;
    for (int i = 0; i < 6; ++i) {
      visited += f.router->ExecuteSelect(cpoint).shards_visited;
    }
    uint64_t last_fanout = 0;
    for (int i = 0; i < 4; ++i) {
      const RoutedSelectResult res = f.router->ExecuteSelect(upoint);
      visited += res.shards_visited;
      last_fanout = res.shards_visited;
    }
    // Router-level counters: one select each, visited + pruned partitions
    // the shard set per select.
    EXPECT_EQ(metrics.router_selects->Value(), 10u);
    EXPECT_EQ(metrics.router_shards_visited->Value(), visited);
    // One visit-latency sample per visited shard; the fan-out gauge holds
    // the most recent scatter's visit count; no budget -> no degradation.
    EXPECT_EQ(metrics.router_shard_visit_us->Count(), visited);
    EXPECT_EQ(metrics.router_scatter_fanout->Value(), double(last_fanout));
    EXPECT_EQ(metrics.router_budget_degraded->Value(), 0u);
    EXPECT_EQ(metrics.router_shards_visited->Value() +
                  metrics.router_shards_pruned->Value(),
              10u * f.router->num_shards());
    // The clustered point routed; something must have been pruned for it.
    EXPECT_GE(metrics.router_clustered_routed->Value(), 6u);
    EXPECT_GT(metrics.router_shards_pruned->Value(), 0u);
    // Shards share the bundle: every visited shard recorded its own
    // engine-level select, nothing more.
    EXPECT_EQ(metrics.selects->Value(), visited);
    // Traces carry both levels: 10 router scatters + per-shard records.
    EXPECT_EQ(metrics.traces().TotalRecorded(), 10u + visited);
    // The router registered partition-wide gauges under the single-engine
    // names (shards were told not to register their own).
    const std::string json = metrics.registry().ToJson();
    EXPECT_NE(json.find("\"router_num_shards\": 4"), std::string::npos);
    EXPECT_NE(json.find("\"serve_live_rows\": 12000"), std::string::npos);
  }
  // Destroying the router unregistered its callback gauges; the plain
  // counters live on in the bundle for post-mortem export.
  const std::string json = metrics.registry().ToJson();
  EXPECT_EQ(json.find("\"router_num_shards\":"), std::string::npos);
  EXPECT_EQ(json.find("\"serve_live_rows\":"), std::string::npos);
  EXPECT_EQ(metrics.router_selects->Value(), 10u);
}

TEST(ShardRouterTest, EdgeCaseRangeEndpointsRouteLikeOneEngine) {
  RouterFixture f;
  // Parity baseline: one engine over the whole table must count exactly
  // what the routed scatter counts, for every endpoint shape.
  auto cidx = ClusteredIndex::Build(*f.table, 0);
  ASSERT_TRUE(cidx.ok());
  ServingOptions so;
  so.num_workers = 0;
  so.reserve_rows = f.table->NumRows() + 1024;
  ServingEngine single(f.table.get(), &*cidx, so);

  const std::vector<Query> probes = {
      // Open ranges: the +/-inf endpoint used to collapse through the
      // double->int64 cast to INT64_MIN and visit the wrong shard span.
      Query({Predicate::Ge(*f.table, "c", Value(42))}),
      Query({Predicate::Le(*f.table, "c", Value(37))}),
      // Endpoints outside the clustered domain ([0, 100] here).
      Query({Predicate::Between(*f.table, "c", Value(-500), Value(7))}),
      Query({Predicate::Between(*f.table, "c", Value(88), Value(100000))}),
      Query({Predicate::Between(*f.table, "c", Value(5000), Value(6000))}),
      Query({Predicate::Eq(*f.table, "c", Value(-3))}),
  };
  for (const Query& q : probes) {
    const RoutedSelectResult res = f.router->ExecuteSelect(q);
    EXPECT_TRUE(res.clustered_routed);
    EXPECT_EQ(res.shards_visited + res.shards_pruned,
              f.router->num_shards());
    EXPECT_EQ(res.merged.num_matches, single.ExecuteSelect(q).num_matches);
    EXPECT_EQ(res.merged.num_matches, f.ScanAllShards(q));
  }
  // The open ranges must actually route (not degrade to a full scatter):
  // each one-sided bound still excludes at least the far shard.
  EXPECT_GT(f.router->ExecuteSelect(probes[0]).shards_pruned, 0u);
  EXPECT_GT(f.router->ExecuteSelect(probes[1]).shards_pruned, 0u);

  // An inverted range (lo > hi) matches nothing and visits nothing.
  const Query inverted(
      {Predicate::Between(*f.table, "c", Value(60), Value(10))});
  const RoutedSelectResult none = f.router->ExecuteSelect(inverted);
  EXPECT_TRUE(none.clustered_routed);
  EXPECT_EQ(none.shards_visited, 0u);
  EXPECT_EQ(none.shards_pruned, f.router->num_shards());
  EXPECT_EQ(none.merged.num_matches, 0u);
  EXPECT_EQ(single.ExecuteSelect(inverted).num_matches, 0u);
}

TEST(ShardRouterTest, MultiShardAppendIsAllOrNothing) {
  RouterFixture f;
  // A bespoke router with tight per-shard reserve so one shard's capacity
  // is exhaustible in-test.
  RouterOptions opts;
  opts.num_shards = 4;
  opts.engine.num_workers = 1;
  opts.engine.reserve_rows = f.table->NumRows() / 4 + 2048;
  auto r = ShardRouter::Create(*f.table, 0, opts);
  ASSERT_TRUE(r.ok());
  ShardRouter& router = **r;
  const size_t last = router.num_shards() - 1;
  const size_t cap_last = router.shard(last).table().ReservedRows() -
                          router.shard(last).table().NumRows();
  ASSERT_LT(cap_last, 100000u);
  std::vector<uint64_t> before;
  for (size_t s = 0; s < router.num_shards(); ++s) {
    before.push_back(router.shard(s).table().NumRows());
  }

  // Overfill the last shard while shard 0's slice is small: pre-fix the
  // router applied shard 0's rows before discovering the overflow,
  // leaving a half-applied batch behind an error status.
  std::vector<std::vector<Key>> batch;
  batch.push_back({Key(int64_t{0}), Key(int64_t{1}), Key(int64_t{1})});
  batch.push_back({Key(int64_t{0}), Key(int64_t{2}), Key(int64_t{1})});
  for (size_t i = 0; i <= cap_last; ++i) {
    batch.push_back({Key(int64_t{99}), Key(int64_t{990}), Key(int64_t{1})});
  }
  EXPECT_EQ(router.ApplyAppend(batch).code(),
            Status::Code::kResourceExhausted);
  for (size_t s = 0; s < router.num_shards(); ++s) {
    EXPECT_EQ(router.shard(s).table().NumRows(), before[s]);
    EXPECT_EQ(router.shard(s).TailRows(), 0u);
  }

  // An arity-mismatched row anywhere in the batch also applies nothing.
  const std::vector<std::vector<Key>> bad = {
      {Key(int64_t{1}), Key(int64_t{10}), Key(int64_t{1})},
      {Key(int64_t{99}), Key(int64_t{990})}};
  EXPECT_EQ(router.ApplyAppend(bad).code(),
            Status::Code::kInvalidArgument);
  for (size_t s = 0; s < router.num_shards(); ++s) {
    EXPECT_EQ(router.shard(s).table().NumRows(), before[s]);
    EXPECT_EQ(router.shard(s).TailRows(), 0u);
  }

  // The same shards accept a batch that fits (the failed batches left no
  // lock or capacity residue behind).
  const size_t cap0 = router.shard(0).table().ReservedRows() -
                      router.shard(0).table().NumRows();
  ASSERT_GE(cap0, 3u);
  std::vector<std::vector<Key>> good;
  for (int i = 0; i < 3; ++i) {
    good.push_back({Key(int64_t{0}), Key(int64_t{5}), Key(int64_t{2})});
  }
  ASSERT_TRUE(router.ApplyAppend(good).ok());
  EXPECT_EQ(router.shard(0).TailRows(), 3u);
  EXPECT_TRUE(router.CheckInvariants().ok());
}

TEST(ShardRouterTest, ParallelScatterMatchesSequentialScatter) {
  RouterFixture f;  // parallel by default
  RouterOptions opts;
  opts.num_shards = 4;
  opts.engine.num_workers = 1;
  opts.engine.reserve_rows = f.table->NumRows() + 65536;
  opts.parallel_scatter = false;
  auto seq = ShardRouter::Create(*f.table, 0, opts);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE((*seq)->AttachCm(FixtureCm()).ok());

  std::vector<Query> probes;
  for (int64_t u = 3; u < 1000; u += 131) {
    probes.push_back(Query({Predicate::Eq(*f.table, "u", Value(u))}));
  }
  for (int64_t v = 0; v < 50; v += 11) {
    // v is uncorrelated and unindexed: guaranteed full scatter.
    probes.push_back(Query({Predicate::Eq(*f.table, "v", Value(v))}));
  }
  probes.push_back(
      Query({Predicate::Between(*f.table, "c", Value(12), Value(63))}));
  for (const Query& q : probes) {
    const RoutedSelectResult p = f.router->ExecuteSelect(q);
    const RoutedSelectResult s = (*seq)->ExecuteSelect(q);
    EXPECT_EQ(p.merged.num_matches, s.merged.num_matches);
    EXPECT_EQ(p.merged.rows_examined, s.merged.rows_examined);
    EXPECT_EQ(p.shards_visited, s.shards_visited);
    EXPECT_EQ(p.shards_pruned, s.shards_pruned);
    EXPECT_EQ(p.clustered_routed, s.clustered_routed);
    EXPECT_EQ(p.merged.num_matches, f.ScanAllShards(q));
  }
}

TEST(ShardRouterTest, PoolLessEnginesScatterOnTheFallbackPool) {
  RouterFixture f;
  // num_workers == 0: engine queues never drain, so parallel scatter must
  // ride the router-owned fallback pool instead of hanging on Post.
  RouterOptions opts;
  opts.num_shards = 4;
  opts.engine.num_workers = 0;
  opts.engine.reserve_rows = f.table->NumRows() + 1024;
  auto r = ShardRouter::Create(*f.table, 0, opts);
  ASSERT_TRUE(r.ok());
  for (int64_t v = 0; v < 8; ++v) {
    const Query q({Predicate::Eq(*f.table, "v", Value(v))});
    const RoutedSelectResult res = (*r)->ExecuteSelect(q);
    EXPECT_EQ(res.shards_visited, (*r)->num_shards());
    EXPECT_EQ(res.merged.num_matches, ScanAll(**r, q));
  }
}

TEST(ShardRouterTest, ScatterBudgetDegradesPlansNotResults) {
  obs::ServingMetrics metrics;
  RouterFixture f;
  // A budget far below any shard's cheapest candidate: every visited
  // shard must degrade to its cheap plan, and still count exactly.
  RouterOptions opts;
  opts.num_shards = 4;
  opts.engine.num_workers = 1;
  opts.engine.reserve_rows = f.table->NumRows() + 1024;
  opts.engine.metrics = &metrics;
  opts.scatter_budget_ms = 1e-6;
  auto r = ShardRouter::Create(*f.table, 0, opts);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE((*r)->AttachCm(FixtureCm()).ok());

  const Query scatter({Predicate::Eq(*f.table, "v", Value(9))});
  const RoutedSelectResult res = (*r)->ExecuteSelect(scatter);
  EXPECT_EQ(res.shards_visited, (*r)->num_shards());
  EXPECT_EQ(res.shards_degraded, res.shards_visited);
  EXPECT_TRUE(res.merged.budget_degraded);
  EXPECT_EQ(res.merged.num_matches, ScanAll(**r, scatter));

  const Query upoint({Predicate::Eq(*f.table, "u", Value(444))});
  const RoutedSelectResult up = (*r)->ExecuteSelect(upoint);
  EXPECT_EQ(up.shards_degraded, up.shards_visited);
  EXPECT_EQ(up.merged.num_matches, ScanAll(**r, upoint));

  // Degraded visits reach the bundle's counter; the fan-out gauge tracks
  // the most recent scatter.
  EXPECT_EQ(metrics.router_budget_degraded->Value(),
            res.shards_degraded + up.shards_degraded);
  EXPECT_EQ(metrics.router_scatter_fanout->Value(),
            double(up.shards_visited));
}

}  // namespace
}  // namespace corrmap
