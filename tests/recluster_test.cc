// Deterministic coverage for the online recluster pass and its hooks:
// MergeTailPermutation must reproduce ClusterBy's stable sort, the Table
// CloneReordered/AppendRowsFrom hooks must preserve dictionary codes and
// tombstones, ClusteredIndex::BuildMerged must equal a from-scratch Build,
// and a ServingEngine recluster must drain the tail, renew append
// capacity, keep probe==scan exact, and run from the background trigger.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/maintenance.h"
#include "exec/access_path.h"
#include "index/clustered_index.h"
#include "serve/recluster.h"
#include "serve/serving_engine.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace corrmap {
namespace {

using serve::MergeTailPermutation;
using serve::ServingEngine;
using serve::ServingOptions;

std::unique_ptr<Table> CorrelatedTable(int rows, uint64_t seed,
                                       int* appended = nullptr) {
  Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u")});
  auto t = std::make_unique<Table>("t", std::move(schema));
  Rng rng(seed);
  for (int i = 0; i < rows; ++i) {
    const int64_t u = rng.UniformInt(0, 999);
    std::array<Value, 2> row = {Value(u / 10 + rng.UniformInt(0, 1)),
                                Value(u)};
    EXPECT_TRUE(t->AppendRow(row).ok());
  }
  EXPECT_TRUE(t->ClusterBy(0).ok());
  if (appended != nullptr) *appended = rows;
  return t;
}

TEST(MergeTailPermutationTest, ReproducesClusterByStableSort) {
  auto t = CorrelatedTable(5000, 97);
  const size_t boundary = t->NumRows();
  Rng rng(101);
  for (int i = 0; i < 1200; ++i) {
    const std::array<Key, 2> row = {Key(rng.UniformInt(0, 120)),
                                    Key(rng.UniformInt(0, 999))};
    t->AppendRowKeys(row);
  }
  const std::vector<RowId> perm =
      MergeTailPermutation(*t, 0, RowId(boundary), t->NumRows());
  // Oracle: an independent copy, stable-sorted wholesale.
  auto oracle = t->Clone();
  ASSERT_TRUE(oracle->ClusterBy(0).ok());
  ASSERT_EQ(perm.size(), t->NumRows());
  auto merged = t->CloneReordered(perm);
  for (RowId r = 0; r < merged->NumRows(); ++r) {
    EXPECT_EQ(merged->GetKey(r, 0), oracle->GetKey(r, 0));
    EXPECT_EQ(merged->GetKey(r, 1), oracle->GetKey(r, 1));
  }
}

TEST(TableReclusterHooksTest, CloneReorderedPreservesDictAndTombstones) {
  Schema schema({ColumnDef::Int64("c"), ColumnDef::String("s")});
  Table t("t", std::move(schema));
  const std::array<const char*, 4> words = {"pear", "apple", "fig", "plum"};
  for (int i = 0; i < 8; ++i) {
    std::array<Value, 2> row = {Value(int64_t(i / 2)),
                                Value(std::string(words[i % 4]))};
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  ASSERT_TRUE(t.ClusterBy(0).ok());
  ASSERT_TRUE(t.DeleteRow(3).ok());
  std::vector<RowId> ident(t.NumRows());
  for (size_t i = 0; i < ident.size(); ++i) ident[i] = RowId(i);
  auto copy = t.CloneReordered(ident);
  ASSERT_EQ(copy->NumRows(), t.NumRows());
  EXPECT_EQ(copy->clustered_column(), t.clustered_column());
  EXPECT_EQ(copy->NumLiveRows(), t.NumLiveRows());
  for (RowId r = 0; r < t.NumRows(); ++r) {
    EXPECT_EQ(copy->IsDeleted(r), t.IsDeleted(r));
    // Values AND physical keys (dictionary codes) must survive the copy,
    // or predicates compiled against the predecessor would misread it.
    EXPECT_EQ(copy->GetValue(r, 1), t.GetValue(r, 1));
    EXPECT_EQ(copy->GetKey(r, 1), t.GetKey(r, 1));
  }

  // AppendRowsFrom carries later rows (and their codes) across.
  std::array<Value, 2> extra = {Value(int64_t{99}),
                                Value(std::string("apple"))};
  ASSERT_TRUE(t.AppendRow(extra).ok());
  copy->AppendRowsFrom(t, t.NumRows() - 1, t.NumRows());
  EXPECT_EQ(copy->NumRows(), t.NumRows());
  EXPECT_EQ(copy->GetKey(copy->NumRows() - 1, 1),
            t.GetKey(t.NumRows() - 1, 1));
}

TEST(ClusteredIndexTest, BuildMergedEqualsFromScratchBuild) {
  auto t = CorrelatedTable(8000, 103);
  const RowId boundary = RowId(t->NumRows());
  auto old_cidx = ClusteredIndex::Build(*t, 0);
  ASSERT_TRUE(old_cidx.ok());
  Rng rng(107);
  std::vector<Key> tail_keys;
  for (int i = 0; i < 2000; ++i) {
    // Include keys below, inside, and above the old key range.
    const std::array<Key, 2> row = {Key(rng.UniformInt(-5, 130)),
                                    Key(rng.UniformInt(0, 999))};
    t->AppendRowKeys(row);
    tail_keys.push_back(row[0]);
  }
  const std::vector<RowId> perm =
      MergeTailPermutation(*t, 0, boundary, t->NumRows());
  auto merged_table = t->CloneReordered(perm);
  std::sort(tail_keys.begin(), tail_keys.end());
  auto patched = ClusteredIndex::BuildMerged(*merged_table, 0, *old_cidx,
                                             boundary, tail_keys);
  ASSERT_TRUE(patched.ok());
  auto scratch = ClusteredIndex::Build(*merged_table, 0);
  ASSERT_TRUE(scratch.ok());
  ASSERT_EQ(patched->NumDistinctKeys(), scratch->NumDistinctKeys());
  for (size_t i = 0; i < scratch->NumDistinctKeys(); ++i) {
    EXPECT_EQ(patched->DistinctKey(i), scratch->DistinctKey(i));
    EXPECT_EQ(patched->LookupEqual(scratch->DistinctKey(i)),
              scratch->LookupEqual(scratch->DistinctKey(i)));
  }
  EXPECT_EQ(patched->LookupRange(Key(int64_t{-5}), Key(int64_t{200})),
            scratch->LookupRange(Key(int64_t{-5}), Key(int64_t{200})));
}

struct ReclusterEngineFixture {
  std::unique_ptr<Table> table;
  std::unique_ptr<ClusteredIndex> cidx;
  std::unique_ptr<ServingEngine> engine;

  explicit ReclusterEngineFixture(size_t reserve_extra = 50000,
                                  size_t recluster_tail_rows = 0) {
    table = CorrelatedTable(20000, 109);
    auto ci = ClusteredIndex::Build(*table, 0);
    EXPECT_TRUE(ci.ok());
    cidx = std::make_unique<ClusteredIndex>(std::move(*ci));
    ServingOptions opts;
    opts.num_workers = 2;
    opts.reserve_rows = table->NumRows() + reserve_extra;
    opts.recluster_tail_rows = recluster_tail_rows;
    engine = std::make_unique<ServingEngine>(table.get(), cidx.get(), opts);
    CmOptions copts;
    copts.u_cols = {1};
    copts.u_bucketers = {Bucketer::Identity()};
    copts.c_col = 0;
    EXPECT_TRUE(engine->AttachCm(copts).ok());
  }

  std::vector<std::vector<Key>> MakeRows(int n, uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<Key>> rows;
    for (int i = 0; i < n; ++i) {
      const int64_t u = rng.UniformInt(0, 999);
      rows.push_back({Key(u / 10), Key(u)});
    }
    return rows;
  }

  void ExpectProbeEqualsScan(const Query& q) {
    const serve::SelectResult probe = engine->ExecuteSelect(q);
    const ExecResult scan = FullTableScan(engine->table(), q);
    EXPECT_EQ(probe.num_matches, scan.NumMatches());
  }
};

TEST(ReclusterTest, DrainsTailAndKeepsProbeEqualsScan) {
  ReclusterEngineFixture f;
  const Query eq({Predicate::Eq(*f.table, "u", Value(321))});
  const Query range(
      {Predicate::Between(*f.table, "u", Value(150), Value(260))});
  ASSERT_TRUE(f.engine->ApplyAppend(f.MakeRows(7000, 113)).ok());
  EXPECT_EQ(f.engine->TailRows(), 7000u);
  f.ExpectProbeEqualsScan(eq);

  auto stats = f.engine->Recluster();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->performed());
  EXPECT_EQ(stats->tail_rows_merged, 7000u);
  EXPECT_EQ(stats->rows_clustered, 27000u);
  EXPECT_EQ(stats->catch_up_rows, 0u);
  EXPECT_EQ(f.engine->TailRows(), 0u);
  EXPECT_EQ(f.engine->clustered_boundary(), 27000u);
  EXPECT_EQ(f.engine->ReclusterEpoch(), 1u);
  EXPECT_EQ(f.engine->table().NumRows(), 27000u);
  EXPECT_TRUE(f.engine->CheckInvariants().ok());
  f.ExpectProbeEqualsScan(eq);
  f.ExpectProbeEqualsScan(range);

  // Appends keep working against the successor; a second pass drains
  // them again.
  ASSERT_TRUE(f.engine->ApplyAppend(f.MakeRows(500, 127)).ok());
  EXPECT_EQ(f.engine->TailRows(), 500u);
  f.ExpectProbeEqualsScan(eq);
  auto again = f.engine->Recluster();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(f.engine->TailRows(), 0u);
  EXPECT_EQ(f.engine->ReclusterEpoch(), 2u);
  f.ExpectProbeEqualsScan(eq);
}

TEST(ReclusterTest, UnbucketedCmsAreSnapshotCopiedNotRehashed) {
  // Unbucketed CM content encodes clustered *values*, which the physical
  // reorder does not change: the pass must carry the fixture's identity
  // CM into the successor by snapshot copy, while a c-bucketed CM (its
  // ordinals are positional bucket ids) is still rebuilt in phase 1.
  ReclusterEngineFixture f;
  auto cb = ClusteredBucketing::Build(*f.table, 0, 64);
  ASSERT_TRUE(cb.ok());
  CmOptions bucketed;
  bucketed.u_cols = {1};
  bucketed.u_bucketers = {Bucketer::NumericWidth(8)};
  bucketed.c_col = 0;
  bucketed.c_buckets = &*cb;
  ASSERT_TRUE(f.engine->AttachCm(bucketed).ok());
  EXPECT_EQ(f.engine->CmSnapshotCopies(), 0u);

  const Query eq({Predicate::Eq(*f.table, "u", Value(321))});
  ASSERT_TRUE(f.engine->ApplyAppend(f.MakeRows(5000, 211)).ok());
  auto stats = f.engine->Recluster();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->performed());
  // Exactly the unbucketed slot was copied; the bucketed one was not.
  EXPECT_EQ(stats->cms_snapshot_copied, 1u);
  EXPECT_EQ(f.engine->CmSnapshotCopies(), 1u);
  EXPECT_EQ(f.engine->num_cms(), 2u);
  EXPECT_TRUE(f.engine->CheckInvariants().ok());
  f.ExpectProbeEqualsScan(eq);

  // The copied map serves the successor epoch exactly, including across
  // a second pass with deletes in flight.
  for (RowId r = 0; r < 400; ++r) {
    ASSERT_TRUE(f.engine->ApplyDelete(r * 3).ok());
  }
  ASSERT_TRUE(f.engine->ApplyAppend(f.MakeRows(700, 223)).ok());
  auto again = f.engine->Compact();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->cms_snapshot_copied, 1u);
  EXPECT_EQ(f.engine->CmSnapshotCopies(), 2u);
  EXPECT_TRUE(f.engine->CheckInvariants().ok());
  f.ExpectProbeEqualsScan(eq);
  f.ExpectProbeEqualsScan(
      Query({Predicate::Between(*f.table, "u", Value(150), Value(260))}));
}

TEST(ReclusterTest, EmptyTailIsANoOp) {
  ReclusterEngineFixture f;
  auto stats = f.engine->Recluster();
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->performed());
  EXPECT_EQ(f.engine->ReclusterEpoch(), 0u);
  EXPECT_EQ(f.engine->ReclustersCompleted(), 0u);
}

TEST(ReclusterTest, RenewsAppendCapacity) {
  // Fill the reservation to the brim; the recluster successor is
  // re-reserved with fresh headroom, so appends work again.
  ReclusterEngineFixture f(/*reserve_extra=*/4000);
  ASSERT_TRUE(f.engine->ApplyAppend(f.MakeRows(4000, 131)).ok());
  EXPECT_EQ(f.engine->ApplyAppend(f.MakeRows(1, 137)).code(),
            Status::Code::kResourceExhausted);
  auto stats = f.engine->Recluster();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(f.engine->ApplyAppend(f.MakeRows(1000, 139)).ok());
  EXPECT_EQ(f.engine->TailRows(), 1000u);
}

TEST(ReclusterTest, BackgroundTriggerFiresOnTailThreshold) {
  ReclusterEngineFixture f(/*reserve_extra=*/50000,
                           /*recluster_tail_rows=*/2000);
  const Query eq({Predicate::Eq(*f.table, "u", Value(500))});
  for (int batch = 0; batch < 10; ++batch) {
    ASSERT_TRUE(f.engine->ApplyAppend(f.MakeRows(700, 141 + batch)).ok());
  }
  // The trigger enqueued passes on the worker pool; quiesce by resizing
  // (which drains the queue) and check the tail was folded at least once.
  f.engine->ResizeWorkerPool(2);
  EXPECT_GE(f.engine->ReclustersCompleted(), 1u);
  EXPECT_LT(f.engine->TailRows(), 7000u);
  f.ExpectProbeEqualsScan(eq);
  EXPECT_TRUE(f.engine->CheckInvariants().ok());
}

// Boundary parity: the engine's live clustered index must equal a
// from-scratch Build over the engine's table (the compaction acceptance
// bar -- per-key deleted counts contracted every range exactly).
void ExpectCidxMatchesScratchBuild(const ServingEngine& engine) {
  auto scratch = ClusteredIndex::Build(engine.table(), 0);
  ASSERT_TRUE(scratch.ok());
  const ClusteredIndex& live = engine.cidx();
  ASSERT_EQ(live.NumDistinctKeys(), scratch->NumDistinctKeys());
  for (size_t i = 0; i < scratch->NumDistinctKeys(); ++i) {
    EXPECT_EQ(live.DistinctKey(i), scratch->DistinctKey(i));
    EXPECT_EQ(live.LookupEqual(scratch->DistinctKey(i)),
              scratch->LookupEqual(scratch->DistinctKey(i)));
  }
}

// First live row whose "u" column equals `u` (current epoch's id space).
RowId ResolveByU(const Table& t, int64_t u) {
  for (RowId r = 0; r < t.NumRows(); ++r) {
    if (!t.IsDeleted(r) && t.GetKey(r, 1) == Key(u)) return r;
  }
  ADD_FAILURE() << "no live row with u=" << u;
  return 0;
}

TEST(CompactTest, DropsTombstonesAndMatchesScratchBuild) {
  ReclusterEngineFixture f;
  const Query eq({Predicate::Eq(*f.table, "u", Value(321))});
  const Query range(
      {Predicate::Between(*f.table, "u", Value(150), Value(260))});
  ASSERT_TRUE(f.engine->ApplyAppend(f.MakeRows(3000, 163)).ok());

  // Tombstone every row of one distinct clustered key (BuildMerged must
  // drop the key from the directory, not alias its boundary onto the
  // next key), plus a scatter of clustered-region and tail rows.
  std::vector<RowId> victims;
  const RowRange whole_key =
      f.engine->cidx().LookupEqual(f.engine->cidx().DistinctKey(5));
  ASSERT_FALSE(whole_key.empty());
  for (RowId r = whole_key.begin; r < whole_key.end; ++r) {
    victims.push_back(r);
  }
  for (RowId r = 40; r < 20000; r += 997) {
    if (r < whole_key.begin || r >= whole_key.end) victims.push_back(r);
  }
  for (RowId r = 20005; r < 23000; r += 501) victims.push_back(r);
  ASSERT_TRUE(f.engine->ApplyDeletes(victims).ok());
  const size_t live = f.engine->table().NumLiveRows();
  EXPECT_EQ(f.engine->table().NumDeleted(), victims.size());
  f.ExpectProbeEqualsScan(eq);

  auto stats = f.engine->Compact();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->performed());
  EXPECT_EQ(stats->rows_compacted, victims.size());
  EXPECT_EQ(stats->tombstones_carried, 0u);
  EXPECT_EQ(f.engine->TailRows(), 0u);
  EXPECT_EQ(f.engine->table().NumDeleted(), 0u);
  EXPECT_EQ(f.engine->table().NumRows(), live);
  EXPECT_EQ(f.engine->clustered_boundary(), RowId(live));
  EXPECT_TRUE(f.engine->CheckInvariants().ok());
  ExpectCidxMatchesScratchBuild(*f.engine);
  f.ExpectProbeEqualsScan(eq);
  f.ExpectProbeEqualsScan(range);
}

TEST(CompactTest, EmptyTailStillDropsTombstones) {
  ReclusterEngineFixture f;
  std::vector<RowId> victims;
  for (RowId r = 7; r < 20000; r += 199) victims.push_back(r);
  ASSERT_TRUE(f.engine->ApplyDeletes(victims).ok());

  // Merge mode has no tail to fold: a plain Recluster stays a no-op and
  // the tombstones survive it.
  auto merge = f.engine->Recluster();
  ASSERT_TRUE(merge.ok());
  EXPECT_FALSE(merge->performed());
  EXPECT_EQ(f.engine->table().NumDeleted(), victims.size());

  auto compact = f.engine->Compact();
  ASSERT_TRUE(compact.ok());
  EXPECT_TRUE(compact->performed());
  EXPECT_EQ(compact->rows_compacted, victims.size());
  EXPECT_EQ(f.engine->table().NumDeleted(), 0u);
  EXPECT_EQ(f.engine->table().NumRows(), 20000u - victims.size());
  EXPECT_GT(f.engine->ReclusterEpoch(), 0u);
  ExpectCidxMatchesScratchBuild(*f.engine);
  EXPECT_TRUE(f.engine->CheckInvariants().ok());
}

TEST(CompactTest, DeleteDuringPhase1CopyIsCarriedNeverResurrected) {
  // Satellite: a delete that lands between the permutation's tombstone
  // reads and the publish must be compacted away or carried as a
  // successor tombstone -- never resurrected. The hook injects it right
  // after the permutation is fixed, so the clone may or may not carry it;
  // either way the counts must drop immediately and stay dropped.
  ReclusterEngineFixture f;
  ASSERT_TRUE(f.engine->ApplyAppend(f.MakeRows(2000, 167)).ok());
  const Query eq({Predicate::Eq(*f.table, "u", Value(321))});
  const uint64_t before = f.engine->ExecuteSelect(eq).num_matches;
  ASSERT_GT(before, 0u);
  const RowId victim = ResolveByU(f.engine->table(), 321);

  serve::Reclusterer pass(f.engine.get(), serve::ReclusterMode::kCompact);
  pass.set_after_permutation_hook([&] {
    EXPECT_TRUE(f.engine->ApplyDelete(victim).ok());
  });
  auto stats = pass.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->performed());

  // The deleted row stayed deleted across the swap (carried tombstone or
  // replayed delete -- both end as a successor tombstone here, because
  // the permutation had already kept the row).
  EXPECT_EQ(f.engine->ExecuteSelect(eq).num_matches, before - 1);
  const ExecResult scan = FullTableScan(f.engine->table(), eq);
  EXPECT_EQ(scan.NumMatches(), before - 1);
  EXPECT_EQ(f.engine->table().NumDeleted(), 1u);
  EXPECT_TRUE(f.engine->CheckInvariants().ok());

  // A follow-up compaction drains the carried tombstone; counts hold.
  auto drained = f.engine->Compact();
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(f.engine->table().NumDeleted(), 0u);
  EXPECT_EQ(f.engine->ExecuteSelect(eq).num_matches, before - 1);
  ExpectCidxMatchesScratchBuild(*f.engine);
}

TEST(CompactTest, DeleteAfterSuccessorBuildIsReplayedIntoSuccessorCms) {
  // Same race, later seam: the delete lands after the successor table,
  // index, and CMs are fully built, so phase 2 must replay it -- delete
  // the successor row AND retract it from the successor CMs (the epoch
  // bump of that retraction is also what staleness of cached lookups
  // rides on).
  ReclusterEngineFixture f;
  ASSERT_TRUE(f.engine->ApplyAppend(f.MakeRows(2000, 173)).ok());
  const Query eq({Predicate::Eq(*f.table, "u", Value(500))});
  const uint64_t before = f.engine->ExecuteSelect(eq).num_matches;
  ASSERT_GT(before, 0u);
  const RowId victim = ResolveByU(f.engine->table(), 500);

  serve::Reclusterer pass(f.engine.get(), serve::ReclusterMode::kCompact);
  pass.set_after_build_hook([&] {
    EXPECT_TRUE(f.engine->ApplyDelete(victim).ok());
  });
  auto stats = pass.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->tombstones_carried, 1u);

  EXPECT_EQ(f.engine->ExecuteSelect(eq).num_matches, before - 1);
  const ExecResult scan = FullTableScan(f.engine->table(), eq);
  EXPECT_EQ(scan.NumMatches(), before - 1);
  // The replay retracted the pair, so the sharded CM's books balance.
  EXPECT_TRUE(f.engine->CheckInvariants().ok());

  auto drained = f.engine->Compact();
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(f.engine->table().NumDeleted(), 0u);
  EXPECT_EQ(f.engine->ExecuteSelect(eq).num_matches, before - 1);
  ExpectCidxMatchesScratchBuild(*f.engine);
}

TEST(CompactTest, UpdateMovesRowToTailAndStaysExact) {
  ReclusterEngineFixture f;
  const Query old_u({Predicate::Eq(*f.table, "u", Value(321))});
  const Query new_u({Predicate::Eq(*f.table, "u", Value(777))});
  const uint64_t old_before = f.engine->ExecuteSelect(old_u).num_matches;
  const uint64_t new_before = f.engine->ExecuteSelect(new_u).num_matches;
  ASSERT_GT(old_before, 0u);

  const RowId victim = ResolveByU(f.engine->table(), 321);
  const std::vector<Key> fresh = {Key(int64_t{77}), Key(int64_t{777})};
  ASSERT_TRUE(f.engine->ApplyUpdate(victim, fresh).ok());

  EXPECT_EQ(f.engine->TailRows(), 1u);
  EXPECT_EQ(f.engine->ExecuteSelect(old_u).num_matches, old_before - 1);
  EXPECT_EQ(f.engine->ExecuteSelect(new_u).num_matches, new_before + 1);
  f.ExpectProbeEqualsScan(old_u);
  f.ExpectProbeEqualsScan(new_u);

  auto stats = f.engine->Compact();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(f.engine->table().NumDeleted(), 0u);
  EXPECT_EQ(f.engine->TailRows(), 0u);
  EXPECT_EQ(f.engine->ExecuteSelect(old_u).num_matches, old_before - 1);
  EXPECT_EQ(f.engine->ExecuteSelect(new_u).num_matches, new_before + 1);
  ExpectCidxMatchesScratchBuild(*f.engine);
}

TEST(CompactTest, StaleEpochDeleteIsAborted) {
  ReclusterEngineFixture f;
  const uint64_t epoch0 = f.engine->ReclusterEpoch();
  const RowId victim = ResolveByU(f.engine->table(), 321);
  ASSERT_TRUE(f.engine->ApplyAppend(f.MakeRows(100, 179)).ok());
  ASSERT_TRUE(f.engine->Recluster().ok());
  ASSERT_GT(f.engine->ReclusterEpoch(), epoch0);
  // The swap permuted row ids: a delete pinned to the stale epoch must be
  // refused, and the same call against the current epoch must land.
  EXPECT_EQ(f.engine->ApplyDelete(victim, epoch0).code(),
            Status::Code::kAborted);
  EXPECT_TRUE(
      f.engine->ApplyDelete(victim, f.engine->ReclusterEpoch()).ok());
  EXPECT_EQ(f.engine->table().NumDeleted(), 1u);
}

TEST(CompactTest, BackgroundTriggerFiresOnTombstoneFraction) {
  ReclusterEngineFixture f;
  f.engine->set_compact_deleted_fraction(0.05);
  const Query eq({Predicate::Eq(*f.table, "u", Value(500))});
  std::vector<RowId> victims;
  for (RowId r = 3; r < 20000 && victims.size() < 1200; r += 16) {
    victims.push_back(r);
  }
  ASSERT_TRUE(f.engine->ApplyDeletes(victims).ok());
  // The trigger enqueued a compacting pass; quiesce and check it drained
  // the tombstones.
  f.engine->ResizeWorkerPool(2);
  EXPECT_GE(f.engine->ReclustersCompleted(), 1u);
  EXPECT_EQ(f.engine->table().NumDeleted(), 0u);
  EXPECT_EQ(f.engine->table().NumRows(), 20000u - victims.size());
  f.ExpectProbeEqualsScan(eq);
  EXPECT_TRUE(f.engine->CheckInvariants().ok());
}

TEST(MaintenanceDriverTest, ReclusterHeapMergesTailAndChargesRewrite) {
  auto t = CorrelatedTable(10000, 149);
  auto cidx = ClusteredIndex::Build(*t, 0);
  ASSERT_TRUE(cidx.ok());
  BufferPool pool(1024);
  WriteAheadLog wal;
  MaintenanceDriver driver(t.get(), &pool, &wal);

  CmOptions copts;
  copts.u_cols = {1};
  copts.u_bucketers = {Bucketer::Identity()};
  copts.c_col = 0;
  auto cm = CorrelationMap::Create(t.get(), copts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());
  driver.AttachCm(&*cm);

  Rng rng(151);
  std::vector<std::vector<Key>> batch;
  for (int i = 0; i < 2000; ++i) {
    const int64_t u = rng.UniformInt(0, 999);
    batch.push_back({Key(u / 10), Key(u)});
  }
  driver.InsertBatch(batch);

  const double io_before = driver.report().io.seq_pages;
  ASSERT_TRUE(driver.ReclusterHeap(&*cidx).ok());
  EXPECT_GT(driver.report().io.seq_pages, io_before);
  // The heap is fully sorted again and the rebuilt index agrees with a
  // from-scratch build.
  for (RowId r = 1; r < t->NumRows(); ++r) {
    EXPECT_LE(t->GetKey(r - 1, 0), t->GetKey(r, 0));
  }
  auto scratch = ClusteredIndex::Build(*t, 0);
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(cidx->NumDistinctKeys(), scratch->NumDistinctKeys());
  // The unbucketed CM survived the physical reorder: probe==scan.
  const Query q({Predicate::Eq(*t, "u", Value(321))});
  const ExecResult via_cm = CmScan(*t, *cm, *cidx, q);
  const ExecResult scan = FullTableScan(*t, q);
  EXPECT_EQ(via_cm.NumMatches(), scan.NumMatches());
}

TEST(MaintenanceDriverTest, ReclusterHeapRefusedWithPositionalStructures) {
  auto t = CorrelatedTable(1000, 157);
  auto cidx = ClusteredIndex::Build(*t, 0);
  ASSERT_TRUE(cidx.ok());
  BufferPool pool(1024);
  WriteAheadLog wal;
  MaintenanceDriver driver(t.get(), &pool, &wal);
  auto cb = ClusteredBucketing::Build(*t, 0, 64);
  ASSERT_TRUE(cb.ok());
  CmOptions copts;
  copts.u_cols = {1};
  copts.u_bucketers = {Bucketer::Identity()};
  copts.c_col = 0;
  copts.c_buckets = &*cb;
  auto cm = CorrelationMap::Create(t.get(), copts);
  ASSERT_TRUE(cm.ok());
  driver.AttachCm(&*cm);
  EXPECT_EQ(driver.ReclusterHeap(&*cidx).code(),
            Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace corrmap
