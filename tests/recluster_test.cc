// Deterministic coverage for the online recluster pass and its hooks:
// MergeTailPermutation must reproduce ClusterBy's stable sort, the Table
// CloneReordered/AppendRowsFrom hooks must preserve dictionary codes and
// tombstones, ClusteredIndex::BuildMerged must equal a from-scratch Build,
// and a ServingEngine recluster must drain the tail, renew append
// capacity, keep probe==scan exact, and run from the background trigger.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/maintenance.h"
#include "exec/access_path.h"
#include "index/clustered_index.h"
#include "serve/recluster.h"
#include "serve/serving_engine.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace corrmap {
namespace {

using serve::MergeTailPermutation;
using serve::ServingEngine;
using serve::ServingOptions;

std::unique_ptr<Table> CorrelatedTable(int rows, uint64_t seed,
                                       int* appended = nullptr) {
  Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u")});
  auto t = std::make_unique<Table>("t", std::move(schema));
  Rng rng(seed);
  for (int i = 0; i < rows; ++i) {
    const int64_t u = rng.UniformInt(0, 999);
    std::array<Value, 2> row = {Value(u / 10 + rng.UniformInt(0, 1)),
                                Value(u)};
    EXPECT_TRUE(t->AppendRow(row).ok());
  }
  EXPECT_TRUE(t->ClusterBy(0).ok());
  if (appended != nullptr) *appended = rows;
  return t;
}

TEST(MergeTailPermutationTest, ReproducesClusterByStableSort) {
  auto t = CorrelatedTable(5000, 97);
  const size_t boundary = t->NumRows();
  Rng rng(101);
  for (int i = 0; i < 1200; ++i) {
    const std::array<Key, 2> row = {Key(rng.UniformInt(0, 120)),
                                    Key(rng.UniformInt(0, 999))};
    t->AppendRowKeys(row);
  }
  const std::vector<RowId> perm =
      MergeTailPermutation(*t, 0, RowId(boundary), t->NumRows());
  // Oracle: an independent copy, stable-sorted wholesale.
  auto oracle = t->Clone();
  ASSERT_TRUE(oracle->ClusterBy(0).ok());
  ASSERT_EQ(perm.size(), t->NumRows());
  auto merged = t->CloneReordered(perm);
  for (RowId r = 0; r < merged->NumRows(); ++r) {
    EXPECT_EQ(merged->GetKey(r, 0), oracle->GetKey(r, 0));
    EXPECT_EQ(merged->GetKey(r, 1), oracle->GetKey(r, 1));
  }
}

TEST(TableReclusterHooksTest, CloneReorderedPreservesDictAndTombstones) {
  Schema schema({ColumnDef::Int64("c"), ColumnDef::String("s")});
  Table t("t", std::move(schema));
  const std::array<const char*, 4> words = {"pear", "apple", "fig", "plum"};
  for (int i = 0; i < 8; ++i) {
    std::array<Value, 2> row = {Value(int64_t(i / 2)),
                                Value(std::string(words[i % 4]))};
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  ASSERT_TRUE(t.ClusterBy(0).ok());
  ASSERT_TRUE(t.DeleteRow(3).ok());
  std::vector<RowId> ident(t.NumRows());
  for (size_t i = 0; i < ident.size(); ++i) ident[i] = RowId(i);
  auto copy = t.CloneReordered(ident);
  ASSERT_EQ(copy->NumRows(), t.NumRows());
  EXPECT_EQ(copy->clustered_column(), t.clustered_column());
  EXPECT_EQ(copy->NumLiveRows(), t.NumLiveRows());
  for (RowId r = 0; r < t.NumRows(); ++r) {
    EXPECT_EQ(copy->IsDeleted(r), t.IsDeleted(r));
    // Values AND physical keys (dictionary codes) must survive the copy,
    // or predicates compiled against the predecessor would misread it.
    EXPECT_EQ(copy->GetValue(r, 1), t.GetValue(r, 1));
    EXPECT_EQ(copy->GetKey(r, 1), t.GetKey(r, 1));
  }

  // AppendRowsFrom carries later rows (and their codes) across.
  std::array<Value, 2> extra = {Value(int64_t{99}),
                                Value(std::string("apple"))};
  ASSERT_TRUE(t.AppendRow(extra).ok());
  copy->AppendRowsFrom(t, t.NumRows() - 1, t.NumRows());
  EXPECT_EQ(copy->NumRows(), t.NumRows());
  EXPECT_EQ(copy->GetKey(copy->NumRows() - 1, 1),
            t.GetKey(t.NumRows() - 1, 1));
}

TEST(ClusteredIndexTest, BuildMergedEqualsFromScratchBuild) {
  auto t = CorrelatedTable(8000, 103);
  const RowId boundary = RowId(t->NumRows());
  auto old_cidx = ClusteredIndex::Build(*t, 0);
  ASSERT_TRUE(old_cidx.ok());
  Rng rng(107);
  std::vector<Key> tail_keys;
  for (int i = 0; i < 2000; ++i) {
    // Include keys below, inside, and above the old key range.
    const std::array<Key, 2> row = {Key(rng.UniformInt(-5, 130)),
                                    Key(rng.UniformInt(0, 999))};
    t->AppendRowKeys(row);
    tail_keys.push_back(row[0]);
  }
  const std::vector<RowId> perm =
      MergeTailPermutation(*t, 0, boundary, t->NumRows());
  auto merged_table = t->CloneReordered(perm);
  std::sort(tail_keys.begin(), tail_keys.end());
  auto patched = ClusteredIndex::BuildMerged(*merged_table, 0, *old_cidx,
                                             boundary, tail_keys);
  ASSERT_TRUE(patched.ok());
  auto scratch = ClusteredIndex::Build(*merged_table, 0);
  ASSERT_TRUE(scratch.ok());
  ASSERT_EQ(patched->NumDistinctKeys(), scratch->NumDistinctKeys());
  for (size_t i = 0; i < scratch->NumDistinctKeys(); ++i) {
    EXPECT_EQ(patched->DistinctKey(i), scratch->DistinctKey(i));
    EXPECT_EQ(patched->LookupEqual(scratch->DistinctKey(i)),
              scratch->LookupEqual(scratch->DistinctKey(i)));
  }
  EXPECT_EQ(patched->LookupRange(Key(int64_t{-5}), Key(int64_t{200})),
            scratch->LookupRange(Key(int64_t{-5}), Key(int64_t{200})));
}

struct ReclusterEngineFixture {
  std::unique_ptr<Table> table;
  std::unique_ptr<ClusteredIndex> cidx;
  std::unique_ptr<ServingEngine> engine;

  explicit ReclusterEngineFixture(size_t reserve_extra = 50000,
                                  size_t recluster_tail_rows = 0) {
    table = CorrelatedTable(20000, 109);
    auto ci = ClusteredIndex::Build(*table, 0);
    EXPECT_TRUE(ci.ok());
    cidx = std::make_unique<ClusteredIndex>(std::move(*ci));
    ServingOptions opts;
    opts.num_workers = 2;
    opts.reserve_rows = table->NumRows() + reserve_extra;
    opts.recluster_tail_rows = recluster_tail_rows;
    engine = std::make_unique<ServingEngine>(table.get(), cidx.get(), opts);
    CmOptions copts;
    copts.u_cols = {1};
    copts.u_bucketers = {Bucketer::Identity()};
    copts.c_col = 0;
    EXPECT_TRUE(engine->AttachCm(copts).ok());
  }

  std::vector<std::vector<Key>> MakeRows(int n, uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<Key>> rows;
    for (int i = 0; i < n; ++i) {
      const int64_t u = rng.UniformInt(0, 999);
      rows.push_back({Key(u / 10), Key(u)});
    }
    return rows;
  }

  void ExpectProbeEqualsScan(const Query& q) {
    const serve::SelectResult probe = engine->ExecuteSelect(q);
    const ExecResult scan = FullTableScan(engine->table(), q);
    EXPECT_EQ(probe.num_matches, scan.NumMatches());
  }
};

TEST(ReclusterTest, DrainsTailAndKeepsProbeEqualsScan) {
  ReclusterEngineFixture f;
  const Query eq({Predicate::Eq(*f.table, "u", Value(321))});
  const Query range(
      {Predicate::Between(*f.table, "u", Value(150), Value(260))});
  ASSERT_TRUE(f.engine->ApplyAppend(f.MakeRows(7000, 113)).ok());
  EXPECT_EQ(f.engine->TailRows(), 7000u);
  f.ExpectProbeEqualsScan(eq);

  auto stats = f.engine->Recluster();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->performed());
  EXPECT_EQ(stats->tail_rows_merged, 7000u);
  EXPECT_EQ(stats->rows_clustered, 27000u);
  EXPECT_EQ(stats->catch_up_rows, 0u);
  EXPECT_EQ(f.engine->TailRows(), 0u);
  EXPECT_EQ(f.engine->clustered_boundary(), 27000u);
  EXPECT_EQ(f.engine->ReclusterEpoch(), 1u);
  EXPECT_EQ(f.engine->table().NumRows(), 27000u);
  EXPECT_TRUE(f.engine->CheckInvariants().ok());
  f.ExpectProbeEqualsScan(eq);
  f.ExpectProbeEqualsScan(range);

  // Appends keep working against the successor; a second pass drains
  // them again.
  ASSERT_TRUE(f.engine->ApplyAppend(f.MakeRows(500, 127)).ok());
  EXPECT_EQ(f.engine->TailRows(), 500u);
  f.ExpectProbeEqualsScan(eq);
  auto again = f.engine->Recluster();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(f.engine->TailRows(), 0u);
  EXPECT_EQ(f.engine->ReclusterEpoch(), 2u);
  f.ExpectProbeEqualsScan(eq);
}

TEST(ReclusterTest, EmptyTailIsANoOp) {
  ReclusterEngineFixture f;
  auto stats = f.engine->Recluster();
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->performed());
  EXPECT_EQ(f.engine->ReclusterEpoch(), 0u);
  EXPECT_EQ(f.engine->ReclustersCompleted(), 0u);
}

TEST(ReclusterTest, RenewsAppendCapacity) {
  // Fill the reservation to the brim; the recluster successor is
  // re-reserved with fresh headroom, so appends work again.
  ReclusterEngineFixture f(/*reserve_extra=*/4000);
  ASSERT_TRUE(f.engine->ApplyAppend(f.MakeRows(4000, 131)).ok());
  EXPECT_EQ(f.engine->ApplyAppend(f.MakeRows(1, 137)).code(),
            Status::Code::kResourceExhausted);
  auto stats = f.engine->Recluster();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(f.engine->ApplyAppend(f.MakeRows(1000, 139)).ok());
  EXPECT_EQ(f.engine->TailRows(), 1000u);
}

TEST(ReclusterTest, BackgroundTriggerFiresOnTailThreshold) {
  ReclusterEngineFixture f(/*reserve_extra=*/50000,
                           /*recluster_tail_rows=*/2000);
  const Query eq({Predicate::Eq(*f.table, "u", Value(500))});
  for (int batch = 0; batch < 10; ++batch) {
    ASSERT_TRUE(f.engine->ApplyAppend(f.MakeRows(700, 141 + batch)).ok());
  }
  // The trigger enqueued passes on the worker pool; quiesce by resizing
  // (which drains the queue) and check the tail was folded at least once.
  f.engine->ResizeWorkerPool(2);
  EXPECT_GE(f.engine->ReclustersCompleted(), 1u);
  EXPECT_LT(f.engine->TailRows(), 7000u);
  f.ExpectProbeEqualsScan(eq);
  EXPECT_TRUE(f.engine->CheckInvariants().ok());
}

TEST(MaintenanceDriverTest, ReclusterHeapMergesTailAndChargesRewrite) {
  auto t = CorrelatedTable(10000, 149);
  auto cidx = ClusteredIndex::Build(*t, 0);
  ASSERT_TRUE(cidx.ok());
  BufferPool pool(1024);
  WriteAheadLog wal;
  MaintenanceDriver driver(t.get(), &pool, &wal);

  CmOptions copts;
  copts.u_cols = {1};
  copts.u_bucketers = {Bucketer::Identity()};
  copts.c_col = 0;
  auto cm = CorrelationMap::Create(t.get(), copts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());
  driver.AttachCm(&*cm);

  Rng rng(151);
  std::vector<std::vector<Key>> batch;
  for (int i = 0; i < 2000; ++i) {
    const int64_t u = rng.UniformInt(0, 999);
    batch.push_back({Key(u / 10), Key(u)});
  }
  driver.InsertBatch(batch);

  const double io_before = driver.report().io.seq_pages;
  ASSERT_TRUE(driver.ReclusterHeap(&*cidx).ok());
  EXPECT_GT(driver.report().io.seq_pages, io_before);
  // The heap is fully sorted again and the rebuilt index agrees with a
  // from-scratch build.
  for (RowId r = 1; r < t->NumRows(); ++r) {
    EXPECT_LE(t->GetKey(r - 1, 0), t->GetKey(r, 0));
  }
  auto scratch = ClusteredIndex::Build(*t, 0);
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(cidx->NumDistinctKeys(), scratch->NumDistinctKeys());
  // The unbucketed CM survived the physical reorder: probe==scan.
  const Query q({Predicate::Eq(*t, "u", Value(321))});
  const ExecResult via_cm = CmScan(*t, *cm, *cidx, q);
  const ExecResult scan = FullTableScan(*t, q);
  EXPECT_EQ(via_cm.NumMatches(), scan.NumMatches());
}

TEST(MaintenanceDriverTest, ReclusterHeapRefusedWithPositionalStructures) {
  auto t = CorrelatedTable(1000, 157);
  auto cidx = ClusteredIndex::Build(*t, 0);
  ASSERT_TRUE(cidx.ok());
  BufferPool pool(1024);
  WriteAheadLog wal;
  MaintenanceDriver driver(t.get(), &pool, &wal);
  auto cb = ClusteredBucketing::Build(*t, 0, 64);
  ASSERT_TRUE(cb.ok());
  CmOptions copts;
  copts.u_cols = {1};
  copts.u_bucketers = {Bucketer::Identity()};
  copts.c_col = 0;
  copts.c_buckets = &*cb;
  auto cm = CorrelationMap::Create(t.get(), copts);
  ASSERT_TRUE(cm.ok());
  driver.AttachCm(&*cm);
  EXPECT_EQ(driver.ReclusterHeap(&*cidx).code(),
            Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace corrmap
