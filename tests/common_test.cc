// Unit tests for common/: Status/Result, Value/Key/CompositeKey, Rng,
// StringPool, TablePrinter.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_pool.h"
#include "common/table_printer.h"
#include "common/value.h"

namespace corrmap {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad width");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad width");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("x"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value(int64_t{7}).is_int64());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("abc").is_string());
  EXPECT_EQ(Value(7).AsInt64(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
  EXPECT_DOUBLE_EQ(Value(7).NumericValue(), 7.0);
}

TEST(ValueTest, OrderingWithinType) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value(1.0), Value(2.0));
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "hi");
}

TEST(KeyTest, OrderingAndEquality) {
  EXPECT_LT(Key(int64_t{1}), Key(int64_t{2}));
  EXPECT_LT(Key(1.5), Key(2.5));
  EXPECT_EQ(Key(int64_t{5}), Key(int64_t{5}));
  EXPECT_NE(Key(int64_t{5}).Hash(), Key(int64_t{6}).Hash());
}

TEST(KeyTest, HashIsStableAndSpreads) {
  std::unordered_set<uint64_t> hashes;
  for (int64_t i = 0; i < 10000; ++i) hashes.insert(Key(i).Hash());
  EXPECT_EQ(hashes.size(), 10000u);  // splitmix64 is injective on 64 bits
  EXPECT_EQ(Key(int64_t{123}).Hash(), Key(int64_t{123}).Hash());
}

TEST(KeyTest, NegativeZeroHashesLikeZero) {
  EXPECT_EQ(Key(-0.0).Hash(), Key(0.0).Hash());
  EXPECT_EQ(Key(-0.0), Key(0.0));
}

TEST(CompositeKeyTest, LexicographicOrder) {
  CompositeKey a{Key(int64_t{1}), Key(int64_t{5})};
  CompositeKey b{Key(int64_t{1}), Key(int64_t{6})};
  CompositeKey c{Key(int64_t{2})};
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_LT(b, c);
}

TEST(CompositeKeyTest, PrefixIsLess) {
  CompositeKey prefix{Key(int64_t{1})};
  CompositeKey full{Key(int64_t{1}), Key(int64_t{0})};
  EXPECT_LT(prefix, full);
}

TEST(CompositeKeyTest, EqualityRequiresSameArity) {
  CompositeKey a{Key(int64_t{1})};
  CompositeKey b{Key(int64_t{1}), Key(int64_t{1})};
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a == CompositeKey{Key(int64_t{1})});
}

TEST(CompositeKeyTest, HashMatchesEquality) {
  CompositeKey a{Key(int64_t{3}), Key(2.0)};
  CompositeKey b{Key(int64_t{3}), Key(2.0)};
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(double(hits) / 100000.0, 0.3, 0.01);
}

TEST(StringPoolTest, InternIsIdempotent) {
  StringPool pool;
  const int64_t a = pool.Intern("boston");
  const int64_t b = pool.Intern("springfield");
  EXPECT_EQ(pool.Intern("boston"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Get(a), "boston");
  EXPECT_EQ(pool.size(), 2u);
}

TEST(StringPoolTest, FindMissingReturnsMinusOne) {
  StringPool pool;
  EXPECT_EQ(pool.Find("nope"), -1);
  pool.Intern("yes");
  EXPECT_EQ(pool.Find("yes"), 0);
}

TEST(StringPoolTest, CodesAreDense) {
  StringPool pool;
  for (int i = 0; i < 100; ++i) {
    std::string s = "s";
    s += std::to_string(i);
    EXPECT_EQ(pool.Intern(s), i);
  }
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp({"name", "value"});
  tp.AddRow({"a", "1"});
  tp.AddRow({"longer", "22"});
  const std::string out = tp.ToString();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(TablePrinterTest, FmtHelpers) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::FmtBytes(512), "512 B");
  EXPECT_EQ(TablePrinter::FmtBytes(2 * 1024 * 1024), "2.00 MB");
}

TEST(Mix64Test, AvalanchesLowBits) {
  // Consecutive inputs should not produce consecutive outputs.
  EXPECT_NE(Mix64(1) + 1, Mix64(2));
  EXPECT_NE(Mix64(0), 0u);
}

}  // namespace
}  // namespace corrmap
