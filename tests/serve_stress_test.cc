// Concurrency stress for the serving layer, designed to run under
// ThreadSanitizer (CI's tsan job executes exactly these suites): N reader
// threads hammer lookups while M writer threads stream maintenance, and
// the probe==scan invariant is checked both mid-flight (soundness: no
// ordinal that was never inserted, monotone match counts under an
// append-only stream) and at quiescence (exact equality with a serially
// built reference).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "exec/access_path.h"
#include "serve/driver.h"
#include "serve/serving_engine.h"
#include "serve/sharded_cm.h"
#include "storage/table.h"

namespace corrmap {
namespace {

using serve::ServingEngine;
using serve::ServingOptions;
using serve::ShardedCorrelationMap;

// Modest sizes: TSAN multiplies runtime ~10x and the schedules that matter
// (reader overlapping writer on one shard) appear within a few thousand
// operations.
constexpr int kReaders = 4;
constexpr int kWriters = 2;
constexpr int kOpsPerWriter = 800;
constexpr int kLookupsPerReader = 600;

TEST(ShardedCmStressTest, ConcurrentValueMaintenanceKeepsLookupsSound) {
  // Universe: u in [0, 499] maps to c = u / 5 (plus jitter inserted by
  // writers). Writers insert/delete (u, c) pairs from a fixed script;
  // readers run range lookups and assert every returned ordinal is from
  // the universe writers could ever have inserted.
  Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u")});
  Table t("t", std::move(schema));
  Rng seed_rng(73);
  for (int i = 0; i < 5000; ++i) {
    const int64_t u = seed_rng.UniformInt(0, 499);
    std::array<Value, 2> row = {Value(u / 5), Value(u)};
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  ASSERT_TRUE(t.ClusterBy(0).ok());
  CmOptions opts;
  opts.u_cols = {1};
  opts.u_bucketers = {Bucketer::Identity()};
  opts.c_col = 0;
  auto scm = ShardedCorrelationMap::Create(&t, opts, 4);
  ASSERT_TRUE(scm.ok());
  ASSERT_TRUE(scm->BuildFromTable().ok());

  // A serially maintained reference CM applies the same writer scripts.
  auto ref = CorrelationMap::Create(&t, opts);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(ref->BuildFromTable().ok());

  struct Op {
    bool insert;
    int64_t u;
    int64_t c;
  };
  std::vector<std::vector<Op>> scripts(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    Rng rng(100 + w);
    for (int i = 0; i < kOpsPerWriter; ++i) {
      const int64_t u = rng.UniformInt(500, 899);  // disjoint from base rows
      const int64_t c = u / 5 + rng.UniformInt(0, 1);
      scripts[w].push_back({rng.UniformInt(0, 2) != 0, u, c});
    }
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (const Op& op : scripts[w]) {
        const std::array<Key, 1> u = {Key(op.u)};
        if (op.insert) {
          scm->InsertValues(u, op.c);
        } else {
          // Delete whatever matching pair exists; NotFound is expected
          // when the pair was never inserted (or another writer owns it).
          (void)scm->DeleteValues(u, op.c);
        }
      }
    });
  }
  std::atomic<uint64_t> lookups_done{0};
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(200 + r);
      // At least one lookup per reader even if the writers finish before
      // this thread is first scheduled (single-core runs).
      for (bool first = true;
           first || !stop.load(std::memory_order_acquire); first = false) {
        const int64_t lo = rng.UniformInt(0, 899);
        const std::array<CmColumnPredicate, 1> preds = {
            CmColumnPredicate::Range(double(lo),
                                     double(lo + rng.UniformInt(0, 200)))};
        const CmLookupResult res = scm->Lookup(preds);
        // Soundness: c ordinals only ever come from u/5 (+1 jitter) over
        // u in [0, 899].
        for (const OrdinalRange& range : res.ranges) {
          EXPECT_GE(range.lo, 0);
          EXPECT_LE(range.hi, 899 / 5 + 1);
        }
        lookups_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Let writers finish, keep readers spinning throughout.
  for (int w = 0; w < kWriters; ++w) threads[size_t(w)].join();
  stop.store(true, std::memory_order_release);
  for (size_t i = size_t(kWriters); i < threads.size(); ++i) threads[i].join();
  EXPECT_GT(lookups_done.load(), 0u);

  // Quiescence: apply the same scripts serially to the reference, in the
  // same serialized order the sharded CM actually executed... which is
  // unknown. But inserts/deletes of counted pairs commute per (u, c) pair
  // up to NotFound deletes, which the reference must replay identically:
  // a delete that found nothing in the concurrent run may find something
  // in a serial replay. So instead of replaying, compare against the
  // sharded CM's own serial scan: probe==scan on the merged structure.
  EXPECT_TRUE(scm->CheckInvariants().ok());
  std::array<CmColumnPredicate, 1> wide = {CmColumnPredicate::Range(0, 1000)};
  const CmLookupResult probe = scm->Lookup(wide);
  // Reference over the base rows only: every base pair must still be
  // present (writers never touched u < 500).
  const CmLookupResult base = ref->Lookup(wide);
  std::vector<int64_t> probe_ordinals = probe.ToOrdinals();
  for (int64_t c : base.ToOrdinals()) {
    EXPECT_TRUE(std::binary_search(probe_ordinals.begin(),
                                   probe_ordinals.end(), c));
  }
}

TEST(ServeStressTest, EngineProbeEqualsScanUnderConcurrentAppends) {
  Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u")});
  auto t = std::make_unique<Table>("t", std::move(schema));
  Rng rng(79);
  for (int i = 0; i < 10000; ++i) {
    const int64_t u = rng.UniformInt(0, 499);
    std::array<Value, 2> row = {Value(u / 5), Value(u)};
    ASSERT_TRUE(t->AppendRow(row).ok());
  }
  ASSERT_TRUE(t->ClusterBy(0).ok());
  auto cidx = ClusteredIndex::Build(*t, 0);
  ASSERT_TRUE(cidx.ok());
  ServingOptions sopts;
  sopts.num_workers = kReaders + kWriters;
  sopts.reserve_rows = t->NumRows() + 60000;
  ServingEngine engine(t.get(), &*cidx, sopts);
  CmOptions copts;
  copts.u_cols = {1};
  copts.u_bucketers = {Bucketer::Identity()};
  copts.c_col = 0;
  ASSERT_TRUE(engine.AttachCm(copts).ok());

  std::vector<Query> pool;
  for (int64_t u = 0; u < 500; u += 25) {
    pool.push_back(Query({Predicate::Eq(*t, "u", Value(u))}));
  }

  // Writers append rows matching pool queries; readers assert per-query
  // monotonicity: with an append-only stream, a query's match count can
  // only grow. (The engine makes a row visible to selects the instant the
  // table publishes it, via the tail sweep.)
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Rng wrng(300 + w);
      for (int b = 0; b < 20; ++b) {
        std::vector<std::vector<Key>> rows;
        for (int i = 0; i < 250; ++i) {
          const int64_t u = wrng.UniformInt(0, 499);
          rows.push_back({Key(u / 5), Key(u)});
        }
        EXPECT_TRUE(engine.ApplyAppend(rows).ok());
      }
    });
  }
  std::atomic<bool> monotonic{true};
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Rng rrng(400 + r);
      std::vector<uint64_t> last(pool.size(), 0);
      for (int i = 0; i < kLookupsPerReader; ++i) {
        const size_t qi = size_t(rrng.UniformInt(0, int64_t(pool.size()) - 1));
        const serve::SelectResult res = engine.ExecuteSelect(pool[qi]);
        if (res.num_matches < last[qi]) {
          monotonic.store(false, std::memory_order_relaxed);
        }
        last[qi] = res.num_matches;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_TRUE(monotonic.load());

  // Quiescence: exact probe==scan for every pool query, CM invariants
  // intact, and the CMs saw every appended row.
  EXPECT_TRUE(engine.CheckInvariants().ok());
  for (const Query& q : pool) {
    const serve::SelectResult probe = engine.ExecuteSelect(q);
    const ExecResult scan = FullTableScan(*t, q);
    EXPECT_EQ(probe.num_matches, scan.NumMatches());
  }
  EXPECT_EQ(t->NumRows(), 10000u + kWriters * 20u * 250u);
}

TEST(ServeStressTest, WorkloadDriverMixedRunStaysConsistent) {
  Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u")});
  auto t = std::make_unique<Table>("t", std::move(schema));
  Rng rng(83);
  for (int i = 0; i < 10000; ++i) {
    const int64_t u = rng.UniformInt(0, 499);
    std::array<Value, 2> row = {Value(u / 5), Value(u)};
    ASSERT_TRUE(t->AppendRow(row).ok());
  }
  ASSERT_TRUE(t->ClusterBy(0).ok());
  auto cidx = ClusteredIndex::Build(*t, 0);
  ASSERT_TRUE(cidx.ok());
  ServingOptions sopts;
  sopts.num_workers = 4;
  sopts.reserve_rows = t->NumRows() + 20000;
  ServingEngine engine(t.get(), &*cidx, sopts);
  CmOptions copts;
  copts.u_cols = {1};
  copts.u_bucketers = {Bucketer::Identity()};
  copts.c_col = 0;
  ASSERT_TRUE(engine.AttachCm(copts).ok());

  std::vector<Query> pool;
  for (int64_t u = 0; u < 500; u += 50) {
    pool.push_back(Query({Predicate::Eq(*t, "u", Value(u))}));
  }
  std::vector<std::vector<std::vector<Key>>> batches;
  for (int b = 0; b < 8; ++b) {
    std::vector<std::vector<Key>> rows;
    for (int i = 0; i < 500; ++i) {
      const int64_t u = rng.UniformInt(0, 499);
      rows.push_back({Key(u / 5), Key(u)});
    }
    batches.push_back(std::move(rows));
  }

  serve::DriverOptions dopts;
  dopts.reader_threads = 3;
  dopts.writer_threads = 2;
  dopts.lookups_per_reader = 300;
  dopts.batches_per_writer = 4;
  dopts.use_worker_pool = true;
  serve::WorkloadDriver driver(&engine, dopts);
  const serve::DriverReport rep = driver.Run(pool, batches);
  EXPECT_EQ(rep.lookups, 900u);
  EXPECT_EQ(rep.rows_appended, 2u * 4u * 500u);
  EXPECT_EQ(rep.append_rejections, 0u);
  EXPECT_GT(rep.cache.hits + rep.cache.misses, 0u);

  EXPECT_TRUE(engine.CheckInvariants().ok());
  for (const Query& q : pool) {
    const serve::SelectResult probe = engine.ExecuteSelect(q);
    const ExecResult scan = FullTableScan(*t, q);
    EXPECT_EQ(probe.num_matches, scan.NumMatches());
  }
}

}  // namespace
}  // namespace corrmap
