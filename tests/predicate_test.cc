// Unit tests for predicates and conjunctive queries.
#include <gtest/gtest.h>

#include <array>

#include "common/rng.h"
#include "exec/predicate.h"
#include "storage/table.h"

namespace corrmap {
namespace {

std::unique_ptr<Table> MixedTable() {
  Schema schema({ColumnDef::Int64("k"), ColumnDef::String("s", 8),
                 ColumnDef::Double("d")});
  auto t = std::make_unique<Table>("t", std::move(schema));
  for (int64_t i = 0; i < 100; ++i) {
    std::array<Value, 3> row = {Value(i), Value(i % 2 ? "odd" : "even"),
                                Value(double(i) / 2.0)};
    EXPECT_TRUE(t->AppendRow(row).ok());
  }
  return t;
}

TEST(PredicateTest, EqInt) {
  auto t = MixedTable();
  Predicate p = Predicate::Eq(*t, "k", Value(5));
  EXPECT_TRUE(p.Matches(*t, 5));
  EXPECT_FALSE(p.Matches(*t, 6));
  EXPECT_EQ(p.NumPoints(), 1u);
}

TEST(PredicateTest, EqStringUsesDictionary) {
  auto t = MixedTable();
  Predicate p = Predicate::Eq(*t, "s", Value("odd"));
  EXPECT_TRUE(p.Matches(*t, 1));
  EXPECT_FALSE(p.Matches(*t, 2));
}

TEST(PredicateTest, EqUnknownStringMatchesNothing) {
  auto t = MixedTable();
  Predicate p = Predicate::Eq(*t, "s", Value("nope"));
  for (RowId r = 0; r < t->NumRows(); ++r) EXPECT_FALSE(p.Matches(*t, r));
}

TEST(PredicateTest, InDeduplicates) {
  auto t = MixedTable();
  Predicate p = Predicate::In(*t, "k", {Value(3), Value(7), Value(3)});
  EXPECT_EQ(p.NumPoints(), 2u);
  EXPECT_TRUE(p.Matches(*t, 3));
  EXPECT_TRUE(p.Matches(*t, 7));
  EXPECT_FALSE(p.Matches(*t, 4));
}

TEST(PredicateTest, BetweenInclusive) {
  auto t = MixedTable();
  Predicate p = Predicate::Between(*t, "d", Value(2.0), Value(3.0));
  EXPECT_TRUE(p.Matches(*t, 4));   // d = 2.0
  EXPECT_TRUE(p.Matches(*t, 6));   // d = 3.0
  EXPECT_FALSE(p.Matches(*t, 7));  // d = 3.5
  EXPECT_EQ(p.NumPoints(), 0u);
}

TEST(PredicateTest, OpenEndedRanges) {
  auto t = MixedTable();
  Predicate le = Predicate::Le(*t, "k", Value(10));
  Predicate ge = Predicate::Ge(*t, "k", Value(90));
  EXPECT_TRUE(le.Matches(*t, 10));
  EXPECT_FALSE(le.Matches(*t, 11));
  EXPECT_TRUE(ge.Matches(*t, 99));
  EXPECT_FALSE(ge.Matches(*t, 89));
}

TEST(PredicateTest, ToStringRendersSql) {
  auto t = MixedTable();
  EXPECT_EQ(Predicate::Eq(*t, "k", Value(5)).ToString(*t), "k = 5");
  const std::string in = Predicate::In(*t, "k", {Value(1), Value(2)}).ToString(*t);
  EXPECT_EQ(in, "k IN (1, 2)");
}

TEST(QueryTest, ConjunctionSemantics) {
  auto t = MixedTable();
  Query q({Predicate::Between(*t, "k", Value(10), Value(20)),
           Predicate::Eq(*t, "s", Value("even"))});
  size_t matches = 0;
  for (RowId r = 0; r < t->NumRows(); ++r) matches += q.Matches(*t, r);
  EXPECT_EQ(matches, 6u);  // 10,12,14,16,18,20
}

TEST(QueryTest, EmptyQueryMatchesAll) {
  auto t = MixedTable();
  Query q;
  EXPECT_DOUBLE_EQ(q.ExactSelectivity(*t), 1.0);
}

TEST(QueryTest, PredicatedColumnsDeduplicated) {
  auto t = MixedTable();
  Query q({Predicate::Ge(*t, "k", Value(1)), Predicate::Le(*t, "k", Value(5)),
           Predicate::Eq(*t, "s", Value("odd"))});
  EXPECT_EQ(q.PredicatedColumns(), (std::vector<size_t>{0, 1}));
}

TEST(QueryTest, SelectivityEstimateTracksExact) {
  Schema schema({ColumnDef::Int64("k")});
  Table t("t", std::move(schema));
  Rng rng(5);
  for (int i = 0; i < 50000; ++i) {
    std::array<Value, 1> row = {Value(rng.UniformInt(0, 999))};
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  Query q({Predicate::Between(t, "k", Value(0), Value(99))});
  RowSample sample = RowSample::Collect(t, 5000);
  EXPECT_NEAR(q.EstimateSelectivity(t, sample), q.ExactSelectivity(t), 0.02);
}

}  // namespace
}  // namespace corrmap
