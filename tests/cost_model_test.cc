// Unit tests for the §3/§4 cost model: formula values, the min-cap against
// a full scan, and monotonicity properties the optimizer relies on.
#include <gtest/gtest.h>

#include "core/cost_model.h"

namespace corrmap {
namespace {

CostInputs BaseInputs() {
  CostInputs in;
  in.tups_per_page = 60;
  in.total_tups = 1'800'000;
  in.btree_height = 3;
  in.n_lookups = 1;
  in.u_tups = 700;
  in.c_tups = 700;
  in.c_per_u = 7;
  return in;
}

TEST(CostInputsTest, DerivedQuantities) {
  CostInputs in = BaseInputs();
  EXPECT_DOUBLE_EQ(in.TotalPages(), 30000.0);
  EXPECT_NEAR(in.CPages(), 700.0 / 60.0, 1e-9);
}

TEST(CostModelTest, ScanCostFormula) {
  CostModel m;
  CostInputs in = BaseInputs();
  // cost_scan = seq_page_cost * p = 0.078 * 30000.
  EXPECT_DOUBLE_EQ(m.ScanCost(in), 0.078 * 30000.0);
}

TEST(CostModelTest, PipelinedCostFormula) {
  CostModel m;
  CostInputs in = BaseInputs();
  in.n_lookups = 2;
  // n * u_tups * seek * height = 2 * 700 * 5.5 * 3.
  EXPECT_DOUBLE_EQ(m.PipelinedCost(in), 2 * 700 * 5.5 * 3);
}

TEST(CostModelTest, SortedCostFormula) {
  CostModel m;
  CostInputs in = BaseInputs();
  const double per_lookup = 7.0 * (5.5 * 3 + 0.078 * (700.0 / 60.0));
  EXPECT_DOUBLE_EQ(m.SortedCost(in), per_lookup);
}

TEST(CostModelTest, SortedCostCappedAtScan) {
  CostModel m;
  CostInputs in = BaseInputs();
  in.n_lookups = 100000;  // absurdly many lookups
  EXPECT_DOUBLE_EQ(m.SortedCost(in), m.ScanCost(in));
}

TEST(CostModelTest, SortedCostMonotoneInNLookups) {
  CostModel m;
  CostInputs in = BaseInputs();
  double prev = 0;
  for (double n = 1; n <= 128; n *= 2) {
    in.n_lookups = n;
    const double c = m.SortedCost(in);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(CostModelTest, SortedCostMonotoneInCPerU) {
  CostModel m;
  CostInputs in = BaseInputs();
  double prev = 0;
  for (double cpu = 1; cpu <= 64; cpu *= 2) {
    in.c_per_u = cpu;
    const double c = m.SortedCost(in);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(CostModelTest, StrongCorrelationBeatsWeak) {
  // The paper's core claim: small c_per_u (strong soft FD) makes a
  // secondary access far cheaper than a scan; large c_per_u approaches it.
  CostModel m;
  CostInputs strong = BaseInputs();
  strong.c_per_u = 1.2;
  CostInputs weak = BaseInputs();
  weak.c_per_u = 2000;
  EXPECT_LT(m.SortedCost(strong) * 10, m.ScanCost(strong));
  EXPECT_DOUBLE_EQ(m.SortedCost(weak), m.ScanCost(weak));
}

TEST(CostModelTest, CmCostAddsUncachedMapRead) {
  CostModel m;
  CostInputs in = BaseInputs();
  const double cached = m.CmCost(in, /*cm_pages=*/100, /*cm_cached=*/true);
  const double uncached = m.CmCost(in, /*cm_pages=*/100, /*cm_cached=*/false);
  EXPECT_DOUBLE_EQ(cached, m.SortedCost(in));
  EXPECT_DOUBLE_EQ(uncached, cached + 5.5 + 0.078 * 100);
}

TEST(CostModelTest, UncachedProbeChargesOnlyItsRun) {
  // Range-probe term: an uncached directory probe reads min(probed, all)
  // pages of the CM, not the whole map.
  CostModel m;
  CostInputs in = BaseInputs();
  const double probed =
      m.CmCost(in, /*cm_pages=*/100, /*cm_cached=*/false, /*probed_pages=*/3);
  const double full = m.CmCost(in, /*cm_pages=*/100, /*cm_cached=*/false);
  EXPECT_DOUBLE_EQ(probed, m.SortedCost(in) + 5.5 + 0.078 * 3);
  EXPECT_DOUBLE_EQ(full, m.SortedCost(in) + 5.5 + 0.078 * 100);
  EXPECT_LT(probed, full);
}

TEST(CostModelTest, LookupProbeCostBeatsScanCostForNarrowRuns) {
  CostModel m;
  // 1e6 u-keys, 100-entry run: the directory probe term must be orders of
  // magnitude below the replaced full-scan term, and both grow monotonely.
  EXPECT_LT(m.CmLookupProbeCost(1e6, 100) * 100, m.CmLookupScanCost(1e6));
  EXPECT_LT(m.CmLookupProbeCost(1e6, 100), m.CmLookupProbeCost(1e6, 1e5));
  // A probe that touches everything degenerates to ~the scan term.
  EXPECT_GE(m.CmLookupProbeCost(1e6, 1e6), m.CmLookupScanCost(1e6));
}

TEST(CostModelTest, CustomDiskConstants) {
  CostModel m(DiskModel(/*seek_ms=*/10.0, /*seq_page_ms=*/0.1));
  CostInputs in = BaseInputs();
  EXPECT_DOUBLE_EQ(m.ScanCost(in), 0.1 * 30000.0);
  in.n_lookups = 1;
  EXPECT_DOUBLE_EQ(m.PipelinedCost(in), 700 * 10.0 * 3);
}

// ---------------------------------------------------------------------
// Buffer-pool residency calibration (the Fig. 9 over-pricing fix): the
// effective page/seek costs blend device and CPU cost by hit rate, the
// clustered/sorted access cost falls monotonically with residency, and
// the in-RAM CM lookup terms are unaffected.
// ---------------------------------------------------------------------

TEST(CostModelCalibrationTest, EffectiveCostsBlendGolden) {
  CostModel m;
  // residency 0.0: exactly the paper's device constants.
  EXPECT_DOUBLE_EQ(m.EffectiveSeqPageMs(0.0), 0.078);
  EXPECT_DOUBLE_EQ(m.EffectiveSeekMs(0.0), 5.5);
  // residency 1.0: pure CPU cost.
  EXPECT_DOUBLE_EQ(m.EffectiveSeqPageMs(1.0), CostModel::kResidentPageMs);
  EXPECT_DOUBLE_EQ(m.EffectiveSeekMs(1.0), CostModel::kResidentSeekMs);
  // residency 0.5: the midpoint blend.
  EXPECT_DOUBLE_EQ(m.EffectiveSeqPageMs(0.5),
                   0.5 * 0.078 + 0.5 * CostModel::kResidentPageMs);
  EXPECT_DOUBLE_EQ(m.EffectiveSeekMs(0.5),
                   0.5 * 5.5 + 0.5 * CostModel::kResidentSeekMs);
  // Out-of-range inputs clamp instead of extrapolating.
  EXPECT_DOUBLE_EQ(m.EffectiveSeqPageMs(-3.0), m.EffectiveSeqPageMs(0.0));
  EXPECT_DOUBLE_EQ(m.EffectiveSeqPageMs(7.0), m.EffectiveSeqPageMs(1.0));
}

TEST(CostModelCalibrationTest, ScanCostGoldenAcrossResidency) {
  CostModel m;
  CostInputs in = BaseInputs();  // 30000 pages
  in.heap_residency = 0.0;
  EXPECT_DOUBLE_EQ(m.ScanCost(in), 0.078 * 30000.0);
  in.heap_residency = 0.5;
  EXPECT_DOUBLE_EQ(m.ScanCost(in),
                   (0.5 * 0.078 + 0.5 * CostModel::kResidentPageMs) * 30000.0);
  in.heap_residency = 1.0;
  EXPECT_DOUBLE_EQ(m.ScanCost(in), CostModel::kResidentPageMs * 30000.0);
}

TEST(CostModelCalibrationTest, SortedCostGoldenAndMonotoneInHitRate) {
  // The clustered-range access shape (descend, sweep c_pages): cost must
  // fall strictly and monotonically as the buffer pool warms -- the
  // regression guard for the over-pricing of hot clustered ranges.
  CostModel m;
  CostInputs in = BaseInputs();
  const auto sorted_at = [&](double heap_r, double index_r) {
    CostInputs x = in;
    x.heap_residency = heap_r;
    x.index_residency = index_r;
    return m.SortedCost(x);
  };
  // Golden values at the three calibration points.
  EXPECT_DOUBLE_EQ(sorted_at(0.0, 0.0),
                   7.0 * (5.5 * 3 + 0.078 * (700.0 / 60.0)));
  EXPECT_DOUBLE_EQ(
      sorted_at(0.5, 0.5),
      7.0 * ((0.5 * 5.5 + 0.5 * CostModel::kResidentSeekMs) * 3 +
             (0.5 * 0.078 + 0.5 * CostModel::kResidentPageMs) *
                 (700.0 / 60.0)));
  EXPECT_DOUBLE_EQ(sorted_at(1.0, 1.0),
                   7.0 * (CostModel::kResidentSeekMs * 3 +
                          CostModel::kResidentPageMs * (700.0 / 60.0)));
  // Monotone decline in each residency axis independently.
  double prev = sorted_at(0.0, 0.0);
  for (double r = 0.25; r <= 1.0; r += 0.25) {
    const double c = sorted_at(r, 0.0);
    EXPECT_LT(c, prev);
    prev = c;
  }
  prev = sorted_at(0.0, 0.0);
  for (double r = 0.25; r <= 1.0; r += 0.25) {
    const double c = sorted_at(0.0, r);
    EXPECT_LT(c, prev);
    prev = c;
  }
  // Fully hot is priced near CPU: orders of magnitude below cold.
  EXPECT_LT(sorted_at(1.0, 1.0) * 1000, sorted_at(0.0, 0.0));
}

TEST(CostModelCalibrationTest, CmLookupTermsUnaffectedByResidency) {
  // The cm_lookup probe/scan terms model in-RAM work; no residency input
  // exists and CmCost's residency sensitivity comes only from its heap
  // access (SortedCost) component -- the uncached map-read surcharge is
  // residency-invariant.
  CostModel m;
  CostInputs cold = BaseInputs();
  CostInputs hot = BaseInputs();
  hot.heap_residency = 1.0;
  hot.index_residency = 1.0;
  const double cold_surcharge =
      m.CmCost(cold, /*cm_pages=*/100, /*cm_cached=*/false) -
      m.SortedCost(cold);
  const double hot_surcharge =
      m.CmCost(hot, /*cm_pages=*/100, /*cm_cached=*/false) -
      m.SortedCost(hot);
  EXPECT_NEAR(cold_surcharge, hot_surcharge, 1e-9);
  EXPECT_NEAR(cold_surcharge, 5.5 + 0.078 * 100, 1e-9);
}

TEST(CostModelCalibrationTest, DefaultInputsReproduceHistoricalCosts) {
  // Residency defaults to 0 everywhere: code that never heard of the
  // calibration keeps computing the exact pre-calibration numbers.
  CostModel m;
  CostInputs in = BaseInputs();
  EXPECT_DOUBLE_EQ(in.heap_residency, 0.0);
  EXPECT_DOUBLE_EQ(in.index_residency, 0.0);
  EXPECT_DOUBLE_EQ(m.ScanCost(in), 0.078 * 30000.0);
  EXPECT_DOUBLE_EQ(m.PipelinedCost(in), 700 * 5.5 * 3);
  EXPECT_DOUBLE_EQ(m.SortedCost(in),
                   7.0 * (5.5 * 3 + 0.078 * (700.0 / 60.0)));
}

TEST(CostModelTest, FewValuedClusteredAttributeIsPoorTarget) {
  // §4.1's second key fact: tiny c_per_u from a few-valued clustered
  // attribute (e.g. gender) still costs ~half a scan because c_pages is
  // huge.
  CostModel m;
  CostInputs in = BaseInputs();
  in.c_per_u = 1;                       // perfectly predicted...
  in.c_tups = in.total_tups / 2;        // ...but only 2 clustered values
  EXPECT_GT(m.SortedCost(in), 0.4 * m.ScanCost(in));
}

}  // namespace
}  // namespace corrmap
