// Unit tests for the clustered sparse index and the secondary index wrapper.
#include <gtest/gtest.h>

#include <array>

#include "index/clustered_index.h"
#include "index/secondary_index.h"
#include "storage/table.h"

namespace corrmap {
namespace {

/// Small city/state table (the paper's §5 running example).
std::unique_ptr<Table> CityTable() {
  Schema schema({ColumnDef::String("state", 2), ColumnDef::String("city", 16),
                 ColumnDef::Double("salary")});
  auto t = std::make_unique<Table>("people", std::move(schema));
  const std::array<std::array<const char*, 2>, 10> rows = {{
      {"MA", "Boston"}, {"NH", "Manchester"}, {"MA", "Boston"},
      {"MA", "Boston"}, {"MS", "Jackson"}, {"NH", "Boston"},
      {"MA", "Springfield"}, {"NH", "Manchester"}, {"OH", "Springfield"},
      {"OH", "Toledo"},
  }};
  for (size_t i = 0; i < rows.size(); ++i) {
    std::array<Value, 3> row = {Value(rows[i][0]), Value(rows[i][1]),
                                Value(double(i) * 10.0)};
    EXPECT_TRUE(t->AppendRow(row).ok());
  }
  EXPECT_TRUE(t->ClusterBy(0).ok());
  return t;
}

TEST(ClusteredIndexTest, RequiresClusteredTable) {
  Schema schema({ColumnDef::Int64("a"), ColumnDef::Int64("b")});
  Table t("t", std::move(schema));
  EXPECT_FALSE(ClusteredIndex::Build(t, 0).ok());
}

TEST(ClusteredIndexTest, LookupEqualFindsContiguousRange) {
  auto t = CityTable();
  auto idx = ClusteredIndex::Build(*t, 0);
  ASSERT_TRUE(idx.ok());
  const Key ma = t->column(0).EncodeKey(Value("MA"));
  RowRange range = idx->LookupEqual(ma);
  EXPECT_EQ(range.size(), 4u);  // 4 MA rows
  for (RowId r = range.begin; r < range.end; ++r) {
    EXPECT_EQ(t->GetValue(r, 0), Value("MA"));
  }
}

TEST(ClusteredIndexTest, LookupMissingIsEmpty) {
  auto t = CityTable();
  auto idx = ClusteredIndex::Build(*t, 0);
  ASSERT_TRUE(idx.ok());
  EXPECT_TRUE(idx->LookupEqual(Key(int64_t{-1})).empty());
}

TEST(ClusteredIndexTest, StatsMatchDefinition) {
  auto t = CityTable();
  auto idx = ClusteredIndex::Build(*t, 0);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->NumDistinctKeys(), 4u);  // MA, NH, MS, OH
  EXPECT_DOUBLE_EQ(idx->CTups(), 10.0 / 4.0);
  EXPECT_GE(idx->BTreeHeight(), 1u);
}

TEST(ClusteredIndexTest, RangeLookupOnInts) {
  Schema schema({ColumnDef::Int64("k")});
  Table t("t", std::move(schema));
  for (int64_t i = 0; i < 100; ++i) {
    std::array<Value, 1> row = {Value(i / 10)};  // keys 0..9, 10 rows each
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  ASSERT_TRUE(t.ClusterBy(0).ok());
  auto idx = ClusteredIndex::Build(t, 0);
  ASSERT_TRUE(idx.ok());
  RowRange range = idx->LookupRange(Key(int64_t{3}), Key(int64_t{5}));
  EXPECT_EQ(range.size(), 30u);
  EXPECT_EQ(idx->LookupRange(Key(int64_t{100}), Key(int64_t{200})).size(), 0u);
  // Range covering everything.
  EXPECT_EQ(idx->LookupRange(Key(int64_t{0}), Key(int64_t{9})).size(), 100u);
}

TEST(SecondaryIndexTest, BuildAndLookup) {
  auto t = CityTable();
  auto r = t->ColumnIndex("city");
  ASSERT_TRUE(r.ok());
  SecondaryIndex idx(t.get(), {*r});
  ASSERT_TRUE(idx.BuildFromTable().ok());
  EXPECT_EQ(idx.NumEntries(), 10u);
  const Key boston = t->column(*r).EncodeKey(Value("Boston"));
  auto rids = idx.LookupEqual(CompositeKey(boston));
  EXPECT_EQ(rids.size(), 4u);  // 3 in MA + 1 in NH
  for (RowId rid : rids) EXPECT_EQ(t->GetValue(rid, *r), Value("Boston"));
}

TEST(SecondaryIndexTest, MaintenanceInsertDelete) {
  auto t = CityTable();
  SecondaryIndex idx(t.get(), {1});
  ASSERT_TRUE(idx.BuildFromTable().ok());
  const size_t before = idx.NumEntries();
  ASSERT_TRUE(idx.DeleteRow(0).ok());
  EXPECT_EQ(idx.NumEntries(), before - 1);
  ASSERT_TRUE(idx.InsertRow(0).ok());
  EXPECT_EQ(idx.NumEntries(), before);
}

TEST(SecondaryIndexTest, CompositeKeyPrefixRange) {
  Schema schema({ColumnDef::Int64("a"), ColumnDef::Int64("b")});
  Table t("t", std::move(schema));
  for (int64_t a = 0; a < 5; ++a) {
    for (int64_t b = 0; b < 5; ++b) {
      std::array<Value, 2> row = {Value(a), Value(b)};
      ASSERT_TRUE(t.AppendRow(row).ok());
    }
  }
  SecondaryIndex idx(&t, {0, 1});
  ASSERT_TRUE(idx.BuildFromTable().ok());
  // Prefix range on `a` only: the composite B+Tree's usable restriction.
  auto rids = idx.LookupRange(CompositeKey(Key(int64_t{2})),
                              CompositeKey(Key(int64_t{3})));
  EXPECT_EQ(rids.size(), 10u);
}

TEST(SecondaryIndexTest, EntryBytesScaleWithKeyWidth) {
  Schema schema({ColumnDef::Int64("a"), ColumnDef::Int64("b")});
  Table t("t", std::move(schema));
  SecondaryIndex one(&t, {0});
  SecondaryIndex two(&t, {0, 1});
  EXPECT_LT(one.tree().options().entry_bytes, two.tree().options().entry_bytes);
}

TEST(SecondaryIndexTest, NameIncludesColumns) {
  auto t = CityTable();
  SecondaryIndex idx(t.get(), {1});
  EXPECT_EQ(idx.Name(), "idx_people_city");
}

TEST(SecondaryIndexTest, SkipsDeletedRowsOnBuild) {
  auto t = CityTable();
  ASSERT_TRUE(t->DeleteRow(3).ok());
  SecondaryIndex idx(t.get(), {1});
  ASSERT_TRUE(idx.BuildFromTable().ok());
  EXPECT_EQ(idx.NumEntries(), 9u);
}

}  // namespace
}  // namespace corrmap
