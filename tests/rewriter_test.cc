// Tests for predicate introduction (§5.2 / §7.1): the rewritten query must
// add the CM-implied clustered restriction, render readable SQL, and agree
// with direct execution.
#include <gtest/gtest.h>

#include <array>

#include "common/rng.h"
#include "core/rewriter.h"
#include "exec/access_path.h"

namespace corrmap {
namespace {

std::unique_ptr<Table> CityTable() {
  Schema schema({ColumnDef::String("state", 2), ColumnDef::String("city", 16),
                 ColumnDef::Double("salary")});
  auto t = std::make_unique<Table>("people", std::move(schema));
  const std::array<std::array<const char*, 2>, 10> rows = {{
      {"MA", "Boston"},      {"MA", "Boston"},  {"MA", "Cambridge"},
      {"MA", "Springfield"}, {"MN", "Manchester"}, {"MS", "Jackson"},
      {"NH", "Boston"},      {"NH", "Manchester"}, {"OH", "Springfield"},
      {"OH", "Toledo"},
  }};
  for (const auto& r : rows) {
    std::array<Value, 3> row = {Value(r[0]), Value(r[1]), Value(60.0)};
    EXPECT_TRUE(t->AppendRow(row).ok());
  }
  EXPECT_TRUE(t->ClusterBy(0).ok());
  return t;
}

struct CitySetup {
  std::unique_ptr<Table> table = CityTable();
  std::unique_ptr<ClusteredIndex> cidx;
  std::unique_ptr<CorrelationMap> cm;

  CitySetup() {
    auto ci = ClusteredIndex::Build(*table, 0);
    EXPECT_TRUE(ci.ok());
    cidx = std::make_unique<ClusteredIndex>(std::move(*ci));
    CmOptions opts;
    opts.u_cols = {1};
    opts.u_bucketers = {Bucketer::Identity()};
    opts.c_col = 0;
    auto m = CorrelationMap::Create(table.get(), opts);
    EXPECT_TRUE(m.ok());
    EXPECT_TRUE(m->BuildFromTable().ok());
    cm = std::make_unique<CorrelationMap>(std::move(*m));
  }
};

TEST(RewriterTest, IntroducesInClauseWithStateNames) {
  CitySetup s;
  Query q({Predicate::Eq(*s.table, "city", Value("Boston"))});
  auto rw = RewriteWithCm(*s.table, *s.cm, *s.cidx, q);
  ASSERT_TRUE(rw.ok());
  EXPECT_FALSE(rw->empty_result);
  EXPECT_NE(rw->sql.find("city = "), std::string::npos);
  EXPECT_NE(rw->sql.find("state IN ('MA', 'NH')"), std::string::npos)
      << rw->sql;
  EXPECT_EQ(rw->in_list.size(), 2u);
}

TEST(RewriterTest, UnknownCityYieldsEmptyRestriction) {
  CitySetup s;
  Query q({Predicate::Eq(*s.table, "city", Value("Atlantis"))});
  auto rw = RewriteWithCm(*s.table, *s.cm, *s.cidx, q);
  ASSERT_TRUE(rw.ok());
  EXPECT_TRUE(rw->empty_result);
  EXPECT_NE(rw->sql.find("AND FALSE"), std::string::npos);
}

TEST(RewriterTest, FailsWithoutPredicateOnCmAttribute) {
  CitySetup s;
  Query q({Predicate::Ge(*s.table, "salary", Value(10.0))});
  EXPECT_FALSE(RewriteWithCm(*s.table, *s.cm, *s.cidx, q).ok());
}

TEST(RewriterTest, RewriteAgreesWithCmScan) {
  CitySetup s;
  Query q({Predicate::In(*s.table, "city",
                         {Value("Boston"), Value("Springfield")})});
  auto rw = RewriteWithCm(*s.table, *s.cm, *s.cidx, q);
  ASSERT_TRUE(rw.ok());
  // Execute the rewritten restriction: scan the IN-list ranges and filter.
  std::vector<RowId> rewritten_rows;
  for (const Key& state : rw->in_list) {
    RowRange range = s.cidx->LookupEqual(state);
    for (RowId r = range.begin; r < range.end; ++r) {
      if (q.Matches(*s.table, r)) rewritten_rows.push_back(r);
    }
  }
  std::sort(rewritten_rows.begin(), rewritten_rows.end());
  auto direct = CmScan(*s.table, *s.cm, *s.cidx, q);
  EXPECT_EQ(rewritten_rows, direct.rows);
  auto scan = FullTableScan(*s.table, q);
  EXPECT_EQ(rewritten_rows, scan.rows);
}

TEST(RewriterTest, BucketedClusteredAttributeEmitsMergedRanges) {
  // Numeric table, clustered bucketing: rewrite must produce BETWEEN ranges
  // and merge adjacent buckets.
  Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u")});
  Table t("t", std::move(schema));
  Rng rng(67);
  for (int i = 0; i < 20000; ++i) {
    const int64_t u = rng.UniformInt(0, 999);
    std::array<Value, 2> row = {Value(u / 10), Value(u)};
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  ASSERT_TRUE(t.ClusterBy(0).ok());
  auto cidx = ClusteredIndex::Build(t, 0);
  ASSERT_TRUE(cidx.ok());
  auto cb = ClusteredBucketing::Build(t, 0, 512);
  ASSERT_TRUE(cb.ok());
  CmOptions opts;
  opts.u_cols = {1};
  opts.u_bucketers = {Bucketer::Identity()};
  opts.c_col = 0;
  opts.c_buckets = &*cb;
  auto cm = CorrelationMap::Create(&t, opts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());

  Query q({Predicate::Between(t, "u", Value(100), Value(300))});
  auto rw = RewriteWithCm(t, *cm, *cidx, q);
  ASSERT_TRUE(rw.ok());
  ASSERT_FALSE(rw->ranges.empty());
  EXPECT_NE(rw->sql.find("BETWEEN"), std::string::npos);
  // Ranges must be sorted, non-overlapping, and cover all matching rows.
  for (size_t i = 1; i < rw->ranges.size(); ++i) {
    EXPECT_LT(rw->ranges[i - 1].second, rw->ranges[i].first);
  }
  for (RowId r = 0; r < t.NumRows(); ++r) {
    if (!q.Matches(t, r)) continue;
    const Key c = t.GetKey(r, 0);
    bool covered = false;
    for (const auto& [lo, hi] : rw->ranges) {
      if (!(c < lo) && !(hi < c)) covered = true;
    }
    EXPECT_TRUE(covered) << "row " << r << " not covered by rewrite";
  }
}

}  // namespace
}  // namespace corrmap
