// Tier-1 coverage for the serving layer: ShardedCorrelationMap must agree
// lookup-for-lookup with a single CorrelationMap over the same rows (point,
// range, composite, and after value-level maintenance), SharedLookupCache
// must hit only at the exact (CM, fingerprint, epoch) and evict stale
// epochs lazily, SharedCmLookupSource must collapse a stream of identical
// Executor::Execute calls into one cm_lookup until maintenance bumps the
// epoch, and the ServingEngine's CM probe must count exactly what a full
// scan counts before and after appends into the unclustered tail.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "exec/access_path.h"
#include "exec/executor.h"
#include "index/clustered_index.h"
#include "serve/driver.h"
#include "serve/serving_engine.h"
#include "serve/shared_lookup_cache.h"
#include "serve/sharded_cm.h"
#include "storage/table.h"

namespace corrmap {
namespace {

using serve::ServingEngine;
using serve::ServingOptions;
using serve::SharedCmLookupSource;
using serve::SharedLookupCache;
using serve::ShardedCorrelationMap;

/// Correlated two-column table (c ~ u / 10) clustered on c, with one plain
/// CM and one sharded CM built over the same rows.
struct ShardedFixture {
  std::unique_ptr<Table> table;
  std::unique_ptr<CorrelationMap> plain;
  std::unique_ptr<ShardedCorrelationMap> sharded;

  explicit ShardedFixture(size_t num_shards = 4, int rows = 20000) {
    Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u")});
    table = std::make_unique<Table>("t", std::move(schema));
    Rng rng(53);
    for (int i = 0; i < rows; ++i) {
      const int64_t u = rng.UniformInt(0, 999);
      std::array<Value, 2> row = {Value(u / 10 + rng.UniformInt(0, 1)),
                                  Value(u)};
      EXPECT_TRUE(table->AppendRow(row).ok());
    }
    EXPECT_TRUE(table->ClusterBy(0).ok());
    CmOptions opts;
    opts.u_cols = {1};
    opts.u_bucketers = {Bucketer::Identity()};
    opts.c_col = 0;
    auto p = CorrelationMap::Create(table.get(), opts);
    EXPECT_TRUE(p.ok());
    EXPECT_TRUE(p->BuildFromTable().ok());
    plain = std::make_unique<CorrelationMap>(std::move(*p));
    auto s = ShardedCorrelationMap::Create(table.get(), opts, num_shards);
    EXPECT_TRUE(s.ok());
    EXPECT_TRUE(s->BuildFromTable().ok());
    sharded = std::make_unique<ShardedCorrelationMap>(std::move(*s));
  }
};

void ExpectShardedMatchesPlain(const ShardedFixture& f,
                               std::span<const CmColumnPredicate> preds) {
  const CmLookupResult merged = f.sharded->Lookup(preds);
  const CmLookupResult single = f.plain->Lookup(preds);
  EXPECT_EQ(merged.ToOrdinals(), single.ToOrdinals());
  EXPECT_EQ(merged.num_ordinals, single.num_ordinals);
}

TEST(ShardedCmTest, LookupMatchesSingleMapAcrossPredicateShapes) {
  ShardedFixture f;
  EXPECT_EQ(f.sharded->NumUKeys(), f.plain->NumUKeys());
  EXPECT_EQ(f.sharded->NumEntries(), f.plain->NumEntries());
  EXPECT_TRUE(f.sharded->CheckInvariants().ok());

  std::array<CmColumnPredicate, 1> point = {
      CmColumnPredicate::Points({Key(int64_t{123}), Key(int64_t{456})})};
  ExpectShardedMatchesPlain(f, point);
  std::array<CmColumnPredicate, 1> range = {CmColumnPredicate::Range(200, 340)};
  ExpectShardedMatchesPlain(f, range);
  std::array<CmColumnPredicate, 1> all = {CmColumnPredicate::Range(-1, 10000)};
  ExpectShardedMatchesPlain(f, all);
  std::array<CmColumnPredicate, 1> none = {
      CmColumnPredicate::Range(5000, 6000)};
  ExpectShardedMatchesPlain(f, none);
}

TEST(ShardedCmTest, MaintenanceRoutesToShardsAndStaysEquivalent) {
  ShardedFixture f;
  Rng rng(59);
  for (int i = 0; i < 500; ++i) {
    const std::array<Key, 1> u = {Key(rng.UniformInt(0, 1999))};
    const int64_t c = rng.UniformInt(0, 150);
    f.plain->InsertValues(u, c);
    f.sharded->InsertValues(u, c);
  }
  for (int i = 0; i < 200; ++i) {
    const std::array<Key, 1> u = {Key(rng.UniformInt(0, 1999))};
    const int64_t c = rng.UniformInt(0, 150);
    const Status a = f.plain->DeleteValues(u, c);
    const Status b = f.sharded->DeleteValues(u, c);
    EXPECT_EQ(a.code(), b.code());
  }
  EXPECT_TRUE(f.sharded->CheckInvariants().ok());
  EXPECT_EQ(f.sharded->NumEntries(), f.plain->NumEntries());
  std::array<CmColumnPredicate, 1> wide = {CmColumnPredicate::Range(0, 2500)};
  ExpectShardedMatchesPlain(f, wide);
}

TEST(ShardedCmTest, InsertRowsBatchedMatchesRowAtATime) {
  ShardedFixture f;
  // Append fresh rows to the table (tail; ordinals are raw keys so no
  // clustering requirement for CM maintenance).
  Rng rng(61);
  std::vector<RowId> fresh;
  for (int i = 0; i < 1000; ++i) {
    const int64_t u = rng.UniformInt(1000, 1499);
    const std::array<Key, 2> row = {Key(u / 10), Key(u)};
    fresh.push_back(RowId(f.table->NumRows()));
    f.table->AppendRowKeys(row);
  }
  for (RowId r : fresh) f.plain->InsertRow(r);
  f.sharded->InsertRowsBatched(fresh);
  EXPECT_EQ(f.sharded->NumEntries(), f.plain->NumEntries());
  std::array<CmColumnPredicate, 1> wide = {CmColumnPredicate::Range(0, 2000)};
  ExpectShardedMatchesPlain(f, wide);
  EXPECT_TRUE(f.sharded->CheckInvariants().ok());
}

TEST(ShardedCmTest, RoutedPointLookupMatchesAllShardProbe) {
  // Point lookups route each probe key to its owning shard; the result
  // must be identical to probing every shard with the full predicates
  // (the pre-routing reference path) and to the single unsharded map.
  ShardedFixture f;
  Rng rng(79);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Key> pts;
    const int n = int(rng.UniformInt(1, 5));
    for (int i = 0; i < n; ++i) pts.push_back(Key(rng.UniformInt(0, 1100)));
    std::array<CmColumnPredicate, 1> preds = {
        CmColumnPredicate::Points(pts)};
    const CmLookupResult routed = f.sharded->Lookup(preds);
    const CmLookupResult all_shards = f.sharded->LookupProbingAllShards(preds);
    const CmLookupResult single = f.plain->Lookup(preds);
    EXPECT_EQ(routed.ToOrdinals(), all_shards.ToOrdinals());
    EXPECT_EQ(routed.ToOrdinals(), single.ToOrdinals());
    EXPECT_EQ(routed.num_ordinals, all_shards.num_ordinals);
    // Routing must not probe more entries than the all-shard path did.
    EXPECT_LE(routed.entries_probed, all_shards.entries_probed);
  }
}

TEST(ShardedCmTest, PointLookupProbesOnlyOwningShards) {
  // One probe key is owned by exactly one shard: the routed path must
  // probe the same entries as the single unsharded map (the all-shard
  // path pays a find() in all 8 shards for the same answer).
  ShardedFixture f(/*num_shards=*/8);
  std::array<CmColumnPredicate, 1> one = {
      CmColumnPredicate::Points({Key(int64_t{123})})};
  const CmLookupResult routed = f.sharded->Lookup(one);
  const CmLookupResult single = f.plain->Lookup(one);
  EXPECT_EQ(routed.ToOrdinals(), single.ToOrdinals());
  EXPECT_EQ(routed.entries_probed, single.entries_probed);
}

TEST(ShardedCmTest, PrecomputedPairWritePathMatchesRowMaintenance) {
  // The sharded write path buckets each row once and hands (u-key,
  // ordinal) pairs down; the post-state must equal per-row maintenance on
  // the plain map, including deletes.
  ShardedFixture f;
  Rng rng(83);
  std::vector<RowId> fresh;
  for (int i = 0; i < 600; ++i) {
    const int64_t u = rng.UniformInt(0, 1499);
    const std::array<Key, 2> row = {Key(u / 10), Key(u)};
    fresh.push_back(RowId(f.table->NumRows()));
    f.table->AppendRowKeys(row);
  }
  // Half through the batched pair path, half through single-row upserts.
  const std::span<const RowId> head(fresh.data(), fresh.size() / 2);
  f.sharded->InsertRowsBatched(head);
  for (size_t i = fresh.size() / 2; i < fresh.size(); ++i) {
    f.sharded->InsertRow(fresh[i]);
  }
  for (RowId r : fresh) f.plain->InsertRow(r);
  EXPECT_EQ(f.sharded->NumEntries(), f.plain->NumEntries());
  EXPECT_EQ(f.sharded->NumUKeys(), f.plain->NumUKeys());
  // Delete through the pair path too.
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(f.sharded->DeleteRow(fresh[i]).code(),
              f.plain->DeleteRow(fresh[i]).code());
  }
  EXPECT_EQ(f.sharded->NumEntries(), f.plain->NumEntries());
  std::array<CmColumnPredicate, 1> wide = {CmColumnPredicate::Range(0, 2000)};
  ExpectShardedMatchesPlain(f, wide);
  EXPECT_TRUE(f.sharded->CheckInvariants().ok());
}

TEST(ShardedCmTest, EpochBracketsMaintenance) {
  ShardedFixture f;
  const uint64_t e0 = f.sharded->Epoch();
  const std::array<Key, 1> u = {Key(int64_t{5000})};
  f.sharded->InsertValues(u, 77);
  // Begin + end bump: quiescent epochs advance by two per operation.
  EXPECT_EQ(f.sharded->Epoch(), e0 + 2);
  ASSERT_TRUE(f.sharded->DeleteValues(u, 77).ok());
  EXPECT_EQ(f.sharded->Epoch(), e0 + 4);
}

TEST(SharedLookupCacheTest, HitsOnlyAtExactEpochAndEvictsStaleLazily) {
  SharedLookupCache cache(4);
  const int cm_a = 0, cm_b = 0;  // two distinct addresses
  auto result = std::make_shared<const CmLookupResult>();
  cache.Put(&cm_a, 0xfeed, 7, result);
  EXPECT_EQ(cache.Size(), 1u);

  EXPECT_EQ(cache.Get(&cm_a, 0xfeed, 7), result);      // exact hit
  EXPECT_EQ(cache.Get(&cm_a, 0xbeef, 7), nullptr);     // other fingerprint
  EXPECT_EQ(cache.Get(&cm_b, 0xfeed, 7), nullptr);     // other CM
  EXPECT_EQ(cache.stats().hits, 1u);

  // Probing under a newer epoch evicts the stale entry on the spot.
  EXPECT_EQ(cache.Get(&cm_a, 0xfeed, 9), nullptr);
  EXPECT_EQ(cache.stats().stale_evictions, 1u);
  EXPECT_EQ(cache.Size(), 0u);
  // ...and the old epoch no longer hits either (entry is gone).
  EXPECT_EQ(cache.Get(&cm_a, 0xfeed, 7), nullptr);

  // Put never downgrades an entry to an older epoch.
  auto newer = std::make_shared<const CmLookupResult>();
  cache.Put(&cm_a, 0xfeed, 9, newer);
  cache.Put(&cm_a, 0xfeed, 7, result);
  EXPECT_EQ(cache.Get(&cm_a, 0xfeed, 9), newer);
}

TEST(SharedLookupCacheTest, FingerprintSeparatesPredicateShapes) {
  std::array<CmColumnPredicate, 1> p1 = {
      CmColumnPredicate::Points({Key(int64_t{1})})};
  std::array<CmColumnPredicate, 1> p2 = {
      CmColumnPredicate::Points({Key(int64_t{2})})};
  std::array<CmColumnPredicate, 1> r1 = {CmColumnPredicate::Range(1, 2)};
  std::array<CmColumnPredicate, 1> r2 = {CmColumnPredicate::Range(1, 3)};
  const uint64_t h_p1 = SharedLookupCache::Fingerprint(p1);
  EXPECT_NE(h_p1, SharedLookupCache::Fingerprint(p2));
  EXPECT_NE(SharedLookupCache::Fingerprint(r1),
            SharedLookupCache::Fingerprint(r2));
  EXPECT_NE(h_p1, SharedLookupCache::Fingerprint(r1));
  EXPECT_EQ(h_p1, SharedLookupCache::Fingerprint(p1));  // deterministic
}

TEST(SharedCmLookupSourceTest, ReusesLookupsAcrossExecutionsUntilEpochMoves) {
  ShardedFixture f;
  auto cidx = ClusteredIndex::Build(*f.table, 0);
  ASSERT_TRUE(cidx.ok());
  Executor exec(f.table.get(), &*cidx);
  exec.AttachCm(f.plain.get());

  SharedLookupCache cache;
  SharedCmLookupSource source(&cache);
  Query q({Predicate::Between(*f.table, "u", Value(100), Value(140))});

  const uint64_t before = f.plain->LookupsComputed();
  auto first = exec.Execute(q, &source);
  auto second = exec.Execute(q, &source);
  auto third = exec.Execute(q, &source);
  // One cm_lookup across three whole Execute calls (costing + execution).
  EXPECT_EQ(f.plain->LookupsComputed(), before + 1);
  EXPECT_EQ(second.result.rows, first.result.rows);
  EXPECT_EQ(third.result.rows, first.result.rows);
  EXPECT_GE(cache.stats().hits, 2u);

  // Maintenance bumps the CM epoch: the cached runs are stale and the next
  // Execute recomputes.
  const std::array<Key, 1> u = {Key(int64_t{120})};
  f.plain->InsertValues(u, 55);
  auto fourth = exec.Execute(q, &source);
  EXPECT_EQ(f.plain->LookupsComputed(), before + 2);
  EXPECT_EQ(fourth.result.rows, first.result.rows);  // row 55 has no rows
}

/// Engine over the correlated table with one CM on u. Tests that pin the
/// CM probe path (cache semantics, used_cm expectations) construct it
/// with the first-match policy: on a table this small the cost model
/// rightly prefers a scan, and these tests are about the CM machinery,
/// not the deliberation (tests/serve_plan_choice_test.cc covers that).
struct EngineFixture {
  std::unique_ptr<Table> table;
  std::unique_ptr<ClusteredIndex> cidx;
  std::unique_ptr<ServingEngine> engine;

  explicit EngineFixture(ServingOptions::PlanChoice plan_choice =
                             ServingOptions::PlanChoice::kCostBased) {
    Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u")});
    table = std::make_unique<Table>("t", std::move(schema));
    Rng rng(67);
    for (int i = 0; i < 20000; ++i) {
      const int64_t u = rng.UniformInt(0, 999);
      std::array<Value, 2> row = {Value(u / 10 + rng.UniformInt(0, 1)),
                                  Value(u)};
      EXPECT_TRUE(table->AppendRow(row).ok());
    }
    EXPECT_TRUE(table->ClusterBy(0).ok());
    auto ci = ClusteredIndex::Build(*table, 0);
    EXPECT_TRUE(ci.ok());
    cidx = std::make_unique<ClusteredIndex>(std::move(*ci));
    ServingOptions opts;
    opts.num_workers = 2;
    opts.reserve_rows = table->NumRows() + 50000;
    opts.plan_choice = plan_choice;
    engine = std::make_unique<ServingEngine>(table.get(), cidx.get(), opts);
    CmOptions copts;
    copts.u_cols = {1};
    copts.u_bucketers = {Bucketer::Identity()};
    copts.c_col = 0;
    EXPECT_TRUE(engine->AttachCm(copts).ok());
  }

  void ExpectProbeEqualsScan(const Query& q) {
    const serve::SelectResult probe = engine->ExecuteSelect(q);
    const ExecResult scan = FullTableScan(*table, q);
    EXPECT_EQ(probe.num_matches, scan.NumMatches());
  }
};

TEST(ServingEngineTest, ProbeEqualsScanBeforeAndAfterTailAppends) {
  EngineFixture f;
  const Query eq({Predicate::Eq(*f.table, "u", Value(321))});
  const Query range(
      {Predicate::Between(*f.table, "u", Value(150), Value(260))});
  const Query no_cm({Predicate::Eq(*f.table, "c", Value(12))});
  f.ExpectProbeEqualsScan(eq);
  f.ExpectProbeEqualsScan(range);
  f.ExpectProbeEqualsScan(no_cm);  // full-scan fallback

  // Appends land in the unclustered tail; selects must see them at once.
  Rng rng(71);
  std::vector<std::vector<Key>> rows;
  for (int i = 0; i < 5000; ++i) {
    const int64_t u = rng.UniformInt(0, 999);
    rows.push_back({Key(u / 10), Key(u)});
  }
  ASSERT_TRUE(f.engine->ApplyAppend(rows).ok());
  EXPECT_EQ(f.table->NumRows(), 25000u);
  f.ExpectProbeEqualsScan(eq);
  f.ExpectProbeEqualsScan(range);
  f.ExpectProbeEqualsScan(no_cm);
  EXPECT_TRUE(f.engine->CheckInvariants().ok());

  // Second round: the cache entries from the first round are stale (the
  // appends bumped every CM's epoch) and must not leak wrong counts.
  ASSERT_TRUE(f.engine->ApplyAppend(rows).ok());
  f.ExpectProbeEqualsScan(eq);
  f.ExpectProbeEqualsScan(range);
}

TEST(ServingEngineTest, AppendPastReservationIsRefused) {
  EngineFixture f;
  std::vector<std::vector<Key>> huge(
      f.table->ReservedRows() - f.table->NumRows() + 1,
      {Key(int64_t{1}), Key(int64_t{1})});
  const Status s = f.engine->ApplyAppend(huge);
  EXPECT_EQ(s.code(), Status::Code::kResourceExhausted);
}

TEST(ServingEngineTest, ClusteredBucketingCmServesExactlyAcrossTailAndSwap) {
  // c-bucketed CMs are admissible: tail rows are skipped by CM
  // maintenance (positional ids do not cover them) and served by the
  // sweep, and a recluster re-bases the bucketing over the merged region.
  // Build the engine without any other CM over u so every select below
  // actually runs through the positional bucket-run translation.
  Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u")});
  Table table("t", std::move(schema));
  Rng rng(73);
  for (int i = 0; i < 20000; ++i) {
    const int64_t u = rng.UniformInt(0, 999);
    std::array<Value, 2> row = {Value(u / 10 + rng.UniformInt(0, 1)),
                                Value(u)};
    ASSERT_TRUE(table.AppendRow(row).ok());
  }
  ASSERT_TRUE(table.ClusterBy(0).ok());
  auto cidx = ClusteredIndex::Build(table, 0);
  ASSERT_TRUE(cidx.ok());
  ServingOptions opts;
  opts.num_workers = 2;
  opts.reserve_rows = table.NumRows() + 50000;
  // Pin first-match: this test asserts the bucket-run translation path
  // runs (used_cm), which the cost model would rightly skip for a scan on
  // a table this small.
  opts.plan_choice = ServingOptions::PlanChoice::kFirstMatch;
  ServingEngine engine(&table, &*cidx, opts);
  auto cb = ClusteredBucketing::Build(table, 0, 64);
  ASSERT_TRUE(cb.ok());
  CmOptions copts;
  copts.u_cols = {1};
  copts.u_bucketers = {Bucketer::Identity()};
  copts.c_col = 0;
  copts.c_buckets = &*cb;
  ASSERT_TRUE(engine.AttachCm(copts).ok());
  ASSERT_TRUE(engine.cm(0).has_clustered_buckets());

  auto expect_exact = [&](const Query& q) {
    const serve::SelectResult probe = engine.ExecuteSelect(q);
    EXPECT_TRUE(probe.used_cm);
    const ExecResult scan = FullTableScan(engine.table(), q);
    EXPECT_EQ(probe.num_matches, scan.NumMatches());
  };
  const Query eq({Predicate::Eq(table, "u", Value(444))});
  const Query range({Predicate::Between(table, "u", Value(100), Value(180))});
  expect_exact(eq);
  expect_exact(range);

  std::vector<std::vector<Key>> rows;
  for (int i = 0; i < 3000; ++i) {
    const int64_t u = rng.UniformInt(0, 999);
    rows.push_back({Key(u / 10), Key(u)});
  }
  ASSERT_TRUE(engine.ApplyAppend(rows).ok());
  expect_exact(eq);  // tail rows come from the sweep
  expect_exact(range);

  auto stats = engine.Recluster();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->performed());
  EXPECT_EQ(engine.TailRows(), 0u);
  // Post-swap the re-based bucketing covers the merged region.
  expect_exact(eq);
  expect_exact(range);
  EXPECT_TRUE(engine.CheckInvariants().ok());
}

TEST(ServingEngineTest, AttachRejectsStaleClusteredBucketing) {
  // A bucketing that does not cover exactly the clustered region (here:
  // built over a table that already grew an unclustered tail, so its
  // positional ids extend past the boundary) must be refused.
  EngineFixture f;
  std::vector<std::vector<Key>> rows(10, {Key(int64_t{1}), Key(int64_t{1})});
  ASSERT_TRUE(f.engine->ApplyAppend(rows).ok());
  auto cb = ClusteredBucketing::Build(*f.table, 0, 64);
  ASSERT_TRUE(cb.ok());
  CmOptions copts;
  copts.u_cols = {1};
  copts.u_bucketers = {Bucketer::Identity()};
  copts.c_col = 0;
  copts.c_buckets = &*cb;
  EXPECT_EQ(f.engine->AttachCm(copts).code(),
            Status::Code::kInvalidArgument);
}

TEST(ServingEngineTest, SubmitAndAppendRunThroughWorkerPool) {
  EngineFixture f;
  const Query eq({Predicate::Eq(*f.table, "u", Value(500))});
  const ExecResult scan = FullTableScan(*f.table, eq);
  auto fut1 = f.engine->Submit(eq);
  auto fut2 = f.engine->Submit(eq);
  EXPECT_EQ(fut1.get().num_matches, scan.NumMatches());
  EXPECT_EQ(fut2.get().num_matches, scan.NumMatches());
  // The second submit hit the shared cache (same fingerprint and epoch).
  EXPECT_GE(f.engine->cache().stats().hits, 1u);

  std::vector<std::vector<Key>> rows(
      100, {Key(int64_t{50}), Key(int64_t{500})});
  EXPECT_TRUE(f.engine->Append(std::move(rows)).get().ok());
  EXPECT_EQ(f.engine->Submit(eq).get().num_matches, scan.NumMatches() + 100);
}

TEST(ServingEngineTest, CacheServesRepeatsWithoutRecomputingLookups) {
  EngineFixture f(ServingOptions::PlanChoice::kFirstMatch);
  const Query eq({Predicate::Eq(*f.table, "u", Value(700))});
  (void)f.engine->ExecuteSelect(eq);
  const auto before = f.engine->cache().stats();
  for (int i = 0; i < 10; ++i) {
    const serve::SelectResult r = f.engine->ExecuteSelect(eq);
    EXPECT_TRUE(r.cache_hit);
  }
  const auto after = f.engine->cache().stats();
  EXPECT_EQ(after.hits, before.hits + 10);
  EXPECT_EQ(after.insertions, before.insertions);
}

TEST(ServingEngineTest, CacheEntriesFromPreReclusterEpochAreEvictedNotServed) {
  // Entries keyed to the pre-recluster epoch must never be served after
  // the swap: the successor CM is published under the same stable cache
  // slot with a strictly higher epoch, so the old entry compares stale on
  // its next probe and is lazily evicted. First-match pins the CM probe
  // path so cache_hit reflects exactly this CM's entry.
  EngineFixture f(ServingOptions::PlanChoice::kFirstMatch);
  const Query eq({Predicate::Eq(*f.table, "u", Value(321))});

  // Grow a tail, then warm the cache so the entry is *fresh* at the
  // pre-recluster epoch (appends themselves also bump epochs; warming
  // after them isolates the recluster swap as the only invalidation).
  std::vector<std::vector<Key>> rows(
      250, {Key(int64_t{32}), Key(int64_t{321})});
  ASSERT_TRUE(f.engine->ApplyAppend(rows).ok());
  (void)f.engine->ExecuteSelect(eq);
  const serve::SelectResult warmed = f.engine->ExecuteSelect(eq);
  EXPECT_TRUE(warmed.cache_hit);
  const uint64_t matches = warmed.num_matches;

  const auto evictions_before = f.engine->cache().stats().stale_evictions;
  auto stats = f.engine->Recluster();
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->performed());
  EXPECT_EQ(f.engine->TailRows(), 0u);

  // First select after the swap must not serve the pre-recluster entry:
  // the successor CM was published under the same stable slot with a
  // strictly higher epoch, so the probe misses, recomputes against the
  // successor, and lazily evicts the stale entry.
  const serve::SelectResult after = f.engine->ExecuteSelect(eq);
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.num_matches, matches);  // rows merged, count unchanged
  EXPECT_EQ(after.recluster_epoch, stats->epoch);
  EXPECT_GT(f.engine->cache().stats().stale_evictions, evictions_before);

  // The recomputed entry is publishable and serves at the new epoch.
  const serve::SelectResult repeat = f.engine->ExecuteSelect(eq);
  EXPECT_TRUE(repeat.cache_hit);
  EXPECT_EQ(repeat.num_matches, matches);
}

/// First live row whose column `col` equals `v` in the engine's current
/// epoch (row ids are only stable between recluster swaps).
RowId ResolveRow(const Table& t, size_t col, int64_t v) {
  for (RowId r = 0; r < t.NumRows(); ++r) {
    if (!t.IsDeleted(r) && t.GetKey(r, col) == Key(v)) return r;
  }
  ADD_FAILURE() << "no live row with col" << col << "=" << v;
  return 0;
}

TEST(ServingEngineTest, DeleteRetractsFromCmsAndFiltersEveryAccessPath) {
  // Regression lock-in: every access path -- CM probe, clustered-index
  // range, and the tail sweep -- must skip tombstoned rows, and the
  // delete must retract the row's pairs from the sharded CM so its books
  // still balance. First-match pins the CM probe for the u queries.
  EngineFixture f(ServingOptions::PlanChoice::kFirstMatch);
  const Query eq_u({Predicate::Eq(*f.table, "u", Value(321))});
  const Query eq_c({Predicate::Eq(*f.table, "c", Value(12))});
  // Put a known row in the unclustered tail so the sweep has a victim.
  std::vector<std::vector<Key>> rows(
      10, {Key(int64_t{32}), Key(int64_t{321})});
  ASSERT_TRUE(f.engine->ApplyAppend(rows).ok());

  const uint64_t u_before = f.engine->ExecuteSelect(eq_u).num_matches;
  const uint64_t c_before = f.engine->ExecuteSelect(eq_c).num_matches;
  ASSERT_GT(u_before, 0u);
  ASSERT_GT(c_before, 0u);

  // One victim per path: clustered-region row reached through the CM
  // probe, a row under the c predicate (clustered-index range), and a
  // tail row (sweep).
  const RowId in_clustered = ResolveRow(f.engine->table(), 1, 321);
  ASSERT_LT(in_clustered, f.engine->clustered_boundary());
  const RowId under_c = ResolveRow(f.engine->table(), 0, 12);
  const RowId in_tail = RowId(f.engine->table().NumRows() - 1);
  ASSERT_GE(in_tail, f.engine->clustered_boundary());
  ASSERT_TRUE(f.engine->ApplyDelete(in_clustered).ok());
  ASSERT_TRUE(f.engine->ApplyDelete(under_c).ok());
  ASSERT_TRUE(f.engine->ApplyDelete(in_tail).ok());

  const serve::SelectResult u_after = f.engine->ExecuteSelect(eq_u);
  EXPECT_TRUE(u_after.used_cm);
  EXPECT_EQ(u_after.num_matches, u_before - 2);  // clustered + tail victim
  EXPECT_EQ(f.engine->ExecuteSelect(eq_c).num_matches, c_before - 1);
  f.ExpectProbeEqualsScan(eq_u);
  f.ExpectProbeEqualsScan(eq_c);
  EXPECT_EQ(f.engine->table().NumDeleted(), 3u);
  EXPECT_TRUE(f.engine->CheckInvariants().ok());
}

TEST(ServingEngineTest, CachedLookupCoveringDeletedKeyGoesStaleOnDelete) {
  // A cached lookup whose covered u-key loses a row must not be served
  // after the delete: the CM retraction bumps the epoch, so the next
  // probe compares stale, recomputes, and re-caches at the new epoch.
  EngineFixture f(ServingOptions::PlanChoice::kFirstMatch);
  const Query eq({Predicate::Eq(*f.table, "u", Value(700))});
  (void)f.engine->ExecuteSelect(eq);
  const serve::SelectResult warmed = f.engine->ExecuteSelect(eq);
  ASSERT_TRUE(warmed.cache_hit);
  ASSERT_GT(warmed.num_matches, 0u);

  const auto evictions_before = f.engine->cache().stats().stale_evictions;
  const RowId victim = ResolveRow(f.engine->table(), 1, 700);
  ASSERT_TRUE(f.engine->ApplyDelete(victim).ok());

  const serve::SelectResult after = f.engine->ExecuteSelect(eq);
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.num_matches, warmed.num_matches - 1);
  EXPECT_GT(f.engine->cache().stats().stale_evictions, evictions_before);
  const ExecResult scan = FullTableScan(f.engine->table(), eq);
  EXPECT_EQ(after.num_matches, scan.NumMatches());

  // The recomputed entry serves repeats at the post-delete epoch.
  const serve::SelectResult repeat = f.engine->ExecuteSelect(eq);
  EXPECT_TRUE(repeat.cache_hit);
  EXPECT_EQ(repeat.num_matches, warmed.num_matches - 1);
}

TEST(ServingEngineTest, DeleteEdgeCasesAndBatchIdempotence) {
  EngineFixture f;
  const size_t n = f.engine->table().NumRows();
  // Past the end of the heap.
  EXPECT_EQ(f.engine->ApplyDelete(RowId(n)).code(),
            Status::Code::kOutOfRange);
  // Double delete of the same row.
  ASSERT_TRUE(f.engine->ApplyDelete(5).ok());
  EXPECT_EQ(f.engine->ApplyDelete(5).code(), Status::Code::kNotFound);
  // Batch deletes tolerate duplicates and already-dead rows: each row is
  // tombstoned and retracted at most once.
  const std::vector<RowId> batch = {5, 9, 9, 12};
  ASSERT_TRUE(f.engine->ApplyDeletes(batch).ok());
  EXPECT_EQ(f.engine->table().NumDeleted(), 3u);
  EXPECT_EQ(f.engine->table().NumLiveRows(), n - 3);
  EXPECT_TRUE(f.engine->CheckInvariants().ok());

  // Async wrappers run the same paths through the worker pool.
  const RowId victim = ResolveRow(f.engine->table(), 1, 123);
  EXPECT_TRUE(f.engine->Delete(victim).get().ok());
  const RowId moved = ResolveRow(f.engine->table(), 1, 456);
  EXPECT_TRUE(
      f.engine->Update(moved, {Key(int64_t{45}), Key(int64_t{457})})
          .get()
          .ok());
  EXPECT_EQ(f.engine->table().NumDeleted(), 5u);
  const Query q({Predicate::Eq(*f.table, "u", Value(457))});
  f.ExpectProbeEqualsScan(q);
}

TEST(ServingEngineTest, SuccessorCmEpochIsRaisedAboveRetiredPredecessor) {
  // The lazy-eviction guarantee rests on epochs increasing across the
  // swap; pin the property directly.
  EngineFixture f;
  std::vector<std::vector<Key>> rows(
      100, {Key(int64_t{5}), Key(int64_t{55})});
  ASSERT_TRUE(f.engine->ApplyAppend(rows).ok());
  const uint64_t epoch_before = f.engine->cm(0).Epoch();
  auto stats = f.engine->Recluster();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(f.engine->cm(0).Epoch(), epoch_before);
  EXPECT_EQ(f.engine->ReclusterEpoch(), stats->epoch);
  EXPECT_EQ(f.engine->ReclustersCompleted(), 1u);
}

TEST(WorkloadDriverTest, SingleThreadedRunReportsThroughputAndLatency) {
  EngineFixture f;
  std::vector<Query> pool;
  for (int64_t u = 0; u < 20; ++u) {
    pool.push_back(Query({Predicate::Eq(*f.table, "u", Value(u * 40))}));
  }
  serve::DriverOptions dopts;
  dopts.reader_threads = 1;
  dopts.writer_threads = 1;
  dopts.lookups_per_reader = 50;
  dopts.batches_per_writer = 3;
  dopts.use_worker_pool = false;
  std::vector<std::vector<std::vector<Key>>> batches(
      3, std::vector<std::vector<Key>>(200, {Key(int64_t{5}),
                                             Key(int64_t{55})}));
  serve::WorkloadDriver driver(f.engine.get(), dopts);
  const serve::DriverReport rep = driver.Run(pool, batches);
  EXPECT_EQ(rep.lookups, 50u);
  EXPECT_EQ(rep.batches_appended, 3u);
  EXPECT_EQ(rep.rows_appended, 600u);
  EXPECT_GT(rep.lookups_per_second, 0.0);
  EXPECT_GT(rep.lookup_latency.p99_us, 0.0);
  EXPECT_GE(rep.lookup_latency.p99_us, rep.lookup_latency.p50_us);
  // Post-run: probe still equals scan.
  for (const Query& q : pool) f.ExpectProbeEqualsScan(q);
}

}  // namespace
}  // namespace corrmap
