// Tests for the three synthetic workload generators: schema shape,
// determinism, and -- critically -- the correlation structure each paper
// experiment depends on.
#include <gtest/gtest.h>

#include "core/correlation_map.h"
#include "stats/correlation_stats.h"
#include "workload/ebay_gen.h"
#include "workload/sdss_gen.h"
#include "workload/tpch_gen.h"

namespace corrmap {
namespace {

TEST(EbayGenTest, SchemaAndRowCounts) {
  EbayGenConfig cfg;
  cfg.num_categories = 100;
  cfg.min_items_per_category = 10;
  cfg.max_items_per_category = 20;
  auto t = GenerateEbayItems(cfg);
  EXPECT_EQ(t->schema().num_columns(), 9u);
  EXPECT_GE(t->NumRows(), 100u * 10u);
  EXPECT_LE(t->NumRows(), 100u * 20u);
}

TEST(EbayGenTest, Deterministic) {
  EbayGenConfig cfg;
  cfg.num_categories = 50;
  auto a = GenerateEbayItems(cfg);
  auto b = GenerateEbayItems(cfg);
  ASSERT_EQ(a->NumRows(), b->NumRows());
  for (RowId r = 0; r < a->NumRows(); r += 97) {
    EXPECT_EQ(a->GetValue(r, kEbay.price), b->GetValue(r, kEbay.price));
  }
}

TEST(EbayGenTest, PriceCatidSoftFd) {
  // The paper's designed-in correlation: prices cluster within +-300 of a
  // per-category median, so bucketed Price predicts CATID well.
  EbayGenConfig cfg;
  cfg.num_categories = 500;
  auto t = GenerateEbayItems(cfg);
  ASSERT_TRUE(t->ClusterBy(kEbay.catid).ok());
  Bucketer price_buckets = Bucketer::NumericWidth(1000.0);
  std::vector<const Bucketer*> ub = {&price_buckets};
  CorrelationStats s =
      ComputeExactCorrelationStats(*t, {kEbay.price}, kEbay.catid, &ub);
  // Each $1000 price bucket should co-occur with only a handful of the 500
  // categories (medians are spread over $1M).
  EXPECT_LT(s.c_per_u, 20.0);
}

TEST(EbayGenTest, CategoryHierarchyIsConsistent) {
  EbayGenConfig cfg;
  cfg.num_categories = 200;
  auto t = GenerateEbayItems(cfg);
  // CAT1..CAT6 are a path: equal CATID implies equal path columns, and
  // CATk determines CAT(k-1) (prefix property).
  CorrelationStats s =
      ComputeExactCorrelationStats(*t, {kEbay.cat6}, kEbay.cat5);
  EXPECT_DOUBLE_EQ(s.c_per_u, 1.0);
  CorrelationStats s2 =
      ComputeExactCorrelationStats(*t, {kEbay.catid}, kEbay.cat1);
  EXPECT_DOUBLE_EQ(s2.c_per_u, 1.0);
}

TEST(TpchGenTest, SchemaAndDeterminism) {
  TpchGenConfig cfg;
  cfg.num_rows = 5000;
  auto a = GenerateLineitem(cfg);
  auto b = GenerateLineitem(cfg);
  EXPECT_EQ(a->schema().num_columns(), 10u);
  EXPECT_EQ(a->NumRows(), 5000u);
  for (RowId r = 0; r < a->NumRows(); r += 31) {
    EXPECT_EQ(a->GetKey(r, kTpch.shipdate), b->GetKey(r, kTpch.shipdate));
  }
}

TEST(TpchGenTest, ReceiptdateFollowsShipdateBumps) {
  TpchGenConfig cfg;
  cfg.num_rows = 20000;
  auto t = GenerateLineitem(cfg);
  size_t in_bumps = 0;
  for (RowId r = 0; r < t->NumRows(); ++r) {
    const int64_t delta = t->GetKey(r, kTpch.receiptdate).AsInt64() -
                          t->GetKey(r, kTpch.shipdate).AsInt64();
    ASSERT_GE(delta, 2);
    ASSERT_LE(delta, 14);
    in_bumps += (delta == 2 || delta == 4 || delta == 5);
  }
  // ~90% of offsets sit on the three bumps.
  EXPECT_GT(double(in_bumps) / double(t->NumRows()), 0.85);
}

TEST(TpchGenTest, ShipdateReceiptdateStrongSoftFd) {
  TpchGenConfig cfg;
  cfg.num_rows = 50000;
  auto t = GenerateLineitem(cfg);
  CorrelationStats s =
      ComputeExactCorrelationStats(*t, {kTpch.shipdate}, kTpch.receiptdate);
  // Each shipdate maps to <= ~13 receiptdates (2..14), usually fewer.
  EXPECT_LT(s.c_per_u, 14.0);
  EXPECT_GT(s.c_per_u, 2.0);
}

TEST(TpchGenTest, SuppkeyPartkeyModerateCorrelation) {
  TpchGenConfig cfg;
  cfg.num_rows = 50000;
  auto t = GenerateLineitem(cfg);
  CorrelationStats supp =
      ComputeExactCorrelationStats(*t, {kTpch.suppkey}, kTpch.partkey);
  // Each supplier uses ~parts_per_supplier parts -- far fewer than the
  // 20000-part domain, far more than a hard FD.
  EXPECT_LT(supp.c_per_u, double(cfg.parts_per_supplier) + 1);
  EXPECT_GT(supp.c_per_u, 10.0);
}

TEST(SdssGenTest, SchemaAndAttributeList) {
  SdssGenConfig cfg;
  cfg.num_rows = 20000;
  auto t = GenerateSdssPhotoObj(cfg);
  EXPECT_EQ(SdssQueryAttributes().size(), 39u);
  // objID + 39 attributes.
  EXPECT_EQ(t->schema().num_columns(), 40u);
  for (const auto& name : SdssQueryAttributes()) {
    EXPECT_TRUE(t->ColumnIndex(name).ok()) << name;
  }
}

TEST(SdssGenTest, FieldIdDeterminedByObjId) {
  SdssGenConfig cfg;
  cfg.num_rows = 40000;
  auto t = GenerateSdssPhotoObj(cfg);
  ASSERT_TRUE(t->ClusterBy(0).ok());  // objID
  const size_t fieldid = *t->ColumnIndex("fieldID");
  CorrelationStats s = ComputeExactCorrelationStats(*t, {fieldid}, 0);
  // fieldID is constant over contiguous objID runs: c_per_u per fieldID is
  // objects_per_field, but the other direction (objID -> fieldID buckets)
  // matters for CMs; check the clustered-bucket version.
  auto cb = ClusteredBucketing::Build(*t, 0, 800);
  ASSERT_TRUE(cb.ok());
  // Each fieldID should hit only ~1-2 clustered buckets of 800 tuples.
  CmOptions opts;
  opts.u_cols = {fieldid};
  opts.u_bucketers = {Bucketer::Identity()};
  opts.c_col = 0;
  opts.c_buckets = &*cb;
  auto cm = CorrelationMap::Create(t.get(), opts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());
  EXPECT_LT(double(cm->NumEntries()) / double(cm->NumUKeys()), 3.0);
  (void)s;
}

TEST(SdssGenTest, RaDecPairStrongerThanEither) {
  // The Experiment 5 regime: (ra, dec) -> objID locality far exceeds ra or
  // dec alone.
  SdssGenConfig cfg;
  cfg.num_rows = 80000;
  auto t = GenerateSdssPhotoObj(cfg);
  ASSERT_TRUE(t->ClusterBy(0).ok());
  auto cb = ClusteredBucketing::Build(*t, 0, 800);
  ASSERT_TRUE(cb.ok());
  const size_t ra = *t->ColumnIndex("ra");
  const size_t dec = *t->ColumnIndex("dec");
  Bucketer bra = Bucketer::NumericWidth(0.5);
  Bucketer bdec = Bucketer::NumericWidth(0.5);
  Bucketer cbk = Bucketer::Identity();

  std::vector<const Bucketer*> ra_only = {&bra};
  std::vector<const Bucketer*> both = {&bra, &bdec};
  // Count distinct clustered buckets per u-bucket via CM entry ratios.
  auto entries_per_ukey = [&](std::vector<size_t> cols,
                              std::vector<Bucketer> bks) {
    CmOptions opts;
    opts.u_cols = std::move(cols);
    opts.u_bucketers = std::move(bks);
    opts.c_col = 0;
    opts.c_buckets = &*cb;
    auto cm = CorrelationMap::Create(t.get(), opts);
    EXPECT_TRUE(cm.ok());
    EXPECT_TRUE(cm->BuildFromTable().ok());
    return double(cm->NumEntries()) / double(cm->NumUKeys());
  };
  const double ra_ratio = entries_per_ukey({ra}, {bra});
  const double pair_ratio = entries_per_ukey({ra, dec}, {bra, bdec});
  EXPECT_LT(pair_ratio * 3, ra_ratio);
  (void)ra_only;
  (void)both;
  (void)cbk;
}

TEST(SdssGenTest, MagnitudeFamilyMutuallyCorrelated) {
  SdssGenConfig cfg;
  cfg.num_rows = 40000;
  auto t = GenerateSdssPhotoObj(cfg);
  const size_t g = *t->ColumnIndex("psfMag_g");
  const size_t r = *t->ColumnIndex("psfMag_r");
  ASSERT_TRUE(t->ClusterBy(r).ok());
  Bucketer bg = Bucketer::NumericWidth(0.5);
  Bucketer br = Bucketer::NumericWidth(0.5);
  std::vector<const Bucketer*> ub = {&bg};
  CorrelationStats s = ComputeExactCorrelationStats(*t, {g}, r, &ub, &br);
  // A 0.5-mag g bucket co-occurs with only a few 0.5-mag r buckets
  // (sd 0.2+0.2 around a shared latent).
  EXPECT_LT(s.c_per_u, 6.0);
}

TEST(SdssGenTest, FewValuedAttributesHaveSmallDomains) {
  SdssGenConfig cfg;
  cfg.num_rows = 20000;
  auto t = GenerateSdssPhotoObj(cfg);
  auto count_distinct = [&](const char* name) {
    std::set<int64_t> s;
    const size_t col = *t->ColumnIndex(name);
    for (RowId r = 0; r < t->NumRows(); ++r) {
      s.insert(t->GetKey(r, col).AsInt64());
    }
    return s.size();
  };
  EXPECT_EQ(count_distinct("mode"), 3u);
  EXPECT_EQ(count_distinct("type"), 5u);
  EXPECT_LE(count_distinct("status"), 8u);
  EXPECT_LE(count_distinct("insideMask"), 2u);
}

}  // namespace
}  // namespace corrmap
