// Tests for variable-width bucketing (the paper's §8 future-work
// extension): correctness (monotone mapping, no false negatives through a
// CM), the c-per-bucket budget, and the size win over fixed-width
// bucketing on skewed data.
#include <gtest/gtest.h>

#include <array>
#include <set>

#include "common/rng.h"
#include "core/bucketing.h"
#include "core/correlation_map.h"
#include "exec/access_path.h"
#include "index/clustered_index.h"

namespace corrmap {
namespace {

/// Skewed workload: a dense low region where thousands of u values share a
/// few clustered values, and a sparse high region where every u value maps
/// to its own clustered value.
std::unique_ptr<Table> SkewedTable(size_t rows = 30000) {
  Schema schema({ColumnDef::Int64("c"), ColumnDef::Double("u")});
  auto t = std::make_unique<Table>("t", std::move(schema));
  Rng rng(201);
  for (size_t i = 0; i < rows; ++i) {
    double u;
    int64_t c;
    if (rng.Bernoulli(0.7)) {
      // Dense region: u in [0, 1000), c constant per 500-wide slab.
      u = rng.UniformDouble(0, 1000);
      c = int64_t(u / 500);
    } else {
      // Sparse region: u in [10000, 20000), c tracks u tightly.
      u = rng.UniformDouble(10000, 20000);
      c = int64_t(u / 10);
    }
    std::array<Value, 2> row = {Value(c), Value(u)};
    EXPECT_TRUE(t->AppendRow(row).ok());
  }
  EXPECT_TRUE(t->ClusterBy(0).ok());
  return t;
}

TEST(VariableBucketingTest, FromBoundariesMapsRanges) {
  Bucketer b = Bucketer::FromBoundaries({0.0, 10.0, 100.0});
  EXPECT_EQ(b.BucketOf(Key(5.0)), 0);
  EXPECT_EQ(b.BucketOf(Key(10.0)), 1);
  EXPECT_EQ(b.BucketOf(Key(99.0)), 1);
  EXPECT_EQ(b.BucketOf(Key(100.0)), 2);
  EXPECT_EQ(b.BucketOf(Key(1e9)), 2);
  EXPECT_NE(b.ToString().find("variable"), std::string::npos);
}

TEST(VariableBucketingTest, RespectsCPerBucketBudget) {
  auto t = SkewedTable();
  auto cb = ClusteredBucketing::Build(*t, 0, 256);
  ASSERT_TRUE(cb.ok());
  const size_t kMaxC = 3;
  Bucketer vb = BuildVariableWidthBucketer(*t, 1, *cb, kMaxC);
  // Recount: every bucket must map to <= kMaxC clustered buckets.
  std::map<int64_t, std::set<int64_t>> per_bucket;
  for (RowId r = 0; r < t->NumRows(); ++r) {
    per_bucket[vb.BucketOf(t->GetKey(r, 1))].insert(cb->BucketOfRow(r));
  }
  for (const auto& [bucket, cbs] : per_bucket) {
    EXPECT_LE(cbs.size(), kMaxC) << "bucket " << bucket;
  }
}

TEST(VariableBucketingTest, MonotoneOverColumnValues) {
  auto t = SkewedTable();
  auto cb = ClusteredBucketing::Build(*t, 0, 256);
  ASSERT_TRUE(cb.ok());
  Bucketer vb = BuildVariableWidthBucketer(*t, 1, *cb, 4);
  std::vector<double> vals;
  for (RowId r = 0; r < t->NumRows(); ++r) {
    vals.push_back(t->GetKey(r, 1).Numeric());
  }
  std::sort(vals.begin(), vals.end());
  for (size_t i = 1; i < vals.size(); ++i) {
    EXPECT_LE(vb.BucketOf(Key(vals[i - 1])), vb.BucketOf(Key(vals[i])));
  }
}

TEST(VariableBucketingTest, DenseRegionCollapsesSparseStaysNarrow) {
  auto t = SkewedTable();
  auto cb = ClusteredBucketing::Build(*t, 0, 256);
  ASSERT_TRUE(cb.ok());
  Bucketer vb = BuildVariableWidthBucketer(*t, 1, *cb, 3);
  // The dense region [0,1000) holds ~70% of distinct values but only ~2
  // slabs of clustered values: it must land in far fewer buckets than the
  // sparse region of equal value count.
  std::set<int64_t> dense_buckets, sparse_buckets;
  for (RowId r = 0; r < t->NumRows(); ++r) {
    const double u = t->GetKey(r, 1).Numeric();
    if (u < 1000) {
      dense_buckets.insert(vb.BucketOf(t->GetKey(r, 1)));
    } else {
      sparse_buckets.insert(vb.BucketOf(t->GetKey(r, 1)));
    }
  }
  EXPECT_LT(dense_buckets.size() * 10, sparse_buckets.size());
}

TEST(VariableBucketingTest, CmNoFalseNegatives) {
  auto t = SkewedTable();
  auto cb = ClusteredBucketing::Build(*t, 0, 256);
  ASSERT_TRUE(cb.ok());
  CmOptions opts;
  opts.u_cols = {1};
  opts.u_bucketers = {BuildVariableWidthBucketer(*t, 1, *cb, 4)};
  opts.c_col = 0;
  opts.c_buckets = &*cb;
  auto cm = CorrelationMap::Create(t.get(), opts);
  ASSERT_TRUE(cm.ok());
  ASSERT_TRUE(cm->BuildFromTable().ok());
  auto cidx = ClusteredIndex::Build(*t, 0);
  ASSERT_TRUE(cidx.ok());

  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const double lo = rng.UniformDouble(0, 18000);
    Query q({Predicate::Between(*t, "u", Value(lo), Value(lo + 800))});
    auto scan = FullTableScan(*t, q);
    auto cms = CmScan(*t, *cm, *cidx, q);
    EXPECT_EQ(cms.rows, scan.rows) << "trial " << trial;
  }
}

TEST(VariableBucketingTest, SmallerCmThanFixedWidthAtEqualFalsePositives) {
  // The §8 claim: at a matched c-per-bucket budget, variable width needs
  // fewer CM entries than the finest fixed width that meets the budget.
  auto t = SkewedTable();
  auto cb = ClusteredBucketing::Build(*t, 0, 256);
  ASSERT_TRUE(cb.ok());
  const size_t kMaxC = 3;

  auto cm_entries = [&](Bucketer b) {
    CmOptions opts;
    opts.u_cols = {1};
    opts.u_bucketers = {std::move(b)};
    opts.c_col = 0;
    opts.c_buckets = &*cb;
    auto cm = CorrelationMap::Create(t.get(), opts);
    EXPECT_TRUE(cm.ok());
    EXPECT_TRUE(cm->BuildFromTable().ok());
    return cm->NumEntries();
  };

  const size_t variable =
      cm_entries(BuildVariableWidthBucketer(*t, 1, *cb, kMaxC));
  // Find the coarsest fixed level still within the budget everywhere.
  size_t fixed = 0;
  for (int level = 12; level >= 0; --level) {
    Bucketer fb = Bucketer::ValueOrdinalFromColumn(*t, 1, level);
    std::map<int64_t, std::set<int64_t>> per_bucket;
    for (RowId r = 0; r < t->NumRows(); ++r) {
      per_bucket[fb.BucketOf(t->GetKey(r, 1))].insert(cb->BucketOfRow(r));
    }
    bool ok = true;
    for (const auto& [bucket, cbs] : per_bucket) {
      if (cbs.size() > kMaxC) ok = false;
    }
    if (ok) {
      fixed = cm_entries(std::move(fb));
      break;
    }
  }
  ASSERT_GT(fixed, 0u) << "no fixed level met the budget";
  EXPECT_LT(variable, fixed);
}

}  // namespace
}  // namespace corrmap
