// Dedicated WAL tests: frame round-trips, CRC rejection, torn-tail
// crashes, checkpoint truncation, committed-txn filtering, and the
// tail-page-carry I/O accounting -- plus the serve-layer Durability
// manager built on top (group commit, checkpoint snapshots, payload
// codecs). Suite names deliberately avoid storage_test.cc's WalTest so
// ctest registrations stay unique.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "serve/durability.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace corrmap {
namespace {

WalRecord Rec(WalRecordType type, uint64_t txn, std::string payload) {
  return {type, txn, std::move(payload)};
}

TEST(WalFramingTest, RoundTripSurvivesReparse) {
  WriteAheadLog wal;
  wal.Append(Rec(WalRecordType::kRowAppend, 7, "alpha"));
  wal.Append(Rec(WalRecordType::kRowDelete, 8, std::string(300, 'z')));
  wal.Append(Rec(WalRecordType::kCommit, 8, ""));
  wal.Flush();
  EXPECT_EQ(wal.log_bytes(),
            3 * kWalRecordHeaderBytes + 5 + 300);

  // A clean crash (no torn tail) re-parses the image from scratch; every
  // frame must decode back to the exact record that was appended.
  wal.Crash();
  ASSERT_EQ(wal.durable_records().size(), 3u);
  EXPECT_EQ(wal.durable_records()[0].type, WalRecordType::kRowAppend);
  EXPECT_EQ(wal.durable_records()[0].txn_id, 7u);
  EXPECT_EQ(wal.durable_records()[0].payload, "alpha");
  EXPECT_EQ(wal.durable_records()[1].payload, std::string(300, 'z'));
  EXPECT_EQ(wal.durable_records()[2].type, WalRecordType::kCommit);
}

TEST(WalFramingTest, CrcRejectsCorruptionAndEndsTheLogThere) {
  WriteAheadLog wal;
  wal.Append(Rec(WalRecordType::kRowAppend, 1, "first"));
  wal.Append(Rec(WalRecordType::kRowAppend, 2, "second"));
  wal.Append(Rec(WalRecordType::kRowAppend, 3, "third"));
  wal.Flush();
  // Flip one payload byte inside the second frame: its CRC no longer
  // verifies, so the re-parse must stop after the first record -- a
  // corrupt middle makes everything at and past it unreadable.
  wal.CorruptByte(kWalRecordHeaderBytes + 5 + kWalRecordHeaderBytes + 2);
  wal.Crash();
  ASSERT_EQ(wal.durable_records().size(), 1u);
  EXPECT_EQ(wal.durable_records()[0].payload, "first");
  EXPECT_EQ(wal.log_bytes(), kWalRecordHeaderBytes + 5);
}

TEST(WalFramingTest, TornTailCutsOnlyTheLastFlush) {
  WriteAheadLog wal;
  wal.Append(Rec(WalRecordType::kRowAppend, 1, "safe"));
  wal.Flush();  // fsync barrier: this flush can never be torn again
  wal.Append(Rec(WalRecordType::kRowAppend, 2, "torn-victim"));
  wal.Append(Rec(WalRecordType::kRowAppend, 3, "gone-too"));
  wal.Flush();
  // Tear 3 bytes off the crash: the last frame is incomplete and dropped;
  // the frame before it is intact and survives.
  wal.Crash(3);
  ASSERT_EQ(wal.durable_records().size(), 2u);
  EXPECT_EQ(wal.durable_records()[1].payload, "torn-victim");

  // A tear larger than the last flush clamps to it: earlier flushes sit
  // behind completed fsyncs, so "safe" must survive any tear size.
  wal.Append(Rec(WalRecordType::kRowAppend, 4, "new-tail"));
  wal.Flush();
  wal.Crash(1u << 20);
  ASSERT_EQ(wal.durable_records().size(), 2u);
  EXPECT_EQ(wal.durable_records()[0].payload, "safe");
  EXPECT_EQ(wal.durable_records()[1].payload, "torn-victim");
}

TEST(WalFramingTest, CrashStillDropsPendingOnly) {
  WriteAheadLog wal;
  wal.Append(Rec(WalRecordType::kRowAppend, 1, "durable"));
  wal.Flush();
  wal.Append(Rec(WalRecordType::kRowAppend, 2, "buffered"));
  wal.Crash();
  EXPECT_EQ(wal.durable_records().size(), 1u);
  EXPECT_EQ(wal.pending_records(), 0u);
}

TEST(WalCheckpointTest, TruncateThroughBoundsTheLog) {
  WriteAheadLog wal;
  for (uint64_t t = 1; t <= 4; ++t) {
    wal.Append(Rec(WalRecordType::kRowAppend, t, "old-epoch"));
    wal.Append(Rec(WalRecordType::kCommit, t, ""));
  }
  wal.Flush();
  const size_t before = wal.log_bytes();
  const uint64_t ckpt = wal.LogCheckpoint("snapshot-meta");
  wal.Append(Rec(WalRecordType::kRowAppend, 9, "new-epoch"));
  wal.Append(Rec(WalRecordType::kCommit, 9, ""));
  wal.Flush();

  EXPECT_FALSE(wal.TruncateThrough(ckpt + 100));  // unknown id: no-op
  ASSERT_TRUE(wal.TruncateThrough(ckpt));
  // The checkpoint record is the new log head; only the post-checkpoint
  // tail follows it. Log memory dropped by the whole pre-checkpoint
  // epoch.
  ASSERT_GE(wal.durable_records().size(), 3u);
  EXPECT_EQ(wal.durable_records()[0].type, WalRecordType::kCheckpoint);
  EXPECT_EQ(wal.durable_records()[0].payload, "snapshot-meta");
  EXPECT_EQ(wal.durable_records()[1].payload, "new-epoch");
  EXPECT_LT(wal.log_bytes(), before);

  // The truncated image must still re-parse cleanly after a crash.
  wal.Crash();
  EXPECT_EQ(wal.durable_records()[0].type, WalRecordType::kCheckpoint);
  EXPECT_EQ(wal.durable_records()[1].payload, "new-epoch");
}

TEST(WalCommittedTest, UncommittedTxnIsNeverReplayed) {
  WriteAheadLog wal;
  wal.Append(Rec(WalRecordType::kRowAppend, 1, "committed-op"));
  wal.Append(Rec(WalRecordType::kCommit, 1, ""));
  // Txn 2 prepared but never committed: its data record is durable yet
  // must not be handed to replay.
  wal.Append(Rec(WalRecordType::kRowAppend, 2, "uncommitted-op"));
  wal.Append(Rec(WalRecordType::kPrepare, 2, ""));
  wal.Flush();
  wal.LogCheckpoint("ckpt");

  const std::vector<WalRecord> committed = wal.CommittedRecords();
  ASSERT_EQ(committed.size(), 2u);
  EXPECT_EQ(committed[0].payload, "committed-op");
  EXPECT_EQ(committed[1].type, WalRecordType::kCheckpoint);  // passes through

  // durable_records still exposes everything (the raw log), so the two
  // views disagree by exactly the uncommitted record and the markers.
  EXPECT_EQ(wal.durable_records().size(), 5u);
}

TEST(WalIoTest, FlushCarriesTailPageFillAcrossFlushes) {
  WriteAheadLog wal(8192);
  // Flush 1: 8000 bytes -> 1 page, leaving the tail page 8000/8192 full.
  wal.Append(Rec(WalRecordType::kRowAppend, 1,
                 std::string(8000 - kWalRecordHeaderBytes, 'a')));
  wal.Flush();
  DiskStats io = wal.DrainIo();
  EXPECT_EQ(io.seeks, 1u);
  EXPECT_EQ(io.seq_pages, 1u);
  // Flush 2: 400 more bytes straddle the partially-filled tail page into
  // the next one -- a real log file re-writes the tail page, so the
  // charge is 2 pages, not ceil(400/8192) == 1.
  wal.Append(Rec(WalRecordType::kRowAppend, 2,
                 std::string(400 - kWalRecordHeaderBytes, 'b')));
  wal.Flush();
  io = wal.DrainIo();
  EXPECT_EQ(io.seeks, 1u);
  EXPECT_EQ(io.seq_pages, 2u);
  // Flush 3: 100 bytes stay within the (now 208/8192 full) tail page.
  wal.Append(Rec(WalRecordType::kRowAppend, 3,
                 std::string(100 - kWalRecordHeaderBytes, 'c')));
  wal.Flush();
  io = wal.DrainIo();
  EXPECT_EQ(io.seq_pages, 1u);
}

// ---------------------------------------------------------------------------
// serve::Durability: the group-commit + checkpoint manager over the WAL.
// ---------------------------------------------------------------------------

void FillOneColumn(Table* t, int rows) {
  for (int i = 0; i < rows; ++i) {
    std::array<Value, 1> row = {Value(int64_t(i))};
    ASSERT_TRUE(t->AppendRow(row).ok());
  }
}

TEST(DurabilityTest, PayloadCodecsRoundTrip) {
  using serve::Durability;
  const std::vector<std::vector<Key>> rows = {
      {Key(int64_t{1}), Key(2.5)},
      {Key(int64_t{-9}), Key(-0.0)},
  };
  Durability::AppendOp append;
  ASSERT_TRUE(Durability::DecodeAppend(
      Durability::EncodeAppend(41, rows), &append));
  EXPECT_EQ(append.first_row, 41u);
  ASSERT_EQ(append.rows.size(), 2u);
  EXPECT_EQ(append.rows[0][0], Key(int64_t{1}));
  EXPECT_EQ(append.rows[0][1], Key(2.5));
  EXPECT_EQ(append.rows[1][0], Key(int64_t{-9}));
  EXPECT_TRUE(append.rows[1][1].is_double());

  const std::vector<RowId> dels = {3, 1, 4, 1};
  std::vector<RowId> decoded_dels;
  ASSERT_TRUE(Durability::DecodeDeletes(Durability::EncodeDeletes(dels),
                                        &decoded_dels));
  EXPECT_EQ(decoded_dels, dels);

  const std::vector<Key> upd = {Key(int64_t{5}), Key(1.25)};
  Durability::UpdateOp update;
  ASSERT_TRUE(Durability::DecodeUpdate(
      Durability::EncodeUpdate(7, upd), &update));
  EXPECT_EQ(update.row, 7u);
  EXPECT_EQ(update.new_values, upd);

  // Truncated payloads must fail cleanly, never over-read.
  std::string p = Durability::EncodeUpdate(7, upd);
  p.pop_back();
  EXPECT_FALSE(Durability::DecodeUpdate(p, &update));
}

TEST(DurabilityTest, GroupCommitFlushesEveryNthOp) {
  serve::DurabilityOptions opts;
  opts.group_commit_ops = 4;
  serve::Durability d(opts);
  const std::vector<std::vector<Key>> one = {{Key(int64_t{1})}};
  for (int i = 0; i < 3; ++i) d.LogAppend(RowId(i), one);
  EXPECT_EQ(d.wal_flushes(), 0u);  // batch still open
  d.LogAppend(3, one);
  EXPECT_EQ(d.wal_flushes(), 1u);  // 4th commit flushed the batch
  d.LogAppend(4, one);
  d.FlushNow();
  EXPECT_EQ(d.wal_flushes(), 2u);
  EXPECT_EQ(d.ops_logged(), 5u);
}

TEST(DurabilityTest, CrashLosesOnlyTheOpenBatch) {
  serve::DurabilityOptions opts;
  opts.group_commit_ops = 4;
  serve::Durability d(opts);
  Table t("t", Schema({ColumnDef::Int64("v")}));
  FillOneColumn(&t, 8);
  d.Checkpoint(t, RowId(t.NumRows()), 0);
  const std::vector<std::vector<Key>> one = {{Key(int64_t{1})}};
  for (int i = 0; i < 4; ++i) d.LogAppend(RowId(8 + i), one);  // flushed
  for (int i = 0; i < 2; ++i) d.LogAppend(RowId(12 + i), one);  // buffered
  d.Crash();
  const std::vector<WalRecord> tail = d.CommittedTail();
  ASSERT_EQ(tail.size(), 4u);
  for (const WalRecord& r : tail) {
    EXPECT_EQ(r.type, WalRecordType::kRowAppend);
  }
}

TEST(DurabilityTest, CheckpointSnapshotsAndTruncates) {
  serve::DurabilityOptions opts;
  opts.group_commit_ops = 1;
  serve::Durability d(opts);
  EXPECT_FALSE(d.has_checkpoint());
  Table t("t", Schema({ColumnDef::Int64("v")}));
  FillOneColumn(&t, 16);
  const std::vector<std::vector<Key>> one = {{Key(int64_t{99})}};
  for (int i = 0; i < 10; ++i) d.LogAppend(RowId(16 + i), one);
  const size_t log_before = d.wal_log_bytes();

  d.Checkpoint(t, RowId(16), 3);
  ASSERT_TRUE(d.has_checkpoint());
  EXPECT_EQ(d.checkpoint_epoch(), 3u);
  EXPECT_EQ(d.checkpoint_boundary(), 16u);
  ASSERT_NE(d.checkpoint_table(), nullptr);
  EXPECT_EQ(d.checkpoint_table()->NumRows(), 16u);
  // The snapshot is a clone: mutating the source later never leaks in.
  std::array<Value, 1> extra = {Value(int64_t{999})};
  ASSERT_TRUE(t.AppendRow(extra).ok());
  EXPECT_EQ(d.checkpoint_table()->NumRows(), 16u);
  // Pre-checkpoint ops were truncated away; the tail is empty.
  EXPECT_LT(d.wal_log_bytes(), log_before);
  EXPECT_TRUE(d.CommittedTail().empty());
  EXPECT_EQ(d.checkpoints_taken(), 1u);

  // The snapshot survives crashes (it models the flushed heap image).
  d.Crash(1u << 20);
  ASSERT_TRUE(d.has_checkpoint());
  EXPECT_EQ(d.checkpoint_table()->NumRows(), 16u);
}

}  // namespace
}  // namespace corrmap
