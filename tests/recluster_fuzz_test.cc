// Differential fuzz for the online recluster pass: seeded-RNG
// interleavings of appends, selects, and recluster triggers over a
// ServingEngine (one unbucketed CM, one u-bucketed CM, one c-bucketed CM),
// asserting after every step that
//   * probe==scan -- each sampled query's CM-driven count equals a full
//     scan of the engine's *current* table (differential oracle),
//   * run-coalescing -- every cm_lookup's ordinal ranges come back
//     sorted, disjoint, and maximally coalesced, and the shard-routed
//     point path agrees with the all-shard reference path,
//   * structural invariants -- per-shard CM checks plus the engine's
//     clustered-prefix order, at every epoch.
// A dedicated case drives a concurrent reader thread through live swaps:
// reads racing the recluster must keep returning the exact pre-computed
// counts on both sides of (and during) each epoch handoff.
//
// The CRUD variant (CrudFuzzTest) extends the interleavings with deletes,
// updates, and compacting reclusters, checked against a shadow oracle
// keyed by a stable per-row identity column: after every step the engine's
// probe, a full scan of the engine's current table, AND the oracle's count
// must agree exactly, under both plan-choice policies; a final synchronous
// compaction must drain every tombstone and leave a clustered index equal
// to a from-scratch Build. A concurrent case drives a reader through live
// compaction swaps while deletes and updates land.
//
// The Long variants multiply seeds and operations; they are skipped unless
// CORRMAP_LONG_TESTS is set (CI runs them nightly under the ctest label of
// the same name).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "exec/access_path.h"
#include "index/clustered_index.h"
#include "serve/recluster.h"
#include "serve/serving_engine.h"
#include "serve/shard_router.h"
#include "storage/table.h"

namespace corrmap {
namespace {

using serve::ReclusterStats;
using serve::SelectResult;
using serve::ServingEngine;
using serve::ServingOptions;
using serve::ShardedCorrelationMap;

/// Coalescing invariant: sorted, disjoint, maximal runs whose total
/// matches num_ordinals.
void ExpectCoalesced(const CmLookupResult& res) {
  uint64_t total = 0;
  for (size_t i = 0; i < res.ranges.size(); ++i) {
    const OrdinalRange& r = res.ranges[i];
    ASSERT_LE(r.lo, r.hi);
    total += uint64_t(r.hi - r.lo) + 1;
    if (i > 0) {
      // Strictly after the previous run AND not adjacent to it (adjacent
      // runs must have been merged).
      ASSERT_GT(r.lo, res.ranges[i - 1].hi);
      ASSERT_GT(r.lo - res.ranges[i - 1].hi, 1);
    }
  }
  EXPECT_EQ(total, res.num_ordinals);
}

struct FuzzHarness {
  std::unique_ptr<Table> table;
  std::unique_ptr<ClusteredIndex> cidx;
  std::unique_ptr<ClusteredBucketing> cb;
  std::unique_ptr<ServingEngine> engine;
  Rng rng;

  FuzzHarness(uint64_t seed, int base_rows, size_t reserve_extra,
              ServingOptions::PlanChoice plan_choice =
                  ServingOptions::PlanChoice::kCostBased)
      : rng(seed) {
    Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u"),
                   ColumnDef::Int64("v")});
    table = std::make_unique<Table>("t", std::move(schema));
    for (int i = 0; i < base_rows; ++i) {
      const int64_t u = rng.UniformInt(0, 499);
      std::array<Value, 3> row = {Value(u / 10 + rng.UniformInt(0, 1)),
                                  Value(u), Value(rng.UniformInt(0, 49))};
      EXPECT_TRUE(table->AppendRow(row).ok());
    }
    EXPECT_TRUE(table->ClusterBy(0).ok());
    auto ci = ClusteredIndex::Build(*table, 0);
    EXPECT_TRUE(ci.ok());
    cidx = std::make_unique<ClusteredIndex>(std::move(*ci));
    auto built = ClusteredBucketing::Build(*table, 0, 32);
    EXPECT_TRUE(built.ok());
    cb = std::make_unique<ClusteredBucketing>(std::move(*built));

    ServingOptions opts;
    opts.num_workers = 1;
    opts.reserve_rows = table->NumRows() + reserve_extra;
    opts.plan_choice = plan_choice;
    // Refresh calibration aggressively so the fuzz interleavings exercise
    // residency republication racing appends, selects, and epoch swaps.
    opts.calibration_period = 16;
    engine = std::make_unique<ServingEngine>(table.get(), cidx.get(), opts);
    // CM 0: unbucketed identity over u (value-encoded ordinals survive a
    // physical reorder). CM 1: width-4 u-bucketing over v AND positional
    // c-bucketing -- the CM whose entire ordinal space must be re-based
    // by every recluster, and the only CM over v, so v-queries exercise
    // the bucket-run translation path end to end.
    CmOptions c0;
    c0.u_cols = {1};
    c0.u_bucketers = {Bucketer::Identity()};
    c0.c_col = 0;
    EXPECT_TRUE(engine->AttachCm(c0).ok());
    CmOptions c1;
    c1.u_cols = {2};
    c1.u_bucketers = {Bucketer::NumericWidth(4)};
    c1.c_col = 0;
    c1.c_buckets = cb.get();
    EXPECT_TRUE(engine->AttachCm(c1).ok());
  }

  std::vector<std::vector<Key>> RandomBatch(int max_rows, int u_lo = 0,
                                            int u_hi = 499) {
    const int n = int(rng.UniformInt(1, max_rows));
    std::vector<std::vector<Key>> rows;
    rows.reserve(size_t(n));
    for (int i = 0; i < n; ++i) {
      const int64_t u = rng.UniformInt(u_lo, u_hi);
      rows.push_back({Key(u / 10), Key(u), Key(rng.UniformInt(0, 49))});
    }
    return rows;
  }

  Query RandomQuery() {
    switch (rng.UniformInt(0, 3)) {
      case 0:
        return Query({Predicate::Eq(*table, "u",
                                    Value(rng.UniformInt(0, 520)))});
      case 1: {
        const int64_t lo = rng.UniformInt(0, 480);
        return Query({Predicate::Between(*table, "u", Value(lo),
                                         Value(lo + rng.UniformInt(0, 60)))});
      }
      case 2:
        return Query({Predicate::Eq(*table, "v",
                                    Value(rng.UniformInt(0, 55)))});
      default: {
        const int64_t lo = rng.UniformInt(0, 45);
        return Query({Predicate::Between(*table, "v", Value(lo),
                                         Value(lo + rng.UniformInt(0, 10)))});
      }
    }
  }

  /// The differential oracle: probe through the engine, scan the engine's
  /// current table, require exact equality -- plus ChosenPlan coherence
  /// (whatever plan won, its report must be self-consistent; the plan
  /// never dereferences a retired epoch's structures, which the TSAN job
  /// would flag as a use-after-free or race).
  void ExpectProbeEqualsScan(const Query& q) {
    const SelectResult probe = engine->ExecuteSelect(q);
    const ExecResult scan = FullTableScan(engine->table(), q);
    ASSERT_EQ(probe.num_matches, scan.NumMatches())
        << "epoch " << probe.recluster_epoch << " plan " << probe.plan;
    ASSERT_EQ(probe.used_cm, probe.plan_kind == PlanKind::kCmProbe);
    if (probe.plan_kind == PlanKind::kCmProbe) {
      ASSERT_LT(probe.plan_cm_slot, engine->num_cms());
    } else {
      ASSERT_EQ(probe.plan_cm_slot, SelectResult::kNoCmSlot);
    }
    ASSERT_GE(probe.heap_residency, 0.0);
    ASSERT_LE(probe.heap_residency, 1.0);
  }

  /// Run-coalescing + routed-vs-all-shard differential on raw lookups.
  void CheckLookupInvariants() {
    for (size_t i = 0; i < engine->num_cms(); ++i) {
      const ShardedCorrelationMap& scm = engine->cm(i);
      std::array<CmColumnPredicate, 1> point = {CmColumnPredicate::Points(
          {Key(rng.UniformInt(0, 520)), Key(rng.UniformInt(0, 520))})};
      const CmLookupResult routed = scm.Lookup(point);
      const CmLookupResult reference = scm.LookupProbingAllShards(point);
      ExpectCoalesced(routed);
      ExpectCoalesced(reference);
      EXPECT_EQ(routed.ToOrdinals(), reference.ToOrdinals());
      const int64_t lo = rng.UniformInt(0, 480);
      std::array<CmColumnPredicate, 1> range = {
          CmColumnPredicate::Range(double(lo), double(lo + 40))};
      ExpectCoalesced(scm.Lookup(range));
    }
  }
};

void RunSequentialFuzz(uint64_t seed, int ops, int base_rows,
                       ServingOptions::PlanChoice plan_choice =
                           ServingOptions::PlanChoice::kCostBased) {
  FuzzHarness h(seed, base_rows, /*reserve_extra=*/size_t(ops) * 400 + 4096,
                plan_choice);
  uint64_t epochs_seen = h.engine->ReclusterEpoch();
  for (int op = 0; op < ops; ++op) {
    switch (h.rng.UniformInt(0, 9)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // append a batch
        ASSERT_TRUE(h.engine->ApplyAppend(h.RandomBatch(400)).ok());
        break;
      }
      case 4: {  // synchronous recluster
        auto stats = h.engine->Recluster();
        ASSERT_TRUE(stats.ok());
        if (stats->performed()) {
          ASSERT_EQ(h.engine->TailRows(), 0u);
          ASSERT_GT(stats->epoch, epochs_seen);
          epochs_seen = stats->epoch;
        }
        break;
      }
      case 5: {  // structural + lookup invariants
        ASSERT_TRUE(h.engine->CheckInvariants().ok());
        h.CheckLookupInvariants();
        break;
      }
      default: {  // select
        h.ExpectProbeEqualsScan(h.RandomQuery());
        break;
      }
    }
    if (op % 16 == 15) {
      for (int i = 0; i < 3; ++i) h.ExpectProbeEqualsScan(h.RandomQuery());
    }
  }
  // Final quiescent differential sweep at the last epoch.
  auto final_stats = h.engine->Recluster();
  ASSERT_TRUE(final_stats.ok());
  ASSERT_EQ(h.engine->TailRows(), 0u);
  ASSERT_TRUE(h.engine->CheckInvariants().ok());
  for (int i = 0; i < 12; ++i) h.ExpectProbeEqualsScan(h.RandomQuery());
  h.CheckLookupInvariants();
}

TEST(ReclusterFuzzTest, RandomInterleavingsKeepProbeEqualsScan) {
  // Cost-based plan choice (the serving default): scans, clustered
  // ranges, and CM probes all rotate through the winner's seat across
  // appends, reclusters, and calibration refreshes.
  for (uint64_t seed : {0xA1ull, 0xB2ull, 0xC3ull}) {
    RunSequentialFuzz(seed, /*ops=*/120, /*base_rows=*/4000);
  }
}

TEST(ReclusterFuzzTest, RandomInterleavingsFirstMatchPolicyStaysExact) {
  // The legacy policy must stay probe==scan-exact too (it is the bench's
  // A/B baseline).
  for (uint64_t seed : {0xA4ull, 0xB5ull}) {
    RunSequentialFuzz(seed, /*ops=*/120, /*base_rows=*/4000,
                      ServingOptions::PlanChoice::kFirstMatch);
  }
}

TEST(ReclusterFuzzTest, ConcurrentReaderSeesExactCountsAcrossSwaps) {
  // Queries target u in [0, 499]; the writer appends rows with u in
  // [1000, 1499] only, so every query's count is invariant across the
  // whole run -- any deviation observed by the racing reader would be a
  // torn epoch (half-moved rows, stale cache, or a mis-based CM).
  FuzzHarness h(0xD4, /*base_rows=*/8000, /*reserve_extra=*/1 << 20);
  std::vector<Query> queries;
  std::vector<uint64_t> expected;
  for (int i = 0; i < 8; ++i) {
    queries.push_back(h.RandomQuery());
    expected.push_back(
        FullTableScan(h.engine->table(), queries.back()).NumMatches());
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> epochs_observed{0};
  std::thread reader([&] {
    Rng r(0xE5);
    uint64_t max_epoch = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const size_t pick = size_t(r.UniformInt(0, int64_t(queries.size()) - 1));
      const SelectResult res = h.engine->ExecuteSelect(queries[pick]);
      EXPECT_EQ(res.num_matches, expected[pick])
          << "mid-recluster read diverged at epoch " << res.recluster_epoch;
      max_epoch = std::max(max_epoch, res.recluster_epoch);
      reads.fetch_add(1, std::memory_order_relaxed);
    }
    epochs_observed.store(max_epoch, std::memory_order_release);
  });
  std::thread writer([&] {
    Rng r(0xF6);
    FuzzHarness* hp = &h;
    for (int i = 0; i < 40 && !stop.load(std::memory_order_acquire); ++i) {
      std::vector<std::vector<Key>> rows;
      const int n = int(r.UniformInt(50, 400));
      for (int j = 0; j < n; ++j) {
        const int64_t u = r.UniformInt(1000, 1499);
        rows.push_back({Key(u / 10), Key(u), Key(r.UniformInt(100, 149))});
      }
      ASSERT_TRUE(hp->engine->ApplyAppend(rows).ok());
    }
  });

  // Reclusters race both threads; every pass hands off a live epoch.
  uint64_t performed = 0;
  for (int i = 0; i < 6; ++i) {
    auto stats = h.engine->Recluster();
    ASSERT_TRUE(stats.ok());
    if (stats->performed()) ++performed;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  writer.join();
  auto last = h.engine->Recluster();
  ASSERT_TRUE(last.ok());
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_GE(performed, 1u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(h.engine->TailRows(), 0u);
  ASSERT_TRUE(h.engine->CheckInvariants().ok());
  // Post-join quiescent differential: counts still exact vs the final
  // table, including the appended-but-never-queried tail rows' CM state.
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(h.engine->ExecuteSelect(queries[i]).num_matches, expected[i]);
  }
  for (int i = 0; i < 8; ++i) h.ExpectProbeEqualsScan(h.RandomQuery());
}

TEST(ReclusterFuzzTest, LongRandomInterleavings) {
  if (std::getenv("CORRMAP_LONG_TESTS") == nullptr) {
    GTEST_SKIP() << "set CORRMAP_LONG_TESTS=1 (nightly ctest label "
                    "CORRMAP_LONG_TESTS) to run the long fuzz";
  }
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    RunSequentialFuzz(seed * 0x9e37, /*ops=*/600, /*base_rows=*/6000);
  }
}

// ---------------------------------------------------------------------------
// Full-CRUD differential fuzz.
//
// Row identity: rids are positional and every recluster permutes them, so
// the shadow oracle cannot key on rids. A fourth "id" column carries a
// unique logical identity per row; deletes and updates resolve the current
// rid by scanning for the id, exactly as a client holding a logical key
// would re-resolve after an epoch swap.

/// A sampled query plus the predicate in oracle-evaluable form.
struct QuerySpec {
  Query query;
  size_t col = 1;  // 1 = u, 2 = v
  int64_t lo = 0;
  int64_t hi = 0;
};

struct CrudFuzzHarness {
  std::unique_ptr<Table> table;
  std::unique_ptr<ClusteredIndex> cidx;
  std::unique_ptr<ClusteredBucketing> cb;
  std::unique_ptr<ServingEngine> engine;
  Rng rng;
  /// id -> (c, u, v) for every live logical row; the differential oracle.
  std::unordered_map<int64_t, std::array<int64_t, 3>> oracle;
  std::vector<int64_t> live_ids;  // for O(1) random victim picks
  int64_t next_id = 0;

  CrudFuzzHarness(uint64_t seed, int base_rows, size_t reserve_extra,
                  ServingOptions::PlanChoice plan_choice =
                      ServingOptions::PlanChoice::kCostBased)
      : rng(seed) {
    Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u"),
                   ColumnDef::Int64("v"), ColumnDef::Int64("id")});
    table = std::make_unique<Table>("t", std::move(schema));
    for (int i = 0; i < base_rows; ++i) {
      const int64_t u = rng.UniformInt(0, 499);
      const int64_t v = rng.UniformInt(0, 49);
      const int64_t c = u / 10 + rng.UniformInt(0, 1);
      std::array<Value, 4> row = {Value(c), Value(u), Value(v),
                                  Value(next_id)};
      EXPECT_TRUE(table->AppendRow(row).ok());
      oracle[next_id] = {c, u, v};
      live_ids.push_back(next_id);
      ++next_id;
    }
    EXPECT_TRUE(table->ClusterBy(0).ok());
    auto ci = ClusteredIndex::Build(*table, 0);
    EXPECT_TRUE(ci.ok());
    cidx = std::make_unique<ClusteredIndex>(std::move(*ci));
    auto built = ClusteredBucketing::Build(*table, 0, 32);
    EXPECT_TRUE(built.ok());
    cb = std::make_unique<ClusteredBucketing>(std::move(*built));

    ServingOptions opts;
    opts.num_workers = 1;
    opts.reserve_rows = table->NumRows() + reserve_extra;
    opts.plan_choice = plan_choice;
    opts.calibration_period = 16;
    engine = std::make_unique<ServingEngine>(table.get(), cidx.get(), opts);
    // Same CM spread as FuzzHarness: unbucketed identity over u, and a
    // width-4 u-bucketed + positionally c-bucketed CM over v (the one
    // whose ordinal space every compaction re-bases).
    CmOptions c0;
    c0.u_cols = {1};
    c0.u_bucketers = {Bucketer::Identity()};
    c0.c_col = 0;
    EXPECT_TRUE(engine->AttachCm(c0).ok());
    CmOptions c1;
    c1.u_cols = {2};
    c1.u_bucketers = {Bucketer::NumericWidth(4)};
    c1.c_col = 0;
    c1.c_buckets = cb.get();
    EXPECT_TRUE(engine->AttachCm(c1).ok());
  }

  /// Current rid of logical row `id` (positional ids move at every swap).
  RowId ResolveId(int64_t id) const {
    const Table& t = engine->table();
    for (RowId r = 0; r < t.NumRows(); ++r) {
      if (!t.IsDeleted(r) && t.GetKey(r, 3) == Key(id)) return r;
    }
    ADD_FAILURE() << "live id " << id << " not found in the heap";
    return 0;
  }

  int64_t PickLiveId() {
    const size_t i = size_t(rng.UniformInt(0, int64_t(live_ids.size()) - 1));
    return live_ids[i];
  }

  void ForgetId(int64_t id) {
    const auto it = std::find(live_ids.begin(), live_ids.end(), id);
    ASSERT_NE(it, live_ids.end());
    *it = live_ids.back();
    live_ids.pop_back();
    oracle.erase(id);
  }

  void AppendBatch(int max_rows) {
    const int n = int(rng.UniformInt(1, max_rows));
    std::vector<std::vector<Key>> rows;
    rows.reserve(size_t(n));
    for (int i = 0; i < n; ++i) {
      const int64_t u = rng.UniformInt(0, 499);
      const int64_t v = rng.UniformInt(0, 49);
      rows.push_back({Key(u / 10), Key(u), Key(v), Key(next_id)});
      oracle[next_id] = {u / 10, u, v};
      live_ids.push_back(next_id);
      ++next_id;
    }
    ASSERT_TRUE(engine->ApplyAppend(rows).ok());
  }

  void DeleteOne() {
    const int64_t id = PickLiveId();
    // Pin the delete to the epoch the rid was resolved against -- the
    // single-threaded interleaving never swaps in between, so the CAS
    // must always succeed here (the Aborted path has its own test).
    const RowId rid = ResolveId(id);
    ASSERT_TRUE(engine->ApplyDelete(rid, engine->ReclusterEpoch()).ok());
    ForgetId(id);
  }

  void UpdateOne() {
    const int64_t id = PickLiveId();
    const RowId rid = ResolveId(id);
    const int64_t u = rng.UniformInt(0, 499);
    const int64_t v = rng.UniformInt(0, 49);
    const std::array<Key, 4> fresh = {Key(u / 10), Key(u), Key(v), Key(id)};
    ASSERT_TRUE(
        engine->ApplyUpdate(rid, fresh, engine->ReclusterEpoch()).ok());
    oracle[id] = {u / 10, u, v};
  }

  QuerySpec RandomSpec() {
    switch (rng.UniformInt(0, 3)) {
      case 0: {
        const int64_t u = rng.UniformInt(0, 520);
        return {Query({Predicate::Eq(*table, "u", Value(u))}), 1, u, u};
      }
      case 1: {
        const int64_t lo = rng.UniformInt(0, 480);
        const int64_t hi = lo + rng.UniformInt(0, 60);
        return {Query({Predicate::Between(*table, "u", Value(lo),
                                          Value(hi))}),
                1, lo, hi};
      }
      case 2: {
        const int64_t v = rng.UniformInt(0, 55);
        return {Query({Predicate::Eq(*table, "v", Value(v))}), 2, v, v};
      }
      default: {
        const int64_t lo = rng.UniformInt(0, 45);
        const int64_t hi = lo + rng.UniformInt(0, 10);
        return {Query({Predicate::Between(*table, "v", Value(lo),
                                          Value(hi))}),
                2, lo, hi};
      }
    }
  }

  uint64_t OracleCount(const QuerySpec& s) const {
    uint64_t n = 0;
    for (const auto& [id, vals] : oracle) {
      const int64_t x = vals[s.col];
      if (x >= s.lo && x <= s.hi) ++n;
    }
    return n;
  }

  /// The three-way differential: engine probe == full scan of the
  /// engine's current table == shadow oracle, exactly.
  void ExpectThreeWayExact(const QuerySpec& s) {
    const SelectResult probe = engine->ExecuteSelect(s.query);
    const ExecResult scan = FullTableScan(engine->table(), s.query);
    const uint64_t expected = OracleCount(s);
    ASSERT_EQ(probe.num_matches, scan.NumMatches())
        << "probe!=scan at epoch " << probe.recluster_epoch << " plan "
        << probe.plan;
    ASSERT_EQ(probe.num_matches, expected)
        << "engine diverged from the shadow oracle at epoch "
        << probe.recluster_epoch << " plan " << probe.plan;
  }

  void CheckLookupInvariants() {
    for (size_t i = 0; i < engine->num_cms(); ++i) {
      const ShardedCorrelationMap& scm = engine->cm(i);
      std::array<CmColumnPredicate, 1> point = {CmColumnPredicate::Points(
          {Key(rng.UniformInt(0, 520)), Key(rng.UniformInt(0, 520))})};
      const CmLookupResult routed = scm.Lookup(point);
      const CmLookupResult reference = scm.LookupProbingAllShards(point);
      ExpectCoalesced(routed);
      ExpectCoalesced(reference);
      EXPECT_EQ(routed.ToOrdinals(), reference.ToOrdinals());
    }
  }
};

void ExpectCidxEqualsScratchBuild(const ServingEngine& engine) {
  auto scratch = ClusteredIndex::Build(engine.table(), 0);
  ASSERT_TRUE(scratch.ok());
  const ClusteredIndex& live = engine.cidx();
  ASSERT_EQ(live.NumDistinctKeys(), scratch->NumDistinctKeys());
  for (size_t i = 0; i < scratch->NumDistinctKeys(); ++i) {
    ASSERT_EQ(live.DistinctKey(i), scratch->DistinctKey(i));
    ASSERT_EQ(live.LookupEqual(scratch->DistinctKey(i)),
              scratch->LookupEqual(scratch->DistinctKey(i)));
  }
}

void RunCrudFuzz(uint64_t seed, int ops, int base_rows,
                 ServingOptions::PlanChoice plan_choice =
                     ServingOptions::PlanChoice::kCostBased) {
  CrudFuzzHarness h(seed, base_rows,
                    /*reserve_extra=*/size_t(ops) * 300 + 4096, plan_choice);
  for (int op = 0; op < ops; ++op) {
    switch (h.rng.UniformInt(0, 11)) {
      case 0:
      case 1: {
        h.AppendBatch(200);
        break;
      }
      case 2:
      case 3: {
        h.DeleteOne();
        break;
      }
      case 4:
      case 5: {
        h.UpdateOne();
        break;
      }
      case 6: {  // merge-mode recluster carries tombstones
        auto stats = h.engine->Recluster();
        ASSERT_TRUE(stats.ok());
        if (stats->performed()) {
          ASSERT_EQ(h.engine->TailRows(), 0u);
        }
        break;
      }
      case 7: {  // compacting recluster drops them
        auto stats = h.engine->Compact();
        ASSERT_TRUE(stats.ok());
        if (stats->performed()) {
          ASSERT_EQ(h.engine->table().NumDeleted(),
                    stats->tombstones_carried);
        }
        break;
      }
      case 8: {
        ASSERT_TRUE(h.engine->CheckInvariants().ok());
        h.CheckLookupInvariants();
        break;
      }
      default: {
        h.ExpectThreeWayExact(h.RandomSpec());
        break;
      }
    }
    ASSERT_EQ(h.engine->table().NumLiveRows(), h.oracle.size());
    if (op % 16 == 15) {
      for (int i = 0; i < 3; ++i) h.ExpectThreeWayExact(h.RandomSpec());
    }
  }
  // Quiescent close: a synchronous compaction must drain every tombstone,
  // fold the tail, and leave a clustered index identical to building one
  // from scratch over the surviving rows.
  auto final_stats = h.engine->Compact();
  ASSERT_TRUE(final_stats.ok());
  ASSERT_EQ(h.engine->TailRows(), 0u);
  ASSERT_EQ(h.engine->table().NumDeleted(), 0u);
  ASSERT_EQ(h.engine->table().NumRows(), h.oracle.size());
  ExpectCidxEqualsScratchBuild(*h.engine);
  ASSERT_TRUE(h.engine->CheckInvariants().ok());
  for (int i = 0; i < 12; ++i) h.ExpectThreeWayExact(h.RandomSpec());
  h.CheckLookupInvariants();
}

TEST(CrudFuzzTest, SeededInterleavingsMatchShadowOracleCostBased) {
  for (uint64_t seed : {0x11ull, 0x22ull, 0x33ull, 0x44ull, 0x55ull,
                        0x66ull, 0x77ull, 0x88ull, 0x99ull}) {
    RunCrudFuzz(seed, /*ops=*/90, /*base_rows=*/2500);
  }
}

TEST(CrudFuzzTest, SeededInterleavingsMatchShadowOracleFirstMatch) {
  for (uint64_t seed : {0x1Aull, 0x2Bull, 0x3Cull, 0x4Dull, 0x5Eull,
                        0x6Full, 0x7Aull}) {
    RunCrudFuzz(seed, /*ops=*/90, /*base_rows=*/2500,
                ServingOptions::PlanChoice::kFirstMatch);
  }
}

TEST(CrudFuzzTest, ConcurrentReaderStaysExactAcrossLiveCompactions) {
  // Queries cover u in [0, 499] / v in [0, 49]; the writer thread appends
  // rows with u in [1000, 1499] and v in [100, 149] only, and the main
  // thread deletes/updates only those writer rows -- so every query's
  // count is invariant for the whole run. The main thread is the sole
  // swapper: rids it resolves between compactions stay valid because
  // concurrent appends only grow the heap. Any reader deviation is a torn
  // epoch, a stale cache entry, or a resurrected/lost tombstone.
  CrudFuzzHarness h(0xD7, /*base_rows=*/8000, /*reserve_extra=*/1 << 20);
  std::vector<QuerySpec> specs;
  std::vector<uint64_t> expected;
  for (int i = 0; i < 8; ++i) {
    specs.push_back(h.RandomSpec());
    expected.push_back(
        FullTableScan(h.engine->table(), specs.back().query).NumMatches());
    ASSERT_EQ(expected.back(), h.OracleCount(specs.back()));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::thread reader([&] {
    Rng r(0xE8);
    while (!stop.load(std::memory_order_acquire)) {
      const size_t pick = size_t(r.UniformInt(0, int64_t(specs.size()) - 1));
      const SelectResult res = h.engine->ExecuteSelect(specs[pick].query);
      EXPECT_EQ(res.num_matches, expected[pick])
          << "read diverged at epoch " << res.recluster_epoch;
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::atomic<int> batches_appended{0};
  std::thread writer([&] {
    Rng r(0xF9);
    for (int i = 0; i < 40 && !stop.load(std::memory_order_acquire); ++i) {
      std::vector<std::vector<Key>> rows;
      const int n = int(r.UniformInt(50, 300));
      for (int j = 0; j < n; ++j) {
        const int64_t u = r.UniformInt(1000, 1499);
        rows.push_back({Key(u / 10), Key(u), Key(r.UniformInt(100, 149)),
                        Key(int64_t{1} << 40)});
      }
      ASSERT_TRUE(h.engine->ApplyAppend(rows).ok());
      batches_appended.fetch_add(1, std::memory_order_release);
    }
  });

  // Main thread: rounds of delete-some/update-some over the writer's
  // rows, each followed by a live compaction racing both threads. Each
  // round first waits for the writer to make progress so the compactions
  // genuinely interleave with appends instead of outrunning them.
  Rng mr(0xAB);
  uint64_t performed = 0;
  uint64_t deleted = 0;
  for (int round = 0; round < 6; ++round) {
    while (batches_appended.load(std::memory_order_acquire) <
           (round + 1) * 6) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const Table& t = h.engine->table();
    const RowId n = RowId(t.NumRows());  // snapshot; appends only grow it
    std::vector<RowId> high;
    for (RowId r = 0; r < n; ++r) {
      if (!t.IsDeleted(r) && t.GetKey(r, 1) >= Key(int64_t{1000})) {
        high.push_back(r);
      }
    }
    std::vector<RowId> victims;
    for (size_t i = 0; i < high.size() && victims.size() < 25; i += 7) {
      victims.push_back(high[i]);
    }
    if (!victims.empty()) {
      ASSERT_TRUE(h.engine->ApplyDeletes(victims).ok());
      deleted += victims.size();
    }
    for (size_t i = 3; i < high.size() && i < 40; i += 11) {
      if (t.IsDeleted(high[i])) continue;  // just deleted above
      const int64_t u = mr.UniformInt(1000, 1499);
      const std::array<Key, 4> fresh = {Key(u / 10), Key(u),
                                        Key(mr.UniformInt(100, 149)),
                                        t.GetKey(high[i], 3)};
      ASSERT_TRUE(h.engine->ApplyUpdate(high[i], fresh).ok());
    }
    auto stats = h.engine->Compact();
    ASSERT_TRUE(stats.ok());
    if (stats->performed()) ++performed;
  }
  writer.join();
  auto last = h.engine->Compact();
  ASSERT_TRUE(last.ok());
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_GE(performed, 1u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_GT(deleted, 0u);
  EXPECT_EQ(h.engine->TailRows(), 0u);
  EXPECT_EQ(h.engine->table().NumDeleted(), 0u);
  ASSERT_TRUE(h.engine->CheckInvariants().ok());
  // Post-join quiescent differential: counts still exact vs the final
  // table, with every delete and update folded into the compacted heap.
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_EQ(h.engine->ExecuteSelect(specs[i].query).num_matches,
              expected[i]);
    ASSERT_EQ(FullTableScan(h.engine->table(), specs[i].query).NumMatches(),
              expected[i]);
  }
  ExpectCidxEqualsScratchBuild(*h.engine);
}

// ---------------------------------------------------------------------------
// Routed mode: the same CRUD interleavings driven through a 4-shard
// ShardRouter. Every step keeps the three-way differential exact -- the
// router's merged probe == the sum of full scans over every shard's
// current table == the shadow oracle -- across per-shard reclusters and
// compactions, cross-shard update moves, and CM-pruned scatters.
// ---------------------------------------------------------------------------

struct RoutedCrudFuzzHarness {
  std::unique_ptr<Table> table;
  std::unique_ptr<serve::ShardRouter> router;
  Rng rng;
  std::unordered_map<int64_t, std::array<int64_t, 3>> oracle;
  std::vector<int64_t> live_ids;
  int64_t next_id = 0;

  /// scatter_budget_ms / visit_delay_us feed the parallel-scatter race
  /// cases: a nonzero budget exercises the degradation path under
  /// concurrency, a nonzero per-visit delay stretches each gather so a
  /// per-shard publish can land inside its window.
  RoutedCrudFuzzHarness(uint64_t seed, int base_rows, size_t reserve_extra,
                        double scatter_budget_ms = 0,
                        uint64_t visit_delay_us = 0)
      : rng(seed) {
    Schema schema({ColumnDef::Int64("c"), ColumnDef::Int64("u"),
                   ColumnDef::Int64("v"), ColumnDef::Int64("id")});
    table = std::make_unique<Table>("t", std::move(schema));
    for (int i = 0; i < base_rows; ++i) {
      const int64_t u = rng.UniformInt(0, 499);
      const int64_t v = rng.UniformInt(0, 49);
      const int64_t c = u / 10 + rng.UniformInt(0, 1);
      std::array<Value, 4> row = {Value(c), Value(u), Value(v),
                                  Value(next_id)};
      EXPECT_TRUE(table->AppendRow(row).ok());
      oracle[next_id] = {c, u, v};
      live_ids.push_back(next_id);
      ++next_id;
    }
    EXPECT_TRUE(table->ClusterBy(0).ok());
    serve::RouterOptions opts;
    opts.num_shards = 4;
    opts.engine.num_workers = 1;
    opts.engine.reserve_rows = size_t(base_rows) + reserve_extra;
    opts.engine.calibration_period = 16;
    opts.scatter_budget_ms = scatter_budget_ms;
    if (visit_delay_us > 0) {
      opts.on_shard_visit = [visit_delay_us](const serve::SelectResult&) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(visit_delay_us));
      };
    }
    auto r = serve::ShardRouter::Create(*table, 0, opts);
    EXPECT_TRUE(r.ok());
    router = std::move(*r);
    // Same CM spread as the single-engine harness: the unbucketed identity
    // CM over u snapshot-copies across each shard's swaps; the c-bucketed
    // CM over v is re-based per shard per swap.
    CmOptions c0;
    c0.u_cols = {1};
    c0.u_bucketers = {Bucketer::Identity()};
    c0.c_col = 0;
    EXPECT_TRUE(router->AttachCm(c0).ok());
    auto cb = ClusteredBucketing::Build(*table, 0, 32);
    EXPECT_TRUE(cb.ok());
    CmOptions c1;
    c1.u_cols = {2};
    c1.u_bucketers = {Bucketer::NumericWidth(4)};
    c1.c_col = 0;
    c1.c_buckets = &*cb;
    EXPECT_TRUE(router->AttachCm(c1).ok());
  }

  /// Current (shard, rid) of logical row `id`.
  std::pair<size_t, RowId> ResolveId(int64_t id) const {
    for (size_t s = 0; s < router->num_shards(); ++s) {
      const Table& t = router->shard(s).table();
      for (RowId r = 0; r < t.NumRows(); ++r) {
        if (!t.IsDeleted(r) && t.GetKey(r, 3) == Key(id)) return {s, r};
      }
    }
    ADD_FAILURE() << "live id " << id << " not found in any shard";
    return {0, 0};
  }

  int64_t PickLiveId() {
    const size_t i = size_t(rng.UniformInt(0, int64_t(live_ids.size()) - 1));
    return live_ids[i];
  }

  void ForgetId(int64_t id) {
    const auto it = std::find(live_ids.begin(), live_ids.end(), id);
    ASSERT_NE(it, live_ids.end());
    *it = live_ids.back();
    live_ids.pop_back();
    oracle.erase(id);
  }

  void AppendBatch(int max_rows) {
    const int n = int(rng.UniformInt(1, max_rows));
    std::vector<std::vector<Key>> rows;
    rows.reserve(size_t(n));
    for (int i = 0; i < n; ++i) {
      const int64_t u = rng.UniformInt(0, 499);
      const int64_t v = rng.UniformInt(0, 49);
      rows.push_back({Key(u / 10), Key(u), Key(v), Key(next_id)});
      oracle[next_id] = {u / 10, u, v};
      live_ids.push_back(next_id);
      ++next_id;
    }
    ASSERT_TRUE(router->ApplyAppend(rows).ok());
  }

  void DeleteOne() {
    const int64_t id = PickLiveId();
    const auto [shard, rid] = ResolveId(id);
    ASSERT_TRUE(
        router->ApplyDelete(shard, rid, router->ShardEpoch(shard)).ok());
    ForgetId(id);
  }

  void UpdateOne() {
    const int64_t id = PickLiveId();
    const auto [shard, rid] = ResolveId(id);
    const int64_t u = rng.UniformInt(0, 499);
    const int64_t v = rng.UniformInt(0, 49);
    const std::array<Key, 4> fresh = {Key(u / 10), Key(u), Key(v), Key(id)};
    ASSERT_TRUE(
        router->ApplyUpdate(shard, rid, fresh, router->ShardEpoch(shard))
            .ok());
    oracle[id] = {u / 10, u, v};
  }

  QuerySpec RandomSpec() {
    switch (rng.UniformInt(0, 4)) {
      case 0: {
        const int64_t u = rng.UniformInt(0, 520);
        return {Query({Predicate::Eq(*table, "u", Value(u))}), 1, u, u};
      }
      case 1: {
        const int64_t lo = rng.UniformInt(0, 480);
        const int64_t hi = lo + rng.UniformInt(0, 60);
        return {Query({Predicate::Between(*table, "u", Value(lo),
                                          Value(hi))}),
                1, lo, hi};
      }
      case 2: {
        const int64_t v = rng.UniformInt(0, 55);
        return {Query({Predicate::Eq(*table, "v", Value(v))}), 2, v, v};
      }
      case 3: {
        // Clustered predicates exercise the key-range routing tier.
        const int64_t lo = rng.UniformInt(0, 45);
        const int64_t hi = lo + rng.UniformInt(0, 12);
        return {Query({Predicate::Between(*table, "c", Value(lo),
                                          Value(hi))}),
                0, lo, hi};
      }
      default: {
        const int64_t lo = rng.UniformInt(0, 45);
        const int64_t hi = lo + rng.UniformInt(0, 10);
        return {Query({Predicate::Between(*table, "v", Value(lo),
                                          Value(hi))}),
                2, lo, hi};
      }
    }
  }

  uint64_t OracleCount(const QuerySpec& s) const {
    uint64_t n = 0;
    for (const auto& [id, vals] : oracle) {
      const int64_t x = vals[s.col];
      if (x >= s.lo && x <= s.hi) ++n;
    }
    return n;
  }

  uint64_t ScanAllShards(const Query& q) const {
    uint64_t n = 0;
    for (size_t s = 0; s < router->num_shards(); ++s) {
      n += FullTableScan(router->shard(s).table(), q).NumMatches();
    }
    return n;
  }

  /// Three-way differential through the router: merged probe == per-shard
  /// scans summed == shadow oracle, plus routing sanity (every shard is
  /// either visited or pruned, never both or neither).
  void ExpectThreeWayExact(const QuerySpec& s) {
    const serve::RoutedSelectResult res = router->ExecuteSelect(s.query);
    ASSERT_EQ(res.shards_visited + res.shards_pruned, router->num_shards());
    const uint64_t scan = ScanAllShards(s.query);
    const uint64_t expected = OracleCount(s);
    ASSERT_EQ(res.merged.num_matches, scan)
        << "router probe != summed shard scans, plan " << res.merged.plan;
    ASSERT_EQ(res.merged.num_matches, expected)
        << "router diverged from the shadow oracle (visited "
        << res.shards_visited << ", pruned " << res.shards_pruned << ")";
  }

  size_t TotalLiveRows() const {
    size_t n = 0;
    for (size_t s = 0; s < router->num_shards(); ++s) {
      n += router->shard(s).table().NumLiveRows();
    }
    return n;
  }
};

void RunRoutedCrudFuzz(uint64_t seed, int ops, int base_rows) {
  RoutedCrudFuzzHarness h(seed, base_rows,
                          /*reserve_extra=*/size_t(ops) * 300 + 4096);
  for (int op = 0; op < ops; ++op) {
    switch (h.rng.UniformInt(0, 11)) {
      case 0:
      case 1: {
        h.AppendBatch(200);
        break;
      }
      case 2:
      case 3: {
        h.DeleteOne();
        break;
      }
      case 4:
      case 5: {
        h.UpdateOne();
        break;
      }
      case 6: {  // recluster one random shard
        const size_t s =
            size_t(h.rng.UniformInt(0, int64_t(h.router->num_shards()) - 1));
        auto stats = h.router->Recluster(s);
        ASSERT_TRUE(stats.ok());
        if (stats->performed()) {
          ASSERT_EQ(h.router->shard(s).TailRows(), 0u);
        }
        break;
      }
      case 7: {  // compact one random shard
        const size_t s =
            size_t(h.rng.UniformInt(0, int64_t(h.router->num_shards()) - 1));
        auto stats = h.router->Compact(s);
        ASSERT_TRUE(stats.ok());
        break;
      }
      case 8: {
        ASSERT_TRUE(h.router->CheckInvariants().ok());
        break;
      }
      default: {
        h.ExpectThreeWayExact(h.RandomSpec());
        break;
      }
    }
    ASSERT_EQ(h.TotalLiveRows(), h.oracle.size());
    if (op % 16 == 15) {
      for (int i = 0; i < 3; ++i) h.ExpectThreeWayExact(h.RandomSpec());
    }
  }
  // Quiescent close: compact every shard, then a final differential sweep
  // with no tails and no tombstones anywhere in the partition.
  ASSERT_TRUE(h.router->CompactAll().ok());
  for (size_t s = 0; s < h.router->num_shards(); ++s) {
    ASSERT_EQ(h.router->shard(s).TailRows(), 0u);
    ASSERT_EQ(h.router->shard(s).table().NumDeleted(), 0u);
  }
  ASSERT_TRUE(h.router->CheckInvariants().ok());
  for (int i = 0; i < 12; ++i) h.ExpectThreeWayExact(h.RandomSpec());
}

TEST(RoutedCrudFuzzTest, CrudThroughRouterStaysThreeWayExact) {
  for (uint64_t seed : {0xD1ull, 0xD2ull}) {
    RunRoutedCrudFuzz(seed, /*ops=*/90, /*base_rows=*/3000);
  }
}

// ---------------------------------------------------------------------------
// Parallel scatter vs per-shard publishes: seeded rounds of quiescent CRUD
// set up a frozen query battery with known counts, then concurrent readers
// drive parallel scatters while the main thread fires per-shard reclusters
// and compactions. Both passes preserve logical content, so every in-flight
// scatter must keep merging to the precomputed oracle count no matter which
// shard swaps mid-gather; the on_shard_visit delay stretches each visit so
// publishes land inside gather windows instead of between them.
// ---------------------------------------------------------------------------

void RunParallelScatterFuzz(uint64_t seed, int rounds, int base_rows,
                            double scatter_budget_ms) {
  RoutedCrudFuzzHarness h(seed, base_rows,
                          /*reserve_extra=*/size_t(rounds) * 2048 + 4096,
                          scatter_budget_ms, /*visit_delay_us=*/200);
  Rng chaos_rng(seed ^ 0xC4A05);
  for (int round = 0; round < rounds; ++round) {
    // Quiescent CRUD evolves the partition between race windows.
    for (int op = 0; op < 10; ++op) {
      switch (h.rng.UniformInt(0, 3)) {
        case 0:
          h.AppendBatch(150);
          break;
        case 1:
          h.DeleteOne();
          break;
        default:
          h.UpdateOne();
          break;
      }
    }
    // Freeze the battery; the chaos below only reclusters and compacts,
    // which keep every logical row, so these counts are race-invariant.
    std::vector<QuerySpec> specs;
    std::vector<uint64_t> expected;
    for (int i = 0; i < 6; ++i) {
      specs.push_back(h.RandomSpec());
      expected.push_back(h.OracleCount(specs.back()));
      ASSERT_EQ(h.ScanAllShards(specs.back().query), expected.back());
    }

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> reads{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
      readers.emplace_back([&, t] {
        Rng r(seed ^ (0x51ull + uint64_t(t)));
        do {
          const size_t pick =
              size_t(r.UniformInt(0, int64_t(specs.size()) - 1));
          const serve::RoutedSelectResult res =
              h.router->ExecuteSelect(specs[pick].query);
          EXPECT_EQ(res.merged.num_matches, expected[pick])
              << "scatter diverged (visited " << res.shards_visited
              << ", degraded " << res.shards_degraded << ")";
          reads.fetch_add(1, std::memory_order_relaxed);
        } while (!stop.load(std::memory_order_acquire));
      });
    }
    // Per-shard publishes racing the in-flight scatters.
    for (int i = 0; i < 6; ++i) {
      const size_t s = size_t(
          chaos_rng.UniformInt(0, int64_t(h.router->num_shards()) - 1));
      if (chaos_rng.UniformInt(0, 1) == 0) {
        ASSERT_TRUE(h.router->Recluster(s).ok());
      } else {
        ASSERT_TRUE(h.router->Compact(s).ok());
      }
    }
    stop.store(true, std::memory_order_release);
    for (std::thread& t : readers) t.join();
    EXPECT_GE(reads.load(), 3u);

    // Quiescent three-way close (shard scans are not epoch-pinned, so
    // they stayed out of the race above).
    for (size_t i = 0; i < specs.size(); ++i) {
      ASSERT_EQ(h.ScanAllShards(specs[i].query), expected[i]);
      ASSERT_EQ(h.router->ExecuteSelect(specs[i].query).merged.num_matches,
                expected[i]);
    }
    ASSERT_TRUE(h.router->CheckInvariants().ok());
  }
}

TEST(RoutedCrudFuzzTest, ParallelScatterRacesReclusterPublishes) {
  RunParallelScatterFuzz(0xE1, /*rounds=*/3, /*base_rows=*/3000,
                         /*scatter_budget_ms=*/0);
  // The budget leg degrades some visits mid-race; counts must hold.
  RunParallelScatterFuzz(0xE2, /*rounds=*/3, /*base_rows=*/3000,
                         /*scatter_budget_ms=*/0.05);
}

TEST(RoutedCrudFuzzTest, LongParallelScatterInterleavings) {
  if (std::getenv("CORRMAP_LONG_TESTS") == nullptr) {
    GTEST_SKIP() << "set CORRMAP_LONG_TESTS=1 (nightly ctest label "
                    "CORRMAP_LONG_TESTS) to run the long scatter fuzz";
  }
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RunParallelScatterFuzz(seed * 0x9E37, /*rounds=*/8, /*base_rows=*/5000,
                           /*scatter_budget_ms=*/seed % 2 == 0 ? 0.05 : 0.0);
  }
}

TEST(CrudFuzzTest, LongCrudInterleavings) {
  if (std::getenv("CORRMAP_LONG_TESTS") == nullptr) {
    GTEST_SKIP() << "set CORRMAP_LONG_TESTS=1 (nightly ctest label "
                    "CORRMAP_LONG_TESTS) to run the long CRUD fuzz";
  }
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    RunCrudFuzz(seed * 0x7f4a, /*ops=*/400, /*base_rows=*/5000);
    RunCrudFuzz(seed * 0x7f4a + 1, /*ops=*/400, /*base_rows=*/5000,
                ServingOptions::PlanChoice::kFirstMatch);
  }
}

}  // namespace
}  // namespace corrmap
