// Node-based B+Tree storing (CompositeKey, RowId) entries with duplicates.
// Nodes map 1:1 to pages; traversals and modifications can be charged
// through a BufferPool so maintenance experiments see realistic dirty-page
// pressure. This is the substrate for secondary indexes and the baseline
// the paper compares CMs against.
#ifndef CORRMAP_INDEX_BTREE_H_
#define CORRMAP_INDEX_BTREE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace corrmap {

/// Tuning knobs. Capacities default to what an 8 KiB page holds for a
/// 20-byte entry (paper's observed ~20 B/entry secondary index density).
struct BTreeOptions {
  /// Max entries per leaf node.
  size_t leaf_capacity = 320;
  /// Max children per internal node.
  size_t internal_capacity = 320;
  /// Bytes per (key, rid) leaf entry for size accounting.
  size_t entry_bytes = 20;
  /// Optional page-cache integration; may be nullptr.
  BufferPool* pool = nullptr;
  /// File id within the pool (call pool->RegisterFile()).
  uint32_t file_id = 0;
};

/// Compares the first bound.size() parts of `key` against `bound`
/// (composite-prefix comparison for range scans).
std::strong_ordering ComparePrefix(const CompositeKey& key,
                                   const CompositeKey& bound);

/// B+Tree with duplicate keys; entries are unique (key, rid) pairs ordered
/// by key then rid. Deletion is lazy (no merging), as in PostgreSQL.
class BTree {
 public:
  explicit BTree(BTreeOptions options = {});
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts one entry. Duplicate (key, rid) pairs are rejected.
  Status Insert(const CompositeKey& key, RowId rid);

  /// Inserts every (key, rid) entry for one key in a single descent: the
  /// target leaf is located once and filled with as much of the sorted rid
  /// group as it can hold, touching that leaf page once instead of once
  /// per rid (the batched-maintenance grouping the CM path already has).
  /// Spillover past the leaf's capacity or key space falls back to the
  /// per-entry path, which handles splits and re-descends. `rids` must be
  /// sorted ascending; duplicates (in the batch or of existing entries)
  /// are rejected. `descents` (when non-null) accumulates the number of
  /// root-to-leaf descents actually performed -- 1 in the common case,
  /// more when the group spills -- for CPU-cost accounting.
  Status InsertMany(const CompositeKey& key, std::span<const RowId> rids,
                    size_t* descents = nullptr);

  /// Removes one entry; NotFound if absent.
  Status Delete(const CompositeKey& key, RowId rid);

  /// Appends all rids with key exactly equal to `key` (all parts).
  void Lookup(const CompositeKey& key, std::vector<RowId>* out) const;

  /// Visits entries with lo <= key <= hi in key order; return false from the
  /// callback to stop early. Bounds may be key prefixes: comparison uses
  /// only the bound's parts (composite-prefix scans, §7.2 Experiment 5).
  void Scan(const CompositeKey& lo, const CompositeKey& hi,
            const std::function<bool(const CompositeKey&, RowId)>& fn) const;

  /// Visits every entry in key order.
  void ScanAll(const std::function<bool(const CompositeKey&, RowId)>& fn) const;

  size_t NumEntries() const { return num_entries_; }
  size_t NumLeaves() const { return num_leaves_; }
  size_t NumNodes() const { return num_nodes_; }

  /// Root-to-leaf path length in nodes ("btree_height" in the paper).
  size_t Height() const;

  /// Index size under the page layout: one page per node.
  uint64_t SizeBytes() const;

  /// Pages of leaf entries that `n` entries occupy (for scan costing).
  uint64_t LeafPagesFor(uint64_t n) const {
    return (n + options_.leaf_capacity - 1) / options_.leaf_capacity;
  }

  const BTreeOptions& options() const { return options_; }

  /// Validates structural invariants (sorted entries, separator routing,
  /// capacity bounds, uniform leaf depth, leaf-chain order). Used by tests.
  Status CheckInvariants() const;

 private:
  struct Node;

  Node* NewNode(bool leaf);
  void FreeTree(Node* n);
  void Touch(const Node* n, bool dirty) const;
  // Returns the new right sibling if `n` split, else nullptr.
  Node* InsertRec(Node* n, const CompositeKey& key, RowId rid, Status* status);
  Status CheckNode(const Node* n, size_t depth, size_t* leaf_depth) const;

  BTreeOptions options_;
  Node* root_ = nullptr;
  size_t num_entries_ = 0;
  size_t num_leaves_ = 0;
  size_t num_nodes_ = 0;
  PageNo next_page_ = 0;
};

}  // namespace corrmap

#endif  // CORRMAP_INDEX_BTREE_H_
