#include "index/btree.h"

#include <algorithm>
#include <cassert>

namespace corrmap {

std::strong_ordering ComparePrefix(const CompositeKey& key,
                                   const CompositeKey& bound) {
  const size_t n = std::min(key.size(), bound.size());
  for (size_t i = 0; i < n; ++i) {
    auto c = key[i] <=> bound[i];
    if (c == std::partial_ordering::less) return std::strong_ordering::less;
    if (c == std::partial_ordering::greater) {
      return std::strong_ordering::greater;
    }
  }
  // All compared parts equal: the bound's prefix matches.
  return std::strong_ordering::equal;
}

namespace {

/// Entry / separator ordering: by key, then rid.
bool EntryLess(const CompositeKey& k1, RowId r1, const CompositeKey& k2,
               RowId r2) {
  auto c = k1 <=> k2;
  if (c != std::strong_ordering::equal) return c == std::strong_ordering::less;
  return r1 < r2;
}

}  // namespace

struct BTree::Node {
  bool leaf;
  PageNo page;
  // Leaf: parallel (keys, rids) entry arrays.
  // Internal: (keys, rids) are separator pairs; children.size()==keys.size()+1.
  std::vector<CompositeKey> keys;
  std::vector<RowId> rids;
  std::vector<Node*> children;
  Node* next = nullptr;  // leaf chain

  size_t UpperBound(const CompositeKey& key, RowId rid) const {
    size_t lo = 0, hi = keys.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (EntryLess(key, rid, keys[mid], rids[mid])) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  size_t LowerBound(const CompositeKey& key, RowId rid) const {
    size_t lo = 0, hi = keys.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (EntryLess(keys[mid], rids[mid], key, rid)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
};

BTree::BTree(BTreeOptions options) : options_(options) {
  assert(options_.leaf_capacity >= 2 && options_.internal_capacity >= 3);
  root_ = NewNode(/*leaf=*/true);
}

BTree::~BTree() { FreeTree(root_); }

BTree::Node* BTree::NewNode(bool leaf) {
  Node* n = new Node();
  n->leaf = leaf;
  n->page = next_page_++;
  ++num_nodes_;
  if (leaf) ++num_leaves_;
  return n;
}

void BTree::FreeTree(Node* n) {
  if (n == nullptr) return;
  for (Node* c : n->children) FreeTree(c);
  delete n;
}

void BTree::Touch(const Node* n, bool dirty) const {
  if (options_.pool != nullptr) {
    options_.pool->Access(PageId{options_.file_id, n->page}, dirty);
  }
}

Status BTree::Insert(const CompositeKey& key, RowId rid) {
  Status status;
  Node* right = InsertRec(root_, key, rid, &status);
  if (!status.ok()) return status;
  if (right != nullptr) {
    // Root split: grow the tree by one level. The separator pair is the
    // smallest entry reachable under `right`.
    Node* new_root = NewNode(/*leaf=*/false);
    Node* leftmost = right;
    while (!leftmost->leaf) leftmost = leftmost->children.front();
    new_root->keys.push_back(leftmost->keys.front());
    new_root->rids.push_back(leftmost->rids.front());
    new_root->children.push_back(root_);
    new_root->children.push_back(right);
    root_ = new_root;
    Touch(new_root, /*dirty=*/true);
  }
  ++num_entries_;
  return Status::OK();
}

BTree::Node* BTree::InsertRec(Node* n, const CompositeKey& key, RowId rid,
                              Status* status) {
  if (n->leaf) {
    const size_t pos = n->LowerBound(key, rid);
    if (pos < n->keys.size() && n->keys[pos] == key && n->rids[pos] == rid) {
      *status = Status::AlreadyExists("duplicate (key, rid) entry");
      return nullptr;
    }
    Touch(n, /*dirty=*/true);
    n->keys.insert(n->keys.begin() + pos, key);
    n->rids.insert(n->rids.begin() + pos, rid);
    if (n->keys.size() <= options_.leaf_capacity) return nullptr;
    // Split: right sibling takes the upper half.
    Node* right = NewNode(/*leaf=*/true);
    const size_t mid = n->keys.size() / 2;
    right->keys.assign(n->keys.begin() + mid, n->keys.end());
    right->rids.assign(n->rids.begin() + mid, n->rids.end());
    n->keys.resize(mid);
    n->rids.resize(mid);
    right->next = n->next;
    n->next = right;
    Touch(right, /*dirty=*/true);
    return right;
  }

  Touch(n, /*dirty=*/false);
  const size_t child_idx = n->UpperBound(key, rid);
  Node* split = InsertRec(n->children[child_idx], key, rid, status);
  if (!status->ok() || split == nullptr) return nullptr;

  // Promote the smallest entry under `split` as the separator.
  Node* leftmost = split;
  while (!leftmost->leaf) leftmost = leftmost->children.front();
  Touch(n, /*dirty=*/true);
  n->keys.insert(n->keys.begin() + child_idx, leftmost->keys.front());
  n->rids.insert(n->rids.begin() + child_idx, leftmost->rids.front());
  n->children.insert(n->children.begin() + child_idx + 1, split);
  if (n->children.size() <= options_.internal_capacity) return nullptr;

  // Split the internal node: middle separator moves up.
  Node* right = NewNode(/*leaf=*/false);
  const size_t mid = n->keys.size() / 2;
  right->keys.assign(n->keys.begin() + mid + 1, n->keys.end());
  right->rids.assign(n->rids.begin() + mid + 1, n->rids.end());
  right->children.assign(n->children.begin() + mid + 1, n->children.end());
  n->keys.resize(mid);
  n->rids.resize(mid);
  n->children.resize(mid + 1);
  Touch(right, /*dirty=*/true);
  return right;
}

Status BTree::InsertMany(const CompositeKey& key, std::span<const RowId> rids,
                         size_t* descents) {
  // Reject in-batch duplicates up front (rids are sorted, so equal rids
  // are adjacent); the bulk cursor below advances past what it inserts
  // and would otherwise miss them.
  for (size_t i = 1; i < rids.size(); ++i) {
    if (rids[i] == rids[i - 1]) {
      return Status::AlreadyExists("duplicate rid in batch");
    }
  }
  size_t i = 0;
  while (i < rids.size()) {
    if (descents != nullptr) ++*descents;
    // Descend once for (key, rids[i]), remembering the tightest separator
    // to the right of the path: group entries at or past that separator
    // belong to a later leaf and must not be bulk-placed here.
    Node* n = root_;
    bool has_bound = false;
    CompositeKey bound_key;
    RowId bound_rid = 0;
    while (!n->leaf) {
      Touch(n, /*dirty=*/false);
      const size_t child_idx = n->UpperBound(key, rids[i]);
      if (child_idx < n->keys.size()) {
        has_bound = true;
        bound_key = n->keys[child_idx];
        bound_rid = n->rids[child_idx];
      }
      n = n->children[child_idx];
    }
    // Fill the leaf with the rest of the sorted group while it has spare
    // capacity and the entries stay below the separator bound. `pos` only
    // moves right because the rids ascend.
    const size_t before = i;
    size_t pos = n->LowerBound(key, rids[i]);
    while (i < rids.size() && n->keys.size() < options_.leaf_capacity &&
           (!has_bound || EntryLess(key, rids[i], bound_key, bound_rid))) {
      while (pos < n->keys.size() &&
             EntryLess(n->keys[pos], n->rids[pos], key, rids[i])) {
        ++pos;
      }
      if (pos < n->keys.size() && n->keys[pos] == key &&
          n->rids[pos] == rids[i]) {
        // Keep the dirty mark for whatever this call already placed.
        if (i > before) Touch(n, /*dirty=*/true);
        return Status::AlreadyExists("duplicate (key, rid) entry");
      }
      n->keys.insert(n->keys.begin() + std::ptrdiff_t(pos), key);
      n->rids.insert(n->rids.begin() + std::ptrdiff_t(pos), rids[i]);
      ++pos;
      ++num_entries_;
      ++i;
    }
    if (i > before) {
      Touch(n, /*dirty=*/true);
    } else {
      // Leaf full (or the entry routes past the bound): per-entry insert
      // handles the split, then the loop re-descends for the remainder.
      if (descents != nullptr) ++*descents;
      Status s = Insert(key, rids[i]);
      if (!s.ok()) return s;
      ++i;
    }
  }
  return Status::OK();
}

Status BTree::Delete(const CompositeKey& key, RowId rid) {
  Node* n = root_;
  while (!n->leaf) {
    Touch(n, /*dirty=*/false);
    n = n->children[n->UpperBound(key, rid)];
  }
  const size_t pos = n->LowerBound(key, rid);
  if (pos >= n->keys.size() || !(n->keys[pos] == key) || n->rids[pos] != rid) {
    return Status::NotFound("entry not present");
  }
  Touch(n, /*dirty=*/true);
  n->keys.erase(n->keys.begin() + pos);
  n->rids.erase(n->rids.begin() + pos);
  --num_entries_;
  // Lazy deletion: empty leaves remain chained and are skipped by scans.
  return Status::OK();
}

void BTree::Lookup(const CompositeKey& key, std::vector<RowId>* out) const {
  Scan(key, key, [&](const CompositeKey& k, RowId rid) {
    if (k == key) out->push_back(rid);
    return true;
  });
}

void BTree::Scan(const CompositeKey& lo, const CompositeKey& hi,
                 const std::function<bool(const CompositeKey&, RowId)>& fn) const {
  // Descend toward the first entry with key >= lo (rid 0 is minimal).
  Node* n = root_;
  while (!n->leaf) {
    Touch(n, /*dirty=*/false);
    n = n->children[n->UpperBound(lo, 0)];
  }
  // The descent can land one leaf late when `lo` equals a separator that was
  // promoted from a since-shifted boundary; entries >= lo cannot be to the
  // left of this leaf, so walking forward is sufficient.
  for (; n != nullptr; n = n->next) {
    Touch(n, /*dirty=*/false);
    for (size_t i = 0; i < n->keys.size(); ++i) {
      if (ComparePrefix(n->keys[i], lo) == std::strong_ordering::less) continue;
      if (ComparePrefix(n->keys[i], hi) == std::strong_ordering::greater) {
        return;
      }
      if (!fn(n->keys[i], n->rids[i])) return;
    }
  }
}

void BTree::ScanAll(
    const std::function<bool(const CompositeKey&, RowId)>& fn) const {
  Node* n = root_;
  while (!n->leaf) n = n->children.front();
  for (; n != nullptr; n = n->next) {
    for (size_t i = 0; i < n->keys.size(); ++i) {
      if (!fn(n->keys[i], n->rids[i])) return;
    }
  }
}

size_t BTree::Height() const {
  size_t h = 1;
  for (const Node* n = root_; !n->leaf; n = n->children.front()) ++h;
  return h;
}

uint64_t BTree::SizeBytes() const {
  return uint64_t(num_nodes_) * kDefaultPageSizeBytes;
}

Status BTree::CheckInvariants() const {
  size_t leaf_depth = 0;
  Status s = CheckNode(root_, 1, &leaf_depth);
  if (!s.ok()) return s;
  // Leaf chain must be globally sorted and cover every entry.
  const Node* n = root_;
  while (!n->leaf) n = n->children.front();
  size_t count = 0;
  const CompositeKey* prev_key = nullptr;
  RowId prev_rid = 0;
  for (; n != nullptr; n = n->next) {
    for (size_t i = 0; i < n->keys.size(); ++i) {
      if (prev_key != nullptr &&
          !EntryLess(*prev_key, prev_rid, n->keys[i], n->rids[i])) {
        return Status::Corruption("leaf chain out of order");
      }
      prev_key = &n->keys[i];
      prev_rid = n->rids[i];
      ++count;
    }
  }
  if (count != num_entries_) {
    return Status::Corruption("entry count mismatch: chain=" +
                              std::to_string(count) + " recorded=" +
                              std::to_string(num_entries_));
  }
  return Status::OK();
}

Status BTree::CheckNode(const Node* n, size_t depth, size_t* leaf_depth) const {
  for (size_t i = 1; i < n->keys.size(); ++i) {
    if (!EntryLess(n->keys[i - 1], n->rids[i - 1], n->keys[i], n->rids[i])) {
      return Status::Corruption("node keys out of order");
    }
  }
  if (n->leaf) {
    if (n->keys.size() > options_.leaf_capacity) {
      return Status::Corruption("leaf over capacity");
    }
    if (*leaf_depth == 0) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("non-uniform leaf depth");
    }
    return Status::OK();
  }
  if (n->children.size() != n->keys.size() + 1) {
    return Status::Corruption("internal child/separator mismatch");
  }
  if (n->children.size() > options_.internal_capacity) {
    return Status::Corruption("internal over capacity");
  }
  for (size_t i = 0; i < n->children.size(); ++i) {
    const Node* c = n->children[i];
    // Child subtree entries must respect separators: entries in children[i]
    // are < separator[i] and >= separator[i-1].
    if (!c->keys.empty()) {
      if (i > 0 && EntryLess(c->keys.front(), c->rids.front(), n->keys[i - 1],
                             n->rids[i - 1])) {
        return Status::Corruption("child entry below separator");
      }
      if (i < n->keys.size() &&
          !EntryLess(c->keys.back(), c->rids.back(), n->keys[i], n->rids[i])) {
        return Status::Corruption("child entry at/above separator");
      }
    }
    Status s = CheckNode(c, depth + 1, leaf_depth);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace corrmap
