// Unclustered secondary index: a B+Tree over one or more attributes of a
// table, mapping (possibly composite) attribute values to RowIds. This is
// the paper's baseline access structure that CMs compress away.
#ifndef CORRMAP_INDEX_SECONDARY_INDEX_H_
#define CORRMAP_INDEX_SECONDARY_INDEX_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "index/btree.h"
#include "storage/table.h"

namespace corrmap {

/// A secondary (unclustered) B+Tree index on `columns` of `table`.
class SecondaryIndex {
 public:
  /// Creates an empty index; call BuildFromTable or insert rows manually.
  SecondaryIndex(const Table* table, std::vector<size_t> columns,
                 BTreeOptions options = {});

  /// Bulk-loads every live row of the table, or only rows < `row_limit`
  /// (the serving layer scopes a per-epoch index to the clustered region
  /// [0, boundary); tail rows are the tail sweep's).
  Status BuildFromTable(size_t row_limit = ~size_t{0});

  /// Index maintenance for one row (caller supplies the row id; key parts
  /// are read from the table).
  Status InsertRow(RowId row);
  Status DeleteRow(RowId row);

  /// Batched maintenance mirroring CorrelationMap::InsertRowsBatched:
  /// sorts the batch by (key, rid), groups runs of equal keys, and applies
  /// each group through BTree::InsertMany so a leaf page is touched once
  /// per batch per distinct key instead of once per row (a group spilling
  /// past its leaf's capacity re-descends per spilled row). Post-state is
  /// identical to calling InsertRow per row. On success `*descents` (when
  /// non-null) receives the number of tree descents performed -- the unit
  /// of maintenance CPU, equal to the distinct-key count when no group
  /// spills.
  Status InsertRowsBatched(std::span<const RowId> rows,
                           size_t* descents = nullptr);

  /// Maintenance from explicit key parts (used when the row's values are
  /// known without a table read, e.g. batched appends).
  Status InsertKey(const CompositeKey& key, RowId row) {
    return tree_->Insert(key, row);
  }
  Status DeleteKey(const CompositeKey& key, RowId row) {
    return tree_->Delete(key, row);
  }

  /// RowIds whose indexed attributes equal `key` exactly.
  std::vector<RowId> LookupEqual(const CompositeKey& key) const;

  /// RowIds with lo <= key <= hi; bounds may be composite prefixes, in which
  /// case only the prefix attributes constrain the scan (a composite B+Tree
  /// can use only its key prefix for a range -- Experiment 5's handicap).
  std::vector<RowId> LookupRange(const CompositeKey& lo,
                                 const CompositeKey& hi) const;

  /// Extracts the composite key of `row` from the table.
  CompositeKey KeyOfRow(RowId row) const;

  const std::vector<size_t>& columns() const { return columns_; }
  const BTree& tree() const { return *tree_; }
  BTree& tree_mutable() { return *tree_; }

  size_t NumEntries() const { return tree_->NumEntries(); }
  uint64_t SizeBytes() const { return tree_->SizeBytes(); }
  size_t Height() const { return tree_->Height(); }

  std::string Name() const;

 private:
  const Table* table_;
  std::vector<size_t> columns_;
  std::unique_ptr<BTree> tree_;
};

}  // namespace corrmap

#endif  // CORRMAP_INDEX_SECONDARY_INDEX_H_
