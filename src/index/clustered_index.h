// Sparse clustered index over a table physically ordered by one attribute.
// Maps a clustered-attribute value (or range) to the contiguous row/page
// range that holds it, and supplies the paper's clustered statistics
// (c_tups, c_pages, btree_height).
#ifndef CORRMAP_INDEX_CLUSTERED_INDEX_H_
#define CORRMAP_INDEX_CLUSTERED_INDEX_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/page.h"
#include "storage/table.h"

namespace corrmap {

/// Half-open row range [begin, end).
struct RowRange {
  RowId begin = 0;
  RowId end = 0;
  uint64_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
  bool operator==(const RowRange&) const = default;
};

/// Sparse index over the clustered attribute of a physically ordered table.
class ClusteredIndex {
 public:
  /// Builds over `table`, which must already be clustered on `col`
  /// (Table::ClusterBy). Scans once to record each distinct key's first row.
  static Result<ClusteredIndex> Build(const Table& table, size_t col);

  /// Recluster hook: builds the index for `table` -- a reordered copy whose
  /// clustered region is the merge of `old`'s region with a sorted tail --
  /// by patching `old`'s bucket boundaries instead of rescanning every row.
  /// `old_region_end` is the row count `old` covered (its last key's range
  /// ends there, not at its table's live row count, which may include an
  /// unclustered tail). `sorted_tail_keys` are the clustered keys of the
  /// merged tail rows, ascending, with multiplicity. Produces exactly what
  /// Build(table, col) would.
  ///
  /// Compaction: `old_deleted_counts`, when non-empty, is parallel to
  /// `old`'s distinct keys and gives how many of each key's rows the
  /// reordered copy dropped as tombstoned; the key's successor range
  /// shrinks by that amount (a key whose rows are all dead is not emitted
  /// at all), so boundaries stay exact against the compacted copy.
  static Result<ClusteredIndex> BuildMerged(
      const Table& table, size_t col, const ClusteredIndex& old,
      RowId old_region_end, std::span<const Key> sorted_tail_keys,
      std::span<const uint32_t> old_deleted_counts = {});

  size_t column() const { return col_; }
  size_t NumDistinctKeys() const { return keys_.size(); }

  /// Rows whose clustered attribute equals `key` (empty range if absent).
  RowRange LookupEqual(const Key& key) const;

  /// Rows whose clustered attribute is in [lo, hi] inclusive.
  RowRange LookupRange(const Key& lo, const Key& hi) const;

  /// The i-th distinct clustered value, in sorted order.
  const Key& DistinctKey(size_t i) const { return keys_[i]; }

  /// First row holding DistinctKey(i) (the i-th directory boundary). The
  /// compaction pass walks these to attribute tombstones to distinct keys.
  RowId KeyFirstRow(size_t i) const { return first_row_[i]; }

  /// Index of the first distinct key >= `key` (== NumDistinctKeys() if none).
  size_t LowerBoundKey(const Key& key) const;

  /// Average tuples per clustered value ("c_tups", paper Table 2).
  double CTups() const;

  /// Pages spanned by one average clustered value ("c_pages", §4.1).
  double CPages() const;

  /// Simulated root-to-leaf height of an equivalent dense clustered B+Tree
  /// ("btree_height", paper Table 1), computed from fanout.
  size_t BTreeHeight() const;

  /// Size of the sparse directory itself in bytes.
  uint64_t SizeBytes() const;

  const Table& table() const { return *table_; }

 private:
  ClusteredIndex(const Table* table, size_t col) : table_(table), col_(col) {}

  const Table* table_;
  size_t col_;
  std::vector<Key> keys_;        // distinct clustered values, ascending
  std::vector<RowId> first_row_; // parallel: first row holding keys_[i]
};

}  // namespace corrmap

#endif  // CORRMAP_INDEX_CLUSTERED_INDEX_H_
