#include "index/clustered_index.h"

#include <algorithm>
#include <cmath>

namespace corrmap {

Result<ClusteredIndex> ClusteredIndex::Build(const Table& table, size_t col) {
  if (col >= table.schema().num_columns()) {
    return Status::OutOfRange("no such column");
  }
  if (table.clustered_column() != static_cast<int>(col)) {
    return Status::InvalidArgument(
        "table is not clustered on column " +
        table.schema().column(col).name + "; call Table::ClusterBy first");
  }
  ClusteredIndex idx(&table, col);
  const size_t n = table.NumRows();
  for (RowId r = 0; r < n; ++r) {
    Key k = table.GetKey(r, col);
    if (idx.keys_.empty() || !(idx.keys_.back() == k)) {
      idx.keys_.push_back(k);
      idx.first_row_.push_back(r);
    }
  }
  return idx;
}

Result<ClusteredIndex> ClusteredIndex::BuildMerged(
    const Table& table, size_t col, const ClusteredIndex& old,
    RowId old_region_end, std::span<const Key> sorted_tail_keys,
    std::span<const uint32_t> old_deleted_counts) {
  if (table.clustered_column() != static_cast<int>(col)) {
    return Status::InvalidArgument("table is not clustered on column");
  }
  if (old.column() != col) {
    return Status::InvalidArgument("old index covers a different column");
  }
  if (!old_deleted_counts.empty() &&
      old_deleted_counts.size() != old.keys_.size()) {
    return Status::InvalidArgument(
        "deleted counts not parallel to old distinct keys");
  }
  ClusteredIndex idx(&table, col);
  const size_t m = old.keys_.size();
  uint64_t dropped = 0;
  idx.keys_.reserve(m + sorted_tail_keys.size());
  idx.first_row_.reserve(m + sorted_tail_keys.size());
  RowId next_row = 0;  // running first-row offset in the merged order
  size_t i = 0, j = 0;
  auto emit = [&](const Key& k, uint64_t count) {
    if (idx.keys_.empty() || !(idx.keys_.back() == k)) {
      idx.keys_.push_back(k);
      idx.first_row_.push_back(next_row);
    }
    next_row += count;
  };
  while (i < m || j < sorted_tail_keys.size()) {
    // Old keys win ties: the merge permutation keeps clustered-region rows
    // before equal tail rows, and emit() folds the tail run into the same
    // distinct key either way.
    if (j >= sorted_tail_keys.size() ||
        (i < m && !(sorted_tail_keys[j] < old.keys_[i]))) {
      const RowId begin = old.first_row_[i];
      const RowId end =
          (i + 1 < m) ? old.first_row_[i + 1] : old_region_end;
      uint64_t count = end - begin;
      if (!old_deleted_counts.empty()) {
        if (old_deleted_counts[i] > count) {
          return Status::Corruption("more deletions than rows for key");
        }
        dropped += old_deleted_counts[i];
        count -= old_deleted_counts[i];
      }
      // A fully tombstoned key vanishes from the compacted copy: emitting
      // it with count 0 would alias its boundary onto the next key's.
      if (count > 0) emit(old.keys_[i], count);
      ++i;
    } else {
      size_t run = j + 1;
      while (run < sorted_tail_keys.size() &&
             sorted_tail_keys[run] == sorted_tail_keys[j]) {
        ++run;
      }
      emit(sorted_tail_keys[j], run - j);
      j = run;
    }
  }
  if (next_row != RowId(old_region_end - dropped + sorted_tail_keys.size())) {
    return Status::Corruption("merged row count mismatch");
  }
  return idx;
}

size_t ClusteredIndex::LowerBoundKey(const Key& key) const {
  return std::lower_bound(keys_.begin(), keys_.end(), key) - keys_.begin();
}

RowRange ClusteredIndex::LookupEqual(const Key& key) const {
  const size_t i = LowerBoundKey(key);
  if (i >= keys_.size() || !(keys_[i] == key)) return RowRange{};
  const RowId begin = first_row_[i];
  const RowId end =
      (i + 1 < first_row_.size()) ? first_row_[i + 1] : table_->NumRows();
  return RowRange{begin, end};
}

RowRange ClusteredIndex::LookupRange(const Key& lo, const Key& hi) const {
  const size_t i = LowerBoundKey(lo);
  if (i >= keys_.size()) return RowRange{};
  // First key strictly greater than hi.
  const size_t j =
      std::upper_bound(keys_.begin(), keys_.end(), hi) - keys_.begin();
  if (j <= i) return RowRange{};
  const RowId begin = first_row_[i];
  const RowId end = (j < first_row_.size()) ? first_row_[j] : table_->NumRows();
  return RowRange{begin, end};
}

double ClusteredIndex::CTups() const {
  if (keys_.empty()) return 0.0;
  return double(table_->NumRows()) / double(keys_.size());
}

double ClusteredIndex::CPages() const {
  return CTups() / double(table_->TuplesPerPage());
}

size_t ClusteredIndex::BTreeHeight() const {
  // Fanout of a dense clustered B+Tree with ~20 B entries in 8 KiB pages:
  // height = 1 (leaf level) + levels needed to index the leaf pages.
  const double fanout = double(kDefaultPageSizeBytes) / 20.0;
  const double n = std::max<double>(1.0, double(table_->NumRows()));
  const double leaves = std::max(1.0, std::ceil(n / fanout));
  return 1 + static_cast<size_t>(std::ceil(std::log(leaves) / std::log(fanout)));
}

uint64_t ClusteredIndex::SizeBytes() const {
  return keys_.size() * (sizeof(Key) + sizeof(RowId));
}

}  // namespace corrmap
