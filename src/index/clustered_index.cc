#include "index/clustered_index.h"

#include <algorithm>
#include <cmath>

namespace corrmap {

Result<ClusteredIndex> ClusteredIndex::Build(const Table& table, size_t col) {
  if (col >= table.schema().num_columns()) {
    return Status::OutOfRange("no such column");
  }
  if (table.clustered_column() != static_cast<int>(col)) {
    return Status::InvalidArgument(
        "table is not clustered on column " +
        table.schema().column(col).name + "; call Table::ClusterBy first");
  }
  ClusteredIndex idx(&table, col);
  const size_t n = table.NumRows();
  for (RowId r = 0; r < n; ++r) {
    Key k = table.GetKey(r, col);
    if (idx.keys_.empty() || !(idx.keys_.back() == k)) {
      idx.keys_.push_back(k);
      idx.first_row_.push_back(r);
    }
  }
  return idx;
}

size_t ClusteredIndex::LowerBoundKey(const Key& key) const {
  return std::lower_bound(keys_.begin(), keys_.end(), key) - keys_.begin();
}

RowRange ClusteredIndex::LookupEqual(const Key& key) const {
  const size_t i = LowerBoundKey(key);
  if (i >= keys_.size() || !(keys_[i] == key)) return RowRange{};
  const RowId begin = first_row_[i];
  const RowId end =
      (i + 1 < first_row_.size()) ? first_row_[i + 1] : table_->NumRows();
  return RowRange{begin, end};
}

RowRange ClusteredIndex::LookupRange(const Key& lo, const Key& hi) const {
  const size_t i = LowerBoundKey(lo);
  if (i >= keys_.size()) return RowRange{};
  // First key strictly greater than hi.
  const size_t j =
      std::upper_bound(keys_.begin(), keys_.end(), hi) - keys_.begin();
  if (j <= i) return RowRange{};
  const RowId begin = first_row_[i];
  const RowId end = (j < first_row_.size()) ? first_row_[j] : table_->NumRows();
  return RowRange{begin, end};
}

double ClusteredIndex::CTups() const {
  if (keys_.empty()) return 0.0;
  return double(table_->NumRows()) / double(keys_.size());
}

double ClusteredIndex::CPages() const {
  return CTups() / double(table_->TuplesPerPage());
}

size_t ClusteredIndex::BTreeHeight() const {
  // Fanout of a dense clustered B+Tree with ~20 B entries in 8 KiB pages:
  // height = 1 (leaf level) + levels needed to index the leaf pages.
  const double fanout = double(kDefaultPageSizeBytes) / 20.0;
  const double n = std::max<double>(1.0, double(table_->NumRows()));
  const double leaves = std::max(1.0, std::ceil(n / fanout));
  return 1 + static_cast<size_t>(std::ceil(std::log(leaves) / std::log(fanout)));
}

uint64_t ClusteredIndex::SizeBytes() const {
  return keys_.size() * (sizeof(Key) + sizeof(RowId));
}

}  // namespace corrmap
