#include "index/secondary_index.h"

#include <algorithm>
#include <cassert>
#include <compare>

namespace corrmap {

SecondaryIndex::SecondaryIndex(const Table* table, std::vector<size_t> columns,
                               BTreeOptions options)
    : table_(table), columns_(std::move(columns)) {
  assert(!columns_.empty() && columns_.size() <= kMaxCmAttributes);
  // Size leaf entries by actual key width: 8 bytes per part + 8-byte rid +
  // 4 bytes item overhead (PostgreSQL-like density).
  options.entry_bytes = columns_.size() * 8 + 12;
  options.leaf_capacity = kDefaultPageSizeBytes / options.entry_bytes;
  options.internal_capacity = options.leaf_capacity;
  tree_ = std::make_unique<BTree>(options);
}

CompositeKey SecondaryIndex::KeyOfRow(RowId row) const {
  CompositeKey key;
  for (size_t col : columns_) key.Append(table_->GetKey(row, col));
  return key;
}

Status SecondaryIndex::BuildFromTable(size_t row_limit) {
  const size_t n = std::min(table_->NumRows(), row_limit);
  for (RowId r = 0; r < n; ++r) {
    if (table_->IsDeleted(r)) continue;
    Status s = tree_->Insert(KeyOfRow(r), r);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status SecondaryIndex::InsertRow(RowId row) {
  return tree_->Insert(KeyOfRow(row), row);
}

Status SecondaryIndex::DeleteRow(RowId row) {
  return tree_->Delete(KeyOfRow(row), row);
}

Status SecondaryIndex::InsertRowsBatched(std::span<const RowId> rows,
                                         size_t* descents) {
  std::vector<std::pair<CompositeKey, RowId>> entries;
  entries.reserve(rows.size());
  for (RowId r : rows) entries.emplace_back(KeyOfRow(r), r);
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              auto c = a.first <=> b.first;
              if (c != std::strong_ordering::equal) {
                return c == std::strong_ordering::less;
              }
              return a.second < b.second;
            });
  size_t n_descents = 0;
  std::vector<RowId> group_rids;
  size_t i = 0;
  while (i < entries.size()) {
    const CompositeKey& key = entries[i].first;
    group_rids.clear();
    while (i < entries.size() && entries[i].first == key) {
      group_rids.push_back(entries[i].second);
      ++i;
    }
    Status s = tree_->InsertMany(key, group_rids, &n_descents);
    if (!s.ok()) return s;
  }
  if (descents != nullptr) *descents = n_descents;
  return Status::OK();
}

std::vector<RowId> SecondaryIndex::LookupEqual(const CompositeKey& key) const {
  std::vector<RowId> out;
  tree_->Lookup(key, &out);
  return out;
}

std::vector<RowId> SecondaryIndex::LookupRange(const CompositeKey& lo,
                                               const CompositeKey& hi) const {
  std::vector<RowId> out;
  tree_->Scan(lo, hi, [&](const CompositeKey&, RowId rid) {
    out.push_back(rid);
    return true;
  });
  return out;
}

std::string SecondaryIndex::Name() const {
  std::string name = "idx_" + table_->name();
  for (size_t c : columns_) name += "_" + table_->schema().column(c).name;
  return name;
}

}  // namespace corrmap
