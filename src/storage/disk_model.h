// Simulated disk: the experiments' substitute for the paper's 7200rpm SATA
// drive. Every access path reports its page-access pattern here; the model
// converts (seeks, sequential pages, writes) into milliseconds using the
// paper's own measured constants (Table 1: seek 5.5 ms, sequential page
// read 0.078 ms).
#ifndef CORRMAP_STORAGE_DISK_MODEL_H_
#define CORRMAP_STORAGE_DISK_MODEL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "storage/page.h"

namespace corrmap {

/// Raw I/O counters accumulated by an operation.
struct DiskStats {
  uint64_t seeks = 0;          ///< Random repositionings (reads or writes).
  uint64_t seq_pages = 0;      ///< Pages read sequentially after a seek.
  uint64_t pages_written = 0;  ///< Random page write-backs (each seeks).

  DiskStats& operator+=(const DiskStats& o) {
    seeks += o.seeks;
    seq_pages += o.seq_pages;
    pages_written += o.pages_written;
    return *this;
  }
  friend DiskStats operator+(DiskStats a, const DiskStats& b) { return a += b; }
  bool operator==(const DiskStats&) const = default;

  std::string ToString() const;
};

/// Cost constants and the stats -> milliseconds conversion.
class DiskModel {
 public:
  /// Paper Table 1 values.
  static constexpr double kDefaultSeekMs = 5.5;
  static constexpr double kDefaultSeqPageMs = 0.078;

  DiskModel() = default;
  DiskModel(double seek_ms, double seq_page_ms)
      : seek_ms_(seek_ms), seq_page_ms_(seq_page_ms) {}

  double seek_ms() const { return seek_ms_; }
  double seq_page_ms() const { return seq_page_ms_; }

  /// Simulated elapsed milliseconds for the given counters. Writes cost a
  /// seek each (dirty-page write-back to a random location).
  double CostMs(const DiskStats& s) const {
    return double(s.seeks) * seek_ms_ + double(s.seq_pages) * seq_page_ms_ +
           double(s.pages_written) * seek_ms_;
  }

 private:
  double seek_ms_ = kDefaultSeekMs;
  double seq_page_ms_ = kDefaultSeqPageMs;
};

/// A maximal run of contiguous pages accessed in one sequential sweep.
struct PageRun {
  PageNo first = 0;
  uint64_t length = 0;
  bool operator==(const PageRun&) const = default;
};

/// Collapses a set of page numbers into maximal contiguous runs.
/// `pages` may be unsorted and contain duplicates; `gap_tolerance` merges
/// runs separated by at most that many missing pages (the missing pages are
/// read and counted as sequential I/O, which is how bitmap scans behave when
/// skipping a tiny hole is slower than reading through it).
std::vector<PageRun> ExtractRuns(std::vector<PageNo> pages,
                                 uint64_t gap_tolerance = 0);

/// I/O counters for sweeping the given runs: one seek per run plus their
/// total length in sequential pages.
DiskStats CostOfRuns(std::span<const PageRun> runs);

/// Sequence recorder used to visualize access patterns (Fig. 1): remembers
/// every page touched in order and can render an ASCII strip chart.
class AccessTrace {
 public:
  void Touch(PageNo page) { pages_.push_back(page); }
  const std::vector<PageNo>& pages() const { return pages_; }

  /// Number of maximal contiguous runs among the touched pages (sorted,
  /// deduplicated first).
  size_t NumRuns() const;

  /// Distinct pages touched.
  size_t NumDistinctPages() const;

  /// Renders the table as `width` cells ('#' if any page in the cell was
  /// touched, '.' otherwise), the paper's Fig. 1 visualization.
  std::string Render(uint64_t total_pages, size_t width = 100) const;

 private:
  std::vector<PageNo> pages_;
};

}  // namespace corrmap

#endif  // CORRMAP_STORAGE_DISK_MODEL_H_
