#include "storage/wal.h"

#include <algorithm>
#include <array>
#include <utility>

namespace corrmap {

namespace {

/// IEEE CRC32 (reflected 0xEDB88320), table-driven, chainable state.
uint32_t Crc32Update(uint32_t state, const char* data, size_t n) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  for (size_t i = 0; i < n; ++i) {
    state = kTable[(state ^ uint8_t(data[i])) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

void PutLE(std::string* out, uint64_t v, size_t bytes) {
  for (size_t i = 0; i < bytes; ++i) {
    out->push_back(char(uint8_t(v >> (8 * i))));
  }
}

uint64_t GetLE(const char* p, size_t bytes) {
  uint64_t v = 0;
  for (size_t i = 0; i < bytes; ++i) {
    v |= uint64_t(uint8_t(p[i])) << (8 * i);
  }
  return v;
}

/// CRC over the first 20 header bytes (type, padding, txn, length) plus
/// the payload -- everything in the frame except the CRC field itself.
uint32_t FrameCrc(const char* header20, const char* payload, size_t n) {
  uint32_t s = 0xFFFFFFFFu;
  s = Crc32Update(s, header20, 20);
  s = Crc32Update(s, payload, n);
  return s ^ 0xFFFFFFFFu;
}

/// Serializes one record into its on-log frame (kWalRecordHeaderBytes of
/// header followed by the payload).
std::string EncodeFrame(const WalRecord& rec) {
  std::string f;
  f.reserve(kWalRecordHeaderBytes + rec.payload.size());
  f.push_back(char(uint8_t(rec.type)));
  f.append(7, '\0');  // reserved padding
  PutLE(&f, rec.txn_id, 8);
  PutLE(&f, uint32_t(rec.payload.size()), 4);
  PutLE(&f, FrameCrc(f.data(), rec.payload.data(), rec.payload.size()), 4);
  f += rec.payload;
  return f;
}

/// Parses the frame at `p` (with `avail` bytes remaining). Returns the
/// frame length and fills `out` on success; returns 0 when the bytes do
/// not form a complete, CRC-valid frame (torn tail or corruption).
size_t DecodeFrame(const char* p, size_t avail, WalRecord* out) {
  if (avail < kWalRecordHeaderBytes) return 0;
  const uint8_t type = uint8_t(p[0]);
  if (type < uint8_t(WalRecordType::kCmInsert) ||
      type > uint8_t(WalRecordType::kRowUpdate)) {
    return 0;
  }
  const size_t len = size_t(GetLE(p + 16, 4));
  if (avail < kWalRecordHeaderBytes + len) return 0;
  const uint32_t stored = uint32_t(GetLE(p + 20, 4));
  if (stored != FrameCrc(p, p + kWalRecordHeaderBytes, len)) return 0;
  out->type = WalRecordType(type);
  out->txn_id = GetLE(p + 8, 8);
  out->payload.assign(p + kWalRecordHeaderBytes, len);
  return kWalRecordHeaderBytes + len;
}

}  // namespace

void WriteAheadLog::Append(WalRecord rec) {
  pending_image_ += EncodeFrame(rec);
  pending_bytes_ = pending_image_.size();
  pending_.push_back(std::move(rec));
}

void WriteAheadLog::Flush() {
  if (pending_.empty()) return;
  // The previous flush left the log file's last page tail_fill_bytes_
  // full; this flush re-writes that page along with the fresh ones, so
  // the sequential charge covers the whole touched range.
  const uint64_t pages =
      (tail_fill_bytes_ + pending_bytes_ + page_size_ - 1) / page_size_;
  ++io_.seeks;             // position at log tail
  io_.seq_pages += pages;  // sequential log write
  bytes_durable_ += pending_bytes_;
  ++num_flushes_;
  tail_fill_bytes_ = (tail_fill_bytes_ + pending_bytes_) % page_size_;
  last_flush_bytes_ = pending_bytes_;
  image_ += pending_image_;
  for (auto& r : pending_) durable_.push_back(std::move(r));
  pending_.clear();
  pending_image_.clear();
  pending_bytes_ = 0;
}

void WriteAheadLog::Prepare(uint64_t txn_id) {
  Append({WalRecordType::kPrepare, txn_id, ""});
  Flush();
}

void WriteAheadLog::Commit(uint64_t txn_id) {
  Append({WalRecordType::kCommit, txn_id, ""});
  Flush();
}

uint64_t WriteAheadLog::LogCheckpoint(std::string payload) {
  const uint64_t id = next_checkpoint_id_++;
  Append({WalRecordType::kCheckpoint, id, std::move(payload)});
  Flush();
  return id;
}

bool WriteAheadLog::TruncateThrough(uint64_t checkpoint_id) {
  size_t offset = 0;
  for (size_t i = 0; i < durable_.size(); ++i) {
    if (durable_[i].type == WalRecordType::kCheckpoint &&
        durable_[i].txn_id == checkpoint_id) {
      durable_.erase(durable_.begin(), durable_.begin() + ptrdiff_t(i));
      image_.erase(0, offset);
      return true;
    }
    offset += kWalRecordHeaderBytes + durable_[i].payload.size();
  }
  return false;
}

std::vector<WalRecord> WriteAheadLog::CommittedRecords() const {
  // Pass 1: which txns have a durable commit marker.
  std::vector<uint64_t> committed;
  for (const WalRecord& r : durable_) {
    if (r.type == WalRecordType::kCommit) committed.push_back(r.txn_id);
  }
  auto is_committed = [&](uint64_t txn) {
    for (uint64_t t : committed) {
      if (t == txn) return true;
    }
    return false;
  };
  // Pass 2: data records of committed txns, in log order. Checkpoints are
  // not txn-scoped and always pass through; markers never do.
  std::vector<WalRecord> out;
  for (const WalRecord& r : durable_) {
    switch (r.type) {
      case WalRecordType::kPrepare:
      case WalRecordType::kCommit:
        break;
      case WalRecordType::kCheckpoint:
        out.push_back(r);
        break;
      default:
        if (is_committed(r.txn_id)) out.push_back(r);
        break;
    }
  }
  return out;
}

DiskStats WriteAheadLog::DrainIo() {
  DiskStats out = io_;
  io_ = DiskStats{};
  return out;
}

void WriteAheadLog::Crash(size_t torn_tail_bytes) {
  pending_.clear();
  pending_image_.clear();
  pending_bytes_ = 0;
  // Only the most recent flush can be torn: every earlier one completed
  // its fsync barrier before the next record was accepted.
  size_t cut = std::min(torn_tail_bytes, last_flush_bytes_);
  cut = std::min(cut, image_.size());
  if (cut > 0) {
    image_.resize(image_.size() - cut);
    tail_fill_bytes_ =
        (tail_fill_bytes_ + page_size_ - (cut % page_size_)) % page_size_;
  }
  last_flush_bytes_ = 0;
  Reparse();
}

void WriteAheadLog::CorruptByte(size_t offset) {
  if (offset < image_.size()) image_[offset] = char(image_[offset] ^ 0x5A);
}

void WriteAheadLog::Reparse() {
  durable_.clear();
  size_t pos = 0;
  while (pos < image_.size()) {
    WalRecord rec;
    const size_t n = DecodeFrame(image_.data() + pos, image_.size() - pos,
                                 &rec);
    if (n == 0) break;  // torn or corrupt: the log ends here
    durable_.push_back(std::move(rec));
    pos += n;
  }
  if (pos < image_.size()) {
    image_.resize(pos);
    tail_fill_bytes_ = pos % page_size_;
  }
}

}  // namespace corrmap
