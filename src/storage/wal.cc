#include "storage/wal.h"

namespace corrmap {

namespace {
// Fixed per-record framing overhead: type, txn, length, CRC.
constexpr size_t kRecordHeaderBytes = 24;
}  // namespace

void WriteAheadLog::Append(WalRecord rec) {
  pending_bytes_ += kRecordHeaderBytes + rec.payload.size();
  pending_.push_back(std::move(rec));
}

void WriteAheadLog::Flush() {
  if (pending_.empty()) return;
  const uint64_t pages = (pending_bytes_ + page_size_ - 1) / page_size_;
  ++io_.seeks;  // position at log tail
  io_.seq_pages += pages;  // sequential log write
  bytes_durable_ += pending_bytes_;
  ++num_flushes_;
  for (auto& r : pending_) durable_.push_back(std::move(r));
  pending_.clear();
  pending_bytes_ = 0;
}

void WriteAheadLog::Prepare(uint64_t txn_id) {
  Append({WalRecordType::kPrepare, txn_id, ""});
  Flush();
}

void WriteAheadLog::Commit(uint64_t txn_id) {
  Append({WalRecordType::kCommit, txn_id, ""});
  Flush();
}

DiskStats WriteAheadLog::DrainIo() {
  DiskStats out = io_;
  io_ = DiskStats{};
  return out;
}

}  // namespace corrmap
