#include "storage/buffer_pool.h"

#include <algorithm>
#include <cassert>

namespace corrmap {

std::string BufferPoolStats::ToString() const {
  std::string out = "hits=";
  out += std::to_string(hits);
  out += " misses=";
  out += std::to_string(misses);
  out += " evictions=";
  out += std::to_string(evictions);
  out += " dirty_evictions=";
  out += std::to_string(dirty_evictions);
  return out;
}

BufferPool::BufferPool(size_t capacity_pages, size_t num_stripes)
    : capacity_pages_(capacity_pages == 0 ? 1 : capacity_pages) {
  // Every stripe must hold at least one page; a tiny pool degenerates to
  // fewer stripes rather than zero-capacity partitions.
  num_stripes = std::max<size_t>(1, std::min(num_stripes, capacity_pages_));
  stripes_ = std::vector<Stripe>(num_stripes);
  const size_t base = capacity_pages_ / num_stripes;
  size_t extra = capacity_pages_ % num_stripes;
  for (Stripe& s : stripes_) {
    s.capacity = base + (extra > 0 ? 1 : 0);
    if (extra > 0) --extra;
  }
}

size_t BufferPool::num_cached() const {
  size_t n = 0;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.frames.size();
  }
  return n;
}

size_t BufferPool::num_dirty() const {
  size_t n = 0;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.num_dirty;
  }
  return n;
}

void BufferPool::NoteTouch(Stripe& s, PageId page, bool hit) {
  ExtentCounters& fc =
      s.extent_counters[ExtentKey(page.file, ExtentOfPage(page.page))];
  const double keep = 1.0 - 1.0 / kResidencyDecayWindow;
  fc.decayed_hits *= keep;
  fc.decayed_misses *= keep;
  (hit ? fc.decayed_hits : fc.decayed_misses) += 1.0;
}

void BufferPool::AdmitLocked(Stripe& s, PageId page, bool mark_dirty) {
  if (s.frames.size() >= s.capacity) EvictOne(s);
  s.lru.push_front(page);
  Frame f;
  f.lru_it = s.lru.begin();
  f.dirty = mark_dirty;
  if (mark_dirty) ++s.num_dirty;
  s.frames.emplace(page, f);
  ++s.extent_counters[ExtentKey(page.file, ExtentOfPage(page.page))]
        .resident_pages;
}

void BufferPool::Access(PageId page, bool mark_dirty) {
  Stripe& s = StripeOf(page);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.frames.find(page);
  if (it != s.frames.end()) {
    ++s.stats.hits;
    NoteTouch(s, page, /*hit=*/true);
    s.lru.erase(it->second.lru_it);
    s.lru.push_front(page);
    it->second.lru_it = s.lru.begin();
    if (mark_dirty && !it->second.dirty) {
      it->second.dirty = true;
      ++s.num_dirty;
    }
    return;
  }
  ++s.stats.misses;
  NoteTouch(s, page, /*hit=*/false);
  ++s.io.seeks;  // random read to fault the page in
  AdmitLocked(s, page, mark_dirty);
}

bool BufferPool::AccessIfCached(PageId page, bool mark_dirty) {
  Stripe& s = StripeOf(page);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.frames.find(page);
  if (it == s.frames.end()) {
    NoteTouch(s, page, /*hit=*/false);
    return false;
  }
  ++s.stats.hits;
  NoteTouch(s, page, /*hit=*/true);
  s.lru.erase(it->second.lru_it);
  s.lru.push_front(page);
  it->second.lru_it = s.lru.begin();
  if (mark_dirty && !it->second.dirty) {
    it->second.dirty = true;
    ++s.num_dirty;
  }
  return true;
}

void BufferPool::Admit(PageId page, bool mark_dirty) {
  // A resident page behaves like a hit; a miss admits without the
  // random-read charge (the caller swept into the page sequentially).
  Stripe& s = StripeOf(page);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.frames.find(page);
  if (it != s.frames.end()) {
    ++s.stats.hits;
    NoteTouch(s, page, /*hit=*/true);
    s.lru.erase(it->second.lru_it);
    s.lru.push_front(page);
    it->second.lru_it = s.lru.begin();
    if (mark_dirty && !it->second.dirty) {
      it->second.dirty = true;
      ++s.num_dirty;
    }
    return;
  }
  NoteTouch(s, page, /*hit=*/false);
  ++s.stats.misses;
  AdmitLocked(s, page, mark_dirty);
}

bool BufferPool::Touch(PageId page) {
  // The serving hot path runs this once per swept page: one hash lookup
  // under this page's stripe lock, not the IsCached+Admit double probe.
  Stripe& s = StripeOf(page);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.frames.find(page);
  if (it != s.frames.end()) {
    ++s.stats.hits;
    NoteTouch(s, page, /*hit=*/true);
    s.lru.erase(it->second.lru_it);
    s.lru.push_front(page);
    it->second.lru_it = s.lru.begin();
    return true;
  }
  ++s.stats.misses;
  NoteTouch(s, page, /*hit=*/false);
  AdmitLocked(s, page, /*mark_dirty=*/false);
  return false;
}

bool BufferPool::IsCached(PageId page) const {
  const Stripe& s = StripeOf(page);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.frames.count(page) > 0;
}

FileResidency BufferPool::ResidencyOf(uint32_t file,
                                      uint64_t file_pages) const {
  // Aggregate the file's extents across every stripe. The decayed sums
  // weight each extent by how recently it was touched, so the whole-file
  // hit rate tracks the live access mix the way the old per-file counter
  // did.
  FileResidency out;
  double hits = 0, misses = 0;
  const uint64_t file_tag = uint64_t(file) << 40;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& [key, fc] : s.extent_counters) {
      if ((key & ~uint64_t(0xff'ffff'ffff)) != file_tag) continue;
      hits += fc.decayed_hits;
      misses += fc.decayed_misses;
      out.resident_pages += fc.resident_pages;
    }
  }
  const double touches = hits + misses;
  out.observed_touches = touches;
  if (touches > 0) out.hit_rate = hits / touches;
  if (file_pages > 0) {
    out.resident_fraction =
        std::min(1.0, double(out.resident_pages) / double(file_pages));
  }
  return out;
}

FileResidency BufferPool::ResidencyOfExtent(uint32_t file,
                                            uint64_t extent) const {
  FileResidency out;
  const uint64_t key = ExtentKey(file, extent);
  double hits = 0, misses = 0;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.extent_counters.find(key);
    if (it == s.extent_counters.end()) continue;
    hits += it->second.decayed_hits;
    misses += it->second.decayed_misses;
    out.resident_pages += it->second.resident_pages;
  }
  const double touches = hits + misses;
  out.observed_touches = touches;
  if (touches > 0) out.hit_rate = hits / touches;
  out.resident_fraction =
      std::min(1.0, double(out.resident_pages) / double(kExtentPages));
  return out;
}

void BufferPool::EvictOne(Stripe& s) {
  assert(!s.lru.empty());
  const PageId victim = s.lru.back();
  s.lru.pop_back();
  auto it = s.frames.find(victim);
  assert(it != s.frames.end());
  ++s.stats.evictions;
  if (it->second.dirty) {
    ++s.stats.dirty_evictions;
    ++s.io.pages_written;
    --s.num_dirty;
  }
  s.frames.erase(it);
  auto fc = s.extent_counters.find(
      ExtentKey(victim.file, ExtentOfPage(victim.page)));
  if (fc != s.extent_counters.end() && fc->second.resident_pages > 0) {
    --fc->second.resident_pages;
  }
}

void BufferPool::FlushAll() {
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (auto& [page, frame] : s.frames) {
      if (frame.dirty) {
        frame.dirty = false;
        ++s.io.pages_written;
      }
    }
    s.num_dirty = 0;
  }
}

void BufferPool::Clear() {
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.frames.clear();
    s.lru.clear();
    s.num_dirty = 0;
    // drop_caches semantics between experiment trials: the decayed
    // NoteTouch history resets with the frames so the next trial (a cold
    // A/B leg) starts calibrating from a genuinely cold state.
    s.extent_counters.clear();
  }
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats out;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    out.hits += s.stats.hits;
    out.misses += s.stats.misses;
    out.evictions += s.stats.evictions;
    out.dirty_evictions += s.stats.dirty_evictions;
  }
  return out;
}

BufferPoolSnapshot BufferPool::StatsSnapshot() const {
  BufferPoolSnapshot out;
  out.capacity_pages = capacity_pages_;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    out.stats.hits += s.stats.hits;
    out.stats.misses += s.stats.misses;
    out.stats.evictions += s.stats.evictions;
    out.stats.dirty_evictions += s.stats.dirty_evictions;
    out.num_cached += s.frames.size();
    out.num_dirty += s.num_dirty;
  }
  return out;
}

DiskStats BufferPool::DrainIo() {
  DiskStats out;
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    out += s.io;
    s.io = DiskStats{};
  }
  return out;
}

}  // namespace corrmap
