#include "storage/buffer_pool.h"

#include <cassert>

namespace corrmap {

std::string BufferPoolStats::ToString() const {
  std::string out = "hits=";
  out += std::to_string(hits);
  out += " misses=";
  out += std::to_string(misses);
  out += " evictions=";
  out += std::to_string(evictions);
  out += " dirty_evictions=";
  out += std::to_string(dirty_evictions);
  return out;
}

BufferPool::BufferPool(size_t capacity_pages)
    : capacity_pages_(capacity_pages == 0 ? 1 : capacity_pages) {}

void BufferPool::Access(PageId page, bool mark_dirty) {
  auto it = frames_.find(page);
  if (it != frames_.end()) {
    ++stats_.hits;
    lru_.erase(it->second.lru_it);
    lru_.push_front(page);
    it->second.lru_it = lru_.begin();
    if (mark_dirty && !it->second.dirty) {
      it->second.dirty = true;
      ++num_dirty_;
    }
    return;
  }
  ++stats_.misses;
  ++io_.seeks;  // random read to fault the page in
  if (frames_.size() >= capacity_pages_) EvictOne();
  lru_.push_front(page);
  Frame f;
  f.lru_it = lru_.begin();
  f.dirty = mark_dirty;
  if (mark_dirty) ++num_dirty_;
  frames_.emplace(page, f);
}

bool BufferPool::AccessIfCached(PageId page, bool mark_dirty) {
  auto it = frames_.find(page);
  if (it == frames_.end()) return false;
  Access(page, mark_dirty);
  return true;
}

void BufferPool::Admit(PageId page, bool mark_dirty) {
  if (AccessIfCached(page, mark_dirty)) return;
  ++stats_.misses;
  if (frames_.size() >= capacity_pages_) EvictOne();
  lru_.push_front(page);
  Frame f;
  f.lru_it = lru_.begin();
  f.dirty = mark_dirty;
  if (mark_dirty) ++num_dirty_;
  frames_.emplace(page, f);
}

void BufferPool::EvictOne() {
  assert(!lru_.empty());
  const PageId victim = lru_.back();
  lru_.pop_back();
  auto it = frames_.find(victim);
  assert(it != frames_.end());
  ++stats_.evictions;
  if (it->second.dirty) {
    ++stats_.dirty_evictions;
    ++io_.pages_written;
    --num_dirty_;
  }
  frames_.erase(it);
}

void BufferPool::FlushAll() {
  for (auto& [page, frame] : frames_) {
    if (frame.dirty) {
      frame.dirty = false;
      ++io_.pages_written;
    }
  }
  num_dirty_ = 0;
}

void BufferPool::Clear() {
  frames_.clear();
  lru_.clear();
  num_dirty_ = 0;
}

DiskStats BufferPool::DrainIo() {
  DiskStats out = io_;
  io_ = DiskStats{};
  return out;
}

}  // namespace corrmap
