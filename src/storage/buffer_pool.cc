#include "storage/buffer_pool.h"

#include <algorithm>
#include <cassert>

namespace corrmap {

std::string BufferPoolStats::ToString() const {
  std::string out = "hits=";
  out += std::to_string(hits);
  out += " misses=";
  out += std::to_string(misses);
  out += " evictions=";
  out += std::to_string(evictions);
  out += " dirty_evictions=";
  out += std::to_string(dirty_evictions);
  return out;
}

BufferPool::BufferPool(size_t capacity_pages)
    : capacity_pages_(capacity_pages == 0 ? 1 : capacity_pages) {}

void BufferPool::NoteTouch(uint32_t file, bool hit) {
  FileCounters& fc = file_counters_[file];
  const double keep = 1.0 - 1.0 / kResidencyDecayWindow;
  fc.decayed_hits *= keep;
  fc.decayed_misses *= keep;
  (hit ? fc.decayed_hits : fc.decayed_misses) += 1.0;
}

void BufferPool::Access(PageId page, bool mark_dirty) {
  auto it = frames_.find(page);
  if (it != frames_.end()) {
    ++stats_.hits;
    NoteTouch(page.file, /*hit=*/true);
    lru_.erase(it->second.lru_it);
    lru_.push_front(page);
    it->second.lru_it = lru_.begin();
    if (mark_dirty && !it->second.dirty) {
      it->second.dirty = true;
      ++num_dirty_;
    }
    return;
  }
  ++stats_.misses;
  NoteTouch(page.file, /*hit=*/false);
  ++io_.seeks;  // random read to fault the page in
  if (frames_.size() >= capacity_pages_) EvictOne();
  lru_.push_front(page);
  Frame f;
  f.lru_it = lru_.begin();
  f.dirty = mark_dirty;
  if (mark_dirty) ++num_dirty_;
  frames_.emplace(page, f);
  ++file_counters_[page.file].resident_pages;
}

bool BufferPool::AccessIfCached(PageId page, bool mark_dirty) {
  auto it = frames_.find(page);
  if (it == frames_.end()) {
    NoteTouch(page.file, /*hit=*/false);
    return false;
  }
  Access(page, mark_dirty);
  return true;
}

void BufferPool::Admit(PageId page, bool mark_dirty) {
  // The miss was already recorded by AccessIfCached; admit without the
  // random-read charge (the caller swept into the page sequentially).
  if (AccessIfCached(page, mark_dirty)) return;
  ++stats_.misses;
  if (frames_.size() >= capacity_pages_) EvictOne();
  lru_.push_front(page);
  Frame f;
  f.lru_it = lru_.begin();
  f.dirty = mark_dirty;
  if (mark_dirty) ++num_dirty_;
  frames_.emplace(page, f);
  ++file_counters_[page.file].resident_pages;
}

bool BufferPool::Touch(PageId page) {
  // The serving hot path runs this once per swept page under the engine's
  // pool mutex: one hash lookup, not the IsCached+Admit double probe.
  auto it = frames_.find(page);
  if (it != frames_.end()) {
    ++stats_.hits;
    NoteTouch(page.file, /*hit=*/true);
    lru_.erase(it->second.lru_it);
    lru_.push_front(page);
    it->second.lru_it = lru_.begin();
    return true;
  }
  ++stats_.misses;
  NoteTouch(page.file, /*hit=*/false);
  if (frames_.size() >= capacity_pages_) EvictOne();
  lru_.push_front(page);
  Frame f;
  f.lru_it = lru_.begin();
  frames_.emplace(page, f);
  ++file_counters_[page.file].resident_pages;
  return false;
}

FileResidency BufferPool::ResidencyOf(uint32_t file,
                                      uint64_t file_pages) const {
  FileResidency out;
  auto it = file_counters_.find(file);
  if (it == file_counters_.end()) return out;
  const FileCounters& fc = it->second;
  const double touches = fc.decayed_hits + fc.decayed_misses;
  out.observed_touches = touches;
  if (touches > 0) out.hit_rate = fc.decayed_hits / touches;
  out.resident_pages = fc.resident_pages;
  if (file_pages > 0) {
    out.resident_fraction =
        std::min(1.0, double(fc.resident_pages) / double(file_pages));
  }
  return out;
}

void BufferPool::EvictOne() {
  assert(!lru_.empty());
  const PageId victim = lru_.back();
  lru_.pop_back();
  auto it = frames_.find(victim);
  assert(it != frames_.end());
  ++stats_.evictions;
  if (it->second.dirty) {
    ++stats_.dirty_evictions;
    ++io_.pages_written;
    --num_dirty_;
  }
  frames_.erase(it);
  auto fc = file_counters_.find(victim.file);
  if (fc != file_counters_.end() && fc->second.resident_pages > 0) {
    --fc->second.resident_pages;
  }
}

void BufferPool::FlushAll() {
  for (auto& [page, frame] : frames_) {
    if (frame.dirty) {
      frame.dirty = false;
      ++io_.pages_written;
    }
  }
  num_dirty_ = 0;
}

void BufferPool::Clear() {
  frames_.clear();
  lru_.clear();
  num_dirty_ = 0;
  // drop_caches semantics between experiment trials: the residency
  // history resets with the frames so the next trial starts calibrating
  // from a genuinely cold state.
  file_counters_.clear();
}

DiskStats BufferPool::DrainIo() {
  DiskStats out = io_;
  io_ = DiskStats{};
  return out;
}

}  // namespace corrmap
