#include "storage/disk_model.h"

#include <algorithm>

namespace corrmap {

std::string DiskStats::ToString() const {
  std::string out = "seeks=";
  out += std::to_string(seeks);
  out += " seq_pages=";
  out += std::to_string(seq_pages);
  out += " pages_written=";
  out += std::to_string(pages_written);
  return out;
}

std::vector<PageRun> ExtractRuns(std::vector<PageNo> pages,
                                 uint64_t gap_tolerance) {
  std::vector<PageRun> runs;
  if (pages.empty()) return runs;
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());

  PageRun cur{pages[0], 1};
  for (size_t i = 1; i < pages.size(); ++i) {
    const PageNo expected = cur.first + cur.length;
    if (pages[i] <= expected + gap_tolerance) {
      // Extend through any tolerated gap: the skipped pages are read too.
      cur.length = pages[i] - cur.first + 1;
    } else {
      runs.push_back(cur);
      cur = PageRun{pages[i], 1};
    }
  }
  runs.push_back(cur);
  return runs;
}

DiskStats CostOfRuns(std::span<const PageRun> runs) {
  DiskStats s;
  s.seeks = runs.size();
  for (const auto& r : runs) s.seq_pages += r.length;
  return s;
}

size_t AccessTrace::NumRuns() const {
  return ExtractRuns(pages_).size();
}

size_t AccessTrace::NumDistinctPages() const {
  std::vector<PageNo> p = pages_;
  std::sort(p.begin(), p.end());
  p.erase(std::unique(p.begin(), p.end()), p.end());
  return p.size();
}

std::string AccessTrace::Render(uint64_t total_pages, size_t width) const {
  std::string out(width, '.');
  if (total_pages == 0) return out;
  for (PageNo p : pages_) {
    size_t cell = static_cast<size_t>((__int128(p) * width) / total_pages);
    if (cell >= width) cell = width - 1;
    out[cell] = '#';
  }
  return out;
}

}  // namespace corrmap
