#include "storage/table.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace corrmap {

namespace {
// int64 range bounds as doubles: 2^63 is exactly representable, so d >=
// kInt64KeyMax means the cast would overflow; anything below -2^63
// underflows.
constexpr double kInt64KeyMax = 9223372036854775808.0;
constexpr double kInt64KeyMin = -9223372036854775808.0;
}  // namespace

Column::Column(ValueType type) : type_(type) {
  if (type_ == ValueType::kString) dict_ = std::make_unique<StringPool>();
}

size_t Column::size() const {
  return type_ == ValueType::kDouble ? doubles_.size() : ints_.size();
}

void Column::AppendInt64(int64_t v) {
  assert(type_ != ValueType::kDouble);
  ints_.push_back(v);
}

void Column::AppendDouble(double v) {
  assert(type_ == ValueType::kDouble);
  doubles_.push_back(v);
}

void Column::AppendString(std::string_view v) {
  assert(type_ == ValueType::kString);
  ints_.push_back(dict_->Intern(v));
}

Status Column::ValidateValue(const Value& v) const {
  switch (type_) {
    case ValueType::kInt64:
      if (!v.is_int64()) return Status::InvalidArgument("expected int64");
      return Status::OK();
    case ValueType::kDouble:
      if (v.is_string()) return Status::InvalidArgument("expected numeric");
      return Status::OK();
    case ValueType::kString:
      if (!v.is_string()) return Status::InvalidArgument("expected string");
      return Status::OK();
  }
  return Status::Internal("bad column type");
}

Status Column::AppendValue(const Value& v) {
  Status s = ValidateValue(v);
  if (!s.ok()) return s;
  switch (type_) {
    case ValueType::kInt64:
      AppendInt64(v.AsInt64());
      break;
    case ValueType::kDouble:
      AppendDouble(v.NumericValue());
      break;
    case ValueType::kString:
      AppendString(v.AsString());
      break;
  }
  return Status::OK();
}

Value Column::GetValue(RowId row) const {
  switch (type_) {
    case ValueType::kInt64: return Value(ints_[row]);
    case ValueType::kDouble: return Value(doubles_[row]);
    case ValueType::kString: return Value(dict_->Get(ints_[row]));
  }
  return Value();
}

Key Column::EncodeKey(const Value& v) const {
  switch (type_) {
    case ValueType::kInt64:
      if (!v.is_double()) return Key(v.AsInt64());
      // Saturate out-of-range doubles instead of the UB cast: open-ended
      // range predicates carry +/-infinity endpoints (Predicate::Ge/Le),
      // and the raw cast turned those into INT64_MIN on x86 -- which made
      // open clustered ranges look empty and misrouted sharded spans.
      {
        const double d = v.AsDouble();
        if (std::isnan(d) || d < kInt64KeyMin) {
          return Key(std::numeric_limits<int64_t>::min());
        }
        if (d >= kInt64KeyMax) return Key(std::numeric_limits<int64_t>::max());
        return Key(static_cast<int64_t>(d));
      }
    case ValueType::kDouble: return Key(v.NumericValue());
    case ValueType::kString: return Key(dict_->Find(v.AsString()));
  }
  return Key();
}

void Column::ApplyPermutation(const std::vector<RowId>& perm) {
  if (type_ == ValueType::kDouble) {
    std::vector<double> out(perm.size());
    for (size_t i = 0; i < perm.size(); ++i) out[i] = doubles_[perm[i]];
    doubles_ = std::move(out);
  } else {
    std::vector<int64_t> out(perm.size());
    for (size_t i = 0; i < perm.size(); ++i) out[i] = ints_[perm[i]];
    ints_ = std::move(out);
  }
}

Column Column::CloneEmpty() const {
  Column out(type_);
  if (dict_ != nullptr) *out.dict_ = *dict_;
  return out;
}

Column Column::Clone() const {
  Column out(type_);
  out.ints_ = ints_;
  out.doubles_ = doubles_;
  if (dict_ != nullptr) *out.dict_ = *dict_;
  return out;
}

void Column::Reserve(size_t n) {
  if (type_ == ValueType::kDouble) {
    doubles_.reserve(n);
  } else {
    ints_.reserve(n);
  }
}

Table::Table(std::string name, Schema schema, size_t page_size_bytes)
    : name_(std::move(name)), schema_(std::move(schema)) {
  layout_.page_size_bytes = page_size_bytes;
  layout_.tuple_bytes = schema_.TupleBytes();
  cols_.reserve(schema_.num_columns());
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    cols_.emplace_back(schema_.column(i).type);
  }
}

Status Table::AppendRow(std::span<const Value> values) {
  if (values.size() != cols_.size()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  // Validate the whole row before touching any column, so a mid-row type
  // mismatch cannot leave the columns at different lengths.
  for (size_t i = 0; i < cols_.size(); ++i) {
    Status s = cols_[i].ValidateValue(values[i]);
    if (!s.ok()) return s;
  }
  std::lock_guard<std::mutex> lock(append_mu_);
  for (size_t i = 0; i < cols_.size(); ++i) {
    Status s = cols_[i].AppendValue(values[i]);
    assert(s.ok());
    (void)s;
  }
  // Release-publish: readers that acquire NumRows() see the slots above.
  num_rows_.store(num_rows_.load(std::memory_order_relaxed) + 1,
                  std::memory_order_release);
  return Status::OK();
}

void Table::AppendRowKeys(std::span<const Key> keys) {
  assert(keys.size() == cols_.size());
  std::lock_guard<std::mutex> lock(append_mu_);
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].type() == ValueType::kDouble) {
      cols_[i].AppendDouble(keys[i].Numeric());
    } else {
      cols_[i].AppendInt64(keys[i].AsInt64());
    }
  }
  num_rows_.store(num_rows_.load(std::memory_order_relaxed) + 1,
                  std::memory_order_release);
}

Status Table::DeleteRow(RowId row) {
  const size_t n = NumRows();
  if (row >= n) return Status::OutOfRange("row id past end");
  // Serialize against appends and other deletes; concurrent IsDeleted
  // readers stay lock-free on the atomic bitmap.
  std::lock_guard<std::mutex> lock(append_mu_);
  if (deleted_.capacity_rows() <= row) deleted_.EnsureCapacity(n);
  if (deleted_.Set(row)) return Status::NotFound("row already deleted");
  num_deleted_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

Status Table::ClusterBy(size_t col) {
  if (col >= cols_.size()) return Status::OutOfRange("no such column");
  std::vector<RowId> perm(NumRows());
  std::iota(perm.begin(), perm.end(), RowId{0});
  const Column& c = cols_[col];
  std::stable_sort(perm.begin(), perm.end(), [&](RowId a, RowId b) {
    return c.GetKey(a) < c.GetKey(b);
  });
  for (auto& column : cols_) column.ApplyPermutation(perm);
  if (num_deleted_.load(std::memory_order_relaxed) > 0) {
    TombstoneBitmap out;
    out.EnsureCapacity(perm.size());
    for (size_t i = 0; i < perm.size(); ++i) {
      if (deleted_.Test(perm[i])) out.Set(RowId(i));
    }
    deleted_ = std::move(out);
  }
  clustered_col_ = static_cast<int>(col);
  return Status::OK();
}

std::unique_ptr<Table> Table::Clone() const {
  auto out = std::make_unique<Table>(name_, schema_, layout_.page_size_bytes);
  out->cols_.clear();
  for (const auto& c : cols_) out->cols_.push_back(c.Clone());
  out->deleted_ = deleted_;
  out->num_rows_.store(NumRows(), std::memory_order_relaxed);
  out->reserved_rows_ = reserved_rows_;
  out->num_deleted_.store(num_deleted_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  out->clustered_col_ = clustered_col_;
  return out;
}

std::unique_ptr<Table> Table::CloneReordered(
    std::span<const RowId> order) const {
  auto out = std::make_unique<Table>(name_, schema_, layout_.page_size_bytes);
  out->cols_.clear();
  for (const auto& c : cols_) out->cols_.push_back(c.CloneEmpty());
  for (size_t i = 0; i < cols_.size(); ++i) {
    out->cols_[i].Reserve(order.size());
    for (RowId r : order) out->cols_[i].AppendFrom(cols_[i], r);
  }
  if (num_deleted_.load(std::memory_order_relaxed) > 0) {
    out->deleted_.EnsureCapacity(order.size());
    size_t n_deleted = 0;
    for (size_t i = 0; i < order.size(); ++i) {
      if (IsDeleted(order[i])) {
        out->deleted_.Set(RowId(i));
        ++n_deleted;
      }
    }
    out->num_deleted_.store(n_deleted, std::memory_order_relaxed);
  }
  out->num_rows_.store(order.size(), std::memory_order_relaxed);
  out->reserved_rows_ = order.size();
  out->clustered_col_ = clustered_col_;
  return out;
}

void Table::AppendRowsFrom(const Table& src, RowId begin, RowId end) {
  assert(src.cols_.size() == cols_.size());
  if (begin >= end) return;
  std::lock_guard<std::mutex> lock(append_mu_);
  for (size_t i = 0; i < cols_.size(); ++i) {
    for (RowId r = begin; r < end; ++r) cols_[i].AppendFrom(src.cols_[i], r);
  }
  size_t copied_deleted = 0;
  for (RowId r = begin; r < end; ++r) {
    if (src.IsDeleted(r)) ++copied_deleted;
  }
  if (copied_deleted > 0) {
    const size_t base = num_rows_.load(std::memory_order_relaxed);
    // Only legal while this table is private (recluster catch-up runs
    // before the successor is published); growth is not reader-safe.
    deleted_.EnsureCapacity(base + (end - begin));
    for (RowId r = begin; r < end; ++r) {
      if (src.IsDeleted(r)) deleted_.Set(RowId(base + (r - begin)));
    }
    num_deleted_.fetch_add(copied_deleted, std::memory_order_release);
  }
  num_rows_.store(num_rows_.load(std::memory_order_relaxed) + (end - begin),
                  std::memory_order_release);
}

void Table::Reserve(size_t n) {
  for (auto& c : cols_) c.Reserve(n);
  // Pre-size the tombstone bitmap with the columns so DeleteRow never has
  // to grow it while concurrent readers are attached.
  deleted_.EnsureCapacity(n);
  reserved_rows_ = std::max(reserved_rows_, n);
}

}  // namespace corrmap
