// Write-ahead log used for CM recoverability (paper §7.1: the prototype
// keeps CMs in memory and makes them recoverable by flushing a WAL during
// two-phase commit with PostgreSQL) and, since the durability PR, for the
// serving engine's row-op logging (serve/durability.h).
//
// Records are framed into an in-memory byte image exactly as they would be
// laid out in a log file: a fixed header (type, txn id, payload length,
// CRC32 over header+payload) followed by the payload. The image is what
// survives a simulated crash -- Crash(torn_tail_bytes) cuts a torn tail
// off the last (possibly incomplete) flush and re-parses the image from
// the start, dropping everything at and past the first frame whose CRC or
// length no longer checks out. I/O is charged through DiskStats: appends
// are buffered, a flush charges one seek plus the written bytes as
// sequential page writes, including the re-write of the partially filled
// tail page left by the previous flush (a real log file pays that page
// again).
#ifndef CORRMAP_STORAGE_WAL_H_
#define CORRMAP_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/disk_model.h"

namespace corrmap {

/// Logical WAL record kinds: CM maintenance (kCm*), transaction markers,
/// checkpoint markers, and serving-engine row operations (kRow*).
enum class WalRecordType : uint8_t {
  kCmInsert = 1,
  kCmDelete = 2,
  kPrepare = 3,
  kCommit = 4,
  kCheckpoint = 5,
  kRowAppend = 6,
  kRowDelete = 7,
  kRowUpdate = 8,
};

struct WalRecord {
  WalRecordType type;
  uint64_t txn_id;
  std::string payload;  ///< serialized record body (see serve/durability.cc)
};

/// Bytes of framing per record in the durable image: type (1) + reserved
/// padding (7) + txn id (8) + payload length (4) + CRC32 (4).
inline constexpr size_t kWalRecordHeaderBytes = 24;

/// Append-only simulated log with group flush, CRC-framed durable image,
/// torn-tail crash semantics, and checkpoint-based truncation.
class WriteAheadLog {
 public:
  explicit WriteAheadLog(size_t page_size_bytes = 8192)
      : page_size_(page_size_bytes) {}

  /// Buffers a record (no I/O yet). The frame is serialized immediately so
  /// a later Flush writes exactly these bytes.
  void Append(WalRecord rec);

  /// Durably writes buffered records: one seek + the sequential page
  /// writes of the appended byte range, including the re-write of the
  /// partially filled tail page the previous flush left behind.
  void Flush();

  /// Two-phase commit hooks (paper's PREPARE COMMIT / COMMIT PREPARED):
  /// each writes a marker record and flushes.
  void Prepare(uint64_t txn_id);
  void Commit(uint64_t txn_id);

  /// Writes a kCheckpoint record carrying `payload` and flushes. Returns
  /// the checkpoint id (monotonic, stored as the record's txn_id) for a
  /// later TruncateThrough.
  uint64_t LogCheckpoint(std::string payload);

  /// Drops every record strictly before the kCheckpoint record with id
  /// `checkpoint_id`; the checkpoint record itself becomes the new log
  /// head, so recovery always finds its snapshot marker first. Bounds log
  /// memory to one checkpoint interval of writes. False if no such
  /// durable checkpoint exists (nothing is dropped).
  bool TruncateThrough(uint64_t checkpoint_id);

  /// All records flushed so far, in log order, for replay/recovery.
  const std::vector<WalRecord>& durable_records() const { return durable_; }

  /// Recovery view: the durable records a replay is allowed to apply.
  /// Data records (kCm*, kRow*) are included only when a kCommit marker
  /// for their txn is itself durable -- a kPrepare'd but never-committed
  /// txn's records are skipped, as are the marker records themselves.
  /// kCheckpoint records pass through (they are not txn-scoped).
  std::vector<WalRecord> CommittedRecords() const;

  /// Records appended but not yet flushed (lost on crash).
  size_t pending_records() const { return pending_.size(); }

  uint64_t bytes_durable() const { return bytes_durable_; }
  uint64_t num_flushes() const { return num_flushes_; }

  /// Current size of the durable log image (drops on TruncateThrough,
  /// unlike the cumulative bytes_durable counter).
  size_t log_bytes() const { return image_.size(); }

  /// Returns and resets the accumulated I/O charges.
  DiskStats DrainIo();

  /// Simulates a crash: buffered (un-flushed) records are always lost, and
  /// up to `torn_tail_bytes` are additionally cut off the end of the
  /// durable image -- clamped to the size of the last flush, because every
  /// earlier flush completed its fsync barrier and cannot be torn. The
  /// image is then re-parsed from the start; the first frame with a bad
  /// length or CRC ends the log there.
  void Crash(size_t torn_tail_bytes = 0);

  /// Fault-injection hook: flips one byte of the durable image so the next
  /// Crash()'s re-parse rejects the containing frame by CRC.
  void CorruptByte(size_t offset);

 private:
  /// Re-parses image_ from the start, truncating it at the first invalid
  /// frame, and rebuilds durable_ to match.
  void Reparse();

  size_t page_size_;
  std::vector<WalRecord> pending_;
  std::vector<WalRecord> durable_;
  std::string image_;          ///< framed durable bytes (the log file)
  std::string pending_image_;  ///< framed buffered bytes
  size_t pending_bytes_ = 0;
  uint64_t bytes_durable_ = 0;
  uint64_t num_flushes_ = 0;
  /// Bytes the most recent flush appended: the only range a crash can
  /// tear (see Crash).
  size_t last_flush_bytes_ = 0;
  /// Fill of the log file's final page after the last flush. The next
  /// flush re-writes that page, so its charge is
  /// ceil((tail_fill + pending) / page) instead of ceil(pending / page).
  size_t tail_fill_bytes_ = 0;
  uint64_t next_checkpoint_id_ = 1;
  DiskStats io_;
};

}  // namespace corrmap

#endif  // CORRMAP_STORAGE_WAL_H_
