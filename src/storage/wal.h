// Write-ahead log used for CM recoverability (paper §7.1: the prototype
// keeps CMs in memory and makes them recoverable by flushing a WAL during
// two-phase commit with PostgreSQL). Records are in-memory byte strings;
// I/O is charged through DiskStats: appends are buffered, a flush charges
// one seek plus the buffered bytes as sequential page writes.
#ifndef CORRMAP_STORAGE_WAL_H_
#define CORRMAP_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/disk_model.h"

namespace corrmap {

/// Logical WAL record kinds for CM maintenance.
enum class WalRecordType : uint8_t {
  kCmInsert = 1,
  kCmDelete = 2,
  kPrepare = 3,
  kCommit = 4,
  kCheckpoint = 5,
};

struct WalRecord {
  WalRecordType type;
  uint64_t txn_id;
  std::string payload;  ///< serialized (cm_id, u_key, c_bucket) triple
};

/// Append-only simulated log with group flush.
class WriteAheadLog {
 public:
  explicit WriteAheadLog(size_t page_size_bytes = 8192)
      : page_size_(page_size_bytes) {}

  /// Buffers a record (no I/O yet).
  void Append(WalRecord rec);

  /// Durably writes buffered records: one seek + ceil(bytes/page) sequential
  /// page writes, matching a log-file fsync.
  void Flush();

  /// Two-phase commit hooks (paper's PREPARE COMMIT / COMMIT PREPARED):
  /// each writes a marker record and flushes.
  void Prepare(uint64_t txn_id);
  void Commit(uint64_t txn_id);

  /// All records flushed so far, for replay/recovery.
  const std::vector<WalRecord>& durable_records() const { return durable_; }

  /// Records appended but not yet flushed (lost on crash).
  size_t pending_records() const { return pending_.size(); }

  uint64_t bytes_durable() const { return bytes_durable_; }
  uint64_t num_flushes() const { return num_flushes_; }

  /// Returns and resets the accumulated I/O charges.
  DiskStats DrainIo();

  /// Simulates a crash: drops buffered, un-flushed records.
  void Crash() { pending_.clear(); pending_bytes_ = 0; }

 private:
  size_t page_size_;
  std::vector<WalRecord> pending_;
  std::vector<WalRecord> durable_;
  size_t pending_bytes_ = 0;
  uint64_t bytes_durable_ = 0;
  uint64_t num_flushes_ = 0;
  DiskStats io_;
};

}  // namespace corrmap

#endif  // CORRMAP_STORAGE_WAL_H_
