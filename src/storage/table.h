// Columnar heap table with a row-major page-layout view for I/O accounting.
// Supports append, tombstone delete, clustering (stable sort by one column),
// and typed row access. This is the storage substrate every index, CM, and
// access path operates over.
//
// Concurrency contract (the serving engine's append path relies on it):
// appends are serialized by an internal mutex and publish the new row count
// with a release store, so readers that bound their row accesses by
// NumRows() (an acquire load) never observe a half-written row. The
// contract holds only while the columns do not reallocate -- call
// Reserve() for the expected maximum before concurrent readers attach, and
// keep appends within ReservedRows(). Deletes and ClusterBy still require
// external exclusion.
#ifndef CORRMAP_STORAGE_TABLE_H_
#define CORRMAP_STORAGE_TABLE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/string_pool.h"
#include "common/value.h"
#include "storage/page.h"
#include "storage/schema.h"
#include "storage/tombstones.h"

namespace corrmap {

/// Typed column storage. Int64 and dictionary codes share the int vector;
/// doubles have their own. Strings are interned into a per-column pool.
class Column {
 public:
  explicit Column(ValueType type);

  ValueType type() const { return type_; }
  size_t size() const;

  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string_view v);

  /// Type check for AppendValue without mutating the column.
  Status ValidateValue(const Value& v) const;

  /// Appends a logical value; must match the column type.
  Status AppendValue(const Value& v);

  int64_t GetInt64(RowId row) const { return ints_[row]; }
  double GetDouble(RowId row) const { return doubles_[row]; }

  /// Physical key (dict code for strings).
  Key GetKey(RowId row) const {
    return type_ == ValueType::kDouble ? Key(doubles_[row]) : Key(ints_[row]);
  }

  /// Appends a copy of `src`'s row `row`. Both columns must have the same
  /// type; for strings the dictionary code is copied verbatim, so `src`
  /// must share this column's dictionary coding (a clone of it).
  void AppendFrom(const Column& src, RowId row) {
    if (type_ == ValueType::kDouble) {
      doubles_.push_back(src.doubles_[row]);
    } else {
      ints_.push_back(src.ints_[row]);
    }
  }

  /// Empty column of the same type sharing this column's dictionary coding
  /// (deep copy, codes preserved).
  Column CloneEmpty() const;

  /// Logical value (decoded string for string columns).
  Value GetValue(RowId row) const;

  /// Encodes a logical literal to its physical key in this column's domain.
  /// Unknown strings encode to code -1 (matches nothing).
  Key EncodeKey(const Value& v) const;

  const StringPool* dictionary() const { return dict_.get(); }

  /// Reorders the column contents by `perm` (new[i] = old[perm[i]]).
  void ApplyPermutation(const std::vector<RowId>& perm);

  /// Deep copy (dictionary included).
  Column Clone() const;

  void Reserve(size_t n);

 private:
  ValueType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::unique_ptr<StringPool> dict_;
};

/// A heap table: schema + columns + page layout + optional clustering.
class Table {
 public:
  Table(std::string name, Schema schema,
        size_t page_size_bytes = kDefaultPageSizeBytes);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const PageLayout& layout() const { return layout_; }

  /// Rows visible to readers. Acquire-paired with the release store in the
  /// append paths: every column slot below the returned count is fully
  /// written.
  size_t NumRows() const { return num_rows_.load(std::memory_order_acquire); }
  /// Live (non-tombstoned) rows.
  size_t NumLiveRows() const {
    return NumRows() - num_deleted_.load(std::memory_order_acquire);
  }
  /// Tombstoned rows (NumRows() - NumLiveRows()).
  size_t NumDeleted() const {
    return num_deleted_.load(std::memory_order_acquire);
  }
  uint64_t NumPages() const { return layout_.NumPages(NumRows()); }

  /// "total_tups" and "tups_per_page" as used by the paper's cost model.
  uint64_t TotalTuples() const { return NumLiveRows(); }
  size_t TuplesPerPage() const { return layout_.TuplesPerPage(); }

  /// Appends one row; the span must match the schema arity and types.
  /// Thread-safe against other appends and against concurrent readers that
  /// respect the NumRows() bound (see the file-level contract).
  Status AppendRow(std::span<const Value> values);

  /// Fast path for generators and the serving engine: append physical keys
  /// directly. Same thread-safety contract as AppendRow.
  void AppendRowKeys(std::span<const Key> keys);

  /// Tombstones a row. Scans and access paths skip deleted rows.
  /// Serialized against appends and other deletes by the append mutex, and
  /// -- because the tombstone store is an atomic bitmap -- safe against
  /// concurrent IsDeleted readers as long as the bitmap does not grow
  /// (Reserve pre-sizes it with the columns; deleting past the reserved
  /// capacity falls back to a growth that requires external exclusion,
  /// exactly like a column reallocation would).
  Status DeleteRow(RowId row);
  bool IsDeleted(RowId row) const { return deleted_.Test(row); }

  const Column& column(size_t i) const { return cols_[i]; }
  Column& column_mutable(size_t i) { return cols_[i]; }
  Result<size_t> ColumnIndex(const std::string& name) const {
    return schema_.ColumnIndex(name);
  }

  Key GetKey(RowId row, size_t col) const { return cols_[col].GetKey(row); }
  Value GetValue(RowId row, size_t col) const { return cols_[col].GetValue(row); }

  /// Physically reorders the table so `col` is in ascending order (stable),
  /// making `col` the clustered attribute. Invalidates RowIds held by
  /// indexes built earlier; cluster first, then build indexes.
  Status ClusterBy(size_t col);

  /// Clustered column index, or -1 if the table is unclustered (heap order).
  int clustered_column() const { return clustered_col_; }

  /// Size of the heap file in bytes under the page layout.
  uint64_t HeapBytes() const { return NumPages() * layout_.page_size_bytes; }

  /// Deep copy, used by offline tools (e.g. the physical designer) that
  /// score alternative clusterings on scratch copies.
  std::unique_ptr<Table> Clone() const;

  /// Deep-copies rows `order[0], order[1], ...` (in that sequence) into a
  /// fresh table, preserving dictionaries (codes intact), tombstones, and
  /// the clustered-column mark. This is the serving layer's recluster hook:
  /// `order` is a merge permutation over the published prefix, so the copy
  /// is safe against concurrent appends beyond it (row slots below the
  /// published count never move; see the file-level contract). The caller
  /// guarantees the order it supplies keeps the clustered column sorted.
  std::unique_ptr<Table> CloneReordered(std::span<const RowId> order) const;

  /// Appends copies of `src`'s rows [begin, end) column-wise. `src` must
  /// have the same schema and dictionary coding (this table must be a
  /// Clone/CloneReordered of it). Used by the recluster catch-up phase to
  /// carry rows appended while the reordered copy was being built. Same
  /// thread-safety contract as AppendRow.
  void AppendRowsFrom(const Table& src, RowId begin, RowId end);

  /// Pre-allocates column capacity for `n` rows and records it as the
  /// concurrent-append bound (see ReservedRows).
  void Reserve(size_t n);

  /// Rows the columns can hold without reallocating. Concurrent readers
  /// are only safe while NumRows() stays within this bound; the serving
  /// engine refuses appends past it.
  size_t ReservedRows() const { return reserved_rows_; }

 private:
  std::string name_;
  Schema schema_;
  PageLayout layout_;
  std::vector<Column> cols_;
  TombstoneBitmap deleted_;
  std::mutex append_mu_;
  std::atomic<size_t> num_rows_{0};
  size_t reserved_rows_ = 0;
  std::atomic<size_t> num_deleted_{0};
  int clustered_col_ = -1;
};

}  // namespace corrmap

#endif  // CORRMAP_STORAGE_TABLE_H_
