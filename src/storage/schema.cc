#include "storage/schema.h"

namespace corrmap {

Schema::Schema(std::vector<ColumnDef> cols) : cols_(std::move(cols)) {}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

size_t Schema::TupleBytes() const {
  size_t bytes = kTupleHeaderBytes;
  for (const auto& c : cols_) bytes += c.byte_width;
  return bytes;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (i) out += ", ";
    out += cols_[i].name;
    out += " ";
    out += ValueTypeName(cols_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace corrmap
