// Atomic tombstone bitmap. The serving engine's select path reads delete
// markers while other threads may be tombstoning rows; the previous
// std::vector<bool> representation packs 8 rows per byte with plain
// (non-atomic) read-modify-write, so a concurrent DeleteRow raced every
// reader of the 63 neighboring bits. This bitmap stores one bit per row in
// 64-bit atomic words: Set() is a fetch_or and Test() an acquire load, so
// marking a row deleted is safe against concurrent readers -- the
// prerequisite for delete support in the serving engine.
//
// Capacity contract (same as Column reallocation, see storage/table.h):
// Test/Set never allocate, but EnsureCapacity reallocates the word array
// and must not run concurrently with readers. Table::Reserve pre-sizes the
// bitmap together with the columns, so during concurrent serving the
// bitmap never grows.
#ifndef CORRMAP_STORAGE_TOMBSTONES_H_
#define CORRMAP_STORAGE_TOMBSTONES_H_

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>

#include "storage/page.h"

namespace corrmap {

class TombstoneBitmap {
 public:
  TombstoneBitmap() = default;

  TombstoneBitmap(const TombstoneBitmap& o) { *this = o; }
  TombstoneBitmap& operator=(const TombstoneBitmap& o) {
    if (this == &o) return *this;
    num_words_ = o.num_words_;
    words_ = num_words_ > 0
                 ? std::make_unique<std::atomic<uint64_t>[]>(num_words_)
                 : nullptr;
    for (size_t w = 0; w < num_words_; ++w) {
      words_[w].store(o.words_[w].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    }
    return *this;
  }
  TombstoneBitmap(TombstoneBitmap&&) = default;
  TombstoneBitmap& operator=(TombstoneBitmap&&) = default;

  /// True if `row` is tombstoned. Rows past the capacity were never
  /// deleted (appends do not touch the bitmap), so they read false without
  /// allocating. Safe against concurrent Set.
  bool Test(RowId row) const {
    const size_t w = size_t(row >> 6);
    if (w >= num_words_) return false;
    return (words_[w].load(std::memory_order_acquire) >> (row & 63)) & 1;
  }

  /// Marks `row` deleted; returns whether it already was. Requires
  /// row < capacity_rows(). Safe against concurrent Test and Set.
  bool Set(RowId row) {
    const uint64_t mask = uint64_t{1} << (row & 63);
    return (words_[size_t(row >> 6)].fetch_or(mask,
                                              std::memory_order_acq_rel) &
            mask) != 0;
  }

  /// Clears the mark (recovery/undo paths). Same capacity requirement.
  void Reset(RowId row) {
    const uint64_t mask = uint64_t{1} << (row & 63);
    words_[size_t(row >> 6)].fetch_and(~mask, std::memory_order_acq_rel);
  }

  /// Grows the bitmap to cover at least `rows` rows (never shrinks).
  /// NOT safe against concurrent Test/Set: call only while no readers are
  /// attached (setup, Table::Reserve, offline maintenance).
  void EnsureCapacity(size_t rows) {
    const size_t want = (rows + 63) / 64;
    if (want <= num_words_) return;
    auto grown = std::make_unique<std::atomic<uint64_t>[]>(want);
    for (size_t w = 0; w < num_words_; ++w) {
      grown[w].store(words_[w].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    }
    // make_unique value-initializes, so the new words are already zero.
    words_ = std::move(grown);
    num_words_ = want;
  }

  /// Number of tombstoned rows in [begin, end), word-wise popcount. Rows
  /// past the capacity read as live. Safe against concurrent Set; the
  /// result is a snapshot (exact once writers have quiesced).
  size_t CountSetInRange(RowId begin, RowId end) const {
    const size_t hi = std::min(size_t(end), capacity_rows());
    size_t count = 0;
    for (size_t r = size_t(begin); r < hi;) {
      const size_t w = r >> 6;
      uint64_t word = words_[w].load(std::memory_order_acquire);
      const size_t word_end = std::min(hi, (w + 1) * 64);
      if (r & 63) word &= ~uint64_t{0} << (r & 63);
      if (word_end & 63) word &= (uint64_t{1} << (word_end & 63)) - 1;
      count += size_t(std::popcount(word));
      r = word_end;
    }
    return count;
  }

  size_t capacity_rows() const { return num_words_ * 64; }

 private:
  std::unique_ptr<std::atomic<uint64_t>[]> words_;
  size_t num_words_ = 0;
};

}  // namespace corrmap

#endif  // CORRMAP_STORAGE_TOMBSTONES_H_
