// LRU buffer pool with dirty-page tracking. This is the mechanism behind the
// paper's Experiment 3: many secondary B+Trees dirty more pages than fit in
// RAM, so batched inserts force eviction write-backs; CMs stay resident.
#ifndef CORRMAP_STORAGE_BUFFER_POOL_H_
#define CORRMAP_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "storage/disk_model.h"
#include "storage/page.h"

namespace corrmap {

/// Cache hit/miss and eviction counters.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_evictions = 0;

  std::string ToString() const;
};

/// Fixed-capacity LRU page cache. Page reads on miss and dirty-page
/// write-backs are charged to an internal DiskStats ledger that callers
/// drain into their operation cost.
class BufferPool {
 public:
  explicit BufferPool(size_t capacity_pages);

  size_t capacity_pages() const { return capacity_pages_; }
  size_t num_cached() const { return frames_.size(); }
  size_t num_dirty() const { return num_dirty_; }

  /// Issues a fresh file id for a table or index backed by this pool.
  uint32_t RegisterFile() { return next_file_id_++; }

  /// Touches a page: hit moves it to MRU; miss charges one random read and
  /// may evict the LRU page (charging a write if dirty). `mark_dirty`
  /// records an in-place modification.
  void Access(PageId page, bool mark_dirty);

  /// Touches a page only if it is already resident (returns false on miss,
  /// charging nothing). Used by read paths that model their own I/O.
  bool AccessIfCached(PageId page, bool mark_dirty);

  /// Like Access, but a miss does NOT charge a read seek -- the caller has
  /// already accounted the read as part of a sequential sweep. Evicted
  /// dirty pages still charge their write-back.
  void Admit(PageId page, bool mark_dirty);

  bool IsCached(PageId page) const { return frames_.count(page) > 0; }

  /// Writes back all dirty pages (checkpoint), charging one write each.
  void FlushAll();

  /// Drops every frame without writing (used to model a cold cache between
  /// experiment trials, like the paper's drop_caches).
  void Clear();

  const BufferPoolStats& stats() const { return stats_; }

  /// Returns and resets the accumulated I/O charges.
  DiskStats DrainIo();

 private:
  struct Frame {
    std::list<PageId>::iterator lru_it;
    bool dirty = false;
  };

  void EvictOne();

  size_t capacity_pages_;
  std::list<PageId> lru_;  // front = MRU, back = LRU
  std::unordered_map<PageId, Frame, PageIdHash> frames_;
  size_t num_dirty_ = 0;
  uint32_t next_file_id_ = 0;
  BufferPoolStats stats_;
  DiskStats io_;
};

}  // namespace corrmap

#endif  // CORRMAP_STORAGE_BUFFER_POOL_H_
