// LRU buffer pool with dirty-page tracking. This is the mechanism behind the
// paper's Experiment 3: many secondary B+Trees dirty more pages than fit in
// RAM, so batched inserts force eviction write-backs; CMs stay resident.
//
// The pool is internally thread-safe via lock striping: pages hash to one of
// `num_stripes` independent LRU partitions, each with its own mutex and its
// own share of the capacity. A single-striped pool (the default) behaves
// exactly like the classic global-LRU pool; the serving layer constructs a
// multi-striped pool so concurrent readers charging their sweeps no longer
// funnel through one lock.
#ifndef CORRMAP_STORAGE_BUFFER_POOL_H_
#define CORRMAP_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/disk_model.h"
#include "storage/page.h"

namespace corrmap {

/// Cache hit/miss and eviction counters.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_evictions = 0;

  std::string ToString() const;
};

/// Point-in-time view of the pool's counters and residency, produced by
/// BufferPool::StatsSnapshot() for metric exporters. See that method for
/// the relaxed-consistency contract.
struct BufferPoolSnapshot {
  BufferPoolStats stats;
  size_t num_cached = 0;
  size_t num_dirty = 0;
  size_t capacity_pages = 0;
};

/// Live residency snapshot for one file (table heap or index) or one extent
/// of it, the input the cost model's calibration consumes
/// (CostInputs::heap_residency / index_residency). `hit_rate` is an
/// exponentially decayed fraction of the touches that hit the pool --
/// decayed so a workload shift (a range going cold, a recluster retiring a
/// file) fades out of the estimate within ~kResidencyDecayWindow touches
/// instead of being averaged against the whole history. `resident_fraction`
/// is the exact fraction of the file's pages currently cached (needs the
/// caller to say how many pages the file has).
struct FileResidency {
  double hit_rate = 0;
  double resident_fraction = 0;
  uint64_t resident_pages = 0;
  /// Decayed touches backing hit_rate; calibration layers can treat a
  /// tiny sample as "no signal yet" instead of trusting 1-touch rates.
  double observed_touches = 0;
};

/// Fixed-capacity LRU page cache. Page reads on miss and dirty-page
/// write-backs are charged to an internal DiskStats ledger that callers
/// drain into their operation cost.
class BufferPool {
 public:
  /// `num_stripes` > 1 partitions the capacity into independent LRU
  /// stripes keyed by page hash (set-associative flavor); 1 keeps the
  /// classic single global LRU. Clamped so every stripe holds >= 1 page.
  explicit BufferPool(size_t capacity_pages, size_t num_stripes = 1);

  size_t capacity_pages() const { return capacity_pages_; }
  size_t num_stripes() const { return stripes_.size(); }
  size_t num_cached() const;
  size_t num_dirty() const;

  /// Issues a fresh file id for a table or index backed by this pool.
  uint32_t RegisterFile() {
    return next_file_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Touches a page: hit moves it to MRU; miss charges one random read and
  /// may evict the LRU page (charging a write if dirty). `mark_dirty`
  /// records an in-place modification.
  void Access(PageId page, bool mark_dirty);

  /// Touches a page only if it is already resident (returns false on miss,
  /// charging nothing). Used by read paths that model their own I/O.
  bool AccessIfCached(PageId page, bool mark_dirty);

  /// Like Access, but a miss does NOT charge a read seek -- the caller has
  /// already accounted the read as part of a sequential sweep. Evicted
  /// dirty pages still charge their write-back.
  void Admit(PageId page, bool mark_dirty);

  /// Serving-sweep primitive: touches `page` (hit moves to MRU, miss
  /// admits without charging a seek -- the caller prices the I/O itself
  /// from the returned hit/miss) and returns whether it was already
  /// resident. Feeds the per-extent decayed counters like every other
  /// touch. Thread-safe: only this page's stripe is locked.
  bool Touch(PageId page);

  bool IsCached(PageId page) const;

  /// Decay window (in touches of one extent) for the hit-rate estimate
  /// exported through ResidencyOf / ResidencyOfExtent.
  static constexpr double kResidencyDecayWindow = 512;

  /// Residency is tracked per fixed-size extent of kExtentPages pages
  /// (512 KiB at the default 8 KiB page) so a hot range of a file can
  /// price near-CPU while a cold range of the same file prices at device
  /// cost.
  static constexpr uint64_t kExtentPages = 64;

  static uint64_t ExtentOfPage(PageNo page) { return page / kExtentPages; }
  static uint64_t NumExtents(uint64_t file_pages) {
    return (file_pages + kExtentPages - 1) / kExtentPages;
  }

  /// Whole-file residency snapshot for `file`, aggregated over its
  /// extents. `file_pages` is the file's current page count
  /// (resident_fraction needs it; pass 0 to skip it).
  FileResidency ResidencyOf(uint32_t file, uint64_t file_pages = 0) const;

  /// Extent-granular residency: decayed hit rate and resident pages of
  /// extent `extent` (pages [extent*kExtentPages, ...)) of `file` alone.
  FileResidency ResidencyOfExtent(uint32_t file, uint64_t extent) const;

  /// Writes back all dirty pages (checkpoint), charging one write each.
  void FlushAll();

  /// Drops every frame without writing (used to model a cold cache between
  /// experiment trials, like the paper's drop_caches). Also resets the
  /// decayed per-extent touch history so the next trial's residency
  /// calibration starts genuinely cold.
  void Clear();

  /// Aggregated counters across stripes (by value: the per-stripe ledgers
  /// are summed under their locks).
  BufferPoolStats stats() const;

  /// All exported pool series in one pass over the stripes, each stripe's
  /// whole contribution (stats + cached + dirty) read under a single lock
  /// hold. Relaxed-consistency contract: there is no global consistent
  /// point -- stripes are sampled one after another while other threads
  /// keep mutating -- but every snapshot still satisfies
  ///   0 <= num_dirty <= num_cached <= capacity_pages,
  /// and hits/misses/evictions/dirty_evictions are monotonically
  /// non-decreasing across successive snapshots (each stripe's ledger only
  /// grows, and each is read atomically under its lock). Calling stats(),
  /// num_cached() and num_dirty() separately gives no such guarantee: an
  /// eviction between the calls can make derived gauges (e.g.
  /// cached - dirty) go negative, which is exactly what exporters must
  /// avoid.
  BufferPoolSnapshot StatsSnapshot() const;

  /// Returns and resets the accumulated I/O charges.
  DiskStats DrainIo();

 private:
  struct Frame {
    std::list<PageId>::iterator lru_it;
    bool dirty = false;
  };

  /// Exponentially decayed per-extent touch counters plus an exact
  /// resident page count, maintained by every Access/Admit/Touch and by
  /// evictions. Keyed by (file, extent); an extent's pages may hash to
  /// several stripes, so readers aggregate across stripes.
  struct ExtentCounters {
    double decayed_hits = 0;
    double decayed_misses = 0;
    uint64_t resident_pages = 0;
  };

  /// One LRU partition: its own lock, frames, capacity share, counters
  /// and ledgers. All mutation happens under `mu`.
  struct Stripe {
    mutable std::mutex mu;
    std::list<PageId> lru;  // front = MRU, back = LRU
    std::unordered_map<PageId, Frame, PageIdHash> frames;
    std::unordered_map<uint64_t, ExtentCounters> extent_counters;
    size_t capacity = 0;
    size_t num_dirty = 0;
    BufferPoolStats stats;
    DiskStats io;
  };

  static uint64_t ExtentKey(uint32_t file, uint64_t extent) {
    return (uint64_t(file) << 40) ^ extent;
  }

  Stripe& StripeOf(PageId page) {
    return stripes_[PageIdHash{}(page) % stripes_.size()];
  }
  const Stripe& StripeOf(PageId page) const {
    return stripes_[PageIdHash{}(page) % stripes_.size()];
  }

  static void EvictOne(Stripe& s);
  static void NoteTouch(Stripe& s, PageId page, bool hit);
  static void AdmitLocked(Stripe& s, PageId page, bool mark_dirty);

  size_t capacity_pages_;
  std::vector<Stripe> stripes_;
  std::atomic<uint32_t> next_file_id_{0};
};

}  // namespace corrmap

#endif  // CORRMAP_STORAGE_BUFFER_POOL_H_
