// LRU buffer pool with dirty-page tracking. This is the mechanism behind the
// paper's Experiment 3: many secondary B+Trees dirty more pages than fit in
// RAM, so batched inserts force eviction write-backs; CMs stay resident.
#ifndef CORRMAP_STORAGE_BUFFER_POOL_H_
#define CORRMAP_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "storage/disk_model.h"
#include "storage/page.h"

namespace corrmap {

/// Cache hit/miss and eviction counters.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_evictions = 0;

  std::string ToString() const;
};

/// Live residency snapshot for one file (table heap or index), the input
/// the cost model's calibration consumes (CostInputs::heap_residency /
/// index_residency). `hit_rate` is an exponentially decayed fraction of
/// this file's page touches that hit the pool -- decayed so a workload
/// shift (a range going cold, a recluster retiring a file) fades out of
/// the estimate within ~kResidencyDecayWindow touches instead of being
/// averaged against the whole history. `resident_fraction` is the exact
/// fraction of the file's pages currently cached (needs the caller to say
/// how many pages the file has).
struct FileResidency {
  double hit_rate = 0;
  double resident_fraction = 0;
  uint64_t resident_pages = 0;
  /// Decayed touches backing hit_rate; calibration layers can treat a
  /// tiny sample as "no signal yet" instead of trusting 1-touch rates.
  double observed_touches = 0;
};

/// Fixed-capacity LRU page cache. Page reads on miss and dirty-page
/// write-backs are charged to an internal DiskStats ledger that callers
/// drain into their operation cost.
class BufferPool {
 public:
  explicit BufferPool(size_t capacity_pages);

  size_t capacity_pages() const { return capacity_pages_; }
  size_t num_cached() const { return frames_.size(); }
  size_t num_dirty() const { return num_dirty_; }

  /// Issues a fresh file id for a table or index backed by this pool.
  uint32_t RegisterFile() { return next_file_id_++; }

  /// Touches a page: hit moves it to MRU; miss charges one random read and
  /// may evict the LRU page (charging a write if dirty). `mark_dirty`
  /// records an in-place modification.
  void Access(PageId page, bool mark_dirty);

  /// Touches a page only if it is already resident (returns false on miss,
  /// charging nothing). Used by read paths that model their own I/O.
  bool AccessIfCached(PageId page, bool mark_dirty);

  /// Like Access, but a miss does NOT charge a read seek -- the caller has
  /// already accounted the read as part of a sequential sweep. Evicted
  /// dirty pages still charge their write-back.
  void Admit(PageId page, bool mark_dirty);

  /// Serving-sweep primitive: touches `page` (hit moves to MRU, miss
  /// admits without charging a seek -- the caller prices the I/O itself
  /// from the returned hit/miss) and returns whether it was already
  /// resident. Feeds the per-file decayed counters like every other
  /// touch.
  bool Touch(PageId page);

  bool IsCached(PageId page) const { return frames_.count(page) > 0; }

  /// Decay window (in touches of one file) for the per-file hit-rate
  /// estimate exported through ResidencyOf.
  static constexpr double kResidencyDecayWindow = 512;

  /// Residency snapshot for `file`. `file_pages` is the file's current
  /// page count (resident_fraction needs it; pass 0 to skip it).
  FileResidency ResidencyOf(uint32_t file, uint64_t file_pages = 0) const;

  /// Writes back all dirty pages (checkpoint), charging one write each.
  void FlushAll();

  /// Drops every frame without writing (used to model a cold cache between
  /// experiment trials, like the paper's drop_caches).
  void Clear();

  const BufferPoolStats& stats() const { return stats_; }

  /// Returns and resets the accumulated I/O charges.
  DiskStats DrainIo();

 private:
  struct Frame {
    std::list<PageId>::iterator lru_it;
    bool dirty = false;
  };

  /// Exponentially decayed per-file touch counters plus an exact resident
  /// page count, maintained by every Access/Admit/Touch and by evictions.
  struct FileCounters {
    double decayed_hits = 0;
    double decayed_misses = 0;
    uint64_t resident_pages = 0;
  };

  void EvictOne();
  void NoteTouch(uint32_t file, bool hit);

  size_t capacity_pages_;
  std::list<PageId> lru_;  // front = MRU, back = LRU
  std::unordered_map<PageId, Frame, PageIdHash> frames_;
  std::unordered_map<uint32_t, FileCounters> file_counters_;
  size_t num_dirty_ = 0;
  uint32_t next_file_id_ = 0;
  BufferPoolStats stats_;
  DiskStats io_;
};

}  // namespace corrmap

#endif  // CORRMAP_STORAGE_BUFFER_POOL_H_
