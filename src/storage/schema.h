// Table schemas: typed, named columns with declared physical widths.
#ifndef CORRMAP_STORAGE_SCHEMA_H_
#define CORRMAP_STORAGE_SCHEMA_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace corrmap {

/// One column: name, logical type, and the byte width it occupies in the
/// row-major page layout (strings store their declared width, not the
/// dictionary code width, so page math matches a real heap file).
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kInt64;
  size_t byte_width = 8;

  static ColumnDef Int64(std::string name) {
    return {std::move(name), ValueType::kInt64, 8};
  }
  static ColumnDef Double(std::string name) {
    return {std::move(name), ValueType::kDouble, 8};
  }
  static ColumnDef String(std::string name, size_t width = 16) {
    return {std::move(name), ValueType::kString, width};
  }
};

/// Ordered collection of column definitions.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> cols);

  size_t num_columns() const { return cols_.size(); }
  const ColumnDef& column(size_t i) const { return cols_[i]; }

  /// Index of the column named `name`, or error if absent.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Total bytes per tuple (sum of declared widths plus a small header,
  /// mirroring heap-tuple overhead).
  size_t TupleBytes() const;

  /// Per-tuple header bytes included in TupleBytes().
  static constexpr size_t kTupleHeaderBytes = 24;

  std::string ToString() const;

 private:
  std::vector<ColumnDef> cols_;
};

}  // namespace corrmap

#endif  // CORRMAP_STORAGE_SCHEMA_H_
