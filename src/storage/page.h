// Page-layout arithmetic. The engine stores tables columnar in memory but
// accounts all I/O against a row-major page layout (fixed tuple width per
// schema, 8 KiB pages), matching the heap-file model the paper's cost
// formulas assume.
#ifndef CORRMAP_STORAGE_PAGE_H_
#define CORRMAP_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/value.h"

namespace corrmap {

/// Row position within a table (0-based, dense; deletions are tombstoned).
using RowId = uint64_t;

/// Page number within one file.
using PageNo = uint64_t;

/// Default page size, matching PostgreSQL's 8 KiB pages.
inline constexpr size_t kDefaultPageSizeBytes = 8192;

/// Fixed-width page layout for one table or index file.
struct PageLayout {
  size_t page_size_bytes = kDefaultPageSizeBytes;
  size_t tuple_bytes = 0;

  /// Number of tuples stored per page ("tups_per_page" in the paper).
  size_t TuplesPerPage() const {
    return tuple_bytes == 0 ? 1 : std::max<size_t>(1, page_size_bytes / tuple_bytes);
  }

  PageNo PageOfRow(RowId row) const { return row / TuplesPerPage(); }

  /// Pages needed to hold `rows` tuples.
  uint64_t NumPages(uint64_t rows) const {
    const size_t tpp = TuplesPerPage();
    return (rows + tpp - 1) / tpp;
  }
};

/// Globally unique page identity: (file, page). File ids are issued by the
/// BufferPool's registry; the base table is conventionally file 0.
struct PageId {
  uint32_t file = 0;
  PageNo page = 0;

  bool operator==(const PageId&) const = default;
  auto operator<=>(const PageId&) const = default;
};

struct PageIdHash {
  size_t operator()(const PageId& p) const {
    return Mix64((uint64_t(p.file) << 48) ^ p.page);
  }
};

}  // namespace corrmap

#endif  // CORRMAP_STORAGE_PAGE_H_
