#include "core/designer.h"

#include <algorithm>
#include <set>

#include "core/bucketing.h"
#include "core/cost_model.h"
#include "index/clustered_index.h"

namespace corrmap {

namespace {

/// Scores one candidate clustering over the workload.
ClusteringChoice ScoreClustering(Table* scratch, size_t ccol,
                                 const std::vector<Query>& workload,
                                 const DesignerConfig& config) {
  ClusteringChoice choice;
  choice.clustered_col = ccol;
  (void)scratch->ClusterBy(ccol);
  auto cidx = ClusteredIndex::Build(*scratch, ccol);
  auto cbuckets = ClusteredBucketing::Build(
      *scratch, ccol,
      config.clustered_bucket_pages * scratch->TuplesPerPage());
  CmAdvisor advisor(scratch, &*cidx, &*cbuckets, config.advisor);

  CostModel model;
  CostInputs scan_in;
  scan_in.tups_per_page = double(scratch->TuplesPerPage());
  scan_in.total_tups = double(scratch->TotalTuples());
  const double scan = model.ScanCost(scan_in);

  for (const Query& q : workload) {
    double best = scan;
    // Clustered access if the query predicates the clustered column.
    for (const auto& p : q.predicates()) {
      if (p.column() != ccol) continue;
      const double sel = q.EstimateSelectivity(*scratch, advisor.sample());
      const double est = double(cidx->BTreeHeight()) * model.disk().seek_ms() +
                         sel * double(scratch->NumPages()) *
                             model.disk().seq_page_ms();
      best = std::min(best, est);
    }
    auto designs = advisor.EnumerateDesigns(q);
    if (!designs.empty()) best = std::min(best, designs.front().est_cost_ms);
    choice.workload_cost_ms += best;
    if (best < scan * 0.999) ++choice.queries_helped;
  }
  return choice;
}

}  // namespace

Result<PhysicalDesign> DesignPhysicalLayout(const Table& table,
                                            const std::vector<Query>& workload,
                                            const DesignerConfig& config) {
  if (workload.empty()) {
    return Status::InvalidArgument("designer needs at least one query");
  }
  // Candidate clustered attributes: every predicated column.
  std::set<size_t> candidates;
  for (const Query& q : workload) {
    for (size_t c : q.PredicatedColumns()) candidates.insert(c);
  }
  if (candidates.empty()) {
    return Status::InvalidArgument("workload predicates no columns");
  }

  PhysicalDesign out;
  bool first = true;
  for (size_t ccol : candidates) {
    auto scratch = table.Clone();
    ClusteringChoice choice =
        ScoreClustering(scratch.get(), ccol, workload, config);
    out.considered.push_back(choice);
    if (first || choice.workload_cost_ms < out.clustering.workload_cost_ms) {
      out.clustering = choice;
      first = false;
    }
  }

  // Recommend CMs under the winning clustering, deduplicated by label,
  // admitted greedily by (benefit / byte) until the budget is spent.
  auto scratch = table.Clone();
  (void)scratch->ClusterBy(out.clustering.clustered_col);
  auto cidx = ClusteredIndex::Build(*scratch, out.clustering.clustered_col);
  auto cbuckets = ClusteredBucketing::Build(
      *scratch, out.clustering.clustered_col,
      config.clustered_bucket_pages * scratch->TuplesPerPage());
  CmAdvisor advisor(scratch.get(), &*cidx, &*cbuckets, config.advisor);

  struct Pick {
    CmDesign design;
    double benefit_per_byte;
    std::string label;
  };
  std::vector<Pick> picks;
  CostModel model;
  CostInputs scan_in;
  scan_in.tups_per_page = double(scratch->TuplesPerPage());
  scan_in.total_tups = double(scratch->TotalTuples());
  const double scan = model.ScanCost(scan_in);
  for (const Query& q : workload) {
    auto rec = advisor.Recommend(q);
    if (!rec.ok()) continue;  // no CM helps this query
    const std::string label = rec->Label(*scratch);
    bool dup = false;
    for (const auto& p : picks) {
      if (p.label == label) dup = true;
    }
    if (dup) continue;
    const double benefit = std::max(0.0, scan - rec->est_cost_ms);
    picks.push_back({*rec, benefit / std::max(1.0, rec->est_size_bytes), label});
  }
  std::sort(picks.begin(), picks.end(), [](const Pick& a, const Pick& b) {
    return a.benefit_per_byte > b.benefit_per_byte;
  });
  for (auto& p : picks) {
    const uint64_t bytes = uint64_t(p.design.est_size_bytes);
    if (out.total_cm_bytes + bytes > config.space_budget_bytes) continue;
    out.total_cm_bytes += bytes;
    out.cms.push_back(std::move(p.design));
  }
  return out;
}

}  // namespace corrmap
