// The Correlation Map (paper §5): a compressed secondary access structure
// mapping each distinct (possibly bucketed, possibly composite) value of an
// unclustered attribute set Au to the set of co-occurring clustered values
// (or clustered bucket ids) of Ac, with per-pair co-occurrence counts so
// deletes can retract entries (Algorithm 1).
//
// A CM answers cm_lookup({v1..vN}) with the clustered ordinals whose ranges
// must be swept; the executor re-filters swept rows on the original
// predicate, so bucketing introduces false positives but never false
// negatives.
//
// Two lookup paths exist. Point predicates probe the hash map directly.
// Range predicates binary-search a sorted bucket-ordinal directory (one
// sorted (ordinal, entry) vector per CM attribute) to a contiguous run of
// u-keys, instead of scanning the whole map as the original representation
// required. Maintenance queues added/erased u-keys as a delta; the next
// sync merges a small sorted delta into the directory in place and only
// rebuilds wholesale when the dirty set is large.
#ifndef CORRMAP_CORE_CORRELATION_MAP_H_
#define CORRMAP_CORE_CORRELATION_MAP_H_

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "core/bucketing.h"
#include "storage/table.h"

namespace corrmap {

/// Packed CM key: bucket ordinals of up to kMaxCmAttributes unclustered
/// attributes.
struct CmKey {
  std::array<int64_t, kMaxCmAttributes> v{};
  uint8_t n = 0;

  /// Appends one ordinal. Appending beyond kMaxCmAttributes is a bug
  /// (asserts in debug builds) and is clamped -- never written past the
  /// array -- in release builds.
  void Append(int64_t ordinal) {
    assert(n < kMaxCmAttributes && "CmKey arity exceeded");
    if (n >= kMaxCmAttributes) return;
    v[n++] = ordinal;
  }
  bool operator==(const CmKey& o) const {
    if (n != o.n) return false;
    for (size_t i = 0; i < n; ++i) {
      if (v[i] != o.v[i]) return false;
    }
    return true;
  }
  /// Lexicographic order over (arity, ordinals); used by the batched
  /// maintenance path to sort-and-group a batch by u-key.
  bool operator<(const CmKey& o) const {
    if (n != o.n) return n < o.n;
    for (size_t i = 0; i < n; ++i) {
      if (v[i] != o.v[i]) return v[i] < o.v[i];
    }
    return false;
  }
  std::string ToString() const;
};

struct CmKeyHash {
  size_t operator()(const CmKey& k) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ k.n;
    for (size_t i = 0; i < k.n; ++i) h = Mix64(h ^ uint64_t(k.v[i]));
    return h;
  }
};

/// Per-CM-column predicate for cm_lookup.
struct CmColumnPredicate {
  enum class Kind : uint8_t { kPoints, kRange };
  Kind kind = Kind::kPoints;
  std::vector<Key> points;  ///< kPoints: equality / IN literals (physical)
  double lo = 0, hi = 0;    ///< kRange: closed numeric interval

  static CmColumnPredicate Points(std::vector<Key> pts) {
    CmColumnPredicate p;
    p.kind = Kind::kPoints;
    p.points = std::move(pts);
    return p;
  }
  static CmColumnPredicate Range(double lo, double hi) {
    CmColumnPredicate p;
    p.kind = Kind::kRange;
    p.lo = lo;
    p.hi = hi;
    return p;
  }
};

/// Order-sensitive 64-bit fingerprint of a compiled CM predicate vector
/// (kind, point keys, range bounds per column). Cache layers use it --
/// together with CM identity and epoch -- to key reusable lookup results.
uint64_t FingerprintCmPredicates(std::span<const CmColumnPredicate> preds);

/// Closed, contiguous run [lo, hi] of clustered ordinals.
struct OrdinalRange {
  int64_t lo = 0;
  int64_t hi = 0;
  bool operator==(const OrdinalRange&) const = default;
};

/// Result of one cm_lookup, shaped for reuse: the sorted distinct clustered
/// ordinals are run-length encoded into maximal runs of consecutive
/// ordinals (adjacent clustered bucket ids, adjacent raw keys). The
/// executor computes this once per (CM, Query) and shares it between
/// costing and execution (see CmLookupCache in exec/access_path.h).
struct CmLookupResult {
  std::vector<OrdinalRange> ranges;  ///< sorted, disjoint, coalesced
  uint64_t num_ordinals = 0;         ///< distinct ordinals across all ranges
  /// (u-key, ordinal) pairs inspected to answer -- the unit of NumEntries
  /// and of the paper's one-row-per-pair physical representation, so this
  /// is what an uncached lookup would read from disk.
  uint64_t entries_probed = 0;
  bool used_directory = false;       ///< answered via the sorted directory

  bool empty() const { return ranges.empty(); }
  /// Expands the runs back into the sorted distinct ordinal list.
  std::vector<int64_t> ToOrdinals() const;
};

/// Configuration of one CM.
struct CmOptions {
  std::vector<size_t> u_cols;        ///< CM attributes (<= 4)
  std::vector<Bucketer> u_bucketers; ///< parallel to u_cols
  size_t c_col = 0;                  ///< clustered attribute
  /// Optional clustered-attribute bucketing; when null the CM maps to raw
  /// clustered values (the paper's base structure, e.g. city -> {states}).
  const ClusteredBucketing* c_buckets = nullptr;
};

/// The Correlation Map.
class CorrelationMap {
 public:
  /// Creates an empty CM over `table` with the given options.
  static Result<CorrelationMap> Create(const Table* table, CmOptions options);

  /// Moves keep the directory: its entry pointers target map nodes, which
  /// unordered_map moves intact. Copies must NOT share it -- the copied
  /// pointers would still target the source's nodes -- so a copy starts
  /// with a dirty directory and rebuilds on first range lookup.
  CorrelationMap(CorrelationMap&& o) noexcept
      : table_(o.table_),
        options_(std::move(o.options_)),
        map_(std::move(o.map_)),
        num_entries_(o.num_entries_),
        epoch_(o.epoch_),
        directory_(std::move(o.directory_)),
        directory_full_rebuild_(o.directory_full_rebuild_),
        delta_added_(std::move(o.delta_added_)),
        delta_erased_(std::move(o.delta_erased_)),
        directory_full_rebuilds_(o.directory_full_rebuilds_),
        directory_incremental_merges_(o.directory_incremental_merges_),
        lookups_computed_(o.lookups_computed_.load()) {}
  CorrelationMap& operator=(CorrelationMap&& o) noexcept {
    if (this != &o) {
      table_ = o.table_;
      options_ = std::move(o.options_);
      map_ = std::move(o.map_);
      num_entries_ = o.num_entries_;
      epoch_ = o.epoch_;
      directory_ = std::move(o.directory_);
      directory_full_rebuild_ = o.directory_full_rebuild_;
      delta_added_ = std::move(o.delta_added_);
      delta_erased_ = std::move(o.delta_erased_);
      directory_full_rebuilds_ = o.directory_full_rebuilds_;
      directory_incremental_merges_ = o.directory_incremental_merges_;
      lookups_computed_.store(o.lookups_computed_.load());
    }
    return *this;
  }
  CorrelationMap(const CorrelationMap& o)
      : table_(o.table_),
        options_(o.options_),
        map_(o.map_),
        num_entries_(o.num_entries_),
        epoch_(o.epoch_) {}
  CorrelationMap& operator=(const CorrelationMap& o) {
    if (this != &o) *this = CorrelationMap(o);  // copy, then move-assign
    return *this;
  }

  /// Algorithm 1: full-scan build (also usable after Create on a non-empty
  /// table). Skips deleted rows.
  Status BuildFromTable();

  /// Maintenance for a single row currently present in the table.
  void InsertRow(RowId row);
  Status DeleteRow(RowId row);

  /// Batched maintenance (ROADMAP sort-and-merge): buckets each row once,
  /// sorts the batch by (u-key, clustered ordinal), and applies one map
  /// upsert per distinct pair instead of one hash traversal per row.
  /// Post-state is identical to calling InsertRow per row. Returns the
  /// number of distinct (u-key, ordinal) groups applied.
  size_t InsertRowsBatched(std::span<const RowId> rows);

  /// Maintenance from explicit attribute values (used by batched loaders
  /// before rows land in the table). `u_keys` parallel to u_cols.
  void InsertValues(std::span<const Key> u_keys, int64_t c_ordinal);
  Status DeleteValues(std::span<const Key> u_keys, int64_t c_ordinal);

  /// Precomputed-pair maintenance: the caller already bucketed the row to
  /// its (u-key, clustered ordinal) pair. The sharded serving wrapper
  /// buckets each row exactly once -- for shard routing -- and passes the
  /// pair down instead of having the shard's map re-derive it from the
  /// table. Post-state is identical to InsertRow/DeleteRow on the source
  /// row.
  void UpsertPair(const CmKey& u_key, int64_t c_ordinal, uint32_t count = 1);
  Status RetractPair(const CmKey& u_key, int64_t c_ordinal);
  /// Batched UpsertPair: sorts the batch and applies one map upsert per
  /// distinct pair (the InsertRowsBatched engine underneath). Takes the
  /// batch by value -- callers hand over their freshly built vector --
  /// because sorting mutates it; no copy on the serving hot path. Returns
  /// the number of distinct (u-key, ordinal) groups applied.
  size_t UpsertPairsBatched(std::vector<std::pair<CmKey, int64_t>> pairs);
  /// Batched RetractPair: sorts the batch and subtracts one aggregated
  /// count per distinct pair. NotFound if any pair is not mapped (the
  /// retraction then stops; the map is corrupt regardless, since counts
  /// must mirror live rows).
  Status RetractPairsBatched(std::vector<std::pair<CmKey, int64_t>> pairs);

  /// Clustered ordinal for a row (bucket id, or the order-preserving
  /// raw-key encoding when the clustered attribute is unbucketed).
  int64_t ClusteredOrdinalOfRow(RowId row) const;

  /// Bucketed u-key of a row / of explicit attribute values. Public so the
  /// sharded wrapper (src/serve/sharded_cm.h) can route maintenance to the
  /// shard owning the key without re-implementing the bucketing.
  CmKey UKeyOfRow(RowId row) const;
  CmKey UKeyOfValues(std::span<const Key> u_keys) const;

  /// Maintenance version counter: bumped by every maintenance entry point
  /// (row/value inserts and deletes, batched inserts, rebuilds). Cache
  /// layers key lookup results by (CM, predicate fingerprint, epoch) and
  /// treat any epoch change as invalidation.
  uint64_t Epoch() const { return epoch_; }

  /// cm_lookup (§5.2): clustered ordinals co-occurring with any u-key
  /// matching all column predicates (one per CM attribute, in u_cols
  /// order), as coalesced sorted runs. Point predicates probe the hash
  /// map; range predicates binary-search the sorted bucket-ordinal
  /// directory to a contiguous run of u-keys (rebuilt lazily after
  /// maintenance) instead of scanning the map.
  CmLookupResult Lookup(std::span<const CmColumnPredicate> preds) const;

  /// Reference implementation of Lookup that always scans every u-key of
  /// the map (the pre-directory behavior). Kept for equivalence tests and
  /// the scan-vs-probe benches; returns identical ordinals to Lookup.
  CmLookupResult LookupViaScan(std::span<const CmColumnPredicate> preds) const;

  /// True when any column carries a range predicate (those take the
  /// sorted-directory path; only all-points vectors compile to probe
  /// keys). Callers must check this before treating a false return from
  /// CompilePointProbeKeys as "provably empty".
  static bool HasRangePredicate(std::span<const CmColumnPredicate> preds);

  /// Compiles an all-points predicate vector to the exact cross product of
  /// bucketed CmKeys a point lookup probes. Returns false when any column
  /// carries a range predicate (the directory path answers those) or a
  /// constraint is provably empty -- disambiguate with HasRangePredicate.
  /// The sharded wrapper uses this to route each probe key to its owning
  /// shard instead of probing every shard.
  bool CompilePointProbeKeys(std::span<const CmColumnPredicate> preds,
                             std::vector<CmKey>* out) const;

  /// Probes exactly `keys` in the hash map and coalesces the co-occurring
  /// clustered ordinals (the all-points half of Lookup, split out so probe
  /// keys can be routed shard-by-shard). Keys must be pre-bucketed.
  CmLookupResult LookupKeys(std::span<const CmKey> keys) const;

  /// Legacy vector-of-ordinals facade over Lookup(). Sorted ascending,
  /// deduplicated.
  std::vector<int64_t> CmLookup(std::span<const CmColumnPredicate> preds) const;

  /// Decodes a clustered ordinal back to a Key when unbucketed (raw-key
  /// encoding); only valid if !has_clustered_buckets().
  Key DecodeClusteredOrdinal(int64_t ordinal) const;

  bool has_clustered_buckets() const { return options_.c_buckets != nullptr; }
  const CmOptions& options() const { return options_; }
  const Table& table() const { return *table_; }

  /// Distinct u-keys currently mapped.
  size_t NumUKeys() const { return map_.size(); }
  /// Total (u-key, clustered ordinal) pairs ("every unique pair", §5.3).
  size_t NumEntries() const { return num_entries_; }

  /// Lookups actually computed (Lookup/LookupViaScan calls). Executor
  /// cache hits reuse a result without recomputing, so this is the test
  /// hook for the one-lookup-per-(CM, Query) guarantee.
  uint64_t LookupsComputed() const {
    return lookups_computed_.load(std::memory_order_relaxed);
  }

  /// True when the sorted bucket-ordinal directory reflects the map exactly
  /// (no pending delta, no rebuild scheduled): a range Lookup will not
  /// mutate directory state. Concurrent wrappers use this to decide
  /// between a shared-lock fast path and an exclusive-lock rebuild.
  bool DirectoryClean() const {
    return !directory_full_rebuild_ && delta_added_.empty() &&
           delta_erased_.empty();
  }
  /// Brings the directory up to date now (incremental merge when the dirty
  /// set is small, wholesale rebuild otherwise) instead of lazily on the
  /// next range lookup. Writers holding exclusive access call this so
  /// readers stay on the shared-lock fast path.
  void SyncDirectory() const { EnsureDirectory(); }
  /// Observability for the two directory maintenance paths (tests assert
  /// that small dirty sets merge instead of rebuilding).
  uint64_t DirectoryFullRebuilds() const { return directory_full_rebuilds_; }
  uint64_t DirectoryIncrementalMerges() const {
    return directory_incremental_merges_;
  }

  /// Bytes of one (u-key, ordinal) pair row under the paper's physical
  /// representation: 8 bytes per u attribute + 8-byte clustered ordinal +
  /// 4-byte count.
  uint64_t EntryBytes() const { return 8 * options_.u_cols.size() + 8 + 4; }
  /// Size under that representation: one row per pair.
  uint64_t SizeBytes() const;
  /// Pages the CM occupies (for lookup-cost accounting when uncached).
  uint64_t NumPages(size_t page_size = kDefaultPageSizeBytes) const {
    return (SizeBytes() + page_size - 1) / page_size;
  }
  /// Pages covering `entries` CM entries under the same representation
  /// (what an uncached directory probe reads, vs NumPages for a full scan).
  uint64_t PagesForEntries(uint64_t entries,
                           size_t page_size = kDefaultPageSizeBytes) const;

  std::string Name() const;

  /// Snapshot copy re-pointed at `table` (a reordered clone of this CM's
  /// table). Only valid for CMs WITHOUT clustered bucketing: their
  /// ordinals encode clustered VALUES, not positions, so the mapping
  /// survives any physical reorder of the same logical rows. The copy's
  /// directory starts dirty (rebuilt lazily, as for any copy); epoch
  /// carries over. This is the recluster swap's O(pairs) alternative to an
  /// O(rows) BuildFromTable re-hash.
  CorrelationMap CloneRetargeted(const Table* table) const;

  /// Structural check: counts are positive, num_entries consistent.
  Status CheckInvariants() const;

  /// Serializes to flat (u-key, ordinal, count) records and rebuilds from
  /// them (checkpoint/recovery path used with the WAL).
  struct Record {
    CmKey u;
    int64_t c_ordinal;
    uint32_t count;
  };
  std::vector<Record> ToRecords() const;
  Status LoadRecords(std::span<const Record> records);

 private:
  using CountMap = std::map<int64_t, uint32_t>;
  using HashMap = std::unordered_map<CmKey, CountMap, CmKeyHash>;

  /// One sorted-directory slot: the bucket ordinal of one u-attribute and
  /// the map entry carrying it. Entry pointers are stable across rehashes.
  /// The u-key is duplicated by value so an incremental merge can drop
  /// slots whose map node was erased (the pointer dangles and must not be
  /// dereferenced) by comparing keys alone.
  struct DirEntry {
    int64_t ordinal;
    const HashMap::value_type* entry;
    CmKey key;
  };

  /// Per-column ordinal constraint compiled from a CmColumnPredicate.
  struct ColumnConstraint {
    bool is_range = false;
    int64_t lo = 0, hi = 0;           ///< is_range: closed ordinal interval
    std::vector<int64_t> points;      ///< !is_range: sorted distinct ordinals
  };

  CorrelationMap(const Table* table, CmOptions options)
      : table_(table), options_(std::move(options)) {}

  /// Compiles predicates to ordinal constraints; returns false when any
  /// column's constraint is provably empty (no key can match).
  bool BuildConstraints(std::span<const CmColumnPredicate> preds,
                        std::vector<ColumnConstraint>* out) const;
  /// True when `key` satisfies every constraint except index `skip`
  /// (pass constraints.size() to check all).
  static bool MatchesConstraints(const CmKey& key,
                                 std::span<const ColumnConstraint> cons,
                                 size_t skip);

  /// Brings the directory up to date if maintenance outdated it: merges
  /// the sorted delta in place when the dirty set is small, rebuilds
  /// wholesale otherwise.
  void EnsureDirectory() const;
  void RebuildDirectory() const;
  void MergeDirectoryDelta() const;

  /// Records a u-key added to / erased from the map since the last
  /// directory sync; degrades to a full rebuild when the delta outgrows
  /// the incremental-merge threshold.
  void NoteKeyDirty(std::vector<CmKey>* delta, const CmKey& key);
  void NoteKeyAdded(const CmKey& key);
  void NoteKeyErased(const CmKey& key);

  const Table* table_;
  CmOptions options_;
  HashMap map_;
  size_t num_entries_ = 0;
  uint64_t epoch_ = 0;

  /// Incremental-merge threshold: degrade to a wholesale rebuild once the
  /// delta exceeds 1/kDirectoryDeltaMaxInverseFraction of the mapped keys
  /// (but never below kDirectoryDeltaMinKeys, so tiny maps still merge).
  static constexpr size_t kDirectoryDeltaMaxInverseFraction = 8;
  static constexpr size_t kDirectoryDeltaMinKeys = 64;

  /// Sorted secondary directory: directory_[i] holds every mapped u-key
  /// ordered by its i-th attribute's bucket ordinal. Maintenance that adds
  /// or erases u-keys queues a delta (count-only changes keep it valid);
  /// the next sync merges a small delta in place and falls back to a
  /// wholesale rebuild past the threshold above.
  mutable std::vector<std::vector<DirEntry>> directory_;
  mutable bool directory_full_rebuild_ = true;
  mutable std::vector<CmKey> delta_added_;
  mutable std::vector<CmKey> delta_erased_;
  mutable uint64_t directory_full_rebuilds_ = 0;
  mutable uint64_t directory_incremental_merges_ = 0;
  mutable std::atomic<uint64_t> lookups_computed_{0};
};

}  // namespace corrmap

#endif  // CORRMAP_CORE_CORRELATION_MAP_H_
