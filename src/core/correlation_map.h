// The Correlation Map (paper §5): a compressed secondary access structure
// mapping each distinct (possibly bucketed, possibly composite) value of an
// unclustered attribute set Au to the set of co-occurring clustered values
// (or clustered bucket ids) of Ac, with per-pair co-occurrence counts so
// deletes can retract entries (Algorithm 1).
//
// A CM answers cm_lookup({v1..vN}) with the clustered ordinals whose ranges
// must be swept; the executor re-filters swept rows on the original
// predicate, so bucketing introduces false positives but never false
// negatives.
#ifndef CORRMAP_CORE_CORRELATION_MAP_H_
#define CORRMAP_CORE_CORRELATION_MAP_H_

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "core/bucketing.h"
#include "storage/table.h"

namespace corrmap {

/// Packed CM key: bucket ordinals of up to kMaxCmAttributes unclustered
/// attributes.
struct CmKey {
  std::array<int64_t, kMaxCmAttributes> v{};
  uint8_t n = 0;

  void Append(int64_t ordinal) { v[n++] = ordinal; }
  bool operator==(const CmKey& o) const {
    if (n != o.n) return false;
    for (size_t i = 0; i < n; ++i) {
      if (v[i] != o.v[i]) return false;
    }
    return true;
  }
  std::string ToString() const;
};

struct CmKeyHash {
  size_t operator()(const CmKey& k) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ k.n;
    for (size_t i = 0; i < k.n; ++i) h = Mix64(h ^ uint64_t(k.v[i]));
    return h;
  }
};

/// Per-CM-column predicate for cm_lookup.
struct CmColumnPredicate {
  enum class Kind : uint8_t { kPoints, kRange };
  Kind kind = Kind::kPoints;
  std::vector<Key> points;  ///< kPoints: equality / IN literals (physical)
  double lo = 0, hi = 0;    ///< kRange: closed numeric interval

  static CmColumnPredicate Points(std::vector<Key> pts) {
    CmColumnPredicate p;
    p.kind = Kind::kPoints;
    p.points = std::move(pts);
    return p;
  }
  static CmColumnPredicate Range(double lo, double hi) {
    CmColumnPredicate p;
    p.kind = Kind::kRange;
    p.lo = lo;
    p.hi = hi;
    return p;
  }
};

/// Configuration of one CM.
struct CmOptions {
  std::vector<size_t> u_cols;        ///< CM attributes (<= 4)
  std::vector<Bucketer> u_bucketers; ///< parallel to u_cols
  size_t c_col = 0;                  ///< clustered attribute
  /// Optional clustered-attribute bucketing; when null the CM maps to raw
  /// clustered values (the paper's base structure, e.g. city -> {states}).
  const ClusteredBucketing* c_buckets = nullptr;
};

/// The Correlation Map.
class CorrelationMap {
 public:
  /// Creates an empty CM over `table` with the given options.
  static Result<CorrelationMap> Create(const Table* table, CmOptions options);

  /// Algorithm 1: full-scan build (also usable after Create on a non-empty
  /// table). Skips deleted rows.
  Status BuildFromTable();

  /// Maintenance for a single row currently present in the table.
  void InsertRow(RowId row);
  Status DeleteRow(RowId row);

  /// Maintenance from explicit attribute values (used by batched loaders
  /// before rows land in the table). `u_keys` parallel to u_cols.
  void InsertValues(std::span<const Key> u_keys, int64_t c_ordinal);
  Status DeleteValues(std::span<const Key> u_keys, int64_t c_ordinal);

  /// Clustered ordinal for a row (bucket id, or raw-key encoding when the
  /// clustered attribute is unbucketed).
  int64_t ClusteredOrdinalOfRow(RowId row) const;

  /// cm_lookup (§5.2): clustered ordinals co-occurring with any u-key
  /// matching all column predicates (one per CM attribute, in u_cols
  /// order). Sorted ascending, deduplicated. Point predicates probe the
  /// hash map; any range predicate falls back to a full in-memory CM scan
  /// (the paper's CMs are small enough to scan from RAM, §7.2 Exp. 5).
  std::vector<int64_t> CmLookup(std::span<const CmColumnPredicate> preds) const;

  /// Decodes a clustered ordinal back to a Key when unbucketed (raw-key
  /// encoding); only valid if !has_clustered_buckets().
  Key DecodeClusteredOrdinal(int64_t ordinal) const;

  bool has_clustered_buckets() const { return options_.c_buckets != nullptr; }
  const CmOptions& options() const { return options_; }
  const Table& table() const { return *table_; }

  /// Distinct u-keys currently mapped.
  size_t NumUKeys() const { return map_.size(); }
  /// Total (u-key, clustered ordinal) pairs ("every unique pair", §5.3).
  size_t NumEntries() const { return num_entries_; }

  /// Size under the paper's physical representation: one row per pair with
  /// 8 bytes per u attribute + 8-byte clustered ordinal + 4-byte count.
  uint64_t SizeBytes() const;
  /// Pages the CM occupies (for lookup-cost accounting when uncached).
  uint64_t NumPages(size_t page_size = kDefaultPageSizeBytes) const {
    return (SizeBytes() + page_size - 1) / page_size;
  }

  std::string Name() const;

  /// Structural check: counts are positive, num_entries consistent.
  Status CheckInvariants() const;

  /// Serializes to flat (u-key, ordinal, count) records and rebuilds from
  /// them (checkpoint/recovery path used with the WAL).
  struct Record {
    CmKey u;
    int64_t c_ordinal;
    uint32_t count;
  };
  std::vector<Record> ToRecords() const;
  Status LoadRecords(std::span<const Record> records);

 private:
  CorrelationMap(const Table* table, CmOptions options)
      : table_(table), options_(std::move(options)) {}

  CmKey UKeyOfRow(RowId row) const;
  CmKey UKeyOfValues(std::span<const Key> u_keys) const;
  bool UKeyMatches(const CmKey& key,
                   std::span<const CmColumnPredicate> preds) const;

  const Table* table_;
  CmOptions options_;
  std::unordered_map<CmKey, std::map<int64_t, uint32_t>, CmKeyHash> map_;
  size_t num_entries_ = 0;
};

}  // namespace corrmap

#endif  // CORRMAP_CORE_CORRELATION_MAP_H_
