#include "core/bucketing.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <map>
#include <set>

namespace corrmap {

Bucketer Bucketer::Identity() {
  Bucketer b;
  b.kind_ = Kind::kIdentity;
  return b;
}

Bucketer Bucketer::NumericWidth(double width, double origin) {
  assert(width > 0);
  Bucketer b;
  b.kind_ = Kind::kNumericWidth;
  b.width_ = width;
  b.origin_ = origin;
  return b;
}

Bucketer Bucketer::ValueOrdinalFromColumn(const Table& table, size_t col,
                                          int level) {
  std::vector<double> vals;
  vals.reserve(table.NumRows());
  for (RowId r = 0; r < table.NumRows(); ++r) {
    if (table.IsDeleted(r)) continue;
    vals.push_back(table.GetKey(r, col).Numeric());
  }
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  return ValueOrdinalFromValues(std::move(vals), level);
}

Bucketer Bucketer::ValueOrdinalFromValues(std::vector<double> sorted_distinct,
                                          int level) {
  assert(level >= 0);
  Bucketer b;
  b.kind_ = Kind::kValueOrdinal;
  b.level_ = level;
  const uint64_t per_bucket = uint64_t{1} << level;
  auto bounds = std::make_shared<std::vector<double>>();
  for (size_t i = 0; i < sorted_distinct.size(); i += per_bucket) {
    bounds->push_back(sorted_distinct[i]);
  }
  if (bounds->empty()) bounds->push_back(0.0);
  b.boundaries_ = std::move(bounds);
  return b;
}

Bucketer Bucketer::FromBoundaries(std::vector<double> boundaries) {
  assert(std::is_sorted(boundaries.begin(), boundaries.end()));
  Bucketer b;
  b.kind_ = Kind::kValueOrdinal;
  b.level_ = -1;  // variable-width: no single 2^level label
  if (boundaries.empty()) boundaries.push_back(0.0);
  b.boundaries_ =
      std::make_shared<const std::vector<double>>(std::move(boundaries));
  return b;
}

int64_t Bucketer::BucketOf(const Key& k) const {
  switch (kind_) {
    case Kind::kIdentity:
      return k.is_double() ? OrderedDoubleOrdinal(k.AsDouble()) : k.AsInt64();
    case Kind::kNumericWidth:
      return static_cast<int64_t>(std::floor((k.Numeric() - origin_) / width_));
    case Kind::kValueOrdinal: {
      const auto& b = *boundaries_;
      // Bucket whose lower bound is the last boundary <= value.
      auto it = std::upper_bound(b.begin(), b.end(), k.Numeric());
      if (it == b.begin()) return 0;  // below the first boundary
      return static_cast<int64_t>(it - b.begin()) - 1;
    }
  }
  return 0;
}

BucketRange Bucketer::RangeOf(int64_t bucket) const {
  switch (kind_) {
    case Kind::kIdentity: {
      // Works for integer domains; identity-double ordinals are bit patterns
      // and are only compared for equality (rewriting decodes them).
      const double v = double(bucket);
      return {v, v};
    }
    case Kind::kNumericWidth:
      return {origin_ + double(bucket) * width_,
              origin_ + double(bucket + 1) * width_};
    case Kind::kValueOrdinal: {
      const auto& b = *boundaries_;
      const size_t i = size_t(std::clamp<int64_t>(bucket, 0,
                                                  int64_t(b.size()) - 1));
      const double lo = b[i];
      const double hi = (i + 1 < b.size())
                            ? std::nextafter(b[i + 1], lo)
                            : std::numeric_limits<double>::infinity();
      return {lo, hi};
    }
  }
  return {};
}

std::pair<int64_t, int64_t> Bucketer::BucketsCovering(double lo,
                                                      double hi) const {
  switch (kind_) {
    case Kind::kIdentity:
      return {static_cast<int64_t>(std::ceil(lo)),
              static_cast<int64_t>(std::floor(hi))};
    case Kind::kNumericWidth:
      return {static_cast<int64_t>(std::floor((lo - origin_) / width_)),
              static_cast<int64_t>(std::floor((hi - origin_) / width_))};
    case Kind::kValueOrdinal:
      return {BucketOf(Key(lo)), BucketOf(Key(hi))};
  }
  return {0, -1};
}

std::pair<int64_t, int64_t> Bucketer::OrdinalRangeCovering(
    double lo, double hi, bool double_domain) const {
  if (kind_ == Kind::kIdentity && double_domain) {
    return {OrderedDoubleOrdinal(lo), OrderedDoubleOrdinal(hi)};
  }
  if (lo > hi) return {0, -1};  // empty predicate interval
  return BucketsCovering(lo, hi);
}

std::string Bucketer::ToString() const {
  switch (kind_) {
    case Kind::kIdentity: return "none";
    case Kind::kNumericWidth: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "width=%.6g", width_);
      return buf;
    }
    case Kind::kValueOrdinal:
      if (level_ < 0) {
        std::string out = "variable(";
        out += std::to_string(boundaries_->size());
        out += ')';
        return out;
      }
      {
        std::string out = "2^";
        out += std::to_string(level_);
        return out;
      }
  }
  return "?";
}

double Bucketer::ExpectedBuckets(double d) const {
  switch (kind_) {
    case Kind::kIdentity: return d;
    case Kind::kNumericWidth: return d / width_;  // domain-dependent guess
    case Kind::kValueOrdinal: return d / double(uint64_t{1} << level_);
  }
  return d;
}

Result<ClusteredBucketing> ClusteredBucketing::Build(
    const Table& table, size_t col, uint64_t target_tuples_per_bucket) {
  if (table.clustered_column() != static_cast<int>(col)) {
    return Status::InvalidArgument("table not clustered on given column");
  }
  if (target_tuples_per_bucket == 0) {
    return Status::InvalidArgument("bucket size must be positive");
  }
  ClusteredBucketing cb;
  cb.target_ = target_tuples_per_bucket;
  const size_t n = table.NumRows();
  cb.end_ = n;
  RowId r = 0;
  while (r < n) {
    cb.starts_.push_back(r);
    RowId fill_end = std::min<RowId>(r + target_tuples_per_bucket, n);
    if (fill_end >= n) break;
    // Extend the bucket so the boundary value does not straddle buckets:
    // keep assigning rows while the clustered value equals the fill-end
    // boundary value (§6.1.1).
    const Key boundary = table.GetKey(fill_end - 1, col);
    while (fill_end < n && table.GetKey(fill_end, col) == boundary) {
      ++fill_end;
    }
    r = fill_end;
  }
  return cb;
}

int64_t ClusteredBucketing::BucketOfRow(RowId row) const {
  assert(row < end_);
  auto it = std::upper_bound(starts_.begin(), starts_.end(), row);
  return static_cast<int64_t>(it - starts_.begin()) - 1;
}

RowRange ClusteredBucketing::RangeOfBucket(int64_t b) const {
  if (b < 0 || size_t(b) >= starts_.size()) return RowRange{};
  const RowId begin = starts_[size_t(b)];
  const RowId end = size_t(b) + 1 < starts_.size() ? starts_[size_t(b) + 1]
                                                   : end_;
  return RowRange{begin, end};
}

RowRange ClusteredBucketing::RangeOfBucketRun(int64_t first,
                                              int64_t last) const {
  if (first < 0 || size_t(first) >= starts_.size() || last < first) {
    return RowRange{};
  }
  last = std::min<int64_t>(last, int64_t(starts_.size()) - 1);
  const RowId begin = starts_[size_t(first)];
  const RowId end = size_t(last) + 1 < starts_.size() ? starts_[size_t(last) + 1]
                                                      : end_;
  return RowRange{begin, end};
}

std::pair<Key, Key> ClusteredBucketing::KeyRangeOfBucket(const Table& table,
                                                         size_t col,
                                                         int64_t b) const {
  const RowRange range = RangeOfBucket(b);
  if (range.empty()) return {Key(), Key()};
  return {table.GetKey(range.begin, col), table.GetKey(range.end - 1, col)};
}

std::string BucketingCandidates::WidthsLabel() const {
  if (include_identity && max_level < min_level) return "none";
  std::string hi = "2^";
  hi += std::to_string(max_level);
  if (include_identity) return "none ~ " + hi;
  std::string out = "2^";
  out += std::to_string(min_level);
  out += " ~ ";
  out += hi;
  return out;
}

size_t BucketingCandidates::NumOptions() const {
  size_t n = include_identity ? 1 : 0;
  if (max_level >= min_level) n += size_t(max_level - min_level + 1);
  return n;
}

Bucketer BuildVariableWidthBucketer(const Table& table, size_t u_col,
                                    const ClusteredBucketing& c_buckets,
                                    size_t max_c_per_bucket) {
  assert(max_c_per_bucket >= 1);
  // Distinct u values with the set of clustered buckets each maps to.
  std::map<double, std::set<int64_t>> value_cbuckets;
  for (RowId r = 0; r < table.NumRows(); ++r) {
    if (table.IsDeleted(r)) continue;
    value_cbuckets[table.GetKey(r, u_col).Numeric()].insert(
        c_buckets.BucketOfRow(r));
  }
  std::vector<double> boundaries;
  std::set<int64_t> current;
  for (const auto& [v, cbs] : value_cbuckets) {
    std::set<int64_t> merged = current;
    merged.insert(cbs.begin(), cbs.end());
    if (boundaries.empty() || merged.size() > max_c_per_bucket) {
      boundaries.push_back(v);  // start a fresh bucket at this value
      current = cbs;
    } else {
      current = std::move(merged);
    }
  }
  return Bucketer::FromBoundaries(std::move(boundaries));
}

BucketingCandidates EnumerateBucketings(std::string column_name, double d,
                                        uint64_t min_buckets,
                                        uint64_t max_buckets) {
  BucketingCandidates c;
  c.column_name = std::move(column_name);
  c.cardinality = d;
  c.include_identity = d <= double(max_buckets);
  // Width 2^w yields d / 2^w buckets. Keep min_buckets <= d/2^w <=
  // max_buckets, i.e. log2(d/max_buckets) <= w <= log2(d/min_buckets).
  const double lo = std::log2(std::max(1.0, d) / double(max_buckets));
  const double hi = std::log2(std::max(1.0, d) / double(min_buckets));
  c.min_level = std::max(1, static_cast<int>(std::ceil(lo)));
  c.max_level = static_cast<int>(std::ceil(hi));
  if (c.max_level < c.min_level) c.max_level = c.min_level - 1;  // none
  return c;
}

}  // namespace corrmap
