// Batched insert/select driver reproducing the paper's maintenance
// experiments (§7.2 Experiments 3): tuples are appended to the heap in
// batches; every secondary B+Tree is updated through the buffer pool
// (dirtying random leaf pages), every CM is updated in RAM and made
// recoverable through the WAL with a 2PC-style flush per batch.
//
// Simulated time = disk model cost of (pool I/O + WAL I/O + heap appends)
// plus a per-tuple CPU charge for the base INSERT path (parse/plan/execute
// overhead a row takes in PostgreSQL regardless of indexing).
#ifndef CORRMAP_CORE_MAINTENANCE_H_
#define CORRMAP_CORE_MAINTENANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/correlation_map.h"
#include "exec/access_path.h"
#include "exec/predicate.h"
#include "index/clustered_index.h"
#include "index/secondary_index.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace corrmap {

/// Maintenance cost configuration.
struct MaintenanceConfig {
  DiskModel disk;
  /// CPU milliseconds charged per inserted tuple for the base INSERT path.
  double cpu_per_insert_ms = 0.8;
  /// CPU milliseconds per index/CM entry update (in-memory work).
  double cpu_per_index_update_ms = 0.01;
  /// Sort each batch by index key before applying (the standard batched-
  /// update optimization the paper's 10k-tuple batches imply).
  bool sort_batches = true;
};

/// Accumulated costs of a maintenance run.
struct MaintenanceReport {
  uint64_t tuples_inserted = 0;
  double insert_ms = 0;        ///< simulated time in INSERT work
  double select_ms = 0;        ///< simulated time in SELECT work (mixed runs)
  DiskStats io;
  uint64_t wal_flushes = 0;

  double TotalMs() const { return insert_ms + select_ms; }
  double InsertTuplesPerSec() const {
    return insert_ms > 0 ? 1000.0 * double(tuples_inserted) / insert_ms : 0;
  }
};

/// Drives batched inserts (and optionally interleaved selects) against one
/// table with attached secondary B+Trees and CMs.
class MaintenanceDriver {
 public:
  MaintenanceDriver(Table* table, BufferPool* pool, WriteAheadLog* wal,
                    MaintenanceConfig config = {});

  /// Registers structures to maintain. B+Trees must have been created with
  /// BTreeOptions.pool == the driver's pool so their page traffic lands in
  /// the shared cache.
  void AttachBTree(SecondaryIndex* index) { btrees_.push_back(index); }
  void AttachCm(CorrelationMap* cm) { cms_.push_back(cm); }

  /// Inserts one batch of rows (each row: schema-arity physical keys).
  /// Appends to the heap, updates all structures, commits via 2PC.
  void InsertBatch(const std::vector<std::vector<Key>>& rows);

  /// Runs one SELECT through a secondary B+Tree, charging heap and index
  /// page reads through the shared buffer pool (the mixed-workload path
  /// where evicted pages must be re-read).
  ExecResult SelectViaBTree(const SecondaryIndex& index, const Query& query);

  /// Same through a CM: the map itself is RAM-resident; heap page reads go
  /// through the pool.
  ExecResult SelectViaCm(const CorrelationMap& cm, const ClusteredIndex& cidx,
                         const Query& query);

  /// Offline analogue of the serving layer's online recluster
  /// (src/serve/recluster.h): re-sorts the heap by `cidx`'s column --
  /// merging any appended tail back into clustered order -- rebuilds
  /// `*cidx` in place, and charges one sequential read plus one sequential
  /// write of the heap to the report. Unbucketed CMs need no rebase (their
  /// clustered ordinals encode values, not positions), but attached
  /// secondary B+Trees and c-bucketed CMs hold row-position state the sort
  /// invalidates, so the call is refused while any are attached.
  Status ReclusterHeap(ClusteredIndex* cidx);

  const MaintenanceReport& report() const { return report_; }
  uint32_t heap_file_id() const { return heap_file_; }

 private:
  /// Drains pool+WAL I/O into the report and returns its simulated ms.
  double DrainIoMs();

  Table* table_;
  BufferPool* pool_;
  WriteAheadLog* wal_;
  MaintenanceConfig config_;
  std::vector<SecondaryIndex*> btrees_;
  std::vector<CorrelationMap*> cms_;
  MaintenanceReport report_;
  uint32_t heap_file_;
  uint64_t next_txn_ = 1;
};

}  // namespace corrmap

#endif  // CORRMAP_CORE_MAINTENANCE_H_
