// Bucketing schemes (paper §5.4, §6.1). Bucketing shrinks a CM by merging
// ranges of the unclustered attribute into one key and ranges of the
// clustered attribute into one bucket id, trading false positives
// (extra sequential I/O) for size.
//
// Unclustered-attribute bucketers:
//  * Identity       -- few-valued attributes ("none" in Table 4).
//  * NumericWidth   -- equi-width truncation of a numeric domain (§5.4's
//                      temperature/humidity example; ra/dec in Table 6).
//  * ValueOrdinal   -- 2^level distinct values per bucket (Experiments 1-2:
//                      "bucket level" = log2 of values per bucket), defined
//                      by explicit lower-bound boundaries.
//
// Clustered-attribute bucketing (§6.1.1) is positional: assign ~b tuples to
// a bucket, extending it so one clustered value never spans two buckets.
#ifndef CORRMAP_CORE_BUCKETING_H_
#define CORRMAP_CORE_BUCKETING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "index/clustered_index.h"
#include "storage/table.h"

namespace corrmap {

/// Closed value interval covered by one bucket, for predicate-overlap tests
/// and rewriting. For identity buckets lo == hi.
struct BucketRange {
  double lo = 0;
  double hi = 0;
};

/// Maps physical keys of one attribute to bucket ordinals, and ordinals back
/// to covered value ranges. Monotone: k1 <= k2 implies bucket(k1) <=
/// bucket(k2) (within one column's homogeneous key type), which guarantees
/// CM lookups have no false negatives.
class Bucketer {
 public:
  enum class Kind : uint8_t { kIdentity, kNumericWidth, kValueOrdinal };

  /// One bucket per distinct value ("none" bucketing).
  static Bucketer Identity();

  /// Equi-width truncation: bucket = floor((v - origin) / width).
  static Bucketer NumericWidth(double width, double origin = 0.0);

  /// 2^level distinct values per bucket over the full column's value set.
  static Bucketer ValueOrdinalFromColumn(const Table& table, size_t col,
                                         int level);

  /// Same, with boundaries taken from an arbitrary (e.g. sampled) sorted
  /// distinct-value list.
  static Bucketer ValueOrdinalFromValues(std::vector<double> sorted_distinct,
                                         int level);

  /// Bucketer over explicit ascending lower-bound boundaries (bucket i
  /// covers [boundaries[i], boundaries[i+1])). Used by variable-width
  /// bucketing (§8 future work).
  static Bucketer FromBoundaries(std::vector<double> boundaries);

  Kind kind() const { return kind_; }
  bool is_identity() const { return kind_ == Kind::kIdentity; }

  /// Bucket ordinal of a physical key. Identity on doubles uses the
  /// order-preserving encoding (OrderedDoubleOrdinal), so ordinals of one
  /// column always sort like the values they encode.
  int64_t BucketOf(const Key& k) const;

  /// Value interval covered by bucket `b` (closed; best-effort for
  /// identity-double, exact otherwise).
  BucketRange RangeOf(int64_t b) const;

  /// Ordinals of all buckets intersecting the closed interval [lo, hi].
  /// Result is a contiguous inclusive ordinal range.
  std::pair<int64_t, int64_t> BucketsCovering(double lo, double hi) const;

  /// BucketsCovering, made exact for identity bucketing: on an integer
  /// domain the covered ordinals are [ceil(lo), floor(hi)]; on a double
  /// domain they are the order-preserving encodings of lo and hi. This is
  /// the ordinal interval the sorted bucket-ordinal directory probes for a
  /// range predicate.
  std::pair<int64_t, int64_t> OrdinalRangeCovering(double lo, double hi,
                                                   bool double_domain) const;

  /// Human-readable label: "none", "width=0.25", "2^13".
  std::string ToString() const;

  /// Number of buckets this scheme would produce for cardinality `d`.
  double ExpectedBuckets(double d) const;

 private:
  Bucketer() = default;

  Kind kind_ = Kind::kIdentity;
  double width_ = 1.0;
  double origin_ = 0.0;
  int level_ = 0;
  // ValueOrdinal: boundaries_[i] is the lower bound of bucket i (ascending).
  std::shared_ptr<const std::vector<double>> boundaries_;
};

/// Positional bucketing of the clustered attribute (§6.1.1). Build performs
/// the paper's single sequential pass: fill bucket i with `target_tuples`
/// rows, then extend it until the clustered value changes.
class ClusteredBucketing {
 public:
  /// `table` must be clustered on `col`.
  static Result<ClusteredBucketing> Build(const Table& table, size_t col,
                                          uint64_t target_tuples_per_bucket);

  size_t NumBuckets() const { return starts_.size(); }
  uint64_t target_tuples_per_bucket() const { return target_; }
  /// Rows covered at build time ([0, covered_rows)); rows appended later
  /// (a serving tail) have no bucket id.
  RowId covered_rows() const { return end_; }

  /// Bucket id containing row `row`.
  int64_t BucketOfRow(RowId row) const;

  /// Row range [begin, end) of bucket `b`.
  RowRange RangeOfBucket(int64_t b) const;

  /// Row range [begin, end) covered by the contiguous bucket run
  /// [first, last] (both inclusive). Bucket ids are positional, so a run of
  /// consecutive ids always covers one contiguous row span; CM lookups
  /// return exactly such runs.
  RowRange RangeOfBucketRun(int64_t first, int64_t last) const;

  /// First and last clustered key of bucket `b` (for SQL rewriting).
  std::pair<Key, Key> KeyRangeOfBucket(const Table& table, size_t col,
                                       int64_t b) const;

 private:
  std::vector<RowId> starts_;  // starts_[i] = first row of bucket i
  RowId end_ = 0;
  uint64_t target_ = 0;
};

/// Candidate bucket widths for one attribute, per the Advisor's rule
/// (§6.1.2): every power-of-two values-per-bucket width yielding between
/// `min_buckets` (default 2^2) and `max_buckets` (default 2^16) buckets,
/// plus "none" when the cardinality itself is within range.
struct BucketingCandidates {
  std::string column_name;
  double cardinality = 0;
  bool include_identity = false;
  int min_level = 1;  ///< smallest 2^level width considered
  int max_level = 0;  ///< largest; max_level < min_level means none
  /// Human-readable Table-4 style label, e.g. "none ~ 2^6" or "2^2 ~ 2^16".
  std::string WidthsLabel() const;
  /// Total number of candidate options including "not bucketed" choices.
  size_t NumOptions() const;
};

/// Computes the candidate widths for cardinality `d`.
BucketingCandidates EnumerateBucketings(std::string column_name, double d,
                                        uint64_t min_buckets = 4,
                                        uint64_t max_buckets = 65536);

/// Variable-width bucketing (the paper's §8 future-work extension): walk
/// the unclustered attribute's distinct values in sorted order and grow the
/// current bucket greedily while the union of clustered buckets it maps to
/// stays within `max_c_per_bucket`. Skewed regions whose values share
/// clustered buckets collapse into wide buckets (fewer CM entries) while
/// fast-moving regions keep narrow buckets (no extra false positives).
/// `table` must be clustered on `c_buckets`'s column.
Bucketer BuildVariableWidthBucketer(const Table& table, size_t u_col,
                                    const ClusteredBucketing& c_buckets,
                                    size_t max_c_per_bucket);

}  // namespace corrmap

#endif  // CORRMAP_CORE_BUCKETING_H_
