#include "core/maintenance.h"

#include <algorithm>
#include <cassert>

namespace corrmap {

MaintenanceDriver::MaintenanceDriver(Table* table, BufferPool* pool,
                                     WriteAheadLog* wal,
                                     MaintenanceConfig config)
    : table_(table), pool_(pool), wal_(wal), config_(config) {
  heap_file_ = pool_->RegisterFile();
}

double MaintenanceDriver::DrainIoMs() {
  DiskStats io = pool_->DrainIo();
  io += wal_->DrainIo();
  report_.io += io;
  return config_.disk.CostMs(io);
}

void MaintenanceDriver::InsertBatch(const std::vector<std::vector<Key>>& rows) {
  const uint64_t txn = next_txn_++;
  double cpu_ms = 0;

  // 1. Heap appends: new tuples land on the tail pages (sequential dirty).
  std::vector<RowId> new_rows;
  new_rows.reserve(rows.size());
  for (const auto& row : rows) {
    const RowId rid = table_->NumRows();
    table_->AppendRowKeys(std::span<const Key>(row.data(), row.size()));
    new_rows.push_back(rid);
    pool_->Access(PageId{heap_file_, table_->layout().PageOfRow(rid)},
                  /*mark_dirty=*/true);
    cpu_ms += config_.cpu_per_insert_ms;
    // Base-table WAL record (full tuple image).
    wal_->Append({WalRecordType::kCmInsert, txn,
                  std::string(table_->layout().tuple_bytes, 'x')});
  }

  // 2. Secondary B+Tree maintenance: random leaf pages dirtied through the
  // shared pool. The batched path mirrors the CM sort-and-merge below:
  // sort the batch by key, group runs of equal keys, and descend once per
  // distinct key (plus once per row spilling past a full leaf), so the
  // CPU charge scales with descents actually performed, not rows.
  for (SecondaryIndex* idx : btrees_) {
    if (config_.sort_batches) {
      size_t descents = 0;
      Status s = idx->InsertRowsBatched(new_rows, &descents);
      assert(s.ok());
      (void)s;
      cpu_ms += config_.cpu_per_index_update_ms * double(descents);
    } else {
      for (RowId r : new_rows) {
        Status s = idx->InsertRow(r);
        assert(s.ok());
        (void)s;
        cpu_ms += config_.cpu_per_index_update_ms;
      }
    }
  }

  // 3. CM maintenance: in-RAM hash updates + logical WAL records. The
  // batched path sorts the batch by (u-key, clustered ordinal) and merges
  // one upsert per distinct pair, so a 10k-tuple batch pays hash traffic
  // proportional to its distinct pairs, not its rows; post-state is
  // identical to the row-at-a-time path. WAL records stay per-row (each
  // row must be redoable on its own).
  for (CorrelationMap* cm : cms_) {
    size_t map_updates = new_rows.size();
    if (config_.sort_batches) {
      map_updates = cm->InsertRowsBatched(new_rows);
    } else {
      for (RowId r : new_rows) cm->InsertRow(r);
    }
    for (RowId r : new_rows) {
      (void)r;
      // Logical redo record: (cm id, u ordinals, c ordinal).
      wal_->Append({WalRecordType::kCmInsert, txn,
                    std::string(8 * cm->options().u_cols.size() + 12, 'c')});
    }
    cpu_ms += config_.cpu_per_index_update_ms * double(map_updates);
  }

  // 4. Two-phase commit: prepare + commit each force a log flush (§7.1).
  wal_->Prepare(txn);
  wal_->Commit(txn);

  report_.tuples_inserted += rows.size();
  report_.insert_ms += cpu_ms + DrainIoMs();
}

Status MaintenanceDriver::ReclusterHeap(ClusteredIndex* cidx) {
  if (!btrees_.empty()) {
    return Status::InvalidArgument(
        "secondary B+Trees hold RowIds the re-sort invalidates; detach and "
        "rebuild them instead");
  }
  for (const CorrelationMap* cm : cms_) {
    if (cm->has_clustered_buckets()) {
      return Status::InvalidArgument(
          "c-bucketed CM ordinals are positional; rebuild the CM instead");
    }
  }
  const size_t col = cidx->column();
  const uint64_t heap_pages = table_->NumPages();
  Status s = table_->ClusterBy(col);
  if (!s.ok()) return s;
  auto rebuilt = ClusteredIndex::Build(*table_, col);
  if (!rebuilt.ok()) return rebuilt.status();
  *cidx = std::move(*rebuilt);
  // The rewrite reads every heap page and writes it back in sorted order.
  DiskStats io;
  io.seq_pages += 2 * heap_pages;
  report_.io += io;
  report_.insert_ms += config_.disk.CostMs(io);
  return Status::OK();
}

ExecResult MaintenanceDriver::SelectViaBTree(const SecondaryIndex& index,
                                             const Query& query) {
  // The index probe touches its own pages via the tree's pool hooks; heap
  // pages of matching rids are then fetched through the pool (bitmap-style,
  // page-deduplicated).
  ExecResult out;
  out.path = "sorted_index_scan(pooled)";
  const size_t icol = index.columns().front();
  const Predicate* pred = nullptr;
  for (const auto& p : query.predicates()) {
    if (p.column() == icol) pred = &p;
  }
  assert(pred != nullptr);

  std::vector<RowId> rids;
  if (pred->op() == Predicate::Op::kRange) {
    rids = index.LookupRange(CompositeKey(Key(pred->lo())),
                             CompositeKey(Key(pred->hi())));
  } else {
    for (const Key& k : pred->keys()) {
      auto r = index.LookupEqual(CompositeKey(k));
      rids.insert(rids.end(), r.begin(), r.end());
    }
  }
  std::sort(rids.begin(), rids.end());
  // Heap pages: misses are swept in page order (readahead merges small
  // gaps), so the read cost is run-based; the pool caches what was read.
  std::vector<PageNo> missed;
  PageNo last = PageNo(-1);
  for (RowId r : rids) {
    const PageNo p = table_->layout().PageOfRow(r);
    if (p != last) {
      if (!pool_->IsCached(PageId{heap_file_, p})) missed.push_back(p);
      pool_->Admit(PageId{heap_file_, p}, /*mark_dirty=*/false);
      last = p;
    }
    ++out.rows_examined;
    if (!table_->IsDeleted(r) && query.Matches(*table_, r)) {
      out.rows.push_back(r);
    }
  }
  const uint64_t gap = uint64_t(config_.disk.seek_ms() / config_.disk.seq_page_ms());
  out.io = CostOfRuns(ExtractRuns(std::move(missed), gap));
  out.io += pool_->DrainIo();  // index-page misses + eviction write-backs
  report_.io += out.io;
  out.ms = config_.disk.CostMs(out.io);
  report_.select_ms += out.ms;
  return out;
}

ExecResult MaintenanceDriver::SelectViaCm(const CorrelationMap& cm,
                                          const ClusteredIndex& cidx,
                                          const Query& query) {
  ExecResult out;
  out.path = "cm_scan(pooled)";
  auto preds = CmPredicatesFor(cm, query);
  assert(preds.ok());
  const CmLookupResult res = cm.Lookup(*preds);

  std::vector<RowRange> ranges;
  if (cm.has_clustered_buckets()) {
    for (const OrdinalRange& r : res.ranges) {
      RowRange range = cm.options().c_buckets->RangeOfBucketRun(r.lo, r.hi);
      if (!range.empty()) ranges.push_back(range);
    }
  } else {
    for (const OrdinalRange& r : res.ranges) {
      RowRange range = cidx.LookupRange(cm.DecodeClusteredOrdinal(r.lo),
                                        cm.DecodeClusteredOrdinal(r.hi));
      if (!range.empty()) ranges.push_back(range);
    }
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const RowRange& a, const RowRange& b) { return a.begin < b.begin; });
  std::vector<PageNo> missed;
  for (const auto& range : ranges) {
    const PageNo first = table_->layout().PageOfRow(range.begin);
    const PageNo last = table_->layout().PageOfRow(range.end - 1);
    for (PageNo p = first; p <= last; ++p) {
      if (!pool_->IsCached(PageId{heap_file_, p})) missed.push_back(p);
      pool_->Admit(PageId{heap_file_, p}, /*mark_dirty=*/false);
    }
    for (RowId r = range.begin; r < range.end; ++r) {
      ++out.rows_examined;
      if (!table_->IsDeleted(r) && query.Matches(*table_, r)) {
        out.rows.push_back(r);
      }
    }
  }
  const uint64_t gap = uint64_t(config_.disk.seek_ms() / config_.disk.seq_page_ms());
  out.io = CostOfRuns(ExtractRuns(std::move(missed), gap));
  out.io += pool_->DrainIo();  // eviction write-backs
  report_.io += out.io;
  out.ms = config_.disk.CostMs(out.io);
  report_.select_ms += out.ms;
  return out;
}

}  // namespace corrmap
