#include "core/advisor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "stats/adaptive_estimator.h"
#include "stats/correlation_stats.h"
#include "stats/distinct_sampling.h"

namespace corrmap {

std::string CmDesign::Label(const Table& table) const {
  std::string out;
  for (size_t i = 0; i < u_cols.size(); ++i) {
    if (i) out += ", ";
    out += table.schema().column(u_cols[i]).name;
    if (!u_bucketers[i].is_identity()) {
      out += '(';
      out += u_bucketers[i].ToString();
      out += ')';
    }
  }
  return out;
}

CmAdvisor::CmAdvisor(const Table* table, const ClusteredIndex* cidx,
                     const ClusteredBucketing* c_buckets, AdvisorConfig config)
    : table_(table),
      cidx_(cidx),
      c_buckets_(c_buckets),
      config_(config),
      sample_(RowSample::Collect(*table, config.sample_size,
                                 config.sample_seed)) {}

std::vector<size_t> CmAdvisor::PrunedColumns(const Query& query) const {
  // Keep predicates selective enough to help (§6.2.2), most selective
  // first, clustered column excluded (it already has an access path).
  struct ColSel {
    size_t col;
    double sel;
  };
  std::vector<ColSel> cols;
  for (const auto& p : query.predicates()) {
    if (p.column() == cidx_->column()) continue;
    Query single({p});
    const double sel = single.EstimateSelectivity(*table_, sample_);
    if (sel > config_.selectivity_threshold) continue;
    bool dup = false;
    for (auto& c : cols) {
      if (c.col == p.column()) {
        c.sel = std::min(c.sel, sel);
        dup = true;
      }
    }
    if (!dup) cols.push_back({p.column(), sel});
  }
  std::sort(cols.begin(), cols.end(),
            [](const ColSel& a, const ColSel& b) { return a.sel < b.sel; });
  if (cols.size() > config_.max_attrs) cols.resize(config_.max_attrs);
  std::vector<size_t> out;
  for (const auto& c : cols) out.push_back(c.col);
  return out;
}

std::vector<BucketingCandidates> CmAdvisor::CandidateBucketings(
    const Query& query) const {
  std::vector<BucketingCandidates> out;
  for (size_t col : PrunedColumns(query)) {
    const double d = DistinctSampler::EstimateColumn(*table_, col);
    out.push_back(EnumerateBucketings(table_->schema().column(col).name, d,
                                      config_.min_buckets,
                                      config_.max_buckets));
  }
  return out;
}

Bucketer CmAdvisor::MakeBucketer(size_t col, int level) const {
  if (level < 0) return Bucketer::Identity();
  // Boundaries from the sample's distinct values, scaled: the sample holds
  // ~r/n of the distinct values of a near-unique column, so 2^level values
  // per bucket over the full column corresponds to fewer sample values per
  // bucket. Using sample ordinals directly preserves monotonicity and the
  // bucket-count target.
  std::vector<double> vals;
  vals.reserve(sample_.size());
  for (RowId r : sample_.rows()) {
    vals.push_back(table_->GetKey(r, col).Numeric());
  }
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  const double d_full = DistinctSampler::EstimateColumn(*table_, col);
  const double frac = d_full > 0 ? double(vals.size()) / d_full : 1.0;
  const double per_bucket_full = std::ldexp(1.0, level);
  const uint64_t per_bucket_sample = std::max<uint64_t>(
      1, uint64_t(std::llround(per_bucket_full * frac)));
  const int sample_level =
      std::max(0, int(std::round(std::log2(double(per_bucket_sample)))));
  return Bucketer::ValueOrdinalFromValues(std::move(vals), sample_level);
}

void CmAdvisor::EstimateDesign(const Query& query, CmDesign* d) const {
  // Sample-driven estimates (AE): distinct bucketed-u keys, distinct
  // (u, c) pairs, and the u-buckets the query's predicates touch.
  std::vector<CompositeKey> u_keys, uc_keys;
  std::unordered_set<uint64_t> matching_u;
  u_keys.reserve(sample_.size());
  uc_keys.reserve(sample_.size());

  for (RowId r : sample_.rows()) {
    CompositeKey uk;
    bool matches = true;
    for (size_t i = 0; i < d->u_cols.size(); ++i) {
      const Key raw = table_->GetKey(r, d->u_cols[i]);
      uk.Append(Key(d->u_bucketers[i].BucketOf(raw)));
      for (const auto& p : query.predicates()) {
        if (p.column() == d->u_cols[i] && !p.MatchesKey(raw)) matches = false;
      }
    }
    u_keys.push_back(uk);
    CompositeKey uck = uk;
    const int64_t c_ord = c_buckets_ != nullptr
                              ? c_buckets_->BucketOfRow(r)
                              : cidx_->LowerBoundKey(
                                    table_->GetKey(r, cidx_->column()));
    uck.Append(Key(c_ord));
    uc_keys.push_back(uck);
    if (matches) matching_u.insert(uk.Hash());
  }

  const uint64_t n = sample_.population();
  const double d_u = AdaptiveEstimator::Estimate(u_keys, n);
  double d_uc = AdaptiveEstimator::Estimate(uc_keys, n);
  if (d_uc < d_u) d_uc = d_u;
  d->est_c_per_u = d_u > 0 ? d_uc / d_u : 1.0;

  // u-buckets touched by the query: scale the sample's matching buckets by
  // the same AE ratio used for d_u.
  SampleFrequencies uf = SampleFrequencies::FromKeys(u_keys);
  const double scale = uf.distinct > 0 ? d_u / double(uf.distinct) : 1.0;
  d->est_n_lookups = std::max(1.0, double(matching_u.size()) * scale);

  // Cost of the CM access under the §4 model: per u-bucket lookup, sweep
  // c_per_u clustered regions of c_pages each.
  CostInputs in;
  in.tups_per_page = double(table_->TuplesPerPage());
  in.total_tups = double(table_->TotalTuples());
  in.btree_height = double(cidx_->BTreeHeight());
  in.n_lookups = d->est_n_lookups;
  in.c_per_u = d->est_c_per_u;
  in.c_tups = c_buckets_ != nullptr
                  ? double(table_->TotalTuples()) /
                        double(std::max<size_t>(1, c_buckets_->NumBuckets()))
                  : cidx_->CTups();
  d->est_cost_ms = cost_model_.SortedCost(in);

  // Size: distinct (u, c-ordinal) pairs drive the CM's row count (§5.3).
  const double entry_bytes = double(8 * d->u_cols.size() + 8 + 4);
  d->est_size_bytes = d_uc * entry_bytes;
}

double CmAdvisor::BTreeBaselineCostMs(const Query& query) const {
  // Baseline: sorted index scan via an unbucketed secondary B+Tree on the
  // query's most selective predicated attribute (what a DBA would build).
  const auto cols = PrunedColumns(query);
  if (cols.empty()) {
    CostInputs in;
    in.tups_per_page = double(table_->TuplesPerPage());
    in.total_tups = double(table_->TotalTuples());
    return cost_model_.ScanCost(in);
  }
  const size_t col = cols.front();
  std::vector<size_t> u_cols{col};
  CorrelationStats stats =
      EstimateCorrelationStats(*table_, sample_, u_cols, cidx_->column());
  CostInputs in;
  in.tups_per_page = double(table_->TuplesPerPage());
  in.total_tups = double(table_->TotalTuples());
  in.btree_height = double(cidx_->BTreeHeight());
  in.u_tups = stats.u_tups;
  in.c_tups = cidx_->CTups();
  in.c_per_u = stats.c_per_u;
  // n_lookups: distinct predicated values of that column in the sample,
  // scaled as in EstimateDesign.
  std::unordered_set<uint64_t> matching;
  std::unordered_set<uint64_t> all;
  const Predicate* pred = nullptr;
  for (const auto& p : query.predicates()) {
    if (p.column() == col) pred = &p;
  }
  for (RowId r : sample_.rows()) {
    const Key k = table_->GetKey(r, col);
    all.insert(k.Hash());
    if (pred != nullptr && pred->MatchesKey(k)) matching.insert(k.Hash());
  }
  const double scale =
      all.empty() ? 1.0 : stats.d_u / double(all.size());
  in.n_lookups = std::max(1.0, double(matching.size()) * scale);
  return cost_model_.SortedCost(in);
}

std::vector<CmDesign> CmAdvisor::EnumerateDesigns(const Query& query) const {
  const std::vector<size_t> cols = PrunedColumns(query);
  std::vector<BucketingCandidates> cands;
  cands.reserve(cols.size());
  for (size_t col : cols) {
    const double d = DistinctSampler::EstimateColumn(*table_, col);
    cands.push_back(EnumerateBucketings(table_->schema().column(col).name, d,
                                        config_.min_buckets,
                                        config_.max_buckets));
  }

  // Per-column options: -2 = excluded, -1 = identity, >= 0 = 2^level.
  std::vector<std::vector<int>> options(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    options[i].push_back(-2);
    if (cands[i].include_identity) options[i].push_back(-1);
    for (int lv = cands[i].min_level; lv <= cands[i].max_level; ++lv) {
      options[i].push_back(lv);
    }
  }

  std::vector<CmDesign> designs;
  std::vector<size_t> idx(cols.size(), 0);
  if (cols.empty()) return designs;
  while (true) {
    CmDesign d;
    for (size_t i = 0; i < cols.size(); ++i) {
      const int opt = options[i][idx[i]];
      if (opt == -2) continue;
      d.u_cols.push_back(cols[i]);
      d.u_bucketers.push_back(MakeBucketer(cols[i], opt));
    }
    if (!d.u_cols.empty()) {
      EstimateDesign(query, &d);
      designs.push_back(std::move(d));
    }
    size_t i = 0;
    for (; i < idx.size(); ++i) {
      if (++idx[i] < options[i].size()) break;
      idx[i] = 0;
    }
    if (i == idx.size()) break;
  }

  const double baseline = BTreeBaselineCostMs(query);
  const double btree_bytes = double(table_->TotalTuples()) * 20.0;
  for (auto& d : designs) {
    d.runtime_delta = baseline > 0 ? (d.est_cost_ms - baseline) / baseline : 0;
    d.size_ratio = d.est_size_bytes / btree_bytes;
  }
  std::sort(designs.begin(), designs.end(),
            [](const CmDesign& a, const CmDesign& b) {
              return a.est_cost_ms < b.est_cost_ms;
            });
  return designs;
}

Result<CmDesign> CmAdvisor::Recommend(const Query& query) const {
  std::vector<CmDesign> designs = EnumerateDesigns(query);
  if (designs.empty()) {
    return Status::NotFound("no candidate attributes survive pruning");
  }
  // A CM must beat a full scan to be worth building (§6.2.2).
  CostInputs in;
  in.tups_per_page = double(table_->TuplesPerPage());
  in.total_tups = double(table_->TotalTuples());
  const double scan = cost_model_.ScanCost(in);

  const double best_cost = designs.front().est_cost_ms;
  if (best_cost >= scan) {
    return Status::NotFound("no CM design is expected to beat a table scan");
  }
  const double limit = best_cost * (1.0 + config_.perf_target);
  const CmDesign* pick = nullptr;
  for (const auto& d : designs) {
    if (d.est_cost_ms > limit) continue;
    if (pick == nullptr || d.est_size_bytes < pick->est_size_bytes) pick = &d;
  }
  assert(pick != nullptr);
  return *pick;
}

Result<CorrelationMap> CmAdvisor::BuildCm(const CmDesign& design) const {
  CmOptions opts;
  opts.u_cols = design.u_cols;
  // Rebuild value-ordinal bucketers from the full column for exact builds.
  for (size_t i = 0; i < design.u_cols.size(); ++i) {
    const Bucketer& b = design.u_bucketers[i];
    opts.u_bucketers.push_back(b);
  }
  opts.c_col = cidx_->column();
  opts.c_buckets = c_buckets_;
  auto cm = CorrelationMap::Create(table_, std::move(opts));
  if (!cm.ok()) return cm.status();
  Status s = cm->BuildFromTable();
  if (!s.ok()) return s;
  return cm;
}

}  // namespace corrmap
