// The CM Advisor (§6): given a clustered table and a training query, it
// (1) enumerates candidate bucketings per predicated attribute (Table 4),
// (2) exhaustively enumerates composite CM designs over those attributes
//     and bucketings (§6.1.3),
// (3) estimates each design's c_per_u, query cost, and size from one
//     in-memory random sample via the Adaptive Estimator (§4.2), and
// (4) recommends the smallest design within a user performance target
//     relative to a secondary B+Tree (Table 5).
#ifndef CORRMAP_CORE_ADVISOR_H_
#define CORRMAP_CORE_ADVISOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/bucketing.h"
#include "core/correlation_map.h"
#include "core/cost_model.h"
#include "exec/predicate.h"
#include "index/clustered_index.h"
#include "stats/sampler.h"

namespace corrmap {

/// Advisor tuning, defaults matching the paper.
struct AdvisorConfig {
  size_t sample_size = 30000;        ///< §6.1.3
  uint64_t min_buckets = 4;          ///< 2^2  (§6.1.2)
  uint64_t max_buckets = 65536;      ///< 2^16 (§6.1.2)
  double perf_target = 0.10;         ///< max slowdown vs B+Tree (Table 5)
  double selectivity_threshold = 0.5;///< drop weaker predicates (§6.2.2)
  size_t max_attrs = kMaxCmAttributes;
  uint64_t sample_seed = 0xad150fULL;  ///< reproducible sampling
};

/// One candidate CM design with its estimates.
struct CmDesign {
  std::vector<size_t> u_cols;
  std::vector<Bucketer> u_bucketers;   ///< parallel to u_cols
  double est_c_per_u = 0;
  double est_n_lookups = 1;            ///< u-buckets the query touches
  double est_cost_ms = 0;              ///< model cost of the CM access
  double est_size_bytes = 0;
  double runtime_delta = 0;            ///< (cm - btree) / btree
  double size_ratio = 0;               ///< est size / secondary B+Tree size

  /// Table-5 style label, e.g. "psfMag_g(2^13), type, fieldID, mode".
  std::string Label(const Table& table) const;
};

/// Per-query advisor over one clustered table.
class CmAdvisor {
 public:
  /// `c_buckets` may be null (CM designs then map to raw clustered values).
  CmAdvisor(const Table* table, const ClusteredIndex* cidx,
            const ClusteredBucketing* c_buckets, AdvisorConfig config = {});

  /// Table 4: candidate bucketings per predicated attribute of `query`
  /// (after selectivity pruning), with DS-estimated cardinalities.
  std::vector<BucketingCandidates> CandidateBucketings(const Query& query) const;

  /// All composite designs with estimates, sorted by estimated cost
  /// ascending (Table 5 rows).
  std::vector<CmDesign> EnumerateDesigns(const Query& query) const;

  /// The smallest design whose estimated cost is within perf_target of the
  /// best (lowest-cost) design; NotFound if no design beats a full scan.
  Result<CmDesign> Recommend(const Query& query) const;

  /// Materializes a recommended design into a real CM (full build scan).
  Result<CorrelationMap> BuildCm(const CmDesign& design) const;

  /// Estimated cost of answering `query` with a secondary B+Tree on its
  /// (single most selective) predicated attribute -- the Table 5 baseline.
  double BTreeBaselineCostMs(const Query& query) const;

  const RowSample& sample() const { return sample_; }
  const AdvisorConfig& config() const { return config_; }

 private:
  /// Columns surviving selectivity pruning, most selective first, capped at
  /// config_.max_attrs.
  std::vector<size_t> PrunedColumns(const Query& query) const;

  /// Builds the bucketer for (col, level); level < 0 means identity.
  Bucketer MakeBucketer(size_t col, int level) const;

  /// Fills est_* fields of `d` for `query`.
  void EstimateDesign(const Query& query, CmDesign* d) const;

  const Table* table_;
  const ClusteredIndex* cidx_;
  const ClusteredBucketing* c_buckets_;
  AdvisorConfig config_;
  RowSample sample_;
  CostModel cost_model_;
};

}  // namespace corrmap

#endif  // CORRMAP_CORE_ADVISOR_H_
