// Predicate introduction (§5.2, §7.1): given a query with a predicate on a
// CM's attributes, derive the extra clustered-attribute restriction the CM
// implies and emit both an executable form (clustered values / bucket
// ranges) and SQL-like text, mirroring the paper's front-end that adds an
// IN clause before handing the query to PostgreSQL.
#ifndef CORRMAP_CORE_REWRITER_H_
#define CORRMAP_CORE_REWRITER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/correlation_map.h"
#include "exec/predicate.h"
#include "index/clustered_index.h"

namespace corrmap {

/// Result of rewriting one query against one CM.
struct RewrittenQuery {
  /// Clustered ordinals the CM maps the predicate to (bucket ids or raw
  /// values).
  std::vector<int64_t> clustered_ordinals;
  /// The introduced restriction, as clustered-key values (unbucketed CM)...
  std::vector<Key> in_list;
  /// ...or as closed clustered-key ranges (bucketed clustered attribute).
  std::vector<std::pair<Key, Key>> ranges;
  /// SQL-like rendering: "SELECT ... WHERE <original> AND <introduced>".
  std::string sql;
  /// True when the CM produced no ordinals (predicate matches nothing).
  bool empty_result = false;
};

/// Rewrites `query` using `cm`. Fails if the query does not predicate every
/// CM attribute. `cidx` supplies key ranges for bucketed clustered
/// attributes.
Result<RewrittenQuery> RewriteWithCm(const Table& table,
                                     const CorrelationMap& cm,
                                     const ClusteredIndex& cidx,
                                     const Query& query);

}  // namespace corrmap

#endif  // CORRMAP_CORE_REWRITER_H_
