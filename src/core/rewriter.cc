#include "core/rewriter.h"

#include <algorithm>

#include "exec/access_path.h"

namespace corrmap {

Result<RewrittenQuery> RewriteWithCm(const Table& table,
                                     const CorrelationMap& cm,
                                     const ClusteredIndex& cidx,
                                     const Query& query) {
  (void)cidx;  // reserved for range validation of bucketed rewrites
  auto preds = CmPredicatesFor(cm, query);
  if (!preds.ok()) return preds.status();

  RewrittenQuery out;
  out.clustered_ordinals = cm.CmLookup(*preds);
  out.empty_result = out.clustered_ordinals.empty();

  const size_t c_col = cm.options().c_col;
  const std::string& c_name = table.schema().column(c_col).name;
  const Column& c_column = table.column(c_col);

  std::string introduced;
  if (cm.has_clustered_buckets()) {
    // Bucket ids become value ranges over the clustered key.
    for (int64_t b : out.clustered_ordinals) {
      auto [lo, hi] =
          cm.options().c_buckets->KeyRangeOfBucket(table, c_col, b);
      out.ranges.emplace_back(lo, hi);
    }
    // Merge adjacent/overlapping ranges for a compact clause.
    std::sort(out.ranges.begin(), out.ranges.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<std::pair<Key, Key>> merged;
    for (const auto& r : out.ranges) {
      if (!merged.empty() && !(merged.back().second < r.first)) {
        if (merged.back().second < r.second) merged.back().second = r.second;
      } else {
        merged.push_back(r);
      }
    }
    out.ranges = std::move(merged);
    for (size_t i = 0; i < out.ranges.size(); ++i) {
      if (i) introduced += " OR ";
      introduced += c_name + " BETWEEN " + out.ranges[i].first.ToString() +
                    " AND " + out.ranges[i].second.ToString();
    }
    if (out.ranges.size() > 1) introduced = "(" + introduced + ")";
  } else {
    for (int64_t o : out.clustered_ordinals) {
      out.in_list.push_back(cm.DecodeClusteredOrdinal(o));
    }
    std::sort(out.in_list.begin(), out.in_list.end());
    introduced = c_name + " IN (";
    for (size_t i = 0; i < out.in_list.size(); ++i) {
      if (i) introduced += ", ";
      // Decode dictionary codes back to strings for readable SQL.
      if (c_column.type() == ValueType::kString &&
          out.in_list[i].AsInt64() >= 0) {
        introduced += "'" + c_column.dictionary()->Get(out.in_list[i].AsInt64()) +
                      "'";
      } else {
        introduced += out.in_list[i].ToString();
      }
    }
    introduced += ")";
  }

  out.sql = "SELECT * FROM " + table.name() + " WHERE " + query.ToString(table);
  if (out.empty_result) {
    out.sql += " AND FALSE";
  } else {
    out.sql += " AND " + introduced;
  }
  return out;
}

}  // namespace corrmap
