// The paper's correlation-aware analytical cost model (§3, §4). Predicts
// the I/O cost of the three access methods -- full scan, pipelined
// secondary-index scan, sorted (bitmap) index scan -- from the Table 1/2
// statistics, including the correlation statistic c_per_u.
#ifndef CORRMAP_CORE_COST_MODEL_H_
#define CORRMAP_CORE_COST_MODEL_H_

#include <cstdint>
#include <span>
#include <string>

#include "storage/disk_model.h"

namespace corrmap {

/// The statistics of paper Tables 1 and 2 for one (Au, Ac) pairing.
struct CostInputs {
  double tups_per_page = 0;  ///< tuples per heap page
  double total_tups = 0;     ///< rows in the table
  double btree_height = 0;   ///< root-to-leaf seeks per index descent
  double n_lookups = 1;      ///< distinct Au values probed by the query
  double u_tups = 0;         ///< avg tuples per Au value
  double c_tups = 0;         ///< avg tuples per Ac value (Table 2)
  double c_per_u = 1;        ///< avg distinct Ac values per Au value (Table 2)
  /// Buffer-pool calibration: the decayed fraction of heap (resp. index)
  /// page touches that currently hit the buffer pool, published by the
  /// storage layer (BufferPool::ResidencyOf). 0 -- the paper's cold-cache
  /// assumption and the historical behavior of every formula below --
  /// charges full device cost per page; 1 prices the access near pure CPU
  /// cost (the Fig. 9 hot-clustered-range case the model used to
  /// over-charge). Values are clamped to [0, 1]. When the storage layer
  /// publishes extent-granular residency (BufferPool::ResidencyOfExtent),
  /// the plan enumeration refines these per-file scalars per candidate via
  /// CostModel::RunResidency over the candidate's actual page runs.
  double heap_residency = 0;
  double index_residency = 0;

  /// Heap pages ("p" in §3).
  double TotalPages() const {
    return tups_per_page > 0 ? total_tups / tups_per_page : 0;
  }
  /// Pages spanned by one clustered value ("c_pages", §4.1).
  double CPages() const {
    return tups_per_page > 0 ? c_tups / tups_per_page : 0;
  }

  std::string ToString() const;
};

/// Evaluates the §3/§4 formulas under a DiskModel's constants.
class CostModel {
 public:
  explicit CostModel(DiskModel disk = DiskModel()) : disk_(disk) {}

  const DiskModel& disk() const { return disk_; }

  /// CPU milliseconds to touch one page that is resident in the buffer
  /// pool (no device involved; locate the frame, read the tuples).
  static constexpr double kResidentPageMs = 1e-4;
  /// CPU milliseconds for a "seek" that never reaches the device: a B+Tree
  /// descent through cached nodes or repositioning within cached frames.
  static constexpr double kResidentSeekMs = 1e-3;

  /// Expected cost of one sequentially read page when a `residency`
  /// fraction of touches hit the buffer pool: the blend
  /// seq_page_ms*(1-r) + kResidentPageMs*r. residency==0 is exactly the
  /// historical seq_page_ms charge.
  double EffectiveSeqPageMs(double residency) const;

  /// Extent-granular residency for one page run: the page-weighted mean of
  /// `extent_hit_rates` over [first_page, first_page + pages), where entry
  /// i covers pages [i*extent_pages, (i+1)*extent_pages). Pages past the
  /// span's coverage -- and every page when the span is empty -- fall back
  /// to `fallback`, the per-file scalar, so callers without extent data
  /// price exactly as before. This is how a hot range of a file is priced
  /// near-CPU while a cold range of the same file stays at device cost.
  static double RunResidency(std::span<const double> extent_hit_rates,
                             uint64_t extent_pages, uint64_t first_page,
                             uint64_t pages, double fallback);
  /// Same blend for a random repositioning: seek_ms*(1-r)+kResidentSeekMs*r.
  double EffectiveSeekMs(double residency) const;

  /// cost_scan = seq_page_cost * p (§3), at CostInputs::heap_residency.
  double ScanCost(const CostInputs& in) const;

  /// cost_uncorrelated = n_lookups * u_tups * seek_cost * btree_height
  /// (§3.1, pipelined probes with no correlation awareness).
  double PipelinedCost(const CostInputs& in) const;

  /// cost_sorted = min(n_lookups * c_per_u * (seek*height + seq*c_pages),
  /// cost_scan) (§4.1) -- the correlation-aware sorted index scan cost.
  double SortedCost(const CostInputs& in) const;

  /// Sentinel for CmCost's probed_pages: the lookup touched the whole CM.
  static constexpr uint64_t kAllCmPages = ~uint64_t{0};

  /// SortedCost for a CM access: identical heap access pattern, but adds
  /// the (usually negligible) cost of reading the CM itself when it does
  /// not fit in memory (§6.2: large CMs stop paying off). `probed_pages`
  /// is how much of the CM the lookup actually touched: a directory probe
  /// reads only its run, so the uncached charge is
  /// min(probed_pages, cm_pages) sequential reads instead of the full map.
  double CmCost(const CostInputs& in, uint64_t cm_pages, bool cm_cached = true,
                uint64_t probed_pages = kAllCmPages) const;

  /// CPU milliseconds per CM entry visited by cm_lookup (in-RAM work).
  static constexpr double kCmCpuPerEntryMs = 1e-5;

  /// CPU milliseconds to examine and skip one tombstoned row (the select
  /// paths' IsDeleted re-filter). Plan costing charges each candidate for
  /// the dead rows its sweep would examine; execution charges the rows it
  /// actually skipped, keeping estimates and measured costs coherent.
  static constexpr double kTombstoneCpuMs = 1e-5;

  /// Range-probe term: the in-RAM cost of answering cm_lookup through the
  /// sorted bucket-ordinal directory -- a binary search over the u-keys
  /// plus the probed run. Replaces CmLookupScanCost for range predicates.
  double CmLookupProbeCost(double num_ukeys, double entries_probed) const;

  /// The replaced term: a range lookup that scans every u-key of the map
  /// (the pre-directory behavior; kept for comparison and benches).
  double CmLookupScanCost(double num_ukeys) const;

 private:
  DiskModel disk_;
};

}  // namespace corrmap

#endif  // CORRMAP_CORE_COST_MODEL_H_
