#include "core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace corrmap {

std::string CostInputs::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "tups_per_page=%.0f total_tups=%.0f height=%.0f n_lookups=%.0f "
                "u_tups=%.1f c_tups=%.1f c_per_u=%.2f",
                tups_per_page, total_tups, btree_height, n_lookups, u_tups,
                c_tups, c_per_u);
  return buf;
}

double CostModel::ScanCost(const CostInputs& in) const {
  return disk_.seq_page_ms() * in.TotalPages();
}

double CostModel::PipelinedCost(const CostInputs& in) const {
  return in.n_lookups * in.u_tups * disk_.seek_ms() * in.btree_height;
}

double CostModel::SortedCost(const CostInputs& in) const {
  const double per_lookup =
      in.c_per_u * (disk_.seek_ms() * in.btree_height +
                    disk_.seq_page_ms() * in.CPages());
  return std::min(in.n_lookups * per_lookup, ScanCost(in));
}

double CostModel::CmCost(const CostInputs& in, uint64_t cm_pages,
                         bool cm_cached, uint64_t probed_pages) const {
  double cost = SortedCost(in);
  if (!cm_cached) {
    cost += disk_.seek_ms() +
            disk_.seq_page_ms() * double(std::min(probed_pages, cm_pages));
  }
  return cost;
}

double CostModel::CmLookupProbeCost(double num_ukeys,
                                    double entries_probed) const {
  const double search = std::log2(std::max(2.0, num_ukeys));
  return kCmCpuPerEntryMs * (search + entries_probed);
}

double CostModel::CmLookupScanCost(double num_ukeys) const {
  return kCmCpuPerEntryMs * num_ukeys;
}

}  // namespace corrmap
