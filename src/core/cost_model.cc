#include "core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace corrmap {

std::string CostInputs::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "tups_per_page=%.0f total_tups=%.0f height=%.0f n_lookups=%.0f "
                "u_tups=%.1f c_tups=%.1f c_per_u=%.2f",
                tups_per_page, total_tups, btree_height, n_lookups, u_tups,
                c_tups, c_per_u);
  return buf;
}

namespace {

double ClampResidency(double r) { return std::clamp(r, 0.0, 1.0); }

}  // namespace

double CostModel::EffectiveSeqPageMs(double residency) const {
  const double r = ClampResidency(residency);
  return disk_.seq_page_ms() * (1.0 - r) + kResidentPageMs * r;
}

double CostModel::EffectiveSeekMs(double residency) const {
  const double r = ClampResidency(residency);
  return disk_.seek_ms() * (1.0 - r) + kResidentSeekMs * r;
}

double CostModel::RunResidency(std::span<const double> extent_hit_rates,
                               uint64_t extent_pages, uint64_t first_page,
                               uint64_t pages, double fallback) {
  if (extent_hit_rates.empty() || extent_pages == 0 || pages == 0) {
    return fallback;
  }
  double sum = 0;
  uint64_t page = first_page;
  uint64_t remaining = pages;
  while (remaining > 0) {
    const uint64_t extent = page / extent_pages;
    const uint64_t extent_end = (extent + 1) * extent_pages;
    const uint64_t span = std::min<uint64_t>(remaining, extent_end - page);
    const double r = extent < extent_hit_rates.size()
                         ? extent_hit_rates[extent]
                         : fallback;
    sum += ClampResidency(r) * double(span);
    page += span;
    remaining -= span;
  }
  return sum / double(pages);
}

double CostModel::ScanCost(const CostInputs& in) const {
  return EffectiveSeqPageMs(in.heap_residency) * in.TotalPages();
}

double CostModel::PipelinedCost(const CostInputs& in) const {
  // The per-tuple random heap fetches dominate this path, so the heap's
  // residency is the one that discounts it.
  return in.n_lookups * in.u_tups * EffectiveSeekMs(in.heap_residency) *
         in.btree_height;
}

double CostModel::SortedCost(const CostInputs& in) const {
  // Descents walk the secondary index (index residency); the c_pages sweep
  // reads heap pages (heap residency). The §4.1 degrade-to-scan cap is
  // priced COLD regardless of residency: the fallback the bound models is
  // an executed full sweep, which reads around the buffer pool
  // (MaybeDegradeToScan charges exactly that), so a warm pool must never
  // let a capped candidate undercut the seq-scan plan it would execute as.
  const double per_lookup =
      in.c_per_u * (EffectiveSeekMs(in.index_residency) * in.btree_height +
                    EffectiveSeqPageMs(in.heap_residency) * in.CPages());
  CostInputs cold = in;
  cold.heap_residency = 0;
  return std::min(in.n_lookups * per_lookup, ScanCost(cold));
}

double CostModel::CmCost(const CostInputs& in, uint64_t cm_pages,
                         bool cm_cached, uint64_t probed_pages) const {
  double cost = SortedCost(in);
  if (!cm_cached) {
    cost += disk_.seek_ms() +
            disk_.seq_page_ms() * double(std::min(probed_pages, cm_pages));
  }
  return cost;
}

double CostModel::CmLookupProbeCost(double num_ukeys,
                                    double entries_probed) const {
  const double search = std::log2(std::max(2.0, num_ukeys));
  return kCmCpuPerEntryMs * (search + entries_probed);
}

double CostModel::CmLookupScanCost(double num_ukeys) const {
  return kCmCpuPerEntryMs * num_ukeys;
}

}  // namespace corrmap
