#include "core/correlation_map.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>

namespace corrmap {

namespace {

/// Run-length encodes sorted distinct ordinals into maximal consecutive
/// runs. Consecutive means ordinal + 1: adjacent clustered bucket ids,
/// adjacent integer keys, or bit-adjacent double encodings (between which
/// no representable value exists), so expanding a run never adds ordinals
/// the lookup did not return.
CmLookupResult MakeResult(std::vector<int64_t> ordinals,
                          uint64_t entries_probed, bool used_directory) {
  std::sort(ordinals.begin(), ordinals.end());
  ordinals.erase(std::unique(ordinals.begin(), ordinals.end()),
                 ordinals.end());
  CmLookupResult out;
  out.num_ordinals = ordinals.size();
  out.entries_probed = entries_probed;
  out.used_directory = used_directory;
  for (int64_t o : ordinals) {
    if (!out.ranges.empty() &&
        out.ranges.back().hi != std::numeric_limits<int64_t>::max() &&
        o == out.ranges.back().hi + 1) {
      out.ranges.back().hi = o;
    } else {
      out.ranges.push_back({o, o});
    }
  }
  return out;
}

}  // namespace

std::string CmKey::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < n; ++i) {
    if (i) out += ",";
    out += std::to_string(v[i]);
  }
  return out + "]";
}

uint64_t FingerprintCmPredicates(std::span<const CmColumnPredicate> preds) {
  uint64_t h = Mix64(0x636d666dULL ^ preds.size());
  for (const CmColumnPredicate& p : preds) {
    h = Mix64(h ^ uint64_t(p.kind));
    if (p.kind == CmColumnPredicate::Kind::kPoints) {
      h = Mix64(h ^ p.points.size());
      for (const Key& k : p.points) h = Mix64(h ^ k.Hash());
    } else {
      h = Mix64(h ^ std::bit_cast<uint64_t>(p.lo));
      h = Mix64(h ^ std::bit_cast<uint64_t>(p.hi));
    }
  }
  return h;
}

std::vector<int64_t> CmLookupResult::ToOrdinals() const {
  std::vector<int64_t> out;
  out.reserve(num_ordinals);
  for (const OrdinalRange& r : ranges) {
    for (int64_t o = r.lo;; ++o) {
      out.push_back(o);
      if (o == r.hi) break;
    }
  }
  return out;
}

Result<CorrelationMap> CorrelationMap::Create(const Table* table,
                                              CmOptions options) {
  if (options.u_cols.empty() ||
      options.u_cols.size() > kMaxCmAttributes) {
    return Status::InvalidArgument("CM needs 1..4 unclustered attributes");
  }
  if (options.u_bucketers.size() != options.u_cols.size()) {
    return Status::InvalidArgument("one bucketer per CM attribute required");
  }
  for (size_t c : options.u_cols) {
    if (c >= table->schema().num_columns()) {
      return Status::OutOfRange("CM attribute out of range");
    }
  }
  if (options.c_col >= table->schema().num_columns()) {
    return Status::OutOfRange("clustered attribute out of range");
  }
  if (table->clustered_column() != static_cast<int>(options.c_col)) {
    return Status::InvalidArgument(
        "table must be clustered on the CM's clustered attribute");
  }
  return CorrelationMap(table, std::move(options));
}

CmKey CorrelationMap::UKeyOfRow(RowId row) const {
  CmKey key;
  for (size_t i = 0; i < options_.u_cols.size(); ++i) {
    key.Append(
        options_.u_bucketers[i].BucketOf(table_->GetKey(row, options_.u_cols[i])));
  }
  return key;
}

CmKey CorrelationMap::UKeyOfValues(std::span<const Key> u_keys) const {
  assert(u_keys.size() == options_.u_cols.size());
  CmKey key;
  for (size_t i = 0; i < u_keys.size(); ++i) {
    key.Append(options_.u_bucketers[i].BucketOf(u_keys[i]));
  }
  return key;
}

int64_t CorrelationMap::ClusteredOrdinalOfRow(RowId row) const {
  if (options_.c_buckets != nullptr) {
    return options_.c_buckets->BucketOfRow(row);
  }
  const Key k = table_->GetKey(row, options_.c_col);
  return k.is_double() ? OrderedDoubleOrdinal(k.AsDouble()) : k.AsInt64();
}

Key CorrelationMap::DecodeClusteredOrdinal(int64_t ordinal) const {
  assert(!has_clustered_buckets());
  const bool is_double =
      table_->schema().column(options_.c_col).type == ValueType::kDouble;
  return is_double ? Key(OrderedOrdinalToDouble(ordinal)) : Key(ordinal);
}

Status CorrelationMap::BuildFromTable() {
  // Algorithm 1: scan, bucket both sides, upsert co-occurrence counts.
  // The per-row epoch bumps inside InsertRow are harmless: the counter
  // only needs monotonicity.
  const size_t n = table_->NumRows();
  for (RowId r = 0; r < n; ++r) {
    if (table_->IsDeleted(r)) continue;
    InsertRow(r);
  }
  return Status::OK();
}

void CorrelationMap::InsertRow(RowId row) {
  UpsertPair(UKeyOfRow(row), ClusteredOrdinalOfRow(row));
}

Status CorrelationMap::DeleteRow(RowId row) {
  return RetractPair(UKeyOfRow(row), ClusteredOrdinalOfRow(row));
}

void CorrelationMap::UpsertPair(const CmKey& u_key, int64_t c_ordinal,
                                uint32_t count) {
  ++epoch_;
  auto [mit, new_key] = map_.try_emplace(u_key);
  if (new_key) NoteKeyAdded(mit->first);
  auto [it, inserted] = mit->second.emplace(c_ordinal, count);
  if (inserted) {
    ++num_entries_;
  } else {
    it->second += count;
  }
}

Status CorrelationMap::RetractPair(const CmKey& u_key, int64_t c_ordinal) {
  ++epoch_;
  auto mit = map_.find(u_key);
  if (mit == map_.end()) return Status::NotFound("u-key not mapped");
  auto cit = mit->second.find(c_ordinal);
  if (cit == mit->second.end()) {
    return Status::NotFound("clustered ordinal not mapped for u-key");
  }
  if (--cit->second == 0) {
    mit->second.erase(cit);
    --num_entries_;
    if (mit->second.empty()) {
      map_.erase(mit);
      NoteKeyErased(u_key);
    }
  }
  return Status::OK();
}

size_t CorrelationMap::InsertRowsBatched(std::span<const RowId> rows) {
  // Bucket every row once, then sort so equal u-keys (and within them,
  // equal clustered ordinals) are adjacent: one hash traversal per
  // distinct u-key and one count upsert per distinct pair, instead of one
  // hash traversal per row. An empty batch must not bump the epoch (it
  // would invalidate cached lookups for a no-op).
  if (rows.empty()) return 0;
  std::vector<std::pair<CmKey, int64_t>> pairs;
  pairs.reserve(rows.size());
  for (RowId r : rows) {
    pairs.emplace_back(UKeyOfRow(r), ClusteredOrdinalOfRow(r));
  }
  return UpsertPairsBatched(std::move(pairs));
}

size_t CorrelationMap::UpsertPairsBatched(
    std::vector<std::pair<CmKey, int64_t>> pairs) {
  if (pairs.empty()) return 0;
  ++epoch_;
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) {
              if (a.first < b.first) return true;
              if (b.first < a.first) return false;
              return a.second < b.second;
            });
  size_t groups = 0;
  size_t i = 0;
  while (i < pairs.size()) {
    const CmKey key = pairs[i].first;
    auto [mit, new_key] = map_.try_emplace(key);
    if (new_key) NoteKeyAdded(key);
    while (i < pairs.size() && pairs[i].first == key) {
      const int64_t c = pairs[i].second;
      uint32_t cnt = 0;
      while (i < pairs.size() && pairs[i].first == key &&
             pairs[i].second == c) {
        ++cnt;
        ++i;
      }
      auto [cit, inserted] = mit->second.emplace(c, cnt);
      if (inserted) {
        ++num_entries_;
      } else {
        cit->second += cnt;
      }
      ++groups;
    }
  }
  return groups;
}

Status CorrelationMap::RetractPairsBatched(
    std::vector<std::pair<CmKey, int64_t>> pairs) {
  // Mirror of UpsertPairsBatched: sort so equal pairs are adjacent, then
  // subtract one aggregated count per distinct (u-key, ordinal) pair. A
  // NotFound mid-batch means the caller retracted a pair that was never
  // inserted; the map is corrupt either way, so no rollback is attempted.
  if (pairs.empty()) return Status::OK();
  ++epoch_;
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) {
              if (a.first < b.first) return true;
              if (b.first < a.first) return false;
              return a.second < b.second;
            });
  size_t i = 0;
  while (i < pairs.size()) {
    const CmKey key = pairs[i].first;
    auto mit = map_.find(key);
    if (mit == map_.end()) return Status::NotFound("u-key not mapped");
    while (i < pairs.size() && pairs[i].first == key) {
      const int64_t c = pairs[i].second;
      uint32_t cnt = 0;
      while (i < pairs.size() && pairs[i].first == key &&
             pairs[i].second == c) {
        ++cnt;
        ++i;
      }
      auto cit = mit->second.find(c);
      if (cit == mit->second.end() || cit->second < cnt) {
        return Status::NotFound("clustered ordinal not mapped for u-key");
      }
      cit->second -= cnt;
      if (cit->second == 0) {
        mit->second.erase(cit);
        --num_entries_;
      }
    }
    if (mit->second.empty()) {
      map_.erase(mit);
      NoteKeyErased(key);
    }
  }
  return Status::OK();
}

void CorrelationMap::InsertValues(std::span<const Key> u_keys,
                                  int64_t c_ordinal) {
  UpsertPair(UKeyOfValues(u_keys), c_ordinal);
}

Status CorrelationMap::DeleteValues(std::span<const Key> u_keys,
                                    int64_t c_ordinal) {
  return RetractPair(UKeyOfValues(u_keys), c_ordinal);
}

bool CorrelationMap::BuildConstraints(
    std::span<const CmColumnPredicate> preds,
    std::vector<ColumnConstraint>* out) const {
  out->clear();
  out->resize(preds.size());
  for (size_t i = 0; i < preds.size(); ++i) {
    const Bucketer& b = options_.u_bucketers[i];
    const CmColumnPredicate& p = preds[i];
    ColumnConstraint& c = (*out)[i];
    if (p.kind == CmColumnPredicate::Kind::kPoints) {
      c.points.reserve(p.points.size());
      for (const Key& pt : p.points) c.points.push_back(b.BucketOf(pt));
      std::sort(c.points.begin(), c.points.end());
      c.points.erase(std::unique(c.points.begin(), c.points.end()),
                     c.points.end());
      if (c.points.empty()) return false;
    } else {
      c.is_range = true;
      const bool double_domain =
          table_->schema().column(options_.u_cols[i]).type ==
          ValueType::kDouble;
      std::tie(c.lo, c.hi) = b.OrdinalRangeCovering(p.lo, p.hi, double_domain);
      if (c.lo > c.hi) return false;
    }
  }
  return true;
}

bool CorrelationMap::MatchesConstraints(
    const CmKey& key, std::span<const ColumnConstraint> cons, size_t skip) {
  for (size_t i = 0; i < cons.size(); ++i) {
    if (i == skip) continue;
    const int64_t ordinal = key.v[i];
    const ColumnConstraint& c = cons[i];
    if (c.is_range) {
      if (ordinal < c.lo || ordinal > c.hi) return false;
    } else if (!std::binary_search(c.points.begin(), c.points.end(),
                                   ordinal)) {
      return false;
    }
  }
  return true;
}

void CorrelationMap::NoteKeyDirty(std::vector<CmKey>* delta,
                                  const CmKey& key) {
  if (directory_full_rebuild_) return;
  delta->push_back(key);
  // Past the threshold an incremental merge no longer beats the wholesale
  // rebuild; degrade once and drop the (now pointless) delta. Repeated
  // notes of one hot key all count toward the threshold, so a key toggled
  // many times between syncs can trigger a rebuild for a small true dirty
  // set -- a deliberately conservative (cheap) size test.
  if ((delta_added_.size() + delta_erased_.size()) *
          kDirectoryDeltaMaxInverseFraction >
      std::max<size_t>(kDirectoryDeltaMinKeys, map_.size())) {
    directory_full_rebuild_ = true;
    delta_added_.clear();
    delta_erased_.clear();
  }
}

void CorrelationMap::NoteKeyAdded(const CmKey& key) {
  NoteKeyDirty(&delta_added_, key);
}

void CorrelationMap::NoteKeyErased(const CmKey& key) {
  NoteKeyDirty(&delta_erased_, key);
}

void CorrelationMap::EnsureDirectory() const {
  if (directory_full_rebuild_) {
    RebuildDirectory();
  } else if (!delta_added_.empty() || !delta_erased_.empty()) {
    MergeDirectoryDelta();
  }
}

void CorrelationMap::RebuildDirectory() const {
  const size_t arity = options_.u_cols.size();
  directory_.assign(arity, {});
  for (auto& d : directory_) d.reserve(map_.size());
  for (const auto& entry : map_) {
    for (size_t i = 0; i < arity; ++i) {
      directory_[i].push_back({entry.first.v[i], &entry, entry.first});
    }
  }
  for (auto& d : directory_) {
    std::sort(d.begin(), d.end(), [](const DirEntry& a, const DirEntry& b) {
      return a.ordinal < b.ordinal;
    });
  }
  directory_full_rebuild_ = false;
  delta_added_.clear();
  delta_erased_.clear();
  ++directory_full_rebuilds_;
}

void CorrelationMap::MergeDirectoryDelta() const {
  // Erases first: a key erased and later re-added appears in both deltas,
  // and its directory slots (whose node pointers dangle) are matched by
  // the stored key copy, never by dereferencing. Then the surviving added
  // keys -- those still mapped -- are merged in as a sorted run per
  // attribute, so an append-only workload pays O(delta log delta + n)
  // instead of the O(n log n) wholesale rebuild.
  const size_t arity = options_.u_cols.size();
  if (!delta_erased_.empty()) {
    std::sort(delta_erased_.begin(), delta_erased_.end());
    delta_erased_.erase(
        std::unique(delta_erased_.begin(), delta_erased_.end()),
        delta_erased_.end());
    for (auto& d : directory_) {
      d.erase(std::remove_if(d.begin(), d.end(),
                             [&](const DirEntry& e) {
                               return std::binary_search(
                                   delta_erased_.begin(),
                                   delta_erased_.end(), e.key);
                             }),
              d.end());
    }
  }
  if (!delta_added_.empty()) {
    std::sort(delta_added_.begin(), delta_added_.end());
    delta_added_.erase(std::unique(delta_added_.begin(), delta_added_.end()),
                       delta_added_.end());
    std::vector<DirEntry> adds;
    adds.reserve(delta_added_.size());
    for (size_t i = 0; i < arity; ++i) {
      adds.clear();
      for (const CmKey& key : delta_added_) {
        auto it = map_.find(key);
        if (it == map_.end()) continue;  // added then erased again
        adds.push_back({key.v[i], &*it, key});
      }
      std::sort(adds.begin(), adds.end(),
                [](const DirEntry& a, const DirEntry& b) {
                  return a.ordinal < b.ordinal;
                });
      auto& d = directory_[i];
      const size_t mid = d.size();
      d.insert(d.end(), adds.begin(), adds.end());
      std::inplace_merge(d.begin(), d.begin() + std::ptrdiff_t(mid), d.end(),
                         [](const DirEntry& a, const DirEntry& b) {
                           return a.ordinal < b.ordinal;
                         });
    }
  }
  delta_added_.clear();
  delta_erased_.clear();
  ++directory_incremental_merges_;
}

bool CorrelationMap::HasRangePredicate(
    std::span<const CmColumnPredicate> preds) {
  for (const CmColumnPredicate& p : preds) {
    if (p.kind == CmColumnPredicate::Kind::kRange) return true;
  }
  return false;
}

bool CorrelationMap::CompilePointProbeKeys(
    std::span<const CmColumnPredicate> preds, std::vector<CmKey>* out) const {
  assert(preds.size() == options_.u_cols.size());
  out->clear();
  std::vector<ColumnConstraint> cons;
  if (!BuildConstraints(preds, &cons)) return false;
  size_t cross = 1;
  for (const ColumnConstraint& c : cons) {
    if (c.is_range) return false;
    cross *= c.points.size();
  }
  // Cross product of per-column bucket ordinals (mixed-radix counter).
  out->reserve(cross);
  std::vector<size_t> idx(cons.size(), 0);
  while (true) {
    CmKey key;
    for (size_t i = 0; i < cons.size(); ++i) {
      key.Append(cons[i].points[idx[i]]);
    }
    out->push_back(key);
    size_t i = 0;
    for (; i < idx.size(); ++i) {
      if (++idx[i] < cons[i].points.size()) break;
      idx[i] = 0;
    }
    if (i == idx.size()) break;
  }
  return true;
}

CmLookupResult CorrelationMap::LookupKeys(std::span<const CmKey> keys) const {
  lookups_computed_.fetch_add(1, std::memory_order_relaxed);
  std::vector<int64_t> ordinals;
  uint64_t pairs_probed = 0;
  for (const CmKey& key : keys) {
    auto it = map_.find(key);
    if (it == map_.end()) continue;
    pairs_probed += it->second.size();
    for (const auto& [c, cnt] : it->second) ordinals.push_back(c);
  }
  return MakeResult(std::move(ordinals), pairs_probed,
                    /*used_directory=*/false);
}

CmLookupResult CorrelationMap::Lookup(
    std::span<const CmColumnPredicate> preds) const {
  assert(preds.size() == options_.u_cols.size());
  if (!HasRangePredicate(preds)) {
    // All-points predicates probe the hash map key by key.
    std::vector<CmKey> keys;
    if (!CompilePointProbeKeys(preds, &keys)) {
      lookups_computed_.fetch_add(1, std::memory_order_relaxed);
      return CmLookupResult{};  // a constraint is provably empty
    }
    return LookupKeys(keys);
  }
  lookups_computed_.fetch_add(1, std::memory_order_relaxed);
  std::vector<ColumnConstraint> cons;
  if (!BuildConstraints(preds, &cons)) return CmLookupResult{};

  std::vector<int64_t> ordinals;

  // Range predicate present: binary-search the sorted directory of the
  // range column with the narrowest run, then filter that run on the
  // remaining constraints.
  EnsureDirectory();
  size_t probe_col = cons.size();
  std::pair<std::vector<DirEntry>::const_iterator,
            std::vector<DirEntry>::const_iterator>
      run;
  size_t best_width = std::numeric_limits<size_t>::max();
  for (size_t i = 0; i < cons.size(); ++i) {
    if (!cons[i].is_range) continue;
    const auto& d = directory_[i];
    auto first = std::lower_bound(
        d.begin(), d.end(), cons[i].lo,
        [](const DirEntry& e, int64_t v) { return e.ordinal < v; });
    auto last = std::upper_bound(
        first, d.end(), cons[i].hi,
        [](int64_t v, const DirEntry& e) { return v < e.ordinal; });
    const size_t width = size_t(last - first);
    if (width < best_width) {
      best_width = width;
      probe_col = i;
      run = {first, last};
    }
  }
  uint64_t pairs_probed = 0;
  for (auto it = run.first; it != run.second; ++it) {
    pairs_probed += it->entry->second.size();
    if (!MatchesConstraints(it->key, cons, probe_col)) continue;
    for (const auto& [c, cnt] : it->entry->second) ordinals.push_back(c);
  }
  return MakeResult(std::move(ordinals), pairs_probed,
                    /*used_directory=*/true);
}

CmLookupResult CorrelationMap::LookupViaScan(
    std::span<const CmColumnPredicate> preds) const {
  assert(preds.size() == options_.u_cols.size());
  lookups_computed_.fetch_add(1, std::memory_order_relaxed);
  std::vector<ColumnConstraint> cons;
  if (!BuildConstraints(preds, &cons)) return CmLookupResult{};
  std::vector<int64_t> ordinals;
  for (const auto& [key, counts] : map_) {
    if (!MatchesConstraints(key, cons, cons.size())) continue;
    for (const auto& [c, cnt] : counts) ordinals.push_back(c);
  }
  return MakeResult(std::move(ordinals), num_entries_,
                    /*used_directory=*/false);
}

std::vector<int64_t> CorrelationMap::CmLookup(
    std::span<const CmColumnPredicate> preds) const {
  return Lookup(preds).ToOrdinals();
}

uint64_t CorrelationMap::SizeBytes() const {
  return uint64_t(num_entries_) * EntryBytes();
}

uint64_t CorrelationMap::PagesForEntries(uint64_t entries,
                                         size_t page_size) const {
  return (entries * EntryBytes() + page_size - 1) / page_size;
}

std::string CorrelationMap::Name() const {
  std::string name = "cm";
  for (size_t i = 0; i < options_.u_cols.size(); ++i) {
    name += "_" + table_->schema().column(options_.u_cols[i]).name;
    if (!options_.u_bucketers[i].is_identity()) {
      name += '(';
      name += options_.u_bucketers[i].ToString();
      name += ')';
    }
  }
  return name;
}

CorrelationMap CorrelationMap::CloneRetargeted(const Table* table) const {
  assert(options_.c_buckets == nullptr &&
         "positional (c-bucketed) CMs cannot survive a physical reorder");
  CorrelationMap out(*this);  // copy ctor: map/entries/epoch, dirty directory
  out.table_ = table;
  return out;
}

Status CorrelationMap::CheckInvariants() const {
  size_t pairs = 0;
  for (const auto& [key, counts] : map_) {
    if (key.n != options_.u_cols.size()) {
      return Status::Corruption("u-key arity mismatch");
    }
    if (counts.empty()) return Status::Corruption("empty u-key entry");
    for (const auto& [c, cnt] : counts) {
      if (cnt == 0) return Status::Corruption("zero co-occurrence count");
      ++pairs;
    }
  }
  if (pairs != num_entries_) {
    return Status::Corruption("entry count mismatch");
  }
  return Status::OK();
}

std::vector<CorrelationMap::Record> CorrelationMap::ToRecords() const {
  std::vector<Record> out;
  out.reserve(num_entries_);
  for (const auto& [key, counts] : map_) {
    for (const auto& [c, cnt] : counts) out.push_back({key, c, cnt});
  }
  return out;
}

Status CorrelationMap::LoadRecords(std::span<const Record> records) {
  ++epoch_;
  map_.clear();
  num_entries_ = 0;
  directory_full_rebuild_ = true;
  delta_added_.clear();
  delta_erased_.clear();
  for (const auto& rec : records) {
    if (rec.u.n != options_.u_cols.size()) {
      return Status::Corruption("record arity mismatch");
    }
    if (rec.count == 0) return Status::Corruption("zero count record");
    auto [it, inserted] = map_[rec.u].emplace(rec.c_ordinal, rec.count);
    if (!inserted) return Status::Corruption("duplicate record");
    ++num_entries_;
  }
  return Status::OK();
}

}  // namespace corrmap
