#include "core/correlation_map.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace corrmap {

std::string CmKey::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < n; ++i) {
    if (i) out += ",";
    out += std::to_string(v[i]);
  }
  return out + "]";
}

Result<CorrelationMap> CorrelationMap::Create(const Table* table,
                                              CmOptions options) {
  if (options.u_cols.empty() ||
      options.u_cols.size() > kMaxCmAttributes) {
    return Status::InvalidArgument("CM needs 1..4 unclustered attributes");
  }
  if (options.u_bucketers.size() != options.u_cols.size()) {
    return Status::InvalidArgument("one bucketer per CM attribute required");
  }
  for (size_t c : options.u_cols) {
    if (c >= table->schema().num_columns()) {
      return Status::OutOfRange("CM attribute out of range");
    }
  }
  if (options.c_col >= table->schema().num_columns()) {
    return Status::OutOfRange("clustered attribute out of range");
  }
  if (table->clustered_column() != static_cast<int>(options.c_col)) {
    return Status::InvalidArgument(
        "table must be clustered on the CM's clustered attribute");
  }
  return CorrelationMap(table, std::move(options));
}

CmKey CorrelationMap::UKeyOfRow(RowId row) const {
  CmKey key;
  for (size_t i = 0; i < options_.u_cols.size(); ++i) {
    key.Append(
        options_.u_bucketers[i].BucketOf(table_->GetKey(row, options_.u_cols[i])));
  }
  return key;
}

CmKey CorrelationMap::UKeyOfValues(std::span<const Key> u_keys) const {
  assert(u_keys.size() == options_.u_cols.size());
  CmKey key;
  for (size_t i = 0; i < u_keys.size(); ++i) {
    key.Append(options_.u_bucketers[i].BucketOf(u_keys[i]));
  }
  return key;
}

int64_t CorrelationMap::ClusteredOrdinalOfRow(RowId row) const {
  if (options_.c_buckets != nullptr) {
    return options_.c_buckets->BucketOfRow(row);
  }
  const Key k = table_->GetKey(row, options_.c_col);
  return k.is_double() ? std::bit_cast<int64_t>(k.AsDouble()) : k.AsInt64();
}

Key CorrelationMap::DecodeClusteredOrdinal(int64_t ordinal) const {
  assert(!has_clustered_buckets());
  const bool is_double =
      table_->schema().column(options_.c_col).type == ValueType::kDouble;
  return is_double ? Key(std::bit_cast<double>(ordinal)) : Key(ordinal);
}

Status CorrelationMap::BuildFromTable() {
  // Algorithm 1: scan, bucket both sides, upsert co-occurrence counts.
  const size_t n = table_->NumRows();
  for (RowId r = 0; r < n; ++r) {
    if (table_->IsDeleted(r)) continue;
    InsertRow(r);
  }
  return Status::OK();
}

void CorrelationMap::InsertRow(RowId row) {
  auto& counts = map_[UKeyOfRow(row)];
  auto [it, inserted] = counts.emplace(ClusteredOrdinalOfRow(row), 1);
  if (inserted) {
    ++num_entries_;
  } else {
    ++it->second;
  }
}

Status CorrelationMap::DeleteRow(RowId row) {
  const CmKey ukey = UKeyOfRow(row);
  auto mit = map_.find(ukey);
  if (mit == map_.end()) return Status::NotFound("u-key not mapped");
  const int64_t c = ClusteredOrdinalOfRow(row);
  auto cit = mit->second.find(c);
  if (cit == mit->second.end()) {
    return Status::NotFound("clustered ordinal not mapped for u-key");
  }
  if (--cit->second == 0) {
    mit->second.erase(cit);
    --num_entries_;
    if (mit->second.empty()) map_.erase(mit);
  }
  return Status::OK();
}

void CorrelationMap::InsertValues(std::span<const Key> u_keys,
                                  int64_t c_ordinal) {
  auto& counts = map_[UKeyOfValues(u_keys)];
  auto [it, inserted] = counts.emplace(c_ordinal, 1);
  if (inserted) {
    ++num_entries_;
  } else {
    ++it->second;
  }
}

Status CorrelationMap::DeleteValues(std::span<const Key> u_keys,
                                    int64_t c_ordinal) {
  auto mit = map_.find(UKeyOfValues(u_keys));
  if (mit == map_.end()) return Status::NotFound("u-key not mapped");
  auto cit = mit->second.find(c_ordinal);
  if (cit == mit->second.end()) {
    return Status::NotFound("clustered ordinal not mapped for u-key");
  }
  if (--cit->second == 0) {
    mit->second.erase(cit);
    --num_entries_;
    if (mit->second.empty()) map_.erase(mit);
  }
  return Status::OK();
}

bool CorrelationMap::UKeyMatches(
    const CmKey& key, std::span<const CmColumnPredicate> preds) const {
  for (size_t i = 0; i < preds.size(); ++i) {
    const Bucketer& b = options_.u_bucketers[i];
    const int64_t ordinal = key.v[i];
    const CmColumnPredicate& p = preds[i];
    if (p.kind == CmColumnPredicate::Kind::kPoints) {
      bool any = false;
      for (const Key& pt : p.points) {
        if (b.BucketOf(pt) == ordinal) {
          any = true;
          break;
        }
      }
      if (!any) return false;
    } else {
      if (b.is_identity() &&
          table_->schema().column(options_.u_cols[i]).type ==
              ValueType::kDouble) {
        // Identity-double ordinals are bit patterns; decode for the test.
        const double v = std::bit_cast<double>(ordinal);
        if (v < p.lo || v > p.hi) return false;
      } else {
        const auto [blo, bhi] = b.BucketsCovering(p.lo, p.hi);
        if (ordinal < blo || ordinal > bhi) return false;
      }
    }
  }
  return true;
}

std::vector<int64_t> CorrelationMap::CmLookup(
    std::span<const CmColumnPredicate> preds) const {
  assert(preds.size() == options_.u_cols.size());
  std::vector<int64_t> out;

  bool all_points = true;
  for (const auto& p : preds) {
    if (p.kind != CmColumnPredicate::Kind::kPoints) all_points = false;
  }

  if (all_points) {
    // Cross product of per-column bucket ordinals, probed directly.
    std::vector<std::vector<int64_t>> per_col(preds.size());
    for (size_t i = 0; i < preds.size(); ++i) {
      for (const Key& pt : preds[i].points) {
        per_col[i].push_back(options_.u_bucketers[i].BucketOf(pt));
      }
      std::sort(per_col[i].begin(), per_col[i].end());
      per_col[i].erase(std::unique(per_col[i].begin(), per_col[i].end()),
                       per_col[i].end());
      if (per_col[i].empty()) return out;
    }
    std::vector<size_t> idx(preds.size(), 0);
    while (true) {
      CmKey key;
      for (size_t i = 0; i < preds.size(); ++i) key.Append(per_col[i][idx[i]]);
      auto it = map_.find(key);
      if (it != map_.end()) {
        for (const auto& [c, cnt] : it->second) out.push_back(c);
      }
      // Advance the mixed-radix counter.
      size_t i = 0;
      for (; i < idx.size(); ++i) {
        if (++idx[i] < per_col[i].size()) break;
        idx[i] = 0;
      }
      if (i == idx.size()) break;
    }
  } else {
    // Range predicate present: scan the whole (in-memory) CM.
    for (const auto& [key, counts] : map_) {
      if (!UKeyMatches(key, preds)) continue;
      for (const auto& [c, cnt] : counts) out.push_back(c);
    }
  }

  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

uint64_t CorrelationMap::SizeBytes() const {
  const uint64_t entry_bytes = 8 * options_.u_cols.size() + 8 + 4;
  return uint64_t(num_entries_) * entry_bytes;
}

std::string CorrelationMap::Name() const {
  std::string name = "cm";
  for (size_t i = 0; i < options_.u_cols.size(); ++i) {
    name += "_" + table_->schema().column(options_.u_cols[i]).name;
    if (!options_.u_bucketers[i].is_identity()) {
      name += '(';
      name += options_.u_bucketers[i].ToString();
      name += ')';
    }
  }
  return name;
}

Status CorrelationMap::CheckInvariants() const {
  size_t pairs = 0;
  for (const auto& [key, counts] : map_) {
    if (key.n != options_.u_cols.size()) {
      return Status::Corruption("u-key arity mismatch");
    }
    if (counts.empty()) return Status::Corruption("empty u-key entry");
    for (const auto& [c, cnt] : counts) {
      if (cnt == 0) return Status::Corruption("zero co-occurrence count");
      ++pairs;
    }
  }
  if (pairs != num_entries_) {
    return Status::Corruption("entry count mismatch");
  }
  return Status::OK();
}

std::vector<CorrelationMap::Record> CorrelationMap::ToRecords() const {
  std::vector<Record> out;
  out.reserve(num_entries_);
  for (const auto& [key, counts] : map_) {
    for (const auto& [c, cnt] : counts) out.push_back({key, c, cnt});
  }
  return out;
}

Status CorrelationMap::LoadRecords(std::span<const Record> records) {
  map_.clear();
  num_entries_ = 0;
  for (const auto& rec : records) {
    if (rec.u.n != options_.u_cols.size()) {
      return Status::Corruption("record arity mismatch");
    }
    if (rec.count == 0) return Status::Corruption("zero count record");
    auto [it, inserted] = map_[rec.u].emplace(rec.c_ordinal, rec.count);
    if (!inserted) return Status::Corruption("duplicate record");
    ++num_entries_;
  }
  return Status::OK();
}

}  // namespace corrmap
