// Physical designer (the paper's §8 conclusion / future work): given a
// workload of training queries and a space budget, choose
//   (a) the clustered attribute that maximizes exploitable correlations
//       across the workload, and
//   (b) a set of CMs (one recommended design per query, deduplicated)
//       fitting the budget.
// Candidate clusterings are scored by the summed per-query cost of the best
// access path under the §4 cost model, reusing the CM Advisor's estimation
// machinery. This is a deliberate, documented extension beyond the paper's
// evaluated system.
#ifndef CORRMAP_CORE_DESIGNER_H_
#define CORRMAP_CORE_DESIGNER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/advisor.h"
#include "exec/predicate.h"
#include "storage/table.h"

namespace corrmap {

struct DesignerConfig {
  AdvisorConfig advisor;
  /// Total bytes allowed for all recommended CMs.
  uint64_t space_budget_bytes = 16ull << 20;
  /// Clustered bucket target in pages (Table 3 sweet spot).
  uint64_t clustered_bucket_pages = 10;
};

/// One candidate clustering with its workload score.
struct ClusteringChoice {
  size_t clustered_col = 0;
  double workload_cost_ms = 0;  ///< sum of best per-query estimated costs
  size_t queries_helped = 0;    ///< queries where a CM beats the scan
};

/// The designer's final output.
struct PhysicalDesign {
  ClusteringChoice clustering;
  std::vector<CmDesign> cms;          ///< deduplicated, budget-constrained
  uint64_t total_cm_bytes = 0;
  std::vector<ClusteringChoice> considered;  ///< all scored candidates
};

/// Enumerates candidate clustered attributes (every column predicated by
/// the workload), scores each by re-clustering a scratch copy of the table
/// and running the Advisor per query, then picks the best clustering and a
/// CM set within the budget.
///
/// NOTE: scoring physically re-clusters a copy of `table` per candidate
/// (the designer is an offline tool, like the paper's Advisor).
Result<PhysicalDesign> DesignPhysicalLayout(const Table& table,
                                            const std::vector<Query>& workload,
                                            const DesignerConfig& config = {});

}  // namespace corrmap

#endif  // CORRMAP_CORE_DESIGNER_H_
