#include "obs/trace.h"

#include <algorithm>
#include <bit>

#include "common/value.h"

namespace corrmap::obs {

uint64_t FingerprintQuery(const Query& query) {
  // Combine per-predicate hashes order-insensitively (XOR of avalanched
  // per-predicate mixes): FindPredicateOn semantics make predicate order
  // irrelevant to planning, so it should not split trace groups either.
  uint64_t fp = 0x9e3779b97f4a7c15ULL;
  for (const Predicate& p : query.predicates()) {
    uint64_t h = Mix64(uint64_t(p.column()) * 0x100000001b3ULL ^
                       uint64_t(p.op()));
    if (p.op() == Predicate::Op::kRange) {
      h = Mix64(h ^ std::bit_cast<uint64_t>(p.lo()));
      h = Mix64(h ^ std::bit_cast<uint64_t>(p.hi()));
    } else {
      for (const Key& k : p.keys()) h = Mix64(h ^ k.Hash());
    }
    fp ^= h;
  }
  return Mix64(fp);
}

TraceRing::TraceRing(size_t capacity)
    : slots_(std::max<size_t>(1, capacity)) {}

uint64_t TraceRing::Push(const SelectTrace& t) {
  const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % slots_.size()];
  std::lock_guard<std::mutex> lock(slot.mu);
  // Two pushes a full lap apart can race to the same slot; the younger
  // sequence wins so the ring is always the most recent window.
  if (!slot.filled || slot.trace.seq < seq) {
    slot.trace = t;
    slot.trace.seq = seq;
    slot.filled = true;
  }
  return seq;
}

std::vector<SelectTrace> TraceRing::Snapshot() const {
  std::vector<SelectTrace> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.filled) out.push_back(slot.trace);
  }
  std::sort(out.begin(), out.end(),
            [](const SelectTrace& a, const SelectTrace& b) {
              return a.seq < b.seq;
            });
  return out;
}

SlowSelectLog::SlowSelectLog(size_t capacity)
    : cap_(std::max<size_t>(1, capacity)) {}

void SlowSelectLog::Offer(const SelectTrace& t) {
  const double floor = floor_ms_.load(std::memory_order_relaxed);
  if (floor >= 0 && t.actual_ms <= floor) return;  // full and too cheap
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() < cap_) {
    entries_.push_back(t);
  } else {
    auto min_it = std::min_element(entries_.begin(), entries_.end(),
                                   [](const SelectTrace& a,
                                      const SelectTrace& b) {
                                     return a.actual_ms < b.actual_ms;
                                   });
    if (t.actual_ms <= min_it->actual_ms) return;  // lost the race
    *min_it = t;
  }
  if (entries_.size() == cap_) {
    double new_floor = entries_.front().actual_ms;
    for (const SelectTrace& e : entries_) {
      new_floor = std::min(new_floor, e.actual_ms);
    }
    floor_ms_.store(new_floor, std::memory_order_relaxed);
  }
}

std::vector<SelectTrace> SlowSelectLog::Worst() const {
  std::vector<SelectTrace> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = entries_;
  }
  std::sort(out.begin(), out.end(),
            [](const SelectTrace& a, const SelectTrace& b) {
              return a.actual_ms > b.actual_ms;
            });
  return out;
}

}  // namespace corrmap::obs
