// Estimated-vs-actual cost drift, aggregated per plan kind per serving
// epoch: every cost-based select contributes (chosen plan's estimate,
// actual simulated cost) to its plan kind's accumulators, and the ratio
// actual/estimated says how miscalibrated the cost model currently is --
// a number instead of a vibe. Ratios near 1 mean the paper's model plus
// the live residency calibration is pricing what execution actually pays;
// a kind drifting past ~2x in either direction is the signal the ROADMAP's
// self-driving advisor needs to re-examine its plan choices.
//
// Epochs follow the engine's recluster swaps (AdvanceEpoch is called at
// publish): a recluster resets residency and rebuilds CMs, so per-epoch
// windows separate "calibrated steady state" from "cold successor".
// `lifetime` spans all epochs; `current` is the window since the last
// swap; `previous` is the last completed window (stable for readouts).
//
// Consistency: Record is two relaxed atomic adds per accumulator --
// concurrent with AdvanceEpoch a sample may land in either window (never
// lost from lifetime vs current by more than the in-flight sample), which
// is fine for a drift signal smoothed over hundreds of selects.
#ifndef CORRMAP_OBS_DRIFT_H_
#define CORRMAP_OBS_DRIFT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>

#include "exec/plan_choice.h"
#include "obs/metrics.h"

namespace corrmap::obs {

class DriftTracker {
 public:
  /// One slot per PlanKind value.
  static constexpr size_t kNumKinds = 4;

  struct KindDrift {
    uint64_t selects = 0;
    double est_ms = 0;
    double actual_ms = 0;
    /// actual/estimated; 0 when no estimate mass (no cost-based selects
    /// of this kind yet).
    double Ratio() const { return est_ms > 0 ? actual_ms / est_ms : 0; }
  };

  struct Snapshot {
    uint64_t epoch = 0;
    std::array<KindDrift, kNumKinds> current;
    std::array<KindDrift, kNumKinds> previous;
    std::array<KindDrift, kNumKinds> lifetime;
  };

  /// Accumulates one cost-based select. Callers skip selects without a
  /// real estimate (first-match mode never costs).
  void Record(PlanKind kind, double est_ms, double actual_ms);

  /// Closes the current window into `previous` and starts a fresh one
  /// (called at recluster publish).
  void AdvanceEpoch();

  Snapshot snapshot() const;

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> selects{0};
    std::atomic<double> est_ms{0};
    std::atomic<double> actual_ms{0};
  };

  std::array<Cell, kNumKinds> current_;
  std::array<Cell, kNumKinds> lifetime_;
  mutable std::mutex epoch_mu_;  ///< guards previous_ across window rolls
  std::array<KindDrift, kNumKinds> previous_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace corrmap::obs

#endif  // CORRMAP_OBS_DRIFT_H_
