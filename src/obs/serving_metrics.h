// The serving layer's observability bundle: one MetricsRegistry plus the
// trace ring, slow-select log, and drift tracker, with every hot-path
// series pre-resolved to a stable handle so instrumented code never pays a
// name lookup per operation.
//
// Wiring follows the shared_pool/shared_cache precedent: a ServingMetrics
// is attached through ServingOptions::metrics (null = no instrumentation,
// the zero-overhead default) and must outlive every engine/router/driver
// pointing at it. A ShardRouter shares one bundle across its shards --
// per-shard selects record their own traces and drift while the router
// adds routing counters and a router-level trace per scatter.
//
// Gauges for state that already lives elsewhere (buffer-pool ledgers,
// cache atomics, tail sizes, queue depths) are registered as callback
// gauges by whichever object owns that state (engine or router), and
// unregistered in its destructor; see ServingEngine::RegisterMetricsGauges.
#ifndef CORRMAP_OBS_SERVING_METRICS_H_
#define CORRMAP_OBS_SERVING_METRICS_H_

#include <cstddef>
#include <string>

#include "obs/drift.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace corrmap::obs {

struct ServingMetricsOptions {
  /// Most recent traces retained (TraceRing).
  size_t trace_ring_capacity = 1024;
  /// Worst traces by actual cost retained (SlowSelectLog).
  size_t slow_log_capacity = 16;
};

class ServingMetrics {
 public:
  explicit ServingMetrics(ServingMetricsOptions opts = {});
  ServingMetrics(const ServingMetrics&) = delete;
  ServingMetrics& operator=(const ServingMetrics&) = delete;

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  TraceRing& traces() { return traces_; }
  const TraceRing& traces() const { return traces_; }
  SlowSelectLog& slow_log() { return slow_; }
  const SlowSelectLog& slow_log() const { return slow_; }
  DriftTracker& drift() { return drift_; }
  const DriftTracker& drift() const { return drift_; }

  /// Records one engine-level select: counters, cost histograms, drift
  /// (cost-based traces only), the trace ring, and the slow log.
  void RecordSelect(const SelectTrace& t);

  /// Records one router-level scatter: routing counters plus the trace
  /// ring / slow log (per-shard executions already recorded themselves,
  /// so engine-level series are not double counted).
  void RecordRoutedSelect(const SelectTrace& t);

  /// Full snapshot: the registry's JSON under "registry", the drift
  /// tracker's per-kind windows under "drift", and the slow-select log
  /// under "slow_selects".
  std::string ToJson() const;

  /// Prometheus text of the registry (drift ratios are included as
  /// callback gauges registered by this bundle).
  std::string ToPrometheus() const;

  // --- Pre-resolved handles (hot path; never null). -----------------------
  // Engine select path.
  Counter* selects;  ///< serve_selects_total, one per ExecuteSelect
  Counter* plan_wins[DriftTracker::kNumKinds];  ///< per chosen PlanKind
  Counter* rows_examined;
  Counter* tail_rows_swept;
  Counter* cache_hit_selects;   ///< chosen CM's lookup was cached
  Counter* cache_miss_selects;  ///< every other select
  Histogram* select_actual_ms;  ///< simulated cost actually charged
  Histogram* select_est_ms;     ///< chosen plan's estimate (cost-based)
  Histogram* select_latency_us;  ///< driver-observed wall latency
  Histogram* queue_wait_us;      ///< worker-pool queue wait
  // Engine write path.
  Counter* appends;
  Counter* rows_appended;
  Counter* deletes;
  Counter* updates;
  Counter* write_conflicts;  ///< epoch-moved aborts (retry after re-resolve)
  // Recluster / compaction lifecycle.
  Counter* reclusters;
  Counter* compactions;
  Counter* recluster_tail_rows_merged;
  Counter* recluster_catch_up_rows;
  Counter* recluster_rows_compacted;
  Counter* recluster_tombstones_carried;
  Histogram* recluster_build_ms;  ///< phase 1 (fully concurrent)
  Histogram* recluster_swap_ms;   ///< phase 2 (writers blocked)
  // Durability (serve/durability.h): group-commit WAL and checkpoints.
  Counter* wal_flushes;   ///< serve_wal_flushes_total
  Counter* wal_records;   ///< row-op records logged
  Counter* wal_bytes;     ///< framed bytes made durable
  Counter* checkpoints;   ///< epoch-consistent snapshots taken
  Histogram* wal_group_commit_ops;  ///< committed ops per flush batch
  Histogram* recovery_ms;           ///< ServingEngine::Recover wall time
  // Router.
  Counter* router_selects;
  Counter* router_shards_visited;
  Counter* router_shards_pruned;
  Counter* router_cm_pruned;
  Counter* router_clustered_routed;
  /// Shard visits that degraded to their cheap plan because the scatter's
  /// cross-shard deliberation budget was exhausted.
  Counter* router_budget_degraded;
  /// Wall time of one shard's routed select (per visit, both scatter
  /// modes) -- under parallel scatter the merged trace's actual_ms tracks
  /// the max of these, this histogram keeps the distribution.
  Histogram* router_shard_visit_us;
  /// Shards visited by the most recent scatter (instantaneous fan-out).
  Gauge* router_scatter_fanout;

 private:
  MetricsRegistry registry_;
  TraceRing traces_;
  SlowSelectLog slow_;
  DriftTracker drift_;
};

}  // namespace corrmap::obs

#endif  // CORRMAP_OBS_SERVING_METRICS_H_
