// Process-wide serving observability: sharded atomic counters, gauges,
// lock-free log-bucketed latency histograms, and a name-keyed registry
// that exports everything as one JSON snapshot or Prometheus text.
//
// Design constraints, in order:
//   1. Hot-path writes must be cheap enough to leave on under full serving
//      load (the bench gates metrics-on throughput within a few percent of
//      metrics-off). Counter::Add is one relaxed fetch_add on a
//      cacheline-padded per-thread stripe; Histogram::Record is one
//      frexp, two relaxed fetch_adds and a CAS-max -- no locks anywhere.
//   2. Handles are stable: the registry hands out raw pointers that live
//      as long as the registry, so instrumented code resolves each series
//      once (at wiring time) and never pays a map lookup per operation.
//   3. Readers are relaxed: an export snapshots each series without
//      stopping writers, so sums/quantiles lag in-flight operations by at
//      most a few events but are never torn (each word is atomic).
//
// Histogram quantiles are log-bucketed: kSubBuckets sub-buckets per
// power-of-two octave bound the relative error of any reported quantile by
// half a bucket width (<= 1/(2*kSubBuckets) ~ 6.25%), which the golden
// tests in tests/obs_test.cc pin against exact sorted percentiles. Count,
// Sum/Mean and Max are exact.
#ifndef CORRMAP_OBS_METRICS_H_
#define CORRMAP_OBS_METRICS_H_

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

namespace corrmap::obs {

namespace internal {

/// Stable small index for the calling thread, used to spread counter
/// increments over stripes. Assigned once per thread, round-robin.
inline size_t ThisThreadStripe() {
  static std::atomic<size_t> next{0};
  thread_local const size_t idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

/// fetch_add for atomic<double> via CAS (portable across libstdc++
/// versions that predate C++20's atomic floating-point fetch_add).
inline void AtomicDoubleAdd(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

/// CAS-max for nonnegative doubles stored as ordered bit patterns (the
/// IEEE-754 bits of nonnegative doubles compare like the values).
inline void AtomicDoubleMax(std::atomic<uint64_t>& bits, double v) {
  if (v < 0) v = 0;
  uint64_t nb;
  std::memcpy(&nb, &v, sizeof nb);
  uint64_t cur = bits.load(std::memory_order_relaxed);
  while (cur < nb &&
         !bits.compare_exchange_weak(cur, nb, std::memory_order_relaxed)) {
  }
}

}  // namespace internal

/// Monotone event counter, sharded over cacheline-padded atomic stripes so
/// concurrent writers on different threads do not bounce one line.
class Counter {
 public:
  void Add(uint64_t n) {
    stripes_[internal::ThisThreadStripe() % kStripes].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Relaxed sum over stripes (may lag in-flight Adds, never torn).
  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Stripe& s : stripes_) {
      sum += s.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  static constexpr size_t kStripes = 8;
  struct alignas(64) Stripe {
    std::atomic<uint64_t> v{0};
  };
  Stripe stripes_[kStripes];
};

/// Last-write-wins scalar (point-in-time values: depths, sizes, ratios).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

/// Lock-free log-bucketed histogram of nonnegative samples (latencies,
/// simulated costs). See the file comment for the error bound.
class Histogram {
 public:
  /// Sub-buckets per power-of-two octave. 8 bounds quantile relative
  /// error by 1/(2*8) = 6.25% (half a bucket width).
  static constexpr size_t kSubBuckets = 8;
  /// Octaves cover [2^(kExpLo-1), 2^kExpHi): ~1e-6 .. ~4e9, microseconds
  /// to hours in either the us or ms unit domain. Samples outside land in
  /// the underflow/overflow buckets and still count exactly toward
  /// Count/Sum/Max.
  static constexpr int kExpLo = -20;
  static constexpr int kExpHi = 32;
  static constexpr size_t kNumBuckets =
      2 + size_t(kExpHi - kExpLo + 1) * kSubBuckets;

  void Record(double v) {
    counts_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    internal::AtomicDoubleAdd(sum_, v < 0 ? 0 : v);
    internal::AtomicDoubleMax(max_bits_, v);
  }

  uint64_t Count() const {
    uint64_t n = 0;
    for (const auto& c : counts_) n += c.load(std::memory_order_relaxed);
    return n;
  }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const {
    const uint64_t n = Count();
    return n > 0 ? Sum() / double(n) : 0;
  }
  /// Exact maximum recorded sample (0 before the first Record).
  double Max() const {
    const uint64_t bits = max_bits_.load(std::memory_order_relaxed);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  /// Quantile q in [0, 1] from the bucket midpoints, clamped to Max() so
  /// p100 (and any quantile landing in the last occupied bucket) never
  /// reports past an actually observed value. 0 when empty.
  double Quantile(double q) const;

  /// Sample bucket for `v` (exposed for the golden tests).
  static size_t BucketIndex(double v) {
    if (!(v > 0)) return 0;  // zeros, negatives, NaNs: underflow bucket
    int exp = 0;
    const double frac = std::frexp(v, &exp);  // v = frac * 2^exp
    if (exp < kExpLo) return 0;
    if (exp > kExpHi) return kNumBuckets - 1;
    const size_t sub = std::min(
        kSubBuckets - 1, size_t((frac - 0.5) * 2.0 * double(kSubBuckets)));
    return 1 + size_t(exp - kExpLo) * kSubBuckets + sub;
  }

  /// Midpoint of bucket `idx` (0 for the underflow bucket).
  static double BucketMid(size_t idx);

 private:
  std::atomic<uint64_t> counts_[kNumBuckets]{};
  std::atomic<double> sum_{0};
  std::atomic<uint64_t> max_bits_{0};
};

/// Name-keyed metric registry. Get-or-create returns stable handles (the
/// metric objects never move or die before the registry); callback gauges
/// let stats that already live elsewhere (buffer-pool ledgers, cache
/// atomics, queue depths) join the export without double bookkeeping --
/// the callback is invoked at export time, outside the registry lock.
///
/// Names should be Prometheus-safe ([a-zA-Z_][a-zA-Z0-9_]*); counters by
/// convention end in `_total`.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Registers (or replaces) a callback gauge evaluated at export time.
  /// The callback must stay valid until RemoveCallbackGauge(name) -- an
  /// instrumented object capturing `this` unregisters in its destructor.
  void RegisterCallbackGauge(const std::string& name,
                             std::function<double()> fn);
  void RemoveCallbackGauge(const std::string& name);

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, mean, p50, p90, p99, max}}}.
  /// Callback gauges are merged into "gauges". Keys sorted.
  std::string ToJson() const;

  /// Prometheus text exposition: counters and gauges as-is, histograms as
  /// summaries (quantile series plus _sum/_count/_max).
  std::string ToPrometheus() const;

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<double()>> callbacks_;
};

/// Shortest-round-trip double formatting that is always valid JSON
/// (non-finite values clamp to 0).
std::string FormatDouble(double v);

}  // namespace corrmap::obs

#endif  // CORRMAP_OBS_METRICS_H_
