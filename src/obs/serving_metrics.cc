#include "obs/serving_metrics.h"

namespace corrmap::obs {

namespace {

/// Snake-case PlanKind slug for series names ("serve_plan_wins_..._total").
const char* PlanKindSlug(size_t kind) {
  switch (PlanKind(kind)) {
    case PlanKind::kSeqScan:
      return "seq_scan";
    case PlanKind::kClusteredRange:
      return "clustered_range";
    case PlanKind::kSortedIndex:
      return "sorted_index";
    case PlanKind::kCmProbe:
      return "cm_probe";
  }
  return "unknown";
}

void AppendKindDriftJson(std::string* out,
                         const DriftTracker::KindDrift& d) {
  *out += "{\"selects\": " + std::to_string(d.selects);
  *out += ", \"est_ms\": " + FormatDouble(d.est_ms);
  *out += ", \"actual_ms\": " + FormatDouble(d.actual_ms);
  *out += ", \"ratio\": " + FormatDouble(d.Ratio());
  *out += "}";
}

void AppendDriftWindowJson(
    std::string* out,
    const std::array<DriftTracker::KindDrift, DriftTracker::kNumKinds>& w) {
  *out += "{";
  for (size_t k = 0; k < DriftTracker::kNumKinds; ++k) {
    if (k > 0) *out += ", ";
    *out += std::string("\"") + PlanKindSlug(k) + "\": ";
    AppendKindDriftJson(out, w[k]);
  }
  *out += "}";
}

}  // namespace

ServingMetrics::ServingMetrics(ServingMetricsOptions opts)
    : traces_(opts.trace_ring_capacity), slow_(opts.slow_log_capacity) {
  selects = registry_.counter("serve_selects_total");
  for (size_t k = 0; k < DriftTracker::kNumKinds; ++k) {
    plan_wins[k] = registry_.counter(std::string("serve_plan_wins_") +
                                     PlanKindSlug(k) + "_total");
  }
  rows_examined = registry_.counter("serve_rows_examined_total");
  tail_rows_swept = registry_.counter("serve_tail_rows_swept_total");
  cache_hit_selects = registry_.counter("serve_cm_cache_hit_selects_total");
  cache_miss_selects = registry_.counter("serve_cm_cache_miss_selects_total");
  select_actual_ms = registry_.histogram("serve_select_actual_ms");
  select_est_ms = registry_.histogram("serve_select_est_ms");
  select_latency_us = registry_.histogram("serve_select_latency_us");
  queue_wait_us = registry_.histogram("serve_queue_wait_us");
  appends = registry_.counter("serve_appends_total");
  rows_appended = registry_.counter("serve_rows_appended_total");
  deletes = registry_.counter("serve_deletes_total");
  updates = registry_.counter("serve_updates_total");
  write_conflicts = registry_.counter("serve_write_conflicts_total");
  reclusters = registry_.counter("serve_reclusters_total");
  compactions = registry_.counter("serve_compactions_total");
  recluster_tail_rows_merged =
      registry_.counter("serve_recluster_tail_rows_merged_total");
  recluster_catch_up_rows =
      registry_.counter("serve_recluster_catch_up_rows_total");
  recluster_rows_compacted =
      registry_.counter("serve_recluster_rows_compacted_total");
  recluster_tombstones_carried =
      registry_.counter("serve_recluster_tombstones_carried_total");
  recluster_build_ms = registry_.histogram("serve_recluster_build_ms");
  recluster_swap_ms = registry_.histogram("serve_recluster_swap_ms");
  wal_flushes = registry_.counter("serve_wal_flushes_total");
  wal_records = registry_.counter("serve_wal_records_total");
  wal_bytes = registry_.counter("serve_wal_bytes_total");
  checkpoints = registry_.counter("serve_checkpoints_total");
  wal_group_commit_ops = registry_.histogram("serve_wal_group_commit_ops");
  recovery_ms = registry_.histogram("serve_recovery_ms");
  router_selects = registry_.counter("router_selects_total");
  router_shards_visited = registry_.counter("router_shards_visited_total");
  router_shards_pruned = registry_.counter("router_shards_pruned_total");
  router_cm_pruned = registry_.counter("router_cm_pruned_selects_total");
  router_clustered_routed =
      registry_.counter("router_clustered_routed_selects_total");
  router_budget_degraded =
      registry_.counter("router_budget_degraded_visits_total");
  router_shard_visit_us = registry_.histogram("router_shard_visit_us");
  router_scatter_fanout = registry_.gauge("router_scatter_fanout");
  // Lifetime drift ratios join every registry export as callback gauges
  // (the bundle owns the tracker, so these callbacks cannot dangle).
  for (size_t k = 0; k < DriftTracker::kNumKinds; ++k) {
    registry_.RegisterCallbackGauge(
        std::string("serve_drift_ratio_") + PlanKindSlug(k),
        [this, k] { return drift_.snapshot().lifetime[k].Ratio(); });
  }
  registry_.RegisterCallbackGauge(
      "serve_drift_epoch", [this] { return double(drift_.snapshot().epoch); });
}

void ServingMetrics::RecordSelect(const SelectTrace& t) {
  selects->Increment();
  plan_wins[size_t(t.plan_kind) % DriftTracker::kNumKinds]->Increment();
  rows_examined->Add(t.rows_examined);
  tail_rows_swept->Add(t.tail_rows_swept);
  (t.cache_hit ? cache_hit_selects : cache_miss_selects)->Increment();
  select_actual_ms->Record(t.actual_ms);
  if (t.cost_based && t.est_ms > 0) {
    select_est_ms->Record(t.est_ms);
    drift_.Record(t.plan_kind, t.est_ms, t.actual_ms);
  }
  traces_.Push(t);
  slow_.Offer(t);
}

void ServingMetrics::RecordRoutedSelect(const SelectTrace& t) {
  router_selects->Increment();
  router_shards_visited->Add(t.shards_visited);
  router_shards_pruned->Add(t.shards_pruned);
  if (t.shards_degraded > 0) router_budget_degraded->Add(t.shards_degraded);
  router_scatter_fanout->Set(double(t.shards_visited));
  traces_.Push(t);
  slow_.Offer(t);
}

std::string ServingMetrics::ToJson() const {
  const DriftTracker::Snapshot drift = drift_.snapshot();
  std::string out = "{\"registry\": " + registry_.ToJson();
  out += ", \"drift\": {\"epoch\": " + std::to_string(drift.epoch);
  out += ", \"current\": ";
  AppendDriftWindowJson(&out, drift.current);
  out += ", \"previous\": ";
  AppendDriftWindowJson(&out, drift.previous);
  out += ", \"lifetime\": ";
  AppendDriftWindowJson(&out, drift.lifetime);
  out += "}, \"slow_selects\": [";
  bool first = true;
  for (const SelectTrace& t : slow_.Worst()) {
    if (!first) out += ", ";
    first = false;
    out += "{\"seq\": " + std::to_string(t.seq);
    // 64-bit fingerprints exceed JSON's exact-integer range; ship as a
    // string so parsers round-trip them.
    out += ", \"fingerprint\": \"" + std::to_string(t.fingerprint) + "\"";
    out += ", \"epoch\": " + std::to_string(t.epoch);
    out += std::string(", \"plan\": \"") +
           PlanKindSlug(size_t(t.plan_kind)) + "\"";
    out += std::string(", \"from_router\": ") +
           (t.from_router ? "true" : "false");
    out +=
        std::string(", \"cache_hit\": ") + (t.cache_hit ? "true" : "false");
    out += ", \"est_ms\": " + FormatDouble(t.est_ms);
    out += ", \"actual_ms\": " + FormatDouble(t.actual_ms);
    out += ", \"matches\": " + std::to_string(t.num_matches);
    out += ", \"rows_examined\": " + std::to_string(t.rows_examined);
    out += ", \"tail_rows_swept\": " + std::to_string(t.tail_rows_swept);
    out += ", \"shards_visited\": " + std::to_string(t.shards_visited);
    out += ", \"shards_pruned\": " + std::to_string(t.shards_pruned);
    out += ", \"candidates\": " + std::to_string(t.num_candidates);
    if (t.from_router) {
      // Router-merged entries: actual_ms above is the critical-path max;
      // the sums and the per-shard breakdown keep the full story.
      out += ", \"sum_est_ms\": " + FormatDouble(t.sum_est_ms);
      out += ", \"sum_actual_ms\": " + FormatDouble(t.sum_actual_ms);
      out += ", \"cache_hit_shards\": " + std::to_string(t.cache_hit_shards);
      out += ", \"shards_degraded\": " + std::to_string(t.shards_degraded);
      out += ", \"shard_actual_ms\": [";
      for (uint32_t i = 0; i < t.num_shard_actuals; ++i) {
        if (i > 0) out += ", ";
        out += FormatDouble(t.shard_actual_ms[i]);
      }
      out += "]";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string ServingMetrics::ToPrometheus() const {
  return registry_.ToPrometheus();
}

}  // namespace corrmap::obs
