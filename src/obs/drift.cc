#include "obs/drift.h"

namespace corrmap::obs {

void DriftTracker::Record(PlanKind kind, double est_ms, double actual_ms) {
  const size_t k = size_t(kind) < kNumKinds ? size_t(kind) : 0;
  for (Cell* cell : {&current_[k], &lifetime_[k]}) {
    cell->selects.fetch_add(1, std::memory_order_relaxed);
    internal::AtomicDoubleAdd(cell->est_ms, est_ms);
    internal::AtomicDoubleAdd(cell->actual_ms, actual_ms);
  }
}

void DriftTracker::AdvanceEpoch() {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  for (size_t k = 0; k < kNumKinds; ++k) {
    KindDrift closed;
    closed.selects = current_[k].selects.exchange(0,
                                                  std::memory_order_relaxed);
    closed.est_ms = current_[k].est_ms.exchange(0, std::memory_order_relaxed);
    closed.actual_ms =
        current_[k].actual_ms.exchange(0, std::memory_order_relaxed);
    previous_[k] = closed;
  }
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

DriftTracker::Snapshot DriftTracker::snapshot() const {
  Snapshot out;
  std::lock_guard<std::mutex> lock(epoch_mu_);
  out.epoch = epoch_.load(std::memory_order_relaxed);
  out.previous = previous_;
  for (size_t k = 0; k < kNumKinds; ++k) {
    out.current[k].selects = current_[k].selects.load(
        std::memory_order_relaxed);
    out.current[k].est_ms = current_[k].est_ms.load(std::memory_order_relaxed);
    out.current[k].actual_ms =
        current_[k].actual_ms.load(std::memory_order_relaxed);
    out.lifetime[k].selects =
        lifetime_[k].selects.load(std::memory_order_relaxed);
    out.lifetime[k].est_ms =
        lifetime_[k].est_ms.load(std::memory_order_relaxed);
    out.lifetime[k].actual_ms =
        lifetime_[k].actual_ms.load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace corrmap::obs
