#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <utility>
#include <vector>

namespace corrmap::obs {

double Histogram::Quantile(double q) const {
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample, 1-based: the smallest bucket whose cumulative
  // count reaches it holds the answer.
  const uint64_t rank = std::max<uint64_t>(1, uint64_t(std::ceil(q * double(total))));
  uint64_t cum = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cum += counts[i];
    if (cum >= rank) return std::min(BucketMid(i), Max());
  }
  return Max();
}

double Histogram::BucketMid(size_t idx) {
  if (idx == 0) return 0;
  if (idx >= kNumBuckets) idx = kNumBuckets - 1;
  const size_t oct = (idx - 1) / kSubBuckets;
  const size_t sub = (idx - 1) % kSubBuckets;
  // Bucket [lo, hi) with lo = 2^(exp-1) * (1 + sub/kSub); the midpoint
  // halves the bucket-width error relative to reporting an edge.
  const int exp = kExpLo + int(oct);
  const double base = std::ldexp(1.0, exp - 1);
  return base * (1.0 + (double(sub) + 0.5) / double(kSubBuckets));
}

Counter* MetricsRegistry::counter(const std::string& name) {
  {
    std::shared_lock lock(mu_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return it->second.get();
  }
  std::unique_lock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  {
    std::shared_lock lock(mu_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return it->second.get();
  }
  std::unique_lock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  {
    std::shared_lock lock(mu_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second.get();
  }
  std::unique_lock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::RegisterCallbackGauge(const std::string& name,
                                            std::function<double()> fn) {
  std::unique_lock lock(mu_);
  callbacks_[name] = std::move(fn);
}

void MetricsRegistry::RemoveCallbackGauge(const std::string& name) {
  std::unique_lock lock(mu_);
  callbacks_.erase(name);
}

std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "0";
  // Integers (the common case for counters exported as gauges) print
  // without a fractional part; everything else round-trips via %.17g.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

namespace {

/// Callback gauges evaluated outside the registry lock (a callback may
/// take other locks, e.g. buffer-pool stripes).
std::vector<std::pair<std::string, double>> EvalCallbacks(
    const std::map<std::string, std::function<double()>>& callbacks,
    std::shared_mutex& mu) {
  std::vector<std::pair<std::string, std::function<double()>>> fns;
  {
    std::shared_lock lock(mu);
    fns.reserve(callbacks.size());
    for (const auto& [name, fn] : callbacks) fns.emplace_back(name, fn);
  }
  std::vector<std::pair<std::string, double>> out;
  out.reserve(fns.size());
  for (const auto& [name, fn] : fns) out.emplace_back(name, fn());
  return out;
}

void AppendHistogramJson(std::string* out, const Histogram& h) {
  *out += "{\"count\": " + std::to_string(h.Count());
  *out += ", \"sum\": " + FormatDouble(h.Sum());
  *out += ", \"mean\": " + FormatDouble(h.Mean());
  *out += ", \"p50\": " + FormatDouble(h.Quantile(0.50));
  *out += ", \"p90\": " + FormatDouble(h.Quantile(0.90));
  *out += ", \"p99\": " + FormatDouble(h.Quantile(0.99));
  *out += ", \"max\": " + FormatDouble(h.Max());
  *out += "}";
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  const auto cb = EvalCallbacks(callbacks_, mu_);
  std::shared_lock lock(mu_);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": " + std::to_string(c->Value());
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": " + FormatDouble(g->Value());
  }
  for (const auto& [name, v] : cb) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": " + FormatDouble(v);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": ";
    AppendHistogramJson(&out, *h);
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::ToPrometheus() const {
  const auto cb = EvalCallbacks(callbacks_, mu_);
  std::shared_lock lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c->Value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + FormatDouble(g->Value()) + "\n";
  }
  for (const auto& [name, v] : cb) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + FormatDouble(v) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += "# TYPE " + name + " summary\n";
    for (const double q : {0.5, 0.9, 0.99}) {
      out += name + "{quantile=\"" + FormatDouble(q) + "\"} " +
             FormatDouble(h->Quantile(q)) + "\n";
    }
    out += name + "_sum " + FormatDouble(h->Sum()) + "\n";
    out += name + "_count " + std::to_string(h->Count()) + "\n";
    out += name + "_max " + FormatDouble(h->Max()) + "\n";
  }
  return out;
}

}  // namespace corrmap::obs
