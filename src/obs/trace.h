// Per-select query traces: every ServingEngine::ExecuteSelect (and every
// routed ShardRouter select) records one compact SelectTrace -- predicate
// fingerprint, the candidates deliberated with their estimates, the chosen
// plan, the actual simulated cost, shards visited/pruned, cache hit/miss,
// tail rows swept -- into a fixed-size ring overwritten oldest-first, plus
// a slow-select log retaining the worst traces by actual cost.
//
// Traces are flat PODs so recording is a struct copy under one slot mutex
// (slots are independent; concurrent selects contend only when they hash
// to the same ring slot). The ring answers "what ran recently"; the slow
// log answers "what hurt"; the drift tracker (obs/drift.h) aggregates the
// est-vs-actual signal both carry.
#ifndef CORRMAP_OBS_TRACE_H_
#define CORRMAP_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "exec/plan_choice.h"
#include "exec/predicate.h"

namespace corrmap::obs {

/// One deliberated candidate, compressed to what drift analysis needs.
struct TraceCandidate {
  PlanKind kind = PlanKind::kSeqScan;
  uint32_t slot = 0;
  double est_ms = 0;
};

/// Candidates retained per trace; deliberations enumerate few (scan +
/// clustered + attached CMs/indexes), so 6 covers the common case and
/// num_candidates still reports the true count when it overflows.
inline constexpr size_t kTraceCandidateCap = 6;

/// Per-shard actuals retained on a router-merged trace; scatters mostly
/// fan out to few shards, and shards_visited reports the true fan-out
/// when it overflows.
inline constexpr size_t kTraceShardCap = 8;

/// Compact record of one select. `seq` is assigned by the ring (global
/// recording order); router-level traces set from_router and the shard
/// fields, per-shard traces carry the plan/cost detail.
struct SelectTrace {
  uint64_t seq = 0;
  uint64_t fingerprint = 0;  ///< FingerprintQuery of the predicate set
  uint64_t epoch = 0;        ///< recluster epoch that served it
  PlanKind plan_kind = PlanKind::kSeqScan;
  bool cost_based = false;  ///< deliberated (est_ms meaningful) vs first-match
  bool cache_hit = false;   ///< chosen CM's lookup came from the shared cache
  bool from_router = false;
  double est_ms = 0;     ///< chosen plan's estimate (0 under first-match)
  double actual_ms = 0;  ///< simulated cost actually charged
  uint64_t num_matches = 0;
  uint64_t rows_examined = 0;
  uint64_t tail_rows_swept = 0;
  uint32_t shards_visited = 0;
  uint32_t shards_pruned = 0;
  uint32_t num_candidates = 0;  ///< deliberated (may exceed num_recorded)
  uint32_t num_recorded = 0;    ///< filled entries of candidates[]
  TraceCandidate candidates[kTraceCandidateCap];

  // Router-merged traces only (from_router). est_ms/actual_ms above carry
  // the critical-path MAXIMUM over the visited shards -- the latency a
  // parallel gather pays, directly comparable with engine-level traces in
  // the slow log -- while the sums below keep the partition-wide totals.
  // cache_hit is true only when EVERY visited shard's chosen lookup hit
  // (a scatter is cached only if wholly served from cache);
  // cache_hit_shards counts the hits instead of OR-ing them away.
  double sum_est_ms = 0;
  double sum_actual_ms = 0;
  uint32_t cache_hit_shards = 0;
  uint32_t shards_degraded = 0;  ///< shards the scatter budget degraded
  /// Per-shard actual costs, in ascending order of the visited shard
  /// indexes; shards_visited still reports the true count when it
  /// overflows the cap.
  uint32_t num_shard_actuals = 0;
  double shard_actual_ms[kTraceShardCap] = {};
};

/// Order-insensitive fingerprint of a query's predicate set (column, op,
/// keys/bounds). Two selects with the same predicates fingerprint equal,
/// so trace analysis can group by query shape.
uint64_t FingerprintQuery(const Query& query);

/// Fixed-capacity ring of the most recent traces, overwritten
/// oldest-first. Push assigns a global sequence number; Snapshot returns
/// the retained traces in ascending recording order.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 1024);
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Records `t` (seq overwritten), evicting the trace `capacity` pushes
  /// older. Returns the assigned sequence number.
  uint64_t Push(const SelectTrace& t);

  /// Retained traces, ascending seq (oldest surviving first).
  std::vector<SelectTrace> Snapshot() const;

  /// Total traces ever pushed (>= capacity() means the ring has wrapped).
  uint64_t TotalRecorded() const {
    return seq_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    mutable std::mutex mu;
    SelectTrace trace;
    bool filled = false;
  };
  std::vector<Slot> slots_;
  std::atomic<uint64_t> seq_{0};
};

/// Keeps the `capacity` worst traces seen, by actual simulated cost. The
/// fast path is one relaxed load: once the log is full, a trace cheaper
/// than the current floor returns without locking.
class SlowSelectLog {
 public:
  explicit SlowSelectLog(size_t capacity = 16);
  SlowSelectLog(const SlowSelectLog&) = delete;
  SlowSelectLog& operator=(const SlowSelectLog&) = delete;

  void Offer(const SelectTrace& t);

  /// Retained traces, worst (highest actual_ms) first.
  std::vector<SelectTrace> Worst() const;

  size_t capacity() const { return cap_; }

 private:
  const size_t cap_;
  /// Cheapest retained cost once full; -1 while the log still has room
  /// (every offer must take the lock until then).
  std::atomic<double> floor_ms_{-1.0};
  mutable std::mutex mu_;
  std::vector<SelectTrace> entries_;
};

}  // namespace corrmap::obs

#endif  // CORRMAP_OBS_TRACE_H_
