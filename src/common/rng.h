// Deterministic pseudo-random number generation for workload generators and
// sampling. All generators are seeded explicitly so every dataset, sample,
// and experiment is reproducible run-to-run.
#ifndef CORRMAP_COMMON_RNG_H_
#define CORRMAP_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/value.h"

namespace corrmap {

/// xoshiro256++ generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) {
    // Seed the state with splitmix64, as recommended by the authors.
    uint64_t x = seed;
    for (auto& si : s_) {
      si = Mix64(x);
      x += 0x9e3779b97f4a7c15ULL;
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  result_type operator()() {
    const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>((*this)() % span);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    const double u = static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    return lo + u * (hi - lo);
  }

  /// Standard normal via Box-Muller (no cached spare; simple and stateless).
  double Gaussian(double mean, double stddev) {
    double u1 = UniformDouble(std::numeric_limits<double>::min(), 1.0);
    double u2 = UniformDouble(0.0, 1.0);
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return mean + stddev * z;
  }

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble(0.0, 1.0) < p; }

  /// Zipf-distributed integer in [1, n] with exponent theta (rejection-
  /// inversion; exact for the benchmark scales used here).
  int64_t Zipf(int64_t n, double theta) {
    // Precomputing zeta is the caller's job for tight loops; this is the
    // simple path used by generators at build time.
    double zeta = 0.0;
    for (int64_t i = 1; i <= n; ++i) zeta += 1.0 / std::pow(double(i), theta);
    double u = UniformDouble(0.0, 1.0) * zeta;
    double sum = 0.0;
    for (int64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(double(i), theta);
      if (sum >= u) return i;
    }
    return n;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace corrmap

#endif  // CORRMAP_COMMON_RNG_H_
