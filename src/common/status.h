// Status / Result error-handling primitives (RocksDB-style, no exceptions on
// hot paths).
#ifndef CORRMAP_COMMON_STATUS_H_
#define CORRMAP_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace corrmap {

/// Outcome of a fallible operation. Cheap to copy when OK (no allocation).
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kOutOfRange,
    kCorruption,
    kNotSupported,
    kInternal,
    kResourceExhausted,
    kAborted,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  /// Optimistic-concurrency conflict: the state the caller resolved
  /// against has moved (e.g. an epoch swap permuted row ids); re-resolve
  /// and retry.
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bucket width must be
  /// positive".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + msg_;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static const char* CodeName(Code c) {
    switch (c) {
      case Code::kOk: return "OK";
      case Code::kInvalidArgument: return "InvalidArgument";
      case Code::kNotFound: return "NotFound";
      case Code::kAlreadyExists: return "AlreadyExists";
      case Code::kOutOfRange: return "OutOfRange";
      case Code::kCorruption: return "Corruption";
      case Code::kNotSupported: return "NotSupported";
      case Code::kInternal: return "Internal";
      case Code::kResourceExhausted: return "ResourceExhausted";
      case Code::kAborted: return "Aborted";
    }
    return "Unknown";
  }

  Code code_;
  std::string msg_;
};

/// Either a value of type T or an error Status. Dereferencing a non-OK
/// Result aborts in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {    // NOLINT(runtime/explicit)
    assert(!std::get<Status>(v_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  T& value() {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const {
    assert(ok());
    return std::get<T>(v_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace corrmap

#endif  // CORRMAP_COMMON_STATUS_H_
