// Aligned text-table rendering for benchmark output. Every bench binary
// prints paper-style rows through this, so EXPERIMENTS.md and the benches
// share one format.
#ifndef CORRMAP_COMMON_TABLE_PRINTER_H_
#define CORRMAP_COMMON_TABLE_PRINTER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace corrmap {

/// Collects rows of string cells and prints them with padded columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; pads or truncates to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Formats a double with the given precision (helper for callers).
  static std::string Fmt(double v, int precision = 2);
  static std::string FmtBytes(uint64_t bytes);

  /// Renders the table (header, separator, rows) to `os`.
  void Print(std::ostream& os) const;

  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace corrmap

#endif  // CORRMAP_COMMON_TABLE_PRINTER_H_
