// Append-only string dictionary used by string-typed columns. Values are
// stored once; columns hold int64 codes. Codes are assigned in first-seen
// order and are stable for the lifetime of the pool.
#ifndef CORRMAP_COMMON_STRING_POOL_H_
#define CORRMAP_COMMON_STRING_POOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace corrmap {

/// Per-column dictionary: string <-> int64 code.
class StringPool {
 public:
  /// Returns the code for `s`, interning it if new.
  int64_t Intern(std::string_view s);

  /// Returns the code for `s`, or -1 if it has never been interned.
  int64_t Find(std::string_view s) const;

  /// Returns the string for a code; aborts on out-of-range codes.
  const std::string& Get(int64_t code) const;

  size_t size() const { return strings_.size(); }

  /// Approximate heap footprint in bytes (string payloads + code table).
  size_t MemoryBytes() const;

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, int64_t> codes_;
};

}  // namespace corrmap

#endif  // CORRMAP_COMMON_STRING_POOL_H_
