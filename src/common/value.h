// Logical values, physical keys, and composite keys shared by the storage
// engine, indexes, and correlation maps.
#ifndef CORRMAP_COMMON_VALUE_H_
#define CORRMAP_COMMON_VALUE_H_

#include <array>
#include <bit>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

namespace corrmap {

/// Logical column types. Strings are dictionary-encoded in storage; their
/// physical representation is an int64 dictionary code.
enum class ValueType : uint8_t { kInt64 = 0, kDouble = 1, kString = 2 };

/// Returns a short human-readable name ("int64", "double", "string").
const char* ValueTypeName(ValueType t);

/// A logical value as seen at API boundaries (query literals, tuples).
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  Value(int64_t v) : v_(v) {}                 // NOLINT(runtime/explicit)
  Value(int v) : v_(int64_t{v}) {}            // NOLINT(runtime/explicit)
  Value(double v) : v_(v) {}                  // NOLINT(runtime/explicit)
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT(runtime/explicit)

  ValueType type() const { return static_cast<ValueType>(v_.index()); }
  bool is_int64() const { return type() == ValueType::kInt64; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }

  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Numeric view: int64 widened to double; aborts on strings.
  double NumericValue() const {
    return is_int64() ? static_cast<double>(AsInt64()) : AsDouble();
  }

  std::string ToString() const;

  auto operator<=>(const Value&) const = default;
  bool operator==(const Value&) const = default;

 private:
  std::variant<int64_t, double, std::string> v_;
};

/// A physical scalar key: the on-page encoding of one attribute value.
/// Strings appear here as their dictionary codes, so a Key is always an
/// int64 or a double. Keys from the same column are homogeneous, which makes
/// the variant ordering (type index first) safe.
class Key {
 public:
  Key() : v_(int64_t{0}) {}
  explicit Key(int64_t v) : v_(v) {}
  explicit Key(double v) : v_(v) {}

  bool is_double() const { return std::holds_alternative<double>(v_); }
  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }

  /// Numeric view regardless of physical type.
  double Numeric() const {
    return is_double() ? AsDouble() : static_cast<double>(AsInt64());
  }

  std::string ToString() const;

  auto operator<=>(const Key&) const = default;
  bool operator==(const Key&) const = default;

  /// 64-bit hash (splitmix-based avalanche over the raw bits).
  uint64_t Hash() const;

 private:
  std::variant<int64_t, double> v_;
};

/// Maximum number of attributes in a composite CM / index key. The paper's
/// composite designs use at most four attributes (Table 4 / Experiment 5).
inline constexpr size_t kMaxCmAttributes = 4;

/// Inline capacity of CompositeKey: up to kMaxCmAttributes unclustered
/// parts plus one clustered part (statistics pair the two, §4.2).
inline constexpr size_t kMaxCompositeKeyParts = kMaxCmAttributes + 1;

/// A fixed-capacity composite key. Avoids per-key heap allocation on the
/// index and CM hot paths.
class CompositeKey {
 public:
  CompositeKey() : n_(0) {}
  explicit CompositeKey(Key k) : n_(1) { parts_[0] = k; }
  CompositeKey(std::initializer_list<Key> keys);

  /// Appends one part; aborts if capacity is exceeded.
  void Append(Key k);

  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  const Key& operator[](size_t i) const { return parts_[i]; }
  Key& operator[](size_t i) { return parts_[i]; }

  std::string ToString() const;
  uint64_t Hash() const;

  std::strong_ordering operator<=>(const CompositeKey& o) const;
  bool operator==(const CompositeKey& o) const;

 private:
  std::array<Key, kMaxCompositeKeyParts> parts_;
  uint8_t n_;
};

/// Order-preserving 64-bit encoding of a double: the resulting int64
/// compares exactly like the source double (negatives below positives,
/// magnitude order preserved within each sign), so encoded ordinals can be
/// binary-searched and coalesced into ranges. -0.0 is canonicalized to +0.0
/// first so the two zeros encode identically (they are equal as values).
/// A raw bit_cast does NOT have this property: negative doubles sort
/// descending by bit pattern.
inline int64_t OrderedDoubleOrdinal(double v) {
  if (v == 0.0) v = 0.0;  // collapse -0.0 onto +0.0
  const uint64_t bits = std::bit_cast<uint64_t>(v);
  // Negative doubles: flip the magnitude bits so larger magnitude sorts
  // lower; the sign bit stays set, keeping them below all positives.
  const uint64_t ordered =
      (bits >> 63) ? (bits ^ 0x7fffffffffffffffULL) : bits;
  return std::bit_cast<int64_t>(ordered);
}

/// Inverse of OrderedDoubleOrdinal.
inline double OrderedOrdinalToDouble(int64_t ordinal) {
  uint64_t bits = std::bit_cast<uint64_t>(ordinal);
  if (bits >> 63) bits ^= 0x7fffffffffffffffULL;
  return std::bit_cast<double>(bits);
}

/// splitmix64 finalizer; the basis of all hashing in the library.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct KeyHash {
  size_t operator()(const Key& k) const { return k.Hash(); }
};
struct CompositeKeyHash {
  size_t operator()(const CompositeKey& k) const { return k.Hash(); }
};

}  // namespace corrmap

#endif  // CORRMAP_COMMON_VALUE_H_
