#include "common/value.h"

#include <bit>
#include <cassert>
#include <cstdio>

namespace corrmap {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt64: return "int64";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
  }
  return "unknown";
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64: return std::to_string(AsInt64());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", AsDouble());
      return buf;
    }
    case ValueType::kString: return AsString();
  }
  return "?";
}

std::string Key::ToString() const {
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", AsDouble());
    return buf;
  }
  return std::to_string(AsInt64());
}

uint64_t Key::Hash() const {
  if (is_double()) {
    // Normalize -0.0 to +0.0 so equal keys hash equally.
    double d = AsDouble();
    if (d == 0.0) d = 0.0;
    return Mix64(std::bit_cast<uint64_t>(d) ^ 0xd6e8feb86659fd93ULL);
  }
  return Mix64(static_cast<uint64_t>(AsInt64()));
}

CompositeKey::CompositeKey(std::initializer_list<Key> keys) : n_(0) {
  for (const Key& k : keys) Append(k);
}

void CompositeKey::Append(Key k) {
  assert(n_ < kMaxCompositeKeyParts);
  parts_[n_++] = k;
}

std::string CompositeKey::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < n_; ++i) {
    if (i > 0) out += ", ";
    out += parts_[i].ToString();
  }
  out += ")";
  return out;
}

uint64_t CompositeKey::Hash() const {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (size_t i = 0; i < n_; ++i) {
    h = Mix64(h ^ parts_[i].Hash());
  }
  return h;
}

std::strong_ordering CompositeKey::operator<=>(const CompositeKey& o) const {
  const size_t n = n_ < o.n_ ? n_ : o.n_;
  for (size_t i = 0; i < n; ++i) {
    auto c = parts_[i] <=> o.parts_[i];
    if (c != std::partial_ordering::equivalent) {
      // Keys within one column are homogeneous; NaNs are not stored.
      return c == std::partial_ordering::less ? std::strong_ordering::less
                                              : std::strong_ordering::greater;
    }
  }
  return n_ <=> o.n_;
}

bool CompositeKey::operator==(const CompositeKey& o) const {
  if (n_ != o.n_) return false;
  for (size_t i = 0; i < n_; ++i) {
    if (!(parts_[i] == o.parts_[i])) return false;
  }
  return true;
}

}  // namespace corrmap
