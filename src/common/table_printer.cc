#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace corrmap {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::FmtBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= (1ULL << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", double(bytes) / double(1ULL << 30));
  } else if (bytes >= (1ULL << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", double(bytes) / double(1ULL << 20));
  } else if (bytes >= (1ULL << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", double(bytes) / double(1ULL << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < headers_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << " " << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace corrmap
