#include "common/string_pool.h"

#include <cassert>

namespace corrmap {

int64_t StringPool::Intern(std::string_view s) {
  auto it = codes_.find(std::string(s));
  if (it != codes_.end()) return it->second;
  const int64_t code = static_cast<int64_t>(strings_.size());
  strings_.emplace_back(s);
  codes_.emplace(strings_.back(), code);
  return code;
}

int64_t StringPool::Find(std::string_view s) const {
  auto it = codes_.find(std::string(s));
  return it == codes_.end() ? -1 : it->second;
}

const std::string& StringPool::Get(int64_t code) const {
  assert(code >= 0 && static_cast<size_t>(code) < strings_.size());
  return strings_[static_cast<size_t>(code)];
}

size_t StringPool::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& s : strings_) bytes += s.size() + sizeof(std::string);
  bytes += codes_.size() * (sizeof(int64_t) + sizeof(void*) * 2);
  return bytes;
}

}  // namespace corrmap
