// Gibbons' Distinct Sampling (VLDB 2001): single-attribute cardinality
// estimation with one full scan and bounded memory. The paper uses DS for
// single-attribute cardinalities because sampling-only estimators are too
// inaccurate for design decisions (§4.2).
//
// Sketch: each value is hashed; a value enters the sample only if its hash
// has at least `level` trailing zero bits. When the sample overflows the
// budget, the level increments and the sample is pruned. The estimate is
// |distinct values in sample| * 2^level.
#ifndef CORRMAP_STATS_DISTINCT_SAMPLING_H_
#define CORRMAP_STATS_DISTINCT_SAMPLING_H_

#include <cstdint>
#include <unordered_set>

#include "common/value.h"
#include "storage/table.h"

namespace corrmap {

/// Streaming distinct-count sketch for one attribute.
class DistinctSampler {
 public:
  /// `max_sample_size`: distinct values retained before level promotion.
  explicit DistinctSampler(size_t max_sample_size = 8192);

  /// Offers one value to the sketch.
  void Add(const Key& key);

  /// Current cardinality estimate.
  double Estimate() const;

  int level() const { return level_; }
  size_t sample_size() const { return sample_.size(); }

  /// Convenience: one-pass estimate over a table column (skips deleted rows).
  static double EstimateColumn(const Table& table, size_t col,
                               size_t max_sample_size = 8192);

 private:
  void Promote();

  size_t max_sample_size_;
  int level_ = 0;
  std::unordered_set<uint64_t> sample_;  // hashes of retained values
};

}  // namespace corrmap

#endif  // CORRMAP_STATS_DISTINCT_SAMPLING_H_
