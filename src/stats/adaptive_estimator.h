// Sample-based distinct-value estimation for composite attributes
// (Charikar et al., PODS 2000 family). The CM Advisor cannot afford a
// Distinct Sampling scan per candidate attribute combination, so it
// estimates composite cardinalities from one in-memory random sample
// (paper §4.2, §6.1.3: ~30,000 tuples, ~5 ms per candidate design).
//
// Implemented estimators:
//  * GEE  (Guaranteed-Error Estimator): sqrt(n/r) * f1 + sum_{j>=2} f_j.
//  * AE   (adaptive): GEE blended with a Chao-style rare-value correction
//         (d + f1^2 / (2*f2)) chosen by the sample's observed skew. The
//         advisor depends only on the relative ordering of candidate
//         designs, which both estimators preserve (see DESIGN.md §7).
#ifndef CORRMAP_STATS_ADAPTIVE_ESTIMATOR_H_
#define CORRMAP_STATS_ADAPTIVE_ESTIMATOR_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/value.h"

namespace corrmap {

/// Frequency-of-frequencies summary of a sample of (possibly composite) keys.
struct SampleFrequencies {
  uint64_t sample_size = 0;    ///< r: rows in the sample
  uint64_t distinct = 0;       ///< d: distinct values observed
  uint64_t f1 = 0;             ///< values seen exactly once
  uint64_t f2 = 0;             ///< values seen exactly twice

  static SampleFrequencies FromKeys(std::span<const CompositeKey> keys);
};

/// Distinct-value estimators over a uniform random sample.
class AdaptiveEstimator {
 public:
  /// GEE: sqrt(n/r)*f1 + (d - f1). Guaranteed O(sqrt(n/r)) ratio error.
  static double GEE(const SampleFrequencies& f, uint64_t population);

  /// Chao's rare-value estimator: d + f1^2/(2 f2); falls back to GEE when
  /// f2 == 0 (all-singleton samples carry no collision signal).
  static double Chao(const SampleFrequencies& f, uint64_t population);

  /// Adaptive estimate: when the sample shows meaningful collision structure
  /// (low skew), Chao is tighter; with many singletons GEE's scale-up is
  /// required. Blends by the singleton fraction. Result clamped to
  /// [d, population].
  static double Estimate(const SampleFrequencies& f, uint64_t population);

  /// Convenience: estimate over explicit keys.
  static double Estimate(std::span<const CompositeKey> keys,
                         uint64_t population);
};

}  // namespace corrmap

#endif  // CORRMAP_STATS_ADAPTIVE_ESTIMATOR_H_
