// Reservoir sampling of table rows. The paper collects an in-memory random
// sample during the Distinct Sampling table scan and feeds it to the
// Adaptive Estimator and the CM Advisor's bucketing search (§4.2, §6.1.3,
// ~30,000 tuples).
#ifndef CORRMAP_STATS_SAMPLER_H_
#define CORRMAP_STATS_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "storage/page.h"
#include "storage/table.h"

namespace corrmap {

/// A uniform random sample of row ids from one table.
class RowSample {
 public:
  /// Draws a reservoir sample of up to `target_size` live rows in one pass.
  static RowSample Collect(const Table& table, size_t target_size,
                           uint64_t seed = 0xa5a5a5a5ULL);

  const std::vector<RowId>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }

  /// Total live rows in the sampled table at collection time.
  uint64_t population() const { return population_; }

 private:
  std::vector<RowId> rows_;
  uint64_t population_ = 0;
};

}  // namespace corrmap

#endif  // CORRMAP_STATS_SAMPLER_H_
