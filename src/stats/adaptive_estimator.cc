#include "stats/adaptive_estimator.h"

#include <algorithm>
#include <cmath>

namespace corrmap {

SampleFrequencies SampleFrequencies::FromKeys(
    std::span<const CompositeKey> keys) {
  std::unordered_map<CompositeKey, uint32_t, CompositeKeyHash> counts;
  counts.reserve(keys.size() * 2);
  for (const auto& k : keys) ++counts[k];
  SampleFrequencies f;
  f.sample_size = keys.size();
  f.distinct = counts.size();
  for (const auto& [k, c] : counts) {
    if (c == 1) ++f.f1;
    if (c == 2) ++f.f2;
  }
  return f;
}

double AdaptiveEstimator::GEE(const SampleFrequencies& f, uint64_t population) {
  if (f.sample_size == 0) return 0.0;
  const double scale = std::sqrt(double(population) / double(f.sample_size));
  const double est = scale * double(f.f1) + double(f.distinct - f.f1);
  return std::clamp(est, double(f.distinct), double(population));
}

double AdaptiveEstimator::Chao(const SampleFrequencies& f, uint64_t population) {
  if (f.f2 == 0) return GEE(f, population);
  const double est =
      double(f.distinct) + double(f.f1) * double(f.f1) / (2.0 * double(f.f2));
  return std::clamp(est, double(f.distinct), double(population));
}

double AdaptiveEstimator::Estimate(const SampleFrequencies& f,
                                   uint64_t population) {
  if (f.sample_size == 0) return 0.0;
  if (f.sample_size >= population) return double(f.distinct);
  const double singleton_frac =
      f.distinct == 0 ? 0.0 : double(f.f1) / double(f.distinct);
  // High singleton fraction => near-unique attribute, trust GEE's sqrt
  // scale-up; low fraction => repeated values dominate, Chao is tighter.
  const double gee = GEE(f, population);
  const double chao = Chao(f, population);
  const double est = singleton_frac * gee + (1.0 - singleton_frac) * chao;
  return std::clamp(est, double(f.distinct), double(population));
}

double AdaptiveEstimator::Estimate(std::span<const CompositeKey> keys,
                                   uint64_t population) {
  return Estimate(SampleFrequencies::FromKeys(keys), population);
}

}  // namespace corrmap
