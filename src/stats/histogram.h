// Equi-width histograms over one attribute, built from a sample or a full
// column. The CM Advisor uses them for selectivity estimation and to seed
// candidate bucketings (§6.1.2: "builds equi-width histograms of several
// different bucket widths from the random data sample").
#ifndef CORRMAP_STATS_HISTOGRAM_H_
#define CORRMAP_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stats/sampler.h"
#include "storage/table.h"

namespace corrmap {

/// Fixed-bin equi-width histogram over a numeric view of one column.
class EquiWidthHistogram {
 public:
  /// Builds from the sampled rows of `col` (or the full column when
  /// `sample` is nullptr).
  static EquiWidthHistogram Build(const Table& table, size_t col,
                                  size_t num_bins,
                                  const RowSample* sample = nullptr);

  size_t num_bins() const { return counts_.size(); }
  double min() const { return min_; }
  double max() const { return max_; }
  uint64_t total() const { return total_; }
  uint64_t bin_count(size_t i) const { return counts_[i]; }
  double bin_width() const { return width_; }

  /// Estimated fraction of rows with value in [lo, hi] (linear
  /// interpolation within boundary bins).
  double SelectivityRange(double lo, double hi) const;

  /// Estimated fraction of rows equal to v (bin mass / bin value span,
  /// assuming locally uniform distinct values).
  double SelectivityPoint(double v) const;

  /// Sorted distinct values observed while building (for value-ordinal
  /// bucketing of sampled data).
  const std::vector<double>& distinct_values() const { return distinct_; }

 private:
  double min_ = 0, max_ = 0, width_ = 1;
  uint64_t total_ = 0;
  std::vector<uint64_t> counts_;
  std::vector<double> distinct_;
};

}  // namespace corrmap

#endif  // CORRMAP_STATS_HISTOGRAM_H_
