#include "stats/sampler.h"

namespace corrmap {

RowSample RowSample::Collect(const Table& table, size_t target_size,
                             uint64_t seed) {
  RowSample sample;
  Rng rng(seed);
  const size_t n = table.NumRows();
  uint64_t seen = 0;
  for (RowId r = 0; r < n; ++r) {
    if (table.IsDeleted(r)) continue;
    ++seen;
    if (sample.rows_.size() < target_size) {
      sample.rows_.push_back(r);
    } else {
      // Classic Algorithm R replacement.
      const uint64_t j = rng.UniformInt(0, int64_t(seen) - 1);
      if (j < target_size) sample.rows_[j] = r;
    }
  }
  sample.population_ = seen;
  return sample;
}

}  // namespace corrmap
