#include "stats/distinct_sampling.h"

#include <cmath>

namespace corrmap {

namespace {
int TrailingZeros(uint64_t h) {
  if (h == 0) return 64;
  return __builtin_ctzll(h);
}
}  // namespace

DistinctSampler::DistinctSampler(size_t max_sample_size)
    : max_sample_size_(max_sample_size == 0 ? 1 : max_sample_size) {}

void DistinctSampler::Add(const Key& key) {
  const uint64_t h = key.Hash();
  if (TrailingZeros(h) < level_) return;
  sample_.insert(h);
  while (sample_.size() > max_sample_size_) Promote();
}

void DistinctSampler::Promote() {
  ++level_;
  for (auto it = sample_.begin(); it != sample_.end();) {
    if (TrailingZeros(*it) < level_) {
      it = sample_.erase(it);
    } else {
      ++it;
    }
  }
}

double DistinctSampler::Estimate() const {
  return std::ldexp(double(sample_.size()), level_);
}

double DistinctSampler::EstimateColumn(const Table& table, size_t col,
                                       size_t max_sample_size) {
  DistinctSampler ds(max_sample_size);
  const size_t n = table.NumRows();
  for (RowId r = 0; r < n; ++r) {
    if (table.IsDeleted(r)) continue;
    ds.Add(table.GetKey(r, col));
  }
  return ds.Estimate();
}

}  // namespace corrmap
