#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

namespace corrmap {

EquiWidthHistogram EquiWidthHistogram::Build(const Table& table, size_t col,
                                             size_t num_bins,
                                             const RowSample* sample) {
  EquiWidthHistogram h;
  std::vector<double> vals;
  auto visit = [&](RowId r) {
    if (table.IsDeleted(r)) return;
    vals.push_back(table.GetKey(r, col).Numeric());
  };
  if (sample != nullptr) {
    for (RowId r : sample->rows()) visit(r);
  } else {
    for (RowId r = 0; r < table.NumRows(); ++r) visit(r);
  }
  if (vals.empty()) {
    h.counts_.assign(std::max<size_t>(1, num_bins), 0);
    return h;
  }
  auto [mn, mx] = std::minmax_element(vals.begin(), vals.end());
  h.min_ = *mn;
  h.max_ = *mx;
  h.width_ = (h.max_ > h.min_) ? (h.max_ - h.min_) / double(num_bins) : 1.0;
  h.counts_.assign(std::max<size_t>(1, num_bins), 0);
  for (double v : vals) {
    size_t bin = size_t((v - h.min_) / h.width_);
    if (bin >= h.counts_.size()) bin = h.counts_.size() - 1;
    ++h.counts_[bin];
  }
  h.total_ = vals.size();
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  h.distinct_ = std::move(vals);
  return h;
}

double EquiWidthHistogram::SelectivityRange(double lo, double hi) const {
  if (total_ == 0 || hi < lo) return 0.0;
  lo = std::max(lo, min_);
  hi = std::min(hi, max_);
  if (hi < lo) return 0.0;
  double mass = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double blo = min_ + double(i) * width_;
    const double bhi = blo + width_;
    const double olap = std::min(hi, bhi) - std::max(lo, blo);
    if (olap <= 0) continue;
    mass += double(counts_[i]) * std::min(1.0, olap / width_);
  }
  return mass / double(total_);
}

double EquiWidthHistogram::SelectivityPoint(double v) const {
  if (total_ == 0 || v < min_ || v > max_) return 0.0;
  size_t bin = size_t((v - min_) / width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  // Assume distinct values spread evenly across bins.
  const double d_per_bin =
      std::max(1.0, double(distinct_.size()) / double(counts_.size()));
  return double(counts_[bin]) / d_per_bin / double(total_);
}

}  // namespace corrmap
