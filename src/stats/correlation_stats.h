// Correlation statistics between an unclustered attribute set Au and the
// clustered attribute Ac: the paper's Table 1/2 quantities. Exact paths
// scan the table; estimated paths use a RowSample + AdaptiveEstimator,
// mirroring the Advisor's cheap evaluation loop.
#ifndef CORRMAP_STATS_CORRELATION_STATS_H_
#define CORRMAP_STATS_CORRELATION_STATS_H_

#include <cstdint>
#include <vector>

#include "common/value.h"
#include "stats/sampler.h"
#include "storage/table.h"

namespace corrmap {

class Bucketer;  // core/bucketing.h

/// Statistics over one (Au set, Ac) attribute pairing.
struct CorrelationStats {
  double d_u = 0;       ///< D(Au): distinct unclustered (bucketed) values
  double d_uc = 0;      ///< D(Au, Ac): distinct co-occurring pairs
  double c_per_u = 0;   ///< D(Au,Ac) / D(Au): soft-FD strength (Table 2)
  double u_tups = 0;    ///< avg tuples per Au value (Table 1)
  uint64_t total_tups = 0;
};

/// Exact statistics via one full scan. `u_bucketers`, if non-null, maps raw
/// keys to bucket ordinals before counting (one per column, parallel to
/// `u_cols`); same for `c_bucketer` on the clustered attribute.
CorrelationStats ComputeExactCorrelationStats(
    const Table& table, const std::vector<size_t>& u_cols, size_t c_col,
    const std::vector<const Bucketer*>* u_bucketers = nullptr,
    const Bucketer* c_bucketer = nullptr);

/// Estimated statistics from a random sample (AdaptiveEstimator on both
/// D(Au) and D(Au, Ac)).
CorrelationStats EstimateCorrelationStats(
    const Table& table, const RowSample& sample,
    const std::vector<size_t>& u_cols, size_t c_col,
    const std::vector<const Bucketer*>* u_bucketers = nullptr,
    const Bucketer* c_bucketer = nullptr);

}  // namespace corrmap

#endif  // CORRMAP_STATS_CORRELATION_STATS_H_
