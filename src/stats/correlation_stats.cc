#include "stats/correlation_stats.h"

#include <unordered_set>

#include "core/bucketing.h"
#include "stats/adaptive_estimator.h"

namespace corrmap {

namespace {

/// Bucketed composite key of the unclustered attributes of one row, with an
/// optional extra slot for the (bucketed) clustered attribute.
CompositeKey MakeKey(const Table& table, RowId row,
                     const std::vector<size_t>& u_cols,
                     const std::vector<const Bucketer*>* u_bucketers,
                     bool with_c, size_t c_col, const Bucketer* c_bucketer) {
  CompositeKey k;
  for (size_t i = 0; i < u_cols.size(); ++i) {
    Key raw = table.GetKey(row, u_cols[i]);
    if (u_bucketers != nullptr && (*u_bucketers)[i] != nullptr) {
      k.Append(Key((*u_bucketers)[i]->BucketOf(raw)));
    } else {
      k.Append(raw);
    }
  }
  if (with_c) {
    Key raw = table.GetKey(row, c_col);
    if (c_bucketer != nullptr) {
      k.Append(Key(c_bucketer->BucketOf(raw)));
    } else {
      k.Append(raw);
    }
  }
  return k;
}

}  // namespace

CorrelationStats ComputeExactCorrelationStats(
    const Table& table, const std::vector<size_t>& u_cols, size_t c_col,
    const std::vector<const Bucketer*>* u_bucketers,
    const Bucketer* c_bucketer) {
  std::unordered_set<uint64_t> du, duc;
  uint64_t n = 0;
  for (RowId r = 0; r < table.NumRows(); ++r) {
    if (table.IsDeleted(r)) continue;
    ++n;
    du.insert(
        MakeKey(table, r, u_cols, u_bucketers, false, c_col, c_bucketer).Hash());
    duc.insert(
        MakeKey(table, r, u_cols, u_bucketers, true, c_col, c_bucketer).Hash());
  }
  CorrelationStats s;
  s.total_tups = n;
  s.d_u = double(du.size());
  s.d_uc = double(duc.size());
  s.c_per_u = s.d_u > 0 ? s.d_uc / s.d_u : 0.0;
  s.u_tups = s.d_u > 0 ? double(n) / s.d_u : 0.0;
  return s;
}

CorrelationStats EstimateCorrelationStats(
    const Table& table, const RowSample& sample,
    const std::vector<size_t>& u_cols, size_t c_col,
    const std::vector<const Bucketer*>* u_bucketers,
    const Bucketer* c_bucketer) {
  std::vector<CompositeKey> u_keys, uc_keys;
  u_keys.reserve(sample.size());
  uc_keys.reserve(sample.size());
  for (RowId r : sample.rows()) {
    u_keys.push_back(
        MakeKey(table, r, u_cols, u_bucketers, false, c_col, c_bucketer));
    uc_keys.push_back(
        MakeKey(table, r, u_cols, u_bucketers, true, c_col, c_bucketer));
  }
  CorrelationStats s;
  s.total_tups = sample.population();
  s.d_u = AdaptiveEstimator::Estimate(u_keys, sample.population());
  s.d_uc = AdaptiveEstimator::Estimate(uc_keys, sample.population());
  // D(Au, Ac) >= D(Au) must hold; estimation noise can briefly violate it.
  if (s.d_uc < s.d_u) s.d_uc = s.d_u;
  s.c_per_u = s.d_u > 0 ? s.d_uc / s.d_u : 0.0;
  s.u_tups = s.d_u > 0 ? double(s.total_tups) / s.d_u : 0.0;
  return s;
}

}  // namespace corrmap
