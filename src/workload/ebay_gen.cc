#include "workload/ebay_gen.h"

#include <array>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/schema.h"

namespace corrmap {

namespace {

/// Deterministic category-path labels: each level's label encodes its
/// position so sibling subtrees share CAT1..k prefixes like a real taxonomy.
std::array<std::string, 6> PathLabels(size_t catid, int fanout) {
  std::array<std::string, 6> labels;
  size_t x = catid;
  std::array<size_t, 6> digits{};
  for (int lv = 5; lv >= 0; --lv) {
    digits[size_t(lv)] = x % size_t(fanout);
    x /= size_t(fanout);
  }
  std::string prefix;
  for (int lv = 0; lv < 6; ++lv) {
    if (lv) prefix += '/';
    prefix += std::to_string(digits[size_t(lv)]);
    labels[size_t(lv)] = "cat";
    labels[size_t(lv)] += std::to_string(lv + 1);
    labels[size_t(lv)] += ':';
    labels[size_t(lv)] += prefix;
  }
  return labels;
}

}  // namespace

std::unique_ptr<Table> GenerateEbayItems(const EbayGenConfig& config) {
  Schema schema({
      ColumnDef::Int64("CATID"),
      ColumnDef::String("CAT1", 12),
      ColumnDef::String("CAT2", 14),
      ColumnDef::String("CAT3", 16),
      ColumnDef::String("CAT4", 18),
      ColumnDef::String("CAT5", 20),
      ColumnDef::String("CAT6", 22),
      ColumnDef::Int64("ItemID"),
      ColumnDef::Double("Price"),
  });
  auto table = std::make_unique<Table>("items", std::move(schema));
  Rng rng(config.seed);

  int64_t next_item = 1;
  for (size_t cat = 0; cat < config.num_categories; ++cat) {
    const auto labels = PathLabels(cat, config.fanout_per_level);
    const size_t n_items = size_t(
        rng.UniformInt(int64_t(config.min_items_per_category),
                       int64_t(config.max_items_per_category)));
    const double median = rng.UniformDouble(0.0, config.max_median_price);
    for (size_t i = 0; i < n_items; ++i) {
      const double price =
          std::max(0.01, rng.Gaussian(median, config.price_stddev));
      const std::array<Value, 9> row = {
          Value(int64_t(cat)),   Value(labels[0]), Value(labels[1]),
          Value(labels[2]),      Value(labels[3]), Value(labels[4]),
          Value(labels[5]),      Value(next_item++),
          // Prices quantized to cents, as a catalogue would store them.
          Value(std::round(price * 100.0) / 100.0),
      };
      Status s = table->AppendRow(row);
      (void)s;
    }
  }
  return table;
}

}  // namespace corrmap
