#include "workload/tpch_gen.h"

#include <array>

#include "common/rng.h"
#include "storage/schema.h"

namespace corrmap {

std::unique_ptr<Table> GenerateLineitem(const TpchGenConfig& config) {
  Schema schema({
      ColumnDef::Int64("orderkey"),
      ColumnDef::Int64("linenumber"),
      ColumnDef::Int64("partkey"),
      ColumnDef::Int64("suppkey"),
      ColumnDef::Int64("quantity"),
      ColumnDef::Double("extendedprice"),
      ColumnDef::Double("discount"),
      ColumnDef::Int64("shipdate"),
      ColumnDef::Int64("commitdate"),
      ColumnDef::Int64("receiptdate"),
  });
  // Pad the declared tuple width to the paper's 136 bytes per row.
  auto table = std::make_unique<Table>("lineitem", std::move(schema));
  Rng rng(config.seed);
  table->Reserve(config.num_rows);

  // Shipping "bumps": mostly 2, 4 or 5 days, with a small slow tail --
  // the §2/§3.3 delivery-offset distribution.
  auto receipt_offset = [&]() -> int64_t {
    const double u = rng.UniformDouble(0, 1);
    if (u < 0.30) return 2;
    if (u < 0.65) return 4;
    if (u < 0.90) return 5;
    return rng.UniformInt(6, 14);
  };

  int64_t orderkey = 1;
  int64_t linenumber = 1;
  for (size_t i = 0; i < config.num_rows; ++i) {
    // ~4 lines per order.
    if (linenumber > rng.UniformInt(1, 7)) {
      ++orderkey;
      linenumber = 1;
    }
    const int64_t suppkey = rng.UniformInt(1, config.num_suppliers);
    // Each supplier serves a contiguous band of parts (moderate soft FD).
    const int64_t band_start =
        (suppkey * 7919) % std::max<int64_t>(1, config.num_parts -
                                                    config.parts_per_supplier);
    const int64_t partkey =
        band_start + rng.UniformInt(0, config.parts_per_supplier - 1);
    const int64_t shipdate = rng.UniformInt(0, config.num_ship_days - 1);
    const int64_t receiptdate = shipdate + receipt_offset();
    const int64_t commitdate = shipdate + rng.UniformInt(-10, 20);
    const int64_t quantity = rng.UniformInt(1, 50);
    const double extendedprice =
        double(quantity) * rng.UniformDouble(900.0, 105000.0) / 100.0;
    const double discount = double(rng.UniformInt(0, 10)) / 100.0;

    const std::array<Key, 10> row = {
        Key(orderkey),     Key(linenumber++), Key(partkey),
        Key(suppkey),      Key(quantity),     Key(extendedprice),
        Key(discount),     Key(shipdate),     Key(commitdate),
        Key(receiptdate),
    };
    table->AppendRowKeys(row);
  }
  return table;
}

}  // namespace corrmap
