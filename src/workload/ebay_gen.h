// Synthetic hierarchical catalogue dataset matching the paper's description
// (§7.1.1): categories arranged in a 6-level hierarchy, items assigned
// uniformly per category, per-category median price drawn uniformly from
// [0, $1M] and item prices Gaussian around the median with sd = $100 --
// yielding a strong (but soft) Price -> CATID functional dependency.
//
// Schema: ITEMS(CATID, CAT1..CAT6, ItemID, Price).
#ifndef CORRMAP_WORKLOAD_EBAY_GEN_H_
#define CORRMAP_WORKLOAD_EBAY_GEN_H_

#include <cstdint>
#include <memory>

#include "storage/table.h"

namespace corrmap {

struct EbayGenConfig {
  /// Number of leaf categories (paper: 24,000).
  size_t num_categories = 2400;
  /// Items per category drawn uniformly from [min_items, max_items]
  /// (paper: 500..3000).
  size_t min_items_per_category = 50;
  size_t max_items_per_category = 300;
  /// Price model (paper: median U[0, 1M], sd = 100).
  double max_median_price = 1'000'000.0;
  double price_stddev = 100.0;
  /// Hierarchy fanout at each of the 6 levels (top-down). The product
  /// should be >= num_categories.
  int fanout_per_level = 8;
  uint64_t seed = 0xebabe5ULL;
};

/// Column indexes of the generated table.
struct EbaySchema {
  size_t catid = 0;
  size_t cat1 = 1, cat2 = 2, cat3 = 3, cat4 = 4, cat5 = 5, cat6 = 6;
  size_t item_id = 7;
  size_t price = 8;
};

/// Generates the ITEMS table (unclustered; callers typically ClusterBy
/// CATID as in Experiments 1-4).
std::unique_ptr<Table> GenerateEbayItems(const EbayGenConfig& config = {});

inline constexpr EbaySchema kEbay{};

}  // namespace corrmap

#endif  // CORRMAP_WORKLOAD_EBAY_GEN_H_
