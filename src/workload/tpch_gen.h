// Synthetic lineitem-like table reproducing the two TPC-H correlations the
// paper exploits (§3.3, Fig. 1, Fig. 3):
//   * receiptdate = shipdate + a few "bump" day offsets (mostly 2, 4, 5
//     days -- standard/air/ground shipping), a tight soft FD;
//   * suppkey is moderately correlated with partkey (each supplier supplies
//     a limited band of parts).
//
// Schema (subset of TPC-H lineitem, 136-byte tuples like the paper's):
// LINEITEM(orderkey, linenumber, partkey, suppkey, quantity, extendedprice,
//          discount, shipdate, commitdate, receiptdate).
// Dates are integer day numbers.
#ifndef CORRMAP_WORKLOAD_TPCH_GEN_H_
#define CORRMAP_WORKLOAD_TPCH_GEN_H_

#include <cstdint>
#include <memory>

#include "storage/table.h"

namespace corrmap {

struct TpchGenConfig {
  /// Rows to generate (paper: 18M at scale 3; default is laptop scale).
  size_t num_rows = 600'000;
  /// Distinct ship days (paper's ~7-year date range).
  int64_t num_ship_days = 2526;
  /// Suppliers and parts.
  int64_t num_suppliers = 1000;
  int64_t num_parts = 20000;
  /// Parts each supplier draws from (moderate suppkey->partkey correlation).
  int64_t parts_per_supplier = 80;
  uint64_t seed = 0x79c4ULL;
};

/// Column indexes of the generated table.
struct TpchSchema {
  size_t orderkey = 0;
  size_t linenumber = 1;
  size_t partkey = 2;
  size_t suppkey = 3;
  size_t quantity = 4;
  size_t extendedprice = 5;
  size_t discount = 6;
  size_t shipdate = 7;
  size_t commitdate = 8;
  size_t receiptdate = 9;
};

std::unique_ptr<Table> GenerateLineitem(const TpchGenConfig& config = {});

inline constexpr TpchSchema kTpch{};

}  // namespace corrmap

#endif  // CORRMAP_WORKLOAD_TPCH_GEN_H_
