#include "workload/sdss_gen.h"

#include <array>
#include <cmath>

#include "common/rng.h"
#include "storage/schema.h"

namespace corrmap {

namespace {

const std::vector<std::string> kAttrs = {
    // Position family (soft functions of the field sweep).
    "fieldID", "run", "camcol", "field", "mjd", "stripe", "strip", "zoneID",
    "htmID", "sector", "segment", "skyRegion", "extinction_r",
    // Sky coordinates.
    "ra", "dec",
    // Brightness family (shared latent magnitude).
    "psfMag_u", "psfMag_g", "psfMag_r", "psfMag_i", "psfMag_z",
    "petroMag_u", "petroMag_g", "petroMag_r", "petroMag_i", "petroMag_z",
    "modelMag_g", "g", "rho",
    // Few-valued.
    "mode", "type", "status", "insideMask", "flagsCat",
    // Independent.
    "rowc", "colc", "sky_u", "err_g", "specObjID", "priority",
};

}  // namespace

const std::vector<std::string>& SdssQueryAttributes() { return kAttrs; }

std::unique_ptr<Table> GenerateSdssPhotoObj(const SdssGenConfig& config) {
  std::vector<ColumnDef> cols;
  cols.push_back(ColumnDef::Int64("objID"));
  for (const auto& name : kAttrs) {
    const bool is_double =
        name == "ra" || name == "dec" || name.find("Mag") != std::string::npos ||
        name == "g" || name == "rho" || name == "extinction_r" ||
        name == "rowc" || name == "colc" || name == "sky_u" || name == "err_g";
    cols.push_back(is_double ? ColumnDef::Double(name)
                             : ColumnDef::Int64(name));
  }
  auto table = std::make_unique<Table>("photoobj", Schema(std::move(cols)));
  table->Reserve(config.num_rows);
  Rng rng(config.seed);

  const size_t n_fields =
      std::max<size_t>(1, config.num_rows / config.objects_per_field);
  const size_t ncols =
      std::max<size_t>(1, size_t(std::round(std::sqrt(double(n_fields)))));
  // Sky cell size in degrees: survey window 40deg (ra) x 40deg (dec).
  const double cell_ra = 40.0 / double(ncols);
  const size_t nrows_grid = (n_fields + ncols - 1) / ncols;
  const double cell_dec = 40.0 / double(std::max<size_t>(1, nrows_grid));

  for (size_t i = 0; i < config.num_rows; ++i) {
    const size_t field = std::min(i / config.objects_per_field, n_fields - 1);
    const size_t grow = field / ncols;   // dec row
    const size_t gcol = field % ncols;   // ra column
    const double ra = 150.0 + double(gcol) * cell_ra +
                      rng.UniformDouble(0.0, cell_ra);
    const double dec = -20.0 + double(grow) * cell_dec +
                       rng.UniformDouble(0.0, cell_dec);
    const double brightness = rng.UniformDouble(14.0, 26.0);
    const double ext = 0.05 + 0.4 * std::fabs(std::sin(double(field) * 0.37));

    auto mag = [&](double offset, double sd) {
      return brightness + offset + rng.Gaussian(0.0, sd);
    };

    std::array<Key, 40> row;
    size_t c = 0;
    row[c++] = Key(int64_t(i));                                 // objID
    row[c++] = Key(int64_t(field));                             // fieldID
    row[c++] = Key(int64_t(grow));                              // run
    row[c++] = Key(int64_t(gcol % 6));                          // camcol
    row[c++] = Key(int64_t(gcol));                              // field
    row[c++] = Key(int64_t(50000 + field * 2 +
                           uint64_t(rng.UniformInt(0, 1))));    // mjd
    row[c++] = Key(int64_t(grow / 2));                          // stripe
    row[c++] = Key(int64_t(grow % 2));                          // strip
    row[c++] = Key(int64_t(grow * 2 + (dec - (-20.0 + double(grow) * cell_dec) >
                                               cell_dec / 2
                                           ? 1
                                           : 0)));              // zoneID
    row[c++] = Key(int64_t(field * 16 + uint64_t(rng.UniformInt(0, 15))));
                                                                // htmID
    row[c++] = Key(int64_t(field / 8));                         // sector
    row[c++] = Key(int64_t(field / 32));                        // segment
    row[c++] = Key(int64_t(field / 128));                       // skyRegion
    row[c++] = Key(ext + rng.Gaussian(0.0, 0.02));              // extinction_r
    row[c++] = Key(ra);                                         // ra
    row[c++] = Key(dec);                                        // dec
    row[c++] = Key(mag(1.1, 0.2));                              // psfMag_u
    row[c++] = Key(mag(0.0, 0.2));                              // psfMag_g
    row[c++] = Key(mag(-0.4, 0.2));                             // psfMag_r
    row[c++] = Key(mag(-0.7, 0.2));                             // psfMag_i
    row[c++] = Key(mag(-1.0, 0.2));                             // psfMag_z
    row[c++] = Key(mag(1.2, 0.3));                              // petroMag_u
    row[c++] = Key(mag(0.1, 0.3));                              // petroMag_g
    row[c++] = Key(mag(-0.3, 0.3));                             // petroMag_r
    row[c++] = Key(mag(-0.6, 0.3));                             // petroMag_i
    row[c++] = Key(mag(-0.9, 0.3));                             // petroMag_z
    row[c++] = Key(mag(0.05, 0.15));                            // modelMag_g
    row[c++] = Key(mag(0.0, 0.25));                             // g
    row[c++] = Key(rng.Gaussian(3.0, 1.0));                     // rho
    // mode: heavily skewed toward primary observations.
    const double mu = rng.UniformDouble(0, 1);
    row[c++] = Key(int64_t(mu < 0.85 ? 1 : (mu < 0.97 ? 2 : 3)));  // mode
    static const int64_t kTypes[5] = {0, 3, 5, 6, 8};
    row[c++] = Key(kTypes[rng.UniformInt(0, 4)]);               // type
    row[c++] = Key(rng.UniformInt(0, 7));                       // status
    row[c++] = Key(rng.UniformInt(0, 1));                       // insideMask
    row[c++] = Key(rng.UniformInt(0, 15));                      // flagsCat
    row[c++] = Key(rng.UniformDouble(0.0, 2048.0));             // rowc
    row[c++] = Key(rng.UniformDouble(0.0, 2048.0));             // colc
    row[c++] = Key(rng.UniformDouble(0.0, 30.0));               // sky_u
    row[c++] = Key(rng.UniformDouble(0.0, 0.5));                // err_g
    row[c++] = Key(int64_t(rng() >> 1));                        // specObjID
    row[c++] = Key(rng.UniformInt(0, 999));                     // priority
    table->AppendRowKeys(row);
  }
  return table;
}

}  // namespace corrmap
