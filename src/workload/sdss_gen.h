// Synthetic sky-survey table standing in for SDSS PhotoObj/PhotoTag
// (paper §7.1.1). The generator encodes the correlation structure the
// paper's experiments depend on:
//
//  * Objects are generated field by field while the survey sweeps the sky
//    in row-major (dec-row, ra-column) order, so objID (sequential) is
//    strongly correlated with fieldID and with the (ra, dec) *pair*, while
//    ra alone is weak (one ra column intersects every dec row) and dec
//    alone is moderate (one dec row is a contiguous band of fields) --
//    exactly the Experiment 5 / Table 6 regime.
//  * A family of position-derived attributes (run, camcol, mjd, stripe,
//    sector, ...) are soft functions of the field, so clustering on
//    fieldID accelerates many queries (Fig. 2's standout attribute).
//  * A family of magnitudes (psfMag_*, petroMag_*, modelMag_g, g) share a
//    per-object latent brightness, correlated with each other but not with
//    position.
//  * Few-valued attributes (mode, type, status, ...) and independent
//    attributes (rowc, colc, specObjID, ...) fill out the 39-attribute
//    query set.
#ifndef CORRMAP_WORKLOAD_SDSS_GEN_H_
#define CORRMAP_WORKLOAD_SDSS_GEN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"

namespace corrmap {

struct SdssGenConfig {
  size_t num_rows = 200'000;     ///< paper's desktop PhotoObj size
  size_t objects_per_field = 800;
  uint64_t seed = 0x5d55ULL;
};

/// Generates the PhotoObj-like table (clustered order = generation order =
/// objID; callers may re-cluster on any attribute).
std::unique_ptr<Table> GenerateSdssPhotoObj(const SdssGenConfig& config = {});

/// The 39 queryable attribute names used by the Fig. 2 benchmark, in the
/// paper's "attribute 1..39" order (attribute 1 is fieldID).
const std::vector<std::string>& SdssQueryAttributes();

}  // namespace corrmap

#endif  // CORRMAP_WORKLOAD_SDSS_GEN_H_
