#include "serve/shard_router.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "core/bucketing.h"
#include "exec/plan_choice.h"

namespace corrmap::serve {

Result<std::unique_ptr<ShardRouter>> ShardRouter::Create(
    const Table& table, size_t c_col, RouterOptions options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("need at least one shard");
  }
  if (table.clustered_column() != int(c_col)) {
    return Status::InvalidArgument(
        "table must be clustered on c_col before partitioning");
  }
  auto cidx = ClusteredIndex::Build(table, c_col);
  if (!cidx.ok()) return cidx.status();

  std::unique_ptr<ShardRouter> r(new ShardRouter());
  r->c_col_ = c_col;

  // Cut the sorted key space at distinct-key boundaries nearest the ideal
  // row quantiles: shards balance by row count but a distinct key never
  // spans two shards (so equality routing is exact and per-shard clustered
  // indexes stay self-contained). Fewer distinct keys than requested
  // shards simply yields fewer shards.
  const size_t n_rows = table.NumRows();
  const size_t n_keys = cidx->NumDistinctKeys();
  const size_t want = std::min(options.num_shards, std::max<size_t>(n_keys, 1));
  std::vector<RowId> bounds{0};
  size_t k = 0;
  for (size_t s = 1; s < want; ++s) {
    const RowId ideal = RowId(n_rows * s / want);
    while (k < n_keys && cidx->KeyFirstRow(k) < ideal) ++k;
    if (k >= n_keys) break;
    const RowId b = cidx->KeyFirstRow(k);
    if (b <= bounds.back()) continue;
    bounds.push_back(b);
    r->splits_.push_back(cidx->DistinctKey(k));
  }
  bounds.push_back(RowId(n_rows));

  if (!options.shard_durability.empty() &&
      options.shard_durability.size() < options.num_shards) {
    return Status::InvalidArgument(
        "shard_durability must carry one manager per requested shard");
  }
  ServingOptions eo = options.engine;
  if (eo.buffer_pool_pages > 0) {
    r->pool_ = std::make_unique<BufferPool>(eo.buffer_pool_pages,
                                            options.pool_stripes);
  }
  r->cache_ = std::make_unique<SharedLookupCache>();
  eo.shared_pool = r->pool_.get();
  eo.shared_cache = r->cache_.get();
  // All shards share one bundle; per-shard engines skip the gauge
  // registration (they would fight over the names) and the router
  // registers partition-level aggregates below instead.
  r->metrics_ = eo.metrics;
  eo.metrics_register_gauges = false;
  r->parallel_scatter_ = options.parallel_scatter;
  r->scatter_budget_ms_ = options.scatter_budget_ms;
  r->engines_pooled_ = eo.num_workers > 0;
  r->on_shard_visit_ = options.on_shard_visit;

  r->shards_.reserve(bounds.size() - 1);
  for (size_t s = 0; s + 1 < bounds.size(); ++s) {
    // Durability is strictly per shard: each engine logs its own row-id
    // space into its own WAL and checkpoints its own epoch swaps.
    eo.durability = options.shard_durability.empty()
                        ? nullptr
                        : options.shard_durability[s];
    std::vector<RowId> order(size_t(bounds[s + 1] - bounds[s]));
    std::iota(order.begin(), order.end(), bounds[s]);
    Shard sh;
    // Deep copy with dictionaries preserved: physical keys keep their
    // codes across the partition, so a Key routes and compares the same
    // in every shard and in the source table.
    sh.table = table.CloneReordered(order);
    auto scidx = ClusteredIndex::Build(*sh.table, c_col);
    if (!scidx.ok()) return scidx.status();
    sh.cidx = std::make_unique<ClusteredIndex>(std::move(*scidx));
    sh.engine =
        std::make_unique<ServingEngine>(sh.table.get(), sh.cidx.get(), eo);
    r->shards_.push_back(std::move(sh));
  }
  if (r->metrics_ != nullptr) r->RegisterMetricsGauges();
  if (r->parallel_scatter_ && !r->engines_pooled_ && r->shards_.size() > 1) {
    r->StartFallbackPool(std::min<size_t>(r->shards_.size(), 8));
  }
  return r;
}

Result<std::unique_ptr<ShardRouter>> ShardRouter::Recover(
    size_t c_col, std::vector<Key> splits, RouterOptions options,
    const ServingEngine::RecoverSpec& spec,
    std::vector<RecoveryStats>* stats) {
  const size_t n_shards = splits.size() + 1;
  if (options.shard_durability.size() < n_shards) {
    return Status::InvalidArgument(
        "recovery needs one durability manager per shard (splits + 1)");
  }
  for (size_t i = 1; i < splits.size(); ++i) {
    if (!(splits[i - 1] < splits[i])) {
      return Status::InvalidArgument("split keys not strictly ascending");
    }
  }
  std::unique_ptr<ShardRouter> r(new ShardRouter());
  r->c_col_ = c_col;
  r->splits_ = std::move(splits);

  ServingOptions eo = options.engine;
  if (eo.buffer_pool_pages > 0) {
    r->pool_ = std::make_unique<BufferPool>(eo.buffer_pool_pages,
                                            options.pool_stripes);
  }
  r->cache_ = std::make_unique<SharedLookupCache>();
  eo.shared_pool = r->pool_.get();
  eo.shared_cache = r->cache_.get();
  r->metrics_ = eo.metrics;
  eo.metrics_register_gauges = false;
  r->parallel_scatter_ = options.parallel_scatter;
  r->scatter_budget_ms_ = options.scatter_budget_ms;
  r->engines_pooled_ = eo.num_workers > 0;
  r->on_shard_visit_ = options.on_shard_visit;

  r->shards_.reserve(n_shards);
  for (size_t s = 0; s < n_shards; ++s) {
    eo.durability = options.shard_durability[s];
    RecoveryStats shard_stats;
    auto engine = ServingEngine::Recover(c_col, eo, spec, &shard_stats);
    if (!engine.ok()) return engine.status();
    Shard sh;  // table/cidx stay null: the recovered engine owns both
    sh.engine = std::move(*engine);
    r->shards_.push_back(std::move(sh));
    if (stats != nullptr) stats->push_back(shard_stats);
  }
  if (r->metrics_ != nullptr) r->RegisterMetricsGauges();
  if (r->parallel_scatter_ && !r->engines_pooled_ && r->shards_.size() > 1) {
    r->StartFallbackPool(std::min<size_t>(r->shards_.size(), 8));
  }
  return r;
}

ShardRouter::~ShardRouter() {
  // Drain the fallback scatter pool before anything the queued tasks
  // could touch (shards, metrics) goes away. Callers must not destroy
  // the router with selects still in flight, same as the engines.
  {
    std::lock_guard<std::mutex> lock(fb_mu_);
    fb_stopping_ = true;
  }
  fb_cv_.notify_all();
  for (std::thread& w : fb_workers_) w.join();
  fb_workers_.clear();
  if (metrics_ != nullptr) {
    for (const std::string& name : gauge_names_) {
      metrics_->registry().RemoveCallbackGauge(name);
    }
  }
}

void ShardRouter::StartFallbackPool(size_t n) {
  fb_workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    fb_workers_.emplace_back([this] {
      for (;;) {
        std::function<void()> job;
        {
          std::unique_lock<std::mutex> lock(fb_mu_);
          fb_cv_.wait(lock,
                      [this] { return fb_stopping_ || !fb_queue_.empty(); });
          if (fb_queue_.empty()) return;  // stopping and drained
          job = std::move(fb_queue_.front());
          fb_queue_.pop_front();
        }
        job();
      }
    });
  }
}

void ShardRouter::SubmitFallback(std::function<void()> fn) const {
  {
    std::lock_guard<std::mutex> lock(fb_mu_);
    fb_queue_.push_back(std::move(fn));
  }
  fb_cv_.notify_one();
}

void ShardRouter::RegisterMetricsGauges() {
  obs::MetricsRegistry& reg = metrics_->registry();
  auto add = [&](const std::string& name, std::function<double()> fn) {
    reg.RegisterCallbackGauge(name, std::move(fn));
    gauge_names_.push_back(name);
  };
  // Partition-level aggregates under the same names the single-engine
  // registration uses, so dashboards need not care whether the serving
  // layer is sharded.
  add("serve_tail_rows", [this] {
    double n = 0;
    for (const Shard& sh : shards_) n += double(sh.engine->TailRows());
    return n;
  });
  add("serve_tombstones", [this] {
    double n = 0;
    for (const Shard& sh : shards_) {
      n += double(sh.engine->table().NumDeleted());
    }
    return n;
  });
  add("serve_live_rows", [this] {
    double n = 0;
    for (const Shard& sh : shards_) {
      const Table& t = sh.engine->table();
      n += double(t.NumRows() - t.NumDeleted());
    }
    return n;
  });
  add("serve_recluster_epoch", [this] {
    double hi = 0;
    for (const Shard& sh : shards_) {
      hi = std::max(hi, double(sh.engine->ReclusterEpoch()));
    }
    return hi;
  });
  add("serve_queue_depth", [this] {
    double n = 0;
    for (const Shard& sh : shards_) n += double(sh.engine->QueueDepth());
    return n;
  });
  add("router_num_shards", [this] { return double(shards_.size()); });
  add("cache_hits", [this] { return double(cache_->stats().hits); });
  add("cache_misses", [this] { return double(cache_->stats().misses); });
  add("cache_insertions",
      [this] { return double(cache_->stats().insertions); });
  add("cache_stale_evictions",
      [this] { return double(cache_->stats().stale_evictions); });
  add("cache_size", [this] { return double(cache_->Size()); });
  if (pool_ != nullptr) {
    add("pool_hits",
        [this] { return double(pool_->StatsSnapshot().stats.hits); });
    add("pool_misses",
        [this] { return double(pool_->StatsSnapshot().stats.misses); });
    add("pool_evictions",
        [this] { return double(pool_->StatsSnapshot().stats.evictions); });
    add("pool_dirty_evictions", [this] {
      return double(pool_->StatsSnapshot().stats.dirty_evictions);
    });
    add("pool_cached_pages",
        [this] { return double(pool_->StatsSnapshot().num_cached); });
    add("pool_dirty_pages",
        [this] { return double(pool_->StatsSnapshot().num_dirty); });
    add("pool_capacity_pages",
        [this] { return double(pool_->capacity_pages()); });
  }
}

size_t ShardRouter::RouteKey(const Key& k) const {
  // splits_[s] is the first key owned by shard s+1, so the owner of k is
  // the number of splits <= k.
  return size_t(std::upper_bound(splits_.begin(), splits_.end(), k) -
                splits_.begin());
}

Status ShardRouter::AttachCm(const CmOptions& cm_options) {
  for (Shard& sh : shards_) {
    CmOptions opts = cm_options;
    std::unique_ptr<ClusteredBucketing> cb;
    if (cm_options.c_buckets != nullptr) {
      // A positional bucketing is only meaningful over one shard's own
      // clustered region; re-base the caller's target per shard.
      auto built = ClusteredBucketing::Build(
          sh.engine->table(), opts.c_col,
          cm_options.c_buckets->target_tuples_per_bucket());
      if (!built.ok()) return built.status();
      cb = std::make_unique<ClusteredBucketing>(std::move(*built));
      opts.c_buckets = cb.get();
    }
    Status s = sh.engine->AttachCm(opts);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status ShardRouter::AttachSecondaryIndex(const std::vector<size_t>& columns) {
  for (Shard& sh : shards_) {
    Status s = sh.engine->AttachSecondaryIndex(columns);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

RoutedSelectResult ShardRouter::ExecuteSelect(const Query& query) const {
  RoutedSelectResult out;
  const size_t n = shards_.size();
  std::vector<uint8_t> visit(n, 1);

  const Predicate* cpred = FindPredicateOn(query, c_col_);
  if (cpred != nullptr && n > 1) {
    // Tier 1: the clustered predicate maps through the split keys to the
    // owning shard span / set; every other shard provably holds no
    // clustered-region matches AND no tail matches (appends route by the
    // same key), so it is skipped outright.
    std::fill(visit.begin(), visit.end(), uint8_t{0});
    out.clustered_routed = true;
    if (cpred->op() == Predicate::Op::kRange) {
      // Route the endpoints numerically against the split keys -- the
      // same Key::Numeric() axis Predicate::MatchesKey filters on --
      // instead of encoding them: EncodeKey turned the +/-infinity
      // endpoints of open ranges (Ge/Le) and out-of-dictionary endpoints
      // into bogus keys that silently misrouted the span. An inverted
      // range (lo > hi) or NaN endpoint matches no key at all, so it
      // visits no shard. Fractional endpoints may conservatively include
      // one boundary shard that holds no matches; execution re-filters.
      const double lo = cpred->lo();
      const double hi = cpred->hi();
      if (lo <= hi) {
        size_t s_lo = 0;
        while (s_lo < splits_.size() && splits_[s_lo].Numeric() <= lo) {
          ++s_lo;
        }
        size_t s_hi = s_lo;
        while (s_hi < splits_.size() && splits_[s_hi].Numeric() <= hi) {
          ++s_hi;
        }
        for (size_t s = s_lo; s <= s_hi && s < n; ++s) visit[s] = 1;
      }
    } else {
      for (const Key& key : cpred->keys()) visit[RouteKey(key)] = 1;
    }
  } else if (n > 1) {
    // Tier 2: one routed CM lookup per shard (through the shared cache,
    // so a visited shard's ExecuteSelect reuses it). A shard is skipped
    // only when a CM applies, its lookup is empty, and the shard's tail
    // is empty; anything else -- including no applicable CM -- keeps the
    // shard in the scatter.
    for (size_t s = 0; s < n; ++s) {
      bool applicable = false;
      if (shards_[s].engine->CanSkipForQuery(query, &applicable)) {
        visit[s] = 0;
        out.cm_pruned = true;
      }
    }
  }

  std::vector<size_t> targets;
  targets.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    if (visit[s]) {
      targets.push_back(s);
    } else {
      ++out.shards_pruned;
    }
  }

  // One scatter, one shared deliberation budget (0 disables; the gate
  // lives inside ExecuteSelect's cost-based path).
  CostBudget budget(scatter_budget_ms_);
  CostBudget* budget_ptr = scatter_budget_ms_ > 0 ? &budget : nullptr;

  // Scatter: each visited shard's select runs as an independent task that
  // writes only its own `parts` slot and times its own visit, so per-shard
  // completion needs no synchronization beyond the gather below. Under
  // parallel scatter the tasks ride the shards' worker pools (or the
  // router's fallback pool when the engines run pool-less) and this
  // thread blocks on the futures; a single-target scatter and the
  // sequential mode run inline.
  std::vector<SelectResult> parts(targets.size());
  auto visit_one = [&](size_t i) {
    const auto t0 = std::chrono::steady_clock::now();
    parts[i] = shards_[targets[i]].engine->ExecuteSelect(query, budget_ptr);
    if (metrics_ != nullptr) {
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      metrics_->router_shard_visit_us->Record(double(us));
    }
    if (on_shard_visit_) on_shard_visit_(parts[i]);
  };
  if (parallel_scatter_ && targets.size() > 1) {
    std::vector<std::future<void>> gathers;
    gathers.reserve(targets.size());
    for (size_t i = 0; i < targets.size(); ++i) {
      auto task = std::make_shared<std::packaged_task<void()>>(
          [&visit_one, i] { visit_one(i); });
      gathers.push_back(task->get_future());
      if (engines_pooled_) {
        shards_[targets[i]].engine->Post([task] { (*task)(); });
      } else {
        SubmitFallback([task] { (*task)(); });
      }
    }
    for (std::future<void>& f : gathers) f.get();
  } else {
    for (size_t i = 0; i < targets.size(); ++i) visit_one(i);
  }

  // Gather: single-threaded, ascending shard order -- merged counts are
  // identical to the sequential scatter by construction. Critical-path
  // maxima feed the router trace; the merged result keeps the historical
  // summed/OR-ed semantics.
  double max_est_ms = 0;
  double max_actual_ms = 0;
  size_t cache_hit_shards = 0;
  for (size_t i = 0; i < targets.size(); ++i) {
    const SelectResult& part = parts[i];
    ++out.shards_visited;
    if (part.budget_degraded) ++out.shards_degraded;
    if (part.cache_hit) ++cache_hit_shards;
    max_est_ms = std::max(max_est_ms, part.plan_est_ms);
    max_actual_ms = std::max(max_actual_ms, part.simulated_ms);
    if (i == 0) {
      out.merged = part;
      continue;
    }
    out.merged.num_matches += part.num_matches;
    out.merged.rows_examined += part.rows_examined;
    out.merged.simulated_ms += part.simulated_ms;
    out.merged.used_cm = out.merged.used_cm || part.used_cm;
    out.merged.cache_hit = out.merged.cache_hit || part.cache_hit;
    out.merged.budget_degraded =
        out.merged.budget_degraded || part.budget_degraded;
    out.merged.plan_est_ms += part.plan_est_ms;
    out.merged.plan_candidates += part.plan_candidates;
  }

  selects_.fetch_add(1, std::memory_order_relaxed);
  shards_visited_.fetch_add(out.shards_visited, std::memory_order_relaxed);
  shards_pruned_.fetch_add(out.shards_pruned, std::memory_order_relaxed);
  if (out.clustered_routed) {
    clustered_routed_selects_.fetch_add(1, std::memory_order_relaxed);
  }
  if (out.cm_pruned) {
    cm_pruned_selects_.fetch_add(1, std::memory_order_relaxed);
  }
  if (metrics_ != nullptr) {
    if (out.clustered_routed) metrics_->router_clustered_routed->Increment();
    if (out.cm_pruned) metrics_->router_cm_pruned->Increment();
    // Router-level trace: the scatter as one unit (per-shard executions
    // already recorded their own engine-level traces above). est/actual
    // carry the critical-path MAX over the visited shards so slow-log
    // entries stay comparable with engine traces; the partition-wide sums
    // and per-shard actuals ride the dedicated merged-trace fields, and
    // cache_hit means every visited shard hit (a scatter is cached only
    // if wholly served from cache).
    obs::SelectTrace t;
    t.fingerprint = obs::FingerprintQuery(query);
    t.from_router = true;
    t.cost_based = false;  // merged costs, not one deliberation
    t.cache_hit =
        out.shards_visited > 0 && cache_hit_shards == out.shards_visited;
    t.cache_hit_shards = uint32_t(cache_hit_shards);
    t.est_ms = max_est_ms;
    t.actual_ms = max_actual_ms;
    t.sum_est_ms = out.merged.plan_est_ms;
    t.sum_actual_ms = out.merged.simulated_ms;
    t.num_matches = out.merged.num_matches;
    t.rows_examined = out.merged.rows_examined;
    t.shards_visited = uint32_t(out.shards_visited);
    t.shards_pruned = uint32_t(out.shards_pruned);
    t.shards_degraded = uint32_t(out.shards_degraded);
    t.num_candidates = uint32_t(out.merged.plan_candidates);
    for (size_t i = 0; i < parts.size() && i < obs::kTraceShardCap; ++i) {
      t.shard_actual_ms[t.num_shard_actuals++] = parts[i].simulated_ms;
    }
    metrics_->RecordRoutedSelect(t);
  }
  return out;
}

Status ShardRouter::ApplyAppend(std::span<const std::vector<Key>> rows) {
  if (rows.empty()) return Status::OK();
  if (shards_.size() == 1) return shards_[0].engine->ApplyAppend(rows);
  std::vector<std::vector<std::vector<Key>>> by_shard(shards_.size());
  for (const std::vector<Key>& row : rows) {
    if (row.size() <= c_col_) {
      return Status::InvalidArgument("appended row lacks the clustered key");
    }
    by_shard[RouteKey(row[c_col_])].push_back(row);
  }
  // All-or-nothing across shards. Phase 1: every target shard validates
  // its slice (arity, capacity) and hands back a guard holding its append
  // lock -- ascending shard order makes the cross-shard lock acquisition
  // a total order, so concurrent multi-shard appends cannot deadlock. A
  // refusal drops the guards already held and no shard has changed (the
  // fail-fast path previously left earlier shards' rows applied and
  // WAL-logged while the call reported an error). Phase 2 cannot fail on
  // a prepared batch, so commit applies everywhere or the error return
  // applied nowhere.
  std::vector<ServingEngine::PreparedAppend> prepared(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Status st = shards_[s].engine->PrepareAppend(by_shard[s], &prepared[s]);
    if (!st.ok()) return st;
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!prepared[s].valid()) continue;
    Status st = shards_[s].engine->CommitAppend(&prepared[s], by_shard[s]);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status ShardRouter::ApplyDelete(size_t shard, RowId row,
                                uint64_t expected_epoch) {
  if (shard >= shards_.size()) return Status::OutOfRange("no such shard");
  return shards_[shard].engine->ApplyDelete(row, expected_epoch);
}

Status ShardRouter::ApplyUpdate(size_t shard, RowId row,
                                std::span<const Key> new_values,
                                uint64_t expected_epoch) {
  if (shard >= shards_.size()) return Status::OutOfRange("no such shard");
  if (new_values.size() <= c_col_) {
    return Status::InvalidArgument("updated row lacks the clustered key");
  }
  const size_t target = RouteKey(new_values[c_col_]);
  if (target == shard) {
    return shards_[shard].engine->ApplyUpdate(row, new_values,
                                              expected_epoch);
  }
  // The new clustered key moves the row across the partition: tombstone it
  // in its old shard first, then append the new version to its owner. A
  // select between the two steps sees neither version -- the same
  // invariant the engine's own tombstone+re-append update keeps.
  Status st = shards_[shard].engine->ApplyDelete(row, expected_epoch);
  if (!st.ok()) return st;
  const std::vector<std::vector<Key>> one{
      std::vector<Key>(new_values.begin(), new_values.end())};
  return shards_[target].engine->ApplyAppend(one);
}

Result<ReclusterStats> ShardRouter::Recluster(size_t shard) {
  if (shard >= shards_.size()) return Status::OutOfRange("no such shard");
  return shards_[shard].engine->Recluster();
}

Result<ReclusterStats> ShardRouter::Compact(size_t shard) {
  if (shard >= shards_.size()) return Status::OutOfRange("no such shard");
  return shards_[shard].engine->Compact();
}

Status ShardRouter::ReclusterAll() {
  for (Shard& sh : shards_) {
    auto r = sh.engine->Recluster();
    if (!r.ok()) return r.status();
  }
  return Status::OK();
}

Status ShardRouter::CompactAll() {
  for (Shard& sh : shards_) {
    auto r = sh.engine->Compact();
    if (!r.ok()) return r.status();
  }
  return Status::OK();
}

void ShardRouter::ResetBufferPool() {
  // Each shard clears the (shared) pool -- idempotent -- and resets its
  // own epoch's calibration to cold.
  for (Shard& sh : shards_) sh.engine->ResetBufferPool();
}

Status ShardRouter::CheckInvariants() const {
  for (size_t i = 1; i < splits_.size(); ++i) {
    if (!(splits_[i - 1] < splits_[i])) {
      return Status::Corruption("split keys not strictly ascending");
    }
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    Status st = shards_[s].engine->CheckInvariants();
    if (!st.ok()) return st;
    const Table& t = shards_[s].engine->table();
    for (RowId r = 0; r < t.NumRows(); ++r) {
      if (t.IsDeleted(r)) continue;
      if (RouteKey(t.GetKey(r, c_col_)) != s) {
        return Status::Corruption("live row held by a shard that does not "
                                  "own its clustered key");
      }
    }
  }
  return Status::OK();
}

}  // namespace corrmap::serve
