// Process-wide, cross-query cache of CmLookupResult runs. The per-query
// CmLookupCache (exec/access_path.h) shares one lookup between costing and
// execution of a single query; this cache extends the reuse across a whole
// stream of queries: entries are keyed by (CM identity, predicate
// fingerprint, CM epoch), so a burst of similar point/range queries pays
// one cm_lookup and every maintenance operation -- which bumps the CM's
// epoch -- implicitly invalidates all of that CM's entries. Stale epochs
// are evicted lazily: a probe that finds an entry under a different epoch
// erases it on the spot rather than paying a sweep.
//
// Thread safety: the cache is striped by key hash; each stripe is a small
// mutex-guarded map, so concurrent readers on different fingerprints
// rarely contend. Results are handed out as shared_ptr so an entry evicted
// mid-use stays alive for the reader holding it.
#ifndef CORRMAP_SERVE_SHARED_LOOKUP_CACHE_H_
#define CORRMAP_SERVE_SHARED_LOOKUP_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/correlation_map.h"
#include "exec/access_path.h"

namespace corrmap::serve {

class SharedLookupCache {
 public:
  using ResultPtr = std::shared_ptr<const CmLookupResult>;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t stale_evictions = 0;
  };

  explicit SharedLookupCache(size_t num_stripes = 16);

  /// FingerprintCmPredicates (core/correlation_map.h) under the cache's
  /// name. Collisions are possible in principle (64-bit mix) but never
  /// unsafe for correctness here beyond serving the colliding query's
  /// runs; the executor re-filters swept rows on the full predicate
  /// either way.
  static uint64_t Fingerprint(std::span<const CmColumnPredicate> preds);

  /// The cached result for (cm_id, fingerprint) at exactly `epoch`, or
  /// null. Finding the pair under an older epoch lazily evicts it; a
  /// fresher entry (published by a reader that saw newer maintenance) is
  /// left in place and reported as a miss.
  ResultPtr Get(const void* cm_id, uint64_t fingerprint, uint64_t epoch);

  /// Publishes a result computed at `epoch`. Never downgrades: an entry
  /// already present under a newer epoch wins over this insert.
  void Put(const void* cm_id, uint64_t fingerprint, uint64_t epoch,
           ResultPtr result);

  /// Drops every entry (tests / reconfiguration).
  void Clear();

  size_t Size() const;
  Stats stats() const;

 private:
  struct EntryKey {
    const void* cm_id;
    uint64_t fingerprint;
    bool operator==(const EntryKey&) const = default;
  };
  struct EntryKeyHash {
    size_t operator()(const EntryKey& k) const {
      return Mix64(uint64_t(reinterpret_cast<uintptr_t>(k.cm_id)) ^
                   Mix64(k.fingerprint));
    }
  };
  struct Entry {
    uint64_t epoch = 0;
    ResultPtr result;
  };
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<EntryKey, Entry, EntryKeyHash> map;
  };

  Stripe& StripeFor(const EntryKey& key) {
    return *stripes_[EntryKeyHash{}(key) % stripes_.size()];
  }

  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> stale_evictions_{0};
};

/// Adapter plugging the shared cache into the exec layer's CmLookupSource
/// seam: Executor::Execute(query, &source) and CmScan then reuse
/// CmLookupResult runs across executions, with CM epoch changes as the
/// invalidation signal. A result is published only when the CM's epoch is
/// unchanged across the computation, so a lookup racing maintenance is
/// used once but never cached.
///
/// One instance per query stream / worker: the adapter pins returned
/// results (shared_ptr) so the raw pointers the exec layer holds stay
/// valid; it is NOT itself thread-safe. Pins older than the retained
/// window are dropped automatically (a single query pins at most a
/// handful of CMs, far below the window); ReleasePins() drops them all,
/// e.g. when retiring the stream.
class SharedCmLookupSource : public CmLookupSource {
 public:
  explicit SharedCmLookupSource(SharedLookupCache* cache) : cache_(cache) {}

  const CmLookupResult* GetOrCompute(const CorrelationMap& cm,
                                     const Query& query) override;

  void ReleasePins() { pinned_.clear(); }

 private:
  /// Auto-trim bounds for the pin list (see GetOrCompute).
  static constexpr size_t kMaxPinned = 64;
  static constexpr size_t kRetainedPinned = 16;

  SharedLookupCache* cache_;
  std::vector<SharedLookupCache::ResultPtr> pinned_;
};

}  // namespace corrmap::serve

#endif  // CORRMAP_SERVE_SHARED_LOOKUP_CACHE_H_
