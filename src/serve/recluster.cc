#include "serve/recluster.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>

#include "index/clustered_index.h"
#include "index/secondary_index.h"
#include "serve/serving_engine.h"

namespace corrmap::serve {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Old row id with no successor row (compacted away).
constexpr RowId kDroppedRow = ~RowId{0};

}  // namespace

std::vector<RowId> MergeTailPermutation(const Table& t, size_t c_col,
                                        RowId boundary, size_t n_rows,
                                        std::vector<Key>* sorted_tail_keys) {
  std::vector<RowId> perm(n_rows);
  std::iota(perm.begin(), perm.end(), RowId{0});
  const auto key_less = [&](RowId a, RowId b) {
    return t.GetKey(a, c_col) < t.GetKey(b, c_col);
  };
  const auto mid = perm.begin() + std::ptrdiff_t(boundary);
  std::stable_sort(mid, perm.end(), key_less);
  if (sorted_tail_keys != nullptr) {
    sorted_tail_keys->clear();
    sorted_tail_keys->reserve(n_rows - boundary);
    for (auto it = mid; it != perm.end(); ++it) {
      sorted_tail_keys->push_back(t.GetKey(*it, c_col));
    }
  }
  // inplace_merge keeps first-range elements before equal second-range
  // elements: clustered-region rows precede equal tail rows, matching the
  // stable sort ClusterBy would have produced.
  std::inplace_merge(perm.begin(), mid, perm.end(), key_less);
  return perm;
}

std::vector<RowId> CompactMergePermutation(
    const Table& t, size_t c_col, RowId boundary, size_t n_rows,
    const ClusteredIndex& old_cidx, std::vector<Key>* sorted_tail_keys,
    std::vector<uint32_t>* deleted_counts) {
  deleted_counts->assign(old_cidx.NumDistinctKeys(), 0);
  std::vector<RowId> perm;
  perm.reserve(n_rows);
  // One pass over the clustered region reads each tombstone exactly once,
  // attributing dead rows to their distinct key (the directory boundaries
  // are a sorted walk) and keeping live rows in order.
  size_t key = 0;
  for (RowId r = 0; r < boundary; ++r) {
    while (key + 1 < old_cidx.NumDistinctKeys() &&
           r >= old_cidx.KeyFirstRow(key + 1)) {
      ++key;
    }
    if (t.IsDeleted(r)) {
      ++(*deleted_counts)[key];
    } else {
      perm.push_back(r);
    }
  }
  const size_t live_clustered = perm.size();
  for (RowId r = boundary; r < n_rows; ++r) {
    if (!t.IsDeleted(r)) perm.push_back(r);
  }
  const auto key_less = [&](RowId a, RowId b) {
    return t.GetKey(a, c_col) < t.GetKey(b, c_col);
  };
  const auto mid = perm.begin() + std::ptrdiff_t(live_clustered);
  std::stable_sort(mid, perm.end(), key_less);
  if (sorted_tail_keys != nullptr) {
    sorted_tail_keys->clear();
    sorted_tail_keys->reserve(perm.size() - live_clustered);
    for (auto it = mid; it != perm.end(); ++it) {
      sorted_tail_keys->push_back(t.GetKey(*it, c_col));
    }
  }
  std::inplace_merge(perm.begin(), mid, perm.end(), key_less);
  return perm;
}

Result<ReclusterStats> Reclusterer::Run() {
  ServingEngine& e = *engine_;
  std::lock_guard<std::mutex> recluster_lock(e.recluster_mu_);
  const std::shared_ptr<ServingEngine::EpochState> old = e.CurrentState();
  const Table& ot = *old->table;
  const size_t c_col = size_t(ot.clustered_column());
  const RowId boundary = old->clustered_boundary;

  // Snapshot the delete-log watermark and the row count together: a delete
  // logged below d0 completed its tombstone before this lock, so the
  // permutation's tombstone reads observe it; everything from d0 on is
  // replayed against the successor in phase 2. Between them every delete
  // is resolved exactly once.
  size_t d0 = 0;
  size_t n0 = 0;
  {
    std::lock_guard<std::mutex> append_lock(e.append_mu_);
    d0 = e.delete_log_.size();
    n0 = ot.NumRows();
  }

  const bool compact = mode_ == ReclusterMode::kCompact;
  ReclusterStats stats;
  stats.epoch = old->version;
  stats.rows_clustered = boundary;
  if (RowId(n0) == boundary && !(compact && ot.NumDeleted() > 0)) {
    return stats;  // empty tail and nothing to drop
  }
  stats.tail_rows_merged = n0 - boundary;

  // ---- Phase 1: build the successor off to the side. Readers keep
  // serving `old`; appends keep landing in ot's tail beyond n0.
  const Clock::time_point t_build = Clock::now();
  std::vector<Key> tail_keys;
  std::vector<uint32_t> deleted_counts;
  const std::vector<RowId> perm =
      compact ? CompactMergePermutation(ot, c_col, boundary, n0, *old->cidx,
                                        &tail_keys, &deleted_counts)
              : MergeTailPermutation(ot, c_col, boundary, n0, &tail_keys);
  if (after_permutation_hook_) after_permutation_hook_();
  // Old -> successor row ids, for replaying deletes that race the copy.
  std::vector<RowId> inverse(n0, kDroppedRow);
  for (size_t i = 0; i < perm.size(); ++i) inverse[perm[i]] = RowId(i);
  stats.rows_compacted = n0 - perm.size();

  auto next = std::make_shared<ServingEngine::EpochState>();
  next->version = old->version + 1;
  next->owned_table = ot.CloneReordered(perm);
  next->table = next->owned_table.get();
  next->clustered_boundary = RowId(perm.size());

  auto ncidx = ClusteredIndex::BuildMerged(*next->table, c_col, *old->cidx,
                                           boundary, tail_keys,
                                           deleted_counts);
  if (!ncidx.ok()) return ncidx.status();
  next->owned_cidx = std::make_unique<ClusteredIndex>(std::move(*ncidx));
  next->cidx = next->owned_cidx.get();

  for (size_t i = 0; i < old->cms.size(); ++i) {
    CmOptions opts = e.attached_[i];
    if (e.c_bucket_targets_[i] == 0) {
      // Unbucketed CMs encode clustered *values*, which CloneReordered
      // preserves (dictionaries and their codes are kept), so the content
      // survives the reorder unchanged. Defer the slot: phase 2 snapshot-
      // copies the predecessor map under the append lock -- where its pair
      // multiset is exactly the successor's -- instead of an O(rows)
      // re-hash here.
      next->cms.push_back(nullptr);
      next->c_bucketings.push_back(nullptr);
      continue;
    }
    // Re-base the positional bucketing over the merged region; the CM
    // rebuilt below maps u-keys to the new bucket ids.
    auto built = ClusteredBucketing::Build(*next->table, opts.c_col,
                                           e.c_bucket_targets_[i]);
    if (!built.ok()) return built.status();
    auto cb = std::make_unique<ClusteredBucketing>(std::move(*built));
    opts.c_buckets = cb.get();
    auto scm = ShardedCorrelationMap::Create(next->table, opts,
                                            e.options_.num_cm_shards);
    if (!scm.ok()) return scm.status();
    auto owned = std::make_unique<ShardedCorrelationMap>(std::move(*scm));
    Status s = owned->BuildFromTable(size_t(next->clustered_boundary));
    if (!s.ok()) return s;
    next->cms.push_back(std::move(owned));
    next->c_bucketings.push_back(std::move(cb));
  }
  // Per-epoch secondary indexes cover the successor's clustered region
  // [0, boundary) and are immutable once published (appends belong to the
  // tail sweep, deletes are re-filtered at execution), so they rebuild per
  // pass like the c-bucketed CMs.
  for (const std::vector<size_t>& cols : e.sidx_columns_) {
    auto idx = std::make_unique<SecondaryIndex>(next->table, cols);
    Status s = idx->BuildFromTable(size_t(next->clustered_boundary));
    if (!s.ok()) return s;
    next->sidx.push_back(std::move(idx));
  }
  // Fresh buffer-pool file ids and a cold calibration cell: the
  // predecessor's frames age out of the pool instead of aliasing the
  // reordered heap, and plan costing re-calibrates against the successor
  // epoch's own hit rates.
  e.InitEpochCalibration(next.get());
  if (after_build_hook_) after_build_hook_();
  stats.build_seconds = SecondsSince(t_build);

  // ---- Phase 2: block writers, catch up the rows they appended during
  // phase 1, raise the successor CM epochs past their predecessors', and
  // publish. Readers are never blocked; a reader holding `old` finishes
  // against a fully consistent retired epoch.
  const Clock::time_point t_swap = Clock::now();
  {
    std::lock_guard<std::mutex> append_lock(e.append_mu_);
    const size_t n1 = ot.NumRows();
    stats.catch_up_rows = n1 - n0;
    // Fill the deferred slots by snapshot copy. Under the append lock the
    // predecessor's unbucketed maps hold exactly the live-row pair multiset
    // (live appends and deletes maintained them through phase 1), which is
    // also what the successor's maps must hold after the catch-up rows and
    // the delete replay below -- so both loops skip the copied slots.
    for (size_t i = 0; i < old->cms.size(); ++i) {
      if (next->cms[i] != nullptr) continue;
      next->cms[i] = std::make_unique<ShardedCorrelationMap>(
          old->cms[i]->CloneRetargeted(next->table));
      ++stats.cms_snapshot_copied;
    }
    e.cm_snapshot_copies_.fetch_add(stats.cms_snapshot_copied,
                                    std::memory_order_acq_rel);
    // The successor is still private: growing its reservation (which may
    // reallocate columns) is safe until the publish below. The successor's
    // row count shrank by the compacted rows, but the reservation is kept
    // at the engine's configured headroom regardless.
    const size_t next_rows = size_t(next->clustered_boundary) + (n1 - n0);
    next->table->Reserve(
        std::max(e.options_.reserve_rows,
                 next_rows + ServingOptions::kDefaultAppendHeadroom));
    if (n1 > n0) {
      next->table->AppendRowsFrom(ot, RowId(n0), RowId(n1));
      // Catch-up rows seed the successor's tail under their successor row
      // ids (compaction shifts them down). No CM maintenance is needed:
      // the snapshot-copied (unbucketed) maps arrive with these rows'
      // pairs already in them, and c-bucketed maps skip tail rows exactly
      // as the live append path does.
    }
    // Replay deletes that landed while phase 1 ran. Log entries >= n0 are
    // catch-up rows: their tombstones were carried just above and their
    // pairs never entered the successor CMs, so there is nothing to do.
    // For rows below n0, the old->new mapping decides: dropped by the
    // compaction -- done; carried as a tombstone by the clone -- done (the
    // successor CM build skipped it; retracting again would double-count);
    // otherwise the clone copied it live before the delete landed, and it
    // is re-deleted here against the successor table and CMs.
    for (size_t k = d0; k < e.delete_log_.size(); ++k) {
      const RowId dr = e.delete_log_[k];
      if (dr >= RowId(n0)) continue;
      const RowId nr = inverse[dr];
      if (nr == kDroppedRow) continue;
      if (next->table->IsDeleted(nr)) continue;
      Status ds = next->table->DeleteRow(nr);
      if (!ds.ok()) return ds;
      for (const auto& scm : next->cms) {
        // Snapshot-copied (unbucketed) maps already retracted this delete
        // in the predecessor before this lock was taken; only the rebuilt
        // c-bucketed maps -- which cover [0, boundary) -- need the replay.
        if (!scm->has_clustered_buckets()) continue;
        if (nr >= next->clustered_boundary) continue;
        Status cs = scm->DeleteRow(nr);
        if (!cs.ok()) return cs;
      }
    }
    // Every logged delete is now resolved in the successor epoch.
    e.delete_log_.clear();
    for (size_t i = 0; i < next->cms.size(); ++i) {
      next->cms[i]->EnsureEpochAtLeast(old->cms[i]->Epoch() + 1);
    }
    stats.tombstones_carried = next->table->NumDeleted();
    e.PublishState(next);
    // Checkpoint at publish, still under the append lock: the successor
    // is a clean consistent snapshot and no write can land between the
    // swap and the snapshot, so the checkpoint captures exactly the
    // published epoch. This also truncates the WAL -- the log restarts in
    // the successor's (permuted) row-id space, which is why a crash
    // BEFORE this point replays the predecessor's checkpoint + tail and a
    // crash after replays this one.
    if (e.durability_ != nullptr) {
      e.durability_->Checkpoint(*next->table, next->clustered_boundary,
                                next->version);
    }
  }
  stats.swap_seconds = SecondsSince(t_swap);
  stats.rows_clustered = uint64_t(next->clustered_boundary);
  stats.epoch = next->version;
  e.reclusters_completed_.fetch_add(1, std::memory_order_acq_rel);
  if (e.metrics_ != nullptr) {
    obs::ServingMetrics& m = *e.metrics_;
    (compact ? m.compactions : m.reclusters)->Increment();
    m.recluster_tail_rows_merged->Add(stats.tail_rows_merged);
    m.recluster_catch_up_rows->Add(stats.catch_up_rows);
    m.recluster_rows_compacted->Add(stats.rows_compacted);
    m.recluster_tombstones_carried->Add(stats.tombstones_carried);
    m.recluster_build_ms->Record(stats.build_seconds * 1e3);
    m.recluster_swap_ms->Record(stats.swap_seconds * 1e3);
    // An epoch swap is the natural drift-window boundary: the successor
    // epoch re-calibrates costing, so est/actual ratios are aggregated per
    // published epoch.
    m.drift().AdvanceEpoch();
  }
  return stats;
}

}  // namespace corrmap::serve
