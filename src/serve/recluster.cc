#include "serve/recluster.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>

#include "index/clustered_index.h"
#include "serve/serving_engine.h"

namespace corrmap::serve {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

std::vector<RowId> MergeTailPermutation(const Table& t, size_t c_col,
                                        RowId boundary, size_t n_rows,
                                        std::vector<Key>* sorted_tail_keys) {
  std::vector<RowId> perm(n_rows);
  std::iota(perm.begin(), perm.end(), RowId{0});
  const auto key_less = [&](RowId a, RowId b) {
    return t.GetKey(a, c_col) < t.GetKey(b, c_col);
  };
  const auto mid = perm.begin() + std::ptrdiff_t(boundary);
  std::stable_sort(mid, perm.end(), key_less);
  if (sorted_tail_keys != nullptr) {
    sorted_tail_keys->clear();
    sorted_tail_keys->reserve(n_rows - boundary);
    for (auto it = mid; it != perm.end(); ++it) {
      sorted_tail_keys->push_back(t.GetKey(*it, c_col));
    }
  }
  // inplace_merge keeps first-range elements before equal second-range
  // elements: clustered-region rows precede equal tail rows, matching the
  // stable sort ClusterBy would have produced.
  std::inplace_merge(perm.begin(), mid, perm.end(), key_less);
  return perm;
}

Result<ReclusterStats> Reclusterer::Run() {
  ServingEngine& e = *engine_;
  std::lock_guard<std::mutex> recluster_lock(e.recluster_mu_);
  const std::shared_ptr<ServingEngine::EpochState> old = e.CurrentState();
  const Table& ot = *old->table;
  const size_t c_col = size_t(ot.clustered_column());
  const RowId boundary = old->clustered_boundary;
  const size_t n0 = ot.NumRows();  // phase-1 snapshot (acquire)

  ReclusterStats stats;
  stats.epoch = old->version;
  stats.rows_clustered = boundary;
  if (RowId(n0) == boundary) return stats;  // empty tail: nothing to move
  stats.tail_rows_merged = n0 - boundary;

  // ---- Phase 1: build the successor off to the side. Readers keep
  // serving `old`; appends keep landing in ot's tail beyond n0.
  const Clock::time_point t_build = Clock::now();
  std::vector<Key> tail_keys;
  const std::vector<RowId> perm =
      MergeTailPermutation(ot, c_col, boundary, n0, &tail_keys);
  auto next = std::make_shared<ServingEngine::EpochState>();
  next->version = old->version + 1;
  next->owned_table = ot.CloneReordered(perm);
  next->table = next->owned_table.get();
  next->clustered_boundary = RowId(n0);

  auto ncidx = ClusteredIndex::BuildMerged(*next->table, c_col, *old->cidx,
                                           boundary, tail_keys);
  if (!ncidx.ok()) return ncidx.status();
  next->owned_cidx = std::make_unique<ClusteredIndex>(std::move(*ncidx));
  next->cidx = next->owned_cidx.get();

  for (size_t i = 0; i < old->cms.size(); ++i) {
    CmOptions opts = e.attached_[i];
    std::unique_ptr<ClusteredBucketing> cb;
    if (e.c_bucket_targets_[i] > 0) {
      // Re-base the positional bucketing over the merged region; the CM
      // rebuilt below maps u-keys to the new bucket ids.
      auto built = ClusteredBucketing::Build(*next->table, opts.c_col,
                                            e.c_bucket_targets_[i]);
      if (!built.ok()) return built.status();
      cb = std::make_unique<ClusteredBucketing>(std::move(*built));
      opts.c_buckets = cb.get();
    }
    auto scm = ShardedCorrelationMap::Create(next->table, opts,
                                            e.options_.num_cm_shards);
    if (!scm.ok()) return scm.status();
    auto owned = std::make_unique<ShardedCorrelationMap>(std::move(*scm));
    Status s = owned->BuildFromTable(n0);
    if (!s.ok()) return s;
    next->cms.push_back(std::move(owned));
    next->c_bucketings.push_back(std::move(cb));
  }
  // Fresh buffer-pool file ids and a cold calibration cell: the
  // predecessor's frames age out of the pool instead of aliasing the
  // reordered heap, and plan costing re-calibrates against the successor
  // epoch's own hit rates.
  e.InitEpochCalibration(next.get());
  stats.build_seconds = SecondsSince(t_build);

  // ---- Phase 2: block writers, catch up the rows they appended during
  // phase 1, raise the successor CM epochs past their predecessors', and
  // publish. Readers are never blocked; a reader holding `old` finishes
  // against a fully consistent retired epoch.
  const Clock::time_point t_swap = Clock::now();
  {
    std::lock_guard<std::mutex> append_lock(e.append_mu_);
    const size_t n1 = ot.NumRows();
    stats.catch_up_rows = n1 - n0;
    // The successor is still private: growing its reservation (which may
    // reallocate columns) is safe until the publish below.
    next->table->Reserve(std::max(e.options_.reserve_rows,
                                  n1 + ServingOptions::kDefaultAppendHeadroom));
    if (n1 > n0) {
      next->table->AppendRowsFrom(ot, RowId(n0), RowId(n1));
      std::vector<RowId> rids(n1 - n0);
      std::iota(rids.begin(), rids.end(), RowId(n0));
      for (const auto& scm : next->cms) {
        // Catch-up rows seed the successor's tail; c-bucketed CMs skip
        // them exactly as the live append path does.
        if (scm->has_clustered_buckets()) continue;
        scm->InsertRowsBatched(rids);
      }
    }
    for (size_t i = 0; i < next->cms.size(); ++i) {
      next->cms[i]->EnsureEpochAtLeast(old->cms[i]->Epoch() + 1);
    }
    e.PublishState(next);
  }
  stats.swap_seconds = SecondsSince(t_swap);
  stats.rows_clustered = n0;
  stats.epoch = next->version;
  e.reclusters_completed_.fetch_add(1, std::memory_order_acq_rel);
  return stats;
}

}  // namespace corrmap::serve
