#include "serve/shared_lookup_cache.h"

#include <bit>

namespace corrmap::serve {

SharedLookupCache::SharedLookupCache(size_t num_stripes) {
  stripes_.reserve(num_stripes == 0 ? 1 : num_stripes);
  for (size_t i = 0; i < std::max<size_t>(1, num_stripes); ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

uint64_t SharedLookupCache::Fingerprint(
    std::span<const CmColumnPredicate> preds) {
  return FingerprintCmPredicates(preds);
}

SharedLookupCache::ResultPtr SharedLookupCache::Get(const void* cm_id,
                                                    uint64_t fingerprint,
                                                    uint64_t epoch) {
  const EntryKey key{cm_id, fingerprint};
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.map.find(key);
  if (it == stripe.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (it->second.epoch < epoch) {
    // Lazy stale eviction: maintenance moved the CM past this entry.
    stripe.map.erase(it);
    stale_evictions_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (it->second.epoch > epoch) {
    // The entry is fresher than the caller's epoch snapshot (a faster
    // reader republished after newer maintenance): a plain miss, but do
    // not discard the newer result.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.result;
}

void SharedLookupCache::Put(const void* cm_id, uint64_t fingerprint,
                            uint64_t epoch, ResultPtr result) {
  const EntryKey key{cm_id, fingerprint};
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto [it, inserted] = stripe.map.try_emplace(key);
  if (!inserted && it->second.epoch > epoch) return;  // never downgrade
  it->second.epoch = epoch;
  it->second.result = std::move(result);
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

void SharedLookupCache::Clear() {
  for (auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stripe->map.clear();
  }
}

size_t SharedLookupCache::Size() const {
  size_t n = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    n += stripe->map.size();
  }
  return n;
}

SharedLookupCache::Stats SharedLookupCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.stale_evictions = stale_evictions_.load(std::memory_order_relaxed);
  return s;
}

const CmLookupResult* SharedCmLookupSource::GetOrCompute(
    const CorrelationMap& cm, const Query& query) {
  // Bound the pin list on long-lived streams: results older than the
  // retained window belong to finished queries (one query pins at most a
  // handful of CMs), so dropping the prefix never invalidates a pointer
  // the current Execute still holds.
  if (pinned_.size() > kMaxPinned) {
    pinned_.erase(pinned_.begin(),
                  pinned_.end() - std::ptrdiff_t(kRetainedPinned));
  }
  auto preds = CmPredicatesFor(cm, query);
  if (!preds.ok()) return nullptr;  // inapplicable: CM attr not predicated
  const uint64_t fp = SharedLookupCache::Fingerprint(*preds);
  const uint64_t epoch = cm.Epoch();
  if (SharedLookupCache::ResultPtr hit = cache_->Get(&cm, fp, epoch)) {
    pinned_.push_back(std::move(hit));
    return pinned_.back().get();
  }
  auto result = std::make_shared<const CmLookupResult>(cm.Lookup(*preds));
  // Publish only if no maintenance interleaved with the computation.
  if (cm.Epoch() == epoch) cache_->Put(&cm, fp, epoch, result);
  pinned_.push_back(std::move(result));
  return pinned_.back().get();
}

}  // namespace corrmap::serve
