// Multi-threaded workload driver: replays Fig.-9-style mixed insert/select
// traffic against a ServingEngine at configurable reader/writer thread
// counts and reports wall-clock throughput plus latency percentiles.
//
// Readers sample queries uniformly from a caller-supplied pool; writers
// replay pre-generated append batches (generated before the run so no
// thread reads the table while another appends outside the engine's
// contract). Each operation may be followed by an emulated device stall
// proportional to its simulated disk cost: the repository's experiments
// charge I/O in simulated milliseconds, and sleeping a configurable
// fraction of that cost turns the simulation into actual blocking time --
// which is what makes reader-thread scaling observable even on a single
// core, exactly as it would be against a real device.
#ifndef CORRMAP_SERVE_DRIVER_H_
#define CORRMAP_SERVE_DRIVER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "exec/predicate.h"
#include "obs/metrics.h"
#include "serve/serving_engine.h"

namespace corrmap::serve {

struct DriverOptions {
  size_t reader_threads = 4;
  size_t writer_threads = 0;
  /// Selects each reader thread issues.
  size_t lookups_per_reader = 1000;
  /// Append batches each writer thread applies (cycling through the
  /// pre-generated batch list).
  size_t batches_per_writer = 0;
  /// Emulated device wait: sleep this many microseconds per simulated
  /// disk millisecond after each select. 0 disables the stall.
  double io_stall_us_per_simulated_ms = 0;
  /// Fixed pacing sleep between a writer's batches, in microseconds.
  double writer_pause_us = 0;
  /// Route selects through Submit() and the engine's worker pool (true)
  /// or call ExecuteSelect inline from the reader threads (false).
  bool use_worker_pool = true;
  uint64_t seed = 0x5e21;
};

/// Latency quantiles, computed from an obs::Histogram over the run's wall
/// latencies -- the same log-bucketed type the MetricsRegistry exports, so
/// a driver report and a registry snapshot fed the same samples agree
/// exactly (count/mean/max exact; quantiles share the <= 6.25% bucket
/// bound). The old sort-based exact percentiles are gone on purpose:
/// two quantile definitions over one stream is how dashboards and bench
/// reports end up contradicting each other.
struct LatencySummary {
  double p50_us = 0;
  double p99_us = 0;
  double max_us = 0;
  double mean_us = 0;

  /// Summarizes `h` (p50/p99 from the log buckets, max/mean exact).
  static LatencySummary FromHistogram(const obs::Histogram& h);
};

struct DriverReport {
  /// Mean simulated per-select cost of the second half of each reader's
  /// stream over the first (1.0 = flat; see simulated_first_half_ms).
  double SecondHalfCostRatio() const {
    if (lookups_first_half == 0 || lookups_second_half == 0) return 0;
    const double first =
        simulated_first_half_ms / double(lookups_first_half);
    const double second =
        simulated_second_half_ms / double(lookups_second_half);
    return first > 0 ? second / first : 0;
  }

  uint64_t lookups = 0;
  uint64_t lookup_matches = 0;
  uint64_t lookup_cache_hits = 0;
  uint64_t batches_appended = 0;
  uint64_t rows_appended = 0;
  uint64_t append_rejections = 0;  ///< capacity-exhausted batches
  /// First reader start to last reader finish.
  double wall_seconds = 0;
  double lookups_per_second = 0;
  /// Sum of per-select simulated disk cost (the simulation-domain view).
  double simulated_select_ms = 0;
  /// The same cost split between each reader's first and second half of
  /// selects: with appends streaming in and no recluster, the second-half
  /// mean strictly exceeds the first (the tail sweep grows per batch);
  /// with reclusters the ratio stays bounded. The Fig. 9 health metric.
  double simulated_first_half_ms = 0;
  double simulated_second_half_ms = 0;
  uint64_t lookups_first_half = 0;
  uint64_t lookups_second_half = 0;
  /// Recluster passes the engine completed during the run.
  uint64_t reclusters = 0;
  /// Select latency including queue wait and the emulated device stall.
  LatencySummary lookup_latency;
  SharedLookupCache::Stats cache;
};

class WorkloadDriver {
 public:
  WorkloadDriver(ServingEngine* engine, DriverOptions options)
      : engine_(engine), options_(options) {}

  /// Runs the configured reader/writer threads to completion.
  /// `append_batches` must stay alive for the duration; writers cycle
  /// through it round-robin and may replay a batch more than once.
  DriverReport Run(std::span<const Query> query_pool,
                   std::span<const std::vector<std::vector<Key>>>
                       append_batches);

 private:
  ServingEngine* engine_;
  DriverOptions options_;
};

}  // namespace corrmap::serve

#endif  // CORRMAP_SERVE_DRIVER_H_
