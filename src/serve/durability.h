// Durability manager for the serving engine: a group-commit WAL of
// serialized row operations plus an epoch-consistent checkpoint snapshot.
//
// Protocol. Every committed write transaction (ApplyAppend / ApplyDelete /
// ApplyUpdate, each executed under the engine's append mutex) logs one
// framed row-op record followed by a kCommit marker; the log is flushed
// every `group_commit_ops` commits (group commit), so a crash loses at
// most one un-flushed batch and a torn tail can cut a flush mid-frame --
// the WAL's CRC re-parse drops exactly the torn suffix. At every
// recluster/compact publish the engine hands the successor table here as a
// checkpoint: the epoch swap is a natural consistent snapshot (the
// successor is a clean private copy until published), so the snapshot
// clone plus a kCheckpoint record plus TruncateThrough bound the log to
// one epoch of writes.
//
// Row identity. Records address rows by physical RowId. Ids are stable
// within an epoch -- only a recluster publish permutes them -- and every
// publish also checkpoints, so all records in the retained log tail speak
// the id space of the checkpoint they follow. Replaying them in log order
// against the checkpoint clone reproduces the exact pre-crash table
// (appends re-land on the same ids because the row count evolves
// identically). CMs, secondary indexes, and calibration are NOT logged:
// they are replay-derived (rebuilt from the recovered base data), the
// Hermit stance that correlation structures must be cheaply rebuildable.
//
// Threading: the engine calls Log*/Checkpoint under its append mutex, but
// Durability also guards itself with an internal mutex so crash hooks and
// metric reads from other threads stay race-free.
#ifndef CORRMAP_SERVE_DURABILITY_H_
#define CORRMAP_SERVE_DURABILITY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/value.h"
#include "obs/serving_metrics.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace corrmap::serve {

struct DurabilityOptions {
  /// Commits between WAL flushes (group commit). 1 flushes every op
  /// (synchronous commit); larger batches amortize the per-flush seek at
  /// the cost of losing up to N-1 committed-in-memory ops on a crash.
  size_t group_commit_ops = 8;
  /// Page size the WAL charges sequential writes in.
  size_t wal_page_bytes = 8192;
  /// Optional sink for WAL flush/byte counters and the group-commit
  /// batch-size histogram (must outlive this object).
  obs::ServingMetrics* metrics = nullptr;
};

/// What one ServingEngine::Recover pass did, for tests and the bench.
struct RecoveryStats {
  uint64_t checkpoint_epoch = 0;   ///< epoch the snapshot was taken at
  size_t checkpoint_rows = 0;      ///< rows in the snapshot
  size_t records_scanned = 0;      ///< committed records replayed over
  size_t rows_appended = 0;        ///< rows re-appended from kRowAppend
  size_t deletes_replayed = 0;
  size_t updates_replayed = 0;
  size_t uncommitted_dropped = 0;  ///< durable data records w/o a commit
  double wall_seconds = 0;
};

class Durability {
 public:
  explicit Durability(DurabilityOptions options = {});

  Durability(const Durability&) = delete;
  Durability& operator=(const Durability&) = delete;

  // --- Logging (engine write path, under its append mutex) ---------------

  /// Logs `rows` appended contiguously starting at `first_row` and
  /// commits the op (flush every group_commit_ops commits).
  void LogAppend(RowId first_row, std::span<const std::vector<Key>> rows);

  /// Logs the tombstoning of `rows` (already-filtered to newly-deleted)
  /// as one committed op.
  void LogDeletes(std::span<const RowId> rows);

  /// Logs an update of `row` to `new_values` (tombstone + tail re-append,
  /// mirroring ApplyUpdate) as one committed op.
  void LogUpdate(RowId row, std::span<const Key> new_values);

  /// Flushes any buffered commits immediately.
  void FlushNow();

  // --- Checkpointing (recluster publish, under the append mutex) ---------

  /// Takes a durable snapshot of `table` (clone, simulating the flushed
  /// heap image), logs a kCheckpoint record, and truncates the WAL
  /// through it. The caller must guarantee `table` is quiescent (the
  /// engine holds its append mutex across the publish).
  void Checkpoint(const Table& table, RowId clustered_boundary,
                  uint64_t epoch);

  bool has_checkpoint() const;
  /// The snapshot's table / boundary / epoch (null / 0 before the first
  /// Checkpoint).
  const Table* checkpoint_table() const;
  RowId checkpoint_boundary() const;
  uint64_t checkpoint_epoch() const;

  // --- Crash & recovery ---------------------------------------------------

  /// Simulates a crash: un-flushed commits are lost and up to
  /// `torn_tail_bytes` are torn off the last WAL flush (see
  /// WriteAheadLog::Crash). The checkpoint snapshot survives -- it models
  /// the durably flushed heap image.
  void Crash(size_t torn_tail_bytes = 0);

  /// The committed row-op records after the last durable checkpoint, in
  /// log order -- exactly what ServingEngine::Recover replays. Records of
  /// txns without a durable kCommit marker are excluded (satellite: a
  /// prepared-but-uncommitted txn must not be replayed).
  std::vector<WalRecord> CommittedTail() const;

  /// Durable data records dropped by commit filtering (for RecoveryStats).
  size_t UncommittedDurableRecords() const;

  // --- Introspection ------------------------------------------------------

  uint64_t ops_logged() const;
  uint64_t checkpoints_taken() const;
  uint64_t wal_flushes() const;
  uint64_t wal_bytes_durable() const;
  size_t wal_log_bytes() const;

  // --- Payload codecs (shared by recovery and tests) ----------------------

  struct AppendOp {
    RowId first_row = 0;
    std::vector<std::vector<Key>> rows;
  };
  struct UpdateOp {
    RowId row = 0;
    std::vector<Key> new_values;
  };
  static std::string EncodeAppend(RowId first_row,
                                  std::span<const std::vector<Key>> rows);
  static std::string EncodeDeletes(std::span<const RowId> rows);
  static std::string EncodeUpdate(RowId row, std::span<const Key> new_values);
  static bool DecodeAppend(const std::string& payload, AppendOp* out);
  static bool DecodeDeletes(const std::string& payload,
                            std::vector<RowId>* out);
  static bool DecodeUpdate(const std::string& payload, UpdateOp* out);

 private:
  /// Appends one data record + its commit marker and applies the
  /// group-commit policy. Caller holds mu_.
  void CommitOpLocked(WalRecordType type, std::string payload);
  /// Flushes and records the batch-size histogram. Caller holds mu_.
  void FlushLocked();
  /// Pushes WAL counter deltas into the metrics sink. Caller holds mu_.
  void SyncMetricsLocked();

  DurabilityOptions options_;
  mutable std::mutex mu_;
  WriteAheadLog wal_;
  uint64_t next_txn_ = 1;
  size_t ops_since_flush_ = 0;
  uint64_t ops_logged_ = 0;
  uint64_t checkpoints_ = 0;
  /// Metric-sync cursors (the registry wants deltas, the WAL keeps
  /// cumulative counters).
  uint64_t synced_flushes_ = 0;
  uint64_t synced_bytes_ = 0;
  uint64_t synced_records_ = 0;
  /// The durable snapshot: a full clone of the last published table.
  std::unique_ptr<Table> snapshot_table_;
  RowId snapshot_boundary_ = 0;
  uint64_t snapshot_epoch_ = 0;
};

}  // namespace corrmap::serve

#endif  // CORRMAP_SERVE_DURABILITY_H_
