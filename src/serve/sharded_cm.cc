#include "serve/sharded_cm.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <mutex>
#include <utility>

namespace corrmap::serve {

Result<ShardedCorrelationMap> ShardedCorrelationMap::Create(
    const Table* table, CmOptions options, size_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("need at least one shard");
  }
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto cm = CorrelationMap::Create(table, options);
    if (!cm.ok()) return cm.status();
    shards.push_back(std::make_unique<Shard>(std::move(*cm)));
  }
  return ShardedCorrelationMap(std::move(shards));
}

Status ShardedCorrelationMap::BuildFromTable(size_t row_limit) {
  const Table& t = table();
  const size_t n = std::min(row_limit, t.NumRows());
  std::vector<RowId> rows;
  rows.reserve(n);
  for (RowId r = 0; r < n; ++r) {
    if (!t.IsDeleted(r)) rows.push_back(r);
  }
  InsertRowsBatched(rows);
  return Status::OK();
}

void ShardedCorrelationMap::InsertRow(RowId row) {
  // Bucket once: the same (u-key, ordinal) pair routes the shard and is
  // handed down so the shard's map does not re-derive it from the table.
  const CorrelationMap& front = shards_.front()->cm;
  const CmKey key = front.UKeyOfRow(row);
  const int64_t c = front.ClusteredOrdinalOfRow(row);
  Shard& s = *shards_[ShardOf(key)];
  BeginMaintenance();
  {
    std::unique_lock lock(s.mu);
    s.cm.UpsertPair(key, c);
    s.cm.SyncDirectory();
  }
  EndMaintenance();
}

Status ShardedCorrelationMap::DeleteRow(RowId row) {
  const CorrelationMap& front = shards_.front()->cm;
  const CmKey key = front.UKeyOfRow(row);
  const int64_t c = front.ClusteredOrdinalOfRow(row);
  Shard& s = *shards_[ShardOf(key)];
  BeginMaintenance();
  Status st;
  {
    std::unique_lock lock(s.mu);
    st = s.cm.RetractPair(key, c);
    s.cm.SyncDirectory();
  }
  EndMaintenance();
  return st;
}

Status ShardedCorrelationMap::DeleteRowsBatched(std::span<const RowId> rows) {
  // Batched DeleteRow under one maintenance bracket: bucket each row once,
  // route the pair to its shard, retract each touched shard's sub-batch in
  // one locked pass. An empty batch must not bump the epoch. The rows must
  // still carry their pre-delete column values (tombstoning does not erase
  // them), since the pair is re-derived from the table here.
  if (rows.empty()) return Status::OK();
  const CorrelationMap& front = shards_.front()->cm;
  std::vector<std::vector<std::pair<CmKey, int64_t>>> by_shard(
      shards_.size());
  for (RowId r : rows) {
    const CmKey key = front.UKeyOfRow(r);
    by_shard[ShardOf(key)].emplace_back(key, front.ClusteredOrdinalOfRow(r));
  }
  BeginMaintenance();
  Status st;
  for (size_t i = 0; i < shards_.size() && st.ok(); ++i) {
    if (by_shard[i].empty()) continue;
    Shard& s = *shards_[i];
    std::unique_lock lock(s.mu);
    st = s.cm.RetractPairsBatched(std::move(by_shard[i]));
    s.cm.SyncDirectory();
  }
  EndMaintenance();
  return st;
}

size_t ShardedCorrelationMap::InsertRowsBatched(std::span<const RowId> rows) {
  // An empty batch must not bump the epoch (it would invalidate every
  // cached lookup for a no-op).
  if (rows.empty()) return 0;
  // Bucket each row exactly once, route the precomputed pair to its shard,
  // then lock and apply each touched shard once; the per-shard map sorts
  // its sub-batch of pairs without ever touching the table again.
  const CorrelationMap& front = shards_.front()->cm;
  std::vector<std::vector<std::pair<CmKey, int64_t>>> by_shard(
      shards_.size());
  for (RowId r : rows) {
    const CmKey key = front.UKeyOfRow(r);
    by_shard[ShardOf(key)].emplace_back(key, front.ClusteredOrdinalOfRow(r));
  }
  BeginMaintenance();
  size_t groups = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (by_shard[i].empty()) continue;
    Shard& s = *shards_[i];
    std::unique_lock lock(s.mu);
    groups += s.cm.UpsertPairsBatched(std::move(by_shard[i]));
    s.cm.SyncDirectory();
  }
  EndMaintenance();
  return groups;
}

void ShardedCorrelationMap::InsertValues(std::span<const Key> u_keys,
                                         int64_t c_ordinal) {
  const CmKey key = shards_.front()->cm.UKeyOfValues(u_keys);
  Shard& s = *shards_[ShardOf(key)];
  BeginMaintenance();
  {
    std::unique_lock lock(s.mu);
    s.cm.UpsertPair(key, c_ordinal);
    s.cm.SyncDirectory();
  }
  EndMaintenance();
}

Status ShardedCorrelationMap::DeleteValues(std::span<const Key> u_keys,
                                           int64_t c_ordinal) {
  const CmKey key = shards_.front()->cm.UKeyOfValues(u_keys);
  Shard& s = *shards_[ShardOf(key)];
  BeginMaintenance();
  Status st;
  {
    std::unique_lock lock(s.mu);
    st = s.cm.RetractPair(key, c_ordinal);
    s.cm.SyncDirectory();
  }
  EndMaintenance();
  return st;
}

CmLookupResult MergeShardResults(std::vector<CmLookupResult> parts) {
  CmLookupResult out;
  std::vector<OrdinalRange> ranges;
  for (CmLookupResult& p : parts) {
    out.entries_probed += p.entries_probed;
    out.used_directory = out.used_directory || p.used_directory;
    ranges.insert(ranges.end(), p.ranges.begin(), p.ranges.end());
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const OrdinalRange& a, const OrdinalRange& b) {
              return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
            });
  for (const OrdinalRange& r : ranges) {
    // Merge overlapping or adjacent runs; ordinal sets from different
    // shards may duplicate (distinct u-keys co-occurring with the same
    // clustered ordinal live in different shards).
    if (!out.ranges.empty() &&
        (r.lo <= out.ranges.back().hi ||
         (out.ranges.back().hi != std::numeric_limits<int64_t>::max() &&
          r.lo == out.ranges.back().hi + 1))) {
      out.ranges.back().hi = std::max(out.ranges.back().hi, r.hi);
    } else {
      out.ranges.push_back(r);
    }
  }
  for (const OrdinalRange& r : out.ranges) {
    out.num_ordinals += uint64_t(r.hi - r.lo) + 1;
  }
  return out;
}

CmLookupResult ShardedCorrelationMap::Lookup(
    std::span<const CmColumnPredicate> preds) const {
  // Point predicates: compile the probe-key cross product once (against
  // the front shard's immutable bucketers) and touch only the shards that
  // own a probe key -- every other shard stays unlocked and unprobed.
  if (!CorrelationMap::HasRangePredicate(preds)) {
    std::vector<CmKey> probe_keys;
    if (!shards_.front()->cm.CompilePointProbeKeys(preds, &probe_keys)) {
      return CmLookupResult{};  // a constraint is provably empty
    }
    std::vector<std::vector<CmKey>> by_shard(shards_.size());
    for (const CmKey& key : probe_keys) {
      by_shard[ShardOf(key)].push_back(key);
    }
    std::vector<CmLookupResult> parts;
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (by_shard[i].empty()) continue;
      std::shared_lock lock(shards_[i]->mu);
      parts.push_back(shards_[i]->cm.LookupKeys(by_shard[i]));
    }
    return MergeShardResults(std::move(parts));
  }
  return LookupProbingAllShards(preds);
}

CmLookupResult ShardedCorrelationMap::LookupProbingAllShards(
    std::span<const CmColumnPredicate> preds) const {
  bool needs_directory = false;
  for (const CmColumnPredicate& p : preds) {
    if (p.kind == CmColumnPredicate::Kind::kRange) needs_directory = true;
  }
  std::vector<CmLookupResult> parts;
  parts.reserve(shards_.size());
  for (const auto& shard : shards_) {
    if (needs_directory) {
      // Fast path: shared lock while the shard's directory is in sync (a
      // range lookup then mutates nothing). Writers sync the directory
      // before unlocking, so the slow path only runs after maintenance
      // performed without exclusive access (e.g. a bulk load).
      {
        std::shared_lock lock(shard->mu);
        if (shard->cm.DirectoryClean()) {
          parts.push_back(shard->cm.Lookup(preds));
          continue;
        }
      }
      std::unique_lock lock(shard->mu);
      parts.push_back(shard->cm.Lookup(preds));
    } else {
      std::shared_lock lock(shard->mu);
      parts.push_back(shard->cm.Lookup(preds));
    }
  }
  return MergeShardResults(std::move(parts));
}

std::string ShardedCorrelationMap::Name() const {
  return shards_.front()->cm.Name() + "[x" + std::to_string(shards_.size()) +
         "]";
}

CmPlanView ShardedCorrelationMap::PlanView(const CmLookupResult* lookup) const {
  CmPlanView view;
  view.lookup = lookup;
  view.c_buckets = options().c_buckets;
  view.num_ukeys = NumUKeys();
  view.name = Name();
  return view;
}

size_t ShardedCorrelationMap::NumUKeys() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    n += shard->cm.NumUKeys();
  }
  return n;
}

size_t ShardedCorrelationMap::NumEntries() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    n += shard->cm.NumEntries();
  }
  return n;
}

uint64_t ShardedCorrelationMap::SizeBytes() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    n += shard->cm.SizeBytes();
  }
  return n;
}

ShardedCorrelationMap ShardedCorrelationMap::CloneRetargeted(
    const Table* table) const {
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    shards.push_back(std::make_unique<Shard>(shard->cm.CloneRetargeted(table)));
  }
  ShardedCorrelationMap out(std::move(shards));
  out.epoch_.store(Epoch(), std::memory_order_release);
  return out;
}

Status ShardedCorrelationMap::CheckInvariants() const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::shared_lock lock(shards_[i]->mu);
    Status s = shards_[i]->cm.CheckInvariants();
    if (!s.ok()) return s;
    for (const CorrelationMap::Record& rec : shards_[i]->cm.ToRecords()) {
      if (ShardOf(rec.u) != i) {
        return Status::Corruption("u-key " + rec.u.ToString() +
                                  " routed to wrong shard");
      }
    }
  }
  return Status::OK();
}

}  // namespace corrmap::serve
