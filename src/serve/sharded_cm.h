// Concurrent Correlation Map: the per-CM building block of the serving
// layer (src/serve/serving_engine.h). The u-key space is partitioned by
// CmKey hash into independent shards, each a complete CorrelationMap over
// its subset of u-keys (hash map + sorted bucket-ordinal directory) behind
// its own std::shared_mutex. Lookups take shared locks shard by shard and
// merge the per-shard ordinal runs; maintenance takes exclusive locks only
// on the shards its keys hash to, so writers on disjoint shards never
// contend and readers only wait for the shard currently being updated.
//
// Epoch protocol (consumed by SharedLookupCache): a single atomic epoch is
// bumped once before a maintenance operation touches any shard and once
// after it finishes. A lookup result is safe to cache under the epoch read
// before the lookup iff the epoch is unchanged after it -- any concurrent
// writer would have bumped at least the begin mark. Writers sync each
// shard's directory before releasing the exclusive lock (an incremental
// merge for small deltas), keeping readers on the shared-lock fast path.
#ifndef CORRMAP_SERVE_SHARDED_CM_H_
#define CORRMAP_SERVE_SHARDED_CM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/correlation_map.h"
#include "exec/plan_choice.h"

namespace corrmap::serve {

/// A CorrelationMap sharded by CmKey hash for concurrent serving.
class ShardedCorrelationMap {
 public:
  static constexpr size_t kDefaultShards = 8;

  /// Creates an empty sharded CM; same validation as CorrelationMap::Create.
  static Result<ShardedCorrelationMap> Create(const Table* table,
                                              CmOptions options,
                                              size_t num_shards =
                                                  kDefaultShards);

  /// Moves transfer the shards wholesale; the epoch value carries over.
  /// Not thread-safe (move only while no one else holds a reference).
  ShardedCorrelationMap(ShardedCorrelationMap&& o) noexcept
      : shards_(std::move(o.shards_)), epoch_(o.epoch_.load()) {}
  ShardedCorrelationMap& operator=(ShardedCorrelationMap&& o) noexcept {
    if (this != &o) {
      shards_ = std::move(o.shards_);
      epoch_.store(o.epoch_.load());
    }
    return *this;
  }

  /// Algorithm 1 bulk build (not thread-safe; run before serving starts,
  /// or on a not-yet-published recluster successor). `row_limit` bounds
  /// the scan to the first `row_limit` rows -- the recluster pass uses it
  /// to build a c-bucketed CM over exactly the clustered region.
  Status BuildFromTable(size_t row_limit = ~size_t{0});

  /// Thread-safe maintenance: buckets each row exactly once to its
  /// (u-key, clustered ordinal) pair, routes the pair to its shard,
  /// exclusive-locks only the touched shards (passing the precomputed pair
  /// down, so the shard's map never re-buckets), and brackets the whole
  /// operation with epoch bumps.
  void InsertRow(RowId row);
  Status DeleteRow(RowId row);
  size_t InsertRowsBatched(std::span<const RowId> rows);
  /// Batched DeleteRow under one epoch bracket; the rows' column values
  /// must still be readable (tombstoning keeps them).
  Status DeleteRowsBatched(std::span<const RowId> rows);
  void InsertValues(std::span<const Key> u_keys, int64_t c_ordinal);
  Status DeleteValues(std::span<const Key> u_keys, int64_t c_ordinal);

  /// Thread-safe cm_lookup. Point predicates are compiled once to their
  /// probe-key cross product and each key is routed to its owning shard,
  /// so only those shards are locked and probed; range predicates probe
  /// every shard's sorted directory under a shared lock (taking a shard's
  /// exclusive lock only if its directory needs a rebuild). Per-shard runs
  /// are merged into one sorted, disjoint, coalesced set.
  CmLookupResult Lookup(std::span<const CmColumnPredicate> preds) const;

  /// The pre-routing reference path: probes every shard with the full
  /// predicate vector. Kept for the routed-vs-all-shard parity tests and
  /// as the fallback shape; returns identical ordinals to Lookup.
  CmLookupResult LookupProbingAllShards(
      std::span<const CmColumnPredicate> preds) const;

  /// Costing adapter for the cost-based serving path: the CmPlanView plan
  /// enumeration (exec/plan_choice.h) consumes for this CM as one
  /// candidate, wrapping an already-computed lookup -- typically served
  /// from the SharedLookupCache, so costing and execution share one
  /// cm_lookup per (CM, predicate, epoch). Pass nullptr to mark the CM
  /// inapplicable for the query.
  CmPlanView PlanView(const CmLookupResult* lookup) const;

  /// Maintenance version counter; see the epoch protocol above.
  uint64_t Epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Raises the epoch to at least `floor`. The recluster pass calls this
  /// on the successor CM before publishing it under the predecessor's
  /// stable cache slot, so every cache entry keyed to a pre-recluster
  /// epoch compares stale and is lazily evicted, never served.
  void EnsureEpochAtLeast(uint64_t floor) {
    uint64_t cur = epoch_.load(std::memory_order_relaxed);
    while (cur < floor && !epoch_.compare_exchange_weak(
                              cur, floor, std::memory_order_release,
                              std::memory_order_relaxed)) {
    }
  }

  size_t num_shards() const { return shards_.size(); }
  const CmOptions& options() const { return shards_.front()->cm.options(); }
  const Table& table() const { return shards_.front()->cm.table(); }
  bool has_clustered_buckets() const {
    return shards_.front()->cm.has_clustered_buckets();
  }
  Key DecodeClusteredOrdinal(int64_t ordinal) const {
    return shards_.front()->cm.DecodeClusteredOrdinal(ordinal);
  }
  std::string Name() const;

  /// Sums over shards (each taken under a shared lock; the totals are only
  /// consistent in the absence of concurrent maintenance).
  size_t NumUKeys() const;
  size_t NumEntries() const;
  uint64_t SizeBytes() const;

  /// Snapshot copy re-pointed at `table` (a reordered clone of this CM's
  /// table), shard by shard under shared locks; epoch carries over. Only
  /// valid without clustered bucketing (ordinals encode values, not
  /// positions -- see CorrelationMap::CloneRetargeted). The recluster swap
  /// uses this under the append lock, where the predecessor's content is
  /// exactly the live rows' pairs, instead of an O(rows) re-hash.
  ShardedCorrelationMap CloneRetargeted(const Table* table) const;

  /// Per-shard CorrelationMap invariants plus shard routing: every u-key
  /// must live in the shard its hash selects.
  Status CheckInvariants() const;

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    CorrelationMap cm;

    explicit Shard(CorrelationMap m) : cm(std::move(m)) {}
  };

  explicit ShardedCorrelationMap(std::vector<std::unique_ptr<Shard>> shards)
      : shards_(std::move(shards)) {}

  size_t ShardOf(const CmKey& key) const {
    return CmKeyHash{}(key) % shards_.size();
  }

  /// Epoch brackets around one maintenance operation.
  void BeginMaintenance() {
    epoch_.fetch_add(1, std::memory_order_release);
  }
  void EndMaintenance() { epoch_.fetch_add(1, std::memory_order_release); }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> epoch_{0};
};

/// Merges per-shard lookup results (each sorted, disjoint, coalesced) into
/// one: ordinal runs from different shards may duplicate or interleave, so
/// the union is re-coalesced. Exposed for tests.
CmLookupResult MergeShardResults(std::vector<CmLookupResult> parts);

}  // namespace corrmap::serve

#endif  // CORRMAP_SERVE_SHARDED_CM_H_
