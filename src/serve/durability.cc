#include "serve/durability.h"

#include <bit>
#include <utility>

namespace corrmap::serve {

namespace {

void PutU64(std::string* out, uint64_t v) {
  for (size_t i = 0; i < 8; ++i) {
    out->push_back(char(uint8_t(v >> (8 * i))));
  }
}

bool GetU64(const std::string& s, size_t* pos, uint64_t* v) {
  if (*pos + 8 > s.size()) return false;
  uint64_t out = 0;
  for (size_t i = 0; i < 8; ++i) {
    out |= uint64_t(uint8_t(s[*pos + i])) << (8 * i);
  }
  *pos += 8;
  *v = out;
  return true;
}

/// A physical key is a 9-byte unit: a type flag (1 = double) followed by
/// the 8 raw value bytes. Doubles round-trip via bit_cast so NaNs and
/// signed zeros survive exactly.
void PutKey(std::string* out, const Key& k) {
  out->push_back(k.is_double() ? char(1) : char(0));
  PutU64(out, k.is_double() ? std::bit_cast<uint64_t>(k.AsDouble())
                            : uint64_t(k.AsInt64()));
}

bool GetKey(const std::string& s, size_t* pos, Key* k) {
  if (*pos >= s.size()) return false;
  const uint8_t flag = uint8_t(s[*pos]);
  ++*pos;
  uint64_t raw = 0;
  if (!GetU64(s, pos, &raw)) return false;
  *k = flag != 0 ? Key(std::bit_cast<double>(raw)) : Key(int64_t(raw));
  return true;
}

}  // namespace

Durability::Durability(DurabilityOptions options)
    : options_(options), wal_(options.wal_page_bytes) {
  if (options_.group_commit_ops == 0) options_.group_commit_ops = 1;
}

// --- Payload codecs --------------------------------------------------------

std::string Durability::EncodeAppend(RowId first_row,
                                     std::span<const std::vector<Key>> rows) {
  std::string p;
  const size_t cols = rows.empty() ? 0 : rows[0].size();
  p.reserve(24 + rows.size() * cols * 9);
  PutU64(&p, first_row);
  PutU64(&p, rows.size());
  PutU64(&p, cols);
  for (const std::vector<Key>& row : rows) {
    for (const Key& k : row) PutKey(&p, k);
  }
  return p;
}

std::string Durability::EncodeDeletes(std::span<const RowId> rows) {
  std::string p;
  p.reserve(8 + rows.size() * 8);
  PutU64(&p, rows.size());
  for (const RowId r : rows) PutU64(&p, r);
  return p;
}

std::string Durability::EncodeUpdate(RowId row,
                                     std::span<const Key> new_values) {
  std::string p;
  p.reserve(16 + new_values.size() * 9);
  PutU64(&p, row);
  PutU64(&p, new_values.size());
  for (const Key& k : new_values) PutKey(&p, k);
  return p;
}

bool Durability::DecodeAppend(const std::string& payload, AppendOp* out) {
  size_t pos = 0;
  uint64_t first = 0, n_rows = 0, n_cols = 0;
  if (!GetU64(payload, &pos, &first) || !GetU64(payload, &pos, &n_rows) ||
      !GetU64(payload, &pos, &n_cols)) {
    return false;
  }
  out->first_row = RowId(first);
  out->rows.assign(size_t(n_rows), std::vector<Key>(size_t(n_cols)));
  for (auto& row : out->rows) {
    for (Key& k : row) {
      if (!GetKey(payload, &pos, &k)) return false;
    }
  }
  return pos == payload.size();
}

bool Durability::DecodeDeletes(const std::string& payload,
                               std::vector<RowId>* out) {
  size_t pos = 0;
  uint64_t n = 0;
  if (!GetU64(payload, &pos, &n)) return false;
  out->assign(size_t(n), RowId{0});
  for (RowId& r : *out) {
    uint64_t v = 0;
    if (!GetU64(payload, &pos, &v)) return false;
    r = RowId(v);
  }
  return pos == payload.size();
}

bool Durability::DecodeUpdate(const std::string& payload, UpdateOp* out) {
  size_t pos = 0;
  uint64_t row = 0, n_cols = 0;
  if (!GetU64(payload, &pos, &row) || !GetU64(payload, &pos, &n_cols)) {
    return false;
  }
  out->row = RowId(row);
  out->new_values.assign(size_t(n_cols), Key{});
  for (Key& k : out->new_values) {
    if (!GetKey(payload, &pos, &k)) return false;
  }
  return pos == payload.size();
}

// --- Logging ---------------------------------------------------------------

void Durability::CommitOpLocked(WalRecordType type, std::string payload) {
  const uint64_t txn = next_txn_++;
  wal_.Append({type, txn, std::move(payload)});
  wal_.Append({WalRecordType::kCommit, txn, ""});
  ++ops_logged_;
  ++ops_since_flush_;
  if (ops_since_flush_ >= options_.group_commit_ops) FlushLocked();
}

void Durability::FlushLocked() {
  if (ops_since_flush_ == 0) return;
  const size_t batch = ops_since_flush_;
  wal_.Flush();
  ops_since_flush_ = 0;
  if (options_.metrics != nullptr) {
    options_.metrics->wal_group_commit_ops->Record(double(batch));
  }
  SyncMetricsLocked();
}

void Durability::SyncMetricsLocked() {
  if (options_.metrics == nullptr) return;
  obs::ServingMetrics& m = *options_.metrics;
  m.wal_flushes->Add(wal_.num_flushes() - synced_flushes_);
  m.wal_bytes->Add(wal_.bytes_durable() - synced_bytes_);
  m.wal_records->Add(ops_logged_ - synced_records_);
  synced_flushes_ = wal_.num_flushes();
  synced_bytes_ = wal_.bytes_durable();
  synced_records_ = ops_logged_;
}

void Durability::LogAppend(RowId first_row,
                           std::span<const std::vector<Key>> rows) {
  if (rows.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  CommitOpLocked(WalRecordType::kRowAppend, EncodeAppend(first_row, rows));
}

void Durability::LogDeletes(std::span<const RowId> rows) {
  if (rows.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  CommitOpLocked(WalRecordType::kRowDelete, EncodeDeletes(rows));
}

void Durability::LogUpdate(RowId row, std::span<const Key> new_values) {
  std::lock_guard<std::mutex> lock(mu_);
  CommitOpLocked(WalRecordType::kRowUpdate, EncodeUpdate(row, new_values));
}

void Durability::FlushNow() {
  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked();
}

// --- Checkpointing ---------------------------------------------------------

void Durability::Checkpoint(const Table& table, RowId clustered_boundary,
                            uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  // Close out the in-flight group-commit batch first so its histogram
  // sample is not silently folded into the checkpoint's flush.
  FlushLocked();
  snapshot_table_ = table.Clone();
  snapshot_boundary_ = clustered_boundary;
  snapshot_epoch_ = epoch;
  std::string payload;
  PutU64(&payload, epoch);
  PutU64(&payload, uint64_t(clustered_boundary));
  PutU64(&payload, uint64_t(table.NumRows()));
  const uint64_t id = wal_.LogCheckpoint(std::move(payload));
  // Everything before the checkpoint is baked into the snapshot: drop it
  // so log memory is bounded by one epoch of writes.
  wal_.TruncateThrough(id);
  ++checkpoints_;
  if (options_.metrics != nullptr) {
    options_.metrics->checkpoints->Increment();
  }
  SyncMetricsLocked();
}

bool Durability::has_checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_table_ != nullptr;
}

const Table* Durability::checkpoint_table() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_table_.get();
}

RowId Durability::checkpoint_boundary() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_boundary_;
}

uint64_t Durability::checkpoint_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_epoch_;
}

// --- Crash & recovery ------------------------------------------------------

void Durability::Crash(size_t torn_tail_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  wal_.Crash(torn_tail_bytes);
  ops_since_flush_ = 0;
}

std::vector<WalRecord> Durability::CommittedTail() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WalRecord> committed = wal_.CommittedRecords();
  // Replay starts after the LAST durable checkpoint marker (normally the
  // log head, since Checkpoint truncates through itself).
  size_t start = 0;
  for (size_t i = 0; i < committed.size(); ++i) {
    if (committed[i].type == WalRecordType::kCheckpoint) start = i + 1;
  }
  return {committed.begin() + ptrdiff_t(start), committed.end()};
}

size_t Durability::UncommittedDurableRecords() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t data = 0;
  for (const WalRecord& r : wal_.durable_records()) {
    if (r.type == WalRecordType::kRowAppend ||
        r.type == WalRecordType::kRowDelete ||
        r.type == WalRecordType::kRowUpdate) {
      ++data;
    }
  }
  size_t committed_data = 0;
  for (const WalRecord& r : wal_.CommittedRecords()) {
    if (r.type != WalRecordType::kCheckpoint) ++committed_data;
  }
  return data - committed_data;
}

// --- Introspection ---------------------------------------------------------

uint64_t Durability::ops_logged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_logged_;
}

uint64_t Durability::checkpoints_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoints_;
}

uint64_t Durability::wal_flushes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_.num_flushes();
}

uint64_t Durability::wal_bytes_durable() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_.bytes_durable();
}

size_t Durability::wal_log_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_.log_bytes();
}

}  // namespace corrmap::serve
