#include "serve/serving_engine.h"

#include <algorithm>
#include <cassert>

namespace corrmap::serve {

ServingEngine::ServingEngine(Table* table, const ClusteredIndex* cidx,
                             ServingOptions options)
    : options_(options),
      recluster_tail_rows_(options.recluster_tail_rows),
      compact_deleted_fraction_(options.compact_deleted_fraction),
      plan_choice_(options.plan_choice),
      cost_model_(options.disk) {
  assert(table->clustered_column() == int(cidx->column()) &&
         "table must be clustered with cidx built over the clustered column");
  const size_t reserve =
      options_.reserve_rows > 0
          ? options_.reserve_rows
          : table->NumRows() + ServingOptions::kDefaultAppendHeadroom;
  table->Reserve(reserve);
  if (options_.shared_pool != nullptr) {
    pool_ = options_.shared_pool;
  } else if (options_.buffer_pool_pages > 0) {
    owned_pool_ = std::make_unique<BufferPool>(options_.buffer_pool_pages,
                                               options_.buffer_pool_stripes);
    pool_ = owned_pool_.get();
  }
  if (options_.shared_cache != nullptr) {
    cache_ = options_.shared_cache;
  } else {
    owned_cache_ = std::make_unique<SharedLookupCache>();
    cache_ = owned_cache_.get();
  }
  metrics_ = options_.metrics;
  durability_ = options_.durability;
  auto state = std::make_shared<EpochState>();
  state->table = table;
  state->cidx = cidx;
  state->clustered_boundary = RowId(table->NumRows());
  InitEpochCalibration(state.get());
  state_ = std::move(state);
  // A durable engine needs a base snapshot before its first logged write:
  // without one, a crash before the first recluster would have a log tail
  // and nothing to replay it against. An engine attached to an existing
  // checkpoint (the Recover path) keeps it.
  if (durability_ != nullptr && !durability_->has_checkpoint()) {
    durability_->Checkpoint(*table, state_->clustered_boundary, 0);
  }
  if (metrics_ != nullptr && options_.metrics_register_gauges) {
    RegisterMetricsGauges();
  }
  StartWorkers(options_.num_workers);
}

ServingEngine::~ServingEngine() {
  StopWorkers();
  if (metrics_ != nullptr) {
    for (const std::string& name : gauge_names_) {
      metrics_->registry().RemoveCallbackGauge(name);
    }
  }
}

void ServingEngine::RegisterMetricsGauges() {
  obs::MetricsRegistry& reg = metrics_->registry();
  auto add = [&](const std::string& name, std::function<double()> fn) {
    reg.RegisterCallbackGauge(name, std::move(fn));
    gauge_names_.push_back(name);
  };
  add("serve_tail_rows", [this] { return double(TailRows()); });
  add("serve_tombstones",
      [this] { return double(CurrentState()->table->NumDeleted()); });
  add("serve_live_rows", [this] {
    const std::shared_ptr<EpochState> st = CurrentState();
    return double(st->table->NumRows() - st->table->NumDeleted());
  });
  add("serve_recluster_epoch", [this] { return double(ReclusterEpoch()); });
  add("serve_queue_depth", [this] { return double(QueueDepth()); });
  add("cache_hits", [this] { return double(cache_->stats().hits); });
  add("cache_misses", [this] { return double(cache_->stats().misses); });
  add("cache_insertions",
      [this] { return double(cache_->stats().insertions); });
  add("cache_stale_evictions",
      [this] { return double(cache_->stats().stale_evictions); });
  add("cache_size", [this] { return double(cache_->Size()); });
  if (pool_ != nullptr) {
    // One coherent per-stripe snapshot per gauge read; see the
    // BufferPoolSnapshot relaxed-consistency contract for what the
    // exported values can and cannot mix.
    add("pool_hits", [this] { return double(pool_->StatsSnapshot().stats.hits); });
    add("pool_misses",
        [this] { return double(pool_->StatsSnapshot().stats.misses); });
    add("pool_evictions",
        [this] { return double(pool_->StatsSnapshot().stats.evictions); });
    add("pool_dirty_evictions", [this] {
      return double(pool_->StatsSnapshot().stats.dirty_evictions);
    });
    add("pool_cached_pages",
        [this] { return double(pool_->StatsSnapshot().num_cached); });
    add("pool_dirty_pages",
        [this] { return double(pool_->StatsSnapshot().num_dirty); });
    add("pool_capacity_pages",
        [this] { return double(pool_->capacity_pages()); });
  }
}

Status ServingEngine::AttachCm(CmOptions cm_options) {
  auto st = CurrentState();
  std::unique_ptr<ClusteredBucketing> owned_cb;
  uint64_t cb_target = 0;
  if (cm_options.c_buckets != nullptr) {
    if (cm_options.c_buckets->covered_rows() != st->clustered_boundary) {
      return Status::InvalidArgument(
          "clustered bucketing does not cover exactly the clustered "
          "region; rebuild it over the current table before attaching");
    }
    // Copy the caller's positional bucketing so the engine can rebuild it
    // over every recluster successor; remember only the target bucket
    // size (the one build parameter) across epochs.
    cb_target = cm_options.c_buckets->target_tuples_per_bucket();
    owned_cb = std::make_unique<ClusteredBucketing>(*cm_options.c_buckets);
    cm_options.c_buckets = owned_cb.get();
  }
  auto scm = ShardedCorrelationMap::Create(st->table, cm_options,
                                           options_.num_cm_shards);
  if (!scm.ok()) return scm.status();
  auto owned = std::make_unique<ShardedCorrelationMap>(std::move(*scm));
  // A c-bucketed CM covers exactly the clustered region: positional
  // bucket ids do not extend into the tail, whose rows the sweep serves.
  const size_t build_limit = cm_options.c_buckets != nullptr
                                 ? size_t(st->clustered_boundary)
                                 : ~size_t{0};
  Status s = owned->BuildFromTable(build_limit);
  if (!s.ok()) return s;
  CmOptions remembered = cm_options;
  remembered.c_buckets = nullptr;  // per-epoch copies are rebuilt each swap
  attached_.push_back(std::move(remembered));
  c_bucket_targets_.push_back(cb_target);
  cm_slot_tags_.push_back(std::make_unique<uint64_t>(cm_slot_tags_.size()));
  st->cms.push_back(std::move(owned));
  st->c_bucketings.push_back(std::move(owned_cb));
  return Status::OK();
}

Status ServingEngine::AttachSecondaryIndex(std::vector<size_t> columns) {
  auto st = CurrentState();
  if (columns.empty() || columns.size() > kMaxCmAttributes) {
    return Status::InvalidArgument("secondary index over 1..4 columns");
  }
  for (size_t c : columns) {
    if (c >= st->table->schema().num_columns()) {
      return Status::InvalidArgument("secondary-index column out of range");
    }
  }
  auto idx = std::make_unique<SecondaryIndex>(st->table, columns);
  // Clustered region only: tail rows are the tail sweep's, exactly as for
  // c-bucketed CMs, so appends never have to maintain the (immutable)
  // per-epoch tree.
  Status s = idx->BuildFromTable(size_t(st->clustered_boundary));
  if (!s.ok()) return s;
  sidx_columns_.push_back(std::move(columns));
  st->sidx.push_back(std::move(idx));
  st->sidx_files.push_back(pool_ != nullptr ? pool_->RegisterFile() : 0);
  return Status::OK();
}

bool ServingEngine::CompilePredicates(const ShardedCorrelationMap& scm,
                                      const Query& query,
                                      std::vector<CmColumnPredicate>* out) {
  out->clear();
  for (size_t ucol : scm.options().u_cols) {
    const Predicate* found = nullptr;
    for (const Predicate& p : query.predicates()) {
      if (p.column() == ucol) found = &p;
    }
    if (found == nullptr) return false;
    if (found->op() == Predicate::Op::kRange) {
      out->push_back(CmColumnPredicate::Range(found->lo(), found->hi()));
    } else {
      out->push_back(CmColumnPredicate::Points(found->keys()));
    }
  }
  return true;
}

void ServingEngine::InitEpochCalibration(EpochState* st) const {
  st->calibration = std::make_unique<CalibrationCell>();
  if (pool_ == nullptr) return;
  st->heap_file = pool_->RegisterFile();
  st->cidx_file = pool_->RegisterFile();
  st->sidx_files.resize(st->sidx.size());
  for (uint32_t& f : st->sidx_files) f = pool_->RegisterFile();
}

PlanCalibration ServingEngine::CalibrationOf(const EpochState& st) const {
  if (pool_ == nullptr || st.calibration == nullptr) return {};
  std::shared_lock lock(st.calibration->mu);
  return st.calibration->calib;
}

void ServingEngine::MaybeRefreshCalibration(const EpochState& st) const {
  if (pool_ == nullptr || st.calibration == nullptr ||
      options_.calibration_period == 0) {
    return;
  }
  CalibrationCell& cell = *st.calibration;
  const uint64_t n =
      cell.selects_since.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (n < options_.calibration_period) return;
  cell.selects_since.store(0, std::memory_order_release);
  PlanCalibration fresh;
  fresh.heap_residency =
      pool_->ResidencyOf(st.heap_file, st.table->NumPages()).hit_rate;
  fresh.cidx_residency = pool_->ResidencyOf(st.cidx_file).hit_rate;
  // Extent-granular heap residency for the plan refinement: extents the
  // workload has not touched carry the whole-file scalar, so only ranges
  // with actual signal diverge from the legacy calibration.
  const uint64_t n_extents = BufferPool::NumExtents(st.table->NumPages());
  fresh.heap_extents.reserve(n_extents);
  for (uint64_t e = 0; e < n_extents; ++e) {
    const FileResidency fr = pool_->ResidencyOfExtent(st.heap_file, e);
    fresh.heap_extents.push_back(fr.observed_touches > 0
                                     ? fr.hit_rate
                                     : fresh.heap_residency);
  }
  fresh.sidx_residency.reserve(st.sidx_files.size());
  for (const uint32_t f : st.sidx_files) {
    fresh.sidx_residency.push_back(pool_->ResidencyOf(f).hit_rate);
  }
  std::unique_lock lock(cell.mu);
  cell.calib = std::move(fresh);
}

PlanCalibration ServingEngine::CurrentCalibration() const {
  return CalibrationOf(*CurrentState());
}

void ServingEngine::ResetBufferPool() {
  if (pool_ != nullptr) pool_->Clear();
  const std::shared_ptr<EpochState> st = CurrentState();
  if (st->calibration != nullptr) {
    std::unique_lock lock(st->calibration->mu);
    st->calibration->calib = {};
    st->calibration->selects_since.store(0, std::memory_order_release);
  }
}

double ServingEngine::ChargeHeapRuns(const EpochState& st,
                                     std::span<const PageRun> runs) const {
  if (pool_ == nullptr) {
    return options_.disk.CostMs(CostOfRuns(runs));
  }
  // The pool is internally striped: each Touch locks only its page's
  // stripe, so concurrent readers charging disjoint ranges do not contend.
  const double cold_page = options_.disk.seq_page_ms();
  const double cold_seek = options_.disk.seek_ms();
  double ms = 0;
  for (const PageRun& run : runs) {
    for (uint64_t i = 0; i < run.length; ++i) {
      const bool hit = pool_->Touch({st.heap_file, run.first + i});
      ms += hit ? CostModel::kResidentPageMs : cold_page;
      if (i == 0) {
        // The run's seek reaches the device only if its first page does.
        ms += hit ? CostModel::kResidentSeekMs : cold_seek;
      }
    }
  }
  return ms;
}

double ServingEngine::ChargeDescents(const EpochState& st,
                                     std::span<const PageNo> leaves) const {
  return ChargeDescentsOf(st.cidx_file, st.cidx->BTreeHeight(), leaves);
}

double ServingEngine::ChargeDescentsOf(uint32_t file, size_t height,
                                       std::span<const PageNo> leaves) const {
  if (pool_ == nullptr) {
    return double(leaves.size()) * double(height) * options_.disk.seek_ms();
  }
  const double cold_seek = options_.disk.seek_ms();
  double ms = 0;
  for (const PageNo leaf : leaves) {
    // Upper levels are shared pages [0, height-1); the leaf level is
    // proxied by the heap page the descent lands on, so leaf residency
    // follows the ranges the workload actually probes.
    for (size_t level = 0; level + 1 < height; ++level) {
      const bool hit = pool_->Touch({file, PageNo(level)});
      ms += hit ? CostModel::kResidentSeekMs : cold_seek;
    }
    const bool hit = pool_->Touch({file, PageNo(height) + leaf});
    ms += hit ? CostModel::kResidentSeekMs : cold_seek;
  }
  return ms;
}

void ServingEngine::ResolveCmLookups(
    const EpochState& st, const Query& query, bool first_match_only,
    std::vector<CmPlanView>* views,
    std::vector<SharedLookupCache::ResultPtr>* pinned,
    std::vector<uint8_t>* cache_hits) const {
  views->assign(st.cms.size(), CmPlanView{});
  pinned->assign(st.cms.size(), nullptr);
  cache_hits->assign(st.cms.size(), 0);
  std::vector<CmColumnPredicate> preds;
  for (size_t i = 0; i < st.cms.size(); ++i) {
    const ShardedCorrelationMap& scm = *st.cms[i];
    if (!CompilePredicates(scm, query, &preds)) continue;
    // Cross-query reuse keyed (stable CM slot, predicate fingerprint,
    // epoch). The slot tag outlives recluster swaps while the successor
    // CM's epoch is raised above its predecessor's, so entries computed
    // before a swap compare stale and are lazily evicted. A result
    // computed while maintenance interleaved (epoch moved) is used once
    // but never published.
    const void* slot = cm_slot_tags_[i].get();
    const uint64_t fp = SharedLookupCache::Fingerprint(preds);
    const uint64_t epoch = scm.Epoch();
    SharedLookupCache::ResultPtr res = cache_->Get(slot, fp, epoch);
    (*cache_hits)[i] = res != nullptr ? 1 : 0;
    if (res == nullptr) {
      auto computed =
          std::make_shared<const CmLookupResult>(scm.Lookup(preds));
      if (scm.Epoch() == epoch) cache_->Put(slot, fp, epoch, computed);
      res = std::move(computed);
    }
    (*pinned)[i] = std::move(res);
    (*views)[i] = scm.PlanView((*pinned)[i].get());
    if (first_match_only) return;
  }
}

void ServingEngine::TranslateCmRuns(const EpochState& st, size_t slot,
                                    const CmLookupResult& res, RowId boundary,
                                    std::vector<RowRange>* ranges,
                                    std::vector<PageNo>* leaves) {
  const ShardedCorrelationMap& scm = *st.cms[slot];
  const Table& table = *st.table;
  const ClusteredBucketing* cb = scm.options().c_buckets;
  ranges->clear();
  leaves->clear();
  ranges->reserve(res.ranges.size());
  for (const OrdinalRange& r : res.ranges) {
    RowRange range =
        cb != nullptr
            ? cb->RangeOfBucketRun(r.lo, r.hi)
            : st.cidx->LookupRange(scm.DecodeClusteredOrdinal(r.lo),
                                   scm.DecodeClusteredOrdinal(r.hi));
    // The clustered index closes its last key's range at the table's live
    // row count, which may include the unclustered tail; clamp so tail
    // rows are examined exactly once (by the tail sweep).
    range.end = std::min(range.end, boundary);
    if (!range.empty()) {
      leaves->push_back(table.layout().PageOfRow(range.begin));
      ranges->push_back(range);
    }
  }
  std::sort(ranges->begin(), ranges->end(),
            [](const RowRange& a, const RowRange& b) {
              return a.begin < b.begin;
            });
}

void ServingEngine::ResolveSidxPlans(const EpochState& st, const Query& query,
                                     uint64_t run_gap,
                                     std::vector<SidxPlan>* plans) const {
  plans->clear();
  const Table& table = *st.table;
  for (size_t i = 0; i < st.sidx.size(); ++i) {
    const SecondaryIndex& idx = *st.sidx[i];
    const size_t lead = idx.columns().front();
    const Predicate* pred = FindPredicateOn(query, lead);
    if (pred == nullptr) continue;  // composite prefix unpredicated
    SidxPlan plan;
    plan.slot = i;
    const auto& col = table.column(lead);
    if (pred->op() == Predicate::Op::kRange) {
      CompositeKey lo, hi;
      lo.Append(col.EncodeKey(Value(pred->lo())));
      hi.Append(col.EncodeKey(Value(pred->hi())));
      plan.rids = idx.LookupRange(lo, hi);
      plan.n_probes = 1;
    } else {
      for (const Key& k : pred->keys()) {
        CompositeKey ck;
        ck.Append(k);
        const std::vector<RowId> part = idx.LookupRange(ck, ck);
        plan.rids.insert(plan.rids.end(), part.begin(), part.end());
      }
      plan.n_probes = std::max<size_t>(pred->keys().size(), 1);
    }
    // The per-epoch index covers [0, boundary) as built; drop rows
    // tombstoned since so costing prices the live rid set the execution
    // will sweep (execution still re-filters -- a delete can land between
    // here and there).
    std::erase_if(plan.rids, [&](RowId r) {
      return r >= st.clustered_boundary || table.IsDeleted(r);
    });
    std::sort(plan.rids.begin(), plan.rids.end());
    std::vector<PageNo> pages;
    pages.reserve(plan.rids.size());
    for (const RowId r : plan.rids) pages.push_back(table.layout().PageOfRow(r));
    plan.runs = ExtractRuns(std::move(pages), run_gap);
    plans->push_back(std::move(plan));
  }
}

PlanSet ServingEngine::Deliberate(const EpochState& st, const Query& query,
                                  const PlanCalibration& calib, uint64_t gap,
                                  std::vector<CmPlanView>* views,
                                  std::vector<std::vector<RowRange>>* cm_ranges,
                                  std::vector<std::vector<PageNo>>* cm_leaves,
                                  std::vector<SidxPlan>* sidx_plans,
                                  CostBudget* budget) const {
  PlanContext ctx;
  ctx.budget = budget;
  ctx.table = st.table;
  ctx.cidx = st.cidx;
  ctx.clustered_boundary = st.clustered_boundary;
  ctx.n_rows = st.table->NumRows();
  ctx.heap_residency = calib.heap_residency;
  ctx.cidx_residency = calib.cidx_residency;
  ctx.heap_extent_residency = calib.heap_extents;
  ctx.heap_extent_pages = BufferPool::kExtentPages;
  ctx.num_deleted = st.table->NumDeleted();
  ctx.cost_model = &cost_model_;
  // Pre-translate every applicable CM's ordinal runs: the row ranges feed
  // the extent-granular residency refinement now and the winner's
  // execution sweep later (one translation per select).
  cm_ranges->assign(views->size(), {});
  cm_leaves->assign(views->size(), {});
  for (size_t i = 0; i < views->size(); ++i) {
    CmPlanView& view = (*views)[i];
    if (view.lookup == nullptr || view.lookup->empty()) continue;
    TranslateCmRuns(st, i, *view.lookup, st.clustered_boundary,
                    &(*cm_ranges)[i], &(*cm_leaves)[i]);
    view.row_ranges = (*cm_ranges)[i];
  }
  // Sorted-index candidates: exact rid sets priced with the same shared
  // enumeration the Executor uses for its caller-priced extras.
  ResolveSidxPlans(st, query, gap, sidx_plans);
  std::vector<PlanCandidate> extras;
  extras.reserve(sidx_plans->size());
  for (const SidxPlan& plan : *sidx_plans) {
    const SecondaryIndex& idx = *st.sidx[plan.slot];
    const double sidx_res = plan.slot < calib.sidx_residency.size()
                                ? calib.sidx_residency[plan.slot]
                                : 0.0;
    extras.push_back({PlanKind::kSortedIndex,
                      "sorted_index_scan(" + idx.Name() + ")",
                      SortedIndexCostMs(ctx, plan.runs, plan.rids.size(),
                                        plan.n_probes, idx.Height(), sidx_res),
                      plan.slot, false});
  }
  return ChooseAccessPlan(ctx, query, *views, extras);
}

PlanSet ServingEngine::PlanSelect(const Query& query) const {
  const std::shared_ptr<EpochState> st = CurrentState();
  std::vector<CmPlanView> views;
  std::vector<SharedLookupCache::ResultPtr> pinned;
  std::vector<uint8_t> hits;
  ResolveCmLookups(*st, query, /*first_match_only=*/false, &views, &pinned,
                   &hits);
  const PlanCalibration calib = CalibrationOf(*st);
  const uint64_t gap =
      uint64_t(options_.disk.seek_ms() / options_.disk.seq_page_ms());
  std::vector<std::vector<RowRange>> cm_ranges;
  std::vector<std::vector<PageNo>> cm_leaves;
  std::vector<SidxPlan> sidx_plans;
  return Deliberate(*st, query, calib, gap, &views, &cm_ranges, &cm_leaves,
                    &sidx_plans);
}

bool ServingEngine::CanSkipForQuery(const Query& query,
                                    bool* applicable) const {
  *applicable = false;
  const std::shared_ptr<EpochState> st = CurrentState();
  std::vector<CmPlanView> views;
  std::vector<SharedLookupCache::ResultPtr> pinned;
  std::vector<uint8_t> hits;
  ResolveCmLookups(*st, query, /*first_match_only=*/true, &views, &pinned,
                   &hits);
  for (const CmPlanView& view : views) {
    if (view.lookup == nullptr) continue;
    *applicable = true;
    // Conservative on two counts: the tail must be empty (a tail row may
    // match before its CM entries land -- or ever, for c-bucketed CMs),
    // and the CM may only over-cover (tombstone-first deletes), so an
    // empty lookup proves an empty answer.
    const bool tail_empty =
        st->clustered_boundary >= RowId(st->table->NumRows());
    return tail_empty && view.lookup->empty();
  }
  return false;
}

SelectResult ServingEngine::ExecuteSelect(const Query& query,
                                          CostBudget* budget) const {
  SelectResult out;
  // Pin one epoch for the whole select: table, clustered index, boundary,
  // CM set, and calibration inputs stay mutually consistent even if a
  // recluster swaps the engine to a successor mid-flight.
  const std::shared_ptr<EpochState> st = CurrentState();
  out.recluster_epoch = st->version;
  const Table& table = *st->table;
  // Snapshot the published row count once: everything below this row is
  // fully written (release/acquire pairing with the append path).
  const size_t n_rows = table.NumRows();
  const RowId boundary = st->clustered_boundary;
  const uint64_t gap =
      uint64_t(options_.disk.seek_ms() / options_.disk.seq_page_ms());

  const PlanCalibration calib = CalibrationOf(*st);
  out.heap_residency = calib.heap_residency;
  out.cidx_residency = calib.cidx_residency;

  const ServingOptions::PlanChoice mode =
      plan_choice_.load(std::memory_order_relaxed);

  // ---- Deliberate. Cost-based: every candidate priced by the shared
  // plan enumeration at this epoch's calibration. First-match: the first
  // applicable CM, else a scan (the legacy policy, kept for A/B).
  PlanKind kind = PlanKind::kSeqScan;
  size_t cm_slot = SelectResult::kNoCmSlot;
  size_t sidx_slot = SelectResult::kNoCmSlot;
  std::vector<CmPlanView> views;
  std::vector<SharedLookupCache::ResultPtr> pinned;
  std::vector<uint8_t> hits;
  std::vector<std::vector<RowRange>> cm_ranges;
  std::vector<std::vector<PageNo>> cm_leaves;
  std::vector<SidxPlan> sidx_plans;
  obs::SelectTrace trace;  // filled only when metrics_ is attached

  // Cross-shard scatter budget gate, checked BEFORE any CM lookup or
  // sorted-index resolution: when the cheapest CM-free candidate alone
  // already exceeds the scatter's remaining allowance, deliberation is
  // pure overhead -- run that cheap plan directly. Results stay exact
  // (every plan re-filters the same rows); only plan quality degrades.
  bool degraded = false;
  if (budget != nullptr && mode == ServingOptions::PlanChoice::kCostBased) {
    PlanContext ctx;
    ctx.table = st->table;
    ctx.cidx = st->cidx;
    ctx.clustered_boundary = boundary;
    ctx.n_rows = n_rows;
    ctx.heap_residency = calib.heap_residency;
    ctx.cidx_residency = calib.cidx_residency;
    ctx.heap_extent_residency = calib.heap_extents;
    ctx.heap_extent_pages = BufferPool::kExtentPages;
    ctx.num_deleted = st->table->NumDeleted();
    ctx.cost_model = &cost_model_;
    double cheap_ms = SeqScanCostMs(ctx);
    PlanKind cheap_kind = PlanKind::kSeqScan;
    const Predicate* cpred = FindPredicateOn(query, st->cidx->column());
    if (cpred != nullptr) {
      const std::vector<RowRange> cranges =
          ClusteredRangesFor(*st->table, *st->cidx, *cpred, boundary);
      const size_t n_probes =
          cpred->op() == Predicate::Op::kRange ? 1 : cpred->keys().size();
      const double cr_ms = ClusteredRangeCostMs(ctx, cranges, n_probes);
      if (cr_ms < cheap_ms) {
        cheap_ms = cr_ms;
        cheap_kind = PlanKind::kClusteredRange;
      }
    }
    if (!budget->CanAfford(cheap_ms)) {
      degraded = true;
      budget->Charge(cheap_ms);
      kind = cheap_kind;
      out.plan = PlanKindName(cheap_kind);
      out.plan_est_ms = cheap_ms;
      out.plan_candidates = cpred != nullptr ? 2 : 1;
      out.budget_degraded = true;
    }
  }

  if (!degraded) {
    ResolveCmLookups(*st, query,
                     mode == ServingOptions::PlanChoice::kFirstMatch, &views,
                     &pinned, &hits);
  }
  if (degraded) {
    // Plan already fixed above; nothing to deliberate.
  } else if (mode == ServingOptions::PlanChoice::kCostBased) {
    const PlanSet plans =
        Deliberate(*st, query, calib, gap, &views, &cm_ranges, &cm_leaves,
                   &sidx_plans, budget);
    const PlanCandidate& win = plans.chosen_plan();
    kind = win.kind;
    if (kind == PlanKind::kCmProbe) cm_slot = win.slot;
    if (kind == PlanKind::kSortedIndex) sidx_slot = win.slot;
    out.plan = win.description;
    out.plan_est_ms = win.est_ms;
    out.plan_candidates = plans.candidates.size();
    if (metrics_ != nullptr) {
      trace.num_candidates = uint32_t(plans.candidates.size());
      for (const PlanCandidate& c : plans.candidates) {
        if (trace.num_recorded == obs::kTraceCandidateCap) break;
        trace.candidates[trace.num_recorded++] = {c.kind, uint32_t(c.slot),
                                                  c.est_ms};
      }
    }
  } else {
    for (size_t i = 0; i < views.size(); ++i) {
      if (views[i].lookup != nullptr) {
        kind = PlanKind::kCmProbe;
        cm_slot = i;
        break;
      }
    }
    out.plan = kind == PlanKind::kCmProbe
                   ? "cm_scan(" + views[cm_slot].name + ")"
                   : "seq_scan";
    out.plan_candidates = 1;
  }
  out.plan_kind = kind;
  out.plan_cm_slot = cm_slot;
  out.used_cm = kind == PlanKind::kCmProbe;
  out.cache_hit = out.used_cm && hits[cm_slot] != 0;

  // ---- Execute the winner, pricing every targeted page through the
  // buffer pool (full scans read around it and stay cold).
  double ms = 0;
  // Dead rows examined and skipped; priced at the tombstone CPU term so
  // execution cost tracks the same penalty plan costing estimated.
  uint64_t dead_examined = 0;
  auto sweep_ranges = [&](const std::vector<RowRange>& ranges) {
    std::vector<PageNo> pages;
    for (const RowRange& range : ranges) {
      const PageNo first = table.layout().PageOfRow(range.begin);
      const PageNo last = table.layout().PageOfRow(range.end - 1);
      for (PageNo p = first; p <= last; ++p) pages.push_back(p);
      for (RowId r = range.begin; r < range.end; ++r) {
        ++out.rows_examined;
        if (table.IsDeleted(r)) {
          ++dead_examined;
          continue;
        }
        if (query.Matches(table, r)) ++out.num_matches;
      }
    }
    ms += ChargeHeapRuns(*st, ExtractRuns(std::move(pages), gap));
  };

  switch (kind) {
    case PlanKind::kSeqScan: {
      for (RowId r = 0; r < n_rows; ++r) {
        ++out.rows_examined;
        if (table.IsDeleted(r)) {
          ++dead_examined;
          continue;
        }
        if (query.Matches(table, r)) ++out.num_matches;
      }
      DiskStats io;
      io.seq_pages = table.layout().NumPages(n_rows);
      ms += options_.disk.CostMs(io);
      break;
    }
    case PlanKind::kClusteredRange: {
      // The shared predicate-selection rule: ChooseAccessPlan costed this
      // plan from the same predicate, so plan_est_ms prices exactly the
      // range set executed here.
      const Predicate* cpred = FindPredicateOn(query, st->cidx->column());
      assert(cpred != nullptr && "clustered plan without clustered pred");
      const std::vector<RowRange> ranges =
          ClusteredRangesFor(table, *st->cidx, *cpred, boundary);
      std::vector<PageNo> leaves;
      leaves.reserve(ranges.size());
      for (const RowRange& r : ranges) {
        leaves.push_back(table.layout().PageOfRow(r.begin));
      }
      if (leaves.empty()) leaves.push_back(0);  // the descent that missed
      ms += ChargeDescents(*st, leaves);
      sweep_ranges(ranges);
      break;
    }
    case PlanKind::kCmProbe: {
      const CmLookupResult& res = *views[cm_slot].lookup;
      // Translate ordinal runs to clustered row ranges (the tail is
      // handled separately below; neither cidx nor the positional
      // bucketing covers rows >= boundary). The cost-based deliberation
      // already translated them; first-match translates here.
      std::vector<RowRange> ranges;
      std::vector<PageNo> leaves;
      if (cm_slot < cm_ranges.size()) {
        ranges = std::move(cm_ranges[cm_slot]);
        leaves = std::move(cm_leaves[cm_slot]);
      } else {
        TranslateCmRuns(*st, cm_slot, res, boundary, &ranges, &leaves);
      }
      ms += ChargeDescents(*st, leaves);
      sweep_ranges(ranges);
      ms += cost_model_.CmLookupProbeCost(
          double(std::max<size_t>(views[cm_slot].num_ukeys, 1)),
          double(res.entries_probed));
      break;
    }
    case PlanKind::kSortedIndex: {
      const SidxPlan* plan = nullptr;
      for (const SidxPlan& p : sidx_plans) {
        if (p.slot == sidx_slot) plan = &p;
      }
      assert(plan != nullptr && "chosen sorted-index slot not resolved");
      const SecondaryIndex& idx = *st->sidx[plan->slot];
      // One descent per probe; leaves proxied by the runs' first heap
      // pages so leaf residency tracks the ranges actually landed on.
      std::vector<PageNo> leaves;
      leaves.reserve(plan->n_probes);
      for (size_t i = 0; i < plan->n_probes; ++i) {
        leaves.push_back(
            plan->runs.empty()
                ? PageNo(0)
                : plan->runs[std::min(i, plan->runs.size() - 1)].first);
      }
      ms += ChargeDescentsOf(st->sidx_files[plan->slot], idx.Height(), leaves);
      for (const RowId r : plan->rids) {
        ++out.rows_examined;
        if (table.IsDeleted(r)) {
          ++dead_examined;
          continue;
        }
        if (query.Matches(table, r)) ++out.num_matches;
      }
      ms += ChargeHeapRuns(*st, plan->runs);
      break;
    }
  }

  // Unclustered append tail: one sequential sweep, full re-filter, for
  // every non-scan plan. This is what makes a freshly appended row
  // visible to selects immediately; a recluster returns the tail to zero
  // and retires this cost.
  if (kind != PlanKind::kSeqScan && boundary < n_rows) {
    out.tail_rows_swept = uint64_t(n_rows) - uint64_t(boundary);
    for (RowId r = boundary; r < n_rows; ++r) {
      ++out.rows_examined;
      if (table.IsDeleted(r)) {
        ++dead_examined;
        continue;
      }
      if (query.Matches(table, r)) ++out.num_matches;
    }
    const PageNo first = table.layout().PageOfRow(boundary);
    const PageNo last = table.layout().PageOfRow(n_rows - 1);
    const PageRun tail_run{first, last - first + 1};
    ms += ChargeHeapRuns(*st, std::span<const PageRun>(&tail_run, 1));
  }

  ms += double(dead_examined) * CostModel::kTombstoneCpuMs;
  out.simulated_ms = ms;
  MaybeRefreshCalibration(*st);
  if (metrics_ != nullptr) {
    trace.fingerprint = obs::FingerprintQuery(query);
    trace.epoch = st->version;
    trace.plan_kind = kind;
    trace.cost_based = mode == ServingOptions::PlanChoice::kCostBased;
    trace.cache_hit = out.cache_hit;
    trace.est_ms = out.plan_est_ms;
    trace.actual_ms = out.simulated_ms;
    trace.num_matches = out.num_matches;
    trace.rows_examined = out.rows_examined;
    trace.tail_rows_swept = out.tail_rows_swept;
    if (trace.num_candidates == 0) {
      trace.num_candidates = uint32_t(out.plan_candidates);
    }
    metrics_->RecordSelect(trace);
  }
  return out;
}

Status ServingEngine::PrepareAppend(std::span<const std::vector<Key>> rows,
                                    PreparedAppend* out) {
  std::unique_lock<std::mutex> lock(append_mu_);
  // Re-read the state under the append lock: a recluster swap happens
  // with this lock held, so the epoch seen here cannot be retired while
  // the guard is alive.
  const std::shared_ptr<EpochState> st = CurrentState();
  Table* table = st->table;
  const size_t arity = table->schema().num_columns();
  for (const std::vector<Key>& row : rows) {
    if (row.size() != arity) {
      return Status::InvalidArgument(
          "appended row arity does not match the schema");
    }
  }
  if (table->NumRows() + rows.size() > table->ReservedRows()) {
    return Status::ResourceExhausted(
        "append past the table's reserved capacity; concurrent readers "
        "require append-without-reallocation");
  }
  out->lock_ = std::move(lock);
  out->state_ = st;
  return Status::OK();
}

Status ServingEngine::CommitAppend(PreparedAppend* prep,
                                   std::span<const std::vector<Key>> rows) {
  assert(prep != nullptr && prep->valid() && "commit without a prepare");
  // Adopt the guard: the lock stays held through the apply and releases
  // on return, and the prepared epoch is the one mutated.
  const std::unique_lock<std::mutex> lock = std::move(prep->lock_);
  const std::shared_ptr<EpochState> st = std::move(prep->state_);
  Table* table = st->table;
  std::vector<RowId> rids;
  rids.reserve(rows.size());
  for (const std::vector<Key>& row : rows) {
    const RowId rid = RowId(table->NumRows());
    table->AppendRowKeys(std::span<const Key>(row.data(), row.size()));
    rids.push_back(rid);
  }
  // CM maintenance after heap publication: selects that race this batch
  // find the new rows via the tail sweep whether or not their CM entries
  // have landed, so the probe==scan invariant holds throughout. c-bucketed
  // CMs are skipped entirely -- positional bucket ids do not cover the
  // tail; the next recluster folds these rows in when it rebuilds them.
  for (const auto& scm : st->cms) {
    if (scm->has_clustered_buckets()) continue;
    scm->InsertRowsBatched(rids);
  }
  // Log after the mutation succeeded: under append_mu_ the log order is
  // exactly the apply order, so replay reproduces the same row ids.
  if (durability_ != nullptr) durability_->LogAppend(rids.front(), rows);
  if (metrics_ != nullptr) {
    metrics_->appends->Increment();
    metrics_->rows_appended->Add(rows.size());
  }
  MaybeScheduleRecluster(*st);
  return Status::OK();
}

Status ServingEngine::ApplyAppend(std::span<const std::vector<Key>> rows) {
  if (rows.empty()) return Status::OK();
  PreparedAppend prep;
  Status s = PrepareAppend(rows, &prep);
  if (!s.ok()) return s;
  return CommitAppend(&prep, rows);
}

Status ServingEngine::DeleteRowLocked(const EpochState& st, RowId row) {
  // Tombstone FIRST, then retract: between the two steps a concurrent
  // probe may still cover the row, but every access path re-filters
  // through the tombstone bitmap, so the CM transiently over-covers and
  // never under-covers -- probe==scan holds at every instant. (The
  // reverse order would let a probe under-count a still-live row.)
  Status s = st.table->DeleteRow(row);
  if (!s.ok()) return s;
  delete_log_.push_back(row);
  for (const auto& scm : st.cms) {
    // c-bucketed CMs never covered tail rows (the append path skips
    // them), so there is nothing to retract there.
    if (scm->has_clustered_buckets() && row >= st.clustered_boundary) {
      continue;
    }
    Status cs = scm->DeleteRow(row);
    if (!cs.ok()) return cs;
  }
  return Status::OK();
}

Status ServingEngine::ApplyDelete(RowId row, uint64_t expected_epoch) {
  std::lock_guard<std::mutex> lock(append_mu_);
  const std::shared_ptr<EpochState> st = CurrentState();
  if (expected_epoch != kAnyEpoch && st->version != expected_epoch) {
    if (metrics_ != nullptr) metrics_->write_conflicts->Increment();
    return Status::Aborted("epoch moved past " +
                           std::to_string(expected_epoch) +
                           "; row ids were permuted -- re-resolve the row "
                           "and retry");
  }
  if (row >= st->table->NumRows()) {
    return Status::OutOfRange("row id past the published row count");
  }
  Status s = DeleteRowLocked(*st, row);
  if (!s.ok()) return s;
  if (durability_ != nullptr) {
    const RowId one[1] = {row};
    durability_->LogDeletes(one);
  }
  if (metrics_ != nullptr) metrics_->deletes->Increment();
  MaybeScheduleRecluster(*st);
  return Status::OK();
}

Status ServingEngine::ApplyDeletes(std::span<const RowId> rows,
                                   uint64_t expected_epoch) {
  if (rows.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(append_mu_);
  const std::shared_ptr<EpochState> st = CurrentState();
  if (expected_epoch != kAnyEpoch && st->version != expected_epoch) {
    if (metrics_ != nullptr) metrics_->write_conflicts->Increment();
    return Status::Aborted("epoch moved past " +
                           std::to_string(expected_epoch) +
                           "; row ids were permuted -- re-resolve the rows "
                           "and retry");
  }
  Table* table = st->table;
  // Tombstone the whole batch first (rows already dead are skipped, so a
  // double delete never half-fails the batch), then retract each CM once
  // under one epoch bracket.
  std::vector<RowId> newly;
  newly.reserve(rows.size());
  for (const RowId row : rows) {
    if (row >= table->NumRows()) {
      return Status::OutOfRange("row id past the published row count");
    }
    const Status s = table->DeleteRow(row);
    if (s.code() == Status::Code::kNotFound) continue;
    if (!s.ok()) return s;
    delete_log_.push_back(row);
    newly.push_back(row);
  }
  if (newly.empty()) return Status::OK();
  std::vector<RowId> clustered_only;
  for (const auto& scm : st->cms) {
    Status cs;
    if (scm->has_clustered_buckets()) {
      if (clustered_only.empty()) {
        for (const RowId row : newly) {
          if (row < st->clustered_boundary) clustered_only.push_back(row);
        }
      }
      cs = scm->DeleteRowsBatched(clustered_only);
    } else {
      cs = scm->DeleteRowsBatched(newly);
    }
    if (!cs.ok()) return cs;
  }
  // Only the rows this batch actually tombstoned are logged, so replaying
  // the record deletes exactly them (already-dead rows never re-log).
  if (durability_ != nullptr) durability_->LogDeletes(newly);
  if (metrics_ != nullptr) metrics_->deletes->Add(newly.size());
  MaybeScheduleRecluster(*st);
  return Status::OK();
}

Status ServingEngine::ApplyUpdate(RowId row, std::span<const Key> new_values,
                                  uint64_t expected_epoch) {
  std::lock_guard<std::mutex> lock(append_mu_);
  const std::shared_ptr<EpochState> st = CurrentState();
  if (expected_epoch != kAnyEpoch && st->version != expected_epoch) {
    if (metrics_ != nullptr) metrics_->write_conflicts->Increment();
    return Status::Aborted("epoch moved past " +
                           std::to_string(expected_epoch) +
                           "; row ids were permuted -- re-resolve the row "
                           "and retry");
  }
  Table* table = st->table;
  if (new_values.size() != table->schema().num_columns()) {
    return Status::InvalidArgument("row arity does not match the schema");
  }
  if (row >= table->NumRows()) {
    return Status::OutOfRange("row id past the published row count");
  }
  if (table->NumRows() + 1 > table->ReservedRows()) {
    return Status::ResourceExhausted(
        "append past the table's reserved capacity; concurrent readers "
        "require append-without-reallocation");
  }
  // Checks done; tombstone the old version, then re-append the new one as
  // a tail row (same transaction under append_mu_).
  Status s = DeleteRowLocked(*st, row);
  if (!s.ok()) return s;
  const RowId rid = RowId(table->NumRows());
  table->AppendRowKeys(new_values);
  const RowId rids[1] = {rid};
  for (const auto& scm : st->cms) {
    if (scm->has_clustered_buckets()) continue;
    scm->InsertRowsBatched(rids);
  }
  if (durability_ != nullptr) durability_->LogUpdate(row, new_values);
  if (metrics_ != nullptr) metrics_->updates->Increment();
  MaybeScheduleRecluster(*st);
  return Status::OK();
}

void ServingEngine::MaybeScheduleRecluster(const EpochState& st) {
  const size_t tail_threshold =
      recluster_tail_rows_.load(std::memory_order_relaxed);
  const double dead_threshold =
      compact_deleted_fraction_.load(std::memory_order_relaxed);
  const size_t n_rows = st.table->NumRows();
  const bool tail_due = tail_threshold > 0 &&
                        n_rows - st.clustered_boundary >= tail_threshold;
  const bool compact_due =
      dead_threshold > 0 && n_rows > 0 &&
      double(st.table->NumDeleted()) >= dead_threshold * double(n_rows);
  if (!tail_due && !compact_due) return;
  if (recluster_pending_.exchange(true, std::memory_order_acq_rel)) return;
  // A compacting pass also drains the tail, so compaction wins when both
  // triggers fire.
  const ReclusterMode mode = compact_due ? ReclusterMode::kCompact
                                         : ReclusterMode::kMergeTail;
  Enqueue([this, mode] {
    const auto result = Reclusterer(this, mode).Run();
    recluster_pending_.store(false, std::memory_order_release);
    if (!result.ok()) {
      // Surface the failure (ReclusterFailures) and do NOT re-arm: each
      // attempt pays a full phase-1 build, so a persistent error must not
      // retry in a tight loop. The next over-threshold append tries again.
      recluster_failures_.fetch_add(1, std::memory_order_acq_rel);
      return;
    }
    // Re-arm: appends that landed while this pass ran (an over-threshold
    // burst) would otherwise sit in the tail until the *next* append.
    MaybeScheduleRecluster(*CurrentState());
  });
}

Result<ReclusterStats> ServingEngine::Recluster() {
  return Reclusterer(this).Run();
}

Result<ReclusterStats> ServingEngine::Compact() {
  return Reclusterer(this, ReclusterMode::kCompact).Run();
}

std::future<SelectResult> ServingEngine::Submit(Query query) {
  auto task = std::make_shared<std::packaged_task<SelectResult()>>(
      [this, q = std::move(query)] { return ExecuteSelect(q); });
  std::future<SelectResult> fut = task->get_future();
  Enqueue([task] { (*task)(); });
  return fut;
}

std::future<Status> ServingEngine::Append(std::vector<std::vector<Key>> rows) {
  auto task = std::make_shared<std::packaged_task<Status()>>(
      [this, r = std::move(rows)] {
        return ApplyAppend(std::span<const std::vector<Key>>(r));
      });
  std::future<Status> fut = task->get_future();
  Enqueue([task] { (*task)(); });
  return fut;
}

std::future<Status> ServingEngine::Delete(RowId row) {
  auto task = std::make_shared<std::packaged_task<Status()>>(
      [this, row] { return ApplyDelete(row); });
  std::future<Status> fut = task->get_future();
  Enqueue([task] { (*task)(); });
  return fut;
}

std::future<Status> ServingEngine::Update(RowId row,
                                          std::vector<Key> new_values) {
  auto task = std::make_shared<std::packaged_task<Status()>>(
      [this, row, v = std::move(new_values)] {
        return ApplyUpdate(row, std::span<const Key>(v.data(), v.size()));
      });
  std::future<Status> fut = task->get_future();
  Enqueue([task] { (*task)(); });
  return fut;
}

void ServingEngine::Post(std::function<void()> fn) { Enqueue(std::move(fn)); }

void ServingEngine::ResizeWorkerPool(size_t n) {
  StopWorkers();
  StartWorkers(n);
}

void ServingEngine::StartWorkers(size_t n) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = false;
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ServingEngine::StopWorkers() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

void ServingEngine::Enqueue(std::function<void()> fn) {
  QueuedJob job;
  job.fn = std::move(fn);
  if (metrics_ != nullptr) job.enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
}

void ServingEngine::WorkerLoop() {
  for (;;) {
    QueuedJob job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue before honoring a stop so ResizeWorkerPool never
      // strands submitted futures.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    if (metrics_ != nullptr) {
      const auto waited = std::chrono::steady_clock::now() - job.enqueued;
      metrics_->queue_wait_us->Record(
          std::chrono::duration<double, std::micro>(waited).count());
    }
    job.fn();
  }
}

size_t ServingEngine::num_cms() const { return CurrentState()->cms.size(); }

RowId ServingEngine::clustered_boundary() const {
  return CurrentState()->clustered_boundary;
}

size_t ServingEngine::TailRows() const {
  const std::shared_ptr<EpochState> st = CurrentState();
  return st->table->NumRows() - st->clustered_boundary;
}

uint64_t ServingEngine::ReclusterEpoch() const {
  return CurrentState()->version;
}

const Table& ServingEngine::table() const { return *CurrentState()->table; }

const ClusteredIndex& ServingEngine::cidx() const {
  return *CurrentState()->cidx;
}

const ShardedCorrelationMap& ServingEngine::cm(size_t i) const {
  return *CurrentState()->cms[i];
}

Status ServingEngine::CheckInvariants() const {
  const std::shared_ptr<EpochState> st = CurrentState();
  for (const auto& scm : st->cms) {
    Status s = scm->CheckInvariants();
    if (!s.ok()) return s;
  }
  const Table& table = *st->table;
  if (size_t(st->clustered_boundary) > table.NumRows()) {
    return Status::Corruption("clustered boundary past the row count");
  }
  const size_t c_col = size_t(table.clustered_column());
  for (RowId r = 1; r < st->clustered_boundary; ++r) {
    if (table.GetKey(r, c_col) < table.GetKey(r - 1, c_col)) {
      return Status::Corruption("clustered region out of order at row " +
                                std::to_string(r));
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<ServingEngine>> ServingEngine::Recover(
    size_t c_col, const ServingOptions& options, const RecoverSpec& spec,
    RecoveryStats* stats_out) {
  const auto t_start = std::chrono::steady_clock::now();
  Durability* d = options.durability;
  if (d == nullptr || !d->has_checkpoint()) {
    return Status::InvalidArgument(
        "recovery requires a durability manager holding a checkpoint "
        "(a durable engine writes one at construction)");
  }
  RecoveryStats stats;
  stats.checkpoint_epoch = d->checkpoint_epoch();

  // 1. The durable base: a private clone of the checkpoint snapshot,
  // which was taken at an epoch publish and is therefore fully clustered
  // with a fresh clustered index buildable over it.
  std::unique_ptr<Table> table = d->checkpoint_table()->Clone();
  stats.checkpoint_rows = table->NumRows();
  auto built_cidx = ClusteredIndex::Build(*table, c_col);
  if (!built_cidx.ok()) return built_cidx.status();
  auto cidx = std::make_unique<ClusteredIndex>(std::move(*built_cidx));

  // 2. An engine over the snapshot. Durability stays detached and the
  // background triggers disarmed until the replay below finishes: replay
  // must not re-log its own records, and a recluster would permute row
  // ids mid-replay while the remaining records still address the
  // pre-crash id space.
  ServingOptions eo = options;
  eo.durability = nullptr;
  eo.recluster_tail_rows = 0;
  eo.compact_deleted_fraction = 0;
  auto engine =
      std::unique_ptr<ServingEngine>(new ServingEngine(table.get(),
                                                       cidx.get(), eo));
  engine->state_->owned_table = std::move(table);
  engine->state_->owned_cidx = std::move(cidx);

  // 3. Replay-derived structures: CMs (with per-engine rebuilt positional
  // bucketings) and secondary indexes are rebuilt from the base data, not
  // replayed from the log; calibration starts cold like any fresh epoch.
  for (const RecoverCmSpec& cm : spec.cms) {
    CmOptions co = cm.options;
    std::unique_ptr<ClusteredBucketing> cb;
    if (cm.c_bucket_target > 0) {
      auto built = ClusteredBucketing::Build(engine->table(), co.c_col,
                                             cm.c_bucket_target);
      if (!built.ok()) return built.status();
      cb = std::make_unique<ClusteredBucketing>(std::move(*built));
      co.c_buckets = cb.get();  // AttachCm copies it
    }
    Status s = engine->AttachCm(co);
    if (!s.ok()) return s;
  }
  for (const std::vector<size_t>& cols : spec.secondary_indexes) {
    Status s = engine->AttachSecondaryIndex(cols);
    if (!s.ok()) return s;
  }

  // 4. Replay the committed log tail through the ordinary write paths, so
  // CM maintenance, tombstones, and the delete log evolve exactly as they
  // did pre-crash. Row ids re-land deterministically: appends take
  // consecutive ids from the row count, which starts at the checkpoint's
  // count and is advanced only by these replayed records.
  for (const WalRecord& rec : d->CommittedTail()) {
    ++stats.records_scanned;
    switch (rec.type) {
      case WalRecordType::kRowAppend: {
        Durability::AppendOp op;
        if (!Durability::DecodeAppend(rec.payload, &op)) {
          return Status::Corruption("undecodable kRowAppend payload");
        }
        if (RowId(engine->table().NumRows()) != op.first_row) {
          return Status::Corruption(
              "replay row ids diverged from the logged append");
        }
        Status s = engine->ApplyAppend(op.rows);
        if (!s.ok()) return s;
        stats.rows_appended += op.rows.size();
        break;
      }
      case WalRecordType::kRowDelete: {
        std::vector<RowId> rows;
        if (!Durability::DecodeDeletes(rec.payload, &rows)) {
          return Status::Corruption("undecodable kRowDelete payload");
        }
        Status s = engine->ApplyDeletes(rows);
        if (!s.ok()) return s;
        stats.deletes_replayed += rows.size();
        break;
      }
      case WalRecordType::kRowUpdate: {
        Durability::UpdateOp op;
        if (!Durability::DecodeUpdate(rec.payload, &op)) {
          return Status::Corruption("undecodable kRowUpdate payload");
        }
        Status s = engine->ApplyUpdate(op.row, op.new_values);
        if (!s.ok()) return s;
        ++stats.updates_replayed;
        break;
      }
      default:
        // kCm* maintenance records: their structures are replay-derived
        // and were rebuilt in step 3.
        break;
    }
  }
  stats.uncommitted_dropped = d->UncommittedDurableRecords();

  // 5. Re-attach durability and re-arm the background triggers. No fresh
  // checkpoint is needed: replay never permuted ids, so the existing
  // snapshot plus the retained tail plus future records stays replayable.
  engine->durability_ = d;
  engine->recluster_tail_rows_.store(options.recluster_tail_rows,
                                     std::memory_order_relaxed);
  engine->compact_deleted_fraction_.store(options.compact_deleted_fraction,
                                          std::memory_order_relaxed);
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  if (options.metrics != nullptr) {
    options.metrics->recovery_ms->Record(stats.wall_seconds * 1e3);
  }
  if (stats_out != nullptr) *stats_out = stats;
  return engine;
}

}  // namespace corrmap::serve
