#include "serve/serving_engine.h"

#include <algorithm>
#include <cassert>

namespace corrmap::serve {

ServingEngine::ServingEngine(Table* table, const ClusteredIndex* cidx,
                             ServingOptions options)
    : table_(table),
      cidx_(cidx),
      options_(options),
      clustered_boundary_(RowId(table->NumRows())) {
  assert(table_->clustered_column() == int(cidx_->column()) &&
         "table must be clustered with cidx built over the clustered column");
  const size_t reserve =
      options_.reserve_rows > 0
          ? options_.reserve_rows
          : table_->NumRows() + ServingOptions::kDefaultAppendHeadroom;
  table_->Reserve(reserve);
  StartWorkers(options_.num_workers);
}

ServingEngine::~ServingEngine() { StopWorkers(); }

Status ServingEngine::AttachCm(CmOptions cm_options) {
  if (cm_options.c_buckets != nullptr) {
    return Status::InvalidArgument(
        "serving engine requires an unbucketed clustered attribute: "
        "positional clustered buckets do not cover the append tail");
  }
  auto scm = ShardedCorrelationMap::Create(table_, std::move(cm_options),
                                           options_.num_cm_shards);
  if (!scm.ok()) return scm.status();
  auto owned = std::make_unique<ShardedCorrelationMap>(std::move(*scm));
  Status s = owned->BuildFromTable();
  if (!s.ok()) return s;
  cms_.push_back(std::move(owned));
  return Status::OK();
}

bool ServingEngine::CompilePredicates(const ShardedCorrelationMap& scm,
                                      const Query& query,
                                      std::vector<CmColumnPredicate>* out) {
  out->clear();
  for (size_t ucol : scm.options().u_cols) {
    const Predicate* found = nullptr;
    for (const Predicate& p : query.predicates()) {
      if (p.column() == ucol) found = &p;
    }
    if (found == nullptr) return false;
    if (found->op() == Predicate::Op::kRange) {
      out->push_back(CmColumnPredicate::Range(found->lo(), found->hi()));
    } else {
      out->push_back(CmColumnPredicate::Points(found->keys()));
    }
  }
  return true;
}

SelectResult ServingEngine::ExecuteSelect(const Query& query) const {
  SelectResult out;
  DiskStats io;
  // Snapshot the published row count once: everything below this row is
  // fully written (release/acquire pairing with the append path).
  const size_t n_rows = table_->NumRows();
  const uint64_t gap =
      uint64_t(options_.disk.seek_ms() / options_.disk.seq_page_ms());

  const ShardedCorrelationMap* best = nullptr;
  std::vector<CmColumnPredicate> preds;
  for (const auto& scm : cms_) {
    if (CompilePredicates(*scm, query, &preds)) {
      best = scm.get();
      break;
    }
  }

  if (best == nullptr) {
    // No applicable CM: sequential scan of the whole heap.
    for (RowId r = 0; r < n_rows; ++r) {
      ++out.rows_examined;
      if (table_->IsDeleted(r)) continue;
      if (query.Matches(*table_, r)) ++out.num_matches;
    }
    io.seq_pages += table_->layout().NumPages(n_rows);
    out.simulated_ms = options_.disk.CostMs(io);
    return out;
  }

  out.used_cm = true;
  // Cross-query reuse: (CM identity, predicate fingerprint, epoch). A
  // result computed while maintenance interleaved (epoch moved) is used
  // once but never published.
  const uint64_t fp = SharedLookupCache::Fingerprint(preds);
  const uint64_t epoch = best->Epoch();
  SharedLookupCache::ResultPtr res = cache_.Get(best, fp, epoch);
  out.cache_hit = res != nullptr;
  if (res == nullptr) {
    auto computed =
        std::make_shared<const CmLookupResult>(best->Lookup(preds));
    if (best->Epoch() == epoch) cache_.Put(best, fp, epoch, computed);
    res = std::move(computed);
  }

  // Translate ordinal runs to clustered row ranges (the tail is handled
  // separately below; cidx only covers rows < clustered_boundary_).
  std::vector<RowRange> ranges;
  ranges.reserve(res->ranges.size());
  for (const OrdinalRange& r : res->ranges) {
    RowRange range = cidx_->LookupRange(best->DecodeClusteredOrdinal(r.lo),
                                        best->DecodeClusteredOrdinal(r.hi));
    // The clustered index closes its last key's range at the table's live
    // row count, which now includes the unclustered tail; clamp so tail
    // rows are examined exactly once (by the tail sweep below).
    range.end = std::min(range.end, RowId(clustered_boundary_));
    if (!range.empty()) ranges.push_back(range);
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const RowRange& a, const RowRange& b) {
              return a.begin < b.begin;
            });
  io.seeks += uint64_t(res->ranges.size()) * cidx_->BTreeHeight();
  std::vector<PageNo> pages;
  for (const RowRange& range : ranges) {
    const PageNo first = table_->layout().PageOfRow(range.begin);
    const PageNo last = table_->layout().PageOfRow(range.end - 1);
    for (PageNo p = first; p <= last; ++p) pages.push_back(p);
    for (RowId r = range.begin; r < range.end; ++r) {
      ++out.rows_examined;
      if (table_->IsDeleted(r)) continue;
      if (query.Matches(*table_, r)) ++out.num_matches;
    }
  }
  io += CostOfRuns(ExtractRuns(std::move(pages), gap));

  // Unclustered append tail: one sequential sweep, full re-filter. This is
  // what makes a freshly appended row visible to selects immediately.
  if (clustered_boundary_ < n_rows) {
    for (RowId r = clustered_boundary_; r < n_rows; ++r) {
      ++out.rows_examined;
      if (table_->IsDeleted(r)) continue;
      if (query.Matches(*table_, r)) ++out.num_matches;
    }
    ++io.seeks;
    io.seq_pages += table_->layout().PageOfRow(n_rows - 1) -
                    table_->layout().PageOfRow(clustered_boundary_) + 1;
  }
  out.simulated_ms = options_.disk.CostMs(io);
  return out;
}

Status ServingEngine::ApplyAppend(std::span<const std::vector<Key>> rows) {
  if (rows.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(append_mu_);
  if (table_->NumRows() + rows.size() > table_->ReservedRows()) {
    return Status::ResourceExhausted(
        "append past the table's reserved capacity; concurrent readers "
        "require append-without-reallocation");
  }
  std::vector<RowId> rids;
  rids.reserve(rows.size());
  for (const std::vector<Key>& row : rows) {
    const RowId rid = RowId(table_->NumRows());
    table_->AppendRowKeys(std::span<const Key>(row.data(), row.size()));
    rids.push_back(rid);
  }
  // CM maintenance after heap publication: selects that race this batch
  // find the new rows via the tail sweep whether or not their CM entries
  // have landed, so the probe==scan invariant holds throughout.
  for (const auto& scm : cms_) scm->InsertRowsBatched(rids);
  return Status::OK();
}

std::future<SelectResult> ServingEngine::Submit(Query query) {
  auto task = std::make_shared<std::packaged_task<SelectResult()>>(
      [this, q = std::move(query)] { return ExecuteSelect(q); });
  std::future<SelectResult> fut = task->get_future();
  Enqueue([task] { (*task)(); });
  return fut;
}

std::future<Status> ServingEngine::Append(std::vector<std::vector<Key>> rows) {
  auto task = std::make_shared<std::packaged_task<Status()>>(
      [this, r = std::move(rows)] {
        return ApplyAppend(std::span<const std::vector<Key>>(r));
      });
  std::future<Status> fut = task->get_future();
  Enqueue([task] { (*task)(); });
  return fut;
}

void ServingEngine::ResizeWorkerPool(size_t n) {
  StopWorkers();
  StartWorkers(n);
}

void ServingEngine::StartWorkers(size_t n) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = false;
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ServingEngine::StopWorkers() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

void ServingEngine::Enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(std::move(fn));
  }
  queue_cv_.notify_one();
}

void ServingEngine::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue before honoring a stop so ResizeWorkerPool never
      // strands submitted futures.
      if (queue_.empty()) return;
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    fn();
  }
}

Status ServingEngine::CheckInvariants() const {
  for (const auto& scm : cms_) {
    Status s = scm->CheckInvariants();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace corrmap::serve
