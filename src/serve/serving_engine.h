// The concurrent serving layer: one ServingEngine owns a clustered table
// plus its sharded CorrelationMaps and exposes thread-safe Submit(Query) /
// Append(rows) APIs backed by a fixed worker pool, the shape the paper's
// Fig. 9 mixed insert/select stream takes when driven by many clients.
//
// Epoch-swapped state: everything a select consults -- table, clustered
// index, tail boundary, CM set -- lives in one immutable-shape EpochState
// published through an acquire/release shared_ptr swap. Readers pin the
// current epoch for the duration of a select, so a background Recluster
// (src/serve/recluster.h) can build a successor epoch off to the side and
// swap it in without a reader ever observing a half-moved row.
//
// Read path: every select runs through the cost-based plan choice of
// exec/plan_choice.h -- the same arbiter the offline Executor consults.
// The candidates are a full scan, a clustered-range scan when the query
// predicates the clustered column, and one CM probe per applicable
// attached CM (several CMs over one column compete on cost); each CM
// candidate is costed from the exact CmLookupResult its execution would
// sweep, served from the process-wide SharedLookupCache so costing and
// execution pay one cm_lookup per (CM, predicate, epoch). Costs are
// calibrated by live buffer-pool residency: the engine routes targeted
// sweeps (clustered ranges, CM runs, the tail) through a BufferPool and
// periodically publishes each epoch's decayed per-file hit rates into a
// per-epoch calibration snapshot, so a clustered range the workload keeps
// hot is priced near CPU cost instead of cold I/O (the Fig. 9 gap). Full
// scans read around the pool (ring-buffer style) and stay cold-priced.
// ServingOptions::plan_choice can pin the legacy first-match policy (the
// first applicable CM, else scan) for A/B runs.
//
// Rows appended after the table was clustered live in an unclustered tail
// [clustered_boundary, NumRows); the clustered index does not cover them,
// so every non-scan plan finishes with a sequential tail sweep (a cost
// term every candidate carries). That keeps the probe==scan invariant
// exact under concurrent appends: a row is visible to selects as soon as
// the table publishes it, whether or not its CM entries have landed. A
// recluster returns the tail to zero, bounding the sweep.
//
// Write path: ApplyAppend serializes whole append transactions (heap rows
// + CM maintenance) behind one mutex; the table publishes each row with a
// release store and the sharded CMs take their per-shard exclusive locks,
// so concurrent selects never block for longer than one shard update.
// When the tail reaches `recluster_tail_rows`, the append schedules a
// background recluster on the worker pool.
#ifndef CORRMAP_SERVE_SERVING_ENGINE_H_
#define CORRMAP_SERVE_SERVING_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/bucketing.h"
#include "core/cost_model.h"
#include "exec/plan_choice.h"
#include "exec/predicate.h"
#include "index/clustered_index.h"
#include "index/secondary_index.h"
#include "obs/serving_metrics.h"
#include "serve/durability.h"
#include "serve/recluster.h"
#include "serve/shared_lookup_cache.h"
#include "serve/sharded_cm.h"
#include "storage/buffer_pool.h"
#include "storage/disk_model.h"
#include "storage/table.h"

namespace corrmap::serve {

struct ServingOptions {
  /// Fixed worker pool size for the async Submit/Append APIs.
  size_t num_workers = 4;
  /// Shards per attached CM.
  size_t num_cm_shards = ShardedCorrelationMap::kDefaultShards;
  /// Row capacity to pre-reserve in the table. Concurrent readers require
  /// append-without-reallocation (see storage/table.h), so Append refuses
  /// rows beyond the reservation instead of growing it. 0 reserves the
  /// current row count plus kDefaultAppendHeadroom so Append works out of
  /// the box. Each recluster re-reserves the successor table with fresh
  /// headroom, so capacity renews as long as reclusters run.
  size_t reserve_rows = 0;
  static constexpr size_t kDefaultAppendHeadroom = 1 << 16;
  /// Background re-clustering: when > 0, an append that grows the
  /// unclustered tail to this many rows schedules one Recluster pass on
  /// the worker pool (at most one in flight). 0 disables the trigger;
  /// Recluster() can still be called explicitly.
  size_t recluster_tail_rows = 0;
  /// Background compaction: when > 0, a delete/update that raises the
  /// tombstone fraction (NumDeleted / NumRows) to this value schedules one
  /// Compact pass instead -- same single-flight slot as the tail trigger,
  /// and a Compact also drains the tail. 0 disables; Compact() can still
  /// be called explicitly.
  double compact_deleted_fraction = 0;
  /// How ExecuteSelect picks its access plan. kCostBased (default) costs
  /// scan / clustered-range / every applicable CM probe with the shared
  /// plan enumeration and runs the cheapest; kFirstMatch reproduces the
  /// pre-cost-model policy (first applicable CM, else full scan) for A/B
  /// comparisons. Runtime-togglable via set_plan_choice().
  enum class PlanChoice : uint8_t { kFirstMatch, kCostBased };
  PlanChoice plan_choice = PlanChoice::kCostBased;
  /// Buffer pool (in pages) behind the serving read path: targeted sweeps
  /// are routed through it, per-select cost prices hits near CPU cost,
  /// and its decayed per-file hit rates calibrate plan costing. 0
  /// disables the pool -- every page is charged cold and plan costing
  /// runs uncalibrated, the pre-buffer-pool behavior.
  size_t buffer_pool_pages = 4096;
  /// Lock stripes of an engine-owned pool (BufferPool's num_stripes):
  /// concurrent readers charging sweeps lock only their pages' stripes.
  /// 1 reproduces the classic single global LRU exactly.
  size_t buffer_pool_stripes = 8;
  /// Shared infrastructure for engines living behind a ShardRouter: when
  /// non-null the engine uses the router-owned striped pool / lookup cache
  /// instead of creating its own (both must outlive the engine; the pool
  /// is internally thread-safe). buffer_pool_pages/buffer_pool_stripes are
  /// ignored when shared_pool is set.
  BufferPool* shared_pool = nullptr;
  SharedLookupCache* shared_cache = nullptr;
  /// Selects between calibration refreshes (pool-stats snapshots into the
  /// current epoch's PlanCalibration). 0 never refreshes.
  size_t calibration_period = 64;
  /// Observability sink (obs/serving_metrics.h): when non-null every
  /// select/write/recluster records counters, cost histograms, a
  /// SelectTrace, and est-vs-actual drift into it (must outlive the
  /// engine). Null -- the default -- skips all instrumentation, so an
  /// unobserved engine pays nothing.
  obs::ServingMetrics* metrics = nullptr;
  /// Register this engine's callback gauges (tail size, tombstones, queue
  /// depth, pool and cache state) with metrics' registry. A ShardRouter
  /// turns this off for its shards -- per-shard registrations would
  /// collide on one name -- and registers partition-wide aggregates
  /// itself.
  bool metrics_register_gauges = true;
  /// Durability manager (serve/durability.h): when non-null every
  /// committed write logs a row-op record through its group-commit WAL
  /// and every recluster/compact publish checkpoints the successor table
  /// into it; ServingEngine::Recover rebuilds an engine from its state
  /// after a crash. Must outlive the engine. Null -- the default -- logs
  /// nothing and pays nothing.
  Durability* durability = nullptr;
  /// Simulated-cost reporting (paper Table 1 constants by default).
  DiskModel disk;
};

/// Buffer-pool residency inputs plan costing ran with, snapshotted per
/// epoch (stable between refreshes; a recluster swap starts the successor
/// epoch cold so it re-calibrates against its own files).
struct PlanCalibration {
  double heap_residency = 0;
  double cidx_residency = 0;
  /// Per-extent decayed hit rates of the epoch's heap file
  /// (BufferPool::ResidencyOfExtent; entry i covers heap pages
  /// [i*BufferPool::kExtentPages, ...)). Empty until the first refresh;
  /// plan costing falls back to the scalar, so a cold epoch prices
  /// exactly as before extents existed.
  std::vector<double> heap_extents;
  /// Decayed hit rate per attached secondary index's file (attach order).
  std::vector<double> sidx_residency;
};

/// Outcome of one select through the engine.
struct SelectResult {
  uint64_t num_matches = 0;
  uint64_t rows_examined = 0;
  /// Simulated cost of the access pattern; buffer-pool hits are priced at
  /// CPU cost, misses at device cost (all-cold when the pool is off).
  double simulated_ms = 0;
  bool used_cm = false;     ///< answered via a CM probe (plan_kind alias)
  bool cache_hit = false;   ///< chosen CM's lookup came from the cache
  uint64_t recluster_epoch = 0;  ///< EpochState version that served this
  /// Unclustered-tail rows the select swept (0 for seq scans, whose pass
  /// over the tail is part of the scan itself).
  uint64_t tail_rows_swept = 0;

  /// ChosenPlan test hook: what the engine decided and why. `plan` is the
  /// candidate description ("seq_scan", "clustered_index_scan",
  /// "cm_scan(<name>)"), `plan_est_ms` its estimate (0 under first-match,
  /// which does not cost), and the residency fields are the calibration
  /// snapshot the deliberation used -- enough for a test to replay the
  /// identical choice through exec::ChooseAccessPlan offline.
  static constexpr size_t kNoCmSlot = ~size_t{0};
  PlanKind plan_kind = PlanKind::kSeqScan;
  std::string plan;
  double plan_est_ms = 0;
  size_t plan_cm_slot = kNoCmSlot;  ///< attach-order slot of the chosen CM
  uint64_t plan_candidates = 0;     ///< candidates deliberated
  double heap_residency = 0;
  double cidx_residency = 0;
  /// The cross-shard scatter budget was exhausted, so this select skipped
  /// CM/sorted-index deliberation and ran its cheapest CM-free plan.
  bool budget_degraded = false;
};

class ServingEngine {
  // Forward declaration so the public PreparedAppend guard can pin the
  // epoch it validated against (definition in the private section below).
  struct EpochState;

 public:
  /// `table` must already be clustered with `cidx` built over the
  /// clustered column. Both must outlive the engine (they back epoch 0;
  /// after the first recluster the engine serves its own successor
  /// copies, see table()).
  ServingEngine(Table* table, const ClusteredIndex* cidx,
                ServingOptions options = {});
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// One CM to rebuild during recovery. CMs are replay-derived, not
  /// logged (Hermit's stance: correlation structures must be cheaply
  /// rebuildable from base data), so recovery re-attaches them from this
  /// spec. `options.c_buckets` must be null; a positive
  /// `c_bucket_target` rebuilds the positional bucketing over the
  /// recovered clustered region (the per-epoch build parameter AttachCm
  /// remembers anyway).
  struct RecoverCmSpec {
    CmOptions options;
    uint64_t c_bucket_target = 0;
  };
  /// Everything replay-derived that Recover must rebuild on top of the
  /// recovered base table.
  struct RecoverSpec {
    std::vector<RecoverCmSpec> cms;
    std::vector<std::vector<size_t>> secondary_indexes;
  };

  /// Rebuilds a serving engine from `options.durability`'s state after a
  /// crash: clones the last checkpoint snapshot, rebuilds the clustered
  /// index over it, re-attaches CMs and secondary indexes per `spec`
  /// (calibration starts cold), then replays the committed WAL tail
  /// through the ordinary write paths -- row ids re-land exactly because
  /// ids are stable between checkpoints and the recovered row count
  /// evolves identically to the pre-crash run. Records of uncommitted
  /// txns and the torn log tail are never replayed. The engine comes
  /// back with its capacity reservation re-established and durability
  /// re-attached, ready to serve.
  static Result<std::unique_ptr<ServingEngine>> Recover(
      size_t c_col, const ServingOptions& options, const RecoverSpec& spec,
      RecoveryStats* stats = nullptr);

  /// Builds a sharded CM over the current table contents and attaches it.
  /// Setup-phase only: attach every CM before traffic starts (the CM list
  /// itself is unsynchronized; concurrent Submit/ExecuteSelect iterate
  /// it). Clustered-attribute bucketing is admitted: the engine copies the
  /// bucketing, skips CM maintenance for tail rows (positional bucket ids
  /// do not extend past the clustered region; the tail sweep covers them),
  /// and every recluster rebuilds the bucketing over the merged region.
  /// A c-bucketed CM therefore goes stale only as far as the tail the
  /// sweep already pays for, and reclusters re-base it.
  Status AttachCm(CmOptions cm_options);

  /// Builds a secondary B+Tree index over `columns` and attaches it, so
  /// the sorted-index plan family competes in ChooseAccessPlan. Setup
  /// phase only, like AttachCm. Per-epoch contract mirrors c-bucketed
  /// CMs: the index covers exactly the clustered region [0, boundary) --
  /// appends do NOT maintain it (the tail sweep serves tail rows), rows
  /// tombstoned mid-epoch stay indexed (execution re-filters them), and
  /// every recluster rebuilds it over the successor's merged region. The
  /// per-epoch index is therefore immutable once built: lock-free reads.
  Status AttachSecondaryIndex(std::vector<size_t> columns);

  /// Synchronous thread-safe select; Submit routes here from the pool.
  /// When `budget` is non-null and the cost-based policy is active, the
  /// select participates in a cross-shard scatter budget: if the cheapest
  /// CM-free candidate (seq scan / clustered range) already exceeds the
  /// remaining allowance, CM and sorted-index deliberation is skipped and
  /// that cheap plan runs (results stay exact -- every plan is -- only
  /// deliberation effort and plan quality degrade, flagged in
  /// SelectResult::budget_degraded). The executed plan's estimate is
  /// charged against the budget either way.
  SelectResult ExecuteSelect(const Query& query,
                             CostBudget* budget = nullptr) const;

  /// Synchronous thread-safe append of whole rows (physical keys, schema
  /// arity): appends to the heap, then updates every attached CM.
  /// InvalidArgument on a row whose arity does not match the schema;
  /// ResourceExhausted once the table's reservation is full (a recluster
  /// renews the reservation). Either way nothing is applied on error.
  Status ApplyAppend(std::span<const std::vector<Key>> rows);

  /// One engine's validated-but-unapplied slice of a multi-shard append.
  /// Obtained from PrepareAppend (which returns it holding this engine's
  /// append lock); pass it to CommitAppend to apply, or let it go out of
  /// scope to abort with nothing applied and the lock released. Movable,
  /// not copyable.
  class PreparedAppend {
   public:
    PreparedAppend() = default;
    PreparedAppend(PreparedAppend&&) = default;
    PreparedAppend& operator=(PreparedAppend&&) = default;
    bool valid() const { return lock_.owns_lock(); }

   private:
    friend class ServingEngine;
    std::unique_lock<std::mutex> lock_;
    std::shared_ptr<EpochState> state_;
  };

  /// Phase 1 of an all-or-nothing multi-shard append (ShardRouter): takes
  /// the append lock, validates every row's arity and the capacity
  /// reservation, and hands the held lock back as a guard so the
  /// validated headroom cannot be consumed before commit. The router
  /// prepares shards in ascending index order, which totally orders the
  /// cross-shard lock acquisition (no deadlock against concurrent
  /// multi-shard appends). On error the lock is released and `out` stays
  /// invalid.
  Status PrepareAppend(std::span<const std::vector<Key>> rows,
                       PreparedAppend* out);

  /// Phase 2: applies `rows` -- which must be the exact slice `prep`
  /// validated -- under the still-held lock, then releases it. Never
  /// fails on a batch PrepareAppend accepted.
  Status CommitAppend(PreparedAppend* prep,
                      std::span<const std::vector<Key>> rows);

  /// Epoch sentinel for ApplyDelete/ApplyUpdate: apply against whatever
  /// epoch is current.
  static constexpr uint64_t kAnyEpoch = ~uint64_t{0};

  /// Synchronous thread-safe delete: tombstones `row`, then retracts its
  /// (u-key, ordinal) pairs from every attached CM -- the retraction's
  /// epoch bump makes SharedLookupCache entries covering the key go
  /// stale. Tombstone-first ordering keeps probe==scan exact under
  /// concurrency: between the two steps a probe may still cover the row,
  /// but every access path re-filters through the tombstone bitmap, so
  /// the CM transiently over-covers and never under-covers. Row ids are
  /// permuted by recluster/compaction swaps, so a caller holding a row id
  /// resolved against epoch E passes expected_epoch=E and gets Aborted if
  /// the engine has moved on (re-resolve by row identity and retry).
  /// NotFound if the row is already tombstoned; OutOfRange past the end.
  Status ApplyDelete(RowId row, uint64_t expected_epoch = kAnyEpoch);

  /// Batched ApplyDelete under one append-lock acquisition and one epoch
  /// bracket per CM; rows already tombstoned are skipped (idempotent), so
  /// a batch never half-fails on a double delete.
  Status ApplyDeletes(std::span<const RowId> rows,
                      uint64_t expected_epoch = kAnyEpoch);

  /// Synchronous thread-safe update = tombstone + tail re-append: deletes
  /// `row` and appends `new_values` as a fresh tail row in one append
  /// transaction. The new row gets a new row id (returned epochs permute
  /// ids anyway); a concurrent select between the two steps sees neither
  /// version, which keeps probe==scan exact (both sides miss it).
  Status ApplyUpdate(RowId row, std::span<const Key> new_values,
                     uint64_t expected_epoch = kAnyEpoch);

  /// Async APIs backed by the worker pool.
  std::future<SelectResult> Submit(Query query);
  std::future<Status> Append(std::vector<std::vector<Key>> rows);
  std::future<Status> Delete(RowId row);
  std::future<Status> Update(RowId row, std::vector<Key> new_values);

  /// Runs `fn` on this engine's worker pool -- the router's parallel
  /// scatter posts its per-shard select tasks here so the gather rides
  /// the pools the shards already own. Requires num_workers > 0 (a
  /// pool-less engine never drains its queue; the router falls back to
  /// its own pool in that configuration).
  void Post(std::function<void()> fn);

  /// Runs one synchronous recluster pass (serialized against concurrent
  /// passes): merges the tail into the clustered region, patches the
  /// clustered index, rebuilds/re-bases the CMs, and swaps the epoch.
  /// Selects and appends keep running throughout. No-op when the tail is
  /// empty.
  Result<ReclusterStats> Recluster();

  /// Runs one synchronous compacting recluster: same two-phase pass as
  /// Recluster(), but tombstoned rows are dropped from the successor copy
  /// (heap shrinks, index boundaries contract, CMs rebuild over live rows
  /// only). Deletes racing the pass are carried as successor tombstones,
  /// never resurrected. No-op when the tail is empty and nothing is
  /// tombstoned.
  Result<ReclusterStats> Compact();

  /// Re-arms the background trigger (ServingOptions::recluster_tail_rows)
  /// at runtime; benches toggle this between phases.
  void set_recluster_tail_rows(size_t rows) {
    recluster_tail_rows_.store(rows, std::memory_order_relaxed);
  }

  /// Re-arms the background compaction trigger
  /// (ServingOptions::compact_deleted_fraction) at runtime.
  void set_compact_deleted_fraction(double fraction) {
    compact_deleted_fraction_.store(fraction, std::memory_order_relaxed);
  }

  /// Switches the plan-choice policy at runtime (benches A/B the two on
  /// one engine). Selects in flight finish under the policy they read.
  void set_plan_choice(ServingOptions::PlanChoice mode) {
    plan_choice_.store(mode, std::memory_order_relaxed);
  }
  ServingOptions::PlanChoice plan_choice() const {
    return plan_choice_.load(std::memory_order_relaxed);
  }

  /// The calibration snapshot the current epoch's selects are pricing
  /// with (zeros when the pool is disabled or not yet refreshed).
  PlanCalibration CurrentCalibration() const;

  /// Drops every buffer-pool frame and resets the current epoch's
  /// calibration to cold -- the drop_caches step between A/B trials.
  void ResetBufferPool();

  /// Test hook: the deliberation ExecuteSelect would run right now under
  /// the cost-based policy (candidates, estimates, winner), without
  /// executing. Uses the same epoch snapshot, shared lookup cache, and
  /// calibration inputs as a live select.
  PlanSet PlanSelect(const Query& query) const;

  /// Stops the pool, waits for queued work, and restarts with `n` workers
  /// (benchmarks sweep pool sizes on one engine).
  void ResizeWorkerPool(size_t n);

  /// Router pruning hook: true when this engine provably has no rows
  /// matching `query` -- the first applicable CM's lookup is empty AND the
  /// unclustered tail is empty (a non-empty tail may hold matches the CM
  /// has not indexed yet, so it always forces a visit). `*applicable` says
  /// whether any attached CM applied; when false the router must fall back
  /// to a full scatter. The CM lookup is resolved through the shared
  /// cache, so a subsequent ExecuteSelect on this engine reuses it.
  bool CanSkipForQuery(const Query& query, bool* applicable) const;

  /// Unbucketed CMs carried across recluster swaps by snapshot copy
  /// instead of an O(rows) re-hash (test hook for the satellite).
  uint64_t CmSnapshotCopies() const {
    return cm_snapshot_copies_.load(std::memory_order_relaxed);
  }

  size_t num_cms() const;
  size_t num_secondary_indexes() const { return sidx_columns_.size(); }
  SharedLookupCache& cache() const { return *cache_; }
  /// The observability sink selects/writes record into (null when
  /// unobserved). The WorkloadDriver mirrors its wall latencies here so
  /// driver reports and registry quantiles agree.
  obs::ServingMetrics* metrics() const { return metrics_; }
  /// Jobs waiting in the worker-pool queue right now (exported as the
  /// serve_queue_depth gauge).
  size_t QueueDepth() const {
    std::lock_guard<std::mutex> lock(queue_mu_);
    return queue_.size();
  }
  /// The pool behind the serving read path (null when disabled). Shared
  /// with the router and sibling shards when options.shared_pool was set.
  BufferPool* pool() const { return pool_; }
  /// First row of the unclustered append tail (current epoch).
  RowId clustered_boundary() const;
  /// Rows currently in the unclustered tail (current epoch).
  size_t TailRows() const;
  /// Version of the current EpochState (bumped by every recluster swap).
  uint64_t ReclusterEpoch() const;
  /// Recluster passes that actually swapped an epoch.
  uint64_t ReclustersCompleted() const {
    return reclusters_completed_.load(std::memory_order_acquire);
  }
  /// Background passes that returned an error (each failed attempt still
  /// paid its phase-1 build; a nonzero count with a growing tail means
  /// the engine is burning copies without ever swapping -- investigate).
  uint64_t ReclusterFailures() const {
    return recluster_failures_.load(std::memory_order_acquire);
  }
  /// The table / i-th CM of the *current* epoch. References are only
  /// stable while no recluster can run (setup, quiescent checks): a swap
  /// retires the epoch that backs them once the last reader drops it.
  const Table& table() const;
  const ShardedCorrelationMap& cm(size_t i) const;
  /// Clustered index of the current epoch (same stability caveat).
  const ClusteredIndex& cidx() const;

  /// Invariants of every attached sharded CM plus the epoch's physical
  /// layout: the clustered region must be sorted on the clustered column
  /// and the boundary within the row count (call at quiescence).
  Status CheckInvariants() const;

 private:
  friend class Reclusterer;

  /// Mutable calibration slot of one epoch: the published residency
  /// snapshot plan costing reads (stable between refreshes) plus the
  /// refresh countdown. Lives behind a unique_ptr inside the
  /// immutable-shape EpochState so refreshes never move the epoch.
  struct CalibrationCell {
    mutable std::shared_mutex mu;
    PlanCalibration calib;
    std::atomic<uint64_t> selects_since{0};
  };

  /// One immutable serving epoch. Readers pin it (shared_ptr) for the
  /// duration of a select; the recluster pass publishes a successor and
  /// the predecessor dies with its last reader. Epoch 0 borrows the
  /// caller's table/cidx; successors own theirs.
  struct EpochState {
    uint64_t version = 0;
    Table* table = nullptr;
    const ClusteredIndex* cidx = nullptr;
    RowId clustered_boundary = 0;
    /// Parallel to the attach order. c_bucketings[i] owns the clustered
    /// bucketing cms[i] points at (null for unbucketed CMs).
    std::vector<std::unique_ptr<ShardedCorrelationMap>> cms;
    std::vector<std::unique_ptr<ClusteredBucketing>> c_bucketings;
    std::unique_ptr<Table> owned_table;
    std::unique_ptr<ClusteredIndex> owned_cidx;
    /// Buffer-pool identities of this epoch's heap and clustered-index
    /// "files" (a recluster successor gets fresh ids, so the
    /// predecessor's frames age out instead of aliasing), plus the
    /// epoch's calibration snapshot (starts cold, re-calibrates from the
    /// pool's decayed per-file hit rates every calibration_period
    /// selects).
    uint32_t heap_file = 0;
    uint32_t cidx_file = 0;
    std::unique_ptr<CalibrationCell> calibration;
    /// Attached secondary indexes (attach order), each covering exactly
    /// the clustered region [0, clustered_boundary) of THIS epoch and
    /// immutable once the epoch is published (appends/deletes do not
    /// maintain them; see AttachSecondaryIndex), so reads are lock-free.
    std::vector<std::unique_ptr<SecondaryIndex>> sidx;
    std::vector<uint32_t> sidx_files;  ///< pool identities, attach order
  };

  std::shared_ptr<EpochState> CurrentState() const {
    std::shared_lock lock(state_mu_);
    return state_;
  }
  void PublishState(std::shared_ptr<EpochState> next) {
    std::unique_lock lock(state_mu_);
    state_ = std::move(next);
  }

  void StartWorkers(size_t n);
  void StopWorkers();
  void Enqueue(std::function<void()> fn);
  void WorkerLoop();
  void MaybeScheduleRecluster(const EpochState& st);

  /// Registers this engine's callback gauges with metrics_'s registry
  /// (and records their names so the destructor can unregister before the
  /// captured `this` dangles). Only called when
  /// ServingOptions::metrics_register_gauges held.
  void RegisterMetricsGauges();

  /// Tombstones `row` on `st`'s table, logs it for recluster replay, and
  /// retracts its pairs from every CM covering it. Caller holds
  /// append_mu_ and has bounds-checked the row.
  Status DeleteRowLocked(const EpochState& st, RowId row);

  /// Compiles the query's predicates for `scm`'s attributes; false when
  /// some CM attribute is unpredicated (CM inapplicable, §6.2.1).
  static bool CompilePredicates(const ShardedCorrelationMap& scm,
                                const Query& query,
                                std::vector<CmColumnPredicate>* out);

  /// Registers the epoch's heap/cidx files with the pool and installs a
  /// cold calibration cell. Called for epoch 0 and for every recluster
  /// successor before it is published.
  void InitEpochCalibration(EpochState* st) const;
  PlanCalibration CalibrationOf(const EpochState& st) const;
  /// Counts this select toward the epoch's refresh period and, when it
  /// elapses, republishes the calibration from the pool's decayed
  /// per-file hit rates.
  void MaybeRefreshCalibration(const EpochState& st) const;

  /// Applicable-CM lookups for `query`, one per CM slot (unfilled views
  /// stay inapplicable). Results come from / are published to the shared
  /// cache; `pinned` keeps them alive for the caller. Under first-match
  /// only the first applicable CM is resolved.
  void ResolveCmLookups(const EpochState& st, const Query& query,
                        bool first_match_only, std::vector<CmPlanView>* views,
                        std::vector<SharedLookupCache::ResultPtr>* pinned,
                        std::vector<uint8_t>* cache_hits) const;

  /// Prices a set of heap page runs through the buffer pool (hits near
  /// CPU cost, misses at device cost, one seek per run) and admits the
  /// touched pages; cold DiskModel arithmetic when the pool is off.
  double ChargeHeapRuns(const EpochState& st,
                        std::span<const PageRun> runs) const;
  /// Prices `leaves.size()` clustered-index descents: per descent, the
  /// shared upper levels plus one leaf page (leaves are proxied by the
  /// heap page of the range start, so leaf residency tracks hot ranges).
  double ChargeDescents(const EpochState& st,
                        std::span<const PageNo> leaves) const;
  /// ChargeDescents generalized to any index file/height (secondary
  /// indexes price through it with their own pool identity).
  double ChargeDescentsOf(uint32_t file, size_t height,
                          std::span<const PageNo> leaves) const;

  /// One resolved sorted-index candidate: the exact sorted rid set the
  /// execution would sweep (clustered-region rows, live at resolve time)
  /// plus its coalesced heap page runs. Resolved once per select and
  /// shared between costing (SortedIndexCostMs) and execution.
  struct SidxPlan {
    size_t slot = 0;
    std::vector<RowId> rids;
    std::vector<PageRun> runs;
    size_t n_probes = 1;
  };
  /// Resolves every applicable attached secondary index for `query` (a
  /// predicate on the index's first column makes it applicable -- the
  /// composite-prefix rule of SecondaryIndex::LookupRange).
  void ResolveSidxPlans(const EpochState& st, const Query& query,
                        uint64_t run_gap, std::vector<SidxPlan>* plans) const;

  /// Translates one CM lookup's ordinal runs into sorted clustered row
  /// ranges (clamped to `boundary`) and the descent leaf pages. Shared by
  /// deliberation -- the pre-translated ranges feed the extent-granular
  /// residency refinement via CmPlanView::row_ranges -- and execution,
  /// which sweeps the identical ranges, so the two never diverge.
  static void TranslateCmRuns(const EpochState& st, size_t slot,
                              const CmLookupResult& res, RowId boundary,
                              std::vector<RowRange>* ranges,
                              std::vector<PageNo>* leaves);

  /// The cost-based deliberation both ExecuteSelect and PlanSelect run:
  /// pre-translates every applicable CM's runs (filling `views[i]`'s
  /// row_ranges for the extent refinement), resolves sorted-index
  /// candidates, and prices everything through ChooseAccessPlan under the
  /// epoch's calibration. Outputs are keyed by slot so the execution arms
  /// reuse the winner's translation instead of redoing it.
  PlanSet Deliberate(const EpochState& st, const Query& query,
                     const PlanCalibration& calib, uint64_t gap,
                     std::vector<CmPlanView>* views,
                     std::vector<std::vector<RowRange>>* cm_ranges,
                     std::vector<std::vector<PageNo>>* cm_leaves,
                     std::vector<SidxPlan>* sidx_plans,
                     CostBudget* budget = nullptr) const;

  ServingOptions options_;
  std::atomic<size_t> recluster_tail_rows_;
  std::atomic<double> compact_deleted_fraction_;
  std::atomic<ServingOptions::PlanChoice> plan_choice_;
  CostModel cost_model_;
  /// Serving-path buffer pool (null when disabled); internally
  /// thread-safe via lock striping. Either owned by this engine or shared
  /// across sibling shards through ServingOptions::shared_pool.
  BufferPool* pool_ = nullptr;
  std::unique_ptr<BufferPool> owned_pool_;
  /// Attach-order CM configs (c_buckets cleared; targets kept aside) so a
  /// recluster can re-instantiate every CM against the successor table.
  std::vector<CmOptions> attached_;
  std::vector<uint64_t> c_bucket_targets_;  ///< 0 = unbucketed slot
  /// Attach-order secondary-index column sets (recluster rebuilds each
  /// per successor epoch).
  std::vector<std::vector<size_t>> sidx_columns_;
  /// Stable cache identities, one per attached CM: the SharedLookupCache
  /// keys on (slot address, fingerprint, epoch), and the slot address
  /// outlives the per-epoch CM objects, so successor epochs lazily evict
  /// predecessors' entries through the ordinary stale-epoch path.
  std::vector<std::unique_ptr<uint64_t>> cm_slot_tags_;

  std::shared_ptr<EpochState> state_;
  mutable std::shared_mutex state_mu_;
  SharedLookupCache* cache_ = nullptr;  ///< owned or router-shared
  std::unique_ptr<SharedLookupCache> owned_cache_;
  mutable std::atomic<uint64_t> cm_snapshot_copies_{0};

  std::mutex append_mu_;     ///< serializes write transactions end-to-end
  /// Rows deleted in the current epoch's id space, in order (guarded by
  /// append_mu_). A recluster snapshots its watermark before the phase-1
  /// tombstone reads and replays everything logged after it against the
  /// successor, so a delete racing the deep copy is carried, never
  /// resurrected; the publishing pass clears the log.
  std::vector<RowId> delete_log_;
  std::mutex recluster_mu_;  ///< serializes recluster passes
  std::atomic<bool> recluster_pending_{false};
  std::atomic<uint64_t> reclusters_completed_{0};
  std::atomic<uint64_t> recluster_failures_{0};

  /// Durability manager (null = no logging). Writes log through it under
  /// append_mu_; the recluster publish checkpoints into it under the same
  /// lock, so log order always equals apply order.
  Durability* durability_ = nullptr;

  /// Observability sink plus the gauge names this engine registered (to
  /// unregister in the destructor; the callbacks capture `this`).
  obs::ServingMetrics* metrics_ = nullptr;
  std::vector<std::string> gauge_names_;

  /// One queued job; `enqueued` is stamped only when metrics_ is set (it
  /// feeds the serve_queue_wait_us histogram).
  struct QueuedJob {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };
  std::vector<std::thread> workers_;
  std::deque<QueuedJob> queue_;
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  bool stopping_ = false;
};

}  // namespace corrmap::serve

#endif  // CORRMAP_SERVE_SERVING_ENGINE_H_
