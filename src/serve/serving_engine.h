// The concurrent serving layer: one ServingEngine owns a clustered table
// plus its sharded CorrelationMaps and exposes thread-safe Submit(Query) /
// Append(rows) APIs backed by a fixed worker pool, the shape the paper's
// Fig. 9 mixed insert/select stream takes when driven by many clients.
//
// Epoch-swapped state: everything a select consults -- table, clustered
// index, tail boundary, CM set -- lives in one immutable-shape EpochState
// published through an acquire/release shared_ptr swap. Readers pin the
// current epoch for the duration of a select, so a background Recluster
// (src/serve/recluster.h) can build a successor epoch off to the side and
// swap it in without a reader ever observing a half-moved row.
//
// Read path: the first attached CM whose attributes the query predicates
// answers via cm_lookup -- served from the process-wide SharedLookupCache
// when a similar query already computed the runs at the CM's current epoch
// -- and the resulting clustered ordinal runs are swept and re-filtered on
// the full predicate. Rows appended after the table was clustered live in
// an unclustered tail [clustered_boundary, NumRows); the clustered index
// does not cover them, so every CM-driven select finishes with a
// sequential tail sweep. That keeps the probe==scan invariant exact under
// concurrent appends: a row is visible to selects as soon as the table
// publishes it, whether or not its CM entries have landed. A recluster
// returns the tail to zero, bounding the sweep.
//
// Write path: ApplyAppend serializes whole append transactions (heap rows
// + CM maintenance) behind one mutex; the table publishes each row with a
// release store and the sharded CMs take their per-shard exclusive locks,
// so concurrent selects never block for longer than one shard update.
// When the tail reaches `recluster_tail_rows`, the append schedules a
// background recluster on the worker pool.
#ifndef CORRMAP_SERVE_SERVING_ENGINE_H_
#define CORRMAP_SERVE_SERVING_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/bucketing.h"
#include "exec/predicate.h"
#include "index/clustered_index.h"
#include "serve/recluster.h"
#include "serve/shared_lookup_cache.h"
#include "serve/sharded_cm.h"
#include "storage/disk_model.h"
#include "storage/table.h"

namespace corrmap::serve {

struct ServingOptions {
  /// Fixed worker pool size for the async Submit/Append APIs.
  size_t num_workers = 4;
  /// Shards per attached CM.
  size_t num_cm_shards = ShardedCorrelationMap::kDefaultShards;
  /// Row capacity to pre-reserve in the table. Concurrent readers require
  /// append-without-reallocation (see storage/table.h), so Append refuses
  /// rows beyond the reservation instead of growing it. 0 reserves the
  /// current row count plus kDefaultAppendHeadroom so Append works out of
  /// the box. Each recluster re-reserves the successor table with fresh
  /// headroom, so capacity renews as long as reclusters run.
  size_t reserve_rows = 0;
  static constexpr size_t kDefaultAppendHeadroom = 1 << 16;
  /// Background re-clustering: when > 0, an append that grows the
  /// unclustered tail to this many rows schedules one Recluster pass on
  /// the worker pool (at most one in flight). 0 disables the trigger;
  /// Recluster() can still be called explicitly.
  size_t recluster_tail_rows = 0;
  /// Simulated-cost reporting (paper Table 1 constants by default).
  DiskModel disk;
};

/// Outcome of one select through the engine.
struct SelectResult {
  uint64_t num_matches = 0;
  uint64_t rows_examined = 0;
  double simulated_ms = 0;  ///< disk-model cost of the access pattern
  bool used_cm = false;     ///< answered via a CM (else full scan)
  bool cache_hit = false;   ///< cm_lookup served from the shared cache
  uint64_t recluster_epoch = 0;  ///< EpochState version that served this
};

class ServingEngine {
 public:
  /// `table` must already be clustered with `cidx` built over the
  /// clustered column. Both must outlive the engine (they back epoch 0;
  /// after the first recluster the engine serves its own successor
  /// copies, see table()).
  ServingEngine(Table* table, const ClusteredIndex* cidx,
                ServingOptions options = {});
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Builds a sharded CM over the current table contents and attaches it.
  /// Setup-phase only: attach every CM before traffic starts (the CM list
  /// itself is unsynchronized; concurrent Submit/ExecuteSelect iterate
  /// it). Clustered-attribute bucketing is admitted: the engine copies the
  /// bucketing, skips CM maintenance for tail rows (positional bucket ids
  /// do not extend past the clustered region; the tail sweep covers them),
  /// and every recluster rebuilds the bucketing over the merged region.
  /// A c-bucketed CM therefore goes stale only as far as the tail the
  /// sweep already pays for, and reclusters re-base it.
  Status AttachCm(CmOptions cm_options);

  /// Synchronous thread-safe select; Submit routes here from the pool.
  SelectResult ExecuteSelect(const Query& query) const;

  /// Synchronous thread-safe append of whole rows (physical keys, schema
  /// arity): appends to the heap, then updates every attached CM.
  /// ResourceExhausted once the table's reservation is full (a recluster
  /// renews the reservation).
  Status ApplyAppend(std::span<const std::vector<Key>> rows);

  /// Async APIs backed by the worker pool.
  std::future<SelectResult> Submit(Query query);
  std::future<Status> Append(std::vector<std::vector<Key>> rows);

  /// Runs one synchronous recluster pass (serialized against concurrent
  /// passes): merges the tail into the clustered region, patches the
  /// clustered index, rebuilds/re-bases the CMs, and swaps the epoch.
  /// Selects and appends keep running throughout. No-op when the tail is
  /// empty.
  Result<ReclusterStats> Recluster();

  /// Re-arms the background trigger (ServingOptions::recluster_tail_rows)
  /// at runtime; benches toggle this between phases.
  void set_recluster_tail_rows(size_t rows) {
    recluster_tail_rows_.store(rows, std::memory_order_relaxed);
  }

  /// Stops the pool, waits for queued work, and restarts with `n` workers
  /// (benchmarks sweep pool sizes on one engine).
  void ResizeWorkerPool(size_t n);

  size_t num_cms() const;
  SharedLookupCache& cache() const { return cache_; }
  /// First row of the unclustered append tail (current epoch).
  RowId clustered_boundary() const;
  /// Rows currently in the unclustered tail (current epoch).
  size_t TailRows() const;
  /// Version of the current EpochState (bumped by every recluster swap).
  uint64_t ReclusterEpoch() const;
  /// Recluster passes that actually swapped an epoch.
  uint64_t ReclustersCompleted() const {
    return reclusters_completed_.load(std::memory_order_acquire);
  }
  /// Background passes that returned an error (each failed attempt still
  /// paid its phase-1 build; a nonzero count with a growing tail means
  /// the engine is burning copies without ever swapping -- investigate).
  uint64_t ReclusterFailures() const {
    return recluster_failures_.load(std::memory_order_acquire);
  }
  /// The table / i-th CM of the *current* epoch. References are only
  /// stable while no recluster can run (setup, quiescent checks): a swap
  /// retires the epoch that backs them once the last reader drops it.
  const Table& table() const;
  const ShardedCorrelationMap& cm(size_t i) const;

  /// Invariants of every attached sharded CM plus the epoch's physical
  /// layout: the clustered region must be sorted on the clustered column
  /// and the boundary within the row count (call at quiescence).
  Status CheckInvariants() const;

 private:
  friend class Reclusterer;

  /// One immutable serving epoch. Readers pin it (shared_ptr) for the
  /// duration of a select; the recluster pass publishes a successor and
  /// the predecessor dies with its last reader. Epoch 0 borrows the
  /// caller's table/cidx; successors own theirs.
  struct EpochState {
    uint64_t version = 0;
    Table* table = nullptr;
    const ClusteredIndex* cidx = nullptr;
    RowId clustered_boundary = 0;
    /// Parallel to the attach order. c_bucketings[i] owns the clustered
    /// bucketing cms[i] points at (null for unbucketed CMs).
    std::vector<std::unique_ptr<ShardedCorrelationMap>> cms;
    std::vector<std::unique_ptr<ClusteredBucketing>> c_bucketings;
    std::unique_ptr<Table> owned_table;
    std::unique_ptr<ClusteredIndex> owned_cidx;
  };

  std::shared_ptr<EpochState> CurrentState() const {
    std::shared_lock lock(state_mu_);
    return state_;
  }
  void PublishState(std::shared_ptr<EpochState> next) {
    std::unique_lock lock(state_mu_);
    state_ = std::move(next);
  }

  void StartWorkers(size_t n);
  void StopWorkers();
  void Enqueue(std::function<void()> fn);
  void WorkerLoop();
  void MaybeScheduleRecluster(const EpochState& st);

  /// Compiles the query's predicates for `scm`'s attributes; false when
  /// some CM attribute is unpredicated (CM inapplicable, §6.2.1).
  static bool CompilePredicates(const ShardedCorrelationMap& scm,
                                const Query& query,
                                std::vector<CmColumnPredicate>* out);

  ServingOptions options_;
  std::atomic<size_t> recluster_tail_rows_;
  /// Attach-order CM configs (c_buckets cleared; targets kept aside) so a
  /// recluster can re-instantiate every CM against the successor table.
  std::vector<CmOptions> attached_;
  std::vector<uint64_t> c_bucket_targets_;  ///< 0 = unbucketed slot
  /// Stable cache identities, one per attached CM: the SharedLookupCache
  /// keys on (slot address, fingerprint, epoch), and the slot address
  /// outlives the per-epoch CM objects, so successor epochs lazily evict
  /// predecessors' entries through the ordinary stale-epoch path.
  std::vector<std::unique_ptr<uint64_t>> cm_slot_tags_;

  std::shared_ptr<EpochState> state_;
  mutable std::shared_mutex state_mu_;
  mutable SharedLookupCache cache_;

  std::mutex append_mu_;     ///< serializes append transactions end-to-end
  std::mutex recluster_mu_;  ///< serializes recluster passes
  std::atomic<bool> recluster_pending_{false};
  std::atomic<uint64_t> reclusters_completed_{0};
  std::atomic<uint64_t> recluster_failures_{0};

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  bool stopping_ = false;
};

}  // namespace corrmap::serve

#endif  // CORRMAP_SERVE_SERVING_ENGINE_H_
