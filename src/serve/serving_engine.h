// The concurrent serving layer: one ServingEngine owns a clustered table
// plus its sharded CorrelationMaps and exposes thread-safe Submit(Query) /
// Append(rows) APIs backed by a fixed worker pool, the shape the paper's
// Fig. 9 mixed insert/select stream takes when driven by many clients.
//
// Read path: the first attached CM whose attributes the query predicates
// answers via cm_lookup -- served from the process-wide SharedLookupCache
// when a similar query already computed the runs at the CM's current epoch
// -- and the resulting clustered ordinal runs are swept and re-filtered on
// the full predicate. Rows appended after the table was clustered live in
// an unclustered tail [clustered_boundary, NumRows); the clustered index
// does not cover them, so every CM-driven select finishes with a
// sequential tail sweep. That keeps the probe==scan invariant exact under
// concurrent appends: a row is visible to selects as soon as the table
// publishes it, whether or not its CM entries have landed.
//
// Write path: ApplyAppend serializes whole append transactions (heap rows
// + CM maintenance) behind one mutex; the table publishes each row with a
// release store and the sharded CMs take their per-shard exclusive locks,
// so concurrent selects never block for longer than one shard update.
#ifndef CORRMAP_SERVE_SERVING_ENGINE_H_
#define CORRMAP_SERVE_SERVING_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "exec/predicate.h"
#include "index/clustered_index.h"
#include "serve/shared_lookup_cache.h"
#include "serve/sharded_cm.h"
#include "storage/disk_model.h"
#include "storage/table.h"

namespace corrmap::serve {

struct ServingOptions {
  /// Fixed worker pool size for the async Submit/Append APIs.
  size_t num_workers = 4;
  /// Shards per attached CM.
  size_t num_cm_shards = ShardedCorrelationMap::kDefaultShards;
  /// Row capacity to pre-reserve in the table. Concurrent readers require
  /// append-without-reallocation (see storage/table.h), so Append refuses
  /// rows beyond the reservation instead of growing it. 0 reserves the
  /// current row count plus kDefaultAppendHeadroom so Append works out of
  /// the box.
  size_t reserve_rows = 0;
  static constexpr size_t kDefaultAppendHeadroom = 1 << 16;
  /// Simulated-cost reporting (paper Table 1 constants by default).
  DiskModel disk;
};

/// Outcome of one select through the engine.
struct SelectResult {
  uint64_t num_matches = 0;
  uint64_t rows_examined = 0;
  double simulated_ms = 0;  ///< disk-model cost of the access pattern
  bool used_cm = false;     ///< answered via a CM (else full scan)
  bool cache_hit = false;   ///< cm_lookup served from the shared cache
};

class ServingEngine {
 public:
  /// `table` must already be clustered with `cidx` built over the
  /// clustered column. Both must outlive the engine.
  ServingEngine(Table* table, const ClusteredIndex* cidx,
                ServingOptions options = {});
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Builds a sharded CM over the current table contents and attaches it.
  /// Setup-phase only: attach every CM before traffic starts (the CM list
  /// itself is unsynchronized; concurrent Submit/ExecuteSelect iterate
  /// it). Clustered-attribute bucketing is rejected: positional bucket
  /// ids do not extend to rows appended after clustering (the tail), and
  /// the serving engine must keep serving while the tail grows.
  Status AttachCm(CmOptions cm_options);

  /// Synchronous thread-safe select; Submit routes here from the pool.
  SelectResult ExecuteSelect(const Query& query) const;

  /// Synchronous thread-safe append of whole rows (physical keys, schema
  /// arity): appends to the heap, then updates every attached CM.
  /// ResourceExhausted once the table's reservation is full.
  Status ApplyAppend(std::span<const std::vector<Key>> rows);

  /// Async APIs backed by the worker pool.
  std::future<SelectResult> Submit(Query query);
  std::future<Status> Append(std::vector<std::vector<Key>> rows);

  /// Stops the pool, waits for queued work, and restarts with `n` workers
  /// (benchmarks sweep pool sizes on one engine).
  void ResizeWorkerPool(size_t n);

  size_t num_cms() const { return cms_.size(); }
  const ShardedCorrelationMap& cm(size_t i) const { return *cms_[i]; }
  SharedLookupCache& cache() const { return cache_; }
  /// First row of the unclustered append tail.
  RowId clustered_boundary() const { return clustered_boundary_; }
  const Table& table() const { return *table_; }

  /// Invariants of every attached sharded CM (call at quiescence).
  Status CheckInvariants() const;

 private:
  void StartWorkers(size_t n);
  void StopWorkers();
  void Enqueue(std::function<void()> fn);
  void WorkerLoop();

  /// Compiles the query's predicates for `scm`'s attributes; false when
  /// some CM attribute is unpredicated (CM inapplicable, §6.2.1).
  static bool CompilePredicates(const ShardedCorrelationMap& scm,
                                const Query& query,
                                std::vector<CmColumnPredicate>* out);

  Table* table_;
  const ClusteredIndex* cidx_;
  ServingOptions options_;
  RowId clustered_boundary_;
  std::vector<std::unique_ptr<ShardedCorrelationMap>> cms_;
  mutable SharedLookupCache cache_;

  std::mutex append_mu_;  ///< serializes append transactions end-to-end

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  bool stopping_ = false;
};

}  // namespace corrmap::serve

#endif  // CORRMAP_SERVE_SERVING_ENGINE_H_
