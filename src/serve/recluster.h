// Online re-clustering of the serving tail (the top ROADMAP open item).
//
// The ServingEngine parks every append in an unclustered tail
// [clustered_boundary, NumRows) that each select must sweep, so select
// cost grows monotonically with the append stream. The Recluster pass
// folds the tail back into the clustered region without ever blocking
// readers and without stalling writers for longer than a small catch-up:
//
//   Phase 1 (concurrent with selects AND appends): snapshot the published
//   row count n0, compute the merge permutation (the clustered region is
//   already sorted; the tail is sorted and the two runs merged in place),
//   deep-copy the table in merged order (dictionaries preserved, so
//   physical keys keep their codes), patch the ClusteredIndex boundaries
//   from the old index + the sorted tail keys, and rebuild the sharded
//   CMs against the successor table. Appends racing this phase keep
//   landing in the predecessor's tail beyond n0.
//
//   Phase 2 (append lock held, readers still free): copy the catch-up
//   rows [n0, n1) into the successor as its initial tail, snapshot-copy
//   the unbucketed CMs from the predecessor (under the lock their
//   value-coded content is exactly the live-row pair multiset, catch-up
//   rows and raced deletes included), raise every successor CM's epoch
//   above its
//   predecessor's -- so SharedLookupCache entries keyed to pre-recluster
//   epochs compare stale and are lazily evicted, never served -- and
//   publish the successor EpochState with one pointer swap (release;
//   readers acquire). A reader that pinned the predecessor keeps serving
//   a fully consistent old epoch until it finishes; probe==scan holds on
//   both sides of the swap because the row multiset is identical.
//
// Unbucketed CMs encode clustered *values*, so their content survives a
// physical reorder unchanged -- they are snapshot-copied, never re-hashed
// (see ReclusterStats::cms_snapshot_copied). c-bucketed CMs encode
// positional bucket ids; the pass
// rebuilds their ClusteredBucketing over the successor's clustered region,
// which is what makes c-bucketed CMs admissible in the serving engine
// again (between reclusters their tail rows are simply left to the sweep).
//
// Compaction (ReclusterMode::kCompact) reuses the same two phases but
// drops tombstoned rows from the successor copy: the permutation keeps
// only live rows, ClusteredIndex::BuildMerged contracts each old key's
// range by its deleted count, and the CM rebuilds see only live rows.
// Deletes that land between the permutation's tombstone reads and the
// publish are reconciled in phase 2 from the engine's delete log through
// the old->new row mapping: a logged row the copy dropped is done; one the
// clone carried as a tombstone is done (the successor CM build skipped
// it); otherwise it is re-deleted against the successor, retracting from
// the successor CMs. A deleted row is therefore compacted away or carried,
// never resurrected.
#ifndef CORRMAP_SERVE_RECLUSTER_H_
#define CORRMAP_SERVE_RECLUSTER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "index/clustered_index.h"
#include "storage/table.h"

namespace corrmap::serve {

class ServingEngine;

/// What a pass does with tombstoned rows.
enum class ReclusterMode : uint8_t {
  /// Fold the tail into the clustered region; tombstones are carried into
  /// the successor unchanged (cheap, keeps row counts stable).
  kMergeTail,
  /// Fold the tail AND drop tombstoned rows from the successor copy: the
  /// heap shrinks, ClusteredIndex boundaries contract by per-key deleted
  /// counts, and CM/bucketing rebuilds see only live rows.
  kCompact,
};

/// Outcome of one recluster pass.
struct ReclusterStats {
  /// EpochState version published by this pass (unchanged if no-op).
  uint64_t epoch = 0;
  /// Rows in the successor's clustered region (old region + merged tail).
  uint64_t rows_clustered = 0;
  /// Old-tail rows merged into the clustered region.
  uint64_t tail_rows_merged = 0;
  /// Rows appended while phase 1 ran; they seed the successor's tail.
  uint64_t catch_up_rows = 0;
  /// Tombstoned rows the compacting copy dropped (kCompact only).
  uint64_t rows_compacted = 0;
  /// Tombstoned rows still present in the successor at publish: deletes
  /// that raced phase 1 and were carried rather than dropped (plus, under
  /// kMergeTail, every pre-existing tombstone).
  uint64_t tombstones_carried = 0;
  /// Unbucketed CMs carried into the successor by snapshot copy instead of
  /// an O(rows) re-hash: their content encodes clustered *values*, which a
  /// physical reorder does not change, so phase 2 copies the predecessor
  /// map under the append lock (where its content is exactly the live-row
  /// pair multiset) and only retargets the table pointer. c-bucketed CMs
  /// are positional and are still rebuilt in phase 1.
  uint64_t cms_snapshot_copied = 0;
  /// Wall seconds in phase 1 (fully concurrent).
  double build_seconds = 0;
  /// Wall seconds in phase 2 (writers blocked; readers still free).
  double swap_seconds = 0;

  bool performed() const {
    return tail_rows_merged > 0 || rows_compacted > 0;
  }
};

/// Merge permutation over the first `n_rows` rows of `t`: [0, boundary) is
/// assumed sorted by column `c_col` (the clustered region), [boundary,
/// n_rows) is stable-sorted and the two sorted runs merged, preserving the
/// relative order of equal keys (clustered-region rows first, then tail
/// rows in append order) exactly like Table::ClusterBy's stable sort
/// would. When `sorted_tail_keys` is non-null it receives the tail's
/// clustered keys ascending with multiplicity (captured from the sorted
/// run before the merge -- ClusteredIndex::BuildMerged consumes exactly
/// this, so the pass never sorts the tail twice). Exposed for tests.
std::vector<RowId> MergeTailPermutation(const Table& t, size_t c_col,
                                        RowId boundary, size_t n_rows,
                                        std::vector<Key>* sorted_tail_keys =
                                            nullptr);

/// Compacting variant: live clustered rows in order merged with the sorted
/// live tail, tombstoned rows left out. `deleted_counts` receives, per old
/// distinct key of `old_cidx`, how many of that key's rows were dropped --
/// exactly the parallel span ClusteredIndex::BuildMerged contracts its
/// boundaries by. Each row's tombstone is read exactly once, so the kept
/// order and the counts are mutually consistent even when deletes race the
/// pass (a later delete is simply carried by the clone and reconciled from
/// the engine's delete log in phase 2).
std::vector<RowId> CompactMergePermutation(const Table& t, size_t c_col,
                                           RowId boundary, size_t n_rows,
                                           const ClusteredIndex& old_cidx,
                                           std::vector<Key>* sorted_tail_keys,
                                           std::vector<uint32_t>*
                                               deleted_counts);

/// One recluster pass over a ServingEngine (see the file comment for the
/// two-phase protocol). Serialized against other passes by the engine's
/// recluster mutex; safe to run from any thread, including the engine's
/// own worker pool (the background trigger does exactly that).
class Reclusterer {
 public:
  explicit Reclusterer(ServingEngine* engine,
                       ReclusterMode mode = ReclusterMode::kMergeTail)
      : engine_(engine), mode_(mode) {}

  /// Test seams, run on the reclustering thread at two points of phase 1:
  /// right after the permutation (and its tombstone reads) is fixed, and
  /// after the successor is fully built but not yet published. Tests
  /// inject deletes here to pin down the delete-racing-the-copy
  /// reconciliation; both hooks may call engine APIs that take append_mu_
  /// (phase 1 holds only the recluster mutex).
  void set_after_permutation_hook(std::function<void()> hook) {
    after_permutation_hook_ = std::move(hook);
  }
  void set_after_build_hook(std::function<void()> hook) {
    after_build_hook_ = std::move(hook);
  }

  Result<ReclusterStats> Run();

 private:
  ServingEngine* engine_;
  ReclusterMode mode_;
  std::function<void()> after_permutation_hook_;
  std::function<void()> after_build_hook_;
};

}  // namespace corrmap::serve

#endif  // CORRMAP_SERVE_RECLUSTER_H_
