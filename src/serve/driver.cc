#include "serve/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <latch>
#include <thread>

#include "common/rng.h"

namespace corrmap::serve {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

void StallFor(double us) {
  if (us <= 0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::micro>(us));
}

LatencySummary Summarize(std::vector<double>* latencies_us) {
  LatencySummary out;
  if (latencies_us->empty()) return out;
  std::sort(latencies_us->begin(), latencies_us->end());
  auto at = [&](double q) {
    const size_t idx = std::min(latencies_us->size() - 1,
                                size_t(q * double(latencies_us->size())));
    return (*latencies_us)[idx];
  };
  out.p50_us = at(0.50);
  out.p99_us = at(0.99);
  out.max_us = latencies_us->back();
  double sum = 0;
  for (double v : *latencies_us) sum += v;
  out.mean_us = sum / double(latencies_us->size());
  return out;
}

}  // namespace

DriverReport WorkloadDriver::Run(
    std::span<const Query> query_pool,
    std::span<const std::vector<std::vector<Key>>> append_batches) {
  DriverReport report;
  if (query_pool.empty() || options_.reader_threads == 0) return report;

  struct ReaderState {
    std::vector<double> latencies_us;
    uint64_t matches = 0;
    uint64_t cache_hits = 0;
    double simulated_ms = 0;
    double simulated_first_half_ms = 0;
    double simulated_second_half_ms = 0;
    uint64_t first_half = 0;
    uint64_t second_half = 0;
    Clock::time_point finished;
  };
  std::vector<ReaderState> readers(options_.reader_threads);
  std::atomic<uint64_t> rows_appended{0};
  std::atomic<uint64_t> batches_appended{0};
  std::atomic<uint64_t> append_rejections{0};

  const size_t n_threads =
      options_.reader_threads +
      (append_batches.empty() ? 0 : options_.writer_threads);
  std::latch start(std::ptrdiff_t(n_threads) + 1);
  std::vector<std::thread> threads;
  threads.reserve(n_threads);

  for (size_t t = 0; t < options_.reader_threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(options_.seed + 0x1000 * (t + 1));
      ReaderState& me = readers[t];
      me.latencies_us.reserve(options_.lookups_per_reader);
      start.arrive_and_wait();
      for (size_t i = 0; i < options_.lookups_per_reader; ++i) {
        const int64_t pick =
            rng.UniformInt(0, int64_t(query_pool.size()) - 1);
        const Query& q = query_pool[size_t(pick)];
        const Clock::time_point t0 = Clock::now();
        SelectResult res;
        if (options_.use_worker_pool) {
          res = engine_->Submit(q).get();
        } else {
          res = engine_->ExecuteSelect(q);
        }
        StallFor(res.simulated_ms * options_.io_stall_us_per_simulated_ms);
        me.latencies_us.push_back(MicrosBetween(t0, Clock::now()));
        me.matches += res.num_matches;
        me.cache_hits += res.cache_hit ? 1 : 0;
        me.simulated_ms += res.simulated_ms;
        if (i < options_.lookups_per_reader / 2) {
          me.simulated_first_half_ms += res.simulated_ms;
          ++me.first_half;
        } else {
          me.simulated_second_half_ms += res.simulated_ms;
          ++me.second_half;
        }
      }
      me.finished = Clock::now();
    });
  }

  if (!append_batches.empty()) {
    for (size_t w = 0; w < options_.writer_threads; ++w) {
      threads.emplace_back([&, w] {
        start.arrive_and_wait();
        for (size_t i = 0; i < options_.batches_per_writer; ++i) {
          const auto& batch =
              append_batches[(w * options_.batches_per_writer + i) %
                             append_batches.size()];
          Status s;
          if (options_.use_worker_pool) {
            s = engine_->Append(batch).get();
          } else {
            s = engine_->ApplyAppend(batch);
          }
          if (s.ok()) {
            rows_appended.fetch_add(batch.size(), std::memory_order_relaxed);
            batches_appended.fetch_add(1, std::memory_order_relaxed);
          } else {
            append_rejections.fetch_add(1, std::memory_order_relaxed);
          }
          StallFor(options_.writer_pause_us);
        }
      });
    }
  }

  // Stamp before releasing the latch: on a single core the readers can
  // finish before this thread runs again, and the window must not be 0.
  const uint64_t reclusters_before = engine_->ReclustersCompleted();
  const Clock::time_point go = Clock::now();
  start.arrive_and_wait();
  for (std::thread& th : threads) th.join();

  Clock::time_point last_reader = go;
  std::vector<double> all_latencies;
  for (ReaderState& r : readers) {
    last_reader = std::max(last_reader, r.finished);
    report.lookup_matches += r.matches;
    report.lookup_cache_hits += r.cache_hits;
    report.simulated_select_ms += r.simulated_ms;
    report.simulated_first_half_ms += r.simulated_first_half_ms;
    report.simulated_second_half_ms += r.simulated_second_half_ms;
    report.lookups_first_half += r.first_half;
    report.lookups_second_half += r.second_half;
    all_latencies.insert(all_latencies.end(), r.latencies_us.begin(),
                         r.latencies_us.end());
  }
  report.lookups = all_latencies.size();
  report.wall_seconds = MicrosBetween(go, last_reader) / 1e6;
  report.lookups_per_second =
      report.wall_seconds > 0 ? double(report.lookups) / report.wall_seconds
                              : 0;
  report.lookup_latency = Summarize(&all_latencies);
  report.rows_appended = rows_appended.load();
  report.batches_appended = batches_appended.load();
  report.append_rejections = append_rejections.load();
  report.cache = engine_->cache().stats();
  report.reclusters = engine_->ReclustersCompleted() - reclusters_before;
  return report;
}

}  // namespace corrmap::serve
