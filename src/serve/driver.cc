#include "serve/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <latch>
#include <thread>

#include "common/rng.h"

namespace corrmap::serve {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

void StallFor(double us) {
  if (us <= 0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::micro>(us));
}

}  // namespace

LatencySummary LatencySummary::FromHistogram(const obs::Histogram& h) {
  LatencySummary out;
  if (h.Count() == 0) return out;
  out.p50_us = h.Quantile(0.50);
  out.p99_us = h.Quantile(0.99);
  out.max_us = h.Max();
  out.mean_us = h.Mean();
  return out;
}

DriverReport WorkloadDriver::Run(
    std::span<const Query> query_pool,
    std::span<const std::vector<std::vector<Key>>> append_batches) {
  DriverReport report;
  if (query_pool.empty() || options_.reader_threads == 0) return report;

  struct ReaderState {
    uint64_t lookups = 0;
    uint64_t matches = 0;
    uint64_t cache_hits = 0;
    double simulated_ms = 0;
    double simulated_first_half_ms = 0;
    double simulated_second_half_ms = 0;
    uint64_t first_half = 0;
    uint64_t second_half = 0;
    Clock::time_point finished;
  };
  std::vector<ReaderState> readers(options_.reader_threads);
  // All readers record wall latencies into one lock-free histogram -- the
  // same type the MetricsRegistry exports. When the engine carries a
  // metrics bundle each sample is mirrored into its serve_select_latency_us
  // series, so the report below and a registry snapshot answer latency
  // questions identically.
  obs::Histogram latency_us;
  obs::ServingMetrics* const metrics = engine_->metrics();
  std::atomic<uint64_t> rows_appended{0};
  std::atomic<uint64_t> batches_appended{0};
  std::atomic<uint64_t> append_rejections{0};

  const size_t n_threads =
      options_.reader_threads +
      (append_batches.empty() ? 0 : options_.writer_threads);
  std::latch start(std::ptrdiff_t(n_threads) + 1);
  std::vector<std::thread> threads;
  threads.reserve(n_threads);

  for (size_t t = 0; t < options_.reader_threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(options_.seed + 0x1000 * (t + 1));
      ReaderState& me = readers[t];
      start.arrive_and_wait();
      for (size_t i = 0; i < options_.lookups_per_reader; ++i) {
        const int64_t pick =
            rng.UniformInt(0, int64_t(query_pool.size()) - 1);
        const Query& q = query_pool[size_t(pick)];
        const Clock::time_point t0 = Clock::now();
        SelectResult res;
        if (options_.use_worker_pool) {
          res = engine_->Submit(q).get();
        } else {
          res = engine_->ExecuteSelect(q);
        }
        StallFor(res.simulated_ms * options_.io_stall_us_per_simulated_ms);
        const double us = MicrosBetween(t0, Clock::now());
        latency_us.Record(us);
        if (metrics != nullptr) metrics->select_latency_us->Record(us);
        ++me.lookups;
        me.matches += res.num_matches;
        me.cache_hits += res.cache_hit ? 1 : 0;
        me.simulated_ms += res.simulated_ms;
        if (i < options_.lookups_per_reader / 2) {
          me.simulated_first_half_ms += res.simulated_ms;
          ++me.first_half;
        } else {
          me.simulated_second_half_ms += res.simulated_ms;
          ++me.second_half;
        }
      }
      me.finished = Clock::now();
    });
  }

  if (!append_batches.empty()) {
    for (size_t w = 0; w < options_.writer_threads; ++w) {
      threads.emplace_back([&, w] {
        start.arrive_and_wait();
        for (size_t i = 0; i < options_.batches_per_writer; ++i) {
          const auto& batch =
              append_batches[(w * options_.batches_per_writer + i) %
                             append_batches.size()];
          Status s;
          if (options_.use_worker_pool) {
            s = engine_->Append(batch).get();
          } else {
            s = engine_->ApplyAppend(batch);
          }
          if (s.ok()) {
            rows_appended.fetch_add(batch.size(), std::memory_order_relaxed);
            batches_appended.fetch_add(1, std::memory_order_relaxed);
          } else {
            append_rejections.fetch_add(1, std::memory_order_relaxed);
          }
          StallFor(options_.writer_pause_us);
        }
      });
    }
  }

  // Stamp before releasing the latch: on a single core the readers can
  // finish before this thread runs again, and the window must not be 0.
  const uint64_t reclusters_before = engine_->ReclustersCompleted();
  const Clock::time_point go = Clock::now();
  start.arrive_and_wait();
  for (std::thread& th : threads) th.join();

  Clock::time_point last_reader = go;
  for (ReaderState& r : readers) {
    last_reader = std::max(last_reader, r.finished);
    report.lookups += r.lookups;
    report.lookup_matches += r.matches;
    report.lookup_cache_hits += r.cache_hits;
    report.simulated_select_ms += r.simulated_ms;
    report.simulated_first_half_ms += r.simulated_first_half_ms;
    report.simulated_second_half_ms += r.simulated_second_half_ms;
    report.lookups_first_half += r.first_half;
    report.lookups_second_half += r.second_half;
  }
  report.wall_seconds = MicrosBetween(go, last_reader) / 1e6;
  report.lookups_per_second =
      report.wall_seconds > 0 ? double(report.lookups) / report.wall_seconds
                              : 0;
  report.lookup_latency = LatencySummary::FromHistogram(latency_us);
  report.rows_appended = rows_appended.load();
  report.batches_appended = batches_appended.load();
  report.append_rejections = append_rejections.load();
  report.cache = engine_->cache().stats();
  report.reclusters = engine_->ReclustersCompleted() - reclusters_before;
  return report;
}

}  // namespace corrmap::serve
