// Partitioned serving: N range-partitioned ServingEngine shards behind a
// CM-guided scatter-gather router.
//
// The router splits a clustered table into contiguous clustered-key ranges
// (distinct keys never span shards) and gives each range to its own
// ServingEngine. All shards share one lock-striped BufferPool and one
// SharedLookupCache owned by the router, so residency calibration and CM
// lookup reuse keep working across the partition while appends, CM
// maintenance, tail sweeps, and recluster/compact passes run under
// per-shard locks -- a write stream that serialized behind one append
// mutex now spreads over N of them, and every select sweeps only its
// shards' tails.
//
// Select routing, in order of preference:
//   1. A predicate on the clustered column routes by key range: the
//      predicate's point keys / range bounds map through the split keys to
//      exactly the owning shard(s). (clustered_routed)
//   2. Otherwise each shard is asked CanSkipForQuery: when an attached CM
//      applies to the query, a shard whose CM lookup is empty AND whose
//      tail is empty provably holds no matches and is skipped; the lookup
//      goes through the shared cache, so a visited shard's ExecuteSelect
//      reuses it. (cm_pruned when at least one shard was skipped)
//   3. No clustered predicate and no applicable CM: full scatter-gather.
// Visited shards run their ordinary cost-based deliberation. The scatter
// itself is parallel by default: each visited shard's select is posted to
// that shard's own worker pool (or to a router-owned fallback pool when
// the engines run pool-less) and the router blocks on the gathered
// futures, so a multi-shard select costs one shard's latency instead of
// the sum. The merge stays single-threaded and walks the results in
// ascending shard order -- merged counts are identical whether the
// scatter ran parallel or sequential (RouterOptions::parallel_scatter
// pins the legacy sequential walk for A/B). A scatter can also share one
// cross-shard deliberation budget (RouterOptions::scatter_budget_ms): a
// shard whose cheapest CM-free candidate already exceeds the remaining
// allowance skips CM/sorted-index deliberation and runs that cheap plan
// -- results stay exact, only deliberation effort degrades.
//
// Writes route by clustered key: ApplyAppend groups rows by owning shard
// and applies the groups all-or-nothing (every target shard validates and
// locks before any shard applies), deletes/updates address (shard, row)
// and carry the shard's own recluster epoch (row ids are per-shard; a
// recluster in shard i permutes only shard i's ids and aborts only
// writers holding shard i's stale epoch). An update whose new clustered
// key moves it across the partition becomes delete-then-append -- between
// the two steps neither version is visible, the same invariant the
// engine's own update keeps.
#ifndef CORRMAP_SERVE_SHARD_ROUTER_H_
#define CORRMAP_SERVE_SHARD_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "core/correlation_map.h"
#include "exec/predicate.h"
#include "index/clustered_index.h"
#include "serve/serving_engine.h"
#include "serve/shared_lookup_cache.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"

namespace corrmap::serve {

struct RouterOptions {
  /// Requested shard count; the effective count is capped by the number
  /// of distinct clustered keys (a distinct key never spans shards).
  size_t num_shards = 4;
  /// Per-shard engine configuration. buffer_pool_pages sizes the single
  /// router-owned pool shared by every shard (0 disables pooling);
  /// shared_pool/shared_cache are overwritten by the router.
  ServingOptions engine;
  /// Lock stripes of the router-owned shared pool.
  size_t pool_stripes = 16;
  /// Per-shard durability managers (serve/durability.h). Empty disables
  /// durable serving; otherwise one entry per *requested* shard
  /// (num_shards) -- each shard logs its own writes and checkpoints its
  /// own epochs, so recovery is shard-local. engine.durability is always
  /// ignored by the router (a single WAL cannot speak N independent
  /// row-id spaces). All managers must outlive the router.
  std::vector<Durability*> shard_durability;
  /// Run the scatter in parallel: visited shards' selects execute
  /// concurrently on the shards' worker pools (router-owned fallback pool
  /// when engine.num_workers == 0) and merge in ascending shard order, so
  /// merged counts match the sequential walk exactly. false pins the
  /// legacy sequential scatter (the bench A/B leg).
  bool parallel_scatter = true;
  /// Cross-shard deliberation budget per scatter, in estimated ms: a
  /// visited shard whose cheapest CM-free candidate (seq scan / clustered
  /// range) already exceeds the remaining allowance skips CM and
  /// sorted-index deliberation and runs that cheap plan. Results stay
  /// exact -- every plan re-filters the same rows -- only deliberation
  /// effort and plan quality degrade (SelectResult::budget_degraded,
  /// router_budget_degraded_visits_total). 0 disables.
  double scatter_budget_ms = 0;
  /// Test/bench hook: called once per shard visit with that shard's own
  /// SelectResult, from whichever thread ran the visit (must be
  /// thread-safe under parallel scatter). The bench injects the simulated
  /// device stall here so it overlaps across shards the way real device
  /// waits would; fuzz tests inject seeded delays to stretch the window
  /// in which a recluster publish races the gather.
  std::function<void(const SelectResult&)> on_shard_visit;
};

/// Merged outcome of one routed select.
struct RoutedSelectResult {
  /// Per-shard SelectResults merged: counts, simulated/estimated costs and
  /// deliberated candidates summed; used_cm/cache_hit OR-ed; plan fields
  /// taken from the first visited shard (diagnostics only).
  SelectResult merged;
  size_t shards_visited = 0;
  size_t shards_pruned = 0;      ///< skipped without executing
  /// Visited shards that degraded to their cheap plan because the
  /// scatter's shared deliberation budget ran out.
  size_t shards_degraded = 0;
  bool clustered_routed = false; ///< pruned by clustered-key range
  bool cm_pruned = false;        ///< pruned by per-shard CM lookups
};

class ShardRouter {
 public:
  /// Partitions `table` -- already clustered on `c_col` -- into contiguous
  /// key ranges balanced by row count and builds one engine per range.
  /// The source table is deep-copied per shard (dictionaries preserved,
  /// so physical keys keep their codes across the partition); it only
  /// needs to outlive this call.
  static Result<std::unique_ptr<ShardRouter>> Create(const Table& table,
                                                     size_t c_col,
                                                     RouterOptions options =
                                                         {});

  /// Rebuilds a router from per-shard durability state after a crash:
  /// each shard recovers through ServingEngine::Recover against
  /// options.shard_durability[i] (which must hold that shard's checkpoint
  /// + log), and the partition layout is restored from `splits` -- the
  /// split_keys() of the pre-crash router, which the operator persists
  /// alongside the shard logs (they change only on re-partitioning).
  /// `spec` lists the replay-derived structures to rebuild per shard;
  /// clustered-bucketing targets are re-based per shard exactly as
  /// AttachCm does. Per-shard RecoveryStats are appended to `stats` when
  /// non-null.
  static Result<std::unique_ptr<ShardRouter>> Recover(
      size_t c_col, std::vector<Key> splits, RouterOptions options,
      const ServingEngine::RecoverSpec& spec,
      std::vector<RecoveryStats>* stats = nullptr);

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;
  ~ShardRouter();

  /// Attaches a CM / secondary index to every shard (setup phase only,
  /// like the engine's own attach APIs). A clustered-bucketing target is
  /// re-based per shard over the shard's own key range.
  Status AttachCm(const CmOptions& cm_options);
  Status AttachSecondaryIndex(const std::vector<size_t>& columns);

  /// Scatter-gather select (see the file comment for the routing tiers).
  RoutedSelectResult ExecuteSelect(const Query& query) const;

  /// Routes each row to its owning shard by clustered key and applies the
  /// per-shard groups all-or-nothing: every target shard validates its
  /// slice (schema arity, capacity) and takes its append lock before any
  /// shard applies, so an error -- bad routing key, arity mismatch, one
  /// shard out of reserved capacity -- leaves every shard untouched and
  /// nothing WAL-logged. Locks are taken in ascending shard order, which
  /// totally orders concurrent multi-shard appends (no deadlock).
  Status ApplyAppend(std::span<const std::vector<Key>> rows);

  /// Tombstones row `row` *of shard `shard`*. expected_epoch is checked
  /// against that shard's recluster epoch (ServingEngine::ApplyDelete).
  Status ApplyDelete(size_t shard, RowId row,
                     uint64_t expected_epoch = ServingEngine::kAnyEpoch);

  /// Updates row `row` of shard `shard` to `new_values` (schema arity).
  /// When the new clustered key stays in `shard`, this is the engine's
  /// atomic tombstone+re-append; when it moves, the row is deleted from
  /// `shard` and appended to its new owner (neither version visible in
  /// between).
  Status ApplyUpdate(size_t shard, RowId row, std::span<const Key> new_values,
                     uint64_t expected_epoch = ServingEngine::kAnyEpoch);

  /// Per-shard recluster/compact passes (each fires independently; the
  /// *All forms run every shard sequentially and fail fast).
  Result<ReclusterStats> Recluster(size_t shard);
  Result<ReclusterStats> Compact(size_t shard);
  Status ReclusterAll();
  Status CompactAll();

  /// Owning shard of clustered key `k`.
  size_t RouteKey(const Key& k) const;

  size_t num_shards() const { return shards_.size(); }
  ServingEngine& shard(size_t i) { return *shards_[i].engine; }
  const ServingEngine& shard(size_t i) const { return *shards_[i].engine; }
  /// Recluster epoch of shard `i` (pass back as expected_epoch).
  uint64_t ShardEpoch(size_t i) const {
    return shards_[i].engine->ReclusterEpoch();
  }
  /// First clustered key of shard i+1, ascending (num_shards()-1 entries).
  const std::vector<Key>& split_keys() const { return splits_; }
  BufferPool* pool() const { return pool_.get(); }
  SharedLookupCache& cache() const { return *cache_; }
  /// The shared observability bundle, when one was attached through
  /// RouterOptions::engine.metrics (null otherwise). Shards record their
  /// own selects into it; the router owns the partition-level gauges and
  /// the router-level trace per scatter.
  obs::ServingMetrics* metrics() const { return metrics_; }

  /// Drops every shared-pool frame and resets each shard's calibration.
  void ResetBufferPool();

  /// Cumulative routing statistics.
  uint64_t SelectsExecuted() const { return selects_.load(); }
  uint64_t ShardsVisitedTotal() const { return shards_visited_.load(); }
  uint64_t ShardsPrunedTotal() const { return shards_pruned_.load(); }
  uint64_t CmPrunedSelects() const { return cm_pruned_selects_.load(); }
  uint64_t ClusteredRoutedSelects() const {
    return clustered_routed_selects_.load();
  }

  /// Every shard's own invariants plus the partition's: split keys
  /// strictly ascending and every live row's clustered key owned by the
  /// shard holding it (call at quiescence).
  Status CheckInvariants() const;

 private:
  struct Shard {
    std::unique_ptr<Table> table;          ///< backs the engine's epoch 0
    std::unique_ptr<ClusteredIndex> cidx;  ///< ditto
    std::unique_ptr<ServingEngine> engine;
  };

  ShardRouter() = default;

  void RegisterMetricsGauges();

  /// Router-owned scatter pool, started only when parallel scatter is on
  /// and the engines run pool-less (num_workers == 0): a pool-less engine
  /// never drains its queue, so Post would hang.
  void StartFallbackPool(size_t n);
  void SubmitFallback(std::function<void()> fn) const;

  size_t c_col_ = 0;
  std::vector<Key> splits_;
  std::vector<Shard> shards_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<SharedLookupCache> cache_;
  obs::ServingMetrics* metrics_ = nullptr;
  std::vector<std::string> gauge_names_;
  bool parallel_scatter_ = true;
  double scatter_budget_ms_ = 0;
  /// Shards own worker pools (engine.num_workers > 0): scatter tasks ride
  /// them; otherwise the fallback pool below.
  bool engines_pooled_ = true;
  std::function<void(const SelectResult&)> on_shard_visit_;
  // Fallback scatter pool (mutable: ExecuteSelect is const). fb_stopping_
  // is guarded by fb_mu_.
  mutable std::mutex fb_mu_;
  mutable std::condition_variable fb_cv_;
  mutable std::deque<std::function<void()>> fb_queue_;
  bool fb_stopping_ = false;
  std::vector<std::thread> fb_workers_;

  mutable std::atomic<uint64_t> selects_{0};
  mutable std::atomic<uint64_t> shards_visited_{0};
  mutable std::atomic<uint64_t> shards_pruned_{0};
  mutable std::atomic<uint64_t> cm_pruned_selects_{0};
  mutable std::atomic<uint64_t> clustered_routed_selects_{0};
};

}  // namespace corrmap::serve

#endif  // CORRMAP_SERVE_SHARD_ROUTER_H_
